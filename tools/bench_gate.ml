(* bench_gate: compare a bechamel --json report against the committed
   baseline (BENCH_micro.json) and flag regressions.

   Usage:
     bench_gate --baseline BENCH_micro.json --current bench.json
                [--tolerance FACTOR] [--fail-groups G1,G2]
                [--calibrate] [--probe NAME]

   A benchmark regresses when current_ns > tolerance * baseline_ns.
   The default tolerance is 2.0: shared CI runners are noisy enough
   that a 2x slowdown is the smallest signal worth acting on — tighter
   bounds flap, and real regressions caught by this gate (an
   accidentally quadratic remembered-set scan, a dropped memoisation)
   blow far past 2x.  Benchmarks present on only one side are reported
   but never fail the gate, so adding or retiring a bench does not
   require touching the baseline in the same change.

   --calibrate defends the gate against host drift: the committed
   baselines were measured on some historical runner, and a slower (or
   faster) host shifts every number by a common factor that the 2x
   tolerance would otherwise absorb as headroom — or spend entirely,
   turning the gate into a coin flip (PR 9's alloc-tlab: 80.6 ns
   measured against a 38.7 ns stale baseline).  The calibration probe
   (bench/main.ml "calibrate/probe-spin", a frozen allocation-free
   integer loop) is measured in the same run as everything else; the
   gate scales every baseline by current_probe / baseline_probe before
   applying tolerances, so only relative regressions remain.  The probe
   itself is never gated.  Requires the probe on both sides (exit 2
   otherwise); --probe overrides the probe name.

   Exit code: 0 when nothing regressed, 1 otherwise.  With
   --fail-groups, only regressions in the listed groups (the prefix
   before '/' in a benchmark name) set the exit code; the rest are
   reported as advisory.  CI fails the build on the "micro" group —
   simulator primitives are single-threaded, allocation-free-ish loops
   whose 2x blowups are real even on shared runners — and stays
   advisory for the noisier campaign-level groups. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The report holds objects with "name" and "ns_per_run" (possibly
   null) members — bench/main.ml's [write_json] wraps them in a
   "results" array next to run metadata ("jobs",
   "recommended_domain_count"), and the committed baseline is a bare
   list carrying extra "seed_ns_per_run" members.  The scanner pairs
   each "name" with the next "ns_per_run", which reads both shapes and
   ignores the extras; a full JSON parser is not warranted. *)
let entries_of_json text =
  let entries = ref [] in
  let n = String.length text in
  let find_sub sub from =
    let m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub text i m = sub then Some i
      else go (i + 1)
    in
    go from
  in
  let rec skip_ws i = if i < n && (text.[i] = ' ' || text.[i] = '\n') then skip_ws (i + 1) else i in
  let rec go from =
    match find_sub "\"name\"" from with
    | None -> ()
    | Some i -> (
        let i = skip_ws (i + 6) in
        let i = if i < n && text.[i] = ':' then skip_ws (i + 1) else i in
        match String.index_from_opt text (i + 1) '"' with
        | None -> ()
        | Some close ->
            let name = String.sub text (i + 1) (close - i - 1) in
            (match find_sub "\"ns_per_run\"" close with
            | None -> ()
            | Some j ->
                let j = skip_ws (j + 12) in
                let j = if j < n && text.[j] = ':' then skip_ws (j + 1) else j in
                let k = ref j in
                while
                  !k < n
                  && (match text.[!k] with
                     | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | 'n' | 'u'
                     | 'l' ->
                         true
                     | _ -> false)
                do
                  incr k
                done;
                let v = String.sub text j (!k - j) in
                let ns = if v = "null" then None else float_of_string_opt v in
                entries := (name, ns) :: !entries);
            go (close + 1))
  in
  go 0;
  List.rev !entries

let group_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> name

let () =
  let baseline = ref "" and current = ref "" and tolerance = ref 2.0 in
  let fail_groups = ref [] in
  let calibrate = ref false and probe = ref "calibrate/probe-spin" in
  let usage =
    "usage: bench_gate --baseline PATH --current PATH [--tolerance F] \
     [--fail-groups G1,G2] [--calibrate] [--probe NAME]"
  in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: p :: rest ->
        baseline := p;
        parse rest
    | "--current" :: p :: rest ->
        current := p;
        parse rest
    | "--tolerance" :: t :: rest -> (
        match float_of_string_opt t with
        | Some f when f >= 1.0 ->
            tolerance := f;
            parse rest
        | _ ->
            prerr_endline "bench_gate: --tolerance must be a factor >= 1.0";
            exit 2)
    | "--fail-groups" :: gs :: rest ->
        fail_groups := String.split_on_char ',' gs;
        parse rest
    | "--calibrate" :: rest ->
        calibrate := true;
        parse rest
    | "--probe" :: name :: rest ->
        probe := name;
        parse rest
    | arg :: _ ->
        Printf.eprintf "bench_gate: unknown argument %s\n%s\n" arg usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !baseline = "" || !current = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let base = entries_of_json (read_file !baseline) in
  let cur = entries_of_json (read_file !current) in
  (* Host-drift calibration: scale every baseline by the probe's
     current/baseline ratio so the tolerances compare like with like. *)
  let scale =
    if not !calibrate then 1.0
    else
      match (List.assoc_opt !probe base, List.assoc_opt !probe cur) with
      | Some (Some b), Some (Some c) when b > 0.0 && c > 0.0 ->
          let r = c /. b in
          Printf.printf
            "calibrate  %-32s %12.1f ns -> %12.1f ns (host ratio %.2fx)\n"
            !probe b c r;
          r
      | _ ->
          Printf.eprintf
            "bench_gate: --calibrate: probe %s needs an estimate in both \
             --baseline and --current\n"
            !probe;
          exit 2
  in
  (* With no --fail-groups every regression gates; with it, only the
     listed groups set the exit code and the rest are advisory.  The
     calibration probe never gates: after scaling its ratio is 1.0 by
     construction, and a probe "regression" is host drift, not code. *)
  let gated name =
    name <> !probe
    && (!fail_groups = [] || List.mem (group_of name) !fail_groups)
  in
  let failures = ref 0 and advisories = ref 0 in
  List.iter
    (fun (name, ns) ->
      match (ns, List.assoc_opt name base) with
      | Some ns, Some (Some base_ns) ->
          let base_ns = base_ns *. scale in
          let ratio = ns /. base_ns in
          if ratio > !tolerance then
            if gated name then begin
              incr failures;
              Printf.printf
                "FAIL       %-32s %12.1f ns -> %12.1f ns (%.2fx > %.2fx)\n"
                name base_ns ns ratio !tolerance
            end
            else begin
              incr advisories;
              Printf.printf
                "REGRESSION %-32s %12.1f ns -> %12.1f ns (%.2fx > %.2fx, \
                 advisory)\n"
                name base_ns ns ratio !tolerance
            end
          else
            Printf.printf "ok         %-32s %12.1f ns -> %12.1f ns (%.2fx)\n"
              name base_ns ns ratio
      | None, _ ->
          Printf.printf "skip       %-32s (no estimate this run)\n" name
      | Some _, Some None ->
          Printf.printf "skip       %-32s (no baseline estimate)\n" name
      | Some _, None ->
          Printf.printf "new        %-32s (not in baseline; not gated)\n" name)
    cur;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name cur) then
        Printf.printf "gone       %-32s (in baseline only; not gated)\n" name)
    base;
  if !advisories > 0 then
    Printf.printf "%d advisory regression(s) beyond %.2fx\n" !advisories
      !tolerance;
  if !failures > 0 then begin
    Printf.printf "%d benchmark(s) regressed beyond %.2fx\n" !failures
      !tolerance;
    exit 1
  end;
  print_endline "bench gate: no gated regressions"
