#!/usr/bin/env bash
# Regenerate the ci-scope golden artifacts and diff them against the
# committed copies under results/ci/.  Any drift — a changed simulator
# constant, a broken determinism contract, a worker-count dependence —
# fails loudly with the diff.
#
# Usage: tools/check_identity.sh [JOBS] [GC_JOBS]
#   JOBS        worker-domain count to run the experiments with
#               (default 1).  The goldens were generated at --jobs 1;
#               byte-identity at any other value is exactly the
#               determinism contract of Gcperf_exec.Pool.
#   GC_JOBS     worker-domain count for the intra-collection kernels
#               (default 1 = sequential).  Byte-identity here is the
#               determinism contract of Obj_store.finish_trace's
#               speculative-scan/replay kernel and of finish_relocate's
#               plan/move copy-promote-evacuate-compact kernel.
#
# CI runs this once per matrix leg over both dimensions.
#
# `dune build @check-identity` performs the same comparison (at jobs 1
# and 4) through dune's diff action, with promotion support:
# `dune promote` refreshes the goldens after an intentional change.
set -eu

jobs="${1:-1}"
gc_jobs="${2:-1}"
root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

artifacts=(table2 table3 fig3 faults cluster pauseless distill)
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

status=0
for id in "${artifacts[@]}"; do
  golden="results/ci/$id.txt"
  candidate="$tmp/$id.txt"
  dune exec --no-build -- gcperf run "$id" --scope ci --jobs "$jobs" \
    --gc-jobs "$gc_jobs" -o "$candidate" >/dev/null 2>&1 ||
    dune exec -- gcperf run "$id" --scope ci --jobs "$jobs" \
      --gc-jobs "$gc_jobs" -o "$candidate" >/dev/null
  if ! diff -u "$golden" "$candidate"; then
    echo "IDENTITY BROKEN: $id (scope ci, jobs $jobs, gc-jobs $gc_jobs) differs from $golden" >&2
    status=1
  else
    echo "ok $id (scope ci, jobs $jobs, gc-jobs $gc_jobs)"
  fi
done

exit "$status"
