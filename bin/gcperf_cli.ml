(* gcperf: command-line front end for the GC performance study.

   `gcperf list` enumerates experiments, `gcperf run <id>` regenerates a
   table or figure of the paper (text, CSV or JSON), `gcperf trace
   <collector>` runs a benchmark with telemetry on and dumps the pause
   spans plus percentile summaries, `gcperf bench <name>` runs a single
   DaCapo-like benchmark under a chosen collector, `gcperf tune
   <collector>` searches for sizes that meet a pause goal and prints the
   matching JVM flags, and `gcperf suite` prints the benchmark
   descriptions. *)

open Cmdliner
module Telemetry = Gcperf_telemetry.Telemetry
module Sink = Gcperf_telemetry.Sink

let quick_arg =
  let doc =
    "Quick mode: shorthand for $(b,--scope ci) (useful for smoke tests; \
     the full configuration matches the paper)."
  in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let scope_arg =
  let doc =
    "Run budget: $(b,ci) (smoke-test scale, the old quick mode), \
     $(b,bench) (intermediate) or $(b,full) (the paper's configuration)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "scope"; "s" ] ~docv:"SCOPE" ~doc)

let resolve_scope quick scope =
  match scope with
  | None -> if quick then Gcperf.Scope.ci else Gcperf.Scope.full
  | Some s -> (
      match Gcperf.Scope.of_string s with
      | Some scope -> scope
      | None ->
          Printf.eprintf "unknown scope %S; expected ci, bench or full\n" s;
          exit 1)

let out_arg =
  let doc = "Write the rendered artifact to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the experiment's cell fan-out (default: the \
     machine's recommended domain count).  Results are byte-identical \
     for every value; $(b,--jobs 1) runs sequentially."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let gc_jobs_arg =
  let doc =
    "Worker domains for the intra-collection kernels: the mark/scan \
     trace and the copy/promote/evacuate/compact relocation inside each \
     simulated pause.  Independent of $(b,--jobs); results are \
     byte-identical for every value.  Default 1 (sequential).  \
     $(b,--trace-jobs) is an alias kept for older scripts."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "gc-jobs"; "trace-jobs" ] ~docv:"N" ~doc)

let apply_gc_jobs = function
  | None -> ()
  | Some n -> Gcperf_heap.Obj_store.set_default_gc_domains n

let emit out text =
  match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path

let did_you_mean = Gcperf_util.Fuzzy.did_you_mean

(* Every user-supplied configuration goes through [Gc_config.validate]
   before it reaches the simulator, so a bad flag combination dies with
   the JVM flag to fix instead of an exception deep inside a run.
   [Gc_config.default] asserts young <= heap on its own; building through
   a thunk lets us turn that assertion into the same actionable error. *)
let validated build =
  match
    match build () with
    | config -> Gcperf_gc.Gc_config.validate config
    | exception Invalid_argument _ ->
        Error
          "young generation (-Xmn) must be smaller than the heap (-Xmx); \
           leave room for the old generation"
  with
  | Ok config -> config
  | Error msg ->
      Printf.eprintf "invalid configuration: %s\n" msg;
      exit 1

let resolve_collector name =
  match Gcperf_gc.Gc_config.kind_of_string name with
  | Some k -> k
  | None ->
      Printf.eprintf "unknown collector %S%s\n" name
        (did_you_mean ~candidates:Gcperf_gc.Gc_config.kind_names name);
      exit 1

let resolve_bench name =
  match Gcperf_dacapo.Suite.find name with
  | Some b -> b
  | None ->
      Printf.eprintf "unknown benchmark %S%s; try `gcperf suite`\n" name
        (did_you_mean ~candidates:Gcperf_dacapo.Suite.names name);
      exit 1

let resolve_fault_profile name =
  match Gcperf_fault.Profile.of_string name with
  | Some p -> p
  | None ->
      Printf.eprintf "unknown fault profile %S%s\n" name
        (did_you_mean ~candidates:Gcperf_fault.Profile.names name);
      exit 1

(* --- list ---------------------------------------------------------- *)

let list_cmd =
  let doc = "List the reproducible tables and figures." in
  let run () =
    print_endline "Experiments (paper artifact -> gcperf run <id>):";
    List.iter
      (fun (e : Gcperf.Experiment.t) ->
        Printf.printf "  %-10s  %s\n" e.Gcperf.Experiment.id
          e.Gcperf.Experiment.title)
      (Gcperf.Experiments.all ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- run ----------------------------------------------------------- *)

let format_arg =
  let doc = "Output format: $(b,text), $(b,csv) or $(b,json)." in
  Arg.(value & opt string "text" & info [ "format"; "f" ] ~docv:"FORMAT" ~doc)

let parse_format = function
  | "text" -> `Text
  | "csv" -> `Csv
  | "json" -> `Json
  | s ->
      Printf.eprintf "unknown format %S; expected text, csv or json\n" s;
      exit 1

let run_cmd =
  let doc = "Regenerate one table or figure of the study." in
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment id (see $(b,gcperf list)).")
  in
  let run id quick scope format jobs gc_jobs out =
    let scope = resolve_scope quick scope in
    let format = parse_format format in
    apply_gc_jobs gc_jobs;
    match Gcperf.Experiments.artifact ~scope ?jobs id with
    | None ->
        Printf.eprintf "unknown experiment %S%s; try `gcperf list`\n" id
          (did_you_mean ~candidates:Gcperf.Experiments.all_names id);
        exit 1
    | Some artifact -> emit out (Gcperf.Artifact.render artifact format)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ id_arg $ quick_arg $ scope_arg $ format_arg $ jobs_arg
      $ gc_jobs_arg $ out_arg)

(* --- trace --------------------------------------------------------- *)

let trace_cmd =
  let doc =
    "Run one benchmark with telemetry enabled and dump the GC trace: \
     one JSON line per pause with its per-phase breakdown, then a \
     percentile summary (p50/p90/p99/p99.9/max) per pause kind and a \
     time-to-safepoint summary."
  in
  let collector_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"COLLECTOR"
          ~doc:
            "Collector: serial, parnew, parallel, parallelold, cms, g1, \
             concurrent-regions (alias zgc, shenandoah) or journal-rc \
             (alias mo-gc); a \
             comma-separated list, or $(b,all).  With several collectors \
             the traced runs fan out over the worker pool, each section \
             is printed in collector order, and a merged percentile \
             summary over every collector's spans closes the dump.")
  in
  let bench_arg =
    let doc = "DaCapo-like benchmark to drive the collector." in
    Arg.(value & opt string "xalan" & info [ "bench"; "b" ] ~docv:"NAME" ~doc)
  in
  let heap_arg =
    let doc = "Heap size in megabytes." in
    Arg.(value & opt int 16384 & info [ "heap" ] ~docv:"MB" ~doc)
  in
  let young_arg =
    let doc = "Young generation size in megabytes." in
    Arg.(value & opt int 5734 & info [ "young" ] ~docv:"MB" ~doc)
  in
  let iterations_arg =
    Arg.(value & opt int 5 & info [ "n"; "iterations" ] ~doc:"Iterations.")
  in
  let trace_format_arg =
    let doc =
      "Output: $(b,jsonl) (pause spans + summaries), $(b,csv) (flat span \
       rows), $(b,metrics) (gauge/counter series as CSV) or $(b,summary) \
       (one JSON percentile object)."
    in
    Arg.(value & opt string "jsonl" & info [ "format"; "f" ] ~docv:"FORMAT" ~doc)
  in
  let run collector bench heap young iterations format jobs out =
    let kinds =
      if collector = "all" then Gcperf.Exp_common.all_kinds
      else List.map resolve_collector (String.split_on_char ',' collector)
    in
    let b = resolve_bench bench in
    let render =
      match format with
      | "jsonl" -> Sink.trace_jsonl
      | "csv" -> Sink.spans_csv
      | "metrics" -> Sink.metrics_csv
      | "summary" -> fun t -> Sink.summary_json t ^ "\n"
      | s ->
          Printf.eprintf
            "unknown format %S; expected jsonl, csv, metrics or summary\n" s;
          exit 1
    in
    let mb = 1024 * 1024 in
    let machine = Gcperf_machine.Machine.paper_server () in
    (* Validate on the orchestrating domain, before any fan-out. *)
    let configs =
      List.map
        (fun kind ->
          ( kind,
            validated (fun () ->
                Gcperf_gc.Gc_config.default kind ~heap_bytes:(heap * mb)
                  ~young_bytes:(young * mb)) ))
        kinds
    in
    (* One traced run per collector; each cell owns its VM and its
       telemetry registry, so the runs fan out over the pool and the
       per-cell dumps stay independent. *)
    let jobs = Option.value jobs ~default:(Gcperf.Exp_common.default_jobs ()) in
    let traced =
      Gcperf.Exp_common.Pool.map_list ~jobs
        (fun (kind, gc) ->
          (* The registry is explicitly enabled here; everywhere else the
             process-wide default (off) applies, so experiments never pay
             for tracing they do not read. *)
          let telemetry = Telemetry.create ~enabled:true () in
          let r =
            Gcperf_dacapo.Harness.run ~telemetry ~iterations machine b ~gc
              ~system_gc:false ()
          in
          (kind, telemetry, r.Gcperf_dacapo.Harness.crashed))
        configs
    in
    List.iter
      (fun (_, _, crashed) ->
        if crashed then begin
          Printf.eprintf "benchmark %s crashes under the study's setup\n"
            bench;
          exit 1
        end)
      traced;
    match traced with
    | [ (_, telemetry, _) ] ->
        (* Single collector: exactly the historical dump. *)
        emit out (render telemetry)
    | _ ->
        (* Several collectors: per-collector sections in request order,
           then one summary over the merged sinks — the spans and
           histograms of every run, merged in deterministic cell order. *)
        let merged = Telemetry.create ~enabled:true () in
        let buf = Buffer.create 4096 in
        List.iter
          (fun (kind, telemetry, _) ->
            Buffer.add_string buf
              (Printf.sprintf "==== %s ====\n"
                 (Gcperf_gc.Gc_config.kind_to_string kind));
            Buffer.add_string buf (render telemetry);
            Telemetry.merge_into ~into:merged telemetry)
          traced;
        Buffer.add_string buf "==== merged ====\n";
        Buffer.add_string buf (Sink.summary_json merged ^ "\n");
        emit out (Buffer.contents buf)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ collector_arg $ bench_arg $ heap_arg $ young_arg
      $ iterations_arg $ trace_format_arg $ jobs_arg $ out_arg)

(* --- bench --------------------------------------------------------- *)

let bench_cmd =
  let doc = "Run one benchmark under a chosen collector and print its log." in
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"DaCapo-like benchmark name.")
  in
  let gc_arg =
    let doc =
      "Collector: serial, parnew, parallel, parallelold, cms, g1, \
       concurrent-regions (alias zgc, shenandoah) or journal-rc (alias \
       mo-gc)."
    in
    Arg.(value & opt string "parallelold" & info [ "gc" ] ~doc)
  in
  let fold_jobs_arg =
    let doc =
      "Simulated journal-fold workers for the journal-rc collector \
       (mo-gc's fold is single-threaded; higher values relieve its \
       backpressure).  Scales the simulated fold rate only — results \
       stay byte-identical across $(b,--gc-jobs)."
    in
    Arg.(value & opt int 1 & info [ "journal-fold-jobs" ] ~docv:"N" ~doc)
  in
  let heap_arg =
    let doc = "Heap size in megabytes (minimum = maximum, as in the study)." in
    Arg.(value & opt int 16384 & info [ "heap" ] ~docv:"MB" ~doc)
  in
  let young_arg =
    let doc = "Young generation size in megabytes." in
    Arg.(value & opt int 5734 & info [ "young" ] ~docv:"MB" ~doc)
  in
  let iterations_arg =
    Arg.(value & opt int 10 & info [ "n"; "iterations" ] ~doc:"Iterations.")
  in
  let sysgc_arg =
    Arg.(value & flag & info [ "system-gc" ] ~doc:"Force a full GC between iterations.")
  in
  let tlab_off_arg =
    Arg.(value & flag & info [ "no-tlab" ] ~doc:"Disable TLABs.")
  in
  let adaptive_arg =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Attach the adaptive sizing policy \
             ($(b,-XX:+UseAdaptiveSizePolicy)): the young generation, \
             survivor ratio and tenuring threshold follow the pause and \
             throughput goals instead of staying fixed.")
  in
  let pause_goal_arg =
    let doc =
      "Pause goal in milliseconds for $(b,--adaptive) \
       ($(b,-XX:MaxGCPauseMillis))."
    in
    Arg.(value & opt float 200.0 & info [ "pause-goal" ] ~docv:"MS" ~doc)
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every GC event.")
  in
  let faults_arg =
    let doc =
      "After the run, replay its pause schedule through the fault \
       injector and the resilient client: $(docv) is a fault profile \
       (none, flaky-network, pause-spike, storm).  Prints goodput, \
       retry amplification and client tail latency with resilience off \
       and on."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PROFILE" ~doc)
  in
  let no_resilience_arg =
    Arg.(
      value & flag
      & info [ "no-resilience" ]
          ~doc:
            "With $(b,--faults): only run the pre-resilience stack \
             (naive client, unbounded server queue).")
  in
  let run bench gc heap young iterations system_gc no_tlab adaptive pause_goal
      fold_jobs verbose faults no_resilience =
    let kind = resolve_collector gc in
    let b = resolve_bench bench in
    (* Resolve up front so a typo dies before the benchmark runs. *)
    let fault_profile = Option.map resolve_fault_profile faults in
    let mb = 1024 * 1024 in
    let config =
      validated (fun () ->
          {
            (Gcperf_gc.Gc_config.default kind ~heap_bytes:(heap * mb)
               ~young_bytes:(young * mb))
            with
            Gcperf_gc.Gc_config.tlab = not no_tlab;
            adaptive;
            pause_goal_ms = pause_goal;
            journal_fold_jobs = fold_jobs;
          })
    in
    let machine = Gcperf_machine.Machine.paper_server () in
    let r =
      Gcperf_dacapo.Harness.run ~iterations machine b ~gc:config ~system_gc ()
    in
    if r.Gcperf_dacapo.Harness.crashed then print_endline "benchmark crashed"
    else begin
      Array.iteri
        (fun i s ->
          Printf.printf
            "iteration %2d: %8.3f s  (%d pauses, %.3f s paused, %d MB allocated)\n"
            (i + 1)
            s.Gcperf_workload.Mutator.duration_s
            s.Gcperf_workload.Mutator.pauses
            s.Gcperf_workload.Mutator.pause_s
            (s.Gcperf_workload.Mutator.allocated_bytes / mb))
        r.Gcperf_dacapo.Harness.iterations;
      Printf.printf "total: %.3f s   final iteration: %.3f s%s\n"
        r.Gcperf_dacapo.Harness.total_s r.Gcperf_dacapo.Harness.final_s
        (if r.Gcperf_dacapo.Harness.oom then "  [OOM]" else "");
      if verbose then
        List.iter
          (fun e ->
            Format.printf "%a@." Gcperf_sim.Gc_event.pp_event e)
          r.Gcperf_dacapo.Harness.events
      else begin
        let n = List.length r.Gcperf_dacapo.Harness.events in
        let total =
          List.fold_left
            (fun a e -> a +. (e.Gcperf_sim.Gc_event.duration_us /. 1e6))
            0.0 r.Gcperf_dacapo.Harness.events
        in
        Printf.printf "gc: %d pauses, %.3f s total pause time\n" n total
      end;
      match fault_profile with
      | None -> ()
      | Some profile ->
          (* Replay the run's pause schedule through the fault injector
             and the resilient client: the client-side view of the
             pauses just printed. *)
          let module R = Gcperf_ycsb.Resilient in
          let module Gw = Gcperf_kvstore.Gateway in
          let pauses =
            Array.of_list
              (List.map
                 (fun (e : Gcperf_sim.Gc_event.event) ->
                   ( e.Gcperf_sim.Gc_event.start_us /. 1e6,
                     (e.Gcperf_sim.Gc_event.start_us
                     +. e.Gcperf_sim.Gc_event.duration_us)
                     /. 1e6 ))
                 r.Gcperf_dacapo.Harness.events)
          in
          let workload =
            {
              Gcperf_ycsb.Client.paper_workload with
              Gcperf_ycsb.Client.duration_s =
                Float.max 1.0 r.Gcperf_dacapo.Harness.total_s;
            }
          in
          let session resilient =
            let resilience = if resilient then R.paper_defaults else R.none in
            let gateway = if resilient then Gw.degraded else Gw.unbounded in
            R.run workload ~profile ~resilience ~gateway ~collector:gc ~pauses
              ~db_timeline:[||]
              ~seed:(Gcperf.Exp_common.seed + 131)
              ()
          in
          let print tag (m : R.summary) =
            Printf.printf
              "faults %-13s resilience %-3s goodput %8.2f op/s  amp %4.2f  \
               p99 %8.2f ms  p99.9 %8.2f ms  ok %d/%d  timeouts %d  sheds %d  \
               hedge-wins %d\n"
              m.R.profile tag m.R.goodput_ops_s m.R.retry_amplification
              m.R.p99_ms m.R.p999_ms m.R.ok m.R.requests m.R.timeouts
              (m.R.sheds + m.R.fast_rejects)
              m.R.hedge_wins
          in
          print "off" (session false);
          if not no_resilience then print "on" (session true)
    end
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run $ bench_arg $ gc_arg $ heap_arg $ young_arg $ iterations_arg
      $ sysgc_arg $ tlab_off_arg $ adaptive_arg $ pause_goal_arg
      $ fold_jobs_arg $ verbose_arg $ faults_arg $ no_resilience_arg)

(* --- tune ---------------------------------------------------------- *)

let tune_cmd =
  let doc =
    "Advise heap and young-generation sizes for a collector: search a \
     (heap, young) grid for the configuration that meets the pause goal \
     with the best throughput, refine it with the adaptive sizing \
     policy, and print the equivalent JVM flags."
  in
  let collector_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"COLLECTOR"
          ~doc:
            "Collector: serial, parnew, parallel, parallelold, cms, g1, \
             concurrent-regions or journal-rc.")
  in
  let bench_arg =
    let doc = "DaCapo-like benchmark to tune against." in
    Arg.(value & opt string "xalan" & info [ "bench"; "b" ] ~docv:"NAME" ~doc)
  in
  let pause_goal_arg =
    let doc = "Pause goal in milliseconds ($(b,-XX:MaxGCPauseMillis))." in
    Arg.(value & opt float 200.0 & info [ "pause-goal" ] ~docv:"MS" ~doc)
  in
  let run collector bench pause_goal quick scope jobs out =
    let scope = resolve_scope quick scope in
    let kind = resolve_collector collector in
    let b = resolve_bench bench in
    if pause_goal <= 0.0 then begin
      Printf.eprintf "pause goal must be positive (got %g ms)\n" pause_goal;
      exit 1
    end;
    let r =
      Gcperf.Tune.run_scope ~scope ?jobs ~pause_goal_ms:pause_goal ~bench:b
        kind
    in
    emit out (Gcperf.Tune.render r)
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ collector_arg $ bench_arg $ pause_goal_arg $ quick_arg
      $ scope_arg $ jobs_arg $ out_arg)

(* --- suite --------------------------------------------------------- *)

let suite_cmd =
  let doc = "Describe the DaCapo-like benchmark suite." in
  let run () =
    List.iter
      (fun b ->
        let p = b.Gcperf_dacapo.Suite.profile in
        Printf.printf "%-10s %s%s\n" p.Gcperf_workload.Profile.name
          b.Gcperf_dacapo.Suite.description
          (if b.Gcperf_dacapo.Suite.crashes then " [crashes]" else ""))
      Gcperf_dacapo.Suite.all;
    Printf.printf "\nstable subset: %s\n"
      (String.concat ", " Gcperf_dacapo.Suite.stable_names)
  in
  Cmd.v (Cmd.info "suite" ~doc) Term.(const run $ const ())

(* --- all ----------------------------------------------------------- *)

let all_cmd =
  let doc = "Run every experiment and print all artifacts in order." in
  let run quick scope jobs gc_jobs =
    let scope = resolve_scope quick scope in
    apply_gc_jobs gc_jobs;
    (* Campaign siblings (fig1/fig2, fig5/table567) share one run via
       the registry memo, so the full sweep costs no duplicate work. *)
    List.iter
      (fun (e : Gcperf.Experiment.t) ->
        match Gcperf.Experiments.artifact ~scope ?jobs e.Gcperf.Experiment.id with
        | Some artifact ->
            Printf.printf "==== %s ====\n%s\n%!" e.Gcperf.Experiment.id
              (Gcperf.Artifact.to_text artifact)
        | None -> assert false)
      (Gcperf.Experiments.all ())
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const run $ quick_arg $ scope_arg $ jobs_arg $ gc_jobs_arg)

let main =
  let doc = "A multicore garbage-collector performance laboratory (PMAM'15)" in
  let info = Cmd.info "gcperf" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ list_cmd; run_cmd; trace_cmd; bench_cmd; tune_cmd; suite_cmd; all_cmd ]

let () = exit (Cmd.eval main)
