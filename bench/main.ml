(* Bechamel harness.

   Two groups:

   - "paper": one benchmark per table/figure of the study — each run
     regenerates the artifact (in quick mode, so the full suite stays in
     the minutes range).  `gcperf run <id>` produces the full-scale
     artifact.
   - "micro": collector primitives (allocation, young collection, full
     collection, concurrent cycle, client generation) so regressions in
     the simulator itself are visible independently of the campaigns.

   Plus "policy" (adaptive-sizing overhead against the fixed baseline),
   "exec" (worker-pool fan-out), "fault" (fault injector, degraded
   gateway and the resilient client session) and "cluster" (consistent-
   hash placement and the fan-out coordinator).

   Options:

   - [--only micro,policy,exec,fault,cluster,concurrent,distill,
     calibrate,paper,server] restricts the groups that run;
   - [--quota SECONDS] overrides the per-test measurement quota;
   - [--json PATH] writes the per-benchmark ns/run estimates as a JSON
     object: [jobs] and [recommended_domain_count] metadata plus a
     [results] list of [{"name": ..., "ns_per_run": ...}] records (the
     perf trajectory file BENCH_micro.json is produced this way). *)

open Bechamel
open Toolkit

module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Telemetry = Gcperf_telemetry.Telemetry
module Span = Gcperf_telemetry.Span
module Cost = Gcperf_telemetry.Cost
module Distill = Gcperf_distill.Distill

let mb = 1024 * 1024
let machine = Machine.paper_server ()

(* --- paper artifacts ------------------------------------------------- *)

let experiment_tests =
  List.map
    (fun id ->
      Test.make ~name:id
        (Staged.stage (fun () ->
             match Gcperf.Experiments.artifact ~scope:Gcperf.Scope.ci id with
             | Some a -> ignore (Gcperf.Artifact.to_text a)
             | None -> assert false)))
    [ "table2"; "table3"; "table4"; "fig1"; "fig2"; "fig3"; "table8" ]

(* The client-server campaigns are the heaviest; bench them through
   scaled-down runs so the whole harness stays tractable. *)
let server_tests =
  [
    Test.make ~name:"fig4-cms-server"
      (Staged.stage (fun () ->
           ignore
             (Gcperf.Exp_server.run_server ~quick:true ~kind:Gc_config.Cms
                ~stress:true ~hours:0.5 ())));
    Test.make ~name:"fig4-g1-server"
      (Staged.stage (fun () ->
           ignore
             (Gcperf.Exp_server.run_server ~quick:true ~kind:Gc_config.G1
                ~stress:true ~hours:0.5 ())));
    Test.make ~name:"server-po-default"
      (Staged.stage (fun () ->
           ignore
             (Gcperf.Exp_server.run_server ~quick:true
                ~kind:Gc_config.ParallelOld ~stress:false ~hours:0.5 ())));
    Test.make ~name:"fig5-table567-client"
      (Staged.stage (fun () ->
           (* Client generation + latency statistics against a synthetic
              pause timeline (the server side is benched above). *)
           let pauses =
             Array.init 40 (fun i ->
                 let s = 10.0 +. (30.0 *. float_of_int i) in
                 (s, s +. 2.0))
           in
           let w =
             { Gcperf_ycsb.Client.paper_workload with duration_s = 1200.0 }
           in
           let pts =
             Gcperf_ycsb.Client.run w ~pauses ~db_timeline:[||] ~seed:1
           in
           ignore (Gcperf_ycsb.Client.report pts ~kind:Gcperf_ycsb.Client.Read)));
  ]

(* --- micro ------------------------------------------------------------ *)

let vm_for kind =
  let vm =
    Vm.create machine
      (Gc_config.default kind ~heap_bytes:(256 * mb) ~young_bytes:(64 * mb))
      ~seed:7
  in
  let th = Vm.spawn_thread vm in
  (vm, th)

(* The trace kernel alone: one full Trace_live closure over a shared
   50k-object graph from 256 seed roots (deep enough that the default
   engagement threshold admits the crew).  The jobs count is in the
   name on purpose: on a single-core host, jobs4 measures domain
   time-sharing plus the crew hand-off, not a speedup, so each entry
   must gate only against its own baseline. *)
let par_trace_test ~domains =
  let module Os = Gcperf_heap.Obj_store in
  let module Ivec = Gcperf_util.Int_vec in
  let s = Os.create () in
  let n = 50_000 in
  let ids = Array.init n (fun _ -> Os.alloc s ~size:64 ~loc:Os.Eden) in
  let state = ref 11 in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  Array.iter
    (fun id ->
      for _ = 1 to 3 do
        Os.add_ref s ~from:id ~to_:ids.(rand n)
      done)
    ids;
  let marked = Ivec.create () and stack = Ivec.create () in
  Test.make
    ~name:(Printf.sprintf "par-trace-jobs%d" domains)
    (Staged.stage (fun () ->
         Ivec.clear marked;
         Ivec.clear stack;
         Os.begin_trace s;
         for i = 0 to 255 do
           let id = ids.(i * 64) in
           Os.mark s id;
           Ivec.push marked id;
           Ivec.push stack id
         done;
         Os.finish_trace s ~pred:Os.Trace_live ~marked ~stack ~domains))

(* The relocation kernel alone: plan all 50k objects to their current
   location (so the move is idempotent and every run sees the same
   store) and apply the plan through [finish_relocate].  Same naming
   caveat as par-trace: on a single-core host jobs4 measures the crew
   hand-off plus time-sharing, not a speedup. *)
let par_move_test ~domains =
  let module Os = Gcperf_heap.Obj_store in
  let s = Os.create () in
  let n = 50_000 in
  let ids = Array.init n (fun _ -> Os.alloc s ~size:64 ~loc:Os.Old) in
  Test.make
    ~name:(Printf.sprintf "par-move-jobs%d" domains)
    (Staged.stage (fun () ->
         Os.plan_clear s;
         Array.iter (fun id -> Os.plan_push_old s id ~age:3) ids;
         ignore (Os.finish_relocate s ~domains)))

let micro_tests =
  [
    Test.make ~name:"alloc-tlab"
      (let vm, th = vm_for Gc_config.ParallelOld in
       Staged.stage (fun () ->
           (* Drop the root right away: lifetimes only retire inside
              [Vm.step], which a micro-benchmark loop never reaches. *)
           let id = Vm.alloc vm th ~size:4096 ~lifetime:`Permanent in
           Vm.drop_root vm th id));
    Test.make ~name:"young-gc-parallel-old"
      (let vm, th = vm_for Gc_config.ParallelOld in
       Staged.stage (fun () ->
           (* ~52 MB of dropped data: one young collection per call. *)
           for _ = 1 to 100 do
             let id = Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent in
             Vm.drop_root vm th id
           done));
    Test.make ~name:"young-gc-g1"
      (let vm, th = vm_for Gc_config.G1 in
       Staged.stage (fun () ->
           for _ = 1 to 100 do
             let id = Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent in
             Vm.drop_root vm th id
           done));
    Test.make ~name:"young-gc-g1-telemetry"
      (* Same loop with an enabled registry riding along: the pair bounds
         the tracing overhead on the hottest collection path (<5% is the
         budget DESIGN.md commits to). *)
      (let telemetry = Telemetry.create ~enabled:true () in
       let vm =
         Vm.create ~telemetry machine
           (Gc_config.default Gc_config.G1 ~heap_bytes:(256 * mb)
              ~young_bytes:(64 * mb))
           ~seed:7
       in
       let th = Vm.spawn_thread vm in
       let calls = ref 0 in
       Staged.stage (fun () ->
           for _ = 1 to 100 do
             let id = Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent in
             Vm.drop_root vm th id
           done;
           (* Bound the span list so long quotas measure recording, not
              the memory of an unbounded trace. *)
           incr calls;
           if !calls land 0x3FF = 0 then Telemetry.clear telemetry));
    Test.make ~name:"record-span"
      (* Raw cost of one span record: append + two histogram folds +
         three counter bumps, the per-pause telemetry tax. *)
      (let telemetry = Telemetry.create ~enabled:true () in
       let span =
         {
           Span.collector = "G1GC";
           kind = "young";
           cause = "eden target reached";
           start_us = 1.0e6;
           duration_us = 12345.6;
           phases =
             [
               (Span.Safepoint, 800.0);
               (Span.Root_scan, 900.0);
               (Span.Fixed, 900.0);
               (Span.Copy, 9745.6);
             ];
           sub = [ (Span.Plan, 1218.2); (Span.Move, 8527.4) ];
           young_before = 64 * mb;
           young_after = 4 * mb;
           old_before = 16 * mb;
           old_after = 17 * mb;
           promoted = mb;
         }
       in
       let calls = ref 0 in
       Staged.stage (fun () ->
           Telemetry.record_span telemetry span;
           incr calls;
           if !calls land 0xFFFF = 0 then Telemetry.clear telemetry));
    Test.make ~name:"full-gc-serial"
      (let vm, th = vm_for Gc_config.Serial in
       let _keep =
         List.init 32 (fun _ ->
             Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent)
       in
       Staged.stage (fun () -> Vm.system_gc vm));
    Test.make ~name:"cms-concurrent-tick"
      (let vm, th = vm_for Gc_config.Cms in
       let _hoard =
         List.init 380 (fun _ ->
             Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent)
       in
       Staged.stage (fun () -> Vm.step vm ~dt_us:1000.0 (fun _ -> ())));
    Test.make ~name:"zipf-sample"
      (let prng = Gcperf_util.Prng.create 3 in
       Staged.stage (fun () ->
           ignore (Gcperf_util.Prng.zipf prng ~n:1_000_000 ~theta:0.99)));
    Test.make ~name:"latency-report-100k"
      (let prng = Gcperf_util.Prng.create 4 in
       let pts =
         Array.init 100_000 (fun _ ->
             (Gcperf_util.Prng.exponential prng 2.0, Gcperf_util.Prng.bool prng))
       in
       Staged.stage (fun () -> ignore (Gcperf_stats.Stats.latency_report pts)));
    par_trace_test ~domains:1;
    par_trace_test ~domains:4;
    par_move_test ~domains:1;
    par_move_test ~domains:4;
  ]

(* --- policy: adaptive sizing overhead --------------------------------- *)

(* The pair bounds the ergonomics tax on the collection path: the same
   allocation-heavy loop through [Vm.step], once with the fixed-size
   default and once with [-XX:+UseAdaptiveSizePolicy] attached.  The
   delta is the per-safepoint cost of observe/decide/apply plus whatever
   resizes the policy actually issues while converging. *)
let policy_vm ~adaptive =
  let cfg =
    Gc_config.default Gc_config.ParallelOld ~heap_bytes:(256 * mb)
      ~young_bytes:(64 * mb)
  in
  let vm = Vm.create machine { cfg with Gc_config.adaptive } ~seed:7 in
  let th = Vm.spawn_thread vm in
  (vm, th)

let policy_step (vm, th) =
  for _ = 1 to 100 do
    let id = Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent in
    Vm.drop_root vm th id
  done;
  Vm.step vm ~dt_us:1000.0 (fun _ -> ())

let policy_tests =
  [
    Test.make ~name:"step-fixed"
      (let h = policy_vm ~adaptive:false in
       Staged.stage (fun () -> policy_step h));
    Test.make ~name:"step-adaptive"
      (let h = policy_vm ~adaptive:true in
       Staged.stage (fun () -> policy_step h));
  ]

(* --- exec: the worker pool ------------------------------------------- *)

module Pool = Gcperf_exec.Pool

(* One pool cell: a self-contained simulated run — fresh VM, ~52 MB of
   young garbage per round, 40 rounds.  Heavy enough that fan-out pays on
   multicore hardware, small enough to keep the bench in milliseconds. *)
let pool_cell _i =
  let vm =
    Vm.create machine
      (Gc_config.default Gc_config.ParallelOld ~heap_bytes:(256 * mb)
         ~young_bytes:(64 * mb))
      ~seed:7
  in
  let th = Vm.spawn_thread vm in
  for _ = 1 to 40 do
    for _ = 1 to 100 do
      let id = Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent in
      Vm.drop_root vm th id
    done
  done;
  Vm.now_s vm

let pool_cells = Array.init 16 (fun i -> i)

let exec_tests =
  let map_cells ~jobs =
    Test.make
      ~name:(Printf.sprintf "pool-cells-jobs%d" jobs)
      (Staged.stage (fun () ->
           ignore (Pool.map_cells ~jobs pool_cell pool_cells)))
  in
  [
    (* jobs=1 is the sequential baseline; the jobs=2/4 entries measure
       the same 16 cells through the pool, so the ratio to jobs=1 is the
       pool's speedup (~1x on a single-core host, where the domains
       time-share one CPU). *)
    map_cells ~jobs:1;
    map_cells ~jobs:2;
    map_cells ~jobs:4;
    Test.make ~name:"pool-overhead-jobs4"
      (* Spawn/join cost alone: 16 trivial cells through 4 domains. *)
      (let cells = Array.init 16 (fun i -> i) in
       Staged.stage (fun () ->
           ignore (Pool.map_cells ~jobs:4 (fun i -> i * i) cells)));
  ]

(* --- fault: injector, gateway and resilient client -------------------- *)

module Profile = Gcperf_fault.Profile
module Injector = Gcperf_fault.Injector
module Gateway = Gcperf_kvstore.Gateway
module Resilient = Gcperf_ycsb.Resilient

(* The synthetic pause timeline shared with fig5-table567-client: a 2 s
   stop-the-world pause every 30 s. *)
let fault_pauses =
  Array.init 40 (fun i ->
      let s = 10.0 +. (30.0 *. float_of_int i) in
      (s, s +. 2.0))

let fault_tests =
  [
    Test.make ~name:"injector-outcome"
      (* One fault draw: four PRNG samples plus the profile compares —
         the per-attempt tax every session request pays. *)
      (let inj =
         Injector.create ~profile:Profile.storm ~seed:5 ~pauses:fault_pauses
       in
       Staged.stage (fun () -> ignore (Injector.outcome inj)));
    Test.make ~name:"gateway-offer-1k"
      (* 1000 admissions through the degraded gateway, spanning several
         pauses so shedding and fast rejection both trigger. *)
      (Staged.stage (fun () ->
           let gw = Gateway.create Gateway.degraded ~pauses:fault_pauses in
           for i = 0 to 999 do
             ignore
               (Gateway.offer gw
                  ~now_s:(float_of_int i *. 0.12)
                  ~service_ms:1.0)
           done));
    Test.make ~name:"resilient-session-storm"
      (* A full five-virtual-minute session under the worst profile with
         the whole resilience stack on: the end-to-end cost of one
         exp_faults grid cell's client side. *)
      (let w =
         { Gcperf_ycsb.Client.paper_workload with duration_s = 300.0 }
       in
       Staged.stage (fun () ->
           ignore
             (Resilient.run w ~profile:Profile.storm
                ~resilience:Resilient.paper_defaults
                ~gateway:Gateway.degraded ~pauses:fault_pauses
                ~db_timeline:[||] ~seed:5 ())));
  ]

(* --- cluster ring ------------------------------------------------------ *)

module Ring = Gcperf_cluster.Ring
module Cluster_node = Gcperf_cluster.Node
module Coordinator = Gcperf_cluster.Coordinator

(* A synthetic node timeline — 50 ms stop-the-world every 10 s, 0.5 %
   duty — so the coordinator bench measures the event loop, not VM
   generation. *)
let cluster_timeline =
  {
    Cluster_node.collector = "bench";
    node_seed = 0;
    duration_s = 120.0;
    intervals =
      Array.init 12 (fun i ->
          let s = (float_of_int i +. 0.5) *. 10.0 in
          (s, s +. 0.05));
    db_timeline = [||];
    pause_fraction = 0.005;
    oom = false;
  }

let cluster_tests =
  [
    Test.make ~name:"ring-create-64"
      (* Build the 64-node, 4096-point ring: the per-cell setup cost. *)
      (Staged.stage (fun () -> ignore (Ring.create ~nodes:64 ~replication:3 ())));
    Test.make ~name:"ring-replicas-10k"
      (* 10k replica-set lookups: the placement cost every sub-request
         pays (binary search + clockwise distinct-node walk). *)
      (let ring = Ring.create ~nodes:64 ~replication:3 () in
       Staged.stage (fun () ->
           for k = 0 to 9_999 do
             ignore (Ring.replicas ring ~key:k)
           done));
    Test.make ~name:"coordinator-session-2min"
      (* A two-virtual-minute fan-out-8 session over an 8-node ring on
         synthetic timelines: one ci-scale grid cell minus the VMs. *)
      (let w =
         {
           Gcperf_ycsb.Client.paper_workload with
           duration_s = 120.0;
           ops_per_s = 50.0;
         }
       in
       let config =
         {
           Coordinator.default with
           Coordinator.workload = w;
           fanout = 8;
           keyspace = 100_000;
         }
       in
       Staged.stage (fun () ->
           let ring = Ring.create ~nodes:8 ~replication:3 () in
           let nodes =
             Array.init 8 (fun id ->
                 Cluster_node.create ~id cluster_timeline ~profile:Profile.none
                   ~gateway:Gateway.unbounded ~seed:(100 + id))
           in
           ignore (Coordinator.run config ~ring ~nodes ~seed:9)));
  ]

(* --- concurrent collector family --------------------------------------- *)

(* Journal fold over 100k pre-built entries against 50k rc cells.  Same
   naming caveat as par-trace: the jobs count is in the name because on
   a single-core host jobs4 measures the crew hand-off plus domain
   time-sharing, not a speedup — each entry gates only against its own
   baseline. *)
let journal_fold_test ~domains =
  let module Journal = Gcperf_gc_concurrent.Journal in
  let j = Journal.create () in
  let cells = 50_000 in
  let state = ref 17 in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  for _ = 1 to 100_000 do
    Journal.append j (rand cells) (if rand 2 = 0 then 1 else -1)
  done;
  let rc = Array.make cells 0 in
  Test.make
    ~name:(Printf.sprintf "journal-fold-jobs%d" domains)
    (Staged.stage (fun () -> ignore (Journal.fold j ~rc ~domains)))

let concurrent_tests =
  [
    Test.make ~name:"mark-overhead"
      (* Allocation churn under the concurrent region collector: the
         SATB/load-barrier mutator tax plus the tick-driven concurrent
         mark and relocation machinery, end to end. *)
      (let vm, th = vm_for Gc_config.Concurrent_regions in
       Staged.stage (fun () ->
           for _ = 1 to 1000 do
             let id = Vm.alloc vm th ~size:4096 ~lifetime:`Permanent in
             Vm.drop_root vm th id
           done));
    Test.make ~name:"load-barrier-read"
      (* The self-healing load barrier: 10k reads over a store where a
         tenth of the objects are forwarded — the first read of each
         forwarded object takes the healing slow path, every other read
         the epoch-stamped fast path. *)
      (let module Os = Gcperf_heap.Obj_store in
       let s = Os.create () in
       let n = 10_000 in
       let ids = Array.init n (fun _ -> Os.alloc s ~size:64 ~loc:Os.Old) in
       Staged.stage (fun () ->
           Os.fwd_begin s;
           Array.iteri
             (fun i id -> if i mod 10 = 0 then Os.fwd_record s id)
             ids;
           Array.iter (fun id -> ignore (Os.fwd_read s id)) ids));
    journal_fold_test ~domains:1;
    journal_fold_test ~domains:4;
  ]

(* --- calibrate: pinned host-speed probe -------------------------------- *)

(* A fixed, allocation-free integer loop whose only variable is the
   host's single-thread speed.  bench_gate --calibrate divides the
   current probe measurement by the baseline's and scales every
   committed ns/run by that ratio before applying tolerances, so the
   gate survives runner-hardware drift without loosening the 2x bound.
   Keep this loop frozen: changing it invalidates every committed
   baseline at once. *)
let calibrate_tests =
  [
    Test.make ~name:"probe-spin"
      (Staged.stage (fun () ->
           let x = ref 0x2545F491 in
           for _ = 1 to 4096 do
             x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
             x := !x lxor (!x lsr 13)
           done;
           ignore (Sys.opaque_identity !x)));
  ]

(* --- distill: LBO cost extraction -------------------------------------- *)

let distill_tests =
  [
    Test.make ~name:"cost-extract"
      (* Distilling one recorded run: four counter reads plus a per-phase
         sweep over the span list (256 spans here — a small-heap ci cell's
         order of magnitude). *)
      (let telemetry = Telemetry.create ~enabled:true () in
       let span =
         {
           Span.collector = "G1GC";
           kind = "young";
           cause = "eden target reached";
           start_us = 1.0e6;
           duration_us = 12345.6;
           phases =
             [
               (Span.Safepoint, 800.0);
               (Span.Root_scan, 900.0);
               (Span.Fixed, 900.0);
               (Span.Copy, 9745.6);
             ];
           sub = [];
           young_before = 64 * mb;
           young_after = 4 * mb;
           old_before = 16 * mb;
           old_after = 17 * mb;
           promoted = mb;
         }
       in
       for _ = 1 to 256 do
         Telemetry.record_span telemetry span
       done;
       Telemetry.incr telemetry Cost.mutator_raw_us 3.5e7;
       Telemetry.incr telemetry Cost.alloc_tax_us 1.2e5;
       Telemetry.incr telemetry Cost.barrier_tax_us 2.3e5;
       Telemetry.incr telemetry Cost.steal_tax_us 1.4e5;
       Staged.stage (fun () -> ignore (Distill.of_run telemetry)));
    Test.make ~name:"step-tax"
      (* The per-quantum accounting the distillation adds to [Vm.step]
         when telemetry is on, under the collector whose barrier tax it
         splits.  Pair with micro/cms-concurrent-tick (telemetry off) to
         bound the overhead. *)
      (let telemetry = Telemetry.create ~enabled:true () in
       let vm =
         Vm.create ~telemetry machine
           (Gc_config.default Gc_config.Concurrent_regions
              ~heap_bytes:(256 * mb) ~young_bytes:(64 * mb))
           ~seed:7
       in
       let th = Vm.spawn_thread vm in
       let _hoard =
         List.init 380 (fun _ ->
             Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent)
       in
       let calls = ref 0 in
       Staged.stage (fun () ->
           Vm.step vm ~dt_us:1000.0 (fun _ -> ());
           (* Bound the gauge series the step samples into. *)
           incr calls;
           if !calls land 0x3FF = 0 then Telemetry.clear telemetry));
  ]

(* --- driver ------------------------------------------------------------ *)

let benchmark tests ~quota_s ~limit =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit ~quota:(Time.second quota_s) ~stabilize:false
      ~start:1 ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

(* Flattens an analysis into sorted (name, ns/run) rows. *)
let rows_of results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some _ | None -> Float.nan
      in
      rows := (name, est) :: !rows)
    results;
  List.sort compare !rows

let print_results label rows =
  Printf.printf "== %s ==\n%!" label;
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Printf.printf "  %-32s (no estimate)\n" name
      else Printf.printf "  %-32s %12.3f ms/run\n" name (est /. 1e6))
    rows;
  print_newline ()

(* The results array keeps the flat {"name", "ns_per_run"} records the
   gate scans for; the wrapper records how the numbers were taken.
   Measurements always run sequentially ("jobs": 1 — the jobs-suffixed
   entries encode their own fan-out in their names), and
   "recommended_domain_count" says how many cores the host offered, so
   a reader can tell a real jobs4 speedup from domain time-sharing on a
   single-core runner. *)
let write_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"jobs\": 1,\n  \"recommended_domain_count\": %d,\n"
    (Domain.recommended_domain_count ());
  output_string oc "  \"results\": [\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    {\"name\": %S, \"ns_per_run\": %s}%s\n" name
        (if Float.is_nan est then "null" else Printf.sprintf "%.3f" est)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --- options ----------------------------------------------------------- *)

type opts = {
  json : string option;
  only : string list;  (* empty = all groups *)
  quota : float option;
  limit : int option;
}

let usage () =
  prerr_endline
    "usage: main.exe \
     [--only \
     micro,policy,exec,fault,cluster,concurrent,distill,calibrate,paper,server] \
     [--quota SECONDS] [--limit RUNS] [--json PATH]";
  exit 2

let parse_opts () =
  let opts = ref { json = None; only = []; quota = None; limit = None } in
  let rec go = function
    | [] -> ()
    | "--json" :: path :: rest ->
        opts := { !opts with json = Some path };
        go rest
    | "--only" :: groups :: rest ->
        opts := { !opts with only = String.split_on_char ',' groups };
        go rest
    | "--quota" :: s :: rest -> (
        match float_of_string_opt s with
        | Some q when q > 0.0 ->
            opts := { !opts with quota = Some q };
            go rest
        | Some _ | None -> usage ())
    | "--limit" :: s :: rest -> (
        match int_of_string_opt s with
        | Some n when n > 0 ->
            opts := { !opts with limit = Some n };
            go rest
        | Some _ | None -> usage ())
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  !opts

let () =
  let opts = parse_opts () in
  let enabled g = opts.only = [] || List.mem g opts.only in
  let quota default = Option.value opts.quota ~default in
  let limit default = Option.value opts.limit ~default in
  let all_rows = ref [] in
  let run_group g label tests ~quota_s ~lim =
    if enabled g then begin
      let rows =
        rows_of
          (benchmark
             (Test.make_grouped ~name:g tests)
             ~quota_s:(quota quota_s) ~limit:(limit lim))
      in
      print_results label rows;
      all_rows := !all_rows @ rows
    end
  in
  run_group "micro" "micro (simulator primitives)" micro_tests ~quota_s:0.5
    ~lim:500;
  run_group "policy" "policy (adaptive sizing overhead)" policy_tests
    ~quota_s:0.5 ~lim:500;
  run_group "exec" "exec (worker pool fan-out)" exec_tests ~quota_s:0.5
    ~lim:50;
  run_group "fault" "fault (injector, gateway, resilient client)" fault_tests
    ~quota_s:0.5 ~lim:50;
  run_group "cluster" "cluster (ring placement, fan-out coordinator)"
    cluster_tests ~quota_s:0.5 ~lim:50;
  run_group "concurrent" "concurrent family (barriers, journal fold)"
    concurrent_tests ~quota_s:0.5 ~lim:200;
  run_group "distill" "distill (LBO cost extraction)" distill_tests
    ~quota_s:0.5 ~lim:200;
  run_group "calibrate" "calibrate (host-speed probe)" calibrate_tests
    ~quota_s:0.5 ~lim:500;
  run_group "paper" "paper artifacts (quick mode)" experiment_tests ~quota_s:1.0
    ~lim:2;
  run_group "server" "client-server campaigns (scaled)" server_tests
    ~quota_s:1.0 ~lim:2;
  Option.iter (fun path -> write_json path !all_rows) opts.json;
  if enabled "paper" then
    print_endline
      "note: `gcperf run <id>` regenerates each table/figure at full scale."
