(* Young-generation tuning study: how does the young-generation size
   change pause counts and durations for a fixed heap?

   This is the experiment behind the paper's Table 3 (and its surprising
   finding that, for CMS and ParNew, a smaller young generation can mean
   a *longer* average pause).

   Run with:  dune exec examples/tune_young_gen.exe *)

module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Gc_event = Gcperf_sim.Gc_event
module Table = Gcperf_report.Table

let gb = Gc_config.gb
let mb = Gc_config.mb

let () =
  let machine = Machine.paper_server () in
  let bench = match Suite.find "h2" with Some b -> b | None -> assert false in
  let heap = gb 8 in
  let youngs = [ mb 512; gb 1; gb 2; gb 4 ] in
  List.iter
    (fun kind ->
      let table =
        Table.create
          ~columns:
            [
              ("Young size", Table.Right);
              ("#pauses", Table.Right);
              ("avg pause (s)", Table.Right);
              ("total pause (s)", Table.Right);
              ("total time (s)", Table.Right);
            ]
      in
      List.iter
        (fun young ->
          let gc = Gc_config.default kind ~heap_bytes:heap ~young_bytes:young in
          let r = Harness.run machine bench ~gc ~system_gc:false () in
          let n = List.length r.Harness.events in
          let total_pause =
            List.fold_left
              (fun acc e -> acc +. (e.Gc_event.duration_us /. 1e6))
              0.0 r.Harness.events
          in
          Table.add_row table
            [
              Printf.sprintf "%d MB" (young / mb 1);
              string_of_int n;
              (if n = 0 then "-"
               else Table.cell_f (total_pause /. float_of_int n));
              Table.cell_f total_pause;
              Table.cell_f r.Harness.total_s;
            ])
        youngs;
      Printf.printf "h2, 8 GB heap, %s\n%s\n"
        (Gc_config.kind_to_string kind)
        (Table.render table))
    [ Gc_config.ParallelOld; Gc_config.Cms ]
