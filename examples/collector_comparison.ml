(* Collector bake-off: run the whole stable DaCapo subset under all six
   collectors and rank them by total execution time — a small version of
   the campaign behind the paper's Figure 3.

   Run with:  dune exec examples/collector_comparison.exe *)

module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Chart = Gcperf_report.Chart
module P = Gcperf_workload.Profile

let () =
  let machine = Machine.paper_server () in
  List.iter
    (fun system_gc ->
      Printf.printf "=== system GC between iterations: %b ===\n" system_gc;
      let totals = Hashtbl.create 8 in
      let wins = Hashtbl.create 8 in
      List.iter
        (fun bench ->
          let runs =
            List.map
              (fun kind ->
                let gc = Gc_config.baseline kind in
                ( Gc_config.kind_to_string kind,
                  Harness.run ~iterations:6 machine bench ~gc ~system_gc () ))
              Gc_config.all_kinds
          in
          List.iter
            (fun (name, r) ->
              Hashtbl.replace totals name
                (r.Harness.total_s
                +. Option.value ~default:0.0 (Hashtbl.find_opt totals name)))
            runs;
          match Harness.best_of (List.map snd runs) with
          | None -> ()
          | Some best ->
              let w = best.Harness.gc_name in
              Printf.printf "  %-8s fastest: %s (%.2f s)\n"
                bench.Suite.profile.P.name w best.Harness.total_s;
              Hashtbl.replace wins w
                (1 + Option.value ~default:0 (Hashtbl.find_opt wins w)))
        Suite.stable_subset;
      let entries =
        List.map
          (fun kind ->
            let name = Gc_config.kind_to_string kind in
            (name, Option.value ~default:0.0 (Hashtbl.find_opt totals name)))
          Gc_config.all_kinds
      in
      print_newline ();
      print_string
        (Chart.bars ~title:"total execution time across the subset (s)"
           (List.sort (fun (_, a) (_, b) -> compare a b) entries));
      print_newline ())
    [ true; false ]
