(* Quickstart: simulate one DaCapo-like benchmark on the paper's 48-core
   server under two collectors and compare their GC logs.

   Run with:  dune exec examples/quickstart.exe *)

module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Gc_event = Gcperf_sim.Gc_event

let () =
  (* 1. The machine: 48 cores, 4 sockets, 8 NUMA nodes, 64 GB RAM. *)
  let machine = Machine.paper_server () in
  Format.printf "%a@.@." Machine.pp machine;

  (* 2. The benchmark: xalan, the paper's pause-time example. *)
  let bench =
    match Suite.find "xalan" with Some b -> b | None -> assert false
  in

  (* 3. Run it for 10 iterations under ParallelOld and G1, with the
     DaCapo-style forced full collection between iterations. *)
  List.iter
    (fun kind ->
      let gc = Gc_config.baseline kind in
      let result = Harness.run machine bench ~gc ~system_gc:true () in
      Printf.printf "%s\n" result.Harness.gc_name;
      Printf.printf "  total execution time: %.2f s\n" result.Harness.total_s;
      Printf.printf "  final iteration:      %.2f s\n" result.Harness.final_s;
      let events = result.Harness.events in
      Printf.printf "  stop-the-world pauses: %d (%.2f s total)\n"
        (List.length events)
        (List.fold_left
           (fun acc e -> acc +. (e.Gc_event.duration_us /. 1e6))
           0.0 events);
      (* The three longest pauses, like a gc.log analysis would show. *)
      let sorted =
        List.sort
          (fun a b -> compare b.Gc_event.duration_us a.Gc_event.duration_us)
          events
      in
      List.iteri
        (fun i e ->
          if i < 3 then
            Printf.printf "    %5.2f s %-12s at t=%.1fs (%s)\n"
              (e.Gc_event.duration_us /. 1e6)
              (Gc_event.pause_kind_to_string e.Gc_event.kind)
              (e.Gc_event.start_us /. 1e6)
              e.Gc_event.reason)
        sorted;
      print_newline ())
    [ Gc_config.ParallelOld; Gc_config.G1 ]
