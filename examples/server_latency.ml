(* Client-server latency study in miniature: run the key-value store
   under a collector of your choice, then replay a YCSB-like client
   against the server's pause timeline and report the latency statistics
   of the paper's Tables 5-7.

   Run with:  dune exec examples/server_latency.exe [-- cms|g1|parallelold]  *)

module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Vm = Gcperf_runtime.Vm
module Server = Gcperf_kvstore.Server
module Client = Gcperf_ycsb.Client
module Gc_event = Gcperf_sim.Gc_event
module Stats = Gcperf_stats.Stats

let () =
  let kind =
    if Array.length Sys.argv > 1 then
      match Gc_config.kind_of_string Sys.argv.(1) with
      | Some k -> k
      | None ->
          Printf.eprintf "unknown collector %s\n" Sys.argv.(1);
          exit 1
    else Gc_config.Cms
  in
  let machine = Machine.paper_server () in
  (* A scaled-down stressed server: 8 GB heap, 20 virtual minutes. *)
  let gc =
    Gc_config.default kind ~heap_bytes:(Gc_config.gb 8)
      ~young_bytes:(Gc_config.mb 1536)
  in
  let vm = Vm.create machine gc ~seed:7 in
  let server =
    Server.create vm
      (Server.stress_config ~heap_bytes:gc.Gc_config.heap_bytes)
      ~seed:11
  in
  Server.replay_commitlog server ~target_bytes:(Gc_config.gb 3);
  Printf.printf "replayed %d MB into the cache (%.0f virtual s)\n"
    (Server.memtable_bytes server / (1024 * 1024))
    (Vm.now_s vm);
  Server.run server ~duration_s:1200.0 ~ops_per_s:1500.0 ~read_frac:0.88
    ~insert_frac:0.02;
  let events = Vm.events vm in
  Printf.printf "server: %d ops, %d STW pauses, max pause %.2f s\n"
    (Server.operations server)
    (Gc_event.count events) (Gc_event.max_pause_s events);

  (* Client side: Poisson arrivals against the pause timeline. *)
  let workload =
    {
      Client.paper_workload with
      Client.duration_s = Vm.now_s vm;
      ops_per_s = 300.0;
    }
  in
  let points =
    Client.run workload
      ~pauses:(Gc_event.intervals events)
      ~db_timeline:(Server.db_size_timeline server)
      ~seed:13
  in
  let show kind_name kind =
    let r = Client.report points ~kind in
    Printf.printf "%s: avg %.3f ms, max %.3f ms, min %.3f ms\n" kind_name
      r.Stats.avg_ms r.Stats.max_ms r.Stats.min_ms;
    Printf.printf "  %-16s %%reqs %6.2f   %%GC-correlated %6.1f\n"
      r.Stats.around_avg.Stats.label r.Stats.around_avg.Stats.pct_requests
      r.Stats.around_avg.Stats.pct_gc;
    List.iter
      (fun b ->
        Printf.printf "  %-16s %%reqs %6.3f   %%GC-correlated %6.1f\n"
          b.Stats.label b.Stats.pct_requests b.Stats.pct_gc)
      r.Stats.above
  in
  show "READ" Client.Read;
  show "UPDATE" Client.Update
