(** Domain-based work pool for experiment fan-out.

    The experiment matrices (collector x heap/young grid x benchmark x
    replicated run) are arrays of {e pure} cells: each cell builds its
    own [Machine.t], VM, heap and PRNG stream from an
    [Exp_common.seed]-derived seed, and no mutable state crosses
    domains.  {!map_cells} distributes such an array over a fixed number
    of worker domains and returns the results {b in input order}, so a
    parallel run is byte-identical to a sequential one — the determinism
    contract DESIGN.md §9 spells out.

    Scheduling is self-balancing: workers repeatedly claim the next
    unclaimed index from a shared atomic cursor, so a long cell (say the
    64 GB heap point of the grid) does not serialise the tail of the
    array behind it. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: one worker per available core.
    Every [?jobs] parameter across the experiment runners defaults to
    this. *)

val map_cells : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_cells ~jobs f cells] is [Array.map f cells], computed by
    [min jobs (Array.length cells)] domains (the calling domain works
    too).  [jobs <= 1] — or fewer than two cells — runs sequentially in
    the calling domain with no spawns.  [jobs <= 0] means
    {!default_jobs}.

    Results preserve input order regardless of completion order.

    If one or more cells raise, the exception of the {b lowest-indexed}
    failing cell is re-raised (with its backtrace) after all workers
    drain, so exception behaviour is deterministic too.  Cells indexed
    above a recorded failure may be skipped. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_cells} over a list, preserving order. *)
