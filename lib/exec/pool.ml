let default_jobs () = Domain.recommended_domain_count ()

(* Lowest-failing-index-wins failure slot.  Workers race to publish their
   cell's exception; a CAS loop keeps the one with the smallest index, so
   the exception that escapes [map_cells] does not depend on domain
   scheduling.  (The lowest-indexed cell that fails always runs: cells
   below it never fail, so no recorded failure can cause it to be
   skipped.) *)
type failure = { index : int; exn_ : exn; bt : Printexc.raw_backtrace }

let note_failure slot index exn_ bt =
  let rec loop () =
    let cur = Atomic.get slot in
    let better = match cur with None -> true | Some f -> index < f.index in
    if better && not (Atomic.compare_and_set slot cur (Some { index; exn_; bt }))
    then loop ()
  in
  loop ()

let map_cells ~jobs f cells =
  let n = Array.length cells in
  let jobs = if jobs <= 0 then default_jobs () else jobs in
  let jobs = Stdlib.min jobs n in
  if n = 0 then [||]
  else if jobs <= 1 then Array.map f cells
  else begin
    (* Distinct indices are written by distinct workers and read only
       after the joins below, so the results array needs no atomics. *)
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n then continue := false
        else begin
          let skip =
            match Atomic.get failed with
            | Some fl -> fl.index < i
            | None -> false
          in
          if not skip then begin
            match f cells.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                note_failure failed i e (Printexc.get_raw_backtrace ())
          end
        end
      done
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failed with
    | Some fl -> Printexc.raise_with_backtrace fl.exn_ fl.bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* no failure *))
          results
  end

let map_list ~jobs f l = Array.to_list (map_cells ~jobs f (Array.of_list l))
