(** Parked worker domains for intra-collection parallel phases.

    Unlike {!Pool}, which spawns domains per call (right for coarse
    experiment fan-out, ruinous for a phase that runs thousands of times
    per artifact), the crew keeps its workers alive and parked between
    phases; a hand-off costs one lock and broadcast.

    The crew is a process-global singleton.  {!try_with} hands exclusive
    use of it to one caller at a time; a caller refused the crew must run
    its sequential path instead.  Kernels built on the crew must be
    content-deterministic — produce the same results however many workers
    execute them, including zero — so that the fallback (and any crew
    size) is observationally invisible. *)

type t

val try_with : domains:int -> (t -> unit) -> bool
(** [try_with ~domains f] tries to acquire the global crew, growing it to
    at least [domains - 1] parked workers, and runs [f crew] while
    holding it.  Returns [false] without running [f] when [domains <= 1]
    or when another domain holds the crew.  [f] may call {!run} any
    number of times (a multi-round phase performs one {!run} per round). *)

val run : t -> (int -> unit) -> unit
(** [run crew f] executes [f slot] on the calling domain (slot 0) and on
    every parked worker (slots 1..), returning when all have finished.
    The crew may hold more workers than the [domains] just requested —
    [f] must treat its slot number as a worker identity, not a partition
    index, and tolerate slots beyond the requested count (typically by
    returning immediately). *)

val size : t -> int
(** Workers available to {!run}, including the calling domain. *)
