(* A crew of parked worker domains for intra-collection parallelism.

   [Pool.map_cells] spawns domains per call, which is fine when each cell
   is a whole experiment but hopeless for a mark phase that runs thousands
   of times per artifact: domain spawn/join costs dwarf the scan.  The
   crew keeps its workers alive between phases, parked on a condition
   variable; a phase hand-off is one lock/broadcast instead of a spawn.

   The crew is a process-global singleton guarded by a user mutex.  A
   caller that cannot take the mutex (another domain is mid-phase) is
   told so and falls back to its sequential path — the kernels built on
   top are content-deterministic, so the fallback is semantically
   invisible.  Workers are spawned on demand up to the largest request
   seen and shut down from an [at_exit] hook registered at module
   initialisation (hence on the main domain, whatever domain first uses
   the crew). *)

type t = {
  m : Mutex.t;
  go : Condition.t;
  done_c : Condition.t;
  mutable task : (int -> unit) option;
  mutable gen : int;  (* task generation; bumped per hand-off *)
  mutable running : int;  (* workers still inside the current task *)
  mutable stop : bool;
  mutable handles : unit Domain.t list;
  mutable workers : int;
}

let worker t slot gen0 =
  let my_gen = ref gen0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.m;
    while (not t.stop) && t.gen = !my_gen do
      Condition.wait t.go t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      continue_ := false
    end
    else begin
      my_gen := t.gen;
      let f = match t.task with Some f -> f | None -> fun _ -> () in
      Mutex.unlock t.m;
      (try f slot with _ -> ());
      Mutex.lock t.m;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.signal t.done_c;
      Mutex.unlock t.m
    end
  done

(* Serialises whole multi-round phases, not individual hand-offs: the
   holder owns the crew until it releases the mutex. *)
let user_m = Mutex.create ()

let crew : t option ref = ref None

let shutdown () =
  match !crew with
  | None -> ()
  | Some t ->
      Mutex.lock t.m;
      t.stop <- true;
      Condition.broadcast t.go;
      Mutex.unlock t.m;
      List.iter Domain.join t.handles;
      t.handles <- [];
      t.workers <- 0;
      crew := None

(* Registered at module init so it runs on the main domain's exit even
   when a pool worker domain is the first (or only) crew user. *)
let () = at_exit shutdown

let ensure_crew () =
  match !crew with
  | Some t -> t
  | None ->
      let t =
        {
          m = Mutex.create ();
          go = Condition.create ();
          done_c = Condition.create ();
          task = None;
          gen = 0;
          running = 0;
          stop = false;
          handles = [];
          workers = 0;
        }
      in
      crew := Some t;
      t

let grow t n =
  while t.workers < n do
    let slot = t.workers + 1 in
    let gen0 = t.gen in
    t.handles <- Domain.spawn (fun () -> worker t slot gen0) :: t.handles;
    t.workers <- t.workers + 1
  done

let run t f =
  Mutex.lock t.m;
  t.task <- Some f;
  t.gen <- t.gen + 1;
  t.running <- t.workers;
  Condition.broadcast t.go;
  Mutex.unlock t.m;
  (* The calling domain is slot 0 and works alongside the crew. *)
  (try f 0 with e -> (
     (* Wait the workers out even on failure so the crew stays coherent. *)
     Mutex.lock t.m;
     while t.running > 0 do Condition.wait t.done_c t.m done;
     t.task <- None;
     Mutex.unlock t.m;
     raise e));
  Mutex.lock t.m;
  while t.running > 0 do
    Condition.wait t.done_c t.m
  done;
  t.task <- None;
  Mutex.unlock t.m

let try_with ~domains f =
  if domains <= 1 then false
  else if not (Mutex.try_lock user_m) then false
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock user_m)
      (fun () ->
        let t = ensure_crew () in
        grow t (domains - 1);
        f t;
        true)

let size t = t.workers + 1
