type series = { label : string; glyph : char; points : (float * float) array }

let bounds series =
  let xs =
    List.concat_map
      (fun s -> Array.to_list (Array.map fst s.points))
      series
  in
  let ys =
    List.concat_map
      (fun s -> Array.to_list (Array.map snd s.points))
      series
  in
  match (xs, ys) with
  | [], _ | _, [] -> (0.0, 1.0, 0.0, 1.0)
  | _ ->
      let lo l = List.fold_left Float.min (List.hd l) l in
      let hi l = List.fold_left Float.max (List.hd l) l in
      let x0 = lo xs and x1 = hi xs and y0 = Float.min 0.0 (lo ys) and y1 = hi ys in
      let x1 = if x1 = x0 then x0 +. 1.0 else x1 in
      let y1 = if y1 = y0 then y0 +. 1.0 else y1 in
      (x0, x1, y0, y1)

let plot ~interpolate ?(width = 72) ?(height = 20) ~x_label ~y_label series =
  let x0, x1, y0, y1 = bounds series in
  let grid = Array.make_matrix height width ' ' in
  let place x y glyph =
    let c =
      int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
    in
    let r =
      height - 1
      - int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
    in
    if c >= 0 && c < width && r >= 0 && r < height then grid.(r).(c) <- glyph
  in
  List.iter
    (fun s ->
      if interpolate && Array.length s.points > 1 then begin
        let sorted = Array.copy s.points in
        Array.sort compare sorted;
        for i = 0 to Array.length sorted - 2 do
          let xa, ya = sorted.(i) and xb, yb = sorted.(i + 1) in
          let steps = max 1 (int_of_float ((xb -. xa) /. (x1 -. x0) *. float_of_int width)) in
          for k = 0 to steps do
            let f = float_of_int k /. float_of_int steps in
            place (xa +. (f *. (xb -. xa))) (ya +. (f *. (yb -. ya))) s.glyph
          done
        done
      end
      else Array.iter (fun (x, y) -> place x y s.glyph) s.points)
    series;
  let buf = Buffer.create ((width + 8) * (height + 4)) in
  Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
  Array.iteri
    (fun r row ->
      let y =
        y1 -. (float_of_int r /. float_of_int (height - 1) *. (y1 -. y0))
      in
      Buffer.add_string buf (Printf.sprintf "%8.2f |" y);
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 9 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%s%-*.2f%*.2f  (%s)\n" (String.make 10 ' ') (width - 8)
       x0 8 x1 x_label);
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "    %c = %s\n" s.glyph s.label))
    series;
  Buffer.contents buf

let scatter ?width ?height ~x_label ~y_label series =
  plot ~interpolate:false ?width ?height ~x_label ~y_label series

let line ?width ?height ~x_label ~y_label series =
  plot ~interpolate:true ?width ?height ~x_label ~y_label series

let bars ?(width = 50) ~title entries =
  let hi = List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 entries in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, v) ->
      let n = int_of_float (v /. hi *. float_of_int width) in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s %.1f\n" label_w label (String.make n '#') v))
    entries;
  Buffer.contents buf
