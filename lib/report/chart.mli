(** ASCII charts for the paper's figures.

    Terminal-friendly renderings of the scatter plots (Figures 1, 4, 5),
    line charts (Figure 2) and bar charts (Figure 3).  Each series is
    drawn with its own glyph; axes are scaled automatically. *)

type series = { label : string; glyph : char; points : (float * float) array }

val scatter :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** Scatter plot; overlapping points from different series show the glyph
    of the last series drawn. *)

val line :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** Like {!scatter} but linearly interpolates between consecutive points
    of each series. *)

val bars : ?width:int -> title:string -> (string * float) list -> string
(** Horizontal bar chart (Figure 3's ranking). *)
