(** Plain-text table rendering for experiment output. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width does not match the header. *)

val add_separator : t -> unit

val render : t -> string
(** Monospace rendering with a header rule, suitable for terminals and
    EXPERIMENTS.md code blocks. *)

val to_csv : t -> string
(** The same data as comma-separated values (quoting commas). *)

val cell_f : ?decimals:int -> float -> string
(** Float formatting helper ([decimals] defaults to 2). *)

val cell_pct : float -> string
(** Percent with 1-3 significant decimals, like the paper's tables. *)
