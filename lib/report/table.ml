module Vec = Gcperf_util.Vec

type align = Left | Right

type row = Cells of string list | Separator

type t = { columns : (string * align) list; rows : row Vec.t }

let create ~columns = { columns; rows = Vec.create () }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: width mismatch";
  Vec.push t.rows (Cells cells)

let add_separator t = Vec.push t.rows Separator

let render t =
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i (h, _) ->
        Vec.fold
          (fun w row ->
            match row with
            | Separator -> w
            | Cells cells -> max w (String.length (List.nth cells i)))
          (String.length h) t.rows)
      t.columns
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else begin
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
    end
  in
  let render_cells cells =
    let parts =
      List.map2
        (fun (s, (_, align)) w -> pad align w s)
        (List.combine cells t.columns)
        widths
    in
    String.concat "  " parts
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_cells headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Vec.iter
    (fun row ->
      (match row with
      | Separator -> Buffer.add_string buf rule
      | Cells cells -> Buffer.add_string buf (render_cells cells));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let quote s =
  if String.contains s ',' || String.contains s '"' then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map quote cells));
    Buffer.add_char buf '\n'
  in
  emit (List.map fst t.columns);
  Vec.iter
    (function Separator -> () | Cells cells -> emit cells)
    t.rows;
  Buffer.contents buf

let cell_f ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct x =
  if x = 0.0 then "0.0"
  else if x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.3f" x
