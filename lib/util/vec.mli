(** Growable arrays.

    A small dynamic-array implementation used throughout the simulator for
    object tables, root sets and log buffers.  Amortised O(1) push;
    elements are stored contiguously for cache-friendly iteration. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Bounds-checked access. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument if
    empty. *)

val top : 'a t -> 'a
(** Last element without removing it. *)

val clear : 'a t -> unit
(** Logical clear; capacity is retained. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes index [i] in O(1) by moving the last element
    into its place; returns the removed element. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)
