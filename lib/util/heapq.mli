(** Binary min-heap keyed by [int] priorities.

    Used for the object death queue (keyed by cumulative allocated bytes)
    and for the discrete-event scheduler (keyed by virtual time in
    microseconds).  Priorities fit comfortably in OCaml's 63-bit [int]. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push q key payload] inserts with priority [key]. *)

val min_key : 'a t -> int option
(** Smallest key currently in the queue, if any. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum entry. *)

val pop_until : 'a t -> int -> (int * 'a) list
(** [pop_until q limit] pops every entry with [key <= limit], in key
    order. *)

val clear : 'a t -> unit

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterates in unspecified order. *)
