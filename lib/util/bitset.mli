(** Dense bitset over non-negative integer keys.

    Backs the membership side of remembered sets: a compact [int Vec.t]
    carries the member ids in insertion order (deterministic iteration)
    while the bitset answers membership in O(1) without hashing.  The
    set grows automatically on {!set}; {!mem} on an index beyond the
    current capacity is simply [false]. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty set.  [capacity] pre-sizes the backing store (in bits). *)

val mem : t -> int -> bool
(** @raise Invalid_argument on a negative index. *)

val set : t -> int -> unit
(** Adds the index, growing the backing store as needed. *)

val clear : t -> int -> unit
(** Removes the index; no-op if beyond capacity. *)

val reset : t -> unit
(** Removes every member, keeping the backing store. *)

val capacity : t -> int
(** Number of addressable bits currently backed by storage. *)

val next_set : t -> int -> int
(** [next_set t i] is the smallest member >= [i], or [-1] when none.
    O(words scanned); the free-region allocator's find-first. *)
