type 'a entry = { key : int; payload : 'a }

type 'a t = { heap : 'a entry Vec.t }

let create () = { heap = Vec.create () }

let length q = Vec.length q.heap

let is_empty q = Vec.is_empty q.heap

let swap q i j =
  let a = Vec.get q.heap i and b = Vec.get q.heap j in
  Vec.set q.heap i b;
  Vec.set q.heap j a

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if (Vec.get q.heap i).key < (Vec.get q.heap parent).key then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let n = Vec.length q.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && (Vec.get q.heap l).key < (Vec.get q.heap !smallest).key then
    smallest := l;
  if r < n && (Vec.get q.heap r).key < (Vec.get q.heap !smallest).key then
    smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q key payload =
  Vec.push q.heap { key; payload };
  sift_up q (Vec.length q.heap - 1)

let min_key q =
  if is_empty q then None else Some (Vec.get q.heap 0).key

let pop q =
  if is_empty q then None
  else begin
    let e = Vec.get q.heap 0 in
    let last = Vec.pop q.heap in
    if not (is_empty q) then begin
      Vec.set q.heap 0 last;
      sift_down q 0
    end;
    Some (e.key, e.payload)
  end

let pop_until q limit =
  let rec loop acc =
    match min_key q with
    | Some k when k <= limit -> (
        match pop q with
        | Some (key, payload) -> loop ((key, payload) :: acc)
        | None -> acc)
    | _ -> acc
  in
  List.rev (loop [])

let clear q = Vec.clear q.heap

let iter f q = Vec.iter (fun e -> f e.key e.payload) q.heap
