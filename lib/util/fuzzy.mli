(** "Did you mean ...?" suggestions for CLI error messages. *)

val edit_distance : string -> string -> int
(** Levenshtein distance (insert/delete/substitute, unit costs). *)

val suggest :
  ?max_suggestions:int -> candidates:string list -> string -> string list
(** Candidates close to the input — small edit distance (at most half the
    input length) or containing it as a substring — best first, capped at
    [max_suggestions] (default 3).  Case-insensitive. *)

val did_you_mean :
  ?max_suggestions:int -> candidates:string list -> string -> string
(** [" (did you mean a, b?)"] ready to append to an error message, or
    [""] when nothing is close. *)
