(* 32 bits per word: shifts instead of division, and no flirting with
   OCaml's 63-bit int when computing masks. *)

let bits_per_word = 32
let word_of i = i lsr 5
let mask_of i = 1 lsl (i land 31)

type t = { mutable words : int array }

let create ?(capacity = 256) () =
  { words = Array.make (max 1 ((capacity + bits_per_word - 1) / bits_per_word)) 0 }

let check i = if i < 0 then invalid_arg "Bitset: negative index"

let capacity t = Array.length t.words * bits_per_word

let mem t i =
  check i;
  let w = word_of i in
  w < Array.length t.words && t.words.(w) land mask_of i <> 0

let grow t needed_words =
  let cap = Array.length t.words in
  let ncap = ref (max 1 cap) in
  while !ncap < needed_words do
    ncap := !ncap * 2
  done;
  let nw = Array.make !ncap 0 in
  Array.blit t.words 0 nw 0 cap;
  t.words <- nw

let set t i =
  check i;
  let w = word_of i in
  if w >= Array.length t.words then grow t (w + 1);
  t.words.(w) <- t.words.(w) lor mask_of i

let clear t i =
  check i;
  let w = word_of i in
  if w < Array.length t.words then t.words.(w) <- t.words.(w) land lnot (mask_of i)

let reset t = Array.fill t.words 0 (Array.length t.words) 0
