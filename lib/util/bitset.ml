(* 32 bits per word: shifts instead of division, and no flirting with
   OCaml's 63-bit int when computing masks. *)

let bits_per_word = 32
let word_of i = i lsr 5
let mask_of i = 1 lsl (i land 31)

type t = { mutable words : int array }

let create ?(capacity = 256) () =
  { words = Array.make (max 1 ((capacity + bits_per_word - 1) / bits_per_word)) 0 }

let check i = if i < 0 then invalid_arg "Bitset: negative index"

let capacity t = Array.length t.words * bits_per_word

let mem t i =
  check i;
  let w = word_of i in
  w < Array.length t.words && t.words.(w) land mask_of i <> 0

let grow t needed_words =
  let cap = Array.length t.words in
  let ncap = ref (max 1 cap) in
  while !ncap < needed_words do
    ncap := !ncap * 2
  done;
  let nw = Array.make !ncap 0 in
  Array.blit t.words 0 nw 0 cap;
  t.words <- nw

let set t i =
  check i;
  let w = word_of i in
  if w >= Array.length t.words then grow t (w + 1);
  t.words.(w) <- t.words.(w) lor mask_of i

let clear t i =
  check i;
  let w = word_of i in
  if w < Array.length t.words then t.words.(w) <- t.words.(w) land lnot (mask_of i)

let reset t = Array.fill t.words 0 (Array.length t.words) 0

(* Trailing-zero count via de Bruijn multiplication: branch-free lowest
   set bit for a 32-bit word, no hardware ctz needed. *)
let debruijn = 0x077CB531

let tz_table =
  let t = Array.make 32 0 in
  for i = 0 to 31 do
    t.(((debruijn lsl i) land 0xFFFFFFFF) lsr 27) <- i
  done;
  t

let[@inline] lowest_bit w =
  tz_table.((((w land -w) * debruijn) land 0xFFFFFFFF) lsr 27)

let next_set t i =
  check i;
  let nwords = Array.length t.words in
  let w = ref (word_of i) in
  if !w >= nwords then -1
  else begin
    (* mask off bits below [i] in the first word *)
    let first = t.words.(!w) land lnot (mask_of i - 1) in
    if first <> 0 then (!w * bits_per_word) + lowest_bit first
    else begin
      incr w;
      while !w < nwords && t.words.(!w) = 0 do
        incr w
      done;
      if !w >= nwords then -1
      else (!w * bits_per_word) + lowest_bit t.words.(!w)
    end
  end
