(** Growable int vector: {!Vec} monomorphised to [int].

    The generic {!Vec} erases its element type, so even an [int Vec.t]
    pays a [caml_modify] write barrier per store and a float-array tag
    check per load.  Object-id vectors sit on the simulator's hottest
    paths (registries, free lists, per-object ref vectors, trace
    stacks); this twin compiles their accesses to plain word moves.
    The API mirrors {!Vec} minus the pieces ids never need. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val get : t -> int -> int
(** Bounds-checked; raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> unit
val push : t -> int -> unit

val pop : t -> int
(** Removes and returns the last element; raises on empty. *)

val unsafe_pop : t -> int
(** [pop] without the emptiness check; the caller must have already
    established the vector is non-empty. *)

val clear : t -> unit
(** Truncates to length 0 without shrinking the backing store. *)

val unsafe_get : t -> int -> int
(** No bounds check; for batch kernels that manage their own indices. *)

val unsafe_set : t -> int -> int -> unit

val truncate : t -> int -> unit
(** Shrinks to length [n] (no-op unless [0 <= n <= length]). *)

val swap_remove : t -> int -> int
(** O(1) unordered removal: moves the last element into the hole. *)

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val exists : (int -> bool) -> t -> bool
val to_array : t -> int array
val to_list : t -> int list
val of_list : int list -> t
val filter_in_place : (int -> bool) -> t -> unit
