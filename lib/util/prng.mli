(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulator flows through this module so
    that every experiment is reproducible from a seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA'14): tiny state, excellent
    statistical quality for simulation purposes, and cheap splitting, which
    lets every mutator thread own an independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val unit_float : t -> float
(** [unit_float t] is uniform in [\[0, 1)], 53 bits of precision.
    Consumes one 64-bit draw; [float t 1.0] is the same value from the
    same stream position. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto variate with minimum [scale]; heavy-tailed for [shape <= 2]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal variate; [mu]/[sigma] are parameters of the underlying
    normal distribution. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal variate via Box-Muller. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples a rank in [\[0, n)] with Zipfian skew
    [theta] (YCSB's request distribution).  Uses the rejection-inversion
    method of Hörmann, accurate for large [n] without O(n) tables. *)
