type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  mutable dummy : 'a option; (* fill value for growth, captured on first push *)
}

let create ?(capacity = 8) () =
  ignore capacity;
  { data = [||]; len = 0; dummy = None }

let make n x = { data = Array.make (max n 1) x; len = n; dummy = Some x }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let nd = Array.make ncap x in
  Array.blit v.data 0 nd 0 v.len;
  v.data <- nd

let push v x =
  if v.dummy = None then v.dummy <- Some x;
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let top v =
  if v.len = 0 then invalid_arg "Vec.top: empty";
  v.data.(v.len - 1)

let clear v = v.len <- 0

let swap_remove v i =
  check v i;
  let x = v.data.(i) in
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_array v = Array.sub v.data 0 v.len

let to_list v = Array.to_list (to_array v)

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  v.len <- !j
