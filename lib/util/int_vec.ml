(* A growable vector of ints.  [Vec] instantiated at [int] still pays the
   polymorphic array price on every access — a [caml_modify] call per
   store and a flat-float-array tag check per load — because the element
   type is erased inside the module.  The simulator's hottest loops
   (object registries, free lists, ref vectors, trace stacks) move object
   ids exclusively, so this monomorphic twin compiles those accesses to
   single word loads and stores. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 0) () =
  { data = (if capacity = 0 then [||] else Array.make capacity 0); len = 0 }

let[@inline] length v = v.len

let[@inline] is_empty v = v.len = 0

let[@inline] check v i =
  if i < 0 || i >= v.len then invalid_arg "Int_vec: index out of bounds"

let[@inline] get v i =
  check v i;
  v.data.(i)

let[@inline] set v i x =
  check v i;
  v.data.(i) <- x

let[@inline never] grow v =
  let cap = Array.length v.data in
  let nd = Array.make (if cap = 0 then 8 else cap * 2) 0 in
  Array.blit v.data 0 nd 0 v.len;
  v.data <- nd

let[@inline] push v x =
  if v.len = Array.length v.data then grow v;
  (* len < capacity after the growth check *)
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let[@inline] pop v =
  if v.len = 0 then invalid_arg "Int_vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let[@inline] clear v = v.len <- 0

(* Raw access for batch kernels (Obj_store sweeps) that manage their own
   bounds; indices must be < [length]. *)
let[@inline] unsafe_get v i = Array.unsafe_get v.data i
let[@inline] unsafe_set v i x = Array.unsafe_set v.data i x

(* Unchecked pop for hot paths that already tested [is_empty]. *)
let[@inline] unsafe_pop v =
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let[@inline] truncate v n = if n >= 0 && n <= v.len then v.len <- n

let swap_remove v i =
  check v i;
  let x = v.data.(i) in
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_array v = Array.sub v.data 0 v.len

let to_list v = Array.to_list (to_array v)

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  v.len <- !j
