(* An integer-keyed hash set that reproduces [Hashtbl]'s observable
   behaviour exactly — same hash function, same bucket count evolution,
   same within-bucket ordering, hence the same iteration order — while
   staying monomorphic and allocation-free on the add/remove fast path
   (no generic-hash C call, no [Cons] cell per binding).

   Root sets iterate in hash-table order and that order feeds GC traces,
   whose visit order decides survivor-overflow promotion splits in the
   simulator: swapping in a structure with any other iteration order
   changes simulated results.  Fidelity is enforced by the test suite,
   which drives this module and [Hashtbl] through identical operation
   sequences and compares iteration orders (see test_util.ml). *)

type bucket = { mutable keys : int array; mutable blen : int }

type t = {
  mutable buckets : bucket array;
  mutable size : int;
  initial_buckets : int;
  (* one-entry hash memo: the dominant access pattern is add-then-remove
     of the same key (root an allocation, drop the root), which would
     otherwise mix the same word twice *)
  mutable memo_key : int;
  mutable memo_hash : int;
}

(* [Hashtbl.hash] on an [int], reimplemented: MurmurHash3 mixing of the
   64-bit word folded to 32 bits, then the final avalanche, masked to 30
   bits — bit-for-bit what runtime/hash.c computes. *)

let[@inline] mul32 a b = a * b land 0xFFFFFFFF

let[@inline] rotl32 x n = (x lsl n) lor (x lsr (32 - n)) land 0xFFFFFFFF

let hash_int d =
  (* The runtime mixes the tagged machine word w = 2d+1, not the value:
     reconstruct w's two 32-bit halves from 63-bit OCaml arithmetic (w's
     bit 63 is d's sign), then fold halves and sign as
     caml_hash_mix_intnat does. *)
  let t = (2 * d) + 1 in
  let lo = t land 0xFFFFFFFF in
  let hi =
    (t asr 32) land 0x7FFFFFFF lor (if d < 0 then 0x80000000 else 0)
  in
  let sign = if d < 0 then 0xFFFFFFFF else 0 in
  let n = hi lxor sign lxor lo in
  let n = mul32 n 0xcc9e2d51 in
  let n = rotl32 n 15 in
  let n = mul32 n 0x1b873593 in
  let h = n (* seed 0 lxor n *) in
  let h = rotl32 h 13 in
  let h = (mul32 h 5 + 0xe6546b64) land 0xFFFFFFFF in
  (* FINAL_MIX *)
  let h = h lxor (h lsr 16) in
  let h = mul32 h 0x85ebca6b in
  let h = h lxor (h lsr 13) in
  let h = mul32 h 0xc2b2ae35 in
  let h = h lxor (h lsr 16) in
  h land 0x3FFFFFFF

let rec power_2_above x n =
  if x >= n then x
  else if x * 2 > Sys.max_array_length then x
  else power_2_above (x * 2) n

let fresh_bucket _ = { keys = [||]; blen = 0 }

let create n =
  let nb = power_2_above 16 n in
  {
    buckets = Array.init nb fresh_bucket;
    size = 0;
    initial_buckets = nb;
    memo_key = min_int;
    memo_hash = 0;
  }

let length t = t.size

(* Buckets are stored in traversal order: index 0 is the chain head (the
   most recent insertion), as [Hashtbl.add]'s prepend leaves it. *)

(* Shifts use manual loops, not [Array.blit]: buckets hold a handful of
   keys and the blit's C call costs more than the moves themselves. *)
let bucket_prepend b k =
  let cap = Array.length b.keys in
  if b.blen = cap then begin
    let nk = Array.make (if cap = 0 then 4 else cap * 2) 0 in
    for i = b.blen downto 1 do
      nk.(i) <- b.keys.(i - 1)
    done;
    nk.(0) <- k;
    b.keys <- nk
  end
  else begin
    let keys = b.keys in
    for i = b.blen downto 1 do
      keys.(i) <- keys.(i - 1)
    done;
    keys.(0) <- k
  end;
  b.blen <- b.blen + 1

let bucket_append b k =
  let cap = Array.length b.keys in
  if b.blen = cap then begin
    let nk = Array.make (if cap = 0 then 4 else cap * 2) 0 in
    Array.blit b.keys 0 nk 0 b.blen;
    b.keys <- nk
  end;
  b.keys.(b.blen) <- k;
  b.blen <- b.blen + 1

(* [Hashtbl]'s resize appends each binding to its new chain's tail while
   walking the old table in traversal order, so relative order survives a
   resize; appending here reproduces that. *)
let resize t =
  let ob = t.buckets in
  let nsize = Array.length ob * 2 in
  if nsize < Sys.max_array_length then begin
    let nb = Array.init nsize fresh_bucket in
    t.buckets <- nb;
    let mask = nsize - 1 in
    Array.iter
      (fun b ->
        for i = 0 to b.blen - 1 do
          let k = b.keys.(i) in
          bucket_append nb.(hash_int k land mask) k
        done)
      ob
  end

let[@inline] memo_hash_int t k =
  if k = t.memo_key then t.memo_hash
  else begin
    let h = hash_int k in
    t.memo_key <- k;
    t.memo_hash <- h;
    h
  end

let[@inline] index t k = memo_hash_int t k land (Array.length t.buckets - 1)

let add t k =
  bucket_prepend t.buckets.(index t k) k;
  t.size <- t.size + 1;
  if t.size > Array.length t.buckets lsl 1 then resize t

let mem t k =
  let b = t.buckets.(index t k) in
  let rec scan i = i < b.blen && (b.keys.(i) = k || scan (i + 1)) in
  scan 0

(* [Hashtbl.replace] of a present key rewrites its data cell in place —
   for a set that is a no-op — and otherwise inserts like [add]. *)
let replace t k = if not (mem t k) then add t k

let remove t k =
  let b = t.buckets.(index t k) in
  let rec find i =
    if i >= b.blen then -1 else if b.keys.(i) = k then i else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    let keys = b.keys in
    for j = i to b.blen - 2 do
      keys.(j) <- keys.(j + 1)
    done;
    b.blen <- b.blen - 1;
    t.size <- t.size - 1
  end

let iter f t =
  Array.iter
    (fun b ->
      for i = 0 to b.blen - 1 do
        f b.keys.(i)
      done)
    t.buckets

let reset t =
  t.size <- 0;
  if Array.length t.buckets = t.initial_buckets then
    Array.iter (fun b -> b.blen <- 0) t.buckets
  else t.buckets <- Array.init t.initial_buckets fresh_bucket
