(* An integer-keyed hash set that reproduces [Hashtbl]'s observable
   behaviour exactly — same hash function, same bucket count evolution,
   same within-bucket ordering, hence the same iteration order — while
   staying monomorphic and allocation-free on the add/remove fast path
   (no generic-hash C call, no [Cons] cell per binding).

   Root sets iterate in hash-table order and that order feeds GC traces,
   whose visit order decides survivor-overflow promotion splits in the
   simulator: swapping in a structure with any other iteration order
   changes simulated results.  Fidelity is enforced by the test suite,
   which drives this module and [Hashtbl] through identical operation
   sequences and compares iteration orders (see test_util.ml). *)

type bucket = { mutable keys : int array; mutable blen : int }

type t = {
  mutable buckets : bucket array;
  mutable size : int;
  (* Derived from [Array.length buckets], maintained on create/resize/
     reset: the add/remove fast path reads these instead of re-deriving
     them from the bucket array's header each call. *)
  mutable mask : int;
  mutable resize_at : int;
  initial_buckets : int;
  (* Direct-mapped hash cache: the store recycles object ids through its
     free list, so a root set sees the same few hundred keys over and
     over — caching the (expensive, fidelity-mandated) MurmurHash per
     key turns the add/remove fast path into a mask and two loads.  The
     cache only memoises hash values, never bindings, so table semantics
     are untouched.  [cache_keys] starts at [min_int] (never a real
     key); a key equal to [min_int] just recomputes every time. *)
  cache_keys : int array;
  cache_vals : int array;
}

let cache_size = 256

(* [Hashtbl.hash] on an [int], reimplemented: MurmurHash3 mixing of the
   64-bit word folded to 32 bits, then the final avalanche, masked to 30
   bits — bit-for-bit what runtime/hash.c computes. *)

let[@inline] mul32 a b = a * b land 0xFFFFFFFF

let[@inline] rotl32 x n = (x lsl n) lor (x lsr (32 - n)) land 0xFFFFFFFF

let hash_int d =
  (* The runtime mixes the tagged machine word w = 2d+1, not the value:
     reconstruct w's two 32-bit halves from 63-bit OCaml arithmetic (w's
     bit 63 is d's sign), then fold halves and sign as
     caml_hash_mix_intnat does. *)
  let t = (2 * d) + 1 in
  let lo = t land 0xFFFFFFFF in
  let hi =
    (t asr 32) land 0x7FFFFFFF lor (if d < 0 then 0x80000000 else 0)
  in
  let sign = if d < 0 then 0xFFFFFFFF else 0 in
  let n = hi lxor sign lxor lo in
  let n = mul32 n 0xcc9e2d51 in
  let n = rotl32 n 15 in
  let n = mul32 n 0x1b873593 in
  let h = n (* seed 0 lxor n *) in
  let h = rotl32 h 13 in
  let h = (mul32 h 5 + 0xe6546b64) land 0xFFFFFFFF in
  (* FINAL_MIX *)
  let h = h lxor (h lsr 16) in
  let h = mul32 h 0x85ebca6b in
  let h = h lxor (h lsr 13) in
  let h = mul32 h 0xc2b2ae35 in
  let h = h lxor (h lsr 16) in
  h land 0x3FFFFFFF

let rec power_2_above x n =
  if x >= n then x
  else if x * 2 > Sys.max_array_length then x
  else power_2_above (x * 2) n

let fresh_bucket _ = { keys = [||]; blen = 0 }

let create n =
  let nb = power_2_above 16 n in
  {
    buckets = Array.init nb fresh_bucket;
    size = 0;
    mask = nb - 1;
    resize_at = nb lsl 1;
    initial_buckets = nb;
    cache_keys = Array.make cache_size min_int;
    cache_vals = Array.make cache_size 0;
  }

let length t = t.size

(* Buckets are stored in traversal order: index 0 is the chain head (the
   most recent insertion), as [Hashtbl.add]'s prepend leaves it. *)

(* Shifts use manual loops, not [Array.blit]: buckets hold a handful of
   keys and the blit's C call costs more than the moves themselves. *)
let bucket_prepend b k =
  let cap = Array.length b.keys in
  if b.blen = cap then begin
    let nk = Array.make (if cap = 0 then 4 else cap * 2) 0 in
    for i = b.blen downto 1 do
      Array.unsafe_set nk i (Array.unsafe_get b.keys (i - 1))
    done;
    Array.unsafe_set nk 0 k;
    b.keys <- nk
  end
  else begin
    (* blen < cap here, so every index below is in bounds. *)
    let keys = b.keys in
    for i = b.blen downto 1 do
      Array.unsafe_set keys i (Array.unsafe_get keys (i - 1))
    done;
    Array.unsafe_set keys 0 k
  end;
  b.blen <- b.blen + 1

let bucket_append b k =
  let cap = Array.length b.keys in
  if b.blen = cap then begin
    let nk = Array.make (if cap = 0 then 4 else cap * 2) 0 in
    Array.blit b.keys 0 nk 0 b.blen;
    b.keys <- nk
  end;
  b.keys.(b.blen) <- k;
  b.blen <- b.blen + 1

(* [Hashtbl]'s resize appends each binding to its new chain's tail while
   walking the old table in traversal order, so relative order survives a
   resize; appending here reproduces that. *)
let resize t =
  let ob = t.buckets in
  let nsize = Array.length ob * 2 in
  if nsize < Sys.max_array_length then begin
    let nb = Array.init nsize fresh_bucket in
    t.buckets <- nb;
    let mask = nsize - 1 in
    t.mask <- mask;
    t.resize_at <- nsize lsl 1;
    Array.iter
      (fun b ->
        for i = 0 to b.blen - 1 do
          let k = b.keys.(i) in
          bucket_append nb.(hash_int k land mask) k
        done)
      ob
  end

let[@inline] memo_hash_int t k =
  let slot = k land (cache_size - 1) in
  if Array.unsafe_get t.cache_keys slot = k then
    Array.unsafe_get t.cache_vals slot
  else begin
    let h = hash_int k in
    Array.unsafe_set t.cache_keys slot k;
    Array.unsafe_set t.cache_vals slot h;
    h
  end

let[@inline] index t k = memo_hash_int t k land t.mask

(* [index] masks by the bucket count, so the lookup is always in
   bounds; likewise scans below [blen] stay inside [keys]. *)
let[@inline] bucket t k = Array.unsafe_get t.buckets (index t k)

let add t k =
  bucket_prepend (bucket t k) k;
  t.size <- t.size + 1;
  if t.size > t.resize_at then resize t

(* Top-level, fully-applied scan: a local [let rec] capturing the bucket
   would allocate its closure on every call. *)
let rec scan_from keys blen k i =
  if i >= blen then -1
  else if Array.unsafe_get keys i = k then i
  else scan_from keys blen k (i + 1)

let mem t k =
  let b = bucket t k in
  scan_from b.keys b.blen k 0 >= 0

(* [Hashtbl.replace] of a present key rewrites its data cell in place —
   for a set that is a no-op — and otherwise inserts like [add]. *)
let replace t k = if not (mem t k) then add t k

(* Head hit first, scan second: removal of the most recent insertion —
   the allocate/drop-root churn pattern — finds its key at the chain
   head, where [add]'s prepend put it. *)
let remove t k =
  let b = bucket t k in
  let keys = b.keys and blen = b.blen in
  let i =
    if blen > 0 && Array.unsafe_get keys 0 = k then 0
    else scan_from keys blen k 1
  in
  if i >= 0 then begin
    let last = blen - 1 in
    for j = i to last - 1 do
      Array.unsafe_set keys j (Array.unsafe_get keys (j + 1))
    done;
    b.blen <- last;
    t.size <- t.size - 1
  end

(* Direct nested loop, no [Array.iter]: root-set iteration seeds every
   trace, and the per-bucket closure invocation dominates on mostly-empty
   tables.  The size guard skips the bucket walk entirely for empty
   tables (a fresh table still has its initial buckets to scan). *)
let iter f t =
  if t.size > 0 then begin
    let bs = t.buckets in
    for bi = 0 to Array.length bs - 1 do
      let b = Array.unsafe_get bs bi in
      let keys = b.keys in
      for i = 0 to b.blen - 1 do
        f (Array.unsafe_get keys i)
      done
    done
  end

let reset t =
  t.size <- 0;
  if Array.length t.buckets = t.initial_buckets then
    Array.iter (fun b -> b.blen <- 0) t.buckets
  else begin
    t.buckets <- Array.init t.initial_buckets fresh_bucket;
    t.mask <- t.initial_buckets - 1;
    t.resize_at <- t.initial_buckets lsl 1
  end
