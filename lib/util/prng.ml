type t = {
  mutable state : int64;
  (* Memoised rejection-inversion constants for the last zipf target:
     YCSB-style workloads draw millions of samples from one (n, theta)
     pair, and recomputing the integration bounds costs two [**] calls
     per draw.  [zipf_n = 0] marks the cache empty. *)
  mutable zipf_n : int;
  mutable zipf_theta : float;
  mutable zipf_theta_eff : float;
  mutable zipf_omt : float; (* 1 - theta_eff *)
  mutable zipf_inv_omt : float; (* 1 / (1 - theta_eff) *)
  mutable zipf_hx0 : float;
  mutable zipf_hn : float;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let of_state state =
  {
    state;
    zipf_n = 0;
    zipf_theta = 0.0;
    zipf_theta_eff = 0.0;
    zipf_omt = 0.0;
    zipf_inv_omt = 0.0;
    zipf_hx0 = 0.0;
    zipf_hn = 0.0;
  }

let create seed = of_state (Int64.of_int seed)

(* SplitMix64 output function: add the golden gamma, then xor-shift mix.
   Inlined so hot callers keep the int64 intermediates in registers
   instead of boxing them between calls. *)
let[@inline] bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = of_state (bits64 t)

let copy t = of_state t.state

(* Keep 62 bits so the value is non-negative in OCaml's 63-bit int. *)
let[@inline] nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  assert (n > 0);
  (* Modulo bias is negligible for simulation ranges (n << 2^62). *)
  nonneg t mod n

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let[@inline] unit_float t =
  (* 53 random bits into [0,1). *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int x *. 0x1.0p-53

let[@inline] float t x = unit_float t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else unit_float t < p

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t mean =
  let u = 1.0 -. unit_float t in
  -. mean *. log u

let pareto t ~shape ~scale =
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))

let gaussian t ~mean ~stddev =
  let u1 = 1.0 -. unit_float t and u2 = unit_float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

(* Zipf sampling by rejection inversion (Hörmann & Derflinger 1996), as
   used in YCSB's ScrambledZipfianGenerator.  Valid for theta <> 1; we
   nudge theta slightly when it is exactly 1. *)
let zipf t ~n ~theta =
  assert (n > 0);
  if n = 1 then 0
  else begin
    if t.zipf_n <> n || t.zipf_theta <> theta then begin
      let eff =
        if Float.abs (theta -. 1.0) < 1e-9 then 1.0 +. 1e-6 else theta
      in
      let omt = 1.0 -. eff in
      let h x = ((x ** omt) -. 1.0) /. omt in
      t.zipf_n <- n;
      t.zipf_theta <- theta;
      t.zipf_theta_eff <- eff;
      t.zipf_omt <- omt;
      t.zipf_inv_omt <- 1.0 /. omt;
      t.zipf_hx0 <- h 0.5 -. 1.0;
      t.zipf_hn <- h (float_of_int n +. 0.5)
    end;
    let theta = t.zipf_theta_eff and omt = t.zipf_omt in
    let h x = ((x ** omt) -. 1.0) /. omt in
    let h_inv x = (1.0 +. (x *. omt)) ** t.zipf_inv_omt in
    let hx0 = t.zipf_hx0 in
    let hn = t.zipf_hn in
    let rec draw () =
      let u = hx0 +. (unit_float t *. (hn -. hx0)) in
      let x = h_inv u in
      let k = Float.round x in
      let k = if k < 1.0 then 1.0 else if k > float_of_int n then float_of_int n else k in
      (* Accept if u falls under the discrete histogram bar for k. *)
      if u >= h (k -. 0.5) -. (k ** (-. theta)) then int_of_float k - 1
      else draw ()
    in
    draw ()
  end
