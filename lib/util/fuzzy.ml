(* Two-row Levenshtein; candidate sets here are a handful of short names,
   so clarity beats cleverness. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <-
          min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let suggest ?(max_suggestions = 3) ~candidates input =
  let input_l = String.lowercase_ascii input in
  let scored =
    List.filter_map
      (fun c ->
        let cl = String.lowercase_ascii c in
        let d = edit_distance input_l cl in
        (* Accept near-misses and prefix/substring matches ("tab" for
           "table2"); reject anything further than half the input away. *)
        let near = d <= max 1 (String.length input_l / 2) in
        let contains =
          String.length input_l >= 2
          &&
          let rec at i =
            i + String.length input_l <= String.length cl
            && (String.sub cl i (String.length input_l) = input_l || at (i + 1))
          in
          at 0
        in
        if near || contains then Some (d, c) else None)
      candidates
  in
  List.sort compare scored
  |> List.filteri (fun i _ -> i < max_suggestions)
  |> List.map snd

let did_you_mean ?max_suggestions ~candidates input =
  match suggest ?max_suggestions ~candidates input with
  | [] -> ""
  | s -> Printf.sprintf " (did you mean %s?)" (String.concat ", " s)
