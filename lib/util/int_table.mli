(** Integer hash set with [Hashtbl]-identical iteration order.

    A drop-in replacement for [(int, unit) Hashtbl.t] in hot paths: same
    hash function (reimplemented without the generic-hash C call), same
    bucket-count evolution, same within-bucket ordering — therefore the
    same iteration order for any operation sequence — but monomorphic and
    free of per-binding allocation.  Simulation results depend on root-set
    iteration order, so order fidelity is load-bearing; the test suite
    checks it against [Hashtbl] on randomized operation sequences. *)

type t

val hash_int : int -> int
(** [Hashtbl.hash] on an [int], bit-for-bit. *)

val create : int -> t
(** [create n] sizes the table like [Hashtbl.create n]. *)

val add : t -> int -> unit
(** Unconditional insert at the bucket head, like [Hashtbl.add].  Adding
    a key twice shadows (and double-counts) it — callers insert fresh
    keys only, or go through {!replace}. *)

val replace : t -> int -> unit
(** Insert unless present, like [Hashtbl.replace] on a unit table. *)

val remove : t -> int -> unit
(** Removes the most recently added occurrence, like [Hashtbl.remove]. *)

val mem : t -> int -> bool

val iter : (int -> unit) -> t -> unit
(** Iterates in [Hashtbl.iter] order.  The table must not be modified
    during iteration. *)

val length : t -> int

val reset : t -> unit
(** Empties the table and restores its initial bucket count, like
    [Hashtbl.reset]. *)
