type spike = { at_s : float; len_s : float; mult : float }

type t = {
  name : string;
  delay_prob : float;
  delay_min_ms : float;
  delay_max_ms : float;
  drop_prob : float;
  error_prob : float;
  pause_spike_mult : float;
  pause_spike_tail_s : float;
  spikes : spike list;
}

let none =
  {
    name = "none";
    delay_prob = 0.0;
    delay_min_ms = 0.0;
    delay_max_ms = 0.0;
    drop_prob = 0.0;
    error_prob = 0.0;
    pause_spike_mult = 1.0;
    pause_spike_tail_s = 0.0;
    spikes = [];
  }

let flaky_network =
  {
    none with
    name = "flaky-network";
    delay_prob = 0.05;
    delay_min_ms = 5.0;
    delay_max_ms = 80.0;
    drop_prob = 0.01;
    error_prob = 0.005;
  }

let pause_spike =
  {
    none with
    name = "pause-spike";
    pause_spike_mult = 4.0;
    pause_spike_tail_s = 2.0;
  }

let storm =
  {
    flaky_network with
    name = "storm";
    pause_spike_mult = 4.0;
    pause_spike_tail_s = 2.0;
    spikes =
      [
        { at_s = 120.0; len_s = 30.0; mult = 3.0 };
        { at_s = 480.0; len_s = 30.0; mult = 3.0 };
      ];
  }

let all = [ none; flaky_network; pause_spike; storm ]

let names = List.map (fun p -> p.name) all

let to_string p = p.name

(* Mirrors Gc_config.kind_of_string: case-insensitive, separator-blind
   (pause_spike, "pause spike" and pauseSpike all resolve), with the
   obvious shorthands accepted as aliases. *)
let of_string s =
  let canon s =
    String.concat ""
      (String.split_on_char '-'
         (String.concat ""
            (String.split_on_char '_'
               (String.concat ""
                  (String.split_on_char ' ' (String.lowercase_ascii s))))))
  in
  match canon s with
  | "none" | "off" -> Some none
  | "flakynetwork" | "flaky" -> Some flaky_network
  | "pausespike" | "spike" -> Some pause_spike
  | "storm" -> Some storm
  | c -> List.find_opt (fun p -> canon p.name = c) all
