(** Deterministic fault injector.

    One injector per experiment cell, created from the cell's derived
    seed and the server's pause timeline.  It owns a {!Gcperf_sim.Clock}
    that the session driver advances to each simulated event time; every
    decision — fault outcome, spike multiplier — reads the clock, so the
    fault schedule is a pure function of (profile, seed, pauses) and
    never of wall time or worker count.

    Both {!outcome} and {!load_multiplier} expect non-decreasing times:
    the session's event loop processes attempts in simulated-time order,
    which is exactly what keeps the PRNG stream reproducible. *)

type outcome =
  | Pass  (** the response goes through untouched *)
  | Delay of float  (** the response arrives [ms] late *)
  | Drop  (** the response is lost; the client hears nothing *)
  | Error  (** the server fails the request immediately *)

type t

val create :
  profile:Profile.t -> seed:int -> pauses:(float * float) array -> t
(** [pauses] are the server's stop-the-world intervals in seconds,
    sorted by start time (as from {!Gcperf_sim.Gc_event.intervals}). *)

val profile : t -> Profile.t

val now_s : t -> float

val advance_to : t -> float -> unit
(** Move the injector's clock forward to an absolute simulated time.
    Times in the past are ignored (the clock never rewinds). *)

val outcome : t -> outcome
(** Draw the fault outcome for a request issued at the clock's current
    time.  Consumes a fixed number of PRNG draws per call regardless of
    the outcome, so schedules stay aligned across profiles that share a
    seed. *)

val load_multiplier : t -> float -> float
(** [load_multiplier t at_s] is the arrival-rate multiplier at [at_s]:
    the max of every fixed spike covering [at_s] and, when the profile
    spikes on pauses, of the pause-window multiplier.  [1.0] when
    nothing is spiking.  [at_s] must be non-decreasing across calls. *)
