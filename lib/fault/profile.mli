(** Fault profiles: named, declarative descriptions of what goes wrong.

    A profile is pure data — probabilities and schedules — interpreted by
    {!Injector} against one experiment cell's PRNG stream and pause
    timeline.  The same profile therefore produces the same fault
    schedule in every run of a cell, whatever the worker count. *)

type spike = {
  at_s : float;  (** spike start, seconds since experiment start *)
  len_s : float;
  mult : float;  (** arrival-rate multiplier while the spike holds *)
}

type t = {
  name : string;
  delay_prob : float;  (** per-response chance of an extra network delay *)
  delay_min_ms : float;
  delay_max_ms : float;
  drop_prob : float;  (** per-response chance the reply is lost *)
  error_prob : float;  (** per-request chance of a server-side error *)
  pause_spike_mult : float;
      (** arrival-rate multiplier while a GC pause holds the safepoint
          (and for {!pause_spike_tail_s} after it): the retry storm the
          rest of the client population mounts against a stalled server.
          [1.0] disables. *)
  pause_spike_tail_s : float;
  spikes : spike list;  (** fixed-schedule synthetic load spikes *)
}

val none : t
(** No faults: the injector passes every request through untouched. *)

val flaky_network : t
(** Tail-latency noise: occasional delayed responses, rare drops and
    server errors, no load spikes. *)

val pause_spike : t
(** The paper's §6 amplifier: request rate quadruples while a server GC
    pause holds the safepoint (and shortly after), piling arrivals onto
    the stalled request queue. *)

val storm : t
(** {!flaky_network} and {!pause_spike} combined, plus two fixed load
    spikes: the worst afternoon on call. *)

val all : t list
(** Every named profile, in documentation order. *)

val names : string list
(** Canonical names of {!all}: the CLI's candidate list for
    did-you-mean suggestions. *)

val to_string : t -> string
(** The profile's canonical name ([of_string] round-trips it). *)

val of_string : string -> t option
(** Resolve a user-supplied name, mirroring
    [Gc_config.kind_of_string]: case-insensitive, blind to [-]/[_]/space
    separators, and accepting the obvious shorthands ([off], [flaky],
    [spike]). *)
