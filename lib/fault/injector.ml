module Prng = Gcperf_util.Prng
module Clock = Gcperf_sim.Clock

type outcome = Pass | Delay of float | Drop | Error

type t = {
  profile : Profile.t;
  prng : Prng.t;
  clock : Clock.t;
  pauses : (float * float) array;
  (* Per-profile outcome thresholds flattened into one float array
     (error, drop, delay, delay_min_ms, delay_span): [outcome] runs once
     per simulated request, and unboxed array loads keep the hot path to
     four draws plus compares instead of chasing boxed profile fields. *)
  thresholds : float array;
  (* Monotone cursor into [pauses] for the spike window: callers advance
     time forward only, so the first pause whose window has not fully
     passed is all we ever need. *)
  mutable spike_cursor : int;
}

let create ~profile ~seed ~pauses =
  {
    profile;
    prng = Prng.create seed;
    clock = Clock.create ();
    pauses;
    thresholds =
      [|
        profile.Profile.error_prob;
        profile.Profile.drop_prob;
        profile.Profile.delay_prob;
        profile.Profile.delay_min_ms;
        profile.Profile.delay_max_ms -. profile.Profile.delay_min_ms;
      |];
    spike_cursor = 0;
  }

let profile t = t.profile

let now_s t = Clock.now_s t.clock

let advance_to t at_s =
  let d = at_s -. Clock.now_s t.clock in
  if d > 0.0 then Clock.advance_s t.clock d

let outcome t =
  (* Fixed draw order and count (error, drop, delay, delay length): the
     stream position after a request is independent of the outcome.
     [unit_float] sits at the same stream position as [float _ 1.0] and
     yields the same value, so the schedule is unchanged. *)
  let prng = t.prng in
  let u_error = Prng.unit_float prng in
  let u_drop = Prng.unit_float prng in
  let u_delay = Prng.unit_float prng in
  let u_len = Prng.unit_float prng in
  let thr = t.thresholds in
  if u_error < Array.unsafe_get thr 0 then Error
  else if u_drop < Array.unsafe_get thr 1 then Drop
  else if u_delay < Array.unsafe_get thr 2 then
    Delay (Array.unsafe_get thr 3 +. (u_len *. Array.unsafe_get thr 4))
  else Pass

let load_multiplier t at_s =
  let p = t.profile in
  let fixed =
    List.fold_left
      (fun acc s ->
        if at_s >= s.Profile.at_s && at_s < s.Profile.at_s +. s.Profile.len_s
        then Float.max acc s.Profile.mult
        else acc)
      1.0 p.Profile.spikes
  in
  if p.Profile.pause_spike_mult <= 1.0 then fixed
  else begin
    let tail = p.Profile.pause_spike_tail_s in
    let n = Array.length t.pauses in
    while
      t.spike_cursor < n
      && snd t.pauses.(t.spike_cursor) +. tail < at_s
    do
      t.spike_cursor <- t.spike_cursor + 1
    done;
    if
      t.spike_cursor < n
      && at_s >= fst t.pauses.(t.spike_cursor)
      && at_s <= snd t.pauses.(t.spike_cursor) +. tail
    then Float.max fixed p.Profile.pause_spike_mult
    else fixed
  end
