(** Virtual clock.

    All simulated activity (mutator work, allocation overheads, GC pauses,
    concurrent phases) advances this clock; nothing reads host time.  The
    unit is the virtual microsecond. *)

type t

val create : unit -> t

val now_us : t -> float

val now_s : t -> float

val advance_us : t -> float -> unit
(** [advance_us t d] moves time forward by [d >= 0] microseconds. *)

val advance_s : t -> float -> unit

val reset : t -> unit
