type pause_kind = Young | Full | Initial_mark | Remark | Mixed | Cleanup

let pause_kind_to_string = function
  | Young -> "young"
  | Full -> "full"
  | Initial_mark -> "initial-mark"
  | Remark -> "remark"
  | Mixed -> "mixed"
  | Cleanup -> "cleanup"

let is_full = function
  | Full -> true
  | Young | Initial_mark | Remark | Mixed | Cleanup -> false

let[@inline] kind_tag = function
  | Young -> 0
  | Full -> 1
  | Initial_mark -> 2
  | Remark -> 3
  | Mixed -> 4
  | Cleanup -> 5

let kind_of_tag = function
  | 0 -> Young
  | 1 -> Full
  | 2 -> Initial_mark
  | 3 -> Remark
  | 4 -> Mixed
  | _ -> Cleanup

type event = {
  start_us : float;
  duration_us : float;
  kind : pause_kind;
  collector : string;
  reason : string;
  young_before : int;
  young_after : int;
  old_before : int;
  old_after : int;
  promoted : int;
}

(* Struct-of-arrays log.  A pause record sits on every collection's exit
   path, so the hot [record] must not allocate in the host runtime: the
   float columns store unboxed, the int columns are immediate stores, and
   the two string columns reuse interned collector/reason strings the
   caller already holds.  The [event] record view is materialised only by
   the cold accessors. *)
type t = {
  mutable start_usv : float array;
  mutable duration_usv : float array;
  mutable kindv : int array;
  mutable collectorv : string array;
  mutable reasonv : string array;
  mutable young_beforev : int array;
  mutable young_afterv : int array;
  mutable old_beforev : int array;
  mutable old_afterv : int array;
  mutable promotedv : int array;
  mutable len : int;
  mutable full_count : int;
}

let create () =
  {
    start_usv = [||];
    duration_usv = [||];
    kindv = [||];
    collectorv = [||];
    reasonv = [||];
    young_beforev = [||];
    young_afterv = [||];
    old_beforev = [||];
    old_afterv = [||];
    promotedv = [||];
    len = 0;
    full_count = 0;
  }

let[@inline never] grow t =
  let cap = Array.length t.kindv in
  (* 4x growth: long simulated runs log hundreds of thousands of pauses,
     and halving the amortised per-record copy traffic matters more than
     the tail over-allocation (ints and floats only, no pointers). *)
  let ncap = if cap = 0 then 64 else cap * 4 in
  let extf col =
    let nd = Array.make ncap 0.0 in
    Array.blit col 0 nd 0 t.len;
    nd
  and exti col =
    let nd = Array.make ncap 0 in
    Array.blit col 0 nd 0 t.len;
    nd
  and exts col =
    let nd = Array.make ncap "" in
    Array.blit col 0 nd 0 t.len;
    nd
  in
  t.start_usv <- extf t.start_usv;
  t.duration_usv <- extf t.duration_usv;
  t.kindv <- exti t.kindv;
  t.collectorv <- exts t.collectorv;
  t.reasonv <- exts t.reasonv;
  t.young_beforev <- exti t.young_beforev;
  t.young_afterv <- exti t.young_afterv;
  t.old_beforev <- exti t.old_beforev;
  t.old_afterv <- exti t.old_afterv;
  t.promotedv <- exti t.promotedv

let record t ~start_us ~duration_us ~kind ~collector ~reason ~young_before
    ~young_after ~old_before ~old_after ~promoted =
  let i = t.len in
  if i = Array.length t.kindv then grow t;
  (* [i] < capacity after the grow check, and every column shares it. *)
  Array.unsafe_set t.start_usv i start_us;
  Array.unsafe_set t.duration_usv i duration_us;
  Array.unsafe_set t.kindv i (kind_tag kind);
  Array.unsafe_set t.collectorv i collector;
  Array.unsafe_set t.reasonv i reason;
  Array.unsafe_set t.young_beforev i young_before;
  Array.unsafe_set t.young_afterv i young_after;
  Array.unsafe_set t.old_beforev i old_before;
  Array.unsafe_set t.old_afterv i old_after;
  Array.unsafe_set t.promotedv i promoted;
  t.len <- i + 1;
  if is_full kind then t.full_count <- t.full_count + 1

let record_event t e =
  record t ~start_us:e.start_us ~duration_us:e.duration_us ~kind:e.kind
    ~collector:e.collector ~reason:e.reason ~young_before:e.young_before
    ~young_after:e.young_after ~old_before:e.old_before
    ~old_after:e.old_after ~promoted:e.promoted

let nth t i =
  {
    start_us = t.start_usv.(i);
    duration_us = t.duration_usv.(i);
    kind = kind_of_tag t.kindv.(i);
    collector = t.collectorv.(i);
    reason = t.reasonv.(i);
    young_before = t.young_beforev.(i);
    young_after = t.young_afterv.(i);
    old_before = t.old_beforev.(i);
    old_after = t.old_afterv.(i);
    promoted = t.promotedv.(i);
  }

let events t = List.init t.len (nth t)

let count t = t.len

let count_full t = t.full_count

let pauses_s t = Array.init t.len (fun i -> t.duration_usv.(i) /. 1e6)

let total_pause_s t = Array.fold_left ( +. ) 0.0 (pauses_s t)

let max_pause_s t = Array.fold_left Float.max 0.0 (pauses_s t)

let avg_pause_s t =
  let n = count t in
  if n = 0 then 0.0 else total_pause_s t /. float_of_int n

let intervals t =
  Array.init t.len (fun i ->
      (t.start_usv.(i) /. 1e6, (t.start_usv.(i) +. t.duration_usv.(i)) /. 1e6))

let clear t =
  t.len <- 0;
  t.full_count <- 0

let pp_event ppf e =
  Format.fprintf ppf
    "[%10.3fs] %-12s %-14s %8.1f ms  young %d->%d  old %d->%d  promoted %d \
     (%s)"
    (e.start_us /. 1e6) e.collector
    (pause_kind_to_string e.kind)
    (e.duration_us /. 1e3) e.young_before e.young_after e.old_before
    e.old_after e.promoted e.reason
