type pause_kind = Young | Full | Initial_mark | Remark | Mixed | Cleanup

let pause_kind_to_string = function
  | Young -> "young"
  | Full -> "full"
  | Initial_mark -> "initial-mark"
  | Remark -> "remark"
  | Mixed -> "mixed"
  | Cleanup -> "cleanup"

let is_full = function
  | Full -> true
  | Young | Initial_mark | Remark | Mixed | Cleanup -> false

type event = {
  start_us : float;
  duration_us : float;
  kind : pause_kind;
  collector : string;
  reason : string;
  young_before : int;
  young_after : int;
  old_before : int;
  old_after : int;
  promoted : int;
}

type t = { log : event Gcperf_util.Vec.t }

let create () = { log = Gcperf_util.Vec.create () }

let record t e = Gcperf_util.Vec.push t.log e

let events t = Gcperf_util.Vec.to_list t.log

let count t = Gcperf_util.Vec.length t.log

let count_full t =
  Gcperf_util.Vec.fold
    (fun acc e -> if is_full e.kind then acc + 1 else acc)
    0 t.log

let pauses_s t =
  Array.map (fun e -> e.duration_us /. 1e6) (Gcperf_util.Vec.to_array t.log)

let total_pause_s t = Array.fold_left ( +. ) 0.0 (pauses_s t)

let max_pause_s t = Array.fold_left Float.max 0.0 (pauses_s t)

let avg_pause_s t =
  let n = count t in
  if n = 0 then 0.0 else total_pause_s t /. float_of_int n

let intervals t =
  Array.map
    (fun e -> (e.start_us /. 1e6, (e.start_us +. e.duration_us) /. 1e6))
    (Gcperf_util.Vec.to_array t.log)

let clear t = Gcperf_util.Vec.clear t.log

let pp_event ppf e =
  Format.fprintf ppf
    "[%10.3fs] %-12s %-14s %8.1f ms  young %d->%d  old %d->%d  promoted %d \
     (%s)"
    (e.start_us /. 1e6) e.collector
    (pause_kind_to_string e.kind)
    (e.duration_us /. 1e3) e.young_before e.young_after e.old_before
    e.old_after e.promoted e.reason
