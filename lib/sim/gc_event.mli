(** GC event log.

    The equivalent of the JVM's [gc.log]: one record per collection (or
    concurrent-phase pause), carrying enough detail to regenerate every
    pause-time chart and statistic in the paper. *)

type pause_kind =
  | Young  (** minor collection of the young generation *)
  | Full  (** stop-the-world collection of the whole heap *)
  | Initial_mark  (** CMS/G1 concurrent cycle start pause *)
  | Remark  (** CMS final remark / G1 remark pause *)
  | Mixed  (** G1 mixed (young + some old regions) collection *)
  | Cleanup  (** G1 cleanup pause *)

val pause_kind_to_string : pause_kind -> string

val is_full : pause_kind -> bool
(** [true] only for {!Full}: the paper's "#pauses (full)" column counts
    stop-the-world whole-heap collections. *)

type event = {
  start_us : float;  (** virtual time at which the pause began *)
  duration_us : float;
  kind : pause_kind;
  collector : string;
  reason : string;  (** "allocation failure", "system.gc", ... *)
  young_before : int;  (** young occupancy before the pause, bytes *)
  young_after : int;
  old_before : int;
  old_after : int;
  promoted : int;  (** bytes promoted to the old generation *)
}

type t
(** Mutable event log.  Struct-of-arrays internally: recording a pause on
    the collectors' exit path allocates nothing in the host runtime, and
    the [event] record view is materialised only by the cold accessors. *)

val create : unit -> t

val record :
  t ->
  start_us:float ->
  duration_us:float ->
  kind:pause_kind ->
  collector:string ->
  reason:string ->
  young_before:int ->
  young_after:int ->
  old_before:int ->
  old_after:int ->
  promoted:int ->
  unit
(** Appends one pause without boxing an {!event}. *)

val record_event : t -> event -> unit
(** {!record} from an already-built record (tests, replay). *)

val events : t -> event list
(** Events in chronological order. *)

val count : t -> int

val count_full : t -> int

val pauses_s : t -> float array
(** All pause durations, in seconds, chronological. *)

val total_pause_s : t -> float

val max_pause_s : t -> float
(** 0 when the log is empty. *)

val avg_pause_s : t -> float
(** 0 when the log is empty. *)

val intervals : t -> (float * float) array
(** [(start_s, end_s)] of every stop-the-world pause, chronological;
    this is what the YCSB client simulation overlays on request arrivals. *)

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
