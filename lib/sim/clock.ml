type t = { mutable now : float }

let create () = { now = 0.0 }

let now_us t = t.now

let now_s t = t.now /. 1e6

let advance_us t d =
  assert (d >= 0.0);
  t.now <- t.now +. d

let advance_s t d = advance_us t (d *. 1e6)

let reset t = t.now <- 0.0
