module Vec = Gcperf_util.Int_vec
module Machine = Gcperf_machine.Machine
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store
module Rh = Gcperf_heap.Region_heap
module Span = Gcperf_telemetry.Span
module Telemetry = Gcperf_telemetry.Telemetry
module Gc_ctx = Gcperf_gc.Gc_ctx
module Gc_config = Gcperf_gc.Gc_config
module Collector = Gcperf_gc.Collector
module Policy_hooks = Gcperf_gc.Policy_hooks

(* ZGC/Shenandoah-style single-generation region collector.
   The cycle is: a sub-ms Initial_mark flip (root scan), a concurrent
   mark whose cost is core stealing plus the SATB write-barrier tax, a
   sub-ms Remark flip where the trace and relocation-set selection
   logically happen (the flip is where the simulated heap state
   changes; the *time* for marking was already paid by the ticks — the
   same logically-instantaneous-flip convention CMS and G1 use, which
   is also what makes SATB trivially correct here), a concurrent
   relocation phase behind self-healing load barriers, and a sub-ms
   Cleanup flip that heals whatever forwarding entries the mutators
   never touched.  Mutator reference stores run the load barrier
   ([Os.fwd_read] on both ends); everything else heals at the flip.
   Allocation failure mid-cycle degenerates to a parallel STW
   mark-compact, the analogue of ZGC's allocation stall. *)

type phase =
  | Idle
  | Marking of { mutable remaining_bytes : float }
  | Relocating of { mutable remaining_bytes : float }

type state = {
  mutable phase : phase;
  mutable cycles : int;
  mutable relocated_bytes : int;
  mutable degenerated : int;
  mutable barrier_hits : int;  (* load-barrier slow paths, all phases *)
  mutable flip_healed : int;  (* entries healed by remap flips *)
}

let registry : (string, state * Rh.t) Hashtbl.t = Hashtbl.create 4

type debug = {
  cycles : int;
  degenerated : int;
  barrier_hits : int;
  flip_healed : int;
  relocated_bytes : int;
}

let debug_stats (c : Collector.t) =
  let st, _ = Hashtbl.find registry c.Collector.name in
  {
    cycles = st.cycles;
    degenerated = st.degenerated;
    barrier_hits = st.barrier_hits;
    flip_healed = st.flip_healed;
    relocated_bytes = st.relocated_bytes;
  }

let name = "ConcurrentRegionsGC"

(* A region joins the relocation set when at least this fraction of it
   is garbage (Shenandoah's garbage-first heuristic). *)
let reloc_garbage_fraction = 0.25

(* Bulk healing at the remap flip: the GC threads sweep the forwarding
   table linearly, far cheaper per entry than a mutator slow path. *)
let flip_heal_us = 0.02

let create ctx (config : Gc_config.t) =
  let m = ctx.Gc_ctx.machine in
  let cost = m.Machine.cost in
  let store = Os.create () in
  let rheap =
    Rh.create store ~heap_bytes:config.Gc_config.heap_bytes
      ~target_regions:config.Gc_config.g1_region_target ()
  in
  rheap.Rh.young_target_bytes <-
    max rheap.Rh.region_size config.Gc_config.young_bytes;
  let tenuring = ref config.Gc_config.tenuring_threshold in
  let st =
    {
      phase = Idle;
      cycles = 0;
      relocated_bytes = 0;
      degenerated = 0;
      barrier_hits = 0;
      flip_healed = 0;
    }
  in
  Hashtbl.replace registry name (st, rheap);
  let young_used () = Rh.used_young rheap in
  let old_hum_used () = Rh.used_old_hum rheap in
  let tel = ctx.Gc_ctx.telemetry in
  (* Trace scratch, hoisted (see gc_g1.ml). *)
  let g_marked = Vec.create () and g_stack = Vec.create () in
  let cset_scratch = Vec.create () in
  let movable = Vec.create () in
  let trace_all () =
    let marked = g_marked and stack = g_stack in
    Vec.clear marked;
    Vec.clear stack;
    Os.begin_trace store;
    let push id =
      if (not (Os.is_nowhere store id)) && not (Os.is_marked store id)
      then begin
        Os.mark store id;
        Vec.push marked id;
        Vec.push stack id
      end
    in
    ctx.Gc_ctx.iter_roots push;
    Os.finish_trace store ~pred:Os.Trace_live ~marked ~stack
      ~domains:ctx.Gc_ctx.trace_domains;
    marked
  in
  let record ?sub ~kind ~reason ~phases ~duration ~young_before ~old_before
      ~promoted () =
    Gc_ctx.record_pause ?sub ctx ~collector:name ~kind ~reason ~phases
      ~duration_us:duration ~young_before ~young_after:(young_used ())
      ~old_before ~old_after:(old_hum_used ()) ~promoted
  in
  let flip_phases () =
    [
      (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
      ( Span.Root_scan,
        Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
      (Span.Fixed, cost.Machine.flip_fixed_us);
    ]
  in
  let sum phases = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 phases in
  let start_mark reason =
    st.cycles <- st.cycles + 1;
    let phases = flip_phases () in
    let y = young_used () and o = old_hum_used () in
    record ~kind:Gc_event.Initial_mark ~reason
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~young_before:y ~old_before:o ~promoted:0 ();
    st.phase <-
      Marking { remaining_bytes = float_of_int (Rh.heap_used rheap) }
  in
  let maybe_start_mark () =
    match st.phase with
    | Marking _ | Relocating _ -> ()
    | Idle ->
        let used = float_of_int (Rh.heap_used rheap) in
        let reserve = max 4 (Array.length rheap.Rh.regions / 20) in
        if used > config.Gc_config.g1_ihop *. float_of_int rheap.Rh.heap_bytes
        then start_mark "occupancy threshold crossed"
        else if
          Rh.free_regions rheap < reserve
          && used > 0.0
        then start_mark "low free regions"
  in
  (* Mark flip: run the trace, account per-region liveness, release
     fully-dead regions and dead humongous groups, then pick and
     physically evacuate the relocation set.  The forwarding entries for
     moved objects become visible to mutators as the flip ends. *)
  let mark_flip () =
    ignore (trace_all ());
    let dead_humongous = ref [] in
    Array.iter
      (fun r ->
        match r.Rh.kind with
        | Rh.Eden | Rh.Survivor | Rh.Old_region ->
            Rh.compact_region_objects rheap r;
            let live = ref 0 in
            Vec.iter
              (fun id ->
                if Os.is_marked store id then live := !live + Os.size store id)
              r.Rh.objects;
            r.Rh.live_bytes <- !live
        | Rh.Humongous ->
            if r.Rh.hum_len > 0 then
              Vec.iter
                (fun id ->
                  if not (Os.is_marked store id) then
                    dead_humongous := id :: !dead_humongous)
                r.Rh.objects
        | Rh.Free -> ())
      rheap.Rh.regions;
    List.iter (fun id -> Rh.release_humongous rheap id) !dead_humongous;
    Array.iter
      (fun r ->
        match r.Rh.kind with
        | (Rh.Eden | Rh.Survivor | Rh.Old_region)
          when r.Rh.used > 0 && r.Rh.live_bytes = 0 ->
            Rh.release_region rheap r
        | _ -> ())
      rheap.Rh.regions;
    (* Relocation set: most garbage first, index as tie-break, capped so
       evacuation never outruns the free-region supply.  The qualifying
       bar is pressure-adaptive: at comfortable occupancy only regions at
       least a quarter garbage pay their way (Shenandoah's heuristic),
       but once the free-region supply falls under three start-mark
       reserves the bar drops to a single garbage byte — diffuse garbage
       otherwise strands across regions that never qualify, and
       back-to-back cycles reclaim nothing while the mutator burns the
       remaining headroom into an allocation stall. *)
    let reserve = max 4 (Array.length rheap.Rh.regions / 20) in
    let threshold =
      if Rh.free_regions rheap < 3 * reserve then 1
      else
        int_of_float
          (reloc_garbage_fraction *. float_of_int rheap.Rh.region_size)
    in
    let candidates =
      Array.to_list rheap.Rh.regions
      |> List.filter (fun r ->
             (match r.Rh.kind with
             | Rh.Eden | Rh.Survivor | Rh.Old_region -> true
             | Rh.Humongous | Rh.Free -> false)
             && r.Rh.used > 0
             && r.Rh.used - r.Rh.live_bytes >= threshold)
      |> List.sort (fun a b ->
             let ga = a.Rh.used - a.Rh.live_bytes
             and gb = b.Rh.used - b.Rh.live_bytes in
             if ga <> gb then compare gb ga else compare a.Rh.idx b.Rh.idx)
    in
    let budget_regions = max 0 (Rh.free_regions rheap - 4) in
    let cset = cset_scratch in
    Vec.clear cset;
    let dest_bytes = ref 0 in
    (* Worst-case packed capacity: bump placement opens a fresh region
       whenever an object outgrows the remainder, so each destination
       wastes less than the largest non-humongous object — half a
       region.  Budgeting against that bound keeps the free-region
       supply ahead of the plan even when the pressure-adaptive bar
       admits the whole heap as candidates. *)
    let half = max 1 (rheap.Rh.region_size / 2) in
    List.iter
      (fun r ->
        let need = (!dest_bytes + r.Rh.live_bytes + half - 1) / half in
        if need <= budget_regions then begin
          Vec.push cset r.Rh.idx;
          dest_bytes := !dest_bytes + r.Rh.live_bytes
        end)
      candidates;
    (* Evacuate: sequential plan (region accounting), slab-parallel move,
       forwarding entry per moved object. *)
    Vec.clear movable;
    Vec.iter
      (fun idx ->
        let r = rheap.Rh.regions.(idx) in
        Vec.iter
          (fun id -> if Os.is_marked store id then Vec.push movable id)
          r.Rh.objects)
      cset;
    let moved_bytes = ref 0 in
    Os.plan_clear store;
    Os.fwd_begin store;
    let target = ref None in
    Vec.iter
      (fun id ->
        let size = Os.size store id in
        moved_bytes := !moved_bytes + size;
        let src = Rh.region_of rheap id in
        let rec place () =
          match !target with
          | Some r when r.Rh.used + size <= rheap.Rh.region_size ->
              src.Rh.used <- src.Rh.used - size;
              Os.plan_push_region store id ~region:r.Rh.idx
                ~age:(Os.age store id);
              r.Rh.used <- r.Rh.used + size;
              Vec.push r.Rh.objects id;
              Os.fwd_record store id
          | _ -> (
              match Rh.take_free_region rheap Rh.Old_region with
              | Some r ->
                  target := Some r;
                  place ()
              | None -> assert false (* capped by budget_regions above *))
        in
        place ())
      movable;
    ignore (Os.finish_relocate store ~domains:ctx.Gc_ctx.trace_domains);
    (* Release the sources (frees their unreached objects), newest pick
       last — matching the selection order keeps free-slot recycling
       deterministic. *)
    for i = Vec.length cset - 1 downto 0 do
      Rh.release_region rheap rheap.Rh.regions.(Vec.get cset i)
    done;
    st.relocated_bytes <- st.relocated_bytes + !moved_bytes;
    let y = young_used () and o = old_hum_used () in
    let phases = flip_phases () in
    record ~kind:Gc_event.Remark ~reason:"concurrent mark flip"
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~young_before:y ~old_before:o ~promoted:0 ();
    st.phase <- Relocating { remaining_bytes = float_of_int !moved_bytes }
  in
  (* Remap flip: the concurrent copy is done; heal every forwarding
     entry the mutators never read through.  Bulk healing is a linear
     sweep on the GC threads, kept well inside the sub-ms pause class. *)
  let remap_flip () =
    let pending = Os.fwd_pending store in
    let healed = Os.fwd_heal_all store in
    st.flip_healed <- st.flip_healed + healed;
    let remap_us =
      float_of_int pending *. flip_heal_us
      /. Machine.parallel_speedup m m.Machine.gc_threads
    in
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        (Span.Remap, remap_us);
        (Span.Fixed, cost.Machine.flip_fixed_us);
      ]
    in
    let y = young_used () and o = old_hum_used () in
    record ~kind:Gc_event.Cleanup ~reason:"remap flip"
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~young_before:y ~old_before:o ~promoted:0 ();
    st.phase <- Idle
  in
  (* Degenerate STW mark-compact (allocation stall): trace, free the
     dead, slide everything live into freshly packed regions.  Runs on
     all GC threads — the pauseless family never has a single-threaded
     full collection, it has a rare parallel one. *)
  let full_gc reason =
    st.degenerated <- st.degenerated + 1;
    let young_before = young_used () and old_before = old_hum_used () in
    let marked = trace_all () in
    let live = Vec.fold (fun a id -> a + Os.size store id) 0 marked in
    if live > rheap.Rh.heap_bytes then
      raise
        (Gc_ctx.Out_of_memory
           (Printf.sprintf "%s: live data (%d) exceeds heap (%d)" name live
              rheap.Rh.heap_bytes));
    Vec.clear movable;
    let freed = ref 0 in
    let dead_humongous = ref [] in
    Array.iter
      (fun r ->
        Rh.compact_region_objects rheap r;
        match r.Rh.kind with
        | Rh.Humongous ->
            if r.Rh.hum_len > 0 then
              Vec.iter
                (fun id ->
                  if not (Os.is_marked store id) then
                    dead_humongous := id :: !dead_humongous)
                r.Rh.objects
        | Rh.Eden | Rh.Survivor | Rh.Old_region ->
            Vec.iter
              (fun id ->
                if Os.is_marked store id then Vec.push movable id
                else begin
                  let size = Os.size store id in
                  freed := !freed + size;
                  r.Rh.used <- r.Rh.used - size;
                  Os.free store id
                end)
              r.Rh.objects
        | Rh.Free -> ())
      rheap.Rh.regions;
    List.iter
      (fun id ->
        freed := !freed + Os.size store id;
        Rh.release_humongous rheap id)
      !dead_humongous;
    Array.iter
      (fun r ->
        match r.Rh.kind with
        | Rh.Eden | Rh.Survivor | Rh.Old_region -> Rh.retire_region rheap r
        | Rh.Humongous | Rh.Free -> ())
      rheap.Rh.regions;
    let target = ref None in
    let moved_bytes = ref 0 in
    Os.plan_clear store;
    (* Inside the stop-the-world window every stale reference is fixed
       before mutators resume: the forwarding table restarts empty. *)
    Os.fwd_begin store;
    Vec.iter
      (fun id ->
        let size = Os.size store id in
        moved_bytes := !moved_bytes + size;
        let rec place () =
          match !target with
          | Some r when r.Rh.used + size <= rheap.Rh.region_size ->
              Os.plan_push_region store id ~region:r.Rh.idx
                ~age:(Os.age store id);
              r.Rh.used <- r.Rh.used + size;
              Vec.push r.Rh.objects id
          | _ -> (
              match Rh.take_free_region rheap Rh.Old_region with
              | Some r ->
                  target := Some r;
                  place ()
              | None ->
                  raise
                    (Gc_ctx.Out_of_memory
                       (name ^ ": no free region during compaction")))
        in
        place ())
      movable;
    let moved_objects =
      Os.finish_relocate store ~domains:ctx.Gc_ctx.trace_domains
    in
    st.phase <- Idle;
    let workers = m.Machine.gc_threads in
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        (Span.Fixed, cost.Machine.gc_fixed_us);
        ( Span.Mark,
          Machine.phase_us m ~rate:cost.Machine.mark_rate ~workers ~bytes:live
        );
        ( Span.Sweep,
          Machine.phase_us m ~rate:cost.Machine.sweep_rate ~workers
            ~bytes:!freed );
        ( Span.Compact,
          Machine.phase_us m ~rate:cost.Machine.compact_rate ~workers
            ~bytes:!moved_bytes );
      ]
    in
    let sub () =
      if moved_objects = 0 then []
      else begin
        let compact_us =
          match List.assoc_opt Span.Compact phases with
          | Some us -> us
          | None -> 0.0
        in
        let plan = compact_us /. 8.0 in
        [ (Span.Plan, plan); (Span.Move, compact_us -. plan) ]
      end
    in
    record ~sub ~kind:Gc_event.Full ~reason
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~young_before ~old_before ~promoted:0 ()
  in
  let alloc ~size =
    maybe_start_mark ();
    if Rh.is_humongous rheap ~size then begin
      match Rh.alloc_humongous rheap ~size with
      | Some id -> id
      | None -> (
          full_gc "humongous allocation stall";
          match Rh.alloc_humongous rheap ~size with
          | Some id -> id
          | None ->
              raise
                (Gc_ctx.Out_of_memory
                   (Printf.sprintf "%s: cannot fit humongous %d bytes" name
                      size)))
    end
    else begin
      match Rh.alloc_young rheap ~size with
      | Some id -> id
      | None ->
          full_gc "allocation stall";
          (match Rh.alloc_young rheap ~size with
          | Some id -> id
          | None ->
              raise
                (Gc_ctx.Out_of_memory
                   (Printf.sprintf "%s: heap exhausted allocating %d bytes"
                      name size)))
    end
  in
  let tick ~dt_us =
    match st.phase with
    | Idle -> maybe_start_mark ()
    | Marking mk ->
        let rate =
          cost.Machine.mark_rate
          *. Machine.parallel_speedup m m.Machine.conc_gc_threads
        in
        mk.remaining_bytes <- mk.remaining_bytes -. (rate *. dt_us);
        if mk.remaining_bytes <= 0.0 then mark_flip ()
    | Relocating rl ->
        let rate =
          cost.Machine.copy_rate
          *. Machine.parallel_speedup m m.Machine.conc_gc_threads
        in
        rl.remaining_bytes <- rl.remaining_bytes -. (rate *. dt_us);
        if rl.remaining_bytes <= 0.0 then remap_flip ()
  in
  let mutator_factor () =
    match st.phase with
    | Idle -> 1.0
    | Marking _ ->
        let cores = float_of_int (Machine.cores m) in
        let stolen = float_of_int m.Machine.conc_gc_threads in
        cost.Machine.satb_barrier_factor
        *. (cores /. Float.max 1.0 (cores -. stolen))
    | Relocating _ ->
        let cores = float_of_int (Machine.cores m) in
        let stolen = float_of_int m.Machine.conc_gc_threads in
        cost.Machine.load_barrier_factor
        *. (cores /. Float.max 1.0 (cores -. stolen))
  in
  (* Tax split for distillation: the barrier factor is a pure mutator
     tax (charged even on an otherwise idle machine); the core ratio is
     stolen CPU.  Their product is exactly [mutator_factor] above. *)
  let mutator_tax () =
    let cores = float_of_int (Machine.cores m) in
    let stolen = float_of_int m.Machine.conc_gc_threads in
    let steal = cores /. Float.max 1.0 (cores -. stolen) in
    match st.phase with
    | Idle -> (1.0, 1.0)
    | Marking _ -> (cost.Machine.satb_barrier_factor, steal)
    | Relocating _ -> (cost.Machine.load_barrier_factor, steal)
  in
  (* The load barrier on the reference-store path: both ends of the
     store are read, so a forwarded endpoint heals here (self-healing),
     once.  Everything the mutators never touch heals at the remap
     flip. *)
  let barrier id =
    if Os.fwd_read store id then begin
      st.barrier_hits <- st.barrier_hits + 1;
      if Telemetry.enabled tel then
        Telemetry.incr tel "gc.load_barrier_hits" 1.0
    end
  in
  Policy_hooks.install_region_capacity ctx rheap;
  {
    Collector.name;
    kind = Gc_config.Concurrent_regions;
    alloc;
    alloc_old = alloc;
    system_gc = (fun () -> full_gc "system.gc");
    tick;
    mutator_factor;
    mutator_tax;
    write_ref =
      (fun ~parent ~child ->
        barrier parent;
        barrier child;
        Os.add_ref store ~from:parent ~to_:child);
    remove_ref =
      (fun ~parent ~child ->
        barrier parent;
        barrier child;
        Os.remove_ref store ~from:parent ~to_:child);
    heap_used = (fun () -> Rh.heap_used rheap);
    heap_capacity = (fun () -> rheap.Rh.heap_bytes);
    young_used;
    old_used = old_hum_used;
    apply_policy =
      Policy_hooks.region_heap_hook ctx rheap ~collector:name ~tenuring;
    store;
    check_invariants = (fun () -> Rh.check_invariants rheap);
  }
