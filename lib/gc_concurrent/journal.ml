module Ivec = Gcperf_util.Int_vec
module Crew = Gcperf_exec.Crew

(* Packed (id, delta) pairs in append order.  Mutators append from the
   simulated write barrier / allocation path; the collector folds a
   whole journal into the reference-count column at a flip. *)
type t = { entries : Ivec.t }

let create () = { entries = Ivec.create () }

let[@inline] append t id delta =
  Ivec.push t.entries id;
  Ivec.push t.entries delta

let length t = Ivec.length t.entries / 2
let is_empty t = Ivec.length t.entries = 0
let clear t = Ivec.clear t.entries

let iter t f =
  let n = Ivec.length t.entries / 2 in
  for i = 0 to n - 1 do
    f (Ivec.unsafe_get t.entries (2 * i)) (Ivec.unsafe_get t.entries ((2 * i) + 1))
  done

(* Crew engagement threshold, in entries.  Tests lower it to exercise
   the parallel fold on small journals. *)
let default_par_threshold = 16384
let par_threshold_v = Atomic.make default_par_threshold
let set_par_fold_threshold n = Atomic.set par_threshold_v (max 1 n)
let par_fold_threshold () = Atomic.get par_threshold_v

(* Worker [w] of [slots] applies exactly the entries whose id is in its
   residue class, in journal order.  Classes are disjoint, so no two
   workers touch the same [rc] cell, and integer addition over a fixed
   per-id subsequence is exact — the folded column is byte-identical at
   any worker count, including the sequential fallback (slots = 1). *)
let[@inline] apply_residue entries n rc ~slots ~slot =
  for i = 0 to n - 1 do
    let id = Ivec.unsafe_get entries (2 * i) in
    if id mod slots = slot then
      let d = Ivec.unsafe_get entries ((2 * i) + 1) in
      Array.unsafe_set rc id (Array.unsafe_get rc id + d)
  done

let fold t ~rc ~domains =
  let n = Ivec.length t.entries / 2 in
  let engaged =
    domains > 1
    && n >= par_fold_threshold ()
    && Crew.try_with ~domains (fun crew ->
           let slots = Crew.size crew in
           Crew.run crew (fun slot ->
               if slot < slots then
                 apply_residue t.entries n rc ~slots ~slot))
  in
  if not engaged then apply_residue t.entries n rc ~slots:1 ~slot:0;
  n
