(** mo-gc-style reference-count journal.

    Mutators append (object id, RC delta) entries; the collector folds a
    whole journal into the reference-count column at a flip.

    Determinism contract (mirrors [Obj_store.finish_trace]'s): {!fold}
    partitions entries by id residue class, so each [rc] cell is updated
    by exactly one worker, in journal order.  The folded column is
    byte-identical at any [domains] value — including 1, the crew-refused
    fallback, and any crew size — so host-side fold parallelism
    ([--gc-jobs]) can never change simulation results.  The simulated
    fold {e duration} knob ([--journal-fold-jobs]) lives in the
    collector, not here. *)

type t

val create : unit -> t

val append : t -> int -> int -> unit
(** [append t id delta] logs one RC delta. *)

val length : t -> int
(** Entries logged (pairs, not ints). *)

val is_empty : t -> bool
val clear : t -> unit

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f id delta] in append order. *)

val fold : t -> rc:int array -> domains:int -> int
(** Applies every entry to [rc] (which must cover every id in the
    journal); returns the number of entries applied.  Does {e not} clear
    the journal. *)

val set_par_fold_threshold : int -> unit
(** Minimum entry count before {!fold} engages the crew; tests lower it
    to exercise the parallel kernel on small journals. *)

val par_fold_threshold : unit -> int
