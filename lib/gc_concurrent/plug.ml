(* Registers the concurrent collector family with [Registry] so the
   shared [Registry.create] dispatch can build them.  The runtime calls
   [install] at module initialisation; calling it again is a no-op
   (registration is keyed replacement). *)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Gcperf_gc.Registry.register_builder Gcperf_gc.Gc_config.Concurrent_regions
      Gc_regions.create;
    Gcperf_gc.Registry.register_builder Gcperf_gc.Gc_config.Journal_rc
      Gc_journal_rc.create
  end
