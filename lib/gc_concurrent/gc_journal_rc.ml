module Vec = Gcperf_util.Int_vec
module Machine = Gcperf_machine.Machine
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store
module Span = Gcperf_telemetry.Span
module Gc_ctx = Gcperf_gc.Gc_ctx
module Gc_config = Gcperf_gc.Gc_config
module Collector = Gcperf_gc.Collector

(* mo-gc-style journaled reference counting.

   Mutators pay a flat journaling tax ([journal_alloc_overhead], the
   ~25% mo-gc measured) and append RC deltas to a journal: +1 per
   reference store, -1 per reference delete, and a 0-delta entry per
   allocation (the new-object record).  A concurrent collector thread
   folds a journal snapshot into the reference-count column — the fold
   is single-threaded in mo-gc, its observed bottleneck, and
   [journal_fold_jobs] parallelizes the *simulated* fold through the
   machine's speedup curve.  The host-side fold result is byte-identical
   at any worker count (see [Journal]); the knob only changes how long
   the simulated fold takes, hence how much backlog (and mutator
   backpressure) accumulates.

   Reclamation happens at a sub-ms fold flip.  An object is freed only
   when its folded count is <= 0, it is not in the root snapshot, and no
   *unfolded* journal entry mentions it (the pending guard) — by
   induction no journal entry can ever reference a freed (possibly
   recycled) id, which is what makes deferred RC sound here.  Cyclic or
   count-stuck garbage is collected by a concurrent backup trace at high
   occupancy, whose flip recounts every survivor's RC exactly from the
   heap's edges and clears both journals (the recount subsumes them). *)

type phase =
  | Idle
  | Folding of { mutable remaining_entries : float }
  | Tracing of { mutable remaining_bytes : float }

type state = {
  mutable phase : phase;
  mutable active : Journal.t;  (* mutators append here *)
  mutable snapshot : Journal.t;  (* being folded while phase = Folding *)
  mutable rc : int array;
  mutable in_pool : Bytes.t;
  pool : Vec.t;  (* candidate ids with rc <= 0, sweep order *)
  mutable root_stamp : int array;
  mutable pending_stamp : int array;
  mutable stamp_epoch : int;
  mutable used : int;
  mutable folds : int;
  mutable entries_folded : int;
  mutable traces : int;
  mutable freed_bytes : int;
  mutable max_backlog : int;
}

let registry : (string, state) Hashtbl.t = Hashtbl.create 4

type debug = {
  folds : int;
  entries_folded : int;
  traces : int;
  backlog : int;
  pool : int;
  used : int;
}

let debug_stats (c : Collector.t) =
  let st = Hashtbl.find registry c.Collector.name in
  {
    folds = st.folds;
    entries_folded = st.entries_folded;
    traces = st.traces;
    backlog = Journal.length st.active;
    pool = Vec.length st.pool;
    used = st.used;
  }

let name = "JournalRCGC"

(* Entries accumulated before the collector thread picks up a journal. *)
let fold_batch = 8192

(* Collector-thread map insertion, entries per us on one worker.  mo-gc's
   single-threaded insertion is the bottleneck this models: tuned so the
   replay/stress mutator outruns one fold worker (backlog ->
   backpressure) while [journal_fold_jobs] = 4 keeps up. *)
let fold_rate_entries_per_us = 0.003

(* Applying the folded column at the flip, per entry, before the
   parallel speedup of the stop-the-world GC threads. *)
let fold_apply_us = 0.004

(* Backup concurrent trace starts above this occupancy. *)
let trace_trigger = 0.85

let create ctx (config : Gc_config.t) =
  let m = ctx.Gc_ctx.machine in
  let cost = m.Machine.cost in
  let store = Os.create () in
  let heap_bytes = config.Gc_config.heap_bytes in
  let fold_jobs = config.Gc_config.journal_fold_jobs in
  let st =
    {
      phase = Idle;
      active = Journal.create ();
      snapshot = Journal.create ();
      rc = [||];
      in_pool = Bytes.empty;
      pool = Vec.create ();
      root_stamp = [||];
      pending_stamp = [||];
      stamp_epoch = 0;
      used = 0;
      folds = 0;
      entries_folded = 0;
      traces = 0;
      freed_bytes = 0;
      max_backlog = 0;
    }
  in
  Hashtbl.replace registry name st;
  let ensure id =
    if id >= Array.length st.rc then begin
      let cap = max 1024 (max (id + 1) (2 * Array.length st.rc)) in
      let ext col =
        let nd = Array.make cap 0 in
        Array.blit col 0 nd 0 (Array.length col);
        nd
      in
      st.rc <- ext st.rc;
      st.root_stamp <- ext st.root_stamp;
      st.pending_stamp <- ext st.pending_stamp;
      let nb = Bytes.make cap '\000' in
      Bytes.blit st.in_pool 0 nb 0 (Bytes.length st.in_pool);
      st.in_pool <- nb
    end
  in
  let[@inline] pool_add id =
    if Bytes.unsafe_get st.in_pool id = '\000' then begin
      Bytes.unsafe_set st.in_pool id '\001';
      Vec.push st.pool id
    end
  in
  let record ~kind ~reason ~phases ~duration ~used_before () =
    Gc_ctx.record_pause ctx ~collector:name ~kind ~reason ~phases
      ~duration_us:duration ~young_before:0 ~young_after:0
      ~old_before:used_before ~old_after:st.used ~promoted:0
  in
  let sum phases = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 phases in
  let flip_phases () =
    [
      (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
      ( Span.Root_scan,
        Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
      (Span.Fixed, cost.Machine.flip_fixed_us);
    ]
  in
  (* Free [id] now, decrementing its children; children that drop to
     zero join the pool (and are swept further down this same flip when
     they are unrooted and unpending). *)
  let free_one id =
    Os.iter_refs store id (fun child ->
        st.rc.(child) <- st.rc.(child) - 1;
        if st.rc.(child) <= 0 then pool_add child);
    let size = Os.size store id in
    st.used <- st.used - size;
    st.freed_bytes <- st.freed_bytes + size;
    Bytes.unsafe_set st.in_pool id '\000';
    Os.free store id
  in
  (* Sweep the candidate pool against a fresh root snapshot and the
     pending set of the (unfolded) active journal.  Cascade frees append
     to the pool while it is being swept; the dynamic loop bound picks
     them up in the same pass. *)
  let sweep_pool () =
    st.stamp_epoch <- st.stamp_epoch + 1;
    let ep = st.stamp_epoch in
    ctx.Gc_ctx.iter_roots (fun id -> st.root_stamp.(id) <- ep);
    Journal.iter st.active (fun id _ -> st.pending_stamp.(id) <- ep);
    let j = ref 0 and i = ref 0 in
    while !i < Vec.length st.pool do
      let id = Vec.get st.pool !i in
      if Os.is_nowhere store id then Bytes.unsafe_set st.in_pool id '\000'
      else if st.rc.(id) > 0 then Bytes.unsafe_set st.in_pool id '\000'
      else if st.root_stamp.(id) = ep || st.pending_stamp.(id) = ep
      then begin
        Vec.unsafe_set st.pool !j id;
        incr j
      end
      else free_one id;
      incr i
    done;
    Vec.truncate st.pool !j
  in
  let start_fold () =
    let j = st.active in
    st.active <- st.snapshot;
    st.snapshot <- j;
    st.phase <-
      Folding { remaining_entries = float_of_int (Journal.length j) }
  in
  let fold_flip () =
    let used_before = st.used in
    let n = Journal.fold st.snapshot ~rc:st.rc ~domains:ctx.Gc_ctx.trace_domains in
    Journal.iter st.snapshot (fun id _ -> if st.rc.(id) <= 0 then pool_add id);
    Journal.clear st.snapshot;
    st.folds <- st.folds + 1;
    st.entries_folded <- st.entries_folded + n;
    sweep_pool ();
    st.phase <- Idle;
    let apply_us =
      float_of_int n *. fold_apply_us
      /. Machine.parallel_speedup m m.Machine.gc_threads
    in
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        (Span.Fold, apply_us);
        (Span.Fixed, cost.Machine.flip_fixed_us);
      ]
    in
    record ~kind:Gc_event.Cleanup ~reason:"journal fold"
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~used_before ()
  in
  (* Trace scratch, hoisted. *)
  let g_marked = Vec.create () and g_stack = Vec.create () in
  let dead_scratch = Vec.create () in
  let trace_all () =
    let marked = g_marked and stack = g_stack in
    Vec.clear marked;
    Vec.clear stack;
    Os.begin_trace store;
    let push id =
      if (not (Os.is_nowhere store id)) && not (Os.is_marked store id)
      then begin
        Os.mark store id;
        Vec.push marked id;
        Vec.push stack id
      end
    in
    ctx.Gc_ctx.iter_roots push;
    Os.finish_trace store ~pred:Os.Trace_live ~marked ~stack
      ~domains:ctx.Gc_ctx.trace_domains;
    marked
  in
  (* The backup trace's flip: free everything unreached (cycles, stuck
     counts), recount every survivor's RC exactly from the live edges,
     and clear both journals — the recount subsumes every outstanding
     delta.  The pool restarts as exactly the zero-count live set. *)
  let trace_reclaim () =
    ignore (trace_all ());
    Vec.clear dead_scratch;
    Os.iter_live store (fun id ->
        if not (Os.is_marked store id) then Vec.push dead_scratch id);
    Vec.iter
      (fun id ->
        let size = Os.size store id in
        st.used <- st.used - size;
        st.freed_bytes <- st.freed_bytes + size;
        Os.free store id)
      dead_scratch;
    Os.iter_live store (fun id -> st.rc.(id) <- 0);
    Os.iter_live store (fun id ->
        Os.iter_refs store id (fun child ->
            st.rc.(child) <- st.rc.(child) + 1));
    Journal.clear st.active;
    Journal.clear st.snapshot;
    Bytes.fill st.in_pool 0 (Bytes.length st.in_pool) '\000';
    Vec.clear st.pool;
    Os.iter_live store (fun id -> if st.rc.(id) <= 0 then pool_add id);
    st.traces <- st.traces + 1;
    st.phase <- Idle;
    Vec.length dead_scratch
  in
  let trace_flip () =
    let used_before = st.used in
    ignore (trace_reclaim ());
    let phases = flip_phases () in
    record ~kind:Gc_event.Remark ~reason:"backup trace flip"
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~used_before ()
  in
  let maybe_start_work () =
    match st.phase with
    | Folding _ | Tracing _ -> ()
    | Idle ->
        if float_of_int st.used > trace_trigger *. float_of_int heap_bytes
        then begin
          let phases = flip_phases () in
          record ~kind:Gc_event.Initial_mark
            ~reason:"occupancy threshold crossed"
            ~phases:(fun () -> phases)
            ~duration:(sum phases) ~used_before:st.used ();
          st.phase <- Tracing { remaining_bytes = float_of_int st.used }
        end
        else if Journal.length st.active >= fold_batch then start_fold ()
  in
  (* Allocation-stall path: fold everything synchronously (no pending
     guard needed once both journals are empty), and if that is not
     enough, run the backup trace stop-the-world.  Both are honest Full
     pauses — the degenerate mode, like a ZGC allocation stall. *)
  let sync_reclaim reason =
    let used_before = st.used in
    let n =
      Journal.fold st.snapshot ~rc:st.rc ~domains:ctx.Gc_ctx.trace_domains
      + Journal.fold st.active ~rc:st.rc ~domains:ctx.Gc_ctx.trace_domains
    in
    Journal.iter st.snapshot (fun id _ -> if st.rc.(id) <= 0 then pool_add id);
    Journal.iter st.active (fun id _ -> if st.rc.(id) <= 0 then pool_add id);
    Journal.clear st.snapshot;
    Journal.clear st.active;
    st.folds <- st.folds + 1;
    st.entries_folded <- st.entries_folded + n;
    let freed_before = st.freed_bytes in
    sweep_pool ();
    st.phase <- Idle;
    let freed = st.freed_bytes - freed_before in
    let workers = m.Machine.gc_threads in
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        ( Span.Fold,
          float_of_int n *. fold_apply_us
          /. Machine.parallel_speedup m workers );
        ( Span.Sweep,
          Machine.phase_us m ~rate:cost.Machine.sweep_rate ~workers
            ~bytes:freed );
        (Span.Fixed, cost.Machine.gc_fixed_us);
      ]
    in
    record ~kind:Gc_event.Full ~reason
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~used_before ()
  in
  let sync_trace reason =
    let live_before = st.used in
    let _freed_objects = trace_reclaim () in
    if st.used > heap_bytes then
      raise
        (Gc_ctx.Out_of_memory
           (Printf.sprintf "%s: live data (%d) exceeds heap (%d)" name st.used
              heap_bytes));
    let freed = live_before - st.used in
    let workers = m.Machine.gc_threads in
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        ( Span.Mark,
          Machine.phase_us m ~rate:cost.Machine.mark_rate ~workers
            ~bytes:st.used );
        ( Span.Sweep,
          Machine.phase_us m ~rate:cost.Machine.sweep_rate ~workers
            ~bytes:(max 0 freed) );
        (Span.Fixed, cost.Machine.gc_fixed_us);
      ]
    in
    record ~kind:Gc_event.Full ~reason
      ~phases:(fun () -> phases)
      ~duration:(sum phases) ~used_before:live_before ()
  in
  let alloc ~size =
    maybe_start_work ();
    if st.used + size > heap_bytes then begin
      sync_reclaim "allocation failure";
      if st.used + size > heap_bytes then sync_trace "allocation failure";
      if st.used + size > heap_bytes then
        raise
          (Gc_ctx.Out_of_memory
             (Printf.sprintf "%s: heap exhausted allocating %d bytes" name
                size))
    end;
    let id = Os.alloc store ~size ~loc:Os.Old in
    ensure id;
    st.used <- st.used + size;
    st.rc.(id) <- 0;
    Journal.append st.active id 0;
    pool_add id;
    id
  in
  let tick ~dt_us =
    match st.phase with
    | Idle -> maybe_start_work ()
    | Folding f ->
        let rate =
          fold_rate_entries_per_us *. Machine.parallel_speedup m fold_jobs
        in
        f.remaining_entries <- f.remaining_entries -. (rate *. dt_us);
        if f.remaining_entries <= 0.0 then fold_flip ()
    | Tracing tr ->
        let rate =
          cost.Machine.mark_rate
          *. Machine.parallel_speedup m m.Machine.conc_gc_threads
        in
        tr.remaining_bytes <- tr.remaining_bytes -. (rate *. dt_us);
        if tr.remaining_bytes <= 0.0 then trace_flip ()
  in
  let mutator_factor () =
    let backlog = Journal.length st.active in
    if backlog > st.max_backlog then st.max_backlog <- backlog;
    let base = 1.0 +. config.Gc_config.journal_alloc_overhead in
    let cores = float_of_int (Machine.cores m) in
    let steal =
      match st.phase with
      | Idle -> 1.0
      | Folding _ ->
          cores /. Float.max 1.0 (cores -. float_of_int fold_jobs)
      | Tracing _ ->
          cores /. Float.max 1.0 (cores -. float_of_int m.Machine.conc_gc_threads)
    in
    (* Backpressure: once the fold falls behind by a couple of batches,
       the mutator is throttled until production matches fold capacity —
       mo-gc's throughput limit at one fold worker. *)
    let lag =
      float_of_int (backlog - (2 * fold_batch)) /. float_of_int (4 * fold_batch)
    in
    let pressure = 1.0 +. Float.min 3.0 (Float.max 0.0 lag) in
    base *. steal *. pressure
  in
  (* Tax split for distillation, side-effect free (no max_backlog
     update): journal appends and backpressure throttling are mutator
     tax, the fold/trace workers are stolen cores. *)
  let mutator_tax () =
    let backlog = Journal.length st.active in
    let base = 1.0 +. config.Gc_config.journal_alloc_overhead in
    let cores = float_of_int (Machine.cores m) in
    let steal =
      match st.phase with
      | Idle -> 1.0
      | Folding _ ->
          cores /. Float.max 1.0 (cores -. float_of_int fold_jobs)
      | Tracing _ ->
          cores /. Float.max 1.0 (cores -. float_of_int m.Machine.conc_gc_threads)
    in
    let lag =
      float_of_int (backlog - (2 * fold_batch)) /. float_of_int (4 * fold_batch)
    in
    let pressure = 1.0 +. Float.min 3.0 (Float.max 0.0 lag) in
    (base *. pressure, steal)
  in
  ctx.Gc_ctx.young_capacity <- (fun () -> config.Gc_config.young_bytes);
  ctx.Gc_ctx.heap_capacity <- (fun () -> heap_bytes);
  {
    Collector.name;
    kind = Gc_config.Journal_rc;
    alloc;
    alloc_old = alloc;
    system_gc = (fun () -> sync_trace "system.gc");
    tick;
    mutator_factor;
    mutator_tax;
    write_ref =
      (fun ~parent ~child ->
        Os.add_ref store ~from:parent ~to_:child;
        Journal.append st.active child 1);
    remove_ref =
      (fun ~parent ~child ->
        Os.remove_ref store ~from:parent ~to_:child;
        Journal.append st.active child (-1));
    heap_used = (fun () -> st.used);
    heap_capacity = (fun () -> heap_bytes);
    young_used = (fun () -> 0);
    old_used = (fun () -> st.used);
    apply_policy = (fun () -> ());
    store;
    check_invariants =
      (fun () ->
        let sum = ref 0 in
        Os.iter_live store (fun id -> sum := !sum + Os.size store id);
        if !sum <> st.used then
          Error
            (Printf.sprintf "%s: used accounting drift (%d vs %d)" name
               st.used !sum)
        else Ok ());
  }
