(** Cassandra-like in-memory NoSQL store.

    Reproduces the memory behaviour the study depends on (§2.2, §4):

    - every write appends to a {e commit log} (long-lived until the next
      flush truncates it) and installs the record in a {e memtable}
      (long-lived, referenced from index objects — the source of constant
      old-to-young reference traffic);
    - a write to an existing key makes the previous record garbage
      (tombstoned), which is what concurrent collectors reclaim;
    - when the memtable reaches the flush threshold it is flushed to
      (simulated) disk: records, index objects and commit-log segments
      all become garbage at once;
    - the {e stress configuration} sets the flush threshold and commit-log
      capacity to the heap size, so nothing is ever flushed and the server
      saturates, and can pre-load the database and replay the commit log
      at startup, exactly as the paper configures Cassandra;
    - reads allocate short-lived deserialisation buffers, which is what
      keeps the young generation churning. *)

type config = {
  record_bytes : int;  (** one record cluster (a batch of rows) *)
  read_transient_bytes : int;  (** allocation per read operation *)
  write_transient_bytes : int;  (** serialisation buffers per write *)
  key_space : int;  (** number of distinct keys (record clusters) *)
  zipf_theta : float;  (** key popularity skew, as in YCSB *)
  memtable_flush_bytes : int;  (** flush threshold; = heap for stress *)
  index_fanout : int;  (** records per memtable index object *)
  index_bytes : int;  (** size of one memtable/row-cache index object *)
  flush_write_s : float;  (** virtual seconds to write one flush out *)
  service_threads : int;
}

val default_config : config
(** A "default Cassandra" configuration: the Cassandra-2.0 default of a
    quarter-heap (16 GB) memtable flush threshold. *)

val stress_config : heap_bytes:int -> config
(** The paper's stress test: memtable and commit log as large as the
    heap, so everything stays in memory. *)

type t

val create : Gcperf_runtime.Vm.t -> config -> seed:int -> t

val replay_commitlog : t -> target_bytes:int -> unit
(** Startup replay: rebuilds the in-memory cache by re-executing logged
    writes until the memtable holds [target_bytes] (the stress test
    pre-loads the database this way; the clock advances as it would
    during a real replay). *)

type op = Read | Update | Insert

val perform : t -> op -> unit
(** Executes one operation against the store (allocating as described
    above; may trigger collections). *)

val run :
  t ->
  duration_s:float ->
  ops_per_s:float ->
  read_frac:float ->
  insert_frac:float ->
  unit
(** Open-loop serving for [duration_s] of virtual time.  Non-read
    operations are updates, except [insert_frac] of all operations which
    grow the key space.  Records a database-size timeline as it goes. *)

val memtable_bytes : t -> int
val commitlog_bytes : t -> int
val flushes : t -> int
val operations : t -> int

val db_size_timeline : t -> (float * int) array
(** Samples of [(virtual_s, memtable+commitlog bytes)] taken while
    running; the YCSB client uses it to model read latency growing with
    database size. *)
