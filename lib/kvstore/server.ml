module Vec = Gcperf_util.Vec
module Ivec = Gcperf_util.Int_vec
module Prng = Gcperf_util.Prng
module Vm = Gcperf_runtime.Vm
module Os = Gcperf_heap.Obj_store

type config = {
  record_bytes : int;
  read_transient_bytes : int;
  write_transient_bytes : int;
  key_space : int;
  zipf_theta : float;
  memtable_flush_bytes : int;
  index_fanout : int;
  index_bytes : int;
  flush_write_s : float;
  service_threads : int;
}

let mb n = n * 1024 * 1024

let default_config =
  {
    record_bytes = 20 * 1024;
    read_transient_bytes = 96 * 1024;
    write_transient_bytes = 8 * 1024;
    key_space = 200_000;
    zipf_theta = 0.99;
    memtable_flush_bytes = mb 16384;
    index_fanout = 64;
    index_bytes = 192 * 1024;
    flush_write_s = 0.0;
    service_threads = 24;
  }

let stress_config ~heap_bytes =
  { default_config with memtable_flush_bytes = heap_bytes }

type op = Read | Update | Insert

type t = {
  vm : Vm.t;
  config : config;
  prng : Prng.t;
  threads : Vm.thread array;
  keys : (int, int * int) Hashtbl.t;  (* key -> (record id, index id) *)
  mutable next_key : int;
  indexes : Ivec.t;  (* memtable index objects of the current epoch *)
  mutable current_index : int;  (* index object receiving new records *)
  mutable current_index_fill : int;
  commitlog_segments : Ivec.t;
  mutable commitlog_fill : int;  (* bytes in the current segment *)
  mutable memtable : int;  (* bytes *)
  mutable commitlog : int;  (* bytes *)
  mutable flush_count : int;
  mutable op_count : int;
  timeline : (float * int) Vec.t;
}

let commitlog_segment_bytes = mb 8

let fresh_index ?(old = false) t =
  let id =
    if old then
      Vm.alloc_old_global t.vm ~size:t.config.index_bytes ~lifetime:`Permanent
    else
      Vm.alloc_global t.vm ~size:t.config.index_bytes ~lifetime:`Permanent
  in
  Ivec.push t.indexes id;
  t.current_index <- id;
  t.current_index_fill <- 0;
  id

let create vm config ~seed =
  let threads =
    Array.init (max 1 config.service_threads) (fun _ -> Vm.spawn_thread vm)
  in
  let t =
    {
      vm;
      config;
      prng = Prng.create seed;
      threads;
      keys = Hashtbl.create 4096;
      next_key = 0;
      indexes = Ivec.create ();
      current_index = -1;
      current_index_fill = 0;
      commitlog_segments = Ivec.create ();
      commitlog_fill = commitlog_segment_bytes;
      memtable = 0;
      commitlog = 0;
      flush_count = 0;
      op_count = 0;
      timeline = Vec.create ();
    }
  in
  ignore (fresh_index t);
  t

let memtable_bytes t = t.memtable
let commitlog_bytes t = t.commitlog
let flushes t = t.flush_count
let operations t = t.op_count
let db_size_timeline t = Vec.to_array t.timeline

let store t = (Vm.collector t.vm).Gcperf_gc.Collector.store

(* Flush: everything the memtable and commit log kept alive becomes
   garbage at once — records, index objects and log segments. *)
let flush t =
  t.flush_count <- t.flush_count + 1;
  let st = store t in
  Ivec.iter
    (fun idx ->
      if Os.is_live st idx then Os.clear_refs st idx;
      Vm.drop_global_root t.vm idx)
    t.indexes;
  Ivec.clear t.indexes;
  Ivec.iter (fun seg -> Vm.drop_global_root t.vm seg) t.commitlog_segments;
  Ivec.clear t.commitlog_segments;
  Hashtbl.reset t.keys;
  t.memtable <- 0;
  t.commitlog <- 0;
  t.commitlog_fill <- commitlog_segment_bytes;
  ignore (fresh_index t)

let commitlog_append t thread bytes =
  t.commitlog <- t.commitlog + bytes;
  t.commitlog_fill <- t.commitlog_fill + bytes;
  if t.commitlog_fill >= commitlog_segment_bytes then begin
    t.commitlog_fill <- 0;
    let seg =
      Vm.alloc t.vm thread ~size:commitlog_segment_bytes ~lifetime:`Permanent
    in
    Vm.global_root t.vm seg;
    Vm.drop_root t.vm thread seg;
    Ivec.push t.commitlog_segments seg
  end

(* Replay installs straight into the old generation: commit-log replay
   rebuilds the cache in bulk through slab allocation, without the young
   generation churn of the regular write path. *)
let install_record_old t key =
  let record =
    Vm.alloc_old_global t.vm ~size:t.config.record_bytes ~lifetime:`Permanent
  in
  if t.current_index_fill >= t.config.index_fanout then
    ignore (fresh_index ~old:true t);
  let index = t.current_index in
  Vm.add_ref t.vm ~parent:index ~child:record;
  t.current_index_fill <- t.current_index_fill + 1;
  Vm.drop_global_root t.vm record;
  Hashtbl.replace t.keys key (record, index);
  t.memtable <- t.memtable + t.config.record_bytes;
  t.commitlog <- t.commitlog + t.config.record_bytes

let install_record t thread key =
  (* Serialisation/validation buffers of the write path die young. *)
  if t.config.write_transient_bytes > 0 then
    ignore
      (Vm.alloc t.vm thread ~size:t.config.write_transient_bytes
         ~lifetime:(`Bytes (t.config.write_transient_bytes * 4)));
  let record =
    Vm.alloc t.vm thread ~size:t.config.record_bytes ~lifetime:`Permanent
  in
  (* The record is kept alive by the memtable index, not by a root: this
     is what makes overwritten records collectable and what creates the
     old-to-young reference traffic of a real memtable. *)
  if t.current_index_fill >= t.config.index_fanout then ignore (fresh_index t);
  let index = t.current_index in
  Vm.add_ref t.vm ~parent:index ~child:record;
  t.current_index_fill <- t.current_index_fill + 1;
  Vm.drop_root t.vm thread record;
  (match Hashtbl.find_opt t.keys key with
  | Some (old_record, old_index) ->
      (* Overwrite: sever the memtable's reference to the old version. *)
      let st = store t in
      if Os.is_live st old_index then
        Vm.remove_ref t.vm ~parent:old_index ~child:old_record;
      t.memtable <- t.memtable - t.config.record_bytes
  | None -> ());
  Hashtbl.replace t.keys key (record, index);
  t.memtable <- t.memtable + t.config.record_bytes;
  commitlog_append t thread t.config.record_bytes;
  if t.memtable + t.commitlog >= t.config.memtable_flush_bytes then flush t

let perform_on t thread = function
  | Read ->
      ignore
        (Vm.alloc t.vm thread ~size:t.config.read_transient_bytes
           ~lifetime:(`Bytes (t.config.read_transient_bytes * 4)))
  | Update ->
      let key =
        if t.next_key = 0 then 0
        else Prng.zipf t.prng ~n:t.next_key ~theta:t.config.zipf_theta
      in
      if t.next_key = 0 then t.next_key <- 1;
      install_record t thread key
  | Insert ->
      let key = t.next_key in
      t.next_key <- t.next_key + 1;
      install_record t thread key

let perform t op =
  t.op_count <- t.op_count + 1;
  perform_on t t.threads.(t.op_count mod Array.length t.threads) op

let quantum_us = 50_000.0

let replay_commitlog t ~target_bytes =
  (* Replaying is a bulk re-execution of logged writes: roughly 60 MB/s
     of record installation, landing directly in the old generation. *)
  let replay_rate = 60.0 *. 1024.0 *. 1024.0 in
  let per_quantum =
    int_of_float (replay_rate *. (quantum_us /. 1e6))
    / t.config.record_bytes
  in
  while t.memtable < target_bytes do
    Vm.step t.vm ~dt_us:quantum_us (fun th ->
        if th.Vm.tid = t.threads.(0).Vm.tid then
          for _ = 1 to max 1 per_quantum do
            if t.memtable < target_bytes then begin
              t.op_count <- t.op_count + 1;
              let key = t.next_key in
              t.next_key <- t.next_key + 1;
              install_record_old t key
            end
          done)
  done

let run t ~duration_s ~ops_per_s ~read_frac ~insert_frac =
  let stop = Vm.now_s t.vm +. duration_s in
  let carry = ref 0.0 in
  while Vm.now_s t.vm < stop do
    carry := !carry +. (ops_per_s *. (quantum_us /. 1e6));
    let ops = int_of_float !carry in
    carry := !carry -. float_of_int ops;
    let n_threads = Array.length t.threads in
    let per_thread = (ops + n_threads - 1) / n_threads in
    let issued = ref 0 in
    Vm.step t.vm ~dt_us:quantum_us (fun th ->
        let is_service =
          Array.exists (fun s -> s.Vm.tid = th.Vm.tid) t.threads
        in
        if is_service then
          for _ = 1 to per_thread do
            if !issued < ops then begin
              incr issued;
              t.op_count <- t.op_count + 1;
              let u = Prng.float t.prng 1.0 in
              let op =
                if u < read_frac then Read
                else if u < read_frac +. insert_frac then Insert
                else Update
              in
              perform_on t th op
            end
          done);
    Vec.push t.timeline (Vm.now_s t.vm, t.memtable + t.commitlog)
  done
