(** Request-admission gateway: the server's degraded-mode front door.

    The key-value server of {!Server} models the heap; this module
    models what its request path does while the collector holds the
    safepoint.  A gateway is a deterministic queue simulation over the
    server's pause timeline: [servers] concurrent service slots fed by a
    bounded FIFO queue, with service progress frozen inside every
    stop-the-world interval.  Two degradation valves, both off in the
    happy-path (unbounded) configuration:

    - {e load shedding}: arrivals beyond [queue_capacity] waiting
      requests are rejected immediately instead of queueing;
    - {e fast reject}: while a GC pause holds the safepoint and the
      queue has already filled past [fast_reject_fill], new arrivals are
      bounced straight away — the cheap "server busy" answer a stalled
      Cassandra coordinator returns instead of letting the pile-up grow.

    Offers must arrive in non-decreasing time order (the session's event
    loop guarantees it); everything else is pure arithmetic over the
    pause schedule, so a gateway run is byte-reproducible. *)

type config = {
  servers : int;  (** concurrent service slots (Cassandra's RPC threads) *)
  queue_capacity : int;  (** max waiting requests before shedding *)
  shed : bool;
  fast_reject : bool;
  fast_reject_fill : int;
      (** queue fill at which pause-time fast rejection kicks in *)
  reject_cost_ms : float;
      (** client-observed latency of a shed / fast-rejected request *)
}

val degraded : config
(** Graceful degradation on: bounded queue, shedding and the pause-time
    fast-reject path.  The resilience-on server of [exp_faults]. *)

val unbounded : config
(** The happy-path server the repo modelled before this subsystem:
    queue without bound, never shed — pause pile-ups hit the clients. *)

type outcome =
  | Served of { wait_ms : float; finish_s : float }
      (** queued for [wait_ms], response ready at [finish_s] (service
          stretched across any pause that interrupts it) *)
  | Shed
  | Fast_rejected

type t

val create : config -> pauses:(float * float) array -> t
(** [pauses] sorted stop-the-world intervals in seconds. *)

val offer : t -> now_s:float -> service_ms:float -> outcome
(** Admit (or reject) a request arriving at [now_s] whose un-delayed
    service takes [service_ms].  [now_s] must be non-decreasing across
    calls. *)

val queue_length : t -> now_s:float -> int
(** Waiting (admitted, not yet started) requests at [now_s]. *)

val served : t -> int

val sheds : t -> int

val fast_rejects : t -> int
