module Heapq = Gcperf_util.Heapq

type config = {
  servers : int;
  queue_capacity : int;
  shed : bool;
  fast_reject : bool;
  fast_reject_fill : int;
  reject_cost_ms : float;
}

let degraded =
  {
    servers = 24;
    queue_capacity = 256;
    shed = true;
    fast_reject = true;
    fast_reject_fill = 48;
    reject_cost_ms = 0.2;
  }

let unbounded =
  {
    degraded with
    queue_capacity = max_int;
    shed = false;
    fast_reject = false;
    fast_reject_fill = max_int;
  }

type outcome =
  | Served of { wait_ms : float; finish_s : float }
  | Shed
  | Fast_rejected

type t = {
  config : config;
  pauses : (float * float) array;
  slots : unit Heapq.t;  (* per-slot free-at times, microseconds *)
  pending : unit Heapq.t;  (* start times of waiting requests, microseconds *)
  mutable served : int;
  mutable sheds : int;
  mutable fast_rejects : int;
}

let us s = int_of_float (s *. 1e6)

let create config ~pauses =
  let slots = Heapq.create () in
  for _ = 1 to max 1 config.servers do
    Heapq.push slots 0 ()
  done;
  {
    config;
    pauses;
    slots;
    pending = Heapq.create ();
    served = 0;
    sheds = 0;
    fast_rejects = 0;
  }

(* Index of the first pause whose end is after [s] (binary search; offer
   times are monotone but slot start times jump around, so a cursor is
   not enough). *)
let first_pause_ending_after t s =
  let n = Array.length t.pauses in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if snd t.pauses.(mid) <= s then lo := mid + 1 else hi := mid
  done;
  !lo

let paused t s =
  let i = first_pause_ending_after t s in
  i < Array.length t.pauses && fst t.pauses.(i) <= s

(* Push [s] past every pause that contains it: service cannot start
   while the collector holds the safepoint. *)
let rec skip_pauses t s =
  let i = first_pause_ending_after t s in
  if i < Array.length t.pauses && fst t.pauses.(i) <= s then
    skip_pauses t (snd t.pauses.(i))
  else s

(* Completion time of a service of [dur_s] starting (outside any pause)
   at [start_s]: every pause that begins before the moving finish line
   freezes the slot for its whole duration. *)
let stretch t start_s dur_s =
  let finish = ref (start_s +. dur_s) in
  let i = ref (first_pause_ending_after t start_s) in
  let n = Array.length t.pauses in
  while !i < n && fst t.pauses.(!i) < !finish do
    finish := !finish +. (snd t.pauses.(!i) -. fst t.pauses.(!i));
    incr i
  done;
  !finish

let retire_started t now_us =
  let rec loop () =
    match Heapq.min_key t.pending with
    | Some k when k <= now_us ->
        ignore (Heapq.pop t.pending);
        loop ()
    | _ -> ()
  in
  loop ()

let queue_length t ~now_s =
  retire_started t (us now_s);
  Heapq.length t.pending

let offer t ~now_s ~service_ms =
  retire_started t (us now_s);
  let waiting = Heapq.length t.pending in
  if
    t.config.fast_reject && waiting >= t.config.fast_reject_fill
    && paused t now_s
  then begin
    t.fast_rejects <- t.fast_rejects + 1;
    Fast_rejected
  end
  else if t.config.shed && waiting >= t.config.queue_capacity then begin
    t.sheds <- t.sheds + 1;
    Shed
  end
  else begin
    let free_us =
      match Heapq.pop t.slots with
      | Some (k, ()) -> k
      | None -> assert false
    in
    let start_s =
      skip_pauses t (Float.max now_s (float_of_int free_us /. 1e6))
    in
    let finish_s = stretch t start_s (service_ms /. 1e3) in
    Heapq.push t.slots (us finish_s) ();
    if start_s > now_s then Heapq.push t.pending (us start_s) ();
    t.served <- t.served + 1;
    Served { wait_ms = (start_s -. now_s) *. 1e3; finish_s }
  end

let served t = t.served
let sheds t = t.sheds
let fast_rejects t = t.fast_rejects
