module Machine = Gcperf_machine.Machine
module Os = Gcperf_heap.Obj_store
module Gh = Gcperf_heap.Gen_heap

type plan = {
  young_workers : int;
  full_workers : int;
  promote_rate : float;  (* bump-pointer vs free-list promotion *)
}

let plan_of (ctx : Gc_ctx.t) (kind : Gc_config.kind) =
  let m = ctx.Gc_ctx.machine in
  let cost = m.Machine.cost in
  match kind with
  | Gc_config.Serial ->
      { young_workers = 1; full_workers = 1; promote_rate = cost.Machine.promote_rate }
  | Gc_config.ParNew ->
      (* ParNew's young collector is built to feed a CMS-style free-list
         old generation, which makes its promotions slower per byte. *)
      {
        young_workers = m.Machine.gc_threads;
        full_workers = 1;
        promote_rate = cost.Machine.promote_freelist_rate;
      }
  | Gc_config.Parallel ->
      {
        young_workers = m.Machine.gc_threads;
        full_workers = 1;
        promote_rate = cost.Machine.promote_rate;
      }
  | Gc_config.ParallelOld ->
      {
        young_workers = m.Machine.gc_threads;
        full_workers = m.Machine.gc_threads;
        promote_rate = cost.Machine.promote_rate;
      }
  | Gc_config.Cms | Gc_config.G1 | Gc_config.Concurrent_regions
  | Gc_config.Journal_rc ->
      invalid_arg "Gc_stw.create: not a stop-the-world collector"

let create ctx (config : Gc_config.t) =
  let plan = plan_of ctx config.Gc_config.kind in
  let name = Gc_config.kind_to_string config.Gc_config.kind in
  let store = Os.create () in
  let heap =
    Gh.create store ~heap_bytes:config.Gc_config.heap_bytes
      ~young_bytes:config.Gc_config.young_bytes
      ~survivor_ratio:config.Gc_config.survivor_ratio
      ~tenuring_threshold:config.Gc_config.tenuring_threshold ()
  in
  let params =
    {
      Gen_algo.workers = plan.young_workers;
      promote_rate = plan.promote_rate;
      usable_old_free = (fun () -> Gh.old_free heap);
    }
  in
  let full reason =
    ignore
      (Gen_algo.collect_full ctx heap ~workers:plan.full_workers ~collector:name
         ~reason)
  in
  let minor reason =
    match Gen_algo.collect_young ctx heap ~params ~collector:name ~reason with
    | _outcome -> ()
    | exception Gen_algo.Promotion_failure -> full "promotion failure"
  in
  (* Eden-full handling, out of line: the eden fast path in [alloc] is
     the hottest call in the simulator, and keeping the recovery paths in
     a separate function keeps it branch-lean. *)
  let alloc_slow ~size =
    (* Objects too large for eden go straight to the old generation, as
       HotSpot does for very large allocations.  [eden_cap] is read only
       after the fast path fails: an over-eden-capacity request can never
       fit eden, so the fast [alloc_eden_id] attempt refuses it with no
       side effects and the check is equivalent to testing it first.
       ([eden_cap] itself can move between safepoints under the adaptive
       sizing policy, which is why it is read per failure, not cached.) *)
    if size > heap.Gh.eden_cap then begin
      match Gh.alloc_old_direct heap ~size with
      | Some id -> id
      | None ->
          full "allocation failure (large object)";
          (match Gh.alloc_old_direct heap ~size with
          | Some id -> id
          | None ->
              raise
                (Gc_ctx.Out_of_memory
                   (Printf.sprintf "%s: cannot fit %d-byte object" name size)))
    end
    else begin
      minor "allocation failure";
      match Gh.alloc_eden heap ~size with
      | Some id -> id
      | None -> (
          (* Eden still full after a young collection: survivors (or
             full-GC overflow) crowd it.  One full collection, then
             either eden or the old generation must take the object. *)
          full "allocation failure";
          match Gh.alloc_eden heap ~size with
          | Some id -> id
          | None -> (
              match Gh.alloc_old_direct heap ~size with
              | Some id -> id
              | None ->
                  raise
                    (Gc_ctx.Out_of_memory
                       (Printf.sprintf "%s: heap exhausted allocating %d bytes"
                          name size))))
    end
  in
  let alloc ~size =
    let id = Gh.alloc_eden_id heap ~size in
    if id >= 0 then id else alloc_slow ~size
  in
  let alloc_old ~size =
    match Gh.alloc_old_direct heap ~size with
    | Some id -> id
    | None -> (
        full "allocation failure (tenured)";
        match Gh.alloc_old_direct heap ~size with
        | Some id -> id
        | None ->
            raise
              (Gc_ctx.Out_of_memory
                 (Printf.sprintf "%s: old generation exhausted (%d bytes)" name
                    size)))
  in
  Policy_hooks.install_gen_capacity ctx heap;
  {
    Collector.name;
    kind = config.Gc_config.kind;
    alloc;
    alloc_old;
    system_gc = (fun () -> full "system.gc");
    tick = (fun ~dt_us:_ -> ());
    mutator_factor = (fun () -> 1.0);
    mutator_tax = (fun () -> (1.0, 1.0));
    write_ref = (fun ~parent ~child -> Gh.record_store heap ~parent ~child);
    remove_ref = (fun ~parent ~child -> Gh.remove_store heap ~parent ~child);
    heap_used = (fun () -> Gh.heap_used heap);
    heap_capacity = (fun () -> heap.Gh.heap_bytes);
    young_used = (fun () -> Gh.young_used heap);
    old_used = (fun () -> heap.Gh.old_used);
    apply_policy = Policy_hooks.gen_heap_hook ctx heap ~collector:name;
    store;
    check_invariants = (fun () -> Gh.check_invariants heap);
  }
