type kind = Serial | ParNew | Parallel | ParallelOld | Cms | G1

let all_kinds = [ Serial; ParNew; Parallel; ParallelOld; Cms; G1 ]

let kind_to_string = function
  | Serial -> "SerialGC"
  | ParNew -> "ParNewGC"
  | Parallel -> "ParallelGC"
  | ParallelOld -> "ParallelOldGC"
  | Cms -> "ConcMarkSweepGC"
  | G1 -> "G1GC"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "serial" | "serialgc" -> Some Serial
  | "parnew" | "parnewgc" -> Some ParNew
  | "parallel" | "parallelgc" -> Some Parallel
  | "parallelold" | "paralleloldgc" -> Some ParallelOld
  | "cms" | "concmarksweep" | "concmarksweepgc" | "concurrentmarksweep" ->
      Some Cms
  | "g1" | "g1gc" -> Some G1
  | _ -> None

type t = {
  kind : kind;
  heap_bytes : int;
  young_bytes : int;
  tlab : bool;
  tlab_bytes : int;
  survivor_ratio : int;
  tenuring_threshold : int;
  cms_initiating_occupancy : float;
  g1_ihop : float;
  g1_pause_target_ms : float;
  g1_region_target : int;
  g1_parallel_full : bool;
}

let kb = 1024
let mb n = n * 1024 * 1024
let gb n = n * 1024 * 1024 * 1024

let default kind ~heap_bytes ~young_bytes =
  if young_bytes > heap_bytes then
    invalid_arg "Gc_config.default: young generation larger than heap";
  {
    kind;
    heap_bytes;
    young_bytes;
    tlab = true;
    tlab_bytes = 256 * kb;
    survivor_ratio = 8;
    tenuring_threshold = 6;
    cms_initiating_occupancy = 0.70;
    g1_ihop = 0.45;
    g1_pause_target_ms = 200.0;
    g1_region_target = 1024;
    g1_parallel_full = false;
  }

(* The study's baseline: ParallelOld defaults on the 64 GB machine —
   ~16 GB max heap, ~5.6 GB young generation. *)
let baseline kind =
  default kind ~heap_bytes:(gb 16) ~young_bytes:(mb 5734)

let pp ppf t =
  Format.fprintf ppf "%s heap=%dMB young=%dMB tlab=%b"
    (kind_to_string t.kind)
    (t.heap_bytes / (1024 * 1024))
    (t.young_bytes / (1024 * 1024))
    t.tlab
