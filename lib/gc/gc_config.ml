type kind =
  | Serial
  | ParNew
  | Parallel
  | ParallelOld
  | Cms
  | G1
  | Concurrent_regions
  | Journal_rc

(* The paper's six JDK8 collectors, in Table 1 order.  The pauseless
   family deliberately stays out of this list: every existing grid
   (fig3, table4, ...) iterates [all_kinds] and its goldens are frozen. *)
let all_kinds = [ Serial; ParNew; Parallel; ParallelOld; Cms; G1 ]

let concurrent_kinds = [ Concurrent_regions; Journal_rc ]

let extended_kinds = all_kinds @ concurrent_kinds

let kind_to_string = function
  | Serial -> "SerialGC"
  | ParNew -> "ParNewGC"
  | Parallel -> "ParallelGC"
  | ParallelOld -> "ParallelOldGC"
  | Cms -> "ConcMarkSweepGC"
  | G1 -> "G1GC"
  | Concurrent_regions -> "ConcurrentRegionsGC"
  | Journal_rc -> "JournalRCGC"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "serial" | "serialgc" -> Some Serial
  | "parnew" | "parnewgc" -> Some ParNew
  | "parallel" | "parallelgc" -> Some Parallel
  | "parallelold" | "paralleloldgc" -> Some ParallelOld
  | "cms" | "concmarksweep" | "concmarksweepgc" | "concurrentmarksweep" ->
      Some Cms
  | "g1" | "g1gc" -> Some G1
  | "concurrent-regions" | "concurrentregions" | "concurrentregionsgc"
  | "zgc" | "shenandoah" ->
      Some Concurrent_regions
  | "journal-rc" | "journalrc" | "journalrcgc" | "mo-gc" | "mogc" | "rc" ->
      Some Journal_rc
  | _ -> None

let kind_names =
  List.map kind_to_string extended_kinds
  @ [
      "serial";
      "parnew";
      "parallel";
      "parallelold";
      "cms";
      "g1";
      "concurrent-regions";
      "zgc";
      "shenandoah";
      "journal-rc";
      "mo-gc";
      "rc";
    ]

type t = {
  kind : kind;
  heap_bytes : int;
  young_bytes : int;
  tlab : bool;
  tlab_bytes : int;
  survivor_ratio : int;
  tenuring_threshold : int;
  cms_initiating_occupancy : float;
  g1_ihop : float;
  g1_pause_target_ms : float;
  g1_region_target : int;
  g1_parallel_full : bool;
  adaptive : bool;
  pause_goal_ms : float;
  gc_time_ratio : int;
  journal_alloc_overhead : float;
  journal_fold_jobs : int;
}

let kb = 1024
let mb n = n * 1024 * 1024
let gb n = n * 1024 * 1024 * 1024

let default kind ~heap_bytes ~young_bytes =
  if young_bytes > heap_bytes then
    invalid_arg "Gc_config.default: young generation larger than heap";
  {
    kind;
    heap_bytes;
    young_bytes;
    tlab = true;
    tlab_bytes = 256 * kb;
    survivor_ratio = 8;
    tenuring_threshold = 6;
    cms_initiating_occupancy = 0.70;
    g1_ihop = 0.45;
    g1_pause_target_ms = 200.0;
    g1_region_target = 1024;
    g1_parallel_full = false;
    adaptive = false;
    pause_goal_ms = 200.0;
    gc_time_ratio = 99;
    journal_alloc_overhead = 0.25;
    journal_fold_jobs = 1;
  }

(* The study's baseline: ParallelOld defaults on the 64 GB machine —
   ~16 GB max heap, ~5.6 GB young generation. *)
let baseline kind =
  default kind ~heap_bytes:(gb 16) ~young_bytes:(mb 5734)

let mb_of b = b / (1024 * 1024)

(* One error at a time, phrased like the JVM flag the field mirrors so
   the message tells the user which knob to turn. *)
let validate t =
  if t.heap_bytes <= 0 then
    Error
      (Printf.sprintf "heap size must be positive (-Xmx), got %d bytes"
         t.heap_bytes)
  else if t.young_bytes <= 0 then
    Error
      (Printf.sprintf
         "young generation size must be positive (-Xmn), got %d bytes"
         t.young_bytes)
  else if t.young_bytes >= t.heap_bytes then
    Error
      (Printf.sprintf
         "young generation (-Xmn %dMB) must be smaller than the heap (-Xmx \
          %dMB); leave room for the old generation"
         (mb_of t.young_bytes) (mb_of t.heap_bytes))
  else if t.survivor_ratio < 1 then
    Error
      (Printf.sprintf
         "survivor ratio (-XX:SurvivorRatio) must be >= 1, got %d"
         t.survivor_ratio)
  else if t.tlab && t.tlab_bytes <= 0 then
    Error
      (Printf.sprintf
         "TLAB size (-XX:TLABSize) must be positive when TLABs are enabled, \
          got %d bytes"
         t.tlab_bytes)
  else if t.tenuring_threshold < 1 || t.tenuring_threshold > 15 then
    Error
      (Printf.sprintf
         "tenuring threshold (-XX:MaxTenuringThreshold) must be in 1..15, \
          got %d"
         t.tenuring_threshold)
  else if t.cms_initiating_occupancy <= 0.0 || t.cms_initiating_occupancy > 1.0
  then
    Error
      (Printf.sprintf
         "CMS initiating occupancy must be a fraction in (0, 1], got %g"
         t.cms_initiating_occupancy)
  else if t.g1_ihop <= 0.0 || t.g1_ihop > 1.0 then
    Error
      (Printf.sprintf
         "G1 IHOP (-XX:InitiatingHeapOccupancyPercent) must be a fraction \
          in (0, 1], got %g"
         t.g1_ihop)
  else if t.g1_region_target < 1 then
    Error
      (Printf.sprintf "G1 region target must be >= 1, got %d"
         t.g1_region_target)
  else if t.pause_goal_ms <= 0.0 then
    Error
      (Printf.sprintf
         "pause goal (-XX:MaxGCPauseMillis) must be positive, got %g ms"
         t.pause_goal_ms)
  else if t.gc_time_ratio < 1 then
    Error
      (Printf.sprintf "GC time ratio (-XX:GCTimeRatio) must be >= 1, got %d"
         t.gc_time_ratio)
  else if t.journal_alloc_overhead < 0.0 || t.journal_alloc_overhead >= 1.0
  then
    Error
      (Printf.sprintf
         "journal allocation overhead must be a fraction in [0, 1), got %g"
         t.journal_alloc_overhead)
  else if t.journal_fold_jobs < 1 then
    Error
      (Printf.sprintf
         "journal fold jobs (--journal-fold-jobs) must be >= 1, got %d"
         t.journal_fold_jobs)
  else Ok t

let pp ppf t =
  Format.fprintf ppf "%s heap=%dMB young=%dMB tlab=%b"
    (kind_to_string t.kind)
    (t.heap_bytes / (1024 * 1024))
    (t.young_bytes / (1024 * 1024))
    t.tlab
