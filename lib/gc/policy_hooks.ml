module Gh = Gcperf_heap.Gen_heap
module Rh = Gcperf_heap.Region_heap
module Policy = Gcperf_policy.Policy
module Telemetry = Gcperf_telemetry.Telemetry
module Span = Gcperf_telemetry.Span

(* A resize is observable but free: it is recorded as a zero-duration
   span (the boundary move is bookkeeping, not work) and never touches
   the clock, so telemetry on/off cannot perturb results. *)
let record_resize ctx ~collector ~young_before ~young_after ~old_before
    ~old_after =
  let tel = ctx.Gc_ctx.telemetry in
  if Telemetry.enabled tel then begin
    Telemetry.record_span tel
      {
        Span.collector;
        kind = "resize";
        cause = "adaptive sizing policy";
        start_us = Gcperf_sim.Clock.now_us ctx.Gc_ctx.clock;
        duration_us = 0.0;
        phases = [];
        sub = [];
        young_before;
        young_after;
        old_before;
        old_after;
        promoted = 0;
      };
    Telemetry.incr tel "policy.resizes" 1.0
  end

let install_gen_capacity ctx (heap : Gh.t) =
  ctx.Gc_ctx.young_capacity <- (fun () -> heap.Gh.young_bytes);
  ctx.Gc_ctx.heap_capacity <- (fun () -> heap.Gh.heap_bytes)

let gen_heap_hook ctx (heap : Gh.t) ~collector () =
  match ctx.Gc_ctx.policy with
  | None -> ()
  | Some p -> (
      match p.Policy.decide () with
      | None -> ()
      | Some d ->
          let young_before = heap.Gh.young_bytes in
          let old_before = heap.Gh.old_cap in
          (match d.Policy.tenuring_threshold with
          | Some t -> heap.Gh.tenuring_threshold <- t
          | None -> ());
          let want_young =
            Option.value d.Policy.young_bytes ~default:heap.Gh.young_bytes
          in
          let want_ratio =
            Option.value d.Policy.survivor_ratio
              ~default:heap.Gh.survivor_ratio
          in
          let applied_young, applied_ratio =
            if
              want_young <> heap.Gh.young_bytes
              || want_ratio <> heap.Gh.survivor_ratio
            then Gh.resize_young heap ~young_bytes:want_young
                   ~survivor_ratio:want_ratio
            else (heap.Gh.young_bytes, heap.Gh.survivor_ratio)
          in
          p.Policy.applied
            {
              d with
              Policy.young_bytes = Some applied_young;
              survivor_ratio = Some applied_ratio;
            };
          if applied_young <> young_before then
            record_resize ctx ~collector ~young_before
              ~young_after:applied_young ~old_before
              ~old_after:heap.Gh.old_cap)

let install_region_capacity ctx (rheap : Rh.t) =
  ctx.Gc_ctx.young_capacity <- (fun () -> rheap.Rh.young_target_bytes);
  ctx.Gc_ctx.heap_capacity <- (fun () -> rheap.Rh.heap_bytes)

let region_heap_hook ctx (rheap : Rh.t) ~collector ~tenuring () =
  match ctx.Gc_ctx.policy with
  | None -> ()
  | Some p -> (
      match p.Policy.decide () with
      | None -> ()
      | Some d ->
          let young_before = rheap.Rh.young_target_bytes in
          (match d.Policy.tenuring_threshold with
          | Some t -> tenuring := t
          | None -> ());
          let want =
            match (d.Policy.region_target, d.Policy.young_bytes) with
            | Some regions, _ -> Some (regions * rheap.Rh.region_size)
            | None, Some bytes -> Some bytes
            | None, None -> None
          in
          let applied_young =
            match want with
            | Some bytes when bytes <> young_before ->
                Rh.set_young_target rheap ~bytes
            | _ -> young_before
          in
          p.Policy.applied
            {
              d with
              Policy.young_bytes = Some applied_young;
              region_target =
                Some
                  ((applied_young + rheap.Rh.region_size - 1)
                  / rheap.Rh.region_size);
            };
          if applied_young <> young_before then
            record_resize ctx ~collector ~young_before
              ~young_after:applied_young ~old_before:0 ~old_after:0)
