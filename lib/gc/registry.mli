(** Collector construction by kind or name. *)

val create : Gc_ctx.t -> Gc_config.t -> Collector.t
(** Builds the collector selected by the configuration's [kind]. *)

val create_named : Gc_ctx.t -> string -> Gc_config.t -> Collector.t option
(** [create_named ctx name config] overrides the configuration's kind with
    the collector named [name] ("SerialGC", "cms", ...). *)

val register_builder :
  Gc_config.kind -> (Gc_ctx.t -> Gc_config.t -> Collector.t) -> unit
(** Registers the constructor for a collector kind implemented outside
    this library (the pauseless family in [lib/gc_concurrent]).  Called
    by [Gcperf_gc_concurrent.Plug.install]; last registration wins. *)
