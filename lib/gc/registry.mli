(** Collector construction by kind or name. *)

val create : Gc_ctx.t -> Gc_config.t -> Collector.t
(** Builds the collector selected by the configuration's [kind]. *)

val create_named : Gc_ctx.t -> string -> Gc_config.t -> Collector.t option
(** [create_named ctx name config] overrides the configuration's kind with
    the collector named [name] ("SerialGC", "cms", ...). *)
