(** Collection algorithms over the generational heap layout.

    Serial, ParNew, Parallel, ParallelOld and CMS all share these two
    building blocks and differ only in their parameters:

    - {!collect_young}: a copying collection of the young generation
      (eden + from-survivor into to-survivor/old), serial or parallel,
      with bump-pointer or free-list promotion;
    - {!collect_full}: a stop-the-world mark-compact of the entire heap,
      serial or parallel.

    Both genuinely trace the simulated object graph, so survival,
    promotion and reclamation are emergent, and both charge their phases
    to the virtual clock through the machine cost model.

    The hot paths are incremental and allocation-free in steady state:
    marks are epoch stamps ({!Gcperf_heap.Obj_store.begin_trace}), work
    lists live in the heap's scratch vectors, and the remembered set is
    refreshed from the previous entries plus the freshly promoted objects
    ({!Gcperf_heap.Gen_heap.refresh_cards}) instead of being rebuilt from
    the whole heap. *)

type young_params = {
  workers : int;  (** GC threads for the stop-the-world young phases *)
  promote_rate : float;
      (** bytes/us for copying a survivor into the old generation
          (bump-pointer for the throughput collectors, free-list for CMS) *)
  usable_old_free : unit -> int;
      (** how much old-generation space promotions may use; CMS plugs in
          its fragmentation model here *)
}

type young_outcome = {
  promoted_bytes : int;
  survivor_bytes : int;  (** bytes kept in the to-survivor space *)
  freed_bytes : int;
}

exception Promotion_failure
(** The survivors do not fit in the old generation; the caller must fall
    back to a full collection.  The heap is left untouched. *)

val collect_young :
  Gc_ctx.t ->
  Gcperf_heap.Gen_heap.t ->
  params:young_params ->
  collector:string ->
  reason:string ->
  young_outcome
(** @raise Promotion_failure as described above. *)

type full_outcome = {
  live_bytes : int;
  full_freed_bytes : int;
  duration_us : float;
}

val collect_full :
  Gc_ctx.t ->
  Gcperf_heap.Gen_heap.t ->
  workers:int ->
  collector:string ->
  reason:string ->
  full_outcome
(** Mark-compact of both generations: live young objects are evacuated
    into the old generation (overflow stays young), dead objects are
    reclaimed, the old generation is compacted.
    @raise Gc_ctx.Out_of_memory when live data exceeds the heap. *)

val trace_all : Gc_ctx.t -> Gcperf_heap.Gen_heap.t -> Gcperf_util.Int_vec.t
(** Marks every object reachable from the roots (both generations) under a
    fresh trace epoch and returns the marked ids.  The returned vector is
    the heap's scratch mark list, valid until the next trace; mark stamps
    stay queryable via {!Gcperf_heap.Obj_store.is_marked} until the next
    {!Gcperf_heap.Obj_store.begin_trace}.  Used by CMS's remark pause,
    which needs an exact liveness snapshot. *)
