(* Enabling TLABs strands the unused tail of each buffer at refill time:
   ~1.5% of the young generation is lost to this waste, which is how the
   TLAB can occasionally *hurt* (an extra collection squeezes in). *)
let tlab_waste config =
  if config.Gc_config.tlab then
    {
      config with
      Gc_config.young_bytes = config.Gc_config.young_bytes * 985 / 1000;
    }
  else config

(* Collectors that live outside this library (the pauseless family in
   [lib/gc_concurrent], which depends on [lib/gc] and so cannot be
   dispatched to statically here) register a builder per kind.  The
   runtime installs them before the first [create]; a missing builder is
   a linkage bug, not a user error. *)
let external_builders :
    (Gc_config.kind, Gc_ctx.t -> Gc_config.t -> Collector.t) Hashtbl.t =
  Hashtbl.create 4

let register_builder kind f = Hashtbl.replace external_builders kind f

let create ctx config =
  let config = tlab_waste config in
  (* Ergonomics: attach the adaptive sizing policy before the collector
     is built, seeded with the post-TLAB-waste young size the heap will
     actually start from.  With [adaptive = false] the context keeps
     [policy = None] and every hook below is a single dead branch. *)
  if config.Gc_config.adaptive then
    ctx.Gc_ctx.policy <-
      Some
        (Gcperf_policy.Adaptive_size_policy.create
           (Gcperf_policy.Adaptive_size_policy.default_config
              ~heap_bytes:config.Gc_config.heap_bytes
              ~young_bytes:config.Gc_config.young_bytes
              ~survivor_ratio:config.Gc_config.survivor_ratio
              ~tenuring_threshold:config.Gc_config.tenuring_threshold
              ~pause_goal_ms:config.Gc_config.pause_goal_ms
              ~gc_time_ratio:config.Gc_config.gc_time_ratio ()));
  match config.Gc_config.kind with
  | Gc_config.Serial | Gc_config.ParNew | Gc_config.Parallel
  | Gc_config.ParallelOld ->
      Gc_stw.create ctx config
  | Gc_config.Cms -> Gc_cms.create ctx config
  | Gc_config.G1 -> Gc_g1.create ctx config
  | (Gc_config.Concurrent_regions | Gc_config.Journal_rc) as kind -> (
      match Hashtbl.find_opt external_builders kind with
      | Some build -> build ctx config
      | None ->
          invalid_arg
            (Printf.sprintf
               "Registry.create: %s has no registered builder (is \
                gcperf_gc_concurrent linked and installed?)"
               (Gc_config.kind_to_string kind)))

let create_named ctx name (config : Gc_config.t) =
  match Gc_config.kind_of_string name with
  | None -> None
  | Some kind -> Some (create ctx { config with Gc_config.kind })
