(* Enabling TLABs strands the unused tail of each buffer at refill time:
   ~1.5% of the young generation is lost to this waste, which is how the
   TLAB can occasionally *hurt* (an extra collection squeezes in). *)
let tlab_waste config =
  if config.Gc_config.tlab then
    {
      config with
      Gc_config.young_bytes = config.Gc_config.young_bytes * 985 / 1000;
    }
  else config

let create ctx config =
  let config = tlab_waste config in
  match config.Gc_config.kind with
  | Gc_config.Serial | Gc_config.ParNew | Gc_config.Parallel
  | Gc_config.ParallelOld ->
      Gc_stw.create ctx config
  | Gc_config.Cms -> Gc_cms.create ctx config
  | Gc_config.G1 -> Gc_g1.create ctx config

let create_named ctx name (config : Gc_config.t) =
  match Gc_config.kind_of_string name with
  | None -> None
  | Some kind -> Some (create ctx { config with Gc_config.kind })
