(** Shared collector context.

    Everything a collector needs from its environment: the machine cost
    model, the virtual clock to charge pauses to, the event log, the
    telemetry registry, and a view of the mutator (thread count for
    safepoint costs, root-set iteration for tracing).  The runtime
    builds one of these and hands it to the collector constructor. *)

exception Out_of_memory of string
(** Raised when a full collection cannot make enough room. *)

type t = {
  machine : Gcperf_machine.Machine.t;
  clock : Gcperf_sim.Clock.t;
  events : Gcperf_sim.Gc_event.t;
  telemetry : Gcperf_telemetry.Telemetry.t;
      (** span/histogram/metrics sink; observation only — recording
          never perturbs the clock, the PRNGs or the heap model *)
  mutable mutator_threads : int;
  mutable iter_roots : (int -> unit) -> unit;
      (** iterate over all root object ids (thread stacks + globals);
          installed by the runtime *)
  mutable trace_domains : int;
      (** worker domains for intra-collection tracing, passed by the
          collectors to {!Gcperf_heap.Obj_store.finish_trace}; 1 (the
          default) is fully sequential.  Snapshotted from
          {!Gcperf_heap.Obj_store.default_trace_domains} at creation.
          Parallel tracing is byte-identical to sequential at any value
          (see the determinism contract in [Obj_store]). *)
  mutable policy : Gcperf_policy.Policy.t option;
      (** ergonomics policy fed one observation per pause by
          {!record_pause}; [None] (the default) is the fixed-size
          configuration and is byte-identical to builds without the
          policy subsystem *)
  mutable survivor_overflow : bool;
      (** set by the collection algorithms when an object was promoted
          early because the survivor space could not hold it; consumed
          (and cleared) by the next policy observation *)
  mutable last_pause_end_us : float;
      (** end of the previous observed pause, for the mutator-interval
          signal; only maintained while a policy is attached *)
  mutable young_capacity : unit -> int;
      (** current young-generation capacity; installed by the collector *)
  mutable heap_capacity : unit -> int;
      (** total committed heap; installed by the collector *)
  scratch_obs : Gcperf_policy.Policy.observation;
      (** observation record reused by {!record_pause} for every pause;
          policies copy what they keep during [observe] *)
}

val create :
  ?telemetry:Gcperf_telemetry.Telemetry.t ->
  Gcperf_machine.Machine.t ->
  Gcperf_sim.Clock.t ->
  Gcperf_sim.Gc_event.t ->
  t
(** Fresh context with no threads and an empty root iterator.
    [telemetry] defaults to a fresh registry honouring
    {!Gcperf_telemetry.Telemetry.default_enabled}. *)

val stw_begin_us : t -> float
(** Cost of bringing all mutator threads to the safepoint. *)

val record_pause :
  ?sub:(unit -> (Gcperf_telemetry.Span.phase * float) list) ->
  t ->
  collector:string ->
  kind:Gcperf_sim.Gc_event.pause_kind ->
  reason:string ->
  phases:(unit -> (Gcperf_telemetry.Span.phase * float) list) ->
  duration_us:float ->
  young_before:int ->
  young_after:int ->
  old_before:int ->
  old_after:int ->
  promoted:int ->
  unit
(** Advances the clock across the pause, appends the event and — when
    telemetry is enabled — records the equivalent {!Gcperf_telemetry.Span.t}
    with the per-phase breakdown.  [phases] is a thunk producing the
    per-phase breakdown summing to [duration_us]; it is forced only when
    a span is recorded, keeping the telemetry-off path allocation-free.
    Pass [(fun () -> [])] when the caller has none.  [sub] optionally
    produces plan/move sub-attributions of relocation phases (see
    {!Gcperf_telemetry.Span.t.sub}); it never contributes to the
    duration. *)
