(** Collector selection and VM memory configuration.

    Mirrors the JVM flags the paper varies: [-XX:+Use...GC], [-Xmx]/[-Xms]
    (fixed-size heap), [-Xmn] (young generation size), TLAB on/off, and the
    collector-specific tunables that matter for the study (CMS initiating
    occupancy, G1 pause target and IHOP). *)

type kind =
  | Serial
  | ParNew
  | Parallel
  | ParallelOld
  | Cms
  | G1
  | Concurrent_regions
      (** ZGC/Shenandoah-style region collector: concurrent mark with an
          SATB write-barrier tax, concurrent relocation behind
          self-healing load barriers, sub-ms flip safepoints *)
  | Journal_rc
      (** mo-gc-style journaled reference counting: mutators append RC
          deltas to journals, a concurrent thread folds them into the
          object map *)

val all_kinds : kind list
(** The paper's six JDK8 collectors, in Table 1 order.  The pauseless
    family is deliberately excluded so the frozen six-collector grids
    (and their goldens) are unchanged; use {!extended_kinds} to iterate
    everything. *)

val concurrent_kinds : kind list
(** The pauseless family: [Concurrent_regions; Journal_rc]. *)

val extended_kinds : kind list
(** [all_kinds @ concurrent_kinds]. *)

val kind_to_string : kind -> string
(** JVM-style names: "SerialGC", "ParNewGC", ..., "G1GC",
    "ConcurrentRegionsGC", "JournalRCGC". *)

val kind_of_string : string -> kind option
(** Accepts both JVM-style ("ConcMarkSweepGC") and short ("cms") names,
    case-insensitively, plus pauseless aliases ("zgc", "shenandoah" for
    the region collector; "mo-gc", "rc" for journaled RC). *)

val kind_names : string list
(** Every spelling {!kind_of_string}'s canonical forms accept (JVM-style
    and short), for "did you mean" suggestions. *)

type t = {
  kind : kind;
  heap_bytes : int;  (** fixed heap size (-Xms = -Xmx, as in the study) *)
  young_bytes : int;  (** young generation size (-Xmn) *)
  tlab : bool;
  tlab_bytes : int;  (** per-thread TLAB size *)
  survivor_ratio : int;
  tenuring_threshold : int;
  cms_initiating_occupancy : float;
      (** old-gen occupancy fraction that starts a CMS cycle *)
  g1_ihop : float;  (** heap occupancy fraction that starts G1 marking *)
  g1_pause_target_ms : float;
  g1_region_target : int;  (** desired number of regions *)
  g1_parallel_full : bool;
      (** ablation switch: run G1's full collection on the parallel
          workers instead of JDK8's single thread (JDK10's behaviour);
          default false, i.e. faithful to the paper's JVM *)
  adaptive : bool;
      (** [-XX:+UseAdaptiveSizePolicy]: attach the ergonomics policy that
          resizes the young generation at safepoints.  Default false —
          the study disables it, and fixed-size runs are byte-identical
          with or without the policy subsystem built in. *)
  pause_goal_ms : float;
      (** [-XX:MaxGCPauseMillis] for the adaptive policy (and G1) *)
  gc_time_ratio : int;
      (** [-XX:GCTimeRatio]: the throughput goal tolerates a GC cost of
          [1 / (1 + ratio)] *)
  journal_alloc_overhead : float;
      (** Journal_rc only: fractional mutator slowdown for journaling RC
          entries at allocation/store sites.  Default 0.25 — the ~25%
          allocation overhead mo-gc measured. *)
  journal_fold_jobs : int;
      (** Journal_rc only: simulated worker count for the concurrent
          journal fold ([--journal-fold-jobs]).  1 reproduces mo-gc's
          single-threaded map-insertion bottleneck; higher values relieve
          it via the machine's parallel speedup curve.  This knob scales
          simulated fold {e time} only — the fold {e result} is
          byte-identical at any value (and at any host [--gc-jobs]). *)
}

val default : kind -> heap_bytes:int -> young_bytes:int -> t
(** JDK8-like defaults for everything else (TLAB on, 256 KB TLABs,
    SurvivorRatio 8, MaxTenuringThreshold 6, CMS occupancy 0.70,
    G1 IHOP 0.45, 200 ms pause target). *)

val gb : int -> int
val mb : int -> int

val baseline : kind -> t
(** The study's baseline: ~16 GB heap, ~5.6 GB young generation, TLAB
    enabled. *)

val validate : t -> (t, string) result
(** Rejects configurations that would only fail deep inside the simulator
    (young >= heap, survivor ratio < 1, non-positive TLAB, out-of-range
    thresholds and fractions) with an actionable message naming the JVM
    flag to fix.  The CLI funnels every user-supplied configuration
    through this. *)

val pp : Format.formatter -> t -> unit
