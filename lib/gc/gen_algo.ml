module Vec = Gcperf_util.Int_vec
module Machine = Gcperf_machine.Machine
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store
module Gh = Gcperf_heap.Gen_heap
module Span = Gcperf_telemetry.Span

type young_params = {
  workers : int;
  promote_rate : float;
  usable_old_free : unit -> int;
}

type young_outcome = {
  promoted_bytes : int;
  survivor_bytes : int;
  freed_bytes : int;
}

exception Promotion_failure

(* Trace the young reachable set: roots are the mutator roots plus the
   children of remembered-set old objects.  Only young objects are
   traversed; anything old is treated as live (standard generational
   conservatism).  Marks are epoch stamps (no clearing pass) and the
   returned vector is the heap's scratch mark list, valid until the next
   trace. *)
let trace_young ctx (heap : Gh.t) =
  let store = heap.Gh.store in
  let marked = heap.Gh.mark_list and stack = heap.Gh.trace_stack in
  Vec.clear marked;
  Vec.clear stack;
  Os.begin_trace store;
  let card_bytes = ref 0 in
  let push id =
    if Os.is_young store id && not (Os.is_marked store id) then begin
      Os.mark store id;
      Vec.push marked id;
      Vec.push stack id
    end
  in
  ctx.Gc_ctx.iter_roots push;
  Gh.iter_dirty heap (fun p ->
      card_bytes := !card_bytes + Os.size store p;
      Os.iter_refs store p push);
  Os.finish_trace store ~pred:Os.Trace_young ~marked ~stack
    ~domains:ctx.Gc_ctx.trace_domains;
  (marked, !card_bytes)

let collect_young ctx (heap : Gh.t) ~params ~collector ~reason =
  let store = heap.Gh.store in
  let young_before = Gh.young_used heap and old_before = heap.Gh.old_used in
  let marked, card_bytes = trace_young ctx heap in
  (* Adaptive tenuring (HotSpot's TargetSurvivorRatio): pick the largest
     threshold such that the survivors younger than it fit in half the
     survivor space.  This smooths promotion instead of letting several
     generations of survivors pile up and promote in one huge burst. *)
  let max_age = heap.Gh.tenuring_threshold in
  if Array.length heap.Gh.age_bytes <= max_age then
    heap.Gh.age_bytes <- Array.make (max_age + 1) 0
  else Array.fill heap.Gh.age_bytes 0 (Array.length heap.Gh.age_bytes) 0;
  let bytes_by_age = heap.Gh.age_bytes in
  (* Indexed loops over the mark list (here and in the placement and plan
     passes): one indirect call per survivor per pass adds up on
     collection-heavy runs. *)
  let n_marked = Vec.length marked in
  for i = 0 to n_marked - 1 do
    let id = Vec.unsafe_get marked i in
    let age = min max_age (Os.age store id + 1) in
    bytes_by_age.(age) <- bytes_by_age.(age) + Os.size store id
  done;
  let target = heap.Gh.survivor_cap / 2 in
  let effective_threshold =
    let rec scan age acc =
      if age > max_age then max_age
      else begin
        let acc = acc + bytes_by_age.(age) in
        if acc > target then age else scan (age + 1) acc
      end
    in
    max 1 (min max_age (scan 1 0))
  in
  (* Placement: survivors young enough (and fitting the to-space) stay in
     the survivor space; the rest is promoted.  HotSpot promotes on both
     tenuring age and survivor-space overflow. *)
  let to_survivor = ref 0 and to_promote = ref 0 in
  let promote = heap.Gh.promote_scratch and keep = heap.Gh.keep_scratch in
  Vec.clear promote;
  Vec.clear keep;
  for i = 0 to n_marked - 1 do
    let id = Vec.unsafe_get marked i in
    let size = Os.size store id in
    let new_age = Os.age store id + 1 in
    if
      new_age >= effective_threshold
      || !to_survivor + size > heap.Gh.survivor_cap
    then begin
      (* Promoted before reaching the threshold: the survivor space
         could not hold it.  The ergonomics policy reads this as
         survivor pressure. *)
      if new_age < effective_threshold then
        ctx.Gc_ctx.survivor_overflow <- true;
      to_promote := !to_promote + size;
      Vec.push promote id
    end
    else begin
      to_survivor := !to_survivor + size;
      Vec.push keep id
    end
  done;
  if !to_promote > params.usable_old_free () then raise Promotion_failure;
  (* Plan the relocation: destinations were decided above in trace order,
     so record them (and the registry/accounting side effects, which are
     inherently ordered) sequentially; the column writes themselves are
     the move phase, applied by the kernel — slab-parallel when enough
     objects moved, byte-identical either way.  The promoted and dead
     sets are disjoint (marked vs unmarked), so moving before the sweep
     frees the same objects in the same [young_ids] order as sweeping
     first would — and the sweep doubles as the young registry
     compaction: one pass frees the unmarked, drops the promoted (now
     old) and keeps the survivors. *)
  Os.plan_clear store;
  let n_promote = Vec.length promote in
  for i = 0 to n_promote - 1 do
    let id = Vec.unsafe_get promote i in
    Os.plan_push_old store id ~age:(Os.age store id + 1);
    heap.Gh.old_used <- heap.Gh.old_used + Os.size store id;
    Vec.push heap.Gh.old_ids id
  done;
  let n_keep = Vec.length keep in
  for i = 0 to n_keep - 1 do
    let id = Vec.unsafe_get keep i in
    Os.plan_push_survivor store id ~age:(Os.age store id + 1)
  done;
  let moved = Os.finish_relocate store ~domains:ctx.Gc_ctx.trace_domains in
  let freed = Os.sweep_young_registry store heap.Gh.young_ids in
  heap.Gh.eden_used <- 0;
  heap.Gh.survivor_used <- !to_survivor;
  heap.Gh.promoted_bytes <- heap.Gh.promoted_bytes + !to_promote;
  Gh.compact_old_ids heap;
  (* Remembered-set maintenance: previously-dirty old objects stay dirty
     only if they still reference young data; freshly promoted objects may
     now be old-with-young-refs.  Nothing else can have changed. *)
  Gh.refresh_cards heap ~extra:promote;
  (* Charge the pause.  Phase costs are summed explicitly in the exact
     left-to-right order the phase-list fold used to add them, so the
     total stays bit-identical; the named breakdown itself is built only
     when telemetry records a span. *)
  let m = ctx.Gc_ctx.machine in
  let safepoint_us = Gc_ctx.stw_begin_us ctx in
  let root_scan_us =
    Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads
  in
  let fixed_us = m.Machine.cost.Machine.gc_fixed_us in
  let card_scan_us =
    Machine.phase_us m ~rate:m.Machine.cost.Machine.card_scan_rate
      ~workers:params.workers ~bytes:card_bytes
  in
  let copy_us =
    Machine.phase_us m ~rate:m.Machine.cost.Machine.copy_rate
      ~workers:params.workers ~bytes:!to_survivor
  in
  let promote_us =
    let promote_rate =
      (* Promotion degrades as the old generation grows: allocation
         lands in cold, NUMA-remote memory and every promoted object
         updates card metadata spread over the whole old space. *)
      params.promote_rate
      /. Float.min 2.5
           (1.0
           +. (float_of_int old_before /. m.Machine.cost.Machine.locality_bytes)
           )
    in
    Machine.phase_us m ~rate:promote_rate ~workers:params.workers
      ~bytes:!to_promote
  in
  let duration =
    0.0 +. safepoint_us +. root_scan_us +. fixed_us +. card_scan_us
    +. copy_us +. promote_us
  in
  let phases () =
    [
      (Span.Safepoint, safepoint_us);
      (Span.Root_scan, root_scan_us);
      (Span.Fixed, fixed_us);
      (Span.Card_scan, card_scan_us);
      (Span.Copy, copy_us);
      (Span.Promote, promote_us);
    ]
  in
  let sub () =
    if moved = 0 then []
    else begin
      (* Plan/move attribution of the relocation phases (copy+promote):
         the plan pass is one sequential walk over the survivor set, an
         eighth of the relocation charge in this cost model; the slab
         move carries the rest.  Informational only — the split never
         feeds the duration (see DESIGN.md §14). *)
      let reloc = copy_us +. promote_us in
      let plan = reloc /. 8.0 in
      [ (Span.Plan, plan); (Span.Move, reloc -. plan) ]
    end
  in
  Gc_ctx.record_pause ctx ~collector ~kind:Gc_event.Young ~reason ~phases ~sub
    ~duration_us:duration ~young_before ~young_after:(Gh.young_used heap)
    ~old_before ~old_after:heap.Gh.old_used ~promoted:!to_promote;
  {
    promoted_bytes = !to_promote;
    survivor_bytes = !to_survivor;
    freed_bytes = freed;
  }

type full_outcome = {
  live_bytes : int;
  full_freed_bytes : int;
  duration_us : float;
}

(* Full trace over both generations.  Returns the heap's scratch mark
   list, valid until the next trace. *)
let trace_all ctx (heap : Gh.t) =
  let store = heap.Gh.store in
  let marked = heap.Gh.mark_list and stack = heap.Gh.trace_stack in
  Vec.clear marked;
  Vec.clear stack;
  Os.begin_trace store;
  let push id =
    if (not (Os.is_nowhere store id)) && not (Os.is_marked store id) then begin
      Os.mark store id;
      Vec.push marked id;
      Vec.push stack id
    end
  in
  ctx.Gc_ctx.iter_roots push;
  Os.finish_trace store ~pred:Os.Trace_live ~marked ~stack
    ~domains:ctx.Gc_ctx.trace_domains;
  marked

let collect_full ctx (heap : Gh.t) ~workers ~collector ~reason =
  let store = heap.Gh.store in
  let young_before = Gh.young_used heap and old_before = heap.Gh.old_used in
  let marked = trace_all ctx heap in
  (* Direct indexed loops over the mark list here and below: these passes
     run inside every pause, and an indirect closure call per marked
     object is measurable on collection-bound workloads. *)
  let n_marked = Vec.length marked in
  let live_young = ref 0 and live_old = ref 0 in
  for i = 0 to n_marked - 1 do
    let id = Vec.unsafe_get marked i in
    if Os.is_young store id then live_young := !live_young + Os.size store id
    else live_old := !live_old + Os.size store id
  done;
  let live = !live_young + !live_old in
  if live > heap.Gh.heap_bytes then
    raise
      (Gc_ctx.Out_of_memory
         (Printf.sprintf "%s: live data (%d) exceeds heap (%d)" collector live
            heap.Gh.heap_bytes));
  (* Sweep: free everything unmarked, in both generations. *)
  let freed = ref (Os.sweep_dead store heap.Gh.young_ids) in
  freed := !freed + Os.sweep_dead store heap.Gh.old_ids;
  (* Compact: evacuate live young objects into the old generation while it
     has room; overflow stays in eden (to be dealt with by the next minor
     collection).  Survivor space empties.  Placement decisions (fit
     checks, registry pushes) run sequentially in trace order; the column
     writes are deferred to the relocation kernel. *)
  let promoted = ref 0 in
  let eden_left = ref 0 in
  let old_used = ref !live_old in
  Os.plan_clear store;
  for i = 0 to n_marked - 1 do
    let id = Vec.unsafe_get marked i in
    if Os.is_young store id then begin
      let size = Os.size store id in
      if !old_used + size <= heap.Gh.old_cap then begin
        Os.plan_push_old store id ~age:(Os.age store id);
        old_used := !old_used + size;
        promoted := !promoted + size;
        Vec.push heap.Gh.old_ids id
      end
      else begin
        Os.plan_push_eden store id ~age:(Os.age store id);
        eden_left := !eden_left + size
      end
    end
  done;
  let moved = Os.finish_relocate store ~domains:ctx.Gc_ctx.trace_domains in
  heap.Gh.eden_used <- !eden_left;
  heap.Gh.survivor_used <- 0;
  heap.Gh.old_used <- !old_used;
  heap.Gh.promoted_bytes <- heap.Gh.promoted_bytes + !promoted;
  (* Deaths leave stale registry entries and promotions leave young_ids
     entries now pointing at old objects; when neither happened the
     registries are already exact and the filter passes can be skipped
     (the common System.gc-on-an-idle-heap case). *)
  if !freed > 0 || !promoted > 0 then Gh.compact_registries heap;
  (* A full collection reshapes the whole old generation, so the
     remembered set is re-derived from the old registry (a post-pass over
     data the collection already walked, unlike the per-write cost the
     incremental young-collection refresh avoids). *)
  Gh.rebuild_cards heap;
  let m = ctx.Gc_ctx.machine in
  let safepoint_us = Gc_ctx.stw_begin_us ctx in
  let root_scan_us =
    Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads
  in
  let fixed_us = m.Machine.cost.Machine.gc_fixed_us in
  let mark_us =
    Machine.phase_us m ~rate:m.Machine.cost.Machine.mark_rate ~workers
      ~bytes:live
  in
  let sweep_us =
    Machine.phase_us m ~rate:m.Machine.cost.Machine.sweep_rate ~workers
      ~bytes:!freed
  in
  (* Sliding compaction touches the whole occupied old space, dead data
     included: this is why a full collection of a nearly full 64 GB heap
     takes minutes even with live data far smaller. *)
  let compact_us =
    Machine.phase_us m ~rate:m.Machine.cost.Machine.compact_rate ~workers
      ~bytes:(max old_before (!live_old + !promoted))
  in
  let duration =
    0.0 +. safepoint_us +. root_scan_us +. fixed_us +. mark_us +. sweep_us
    +. compact_us
  in
  let phases () =
    [
      (Span.Safepoint, safepoint_us);
      (Span.Root_scan, root_scan_us);
      (Span.Fixed, fixed_us);
      (Span.Mark, mark_us);
      (Span.Sweep, sweep_us);
      (Span.Compact, compact_us);
    ]
  in
  let sub () =
    if moved = 0 then []
    else begin
      let plan = compact_us /. 8.0 in
      [ (Span.Plan, plan); (Span.Move, compact_us -. plan) ]
    end
  in
  Gc_ctx.record_pause ctx ~collector ~kind:Gc_event.Full ~reason ~phases ~sub
    ~duration_us:duration ~young_before ~young_after:(Gh.young_used heap)
    ~old_before ~old_after:heap.Gh.old_used ~promoted:!promoted;
  { live_bytes = live; full_freed_bytes = !freed; duration_us = duration }
