module Vec = Gcperf_util.Vec
module Machine = Gcperf_machine.Machine
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store
module Gh = Gcperf_heap.Gen_heap

type young_params = {
  workers : int;
  promote_rate : float;
  usable_old_free : unit -> int;
}

type young_outcome = {
  promoted_bytes : int;
  survivor_bytes : int;
  freed_bytes : int;
}

exception Promotion_failure

(* Trace the young reachable set: roots are the mutator roots plus the
   children of dirty-card old objects.  Only young objects are traversed;
   anything old is treated as live (standard generational conservatism). *)
let trace_young ctx (heap : Gh.t) =
  let store = heap.Gh.store in
  let marked = Vec.create () in
  let stack = Vec.create () in
  let card_bytes = ref 0 in
  let push id =
    if Os.is_live store id then begin
      let o = Os.get store id in
      if Gh.is_young o.Os.loc && not o.Os.marked then begin
        o.Os.marked <- true;
        Vec.push marked id;
        Vec.push stack id
      end
    end
  in
  ctx.Gc_ctx.iter_roots push;
  Hashtbl.iter
    (fun pid () ->
      if Os.is_live store pid then begin
        let p = Os.get store pid in
        if not (Gh.is_young p.Os.loc) then begin
          card_bytes := !card_bytes + p.Os.size;
          Vec.iter push p.Os.refs
        end
      end)
    heap.Gh.dirty_cards;
  while not (Vec.is_empty stack) do
    let id = Vec.pop stack in
    let o = Os.get store id in
    Vec.iter push o.Os.refs
  done;
  (marked, !card_bytes)

let clear_marks store marked =
  Vec.iter
    (fun id -> if Os.is_live store id then (Os.get store id).Os.marked <- false)
    marked

(* An old object needs a dirty card iff one of its references targets a
   young object. *)
let has_young_ref store (o : Os.obj) =
  Vec.exists
    (fun r -> Os.is_live store r && Gh.is_young (Os.get store r).Os.loc)
    o.Os.refs

let rebuild_cards (heap : Gh.t) =
  let store = heap.Gh.store in
  Hashtbl.reset heap.Gh.dirty_cards;
  Vec.iter
    (fun id ->
      if Os.is_live store id then begin
        let o = Os.get store id in
        if o.Os.loc = Os.Old && has_young_ref store o then
          Hashtbl.replace heap.Gh.dirty_cards id ()
      end)
    heap.Gh.old_ids

let collect_young ctx (heap : Gh.t) ~params ~collector ~reason =
  let store = heap.Gh.store in
  let young_before = Gh.young_used heap and old_before = heap.Gh.old_used in
  let marked, card_bytes = trace_young ctx heap in
  (* Adaptive tenuring (HotSpot's TargetSurvivorRatio): pick the largest
     threshold such that the survivors younger than it fit in half the
     survivor space.  This smooths promotion instead of letting several
     generations of survivors pile up and promote in one huge burst. *)
  let max_age = heap.Gh.tenuring_threshold in
  let bytes_by_age = Array.make (max_age + 1) 0 in
  Vec.iter
    (fun id ->
      let o = Os.get store id in
      let age = min max_age (o.Os.age + 1) in
      bytes_by_age.(age) <- bytes_by_age.(age) + o.Os.size)
    marked;
  let target = heap.Gh.survivor_cap / 2 in
  let effective_threshold =
    let rec scan age acc =
      if age > max_age then max_age
      else begin
        let acc = acc + bytes_by_age.(age) in
        if acc > target then age else scan (age + 1) acc
      end
    in
    max 1 (min max_age (scan 1 0))
  in
  (* Placement: survivors young enough (and fitting the to-space) stay in
     the survivor space; the rest is promoted.  HotSpot promotes on both
     tenuring age and survivor-space overflow. *)
  let to_survivor = ref 0 and to_promote = ref 0 in
  let promote = Vec.create () and keep = Vec.create () in
  Vec.iter
    (fun id ->
      let o = Os.get store id in
      let new_age = o.Os.age + 1 in
      if
        new_age >= effective_threshold
        || !to_survivor + o.Os.size > heap.Gh.survivor_cap
      then begin
        to_promote := !to_promote + o.Os.size;
        Vec.push promote id
      end
      else begin
        to_survivor := !to_survivor + o.Os.size;
        Vec.push keep id
      end)
    marked;
  if !to_promote > params.usable_old_free () then begin
    clear_marks store marked;
    raise Promotion_failure
  end;
  (* Apply: move survivors, free the dead. *)
  let freed = ref 0 in
  Vec.iter
    (fun id ->
      if Os.is_live store id then begin
        let o = Os.get store id in
        if Gh.is_young o.Os.loc && not o.Os.marked then begin
          freed := !freed + o.Os.size;
          Os.free store id
        end
      end)
    heap.Gh.young_ids;
  Vec.iter
    (fun id ->
      let o = Os.get store id in
      o.Os.age <- o.Os.age + 1;
      o.Os.loc <- Os.Old;
      heap.Gh.old_used <- heap.Gh.old_used + o.Os.size;
      Vec.push heap.Gh.old_ids id)
    promote;
  Vec.iter
    (fun id ->
      let o = Os.get store id in
      o.Os.age <- o.Os.age + 1;
      o.Os.loc <- Os.Survivor)
    keep;
  heap.Gh.eden_used <- 0;
  heap.Gh.survivor_used <- !to_survivor;
  heap.Gh.promoted_bytes <- heap.Gh.promoted_bytes + !to_promote;
  Gh.compact_registries heap;
  (* Card maintenance: previously-dirty old objects stay dirty only if
     they still reference young data; freshly promoted objects may now be
     old-with-young-refs. *)
  let recheck = Vec.create () in
  Hashtbl.iter (fun pid () -> Vec.push recheck pid) heap.Gh.dirty_cards;
  Hashtbl.reset heap.Gh.dirty_cards;
  let maybe_dirty id =
    if Os.is_live store id then begin
      let o = Os.get store id in
      if o.Os.loc = Os.Old && has_young_ref store o then
        Hashtbl.replace heap.Gh.dirty_cards id ()
    end
  in
  Vec.iter maybe_dirty recheck;
  Vec.iter maybe_dirty promote;
  clear_marks store marked;
  (* Charge the pause. *)
  let m = ctx.Gc_ctx.machine in
  let duration =
    Gc_ctx.stw_begin_us ctx
    +. Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads
    +. m.Machine.cost.Machine.gc_fixed_us
    +. Machine.phase_us m ~rate:m.Machine.cost.Machine.card_scan_rate
         ~workers:params.workers ~bytes:card_bytes
    +. Machine.phase_us m ~rate:m.Machine.cost.Machine.copy_rate
         ~workers:params.workers ~bytes:!to_survivor
    +. (let promote_rate =
          (* Promotion degrades as the old generation grows: allocation
             lands in cold, NUMA-remote memory and every promoted object
             updates card metadata spread over the whole old space. *)
          params.promote_rate
          /. Float.min 2.5
               (1.0
               +. (float_of_int old_before
                  /. m.Machine.cost.Machine.locality_bytes))
        in
        Machine.phase_us m ~rate:promote_rate ~workers:params.workers
          ~bytes:!to_promote)
  in
  Gc_ctx.record_pause ctx ~collector ~kind:Gc_event.Young ~reason
    ~duration_us:duration ~young_before ~young_after:(Gh.young_used heap)
    ~old_before ~old_after:heap.Gh.old_used ~promoted:!to_promote;
  {
    promoted_bytes = !to_promote;
    survivor_bytes = !to_survivor;
    freed_bytes = !freed;
  }

type full_outcome = {
  live_bytes : int;
  full_freed_bytes : int;
  duration_us : float;
}

(* Full trace over both generations. *)
let trace_all ctx (heap : Gh.t) =
  let store = heap.Gh.store in
  let marked = Vec.create () in
  let stack = Vec.create () in
  let push id =
    if Os.is_live store id then begin
      let o = Os.get store id in
      if not o.Os.marked then begin
        o.Os.marked <- true;
        Vec.push marked id;
        Vec.push stack id
      end
    end
  in
  ctx.Gc_ctx.iter_roots push;
  while not (Vec.is_empty stack) do
    let id = Vec.pop stack in
    Vec.iter push (Os.get store id).Os.refs
  done;
  marked

let collect_full ctx (heap : Gh.t) ~workers ~collector ~reason =
  let store = heap.Gh.store in
  let young_before = Gh.young_used heap and old_before = heap.Gh.old_used in
  let marked = trace_all ctx heap in
  let live_young = ref 0 and live_old = ref 0 in
  Vec.iter
    (fun id ->
      let o = Os.get store id in
      if Gh.is_young o.Os.loc then live_young := !live_young + o.Os.size
      else live_old := !live_old + o.Os.size)
    marked;
  let live = !live_young + !live_old in
  if live > heap.Gh.heap_bytes then begin
    clear_marks store marked;
    raise
      (Gc_ctx.Out_of_memory
         (Printf.sprintf "%s: live data (%d) exceeds heap (%d)" collector live
            heap.Gh.heap_bytes))
  end;
  (* Sweep: free everything unmarked, in both generations. *)
  let freed = ref 0 in
  let sweep_vec v =
    Vec.iter
      (fun id ->
        if Os.is_live store id then begin
          let o = Os.get store id in
          if not o.Os.marked then begin
            freed := !freed + o.Os.size;
            Os.free store id
          end
        end)
      v
  in
  sweep_vec heap.Gh.young_ids;
  sweep_vec heap.Gh.old_ids;
  (* Compact: evacuate live young objects into the old generation while it
     has room; overflow stays in eden (to be dealt with by the next minor
     collection).  Survivor space empties. *)
  let promoted = ref 0 in
  let eden_left = ref 0 in
  let old_used = ref !live_old in
  Vec.iter
    (fun id ->
      if Os.is_live store id then begin
        let o = Os.get store id in
        if Gh.is_young o.Os.loc then begin
          if !old_used + o.Os.size <= heap.Gh.old_cap then begin
            o.Os.loc <- Os.Old;
            old_used := !old_used + o.Os.size;
            promoted := !promoted + o.Os.size;
            Vec.push heap.Gh.old_ids id
          end
          else begin
            o.Os.loc <- Os.Eden;
            eden_left := !eden_left + o.Os.size
          end
        end
      end)
    marked;
  heap.Gh.eden_used <- !eden_left;
  heap.Gh.survivor_used <- 0;
  heap.Gh.old_used <- !old_used;
  heap.Gh.promoted_bytes <- heap.Gh.promoted_bytes + !promoted;
  Gh.compact_registries heap;
  rebuild_cards heap;
  clear_marks store marked;
  let m = ctx.Gc_ctx.machine in
  let duration =
    Gc_ctx.stw_begin_us ctx
    +. Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads
    +. m.Machine.cost.Machine.gc_fixed_us
    +. Machine.phase_us m ~rate:m.Machine.cost.Machine.mark_rate ~workers
         ~bytes:live
    +. Machine.phase_us m ~rate:m.Machine.cost.Machine.sweep_rate ~workers
         ~bytes:!freed
    (* Sliding compaction touches the whole occupied old space, dead
       data included: this is why a full collection of a nearly full
       64 GB heap takes minutes even with live data far smaller. *)
    +. Machine.phase_us m ~rate:m.Machine.cost.Machine.compact_rate ~workers
         ~bytes:(max old_before (!live_old + !promoted))
  in
  Gc_ctx.record_pause ctx ~collector ~kind:Gc_event.Full ~reason
    ~duration_us:duration ~young_before ~young_after:(Gh.young_used heap)
    ~old_before ~old_after:heap.Gh.old_used ~promoted:!promoted;
  { live_bytes = live; full_freed_bytes = !freed; duration_us = duration }
