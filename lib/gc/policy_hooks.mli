(** Per-collector ergonomics plumbing.

    The collectors report signals through {!Gc_ctx.record_pause}; these
    helpers cover the other half of the loop — installing capacity
    getters on the context and building the [apply_policy] closure that
    consumes pending decisions at safepoints.  All of them are no-ops
    (a single [None] branch) when no policy is attached. *)

val install_gen_capacity : Gc_ctx.t -> Gcperf_heap.Gen_heap.t -> unit

val gen_heap_hook :
  Gc_ctx.t -> Gcperf_heap.Gen_heap.t -> collector:string -> unit -> unit
(** [apply_policy] for generational collectors: resizes the young
    generation / survivor split via {!Gcperf_heap.Gen_heap.resize_young}
    (which re-clamps against occupancy), updates the tenuring threshold,
    reports the applied values back to the policy, and records a
    zero-duration "resize" telemetry span when the boundary moved. *)

val install_region_capacity : Gc_ctx.t -> Gcperf_heap.Region_heap.t -> unit

val region_heap_hook :
  Gc_ctx.t ->
  Gcperf_heap.Region_heap.t ->
  collector:string ->
  tenuring:int ref ->
  unit ->
  unit
(** [apply_policy] for G1: maps decisions onto the young target
    ([region_target] wins over [young_bytes] when both are present) via
    {!Gcperf_heap.Region_heap.set_young_target}, and updates the
    collector's tenuring threshold reference. *)
