exception Out_of_memory of string

type t = {
  machine : Gcperf_machine.Machine.t;
  clock : Gcperf_sim.Clock.t;
  events : Gcperf_sim.Gc_event.t;
  mutable mutator_threads : int;
  mutable iter_roots : (int -> unit) -> unit;
}

let create machine clock events =
  { machine; clock; events; mutator_threads = 1; iter_roots = (fun _ -> ()) }

let stw_begin_us t =
  Gcperf_machine.Machine.time_to_safepoint t.machine
    ~mutator_threads:t.mutator_threads

let record_pause t ~collector ~kind ~reason ~duration_us ~young_before
    ~young_after ~old_before ~old_after ~promoted =
  let start_us = Gcperf_sim.Clock.now_us t.clock in
  Gcperf_sim.Clock.advance_us t.clock duration_us;
  Gcperf_sim.Gc_event.record t.events
    {
      start_us;
      duration_us;
      kind;
      collector;
      reason;
      young_before;
      young_after;
      old_before;
      old_after;
      promoted;
    }
