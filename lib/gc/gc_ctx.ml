module Telemetry = Gcperf_telemetry.Telemetry
module Span = Gcperf_telemetry.Span

exception Out_of_memory of string

type t = {
  machine : Gcperf_machine.Machine.t;
  clock : Gcperf_sim.Clock.t;
  events : Gcperf_sim.Gc_event.t;
  telemetry : Telemetry.t;
  mutable mutator_threads : int;
  mutable iter_roots : (int -> unit) -> unit;
}

let create ?telemetry machine clock events =
  let telemetry =
    match telemetry with Some t -> t | None -> Telemetry.create ()
  in
  {
    machine;
    clock;
    events;
    telemetry;
    mutator_threads = 1;
    iter_roots = (fun _ -> ());
  }

let stw_begin_us t =
  Gcperf_machine.Machine.time_to_safepoint t.machine
    ~mutator_threads:t.mutator_threads

let record_pause t ~collector ~kind ~reason ~phases ~duration_us
    ~young_before ~young_after ~old_before ~old_after ~promoted =
  let start_us = Gcperf_sim.Clock.now_us t.clock in
  Gcperf_sim.Clock.advance_us t.clock duration_us;
  Gcperf_sim.Gc_event.record t.events
    {
      start_us;
      duration_us;
      kind;
      collector;
      reason;
      young_before;
      young_after;
      old_before;
      old_after;
      promoted;
    };
  if Telemetry.enabled t.telemetry then begin
    Telemetry.record_span t.telemetry
      {
        Span.collector;
        kind = Gcperf_sim.Gc_event.pause_kind_to_string kind;
        cause = reason;
        start_us;
        duration_us;
        phases;
        young_before;
        young_after;
        old_before;
        old_after;
        promoted;
      };
    Telemetry.incr t.telemetry "gc.pauses" 1.0;
    Telemetry.incr t.telemetry "gc.pause_us_total" duration_us;
    Telemetry.incr t.telemetry "gc.promoted_bytes_total"
      (float_of_int promoted)
  end
