module Telemetry = Gcperf_telemetry.Telemetry
module Span = Gcperf_telemetry.Span
module Policy = Gcperf_policy.Policy

exception Out_of_memory of string

type t = {
  machine : Gcperf_machine.Machine.t;
  clock : Gcperf_sim.Clock.t;
  events : Gcperf_sim.Gc_event.t;
  telemetry : Telemetry.t;
  mutable mutator_threads : int;
  mutable iter_roots : (int -> unit) -> unit;
  mutable trace_domains : int;
      (* worker domains for intra-collection tracing; 1 = sequential.
         Snapshotted from the process-global default at creation. *)
  mutable policy : Policy.t option;
  mutable survivor_overflow : bool;
  mutable last_pause_end_us : float;
  mutable young_capacity : unit -> int;
  mutable heap_capacity : unit -> int;
  scratch_obs : Policy.observation;
      (* reused per pause; policies copy what they keep during observe *)
}

let create ?telemetry machine clock events =
  let telemetry =
    match telemetry with Some t -> t | None -> Telemetry.create ()
  in
  {
    machine;
    clock;
    events;
    telemetry;
    mutator_threads = 1;
    iter_roots = (fun _ -> ());
    trace_domains = Gcperf_heap.Obj_store.default_trace_domains ();
    policy = None;
    survivor_overflow = false;
    last_pause_end_us = 0.0;
    young_capacity = (fun () -> 0);
    heap_capacity = (fun () -> 0);
    scratch_obs = Policy.scratch_observation ();
  }

let stw_begin_us t =
  Gcperf_machine.Machine.time_to_safepoint t.machine
    ~mutator_threads:t.mutator_threads

(* [phases] (and the optional [sub] plan/move attribution) are thunks:
   the phase breakdown exists for telemetry spans only, so the per-pause
   list and its boxed floats are built exclusively when a span is
   actually recorded — the telemetry-off hot path pays one closure
   construction and no list. *)
let record_pause ?sub t ~collector ~kind ~reason ~phases ~duration_us
    ~young_before ~young_after ~old_before ~old_after ~promoted =
  let start_us = Gcperf_sim.Clock.now_us t.clock in
  Gcperf_sim.Clock.advance_us t.clock duration_us;
  Gcperf_sim.Gc_event.record t.events ~start_us ~duration_us ~kind ~collector
    ~reason ~young_before ~young_after ~old_before ~old_after ~promoted;
  if Telemetry.enabled t.telemetry then begin
    Telemetry.record_span t.telemetry
      {
        Span.collector;
        kind = Gcperf_sim.Gc_event.pause_kind_to_string kind;
        cause = reason;
        start_us;
        duration_us;
        phases = phases ();
        sub = (match sub with None -> [] | Some f -> f ());
        young_before;
        young_after;
        old_before;
        old_after;
        promoted;
      };
    Telemetry.incr t.telemetry "gc.pauses" 1.0;
    Telemetry.incr t.telemetry "gc.pause_us_total" duration_us;
    Telemetry.incr t.telemetry "gc.promoted_bytes_total"
      (float_of_int promoted)
  end;
  (* Ergonomics hook: every stop-the-world pause, from all six collectors,
     funnels through here, so one observation call covers them all.  With
     no policy attached this is a single branch — the fixed-size paths
     stay byte-identical. *)
  match t.policy with
  | None -> ()
  | Some p ->
      let pause_class =
        match kind with
        | Gcperf_sim.Gc_event.Young | Gcperf_sim.Gc_event.Mixed ->
            Policy.Minor
        | Gcperf_sim.Gc_event.Full -> Policy.Major
        | Gcperf_sim.Gc_event.Initial_mark | Gcperf_sim.Gc_event.Remark
        | Gcperf_sim.Gc_event.Cleanup ->
            Policy.Concurrent
      in
      let interval_ms =
        Float.max 0.0 ((start_us -. t.last_pause_end_us) /. 1000.0)
      in
      let obs = t.scratch_obs in
      obs.Policy.pause_class <- pause_class;
      obs.Policy.pause_ms <- duration_us /. 1000.0;
      obs.Policy.interval_ms <- interval_ms;
      obs.Policy.promoted_bytes <- promoted;
      obs.Policy.survived_bytes <- young_after;
      obs.Policy.survivor_overflow <- t.survivor_overflow;
      obs.Policy.young_capacity <- t.young_capacity ();
      obs.Policy.heap_used <- young_after + old_after;
      obs.Policy.heap_capacity <- t.heap_capacity ();
      p.Policy.observe obs;
      t.survivor_overflow <- false;
      t.last_pause_end_us <- Gcperf_sim.Clock.now_us t.clock
