module Vec = Gcperf_util.Int_vec
module Machine = Gcperf_machine.Machine
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store
module Gh = Gcperf_heap.Gen_heap
module Span = Gcperf_telemetry.Span

type phase =
  | Idle
  | Marking of { mutable remaining_bytes : float }
  | Sweeping of {
      total_bytes : float;  (* sweep work fixed at remark time *)
      mutable remaining_bytes : float;
      victims : Vec.t;  (* old ids condemned at remark *)
      mutable cursor : int;  (* victims already freed *)
      mutable garbage_bytes : int;
    }

type state = {
  mutable phase : phase;
  mutable fragmentation : float;  (* fraction of old free space unusable *)
  mutable cycles_started : int;
  mutable concurrent_mode_failures : int;
}

(* Registry to expose internals to tests without widening Collector.t. *)
let registry : (string, state) Hashtbl.t = Hashtbl.create 4

type debug = {
  cycles_started : int;
  concurrent_mode_failures : int;
  fragmentation : float;
}

let debug_stats (c : Collector.t) =
  let s = Hashtbl.find registry c.Collector.name in
  {
    cycles_started = s.cycles_started;
    concurrent_mode_failures = s.concurrent_mode_failures;
    fragmentation = s.fragmentation;
  }

let name = "ConcMarkSweepGC"

let create ctx (config : Gc_config.t) =
  let m = ctx.Gc_ctx.machine in
  let cost = m.Machine.cost in
  let store = Os.create () in
  let heap =
    Gh.create store ~heap_bytes:config.Gc_config.heap_bytes
      ~young_bytes:config.Gc_config.young_bytes
      ~survivor_ratio:config.Gc_config.survivor_ratio
      ~tenuring_threshold:config.Gc_config.tenuring_threshold ()
  in
  let st =
    {
      phase = Idle;
      fragmentation = 0.0;
      cycles_started = 0;
      concurrent_mode_failures = 0;
    }
  in
  Hashtbl.replace registry name st;
  let usable_old_free () =
    let free = Gh.old_free heap in
    int_of_float (float_of_int free *. (1.0 -. st.fragmentation))
  in
  let params =
    {
      Gen_algo.workers = m.Machine.gc_threads;
      promote_rate = cost.Machine.promote_freelist_rate;
      usable_old_free;
    }
  in
  (* The CMS fallback full collection is single threaded: this is what
     turns a concurrent mode failure into a multi-second (or, on a 64 GB
     heap, multi-minute) pause. *)
  let full reason =
    ignore (Gen_algo.collect_full ctx heap ~workers:1 ~collector:name ~reason);
    st.fragmentation <- 0.0;
    st.phase <- Idle
  in
  let concurrent_mode_failure () =
    st.concurrent_mode_failures <- st.concurrent_mode_failures + 1;
    full "concurrent mode failure"
  in
  let initial_mark () =
    st.cycles_started <- st.cycles_started + 1;
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        (Span.Fixed, cost.Machine.gc_fixed_us);
        ( Span.Card_scan,
          Machine.phase_us m ~rate:cost.Machine.card_scan_rate
            ~workers:m.Machine.gc_threads ~bytes:(Gh.young_used heap) );
      ]
    in
    let duration = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 phases in
    let young = Gh.young_used heap and old = heap.Gh.old_used in
    Gc_ctx.record_pause ctx ~collector:name ~kind:Gc_event.Initial_mark
      ~reason:"occupancy threshold"
      ~phases:(fun () -> phases)
      ~duration_us:duration
      ~young_before:young ~young_after:young ~old_before:old ~old_after:old
      ~promoted:0;
    st.phase <- Marking { remaining_bytes = float_of_int heap.Gh.old_used }
  in
  let victims_scratch = Vec.create () in
  let remark () =
    (* The real trace happens here: live objects get marked, and every old
       object left unmarked is condemned for the concurrent sweep.  The
       victims vector is reused across cycles (only one sweep runs at a
       time), and mark stamps go stale on their own at the next trace. *)
    ignore (Gen_algo.trace_all ctx heap);
    let victims = victims_scratch in
    Vec.clear victims;
    let garbage = ref 0 in
    Vec.iter
      (fun id ->
        if Os.is_old store id && not (Os.is_marked store id) then begin
          Vec.push victims id;
          garbage := !garbage + Os.size store id
        end)
      heap.Gh.old_ids;
    let card_bytes = Gh.dirty_live_bytes heap in
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        (Span.Fixed, cost.Machine.gc_fixed_us);
        ( Span.Card_scan,
          Machine.phase_us m ~rate:cost.Machine.card_scan_rate
            ~workers:m.Machine.gc_threads
            ~bytes:(card_bytes + Gh.young_used heap) );
        (* Residual marking of objects dirtied during the concurrent phase:
           a slice of the old generation must be retraced at the safepoint. *)
        ( Span.Mark,
          Machine.phase_us m ~rate:cost.Machine.mark_rate
            ~workers:m.Machine.gc_threads
            ~bytes:(heap.Gh.old_used / 12) );
      ]
    in
    let duration = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 phases in
    let young = Gh.young_used heap and old = heap.Gh.old_used in
    Gc_ctx.record_pause ctx ~collector:name ~kind:Gc_event.Remark
      ~reason:"concurrent cycle"
      ~phases:(fun () -> phases)
      ~duration_us:duration
      ~young_before:young ~young_after:young ~old_before:old ~old_after:old
      ~promoted:0;
    st.phase <-
      Sweeping
        {
          total_bytes = float_of_int (max 1 heap.Gh.old_used);
          remaining_bytes = float_of_int heap.Gh.old_used;
          victims;
          cursor = 0;
          garbage_bytes = !garbage;
        }
  in
  let finish_sweep (victims : Vec.t) cursor garbage_bytes =
    (* Free whatever the incremental sweep has not yet released. *)
    for i = cursor to Vec.length victims - 1 do
      let id = Vec.get victims i in
      if Os.is_old store id then begin
        heap.Gh.old_used <- heap.Gh.old_used - Os.size store id;
        Os.free store id
      end
    done;
    Gh.compact_registries heap;
    (* Sweeping into free lists leaves holes: a slice of the reclaimed
       space is unusable until a compacting full collection. *)
    let garbage_ratio =
      float_of_int garbage_bytes /. float_of_int (max 1 heap.Gh.old_cap)
    in
    st.fragmentation <-
      Float.min 0.45 (st.fragmentation +. 0.02 +. (0.06 *. garbage_ratio));
    st.phase <- Idle
  in
  let maybe_start_cycle () =
    match st.phase with
    | Idle ->
        let occupancy =
          float_of_int heap.Gh.old_used /. float_of_int (max 1 heap.Gh.old_cap)
        in
        if occupancy > config.Gc_config.cms_initiating_occupancy then
          initial_mark ()
    | Marking _ | Sweeping _ -> ()
  in
  let minor reason =
    (match Gen_algo.collect_young ctx heap ~params ~collector:name ~reason with
    | _outcome -> ()
    | exception Gen_algo.Promotion_failure -> concurrent_mode_failure ());
    maybe_start_cycle ()
  in
  let alloc ~size =
    (* [eden_cap] is read per allocation: the adaptive sizing policy can
       move it between safepoints. *)
    if size > heap.Gh.eden_cap then begin
      match Gh.alloc_old_direct heap ~size with
      | Some id ->
          maybe_start_cycle ();
          id
      | None -> (
          concurrent_mode_failure ();
          match Gh.alloc_old_direct heap ~size with
          | Some id -> id
          | None ->
              raise
                (Gc_ctx.Out_of_memory
                   (Printf.sprintf "%s: cannot fit %d-byte object" name size)))
    end
    else begin
      let id = Gh.alloc_eden_id heap ~size in
      if id >= 0 then id
      else begin
        minor "allocation failure";
        match Gh.alloc_eden heap ~size with
        | Some id -> id
        | None -> (
            full "allocation failure";
            match Gh.alloc_eden heap ~size with
            | Some id -> id
            | None ->
                raise
                  (Gc_ctx.Out_of_memory
                     (Printf.sprintf "%s: heap exhausted allocating %d bytes"
                        name size)))
      end
    end
  in
  let tick ~dt_us =
    match st.phase with
    | Idle -> ()
    | Marking mk ->
        let rate =
          cost.Machine.mark_rate
          *. Machine.parallel_speedup m m.Machine.conc_gc_threads
        in
        mk.remaining_bytes <- mk.remaining_bytes -. (rate *. dt_us);
        if mk.remaining_bytes <= 0.0 then remark ()
    | Sweeping sw ->
        let rate =
          cost.Machine.sweep_rate
          *. Machine.parallel_speedup m m.Machine.conc_gc_threads
        in
        sw.remaining_bytes <- sw.remaining_bytes -. (rate *. dt_us);
        (* Release condemned objects in proportion to sweep progress so
           promotions can reuse the space while the sweep runs. *)
        let total = Vec.length sw.victims in
        let progress = 1.0 -. (sw.remaining_bytes /. sw.total_bytes) in
        let target =
          int_of_float (Float.max 0.0 (progress *. float_of_int total))
        in
        let target = min target total in
        while sw.cursor < target do
          let id = Vec.get sw.victims sw.cursor in
          if Os.is_old store id then begin
            heap.Gh.old_used <- heap.Gh.old_used - Os.size store id;
            Os.free store id
          end;
          sw.cursor <- sw.cursor + 1
        done;
        if sw.remaining_bytes <= 0.0 then
          finish_sweep sw.victims sw.cursor sw.garbage_bytes
  in
  let mutator_factor () =
    match st.phase with
    | Idle -> 1.0
    | Marking _ | Sweeping _ ->
        let cores = float_of_int (Machine.cores m) in
        let stolen = float_of_int m.Machine.conc_gc_threads in
        cores /. Float.max 1.0 (cores -. stolen)
  in
  (* CMS taxes the mutator only by stealing cores: no read/write barrier
     cost beyond the card marks already folded into the pause model. *)
  let mutator_tax () = (1.0, mutator_factor ()) in
  let alloc_old ~size =
    match Gh.alloc_old_direct heap ~size with
    | Some id ->
        maybe_start_cycle ();
        id
    | None -> (
        concurrent_mode_failure ();
        match Gh.alloc_old_direct heap ~size with
        | Some id -> id
        | None ->
            raise
              (Gc_ctx.Out_of_memory
                 (Printf.sprintf "%s: old generation exhausted (%d bytes)" name
                    size)))
  in
  Policy_hooks.install_gen_capacity ctx heap;
  {
    Collector.name;
    kind = Gc_config.Cms;
    alloc;
    alloc_old;
    system_gc = (fun () -> full "system.gc");
    tick;
    mutator_factor;
    mutator_tax;
    write_ref = (fun ~parent ~child -> Gh.record_store heap ~parent ~child);
    remove_ref = (fun ~parent ~child -> Gh.remove_store heap ~parent ~child);
    heap_used = (fun () -> Gh.heap_used heap);
    heap_capacity = (fun () -> heap.Gh.heap_bytes);
    young_used = (fun () -> Gh.young_used heap);
    old_used = (fun () -> heap.Gh.old_used);
    apply_policy = Policy_hooks.gen_heap_hook ctx heap ~collector:name;
    store;
    check_invariants = (fun () -> Gh.check_invariants heap);
  }
