(** The four fully stop-the-world collectors.

    Per Table 1 of the paper:

    - {b Serial}: serial copying young collection, serial mark-compact
      full collection, no synchronisation anywhere;
    - {b ParNew}: parallel copying young collection, serial mark-compact
      full collection; its young collector is the one designed to pair
      with CMS, so promotions go through a free-list old generation;
    - {b Parallel}: parallel copying young collection (throughput
      collector), serial mark-compact full collection;
    - {b ParallelOld}: parallel young {e and} parallel mark-compact full
      collection — the JDK8 default the study uses as baseline.

    All four share {!Gen_algo}; they differ only in worker counts and
    promotion path. *)

val create : Gc_ctx.t -> Gc_config.t -> Collector.t
(** @raise Invalid_argument if the config's kind is CMS or G1. *)
