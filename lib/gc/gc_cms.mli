(** ConcurrentMarkSweep.

    Young collections are ParNew's parallel copying collections (with
    free-list promotion).  The old generation is collected by a mostly
    concurrent cycle:

    + {e initial mark} — short stop-the-world pause;
    + {e concurrent mark} — runs as virtual time passes, stealing the
      concurrent GC threads from the mutator;
    + {e remark} — stop-the-world pause that performs the real trace
      (cost driven by dirty cards and young-generation occupancy);
    + {e concurrent sweep} — reclaims the garbage identified at remark
      incrementally, into free lists; the old generation is never
      compacted, so a fragmentation factor grows with every sweep.

    When a promotion or large allocation cannot be satisfied while a
    cycle is running — or fragmentation eats the nominally free space —
    CMS suffers a {e concurrent mode failure} and falls back to a
    {b single-threaded} full mark-compact, the multi-second pause the
    paper observes on the saturated server. *)

val create : Gc_ctx.t -> Gc_config.t -> Collector.t

type debug = {
  cycles_started : int;
  concurrent_mode_failures : int;
  fragmentation : float;
}

val debug_stats : Collector.t -> debug
(** Introspection for tests and ablation benches; only valid on a
    collector created by this module.  @raise Not_found otherwise. *)
