type t = {
  name : string;
  kind : Gc_config.kind;
  alloc : size:int -> int;
  alloc_old : size:int -> int;
  system_gc : unit -> unit;
  tick : dt_us:float -> unit;
  mutator_factor : unit -> float;
  mutator_tax : unit -> float * float;
  write_ref : parent:int -> child:int -> unit;
  remove_ref : parent:int -> child:int -> unit;
  heap_used : unit -> int;
  heap_capacity : unit -> int;
  young_used : unit -> int;
  old_used : unit -> int;
  apply_policy : unit -> unit;
  store : Gcperf_heap.Obj_store.t;
  check_invariants : unit -> (unit, string) result;
}
