module Vec = Gcperf_util.Int_vec
module Machine = Gcperf_machine.Machine
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store
module Rh = Gcperf_heap.Region_heap
module Span = Gcperf_telemetry.Span

type phase = Idle | Marking of { mutable remaining_bytes : float }

type state = {
  mutable phase : phase;
  mutable marking_allowed : bool;
      (* one concurrent cycle per young collection: prevents back-to-back
         cycles when occupancy stays above the threshold *)
  mutable mixed_candidates : int list;  (* region indices, most garbage first *)
  mutable eden_bytes : int;  (* bytes allocated young since last collection *)
  mutable young_collections : int;
  mutable mixed_collections : int;
  mutable marking_cycles : int;
  mutable evacuation_failures : int;
}

let registry : (string, state * Rh.t) Hashtbl.t = Hashtbl.create 4

type debug = {
  young_collections : int;
  mixed_collections : int;
  marking_cycles : int;
  evacuation_failures : int;
  young_target_regions : int;
}

let debug_stats (c : Collector.t) =
  let st, rheap = Hashtbl.find registry c.Collector.name in
  {
    young_collections = st.young_collections;
    mixed_collections = st.mixed_collections;
    marking_cycles = st.marking_cycles;
    evacuation_failures = st.evacuation_failures;
    young_target_regions = rheap.Rh.young_target_bytes / rheap.Rh.region_size;
  }

let name = "G1GC"

(* Per-region constant work in an evacuation pause (choosing the
   collection set, swapping region roles, updating free lists). *)
let region_fixed_us = 120.0

let create ctx (config : Gc_config.t) =
  let m = ctx.Gc_ctx.machine in
  let cost = m.Machine.cost in
  let store = Os.create () in
  let rheap =
    Rh.create store ~heap_bytes:config.Gc_config.heap_bytes
      ~target_regions:config.Gc_config.g1_region_target ()
  in
  rheap.Rh.young_target_bytes <-
    max rheap.Rh.region_size config.Gc_config.young_bytes;
  (* Mutable so the adaptive sizing policy can promote earlier/later. *)
  let tenuring = ref config.Gc_config.tenuring_threshold in
  let st =
    {
      phase = Idle;
      marking_allowed = true;
      mixed_candidates = [];
      eden_bytes = 0;
      young_collections = 0;
      mixed_collections = 0;
      marking_cycles = 0;
      evacuation_failures = 0;
    }
  in
  Hashtbl.replace registry name (st, rheap);
  let old_hum_used () = Rh.used_old_hum rheap in
  let young_used () = Rh.used_young rheap in
  (* Per-collection scratch, hoisted so steady-state evacuation pauses
     allocate nothing in the host runtime.  Contents are only valid within
     one collection; trace_all and trace_collection_set use disjoint mark
     scratch because an evacuation failure runs a full trace while the
     collection-set trace results are still in scope. *)
  let g_marked = Vec.create () and g_stack = Vec.create () in
  let cs_marked = Vec.create () and cs_stack = Vec.create () in
  let ext_src = Vec.create () and ext_child = Vec.create () in
  let stale_scratch = Vec.create () in
  let surv_scratch = Vec.create () and prom_scratch = Vec.create () in
  let cset_scratch = Vec.create () in
  let collected_scratch = ref [||] in
  (* Global trace over the region heap; returns marked ids (scratch, valid
     until the next trace).  Marks are epoch stamps: no clearing pass. *)
  let trace_all () =
    let marked = g_marked and stack = g_stack in
    Vec.clear marked;
    Vec.clear stack;
    Os.begin_trace store;
    let push id =
      if (not (Os.is_nowhere store id)) && not (Os.is_marked store id)
      then begin
        Os.mark store id;
        Vec.push marked id;
        Vec.push stack id
      end
    in
    ctx.Gc_ctx.iter_roots push;
    Os.finish_trace store ~pred:Os.Trace_live ~marked ~stack
      ~domains:ctx.Gc_ctx.trace_domains;
    marked
  in
  (* Partial trace of the collection set: roots plus remembered sets.
     Dead or irrelevant remset entries are pruned as they are scanned,
     which is exactly the work a G1 evacuation pause pays for.  External
     (source, child) pairs land in the parallel ext_src/ext_child scratch
     vectors. *)
  let trace_collection_set collected =
    let marked = cs_marked and stack = cs_stack in
    Vec.clear marked;
    Vec.clear stack;
    Vec.clear ext_src;
    Vec.clear ext_child;
    Os.begin_trace store;
    let remset_bytes = ref 0 in
    let push id =
      let r = Os.region_index store id in
      if r >= 0 && collected.(r) && not (Os.is_marked store id) then begin
        Os.mark store id;
        Vec.push marked id;
        Vec.push stack id
      end
    in
    ctx.Gc_ctx.iter_roots push;
    Array.iter
      (fun r ->
        if collected.(r.Rh.idx) then begin
          let stale = stale_scratch in
          Vec.clear stale;
          Hashtbl.iter
            (fun src () ->
              let sr = Os.region_index store src in
              if sr < 0 then Vec.push stale src
              else if collected.(sr) then
                (* The source is itself being collected: if it is
                   live the trace reaches it; if dead, its references
                   die with it.  Either way the entry is obsolete. *)
                Vec.push stale src
              else begin
                remset_bytes := !remset_bytes + Os.size store src;
                let relevant = ref false in
                Os.iter_refs store src (fun child ->
                    if Os.in_region store child r.Rh.idx then begin
                      relevant := true;
                      Vec.push ext_src src;
                      Vec.push ext_child child;
                      push child
                    end);
                if not !relevant then Vec.push stale src
              end)
            r.Rh.remset;
          Vec.iter (fun s -> Hashtbl.remove r.Rh.remset s) stale
        end)
      rheap.Rh.regions;
    Os.finish_trace store
      ~pred:(Os.Trace_regions collected)
      ~marked ~stack ~domains:ctx.Gc_ctx.trace_domains;
    (marked, !remset_bytes)
  in
  let record ?sub ~kind ~reason ~phases ~duration ~young_before ~old_before
      ~promoted () =
    Gc_ctx.record_pause ?sub ctx ~collector:name ~kind ~reason ~phases
      ~duration_us:duration ~young_before ~young_after:(young_used ())
      ~old_before ~old_after:(old_hum_used ()) ~promoted
  in
  let maybe_start_marking () =
    match st.phase with
    | Marking _ -> ()
    | Idle ->
        let occ = float_of_int (old_hum_used ()) in
        if
          st.marking_allowed
          && occ > config.Gc_config.g1_ihop *. float_of_int rheap.Rh.heap_bytes
        then begin
          st.marking_allowed <- false;
          st.marking_cycles <- st.marking_cycles + 1;
          let phases =
            [
              (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
              ( Span.Root_scan,
                Machine.root_scan_us m
                  ~mutator_threads:ctx.Gc_ctx.mutator_threads );
              (Span.Fixed, cost.Machine.gc_fixed_us);
            ]
          in
          let duration =
            List.fold_left (fun acc (_, us) -> acc +. us) 0.0 phases
          in
          let y = young_used () and o = old_hum_used () in
          record ~kind:Gc_event.Initial_mark ~reason:"IHOP crossed"
            ~phases:(fun () -> phases)
            ~duration ~young_before:y ~old_before:o ~promoted:0 ();
          st.phase <-
            Marking { remaining_bytes = float_of_int (old_hum_used ()) }
        end
  in
  let full_gc reason =
    (* JDK8 G1 full collections are single-threaded mark-compact; the
       parallel variant (JDK10+) is available as an ablation switch. *)
    let full_workers =
      if config.Gc_config.g1_parallel_full then m.Machine.gc_threads else 1
    in
    let young_before = young_used () and old_before = old_hum_used () in
    let marked = trace_all () in
    let live = Vec.fold (fun a id -> a + Os.size store id) 0 marked in
    if live > rheap.Rh.heap_bytes then
      raise
        (Gc_ctx.Out_of_memory
           (Printf.sprintf "G1: live data (%d) exceeds heap (%d)" live
              rheap.Rh.heap_bytes));
    (* Collect the live movable objects; free everything else. *)
    let movable = Vec.create () in
    let freed = ref 0 in
    let dead_humongous = ref [] in
    Array.iter
      (fun r ->
        Rh.compact_region_objects rheap r;
        match r.Rh.kind with
        | Rh.Humongous ->
            if r.Rh.hum_len > 0 then
              Vec.iter
                (fun id ->
                  if not (Os.is_marked store id) then
                    dead_humongous := id :: !dead_humongous)
                r.Rh.objects
        | Rh.Eden | Rh.Survivor | Rh.Old_region ->
            Vec.iter
              (fun id ->
                if Os.is_marked store id then Vec.push movable id
                else begin
                  let size = Os.size store id in
                  freed := !freed + size;
                  r.Rh.used <- r.Rh.used - size;
                  Os.free store id
                end)
              r.Rh.objects
        | Rh.Free -> ())
      rheap.Rh.regions;
    List.iter
      (fun id ->
        freed := !freed + Os.size store id;
        Rh.release_humongous rheap id)
      !dead_humongous;
    (* Slide the movable objects into freshly packed old regions.  Epoch
       mark stamps go stale at the next trace on their own. *)
    Array.iter
      (fun r ->
        match r.Rh.kind with
        | Rh.Eden | Rh.Survivor | Rh.Old_region -> Rh.retire_region rheap r
        | Rh.Humongous | Rh.Free -> ())
      rheap.Rh.regions;
    let target = ref None in
    let moved_bytes = ref 0 in
    Os.plan_clear store;
    Vec.iter
      (fun id ->
        let size = Os.size store id in
        moved_bytes := !moved_bytes + size;
        let rec place () =
          match !target with
          | Some r when r.Rh.used + size <= rheap.Rh.region_size ->
              (* Everything that survives a full collection is old data;
                 the column writes are deferred to the relocation
                 kernel, the packing decisions stay sequential. *)
              Os.plan_push_region store id ~region:r.Rh.idx
                ~age:(max (Os.age store id) !tenuring);
              r.Rh.used <- r.Rh.used + size;
              Vec.push r.Rh.objects id
          | _ -> (
              match Rh.take_free_region rheap Rh.Old_region with
              | Some r ->
                  target := Some r;
                  place ()
              | None ->
                  raise
                    (Gc_ctx.Out_of_memory
                       "G1: no free region during full-GC compaction"))
        in
        place ())
      movable;
    let moved_objects = Os.finish_relocate store ~domains:ctx.Gc_ctx.trace_domains in
    (* Rebuild remembered sets exactly: cross-region references only. *)
    Os.iter_live store (fun id ->
        let rp = Os.region_index store id in
        if rp >= 0 then
          Os.iter_refs store id (fun child ->
              let rc = Os.region_index store child in
              if rc >= 0 && rp <> rc then
                Hashtbl.replace rheap.Rh.regions.(rc).Rh.remset id ()));
    st.eden_bytes <- 0;
    st.mixed_candidates <- [];
    st.phase <- Idle;
    let phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        (Span.Fixed, cost.Machine.gc_fixed_us);
        ( Span.Mark,
          Machine.phase_us m ~rate:cost.Machine.mark_rate ~workers:full_workers
            ~bytes:live );
        ( Span.Sweep,
          Machine.phase_us m ~rate:cost.Machine.sweep_rate
            ~workers:full_workers ~bytes:!freed );
        (* Region bookkeeping makes G1's serial compaction slower per byte
           than the generational collectors' sliding compaction. *)
        (* Sliding compaction touches the occupied old/humongous space,
           dead data included; evacuated young costs are in [moved]. *)
        ( Span.Compact,
          1.3
          *. Machine.phase_us m ~rate:cost.Machine.compact_rate
               ~workers:full_workers
               ~bytes:(max old_before !moved_bytes) );
      ]
    in
    let duration = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 phases in
    let sub () =
      if moved_objects = 0 then []
      else begin
        let compact_us =
          match List.assoc_opt Span.Compact phases with
          | Some us -> us
          | None -> 0.0
        in
        let plan = compact_us /. 8.0 in
        [ (Span.Plan, plan); (Span.Move, compact_us -. plan) ]
      end
    in
    record ~sub ~kind:Gc_event.Full ~reason
      ~phases:(fun () -> phases)
      ~duration ~young_before ~old_before ~promoted:0 ()
  in
  let remark_and_cleanup () =
    ignore (trace_all ());
    (* Liveness accounting per region. *)
    Array.iter
      (fun r ->
        match r.Rh.kind with
        | Rh.Old_region | Rh.Humongous ->
            Rh.compact_region_objects rheap r;
            let live = ref 0 in
            Vec.iter
              (fun id ->
                if Os.is_marked store id then live := !live + Os.size store id)
              r.Rh.objects;
            r.Rh.live_bytes <- !live
        | Rh.Eden | Rh.Survivor | Rh.Free -> ())
      rheap.Rh.regions;
    let y = young_used () and o = old_hum_used () in
    let remark_phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        ( Span.Root_scan,
          Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads );
        (Span.Fixed, cost.Machine.gc_fixed_us);
        ( Span.Mark,
          Machine.phase_us m ~rate:cost.Machine.mark_rate
            ~workers:m.Machine.gc_threads
            ~bytes:(old_hum_used () / 12) );
      ]
    in
    let remark_duration =
      List.fold_left (fun acc (_, us) -> acc +. us) 0.0 remark_phases
    in
    record ~kind:Gc_event.Remark ~reason:"concurrent cycle"
      ~phases:(fun () -> remark_phases)
      ~duration:remark_duration ~young_before:y ~old_before:o ~promoted:0 ();
    (* Cleanup: instantly reclaim fully dead regions, pick mixed
       candidates garbage-first. *)
    let released = ref 0 in
    let dead_humongous = ref [] in
    Array.iter
      (fun r ->
        match r.Rh.kind with
        | Rh.Old_region when r.Rh.live_bytes = 0 && r.Rh.used > 0 ->
            Rh.release_region rheap r;
            incr released
        | Rh.Humongous when r.Rh.hum_len > 0 ->
            Vec.iter
              (fun id ->
                if not (Os.is_marked store id) then
                  dead_humongous := id :: !dead_humongous)
              r.Rh.objects
        | Rh.Old_region | Rh.Humongous | Rh.Eden | Rh.Survivor | Rh.Free -> ())
      rheap.Rh.regions;
    List.iter (fun id -> Rh.release_humongous rheap id) !dead_humongous;
    let candidates =
      Array.to_list rheap.Rh.regions
      |> List.filter (fun r ->
             (match r.Rh.kind with Rh.Old_region -> true | _ -> false)
             && r.Rh.used > 0
             && float_of_int r.Rh.live_bytes
                < 0.95 *. float_of_int r.Rh.used)
      |> List.sort (fun a b ->
             compare
               (float_of_int a.Rh.live_bytes /. float_of_int (max 1 a.Rh.used))
               (float_of_int b.Rh.live_bytes /. float_of_int (max 1 b.Rh.used)))
      |> List.map (fun r -> r.Rh.idx)
    in
    (* Cap the mixed backlog like HotSpot (G1MixedGCCountTarget spreads
       candidates over ~8 mixed collections, old regions per mixed capped). *)
    st.mixed_candidates <- candidates;
    let y = young_used () and o = old_hum_used () in
    let cleanup_phases =
      [
        (Span.Safepoint, Gc_ctx.stw_begin_us ctx);
        (Span.Fixed, cost.Machine.gc_fixed_us);
        ( Span.Region_overhead,
          region_fixed_us *. float_of_int (max 1 !released) );
      ]
    in
    let cleanup_duration =
      List.fold_left (fun acc (_, us) -> acc +. us) 0.0 cleanup_phases
    in
    record ~kind:Gc_event.Cleanup ~reason:"concurrent cycle"
      ~phases:(fun () -> cleanup_phases)
      ~duration:cleanup_duration ~young_before:y ~old_before:o ~promoted:0 ();
    st.phase <- Idle
  in
  let rec young_gc reason =
    let mixed_now =
      match st.mixed_candidates with
      | [] -> []
      | l ->
          (* HotSpot spreads candidates over several mixed collections and
             bounds the old regions added to a single collection set. *)
          let cap = max 1 (Array.length rheap.Rh.regions / 16) in
          let n = min cap (max 1 (List.length l / 4)) in
          List.filteri (fun i _ -> i < n) l
    in
    if Array.length !collected_scratch <> Array.length rheap.Rh.regions then
      collected_scratch := Array.make (Array.length rheap.Rh.regions) false
    else Array.fill !collected_scratch 0 (Array.length !collected_scratch) false;
    let collected = !collected_scratch in
    let cset = cset_scratch in
    Vec.clear cset;
    Array.iter
      (fun r ->
        if (match r.Rh.kind with Rh.Eden | Rh.Survivor -> true | _ -> false)
        then begin
          collected.(r.Rh.idx) <- true;
          Vec.push cset r.Rh.idx
        end)
      rheap.Rh.regions;
    List.iter
      (fun idx ->
        if
          match rheap.Rh.regions.(idx).Rh.kind with
          | Rh.Old_region -> true
          | _ -> false
        then begin
          collected.(idx) <- true;
          Vec.push cset idx
        end)
      mixed_now;
    let young_before = young_used () and old_before = old_hum_used () in
    let marked, remset_bytes = trace_collection_set collected in
    (* Plan placement: survivors young enough go to survivor regions, the
       rest to old regions.  First-fit bump packing tells us exactly how
       many free regions we need before we touch anything. *)
    let surv = surv_scratch and prom = prom_scratch in
    Vec.clear surv;
    Vec.clear prom;
    let surv_bytes = ref 0 and prom_bytes = ref 0 in
    (* Survivor overflow: G1 sizes survivor space as a slice of the young
       target; anything beyond it is promoted rather than failing the
       evacuation. *)
    let survivor_budget =
      max rheap.Rh.region_size (rheap.Rh.young_target_bytes / 8)
    in
    Vec.iter
      (fun id ->
        let size = Os.size store id in
        let age = Os.age store id in
        if age + 1 >= !tenuring || !surv_bytes + size > survivor_budget
        then begin
          (* Promoted before reaching the threshold: survivor budget
             overflow, the ergonomics policy's survivor-pressure signal. *)
          if age + 1 < !tenuring then ctx.Gc_ctx.survivor_overflow <- true;
          Vec.push prom id;
          prom_bytes := !prom_bytes + size
        end
        else begin
          Vec.push surv id;
          surv_bytes := !surv_bytes + size
        end)
      marked;
    let regions_for v =
      (* bump packing: count regions needed for the exact object sizes *)
      let count = ref 0 and used = ref rheap.Rh.region_size in
      Vec.iter
        (fun id ->
          let s = Os.size store id in
          if !used + s > rheap.Rh.region_size then begin
            incr count;
            used := 0
          end;
          used := !used + s)
        v;
      !count
    in
    let needed = regions_for surv + regions_for prom in
    if needed > Rh.free_regions rheap then begin
      st.evacuation_failures <- st.evacuation_failures + 1;
      full_gc "evacuation failure"
    end
    else begin
      (* Evacuate.  Phase A (plan): first-fit bump packing walks the
         survivor and promotion sets in trace order, keeping the
         region-accounting side effects sequential and recording each
         object's destination region and age.  Every source region is
         read before any location column is written, so deferring the
         writes to the kernel observes exactly the same state the
         in-place loop did. *)
      let plan_all v kind age_bump =
        let target = ref None in
        Vec.iter
          (fun id ->
            let size = Os.size store id in
            let src = Rh.region_of rheap id in
            let rec place () =
              match !target with
              | Some r when r.Rh.used + size <= rheap.Rh.region_size ->
                  src.Rh.used <- src.Rh.used - size;
                  Os.plan_push_region store id ~region:r.Rh.idx
                    ~age:(Os.age store id + age_bump);
                  r.Rh.used <- r.Rh.used + size;
                  Vec.push r.Rh.objects id
              | _ -> (
                  match Rh.take_free_region rheap kind with
                  | Some r ->
                      target := Some r;
                      place ()
                  | None -> assert false (* pre-counted above *))
            in
            place ())
          v
      in
      Os.plan_clear store;
      plan_all surv Rh.Survivor 1;
      plan_all prom Rh.Old_region 1;
      (* Phase B (move): apply the evacuation, slab-parallel when the
         collection set moved enough objects. *)
      let moved_objects =
        Os.finish_relocate store ~domains:ctx.Gc_ctx.trace_domains
      in
      (* Remembered-set maintenance, kept precise: (a) every external
         source that pointed at a moved object is re-recorded against the
         object's new region (the pairs were captured during the remset
         scan); (b) every moved object is re-recorded as a source for the
         regions its own references point into. *)
      for i = 0 to Vec.length ext_src - 1 do
        let src = Vec.get ext_src i and child = Vec.get ext_child i in
        let rs = Os.region_index store src
        and rc = Os.region_index store child in
        if rs >= 0 && rc >= 0 && rs <> rc then
          Hashtbl.replace rheap.Rh.regions.(rc).Rh.remset src ()
      done;
      let update_moved id =
        let ro = Os.region_index store id in
        if ro >= 0 then
          Os.iter_refs store id (fun child ->
              let rc = Os.region_index store child in
              if rc >= 0 && rc <> ro then
                Hashtbl.replace rheap.Rh.regions.(rc).Rh.remset id ())
      in
      Vec.iter update_moved surv;
      Vec.iter update_moved prom;
      (* Release the collection set (frees the unreached objects), newest
         entry first — the order the previous cons-list gave, kept so free
         slot recycling (hence object ids) stays byte-identical. *)
      for i = Vec.length cset - 1 downto 0 do
        Rh.release_region rheap rheap.Rh.regions.(Vec.get cset i)
      done;
      st.eden_bytes <- 0;
      rheap.Rh.promoted_bytes <- rheap.Rh.promoted_bytes + !prom_bytes;
      let mixed = mixed_now <> [] in
      if mixed then begin
        st.mixed_collections <- st.mixed_collections + 1;
        st.mixed_candidates <-
          List.filter (fun i -> not (List.mem i mixed_now)) st.mixed_candidates
      end
      else st.young_collections <- st.young_collections + 1;
      let workers = m.Machine.gc_threads in
      let safepoint_us = Gc_ctx.stw_begin_us ctx in
      let root_scan_us =
        Machine.root_scan_us m ~mutator_threads:ctx.Gc_ctx.mutator_threads
      in
      let fixed_us = cost.Machine.gc_fixed_us in
      let region_us =
        region_fixed_us
        *. float_of_int (Vec.length cset)
        /. Machine.parallel_speedup m workers
      in
      let card_scan_us =
        Machine.phase_us m ~rate:cost.Machine.card_scan_rate ~workers
          ~bytes:remset_bytes
      in
      let copy_us =
        Machine.phase_us m ~rate:cost.Machine.copy_rate ~workers
          ~bytes:!surv_bytes
      in
      let promote_us =
        let promote_rate =
          (* As in the generational collectors: promotion into a large
             old space is slower per byte. *)
          cost.Machine.promote_rate
          /. Float.min 2.5
               (1.0 +. (float_of_int old_before /. cost.Machine.locality_bytes))
        in
        Machine.phase_us m ~rate:promote_rate ~workers ~bytes:!prom_bytes
      in
      let duration =
        0.0 +. safepoint_us +. root_scan_us +. fixed_us +. region_us
        +. card_scan_us +. copy_us +. promote_us
      in
      let phases () =
        [
          (Span.Safepoint, safepoint_us);
          (Span.Root_scan, root_scan_us);
          (Span.Fixed, fixed_us);
          (Span.Region_overhead, region_us);
          (Span.Card_scan, card_scan_us);
          (Span.Copy, copy_us);
          (Span.Promote, promote_us);
        ]
      in
      let sub () =
        if moved_objects = 0 then []
        else begin
          let reloc = copy_us +. promote_us in
          let plan = reloc /. 8.0 in
          [ (Span.Plan, plan); (Span.Move, reloc -. plan) ]
        end
      in
      st.marking_allowed <- true;
      record ~sub
        ~kind:(if mixed then Gc_event.Mixed else Gc_event.Young)
        ~reason ~phases ~duration ~young_before ~old_before
        ~promoted:!prom_bytes ();
      maybe_start_marking ()
    end
  and alloc ~size =
    if Rh.is_humongous rheap ~size then begin
      match Rh.alloc_humongous rheap ~size with
      | Some id ->
          maybe_start_marking ();
          id
      | None -> (
          young_gc "humongous allocation";
          match Rh.alloc_humongous rheap ~size with
          | Some id -> id
          | None -> (
              full_gc "humongous allocation failure";
              match Rh.alloc_humongous rheap ~size with
              | Some id -> id
              | None ->
                  raise
                    (Gc_ctx.Out_of_memory
                       (Printf.sprintf "G1: cannot fit humongous %d bytes" size))))
    end
    else begin
      (* G1ReservePercent: keep a slice of the heap free for evacuation;
         collect early rather than risk an evacuation failure. *)
      let reserve = max 4 (Array.length rheap.Rh.regions / 10) in
      if st.eden_bytes + size > rheap.Rh.young_target_bytes then
        young_gc "eden target reached"
      else if
        Rh.free_regions rheap < reserve
        && st.eden_bytes > 4 * rheap.Rh.region_size
      then young_gc "low free regions (reserve)";
      match Rh.alloc_young rheap ~size with
      | Some id ->
          st.eden_bytes <- st.eden_bytes + size;
          id
      | None -> (
          young_gc "to-space exhausted";
          match Rh.alloc_young rheap ~size with
          | Some id ->
              st.eden_bytes <- st.eden_bytes + size;
              id
          | None -> (
              full_gc "allocation failure";
              match Rh.alloc_young rheap ~size with
              | Some id ->
                  st.eden_bytes <- st.eden_bytes + size;
                  id
              | None ->
                  raise
                    (Gc_ctx.Out_of_memory
                       (Printf.sprintf "G1: heap exhausted allocating %d bytes"
                          size))))
    end
  in
  let old_alloc_region = ref (-1) in
  let alloc_old ~size =
    if Rh.is_humongous rheap ~size then begin
      match Rh.alloc_humongous rheap ~size with
      | Some id -> id
      | None -> (
          full_gc "humongous allocation failure";
          match Rh.alloc_humongous rheap ~size with
          | Some id -> id
          | None ->
              raise
                (Gc_ctx.Out_of_memory
                   (Printf.sprintf "G1: cannot fit humongous %d bytes" size)))
    end
    else begin
      let try_current () =
        if !old_alloc_region < 0 then None
        else begin
          let r = rheap.Rh.regions.(!old_alloc_region) in
          match r.Rh.kind with
          | Rh.Old_region -> Rh.alloc_in_region rheap r ~size
          | _ -> None
        end
      in
      match try_current () with
      | Some id -> id
      | None -> (
          match Rh.take_free_region rheap Rh.Old_region with
          | Some r ->
              old_alloc_region := r.Rh.idx;
              (match Rh.alloc_in_region rheap r ~size with
              | Some id -> id
              | None ->
                  raise
                    (Gc_ctx.Out_of_memory
                       "G1: old allocation larger than a region"))
          | None -> (
              full_gc "old allocation failure";
              match Rh.take_free_region rheap Rh.Old_region with
              | Some r ->
                  old_alloc_region := r.Rh.idx;
                  (match Rh.alloc_in_region rheap r ~size with
                  | Some id -> id
                  | None ->
                      raise
                        (Gc_ctx.Out_of_memory
                           "G1: old allocation larger than a region"))
              | None ->
                  raise (Gc_ctx.Out_of_memory "G1: no free region left")))
    end
  in
  let tick ~dt_us =
    match st.phase with
    | Idle -> ()
    | Marking mk ->
        let rate =
          cost.Machine.mark_rate
          *. Machine.parallel_speedup m m.Machine.conc_gc_threads
        in
        mk.remaining_bytes <- mk.remaining_bytes -. (rate *. dt_us);
        if mk.remaining_bytes <= 0.0 then remark_and_cleanup ()
  in
  let mutator_factor () =
    match st.phase with
    | Idle -> 1.0
    | Marking _ ->
        let cores = float_of_int (Machine.cores m) in
        let stolen = float_of_int m.Machine.conc_gc_threads in
        cores /. Float.max 1.0 (cores -. stolen)
  in
  (* G1's concurrent mark steals cores; its barrier costs live in the
     pause model (refinement folded into card scanning), not here. *)
  let mutator_tax () = (1.0, mutator_factor ()) in
  Policy_hooks.install_region_capacity ctx rheap;
  {
    Collector.name;
    kind = Gc_config.G1;
    alloc;
    alloc_old;
    system_gc = (fun () -> full_gc "system.gc");
    tick;
    mutator_factor;
    mutator_tax;
    write_ref = (fun ~parent ~child -> Rh.record_store rheap ~parent ~child);
    remove_ref = (fun ~parent ~child -> Rh.remove_store rheap ~parent ~child);
    heap_used = (fun () -> Rh.heap_used rheap);
    heap_capacity = (fun () -> rheap.Rh.heap_bytes);
    young_used;
    old_used = old_hum_used;
    apply_policy = Policy_hooks.region_heap_hook ctx rheap ~collector:name ~tenuring;
    store;
    check_invariants = (fun () -> Rh.check_invariants rheap);
  }
