(** First-class collector interface.

    A collector owns its heap layout and exposes exactly the operations
    the runtime needs: allocate (collecting as required), honour a
    [System.gc()] request, make progress on concurrent phases as virtual
    time passes, report how much it is currently slowing the mutator
    down, and maintain remembered sets on reference writes. *)

type t = {
  name : string;
  kind : Gc_config.kind;
  alloc : size:int -> int;
      (** Allocates an object, running young/full collections as needed.
          @raise Gc_ctx.Out_of_memory when even a full GC cannot make
          room. *)
  alloc_old : size:int -> int;
      (** Allocates directly in the old generation (tenured/old regions):
          bulk cache rebuilds and slab-allocated stores install long-lived
          data without churning the young generation.
          @raise Gc_ctx.Out_of_memory as for [alloc]. *)
  system_gc : unit -> unit;
      (** Forced full stop-the-world collection (DaCapo's inter-iteration
          System.gc()). *)
  tick : dt_us:float -> unit;
      (** Advance concurrent work (CMS marking/sweeping, G1 marking) by
          [dt_us] of virtual time. *)
  mutator_factor : unit -> float;
      (** >= 1; how much concurrent GC activity currently dilates mutator
          work (cores stolen by concurrent GC threads). *)
  mutator_tax : unit -> float * float;
      (** Attribution of the current [mutator_factor] as
          [(barrier, steal)], both >= 1: [barrier] is the mutator-tax
          component the collector charges on every quantum even with
          idle GC threads (read/SATB barriers, journal appends,
          backpressure throttling); [steal] is the core-stealing dilation
          from concurrent GC workers.  Read-only — implementations must
          not mutate collector state, and the product need only agree
          with [mutator_factor] up to rounding: the runtime uses
          [mutator_factor] alone to advance the clock and this hook only
          to split the already-charged tax for telemetry (the distilled
          cost accounting in [lib/distill]). *)
  write_ref : parent:int -> child:int -> unit;
      (** Reference store with the collector's write barrier. *)
  remove_ref : parent:int -> child:int -> unit;
  heap_used : unit -> int;
  heap_capacity : unit -> int;
  young_used : unit -> int;
  old_used : unit -> int;
      (** for G1: old + humongous regions *)
  apply_policy : unit -> unit;
      (** Consume the pending ergonomics decision, if any, and resize the
          heap layout within its occupancy constraints.  Called by the
          runtime only at safepoints ([Vm.step] quantum boundaries); a
          no-op when no policy is attached. *)
  store : Gcperf_heap.Obj_store.t;
  check_invariants : unit -> (unit, string) result;
}
