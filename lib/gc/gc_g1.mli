(** Garbage-First.

    Region-based collector matching the JDK8 behaviour the paper measures:

    - young collections evacuate all eden/survivor regions in parallel;
      their cost is dominated by copying and by scanning the remembered
      sets of the collected regions;
    - concurrent marking starts when old + humongous occupancy crosses
      the initiating heap occupancy (IHOP); it ends with a remark pause
      and a cleanup pause that releases fully-dead regions and selects
      mixed-collection candidates (the regions with the most garbage
      first — hence the name);
    - subsequent collections are {e mixed}: they add a slice of those old
      regions to the collection set;
    - humongous objects (> half a region) get dedicated contiguous
      regions, reclaimed at cleanup or full GC;
    - the full collection — triggered by [System.gc()] or by evacuation
      failure — is a {b single-threaded} mark-compact in JDK8.  This is
      the implementation detail behind the paper's headline benchmark
      finding: G1 is the worst collector when DaCapo forces a full GC
      between iterations. *)

val create : Gc_ctx.t -> Gc_config.t -> Collector.t

type debug = {
  young_collections : int;
  mixed_collections : int;
  marking_cycles : int;
  evacuation_failures : int;
  young_target_regions : int;
}

val debug_stats : Collector.t -> debug
(** Introspection for tests; only valid on a collector created here.
    @raise Not_found otherwise. *)
