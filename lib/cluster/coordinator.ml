module Prng = Gcperf_util.Prng
module Vec = Gcperf_util.Vec
module Heapq = Gcperf_util.Heapq
module Histogram = Gcperf_telemetry.Histogram
module Injector = Gcperf_fault.Injector
module Profile = Gcperf_fault.Profile
module Gateway = Gcperf_kvstore.Gateway
module Client = Gcperf_ycsb.Client
module Session = Gcperf_ycsb.Session

type config = {
  workload : Client.workload;
  resilience : Session.Resilience.t;
  fanout : int;
  keyspace : int;
  zipf_theta : float;
  read_quorum : int;
  write_quorum : int;
  replication : int;
  hedge : bool;
  hinted_handoff : bool;
  profile : Profile.t;
}

let default =
  {
    workload =
      {
        Client.paper_workload with
        Client.read_frac = 0.95;
        ops_per_s = 75.0;
        duration_s = 1800.0;
      };
    resilience = Session.Resilience.Off;
    fanout = 8;
    keyspace = 4_000_000;
    zipf_theta = 0.99;
    read_quorum = 1;
    write_quorum = 2;
    replication = 3;
    hedge = false;
    hinted_handoff = true;
    profile = Profile.none;
  }

type summary = {
  requests : int;
  ok : int;
  failed : int;
  reads : int;
  updates : int;
  subops : int;
  sends : int;
  hedges : int;
  hedge_wins : int;
  hints : int;
  sheds : int;
  errors : int;
  drops : int;
  timeouts : int;
  pause_intersected : int;
  pause_intersection_pct : float;
  max_inflight : int;
  goodput_ops_s : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

(* A request is a batch of sub-operations; a sub-operation is a chain of
   replica sends.  [remaining] counts the responses the sub-operation
   still needs (read quorum, or W acks of a write), [live] the sends in
   flight that could still provide one. *)
type req = {
  arrival_s : float;
  kind : Client.op_kind;
  mutable pending_subs : int;
  mutable crossed : bool;
  mutable failed : bool;
}

type sub = {
  parent : req;
  key : int;
  reps : int array;  (* routing order: replicas, then handoff targets *)
  mutable remaining : int;
  mutable live : int;
  mutable next_replica : int;
  mutable resolved : bool;
}

type ev =
  | Start of req
  | Sub_ok of sub * bool  (* a required response arrived; was it a hedge? *)
  | Sub_fail of sub * string
  | Hedge_fire of sub

type session = {
  c : config;
  ring : Ring.t;
  nodes : Node.t array;
  prng : Prng.t;
  heap : ev Heapq.t;
  latencies : Histogram.t;
  timeout_ms : float;
  hedge_ms : float;
  mutable ok : int;
  mutable failed : int;
  mutable reads : int;
  mutable updates : int;
  mutable subops : int;
  mutable sends : int;
  mutable hedges : int;
  mutable hedge_wins : int;
  mutable errors : int;
  mutable drops : int;
  mutable timeouts : int;
  mutable pause_intersected : int;
  mutable inflight : int;
  mutable max_inflight : int;
}

let us s = int_of_float (s *. 1e6)
let reject_cost_ms = 0.2

let service_ms sess (node : Node.t) kind t =
  let w = sess.c.workload in
  let base =
    match kind with
    | Client.Read ->
        let db = Client.db_bytes_at (Node.timeline node).Node.db_timeline t in
        w.Client.read_base_ms
        +. (w.Client.read_step_ms *. float_of_int (db / w.Client.read_step_bytes))
    | Client.Update -> w.Client.update_base_ms
  in
  if w.Client.jitter_sigma <= 0.0 then base
  else
    base
    *. Prng.lognormal sess.prng
         ~mu:(-.(w.Client.jitter_sigma *. w.Client.jitter_sigma) /. 2.0)
         ~sigma:w.Client.jitter_sigma

(* One replica send, resolved synchronously at issue time [t] (the
   gateway stretches service across the node's pauses; the injector may
   delay, drop or error the response).  Returns when the coordinator
   hears back — [Ok completion] or [Error (detection, cause)] — and
   flags the request if the send overlapped a stop-the-world window. *)
let send sess (req : req) (node : Node.t) kind t =
  sess.sends <- sess.sends + 1;
  let inj = Node.injector node in
  Injector.advance_to inj t;
  let fault = Injector.outcome inj in
  match fault with
  | Injector.Error ->
      sess.errors <- sess.errors + 1;
      Error (t +. (reject_cost_ms /. 1e3), "error")
  | Injector.Pass | Injector.Delay _ | Injector.Drop -> (
      let service = service_ms sess node kind t in
      match Gateway.offer (Node.gateway node) ~now_s:t ~service_ms:service with
      | Gateway.Shed | Gateway.Fast_rejected ->
          Error (t +. (reject_cost_ms /. 1e3), "shed")
      | Gateway.Served { wait_ms = _; finish_s } -> (
          let extra_ms =
            match fault with Injector.Delay d -> d | _ -> 0.0
          in
          let resp_s = finish_s +. (extra_ms /. 1e3) in
          if Node.crosses_pause node ~start_s:t ~end_s:resp_s then
            req.crossed <- true;
          match fault with
          | Injector.Drop ->
              sess.drops <- sess.drops + 1;
              if Float.is_finite sess.timeout_ms then begin
                sess.timeouts <- sess.timeouts + 1;
                Error (t +. (sess.timeout_ms /. 1e3), "timeout")
              end
              else
                (* No timeout to detect the loss: the coordinator only
                   notices when the response should have arrived. *)
                Error (resp_s, "drop")
          | _ -> Ok resp_s))

let finalize sess (req : req) t =
  sess.inflight <- sess.inflight - 1;
  if req.failed then sess.failed <- sess.failed + 1
  else begin
    sess.ok <- sess.ok + 1;
    Histogram.record sess.latencies ((t -. req.arrival_s) *. 1e3)
  end;
  if req.crossed then sess.pause_intersected <- sess.pause_intersected + 1

let resolve_sub sess (sub : sub) t =
  sub.resolved <- true;
  let req = sub.parent in
  req.pending_subs <- req.pending_subs - 1;
  if req.pending_subs = 0 then finalize sess req t

(* Issue one send of a sub-operation chain and schedule its outcome. *)
let issue sess (sub : sub) node_id kind ~hedge t =
  sub.live <- sub.live + 1;
  match send sess sub.parent sess.nodes.(node_id) kind t with
  | Ok c -> Heapq.push sess.heap (us c) (Sub_ok (sub, hedge))
  | Error (f, cause) -> Heapq.push sess.heap (us f) (Sub_fail (sub, cause))

(* One sub-operation out of quorum reach fails the whole request; its
   sibling sub-operations still drain normally and the request counts
   as failed when the last of them resolves. *)
let sub_failed sess (sub : sub) t =
  sub.parent.failed <- true;
  resolve_sub sess sub t

(* A write replica caught mid-pause (or inside a fault-profile load
   window) hands its copy to the next healthy successor, which stores a
   hint (Dynamo's sloppy quorum): the ack comes from the hint holder,
   masking the paused replica. *)
let write_target sess (sub : sub) replica t =
  let node = sess.nodes.(replica) in
  if
    sess.c.hinted_handoff
    && (Node.paused_at node t
       || Injector.load_multiplier (Node.injector node) t > 1.0)
  then
    match
      Ring.successor sess.ring ~key:sub.key ~avoid:(fun n ->
          Node.paused_at sess.nodes.(n) t)
    with
    | Some h ->
        Node.record_hint sess.nodes.(h);
        h
    | None -> replica
  else replica

let start_request sess (req : req) t =
  sess.inflight <- sess.inflight + 1;
  if sess.inflight > sess.max_inflight then
    sess.max_inflight <- sess.inflight;
  match req.kind with
  | Client.Read ->
      sess.reads <- sess.reads + 1;
      req.pending_subs <- sess.c.fanout;
      for _ = 1 to sess.c.fanout do
        sess.subops <- sess.subops + 1;
        let key = Prng.zipf sess.prng ~n:sess.c.keyspace ~theta:sess.c.zipf_theta in
        let reps = Ring.replicas sess.ring ~key in
        let q = min sess.c.read_quorum (Array.length reps) in
        let sub =
          {
            parent = req;
            key;
            reps;
            remaining = q;
            live = 0;
            next_replica = q;
            resolved = false;
          }
        in
        for i = 0 to q - 1 do
          issue sess sub reps.(i) Client.Read ~hedge:false t
        done;
        if sess.c.hedge && q = 1 && sess.hedge_ms > 0.0 then
          Heapq.push sess.heap
            (us (t +. (sess.hedge_ms /. 1e3)))
            (Hedge_fire sub)
      done
  | Client.Update ->
      sess.updates <- sess.updates + 1;
      req.pending_subs <- 1;
      sess.subops <- sess.subops + 1;
      let key = Prng.zipf sess.prng ~n:sess.c.keyspace ~theta:sess.c.zipf_theta in
      let reps = Ring.replicas sess.ring ~key in
      let r = min sess.c.replication (Array.length reps) in
      let w = min sess.c.write_quorum r in
      let sub =
        {
          parent = req;
          key;
          reps;
          remaining = w;
          live = 0;
          next_replica = r;
          resolved = false;
        }
      in
      for i = 0 to r - 1 do
        issue sess sub (write_target sess sub reps.(i) t) Client.Update
          ~hedge:false t
      done

let process sess ev t =
  match ev with
  | Start req -> start_request sess req t
  | Sub_ok (sub, hedged) ->
      sub.live <- sub.live - 1;
      if not sub.resolved then begin
        sub.remaining <- sub.remaining - 1;
        if hedged && sub.remaining = 0 then
          sess.hedge_wins <- sess.hedge_wins + 1;
        if sub.remaining = 0 then resolve_sub sess sub t
      end
  | Sub_fail (sub, _cause) ->
      sub.live <- sub.live - 1;
      if not sub.resolved then begin
        if sub.next_replica < Array.length sub.reps then begin
          let target = sub.reps.(sub.next_replica) in
          sub.next_replica <- sub.next_replica + 1;
          issue sess sub target sub.parent.kind ~hedge:false t
        end
        else if sub.live < sub.remaining then
          (* Even if every in-flight send succeeds the quorum is out of
             reach: the sub-operation — and the request — has failed. *)
          sub_failed sess sub t
      end
  | Hedge_fire sub ->
      if (not sub.resolved) && sub.next_replica < Array.length sub.reps then begin
        sess.hedges <- sess.hedges + 1;
        let target = sub.reps.(sub.next_replica) in
        sub.next_replica <- sub.next_replica + 1;
        issue sess sub target Client.Read ~hedge:true t
      end

let run c ~ring ~nodes ~seed =
  if Array.length nodes <> Ring.nodes ring then
    invalid_arg "Coordinator.run: one Node.t per ring node required";
  let r = Session.Resilience.client c.resilience in
  let sess =
    {
      c;
      ring;
      nodes;
      prng = Prng.create seed;
      heap = Heapq.create ();
      latencies = Histogram.create ();
      timeout_ms = r.Gcperf_ycsb.Resilient.timeout_ms;
      hedge_ms = r.Gcperf_ycsb.Resilient.hedge_ms;
      ok = 0;
      failed = 0;
      reads = 0;
      updates = 0;
      subops = 0;
      sends = 0;
      hedges = 0;
      hedge_wins = 0;
      errors = 0;
      drops = 0;
      timeouts = 0;
      pause_intersected = 0;
      inflight = 0;
      max_inflight = 0;
    }
  in
  let w = c.workload in
  (* Open-loop Poisson arrivals: the aggregate stream of the client
     population.  Generated up front, so the arrival schedule is fixed
     before any event-order draws happen. *)
  let reqs = Vec.create () in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Prng.exponential sess.prng (1.0 /. w.Client.ops_per_s);
    if !t < w.Client.duration_s then
      Vec.push reqs
        {
          arrival_s = !t;
          kind =
            (if Prng.chance sess.prng w.Client.read_frac then Client.Read
             else Client.Update);
          pending_subs = 0;
          crossed = false;
          failed = false;
        }
    else continue := false
  done;
  Vec.iter
    (fun req -> Heapq.push sess.heap (us req.arrival_s) (Start req))
    reqs;
  let rec drain () =
    match Heapq.pop sess.heap with
    | None -> ()
    | Some (t_us, ev) ->
        process sess ev (float_of_int t_us /. 1e6);
        drain ()
  in
  drain ();
  let requests = Vec.length reqs in
  let sheds =
    Array.fold_left
      (fun a n -> a + Gateway.sheds (Node.gateway n) + Gateway.fast_rejects (Node.gateway n))
      0 nodes
  in
  let hints = Array.fold_left (fun a n -> a + Node.hints n) 0 nodes in
  {
    requests;
    ok = sess.ok;
    failed = sess.failed;
    reads = sess.reads;
    updates = sess.updates;
    subops = sess.subops;
    sends = sess.sends;
    hedges = sess.hedges;
    hedge_wins = sess.hedge_wins;
    hints;
    sheds;
    errors = sess.errors;
    drops = sess.drops;
    timeouts = sess.timeouts;
    pause_intersected = sess.pause_intersected;
    pause_intersection_pct =
      (if requests = 0 then 0.0
       else 100.0 *. float_of_int sess.pause_intersected /. float_of_int requests);
    max_inflight = sess.max_inflight;
    goodput_ops_s =
      (if w.Client.duration_s <= 0.0 then 0.0
       else float_of_int sess.ok /. w.Client.duration_s);
    p50_ms = Histogram.percentile sess.latencies 50.0;
    p99_ms = Histogram.percentile sess.latencies 99.0;
    p999_ms = Histogram.percentile sess.latencies 99.9;
    max_ms = Histogram.max sess.latencies;
  }
