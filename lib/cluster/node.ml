module Vm = Gcperf_runtime.Vm
module Server = Gcperf_kvstore.Server
module Gateway = Gcperf_kvstore.Gateway
module Gc_event = Gcperf_sim.Gc_event
module Gc_config = Gcperf_gc.Gc_config
module Injector = Gcperf_fault.Injector
module Profile = Gcperf_fault.Profile

type timeline = {
  collector : string;
  node_seed : int;
  duration_s : float;
  intervals : (float * float) array;
  db_timeline : (float * int) array;
  pause_fraction : float;
  oom : bool;
}

let generate machine ~gc ~duration_s ~ops_per_s ~read_frac ~preload_bytes
    ~seed =
  let vm = Vm.create machine gc ~seed in
  (* A ring node is a saturating store like the paper's stressed
     Cassandra: nothing flushes, the memtable only grows.  Each node
     holds one shard of the dataset, hence the caller-scaled preload. *)
  let config = Server.stress_config ~heap_bytes:gc.Gc_config.heap_bytes in
  let server = Server.create vm config ~seed:(seed + 1) in
  let oom = ref false in
  (try
     Server.replay_commitlog server ~target_bytes:preload_bytes;
     Server.run server ~duration_s ~ops_per_s ~read_frac ~insert_frac:0.02
   with Gcperf_gc.Gc_ctx.Out_of_memory _ -> oom := true);
  let events = Vm.events vm in
  let intervals = Gc_event.intervals events in
  let served_s = Vm.now_s vm in
  let paused_s =
    Array.fold_left (fun a (s, e) -> a +. (e -. s)) 0.0 intervals
  in
  {
    collector = Gc_config.kind_to_string gc.Gc_config.kind;
    node_seed = seed;
    duration_s = served_s;
    intervals;
    db_timeline = Server.db_size_timeline server;
    pause_fraction = (if served_s > 0.0 then paused_s /. served_s else 0.0);
    oom = !oom;
  }

type t = {
  id : int;
  timeline : timeline;
  injector : Injector.t;
  gateway : Gateway.t;
  mutable hints : int;
}

let create ~id timeline ~profile ~gateway ~seed =
  {
    id;
    timeline;
    injector =
      Injector.create ~profile ~seed ~pauses:timeline.intervals;
    gateway = Gateway.create gateway ~pauses:timeline.intervals;
    hints = 0;
  }

let id t = t.id
let timeline t = t.timeline
let injector t = t.injector
let gateway t = t.gateway
let record_hint t = t.hints <- t.hints + 1
let hints t = t.hints

(* Index of the last interval starting at or before [s]; -1 if none. *)
let interval_before intervals s =
  let n = Array.length intervals in
  let lo = ref (-1) and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if fst intervals.(mid) <= s then lo := mid else hi := mid - 1
  done;
  !lo

let paused_at t s =
  let i = interval_before t.timeline.intervals s in
  i >= 0 && s < snd t.timeline.intervals.(i)

let crosses_pause t ~start_s ~end_s =
  let intervals = t.timeline.intervals in
  let n = Array.length intervals in
  let i = interval_before intervals start_s in
  (* Either the window starts inside interval i, or some later interval
     begins before the window ends. *)
  (i >= 0 && start_s < snd intervals.(i))
  || (i + 1 < n && fst intervals.(i + 1) < end_s)
