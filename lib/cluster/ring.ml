(* Placement must be a pure function of the ring shape and the key, so
   the hash is the SplitMix64 finalizer applied directly — no generator
   state, no seed plumbing.  The top bit is cleared to keep every point
   a non-negative OCaml int, comparable with (<). *)

let mix64 x =
  let open Int64 in
  let z = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash_key k =
  Int64.to_int (Int64.logand (mix64 (Int64.of_int k)) Int64.max_int)

(* Point hashes fold the node and vnode ids through two mix rounds so
   that node i's points are unrelated to node i+1's: one round on a
   linear combination would correlate neighbours. *)
let point_hash ~node ~vnode =
  let h = mix64 (Int64.of_int ((node * 0x9e3779b9) + 0x1000000)) in
  let h = mix64 (Int64.logxor h (mix64 (Int64.of_int (vnode + 1)))) in
  Int64.to_int (Int64.logand h Int64.max_int)

type t = {
  nodes : int;
  vnodes : int;
  replication : int;
  hashes : int array;  (* sorted point hashes *)
  owners : int array;  (* owners.(i) owns hashes.(i) *)
}

let nodes t = t.nodes
let vnodes t = t.vnodes
let replication t = t.replication

let create ~nodes ?(vnodes = 64) ~replication () =
  if nodes <= 0 then invalid_arg "Ring.create: nodes must be positive";
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be positive";
  if replication <= 0 then
    invalid_arg "Ring.create: replication must be positive";
  let points = Array.make (nodes * vnodes) (0, 0) in
  for node = 0 to nodes - 1 do
    for vnode = 0 to vnodes - 1 do
      points.((node * vnodes) + vnode) <- (point_hash ~node ~vnode, node)
    done
  done;
  (* Ties (astronomically unlikely) break on node id, so the sorted
     order — and with it every placement — is total and reproducible. *)
  Array.sort compare points;
  {
    nodes;
    vnodes;
    replication = min replication nodes;
    hashes = Array.map fst points;
    owners = Array.map snd points;
  }

(* First point with hash >= h, wrapping past the top of the circle. *)
let first_point t h =
  let n = Array.length t.hashes in
  if h > t.hashes.(n - 1) then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.hashes.(mid) < h then lo := mid + 1 else hi := mid
    done;
    !lo
  end

(* Walk clockwise from [start], calling [keep] on each distinct node
   until it returns false.  The walk visits every point at most once. *)
let walk t start keep =
  let n = Array.length t.hashes in
  let seen = Array.make t.nodes false in
  let continue = ref true in
  let i = ref 0 in
  while !continue && !i < n do
    let owner = t.owners.((start + !i) mod n) in
    if not seen.(owner) then begin
      seen.(owner) <- true;
      continue := keep owner
    end;
    incr i
  done

let replicas t ~key =
  let out = Array.make t.replication (-1) in
  let filled = ref 0 in
  walk t
    (first_point t (hash_key key))
    (fun node ->
      out.(!filled) <- node;
      incr filled;
      !filled < t.replication);
  (* [walk] visits every node before running out of points, and
     replication <= nodes, so the set is always complete. *)
  assert (!filled = t.replication);
  out

let primary t ~key =
  let found = ref (-1) in
  walk t
    (first_point t (hash_key key))
    (fun node ->
      found := node;
      false);
  !found

let successor t ~key ~avoid =
  let skip = ref t.replication in
  let found = ref None in
  walk t
    (first_point t (hash_key key))
    (fun node ->
      if !skip > 0 then begin
        decr skip;
        true
      end
      else if avoid node then true
      else begin
        found := Some node;
        false
      end);
  !found
