(** Fan-out YCSB coordinator: the tail-at-scale request path.

    One coordinator drives a whole ring for one experiment cell.  Client
    requests arrive as a Poisson stream; a read is a multi-get that
    scatters [fanout] keys across their replica sets, an update is a
    replicated quorum write.  The request completes when its last
    sub-operation completes — which is exactly why collector choice
    dominates cluster p99: at fan-out N the request's critical path
    crosses {e some} replica's GC pause almost surely once
    [N * pause_fraction] approaches 1 (Dean & Barroso's "tail at
    scale", the regime the paper's single-JVM tables cannot reach).

    The whole session is a discrete-event simulation on one event heap
    (the same machinery as {!Gcperf_ycsb.Resilient}): sub-request sends
    consult the target node's fault injector and admission gateway at
    the simulated send time, retries/hedges are scheduled as future
    events, and every stochastic draw comes from the session PRNG in
    event order — so a session is a pure function of (config, ring,
    node timelines, seed) and byte-identical at any worker count.

    Semantics, deliberately Dynamo-flavoured where the paper's Cassandra
    stand-in left them open:

    - {e reads} go to the first [read_quorum] replicas and need all of
      them (Cassandra sends CL.QUORUM reads to exactly that many
      replicas); a failed attempt retries the next replica in ring
      order;
    - {e hedged reads} ([hedge = true], [read_quorum = 1]): if the
      primary has not answered within the resilience config's hedge
      delay, race the next replica and take the first answer;
    - {e writes} use sloppy quorum with hinted handoff: a natural
      replica caught inside a GC pause (or fault window) is replaced by
      the next healthy successor on the ring, which stores a hint —
      [write_quorum] acks complete the write, so handoff masks
      paused-replica write latency instead of waiting it out. *)

type config = {
  workload : Gcperf_ycsb.Client.workload;
      (** arrival rate, duration, read mix and the service-time model
          (reads step up with the node's database size, updates are
          flat, log-normal jitter) — the unified client vocabulary *)
  resilience : Gcperf_ycsb.Session.Resilience.t;
      (** hedge delay and lost-response timeout come from here; the
          caller builds each node's gateway from the same value *)
  fanout : int;  (** keys per multi-get *)
  keyspace : int;  (** distinct keys; requests draw Zipf ranks over it *)
  zipf_theta : float;
  read_quorum : int;
  write_quorum : int;
  replication : int;  (** write breadth; must match the ring's factor *)
  hedge : bool;
  hinted_handoff : bool;
  profile : Gcperf_fault.Profile.t;
      (** per-node fault schedule; {!Gcperf_fault.Profile.none} isolates
          pure GC effects *)
}

val default : config
(** Read-mostly (95 % multi-get), 4 M keys, YCSB Zipf skew, replication
    3 with read-one / write-two, handoff on, hedging and faults off.
    Callers override rate/duration/fan-out per scope. *)

type summary = {
  requests : int;
  ok : int;
  failed : int;
  reads : int;
  updates : int;
  subops : int;  (** sub-operations (scattered keys + quorum writes) *)
  sends : int;  (** replica sends, including retries and hedges *)
  hedges : int;
  hedge_wins : int;
  hints : int;  (** hinted writes stored for paused replicas *)
  sheds : int;
  errors : int;
  drops : int;
  timeouts : int;
  pause_intersected : int;
      (** requests with >= 1 sub-request overlapping a replica pause *)
  pause_intersection_pct : float;
  max_inflight : int;
      (** peak concurrent requests: the pile-up pauses create *)
  goodput_ops_s : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

val run : config -> ring:Ring.t -> nodes:Node.t array -> seed:int -> summary
(** Drive one session.  [nodes] must have one entry per ring node, in
    node-id order, each built from the same resilience level's gateway
    config; the coordinator only reads their timelines and consumes
    their injector streams. *)
