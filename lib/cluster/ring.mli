(** Consistent-hash ring with virtual nodes.

    The partitioner of the simulated cluster: every node owns [vnodes]
    points on a 63-bit hash circle, and a key's replica set is the first
    [replication] {e distinct} nodes met walking clockwise from the
    key's hash.  Placement is a pure function of [(nodes, vnodes,
    replication, key)] — no PRNG, no wall clock — so the same ring is
    rebuilt identically inside every experiment cell whatever the worker
    count.

    Virtual nodes give the two properties the placement tests pin down:

    - {e balance}: each node owns ~[1/nodes] of the circle, with spread
      shrinking as [vnodes] grows;
    - {e minimal rebalancing}: growing the ring from [n] to [n+1] nodes
      only moves keys onto the new node — a key's replica set after the
      grow is its old set with the new node possibly spliced in (and at
      most one old replica truncated off the end). *)

type t

val create : nodes:int -> ?vnodes:int -> replication:int -> unit -> t
(** [create ~nodes ~replication ()] builds the ring.  [vnodes] defaults
    to 64 points per node (Cassandra's [num_tokens] default spirit).
    [replication] is clamped to [nodes]: a 2-node ring cannot hold 3
    distinct replicas.  Raises [Invalid_argument] if [nodes <= 0],
    [vnodes <= 0] or [replication <= 0]. *)

val nodes : t -> int
val vnodes : t -> int

val replication : t -> int
(** The effective replication factor: [min requested nodes]. *)

val hash_key : int -> int
(** The ring's key hash (SplitMix64 finalizer, 63-bit result).  Exposed
    so callers can pre-hash hot keys; [replicas] applies it itself. *)

val replicas : t -> key:int -> int array
(** The key's replica set: [replication] distinct node ids, primary
    first, in clockwise ring order.  A fresh array per call (callers
    mutate their routing order). *)

val primary : t -> key:int -> int
(** [replicas] head without the array allocation. *)

val successor : t -> key:int -> avoid:(int -> bool) -> int option
(** First node, continuing the clockwise walk from the key's hash {e
    past the replica set}, for which [avoid] is [false]: the hinted
    handoff target when a natural replica is down.  [None] if every
    other node is to be avoided. *)
