(** One replica node of the simulated kvstore ring.

    A node's life has two phases.  {e Generation} runs a real, fully
    independent VM — own heap, own collector, own Cassandra-like store,
    own PRNG stream — under a steady serving load, and distils it into a
    {!timeline}: the stop-the-world intervals the collector produced and
    the database-size samples the service-time model reads.  {e Session}
    wraps a timeline, a seeded {!Gcperf_fault.Injector} and a
    {!Gcperf_kvstore.Gateway} into the object the coordinator routes
    sub-requests to.

    Generation is the expensive step, and a timeline depends only on
    (collector, node id, scope) — never on the ring size, fan-out or
    hedging knob — so experiment runners generate each collector's node
    timelines once, up front, and share them read-only across every grid
    cell ({!timeline} is immutable after generation). *)

type timeline = {
  collector : string;
  node_seed : int;
  duration_s : float;  (** virtual seconds the node actually served *)
  intervals : (float * float) array;
      (** sorted stop-the-world [(start_s, end_s)] intervals *)
  db_timeline : (float * int) array;
  pause_fraction : float;
      (** total paused time / duration: the per-node duty cycle whose
          fan-out amplification is the experiment's whole point *)
  oom : bool;
}

val generate :
  Gcperf_machine.Machine.t ->
  gc:Gcperf_gc.Gc_config.t ->
  duration_s:float ->
  ops_per_s:float ->
  read_frac:float ->
  preload_bytes:int ->
  seed:int ->
  timeline
(** Run one node VM for [duration_s] virtual seconds of serving (after
    replaying [preload_bytes] of commit log, as a ring node restarted
    into an existing dataset must) and summarise it.  An OOM ends the
    run early and is recorded rather than raised. *)

type t

val create :
  id:int ->
  timeline ->
  profile:Gcperf_fault.Profile.t ->
  gateway:Gcperf_kvstore.Gateway.config ->
  seed:int ->
  t
(** Session wrapper: the injector is seeded from [seed] (derive it from
    the cell seed and [id]), the gateway replays the timeline's pause
    intervals. *)

val id : t -> int
val timeline : t -> timeline
val injector : t -> Gcperf_fault.Injector.t
val gateway : t -> Gcperf_kvstore.Gateway.t

val paused_at : t -> float -> bool
(** Is the node inside a stop-the-world interval at this time? *)

val crosses_pause : t -> start_s:float -> end_s:float -> bool
(** Does [(start_s, end_s)] overlap any stop-the-world interval?  The
    per-sub-request "did my critical path hit a GC pause" probe. *)

val record_hint : t -> unit
(** Count a hinted write stored on this node for a paused replica. *)

val hints : t -> int
