(** HotSpot-style adaptive size policy ([-XX:+UseAdaptiveSizePolicy]).

    Keeps decaying weighted averages of minor/major pause time and of the
    mutator interval between minor collections, and services three goals
    in HotSpot's priority order:

    + {b Pause goal} — while the decayed minor pause exceeds
      [pause_goal_ms], shrink the young generation (smaller eden means
      fewer bytes survive each collection, so pauses shorten at the cost
      of collecting more often).
    + {b Throughput goal} — once pauses meet the goal, grow the young
      generation while the decayed GC cost
      [pause / (pause + interval)] exceeds [1/(1 + gc_time_ratio)]
      (HotSpot's [-XX:GCTimeRatio]).
    + {b Footprint goal} — with both goals met, shrink by the small
      decrement so an over-provisioned young generation is given back.

    Survivor pressure is handled separately: a streak of survivor
    overflows first lowers the tenuring threshold (promote earlier); if
    the threshold is already at its floor, the survivor ratio is lowered
    (bigger survivor spaces).  A long calm streak raises the threshold
    back toward its configured value.

    Grow steps are [increment_frac] (HotSpot grows the young generation
    by ~20%); shrink steps are [decrement_frac] (HotSpot shrinks by the
    increment divided by [AdaptiveSizeDecrementScaleFactor] = 4).  All
    decisions pass through {!Policy.clamp_decision}. *)

type goals = {
  pause_goal_ms : float;
  gc_time_ratio : int;
      (** target GC cost is [1 /. (1 + gc_time_ratio)], as in HotSpot *)
}

type config = {
  goals : goals;
  limits : Policy.limits;
  initial_young_bytes : int;
  initial_survivor_ratio : int;
  initial_tenuring_threshold : int;
  avg_weight : int;
      (** percent weight of a new sample in the decaying averages
          (HotSpot's [AdaptiveSizePolicyWeight], default 25) *)
  increment_frac : float;  (** grow step, default 0.20 *)
  decrement_frac : float;  (** shrink step, default 0.05 *)
  pause_padding : float;
      (** deviations added to the decayed pause average when comparing
          against the pause goal ([AdaptivePaddedAverage] padding,
          default 3): the goal then bounds the pause tail, not its
          mean *)
}

val default_config :
  heap_bytes:int ->
  young_bytes:int ->
  ?survivor_ratio:int ->
  ?tenuring_threshold:int ->
  ?pause_goal_ms:float ->
  ?gc_time_ratio:int ->
  unit ->
  config

val create : config -> Policy.t
