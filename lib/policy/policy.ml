type pause_class = Minor | Major | Concurrent

(* Fields are mutable so the per-pause driver (Gc_ctx) can reuse one
   scratch record instead of allocating an observation on every
   collection; [observe] implementations must read the fields during the
   call (every shipped policy copies what it keeps into its own
   averages/trajectory immediately). *)
type observation = {
  mutable pause_class : pause_class;
  mutable pause_ms : float;
  mutable interval_ms : float;
  mutable promoted_bytes : int;
  mutable survived_bytes : int;
  mutable survivor_overflow : bool;
  mutable young_capacity : int;
  mutable heap_used : int;
  mutable heap_capacity : int;
}

let scratch_observation () =
  {
    pause_class = Minor;
    pause_ms = 0.0;
    interval_ms = 0.0;
    promoted_bytes = 0;
    survived_bytes = 0;
    survivor_overflow = false;
    young_capacity = 0;
    heap_used = 0;
    heap_capacity = 0;
  }

type decision = {
  young_bytes : int option;
  survivor_ratio : int option;
  tenuring_threshold : int option;
  region_target : int option;
}

let no_decision =
  {
    young_bytes = None;
    survivor_ratio = None;
    tenuring_threshold = None;
    region_target = None;
  }

let is_noop d =
  d.young_bytes = None
  && d.survivor_ratio = None
  && d.tenuring_threshold = None
  && d.region_target = None

type limits = {
  min_young_bytes : int;
  max_young_bytes : int;
  min_survivor_ratio : int;
  max_survivor_ratio : int;
  max_tenuring_threshold : int;
  max_step_frac : float;
}

let mb = 1024 * 1024

let default_limits ~heap_bytes =
  {
    min_young_bytes = max mb (heap_bytes / 64);
    max_young_bytes = max mb (heap_bytes * 3 / 5);
    min_survivor_ratio = 1;
    max_survivor_ratio = 32;
    max_tenuring_threshold = 15;
    max_step_frac = 0.25;
  }

let clamp lo hi v = max lo (min hi v)

let clamp_decision limits ~current_young d =
  let young_bytes =
    Option.map
      (fun y ->
        let step = int_of_float (float_of_int current_young *. limits.max_step_frac) in
        let step = max 1 step in
        let y = clamp (current_young - step) (current_young + step) y in
        clamp limits.min_young_bytes limits.max_young_bytes y)
      d.young_bytes
  in
  let survivor_ratio =
    Option.map
      (clamp limits.min_survivor_ratio limits.max_survivor_ratio)
      d.survivor_ratio
  in
  let tenuring_threshold =
    Option.map (clamp 1 limits.max_tenuring_threshold) d.tenuring_threshold
  in
  { d with young_bytes; survivor_ratio; tenuring_threshold }

type stats = {
  observations : int;
  decisions : int;
  grows : int;
  shrinks : int;
  tenuring_changes : int;
  ratio_changes : int;
  cur_young_bytes : int;
  cur_survivor_ratio : int;
  cur_tenuring_threshold : int;
  avg_minor_pause_ms : float;
  avg_major_pause_ms : float;
  avg_interval_ms : float;
  gc_cost : float;
}

let empty_stats =
  {
    observations = 0;
    decisions = 0;
    grows = 0;
    shrinks = 0;
    tenuring_changes = 0;
    ratio_changes = 0;
    cur_young_bytes = 0;
    cur_survivor_ratio = 0;
    cur_tenuring_threshold = 0;
    avg_minor_pause_ms = 0.0;
    avg_major_pause_ms = 0.0;
    avg_interval_ms = 0.0;
    gc_cost = 0.0;
  }

type trajectory_point = {
  at_collection : int;
  young_bytes_now : int;
  observed_pause_ms : float;
  avg_pause_ms : float;
}

type t = {
  name : string;
  observe : observation -> unit;
  decide : unit -> decision option;
  applied : decision -> unit;
  stats : unit -> stats;
  trajectory : unit -> trajectory_point list;
}

let disabled =
  {
    name = "fixed";
    observe = (fun _ -> ());
    decide = (fun () -> None);
    applied = (fun _ -> ());
    stats = (fun () -> empty_stats);
    trajectory = (fun () -> []);
  }

module Avg = struct
  (* HotSpot's AdaptiveWeightedAverage: value' = value + w*(sample-value)
     with w = weight/100, except during warm-up, where the first samples
     use 1/count so the average starts at the sample mean rather than
     decaying up from zero. *)
  type avg = {
    mutable value : float;
    mutable dev : float;
    mutable count : int;
    weight : float;
  }

  let create ~weight =
    if weight <= 0 || weight > 100 then invalid_arg "Policy.Avg.create";
    { value = 0.0; dev = 0.0; count = 0; weight = float_of_int weight /. 100.0 }

  let update a x =
    a.count <- a.count + 1;
    let w = Float.max a.weight (1.0 /. float_of_int a.count) in
    a.value <- a.value +. (w *. (x -. a.value));
    (* Deviation against the updated average, as AdaptivePaddedAverage
       does; it decays with the same weight as the average itself. *)
    a.dev <- a.dev +. (w *. (Float.abs (x -. a.value) -. a.dev))

  let value a = a.value

  let deviation a = a.dev

  let padded a ~padding = a.value +. (padding *. a.dev)

  let count a = a.count
end
