(** Ergonomics policy interface.

    A policy closes the feedback loop HotSpot calls {e ergonomics}: it
    observes one {!observation} per stop-the-world collection (fed by
    [Gc_ctx.record_pause], so all six collectors report the same signals)
    and may leave one pending {!decision} — a bounded resize of the young
    generation, survivor ratio, tenuring threshold, or G1 young region
    target.  Decisions are {e not} applied where they are made: the
    runtime consumes the pending decision at the next safepoint
    ([Vm.step]), which keeps simulated runs deterministic and
    byte-identical across worker counts.

    The interface is first-class (a record of closures) so collectors and
    the runtime depend only on this module, not on any concrete policy. *)

type pause_class =
  | Minor  (** young and mixed collections *)
  | Major  (** full collections *)
  | Concurrent  (** concurrent-cycle pauses: initial-mark, remark, cleanup *)

(** Fields are mutable so the per-pause driver can reuse one scratch
    record rather than allocate per collection; [observe] implementations
    must copy what they keep during the call and never retain the record
    itself. *)
type observation = {
  mutable pause_class : pause_class;
  mutable pause_ms : float;
      (** stop-the-world duration of this collection *)
  mutable interval_ms : float;
      (** mutator time since the end of the previous pause *)
  mutable promoted_bytes : int;
      (** bytes promoted to the old generation *)
  mutable survived_bytes : int;
      (** young bytes surviving the collection *)
  mutable survivor_overflow : bool;
      (** at least one object was promoted early because the survivor
          space (or budget) could not hold it *)
  mutable young_capacity : int;
      (** current young-generation capacity in bytes *)
  mutable heap_used : int;  (** heap occupancy after the collection *)
  mutable heap_capacity : int;  (** total committed heap *)
}

val scratch_observation : unit -> observation
(** A fresh all-zero observation for drivers that overwrite the fields
    in place each pause. *)

type decision = {
  young_bytes : int option;  (** new young-generation size *)
  survivor_ratio : int option;  (** new eden/survivor ratio *)
  tenuring_threshold : int option;  (** new promotion age threshold *)
  region_target : int option;
      (** new G1 young target, in regions (region collectors only) *)
}

val no_decision : decision

val is_noop : decision -> bool

type limits = {
  min_young_bytes : int;
  max_young_bytes : int;
  min_survivor_ratio : int;
  max_survivor_ratio : int;
  max_tenuring_threshold : int;
  max_step_frac : float;
      (** bound on a single young-generation step, as a fraction of the
          current capacity (HotSpot resizes by bounded increments, never
          jumps) *)
}

val default_limits : heap_bytes:int -> limits
(** Young generation confined to [heap/64 .. heap*3/5] (at least 1 MB),
    survivor ratio to [1 .. 32], tenuring threshold to HotSpot's max of
    15, and any single step to 25% of the current young size. *)

val clamp_decision : limits -> current_young:int -> decision -> decision
(** Applies {!limits} to a raw decision: young sizes are clamped to the
    allowed range and to one bounded step from [current_young]; ratio and
    threshold are clamped to their ranges.  Fields that end up equal to no
    change are preserved (the heap layer re-clamps against occupancy). *)

(** Aggregate counters a policy maintains, for artifacts and tests. *)
type stats = {
  observations : int;
  decisions : int;
  grows : int;  (** young-generation grow decisions *)
  shrinks : int;  (** young-generation shrink decisions *)
  tenuring_changes : int;
  ratio_changes : int;
  cur_young_bytes : int;
  cur_survivor_ratio : int;
  cur_tenuring_threshold : int;
  avg_minor_pause_ms : float;
  avg_major_pause_ms : float;
  avg_interval_ms : float;
  gc_cost : float;  (** decayed pause / (pause + interval) *)
}

val empty_stats : stats

type trajectory_point = {
  at_collection : int;  (** minor-collection ordinal, 1-based *)
  young_bytes_now : int;  (** young capacity when the pause was observed *)
  observed_pause_ms : float;
  avg_pause_ms : float;  (** decayed average after this observation *)
}

type t = {
  name : string;
  observe : observation -> unit;
  decide : unit -> decision option;
      (** takes the pending decision, clearing it; [None] when the policy
          is satisfied with the current configuration *)
  applied : decision -> unit;
      (** feedback after the heap applied (a possibly further-clamped
          version of) a decision, so the policy tracks reality rather than
          its requests *)
  stats : unit -> stats;
  trajectory : unit -> trajectory_point list;
      (** convergence trajectory, one point per minor collection *)
}

val disabled : t
(** The fixed-size "policy": observes nothing, never decides.  Running
    with this attached is byte-identical to running with no policy. *)

(** Decaying weighted average, after HotSpot's [AdaptiveWeightedAverage]:
    new samples get [weight] (a percentage); earlier samples decay
    geometrically.  While fewer than [100/weight] samples have arrived the
    effective weight is boosted so the average tracks the sample mean
    instead of the zero initial value. *)
module Avg : sig
  type avg

  val create : weight:int -> avg
  (** [weight] percent given to each new sample once warmed up. *)

  val update : avg -> float -> unit

  val value : avg -> float

  val deviation : avg -> float
  (** Decaying average of the absolute deviation from the running
      average, updated with the same weight. *)

  val padded : avg -> padding:float -> float
  (** [value + padding * deviation] — HotSpot's [AdaptivePaddedAverage],
      a cheap decayed upper estimate of the sample distribution's tail.
      Comparing goals against the padded value instead of the plain
      average is what keeps the {e tail} of the pauses inside the goal
      rather than just their mean. *)

  val count : avg -> int
end
