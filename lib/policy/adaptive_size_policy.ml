module P = Policy

type goals = { pause_goal_ms : float; gc_time_ratio : int }

type config = {
  goals : goals;
  limits : P.limits;
  initial_young_bytes : int;
  initial_survivor_ratio : int;
  initial_tenuring_threshold : int;
  avg_weight : int;
  increment_frac : float;
  decrement_frac : float;
  pause_padding : float;
}

let default_config ~heap_bytes ~young_bytes ?(survivor_ratio = 8)
    ?(tenuring_threshold = 6) ?(pause_goal_ms = 200.0) ?(gc_time_ratio = 99)
    () =
  {
    goals = { pause_goal_ms; gc_time_ratio };
    limits = P.default_limits ~heap_bytes;
    initial_young_bytes = young_bytes;
    initial_survivor_ratio = survivor_ratio;
    initial_tenuring_threshold = tenuring_threshold;
    avg_weight = 25;
    increment_frac = 0.20;
    decrement_frac = 0.05;
    pause_padding = 3.0;
  }

type state = {
  cfg : config;
  mutable cur_young : int;
  mutable cur_ratio : int;
  mutable cur_tenuring : int;
  avg_minor_pause : P.Avg.avg;
  avg_major_pause : P.Avg.avg;
  avg_interval : P.Avg.avg;
  avg_promoted : P.Avg.avg;
  mutable overflow_streak : int;
  mutable calm_streak : int;
  mutable pending : P.decision option;
  mutable observations : int;
  mutable minors : int;
  mutable decisions : int;
  mutable grows : int;
  mutable shrinks : int;
  mutable tenuring_changes : int;
  mutable ratio_changes : int;
  mutable trajectory_rev : P.trajectory_point list;
}

let gc_cost st =
  let p = P.Avg.value st.avg_minor_pause
  and i = P.Avg.value st.avg_interval in
  if p +. i <= 0.0 then 0.0 else p /. (p +. i)

(* Survivor pressure: repeated overflow first promotes earlier (lower
   tenuring threshold, as HotSpot does when survivors are too full), then
   widens the survivor spaces (lower ratio).  Sustained calm restores the
   threshold toward its configured value. *)
let survivor_adjustment st =
  if st.overflow_streak >= 2 then begin
    st.overflow_streak <- 0;
    if st.cur_tenuring > 1 then Some (`Tenuring (st.cur_tenuring - 1))
    else if st.cur_ratio > st.cfg.limits.P.min_survivor_ratio then
      Some (`Ratio (st.cur_ratio - 1))
    else None
  end
  else if st.calm_streak >= 8 && st.cur_tenuring < st.cfg.initial_tenuring_threshold
  then begin
    st.calm_streak <- 0;
    Some (`Tenuring (st.cur_tenuring + 1))
  end
  else None

let young_adjustment st =
  (* Goals in HotSpot priority order; each returns a target young size.
     The pause goal is serviced on the {e padded} average (decayed mean
     plus padded deviation): comparing the mean alone settles into a
     limit cycle whose pause tail overshoots the goal by the grow step,
     while the padded estimate keeps the tail itself inside the goal. *)
  let padded_pause =
    P.Avg.padded st.avg_minor_pause ~padding:st.cfg.pause_padding
  in
  let goal = st.cfg.goals.pause_goal_ms in
  let cost_goal = 1.0 /. (1.0 +. float_of_int st.cfg.goals.gc_time_ratio) in
  let scale f = int_of_float (float_of_int st.cur_young *. f) in
  if padded_pause > goal then
    Some (scale (1.0 -. (st.cfg.decrement_frac *. 4.0)))
  else if gc_cost st > cost_goal then
    (* Grow for throughput only while the projected pause (one grow step
       lengthens pauses roughly proportionally) stays inside the goal;
       otherwise hold — the workload cannot meet both goals and the
       pause goal has priority. *)
    if padded_pause *. (1.0 +. st.cfg.increment_frac) <= goal then
      Some (scale (1.0 +. st.cfg.increment_frac))
    else None
  else Some (scale (1.0 -. st.cfg.decrement_frac))

let on_minor st (obs : P.observation) =
  st.minors <- st.minors + 1;
  P.Avg.update st.avg_minor_pause obs.P.pause_ms;
  P.Avg.update st.avg_interval obs.P.interval_ms;
  P.Avg.update st.avg_promoted (float_of_int obs.P.promoted_bytes);
  st.cur_young <- obs.P.young_capacity;
  st.trajectory_rev <-
    {
      P.at_collection = st.minors;
      young_bytes_now = obs.P.young_capacity;
      observed_pause_ms = obs.P.pause_ms;
      avg_pause_ms = P.Avg.value st.avg_minor_pause;
    }
    :: st.trajectory_rev;
  if obs.P.survivor_overflow then begin
    st.overflow_streak <- st.overflow_streak + 1;
    st.calm_streak <- 0
  end
  else begin
    st.calm_streak <- st.calm_streak + 1;
    if st.overflow_streak > 0 then st.overflow_streak <- 0
  end;
  (* Need a couple of samples before the averages mean anything. *)
  if st.minors >= 2 then begin
    let survivor = survivor_adjustment st in
    let young = young_adjustment st in
    let d =
      {
        P.no_decision with
        P.young_bytes = young;
        tenuring_threshold =
          (match survivor with Some (`Tenuring t) -> Some t | _ -> None);
        survivor_ratio =
          (match survivor with Some (`Ratio r) -> Some r | _ -> None);
      }
    in
    let d = P.clamp_decision st.cfg.limits ~current_young:st.cur_young d in
    (* Drop fields that would change nothing after clamping. *)
    let d =
      {
        d with
        P.young_bytes =
          (match d.P.young_bytes with
          | Some y when y = st.cur_young -> None
          | other -> other);
        survivor_ratio =
          (match d.P.survivor_ratio with
          | Some r when r = st.cur_ratio -> None
          | other -> other);
        tenuring_threshold =
          (match d.P.tenuring_threshold with
          | Some t when t = st.cur_tenuring -> None
          | other -> other);
      }
    in
    if not (P.is_noop d) then st.pending <- Some d
  end

let observe st (obs : P.observation) =
  st.observations <- st.observations + 1;
  match obs.P.pause_class with
  | P.Concurrent -> ()
  | P.Major -> P.Avg.update st.avg_major_pause obs.P.pause_ms
  | P.Minor -> on_minor st obs

let decide st () =
  match st.pending with
  | None -> None
  | Some d ->
      st.pending <- None;
      st.decisions <- st.decisions + 1;
      (match d.P.young_bytes with
      | Some y when y > st.cur_young -> st.grows <- st.grows + 1
      | Some _ -> st.shrinks <- st.shrinks + 1
      | None -> ());
      Some d

let applied st (d : P.decision) =
  (match d.P.young_bytes with Some y -> st.cur_young <- y | None -> ());
  (match d.P.survivor_ratio with
  | Some r when r <> st.cur_ratio ->
      st.cur_ratio <- r;
      st.ratio_changes <- st.ratio_changes + 1
  | _ -> ());
  match d.P.tenuring_threshold with
  | Some t when t <> st.cur_tenuring ->
      st.cur_tenuring <- t;
      st.tenuring_changes <- st.tenuring_changes + 1
  | _ -> ()

let stats st () =
  {
    P.observations = st.observations;
    decisions = st.decisions;
    grows = st.grows;
    shrinks = st.shrinks;
    tenuring_changes = st.tenuring_changes;
    ratio_changes = st.ratio_changes;
    cur_young_bytes = st.cur_young;
    cur_survivor_ratio = st.cur_ratio;
    cur_tenuring_threshold = st.cur_tenuring;
    avg_minor_pause_ms = P.Avg.value st.avg_minor_pause;
    avg_major_pause_ms = P.Avg.value st.avg_major_pause;
    avg_interval_ms = P.Avg.value st.avg_interval;
    gc_cost = gc_cost st;
  }

let create cfg =
  let st =
    {
      cfg;
      cur_young = cfg.initial_young_bytes;
      cur_ratio = cfg.initial_survivor_ratio;
      cur_tenuring = cfg.initial_tenuring_threshold;
      avg_minor_pause = P.Avg.create ~weight:cfg.avg_weight;
      avg_major_pause = P.Avg.create ~weight:cfg.avg_weight;
      avg_interval = P.Avg.create ~weight:cfg.avg_weight;
      avg_promoted = P.Avg.create ~weight:cfg.avg_weight;
      overflow_streak = 0;
      calm_streak = 0;
      pending = None;
      observations = 0;
      minors = 0;
      decisions = 0;
      grows = 0;
      shrinks = 0;
      tenuring_changes = 0;
      ratio_changes = 0;
      trajectory_rev = [];
    }
  in
  {
    P.name = "adaptive-size-policy";
    observe = observe st;
    decide = decide st;
    applied = applied st;
    stats = stats st;
    trajectory = (fun () -> List.rev st.trajectory_rev);
  }
