module Vec = Gcperf_util.Vec
module Ivec = Gcperf_util.Int_vec
module Prng = Gcperf_util.Prng
module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_event = Gcperf_sim.Gc_event

type t = {
  vm : Vm.t;
  profile : Profile.t;
  threads : Vm.thread array;
  prng : Prng.t;
  live_set : Ivec.t;  (* long-lived objects, targets of update stores *)
  recent : Ivec.t array;  (* per-thread ring of recently allocated ids *)
  pending : int array;  (* per-thread sampled-but-unallocated size; 0 = none *)
  budget : float array;  (* per-thread allocation budget carry-over *)
  batch : (int * int) Vec.t;  (* (thread slot, id): iteration-lifetime roots *)
  mutable iteration : int;
}

type iteration_stats = {
  index : int;
  duration_s : float;
  allocated_bytes : int;
  pauses : int;
  pause_s : float;
}

let recent_ring_size = 8

(* Maximum out-degree of a long-lived update-store holder. *)
let holder_fanout_cap = 1

let sample_size t prng =
  let { Profile.mean_bytes; sigma } = t.profile.Profile.size in
  if sigma <= 0.0 then mean_bytes
  else begin
    (* Log-normal with the requested mean: mu = ln(mean) - sigma^2/2. *)
    let mu = log (float_of_int mean_bytes) -. (sigma *. sigma /. 2.0) in
    let s = Prng.lognormal prng ~mu ~sigma in
    (* Clamp to keep clusters within a sane band. *)
    let lo = float_of_int mean_bytes /. 8.0
    and hi = float_of_int mean_bytes *. 8.0 in
    int_of_float (Float.max lo (Float.min hi s))
  end

let build_live_set t =
  let target = t.profile.Profile.startup_live_bytes in
  let prng = t.prng in
  let built = ref 0 in
  let prev = ref (-1) in
  while !built < target do
    let size = sample_size t prng in
    let id = Vm.alloc_global t.vm ~size ~lifetime:`Permanent in
    built := !built + size;
    Ivec.push t.live_set id;
    (* Chain the live set so tracing it is real graph work. *)
    if !prev >= 0 && Vm.is_live t.vm !prev then
      Vm.add_ref t.vm ~parent:!prev ~child:id;
    prev := id
  done

let create vm profile ~seed =
  let prng = Prng.create seed in
  let n =
    Profile.threads_for profile
      ~hw_threads:(Machine.cores (Vm.machine vm))
  in
  let threads = Array.init n (fun _ -> Vm.spawn_thread vm) in
  let t =
    {
      vm;
      profile;
      threads;
      prng;
      live_set = Ivec.create ();
      recent = Array.init n (fun _ -> Ivec.create ());
      pending = Array.make n 0;
      budget = Array.make n 0.0;
      batch = Vec.create ();
      iteration = 0;
    }
  in
  build_live_set t;
  t

let vm t = t.vm
let profile t = t.profile
let thread_count t = Array.length t.threads
let live_set_size t = Ivec.length t.live_set

let remember_recent t slot id =
  let ring = t.recent.(slot) in
  if Ivec.length ring < recent_ring_size then Ivec.push ring id
  else Ivec.set ring (Prng.int t.prng recent_ring_size) id

let link_new_object t slot id =
  let p = t.profile in
  let prng = t.prng in
  let ring = t.recent.(slot) in
  if Ivec.length ring > 0 && Prng.chance prng p.Profile.ref_locality then begin
    let other = Ivec.get ring (Prng.int prng (Ivec.length ring)) in
    if Vm.is_live t.vm other then
      if Prng.bool prng then Vm.add_ref t.vm ~parent:id ~child:other
      else Vm.add_ref t.vm ~parent:other ~child:id
  end;
  if
    Ivec.length t.live_set > 0
    && Prng.chance prng p.Profile.update_store_prob
  then begin
    (* An update store: a long-lived object is mutated to reference the
       new one — the canonical source of old-to-young pointers.  The
       holder's slot is overwritten, not appended: real collections have
       bounded fan-out, so an old reference is dropped once the holder is
       full (otherwise update stores would pin every target forever). *)
    let holder = Ivec.get t.live_set (Prng.int prng (Ivec.length t.live_set)) in
    if Vm.is_live t.vm holder then begin
      let store = (Vm.collector t.vm).Gcperf_gc.Collector.store in
      let nrefs = Gcperf_heap.Obj_store.ref_count store holder in
      if nrefs >= holder_fanout_cap then begin
        let victim =
          Gcperf_heap.Obj_store.ref_at store holder (Prng.int prng nrefs)
        in
        Vm.remove_ref t.vm ~parent:holder ~child:victim
      end;
      Vm.add_ref t.vm ~parent:holder ~child:id
    end
  end

let sample_lifetime t =
  let l = t.profile.Profile.lifetime in
  let u = Prng.float t.prng 1.0 in
  if u < l.Profile.short_frac then
    `Dies (int_of_float (Prng.exponential t.prng l.Profile.short_mean_bytes))
  else if u < l.Profile.short_frac +. l.Profile.medium_frac then
    `Dies (int_of_float (Prng.exponential t.prng l.Profile.medium_mean_bytes))
  else if
    u < l.Profile.short_frac +. l.Profile.medium_frac +. l.Profile.iteration_frac
  then `Iteration
  else if
    u
    < l.Profile.short_frac +. l.Profile.medium_frac +. l.Profile.iteration_frac
      +. l.Profile.permanent_frac
  then `Permanent
  else `Dies (int_of_float (Prng.exponential t.prng l.Profile.short_mean_bytes))

let allocate_one t slot th size =
  match sample_lifetime t with
  | `Dies b ->
      let id = Vm.alloc t.vm th ~size ~lifetime:(`Bytes (max 1 b)) in
      remember_recent t slot id;
      link_new_object t slot id
  | `Iteration ->
      let id = Vm.alloc t.vm th ~size ~lifetime:`Permanent in
      Vec.push t.batch (slot, id);
      remember_recent t slot id;
      link_new_object t slot id
  | `Permanent ->
      let id = Vm.alloc t.vm th ~size ~lifetime:`Permanent in
      (* Move the root from the thread to the global live set. *)
      Vm.global_root t.vm id;
      Vm.drop_root t.vm th id;
      Ivec.push t.live_set id;
      remember_recent t slot id;
      link_new_object t slot id

let drop_batch t =
  Vec.iter
    (fun (slot, id) -> Vm.drop_root t.vm t.threads.(slot) id)
    t.batch;
  Vec.clear t.batch

(* One mutator quantum for a thread: spend the allocation budget. *)
let thread_quantum t slot th per_thread_bytes =
  t.budget.(slot) <- t.budget.(slot) +. per_thread_bytes;
  let continue_ = ref true in
  while !continue_ do
    let size =
      if t.pending.(slot) > 0 then t.pending.(slot) else sample_size t t.prng
    in
    if float_of_int size <= t.budget.(slot) then begin
      t.pending.(slot) <- 0;
      t.budget.(slot) <- t.budget.(slot) -. float_of_int size;
      allocate_one t slot th size
    end
    else begin
      t.pending.(slot) <- size;
      continue_ := false
    end
  done

let quanta_per_iteration = 160

let pause_stats_since events n0 =
  let all = Gc_event.events events in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  let fresh = drop n0 all in
  List.fold_left
    (fun (c, s) e -> (c + 1, s +. (e.Gc_event.duration_us /. 1e6)))
    (0, 0.0) fresh

let run_iteration t =
  t.iteration <- t.iteration + 1;
  let p = t.profile in
  let prng = t.prng in
  let noise sigma =
    if sigma <= 0.0 then 1.0
    else Prng.lognormal prng ~mu:(-.(sigma *. sigma) /. 2.0) ~sigma
  in
  let total_alloc =
    int_of_float (float_of_int p.Profile.iteration_alloc_bytes *. noise p.Profile.phase_noise)
  in
  let cpu_s = p.Profile.iteration_cpu_s *. noise p.Profile.phase_noise in
  let n = Array.length t.threads in
  let dt_us = cpu_s *. 1e6 /. float_of_int quanta_per_iteration in
  let per_quantum_thread =
    float_of_int total_alloc /. float_of_int (quanta_per_iteration * n)
  in
  let events = Vm.events t.vm in
  let events_before = Gc_event.count events in
  let start_s = Vm.now_s t.vm in
  let alloc_before = Vm.allocated_bytes t.vm in
  let boundary =
    if p.Profile.sawtooth <= 0 then max_int
    else max 1 (total_alloc / p.Profile.sawtooth)
  in
  let next_boundary = ref boundary in
  let slot_of = Hashtbl.create n in
  Array.iteri (fun i th -> Hashtbl.replace slot_of th.Vm.tid i) t.threads;
  for _q = 1 to quanta_per_iteration do
    Vm.step t.vm ~dt_us (fun th ->
        match Hashtbl.find_opt slot_of th.Vm.tid with
        | Some slot -> thread_quantum t slot th per_quantum_thread
        | None -> ());
    let done_bytes = Vm.allocated_bytes t.vm - alloc_before in
    if done_bytes >= !next_boundary && p.Profile.sawtooth > 0 then begin
      drop_batch t;
      next_boundary := !next_boundary + boundary
    end
  done;
  drop_batch t;
  let pauses, pause_s = pause_stats_since events events_before in
  {
    index = t.iteration;
    duration_s = Vm.now_s t.vm -. start_s;
    allocated_bytes = Vm.allocated_bytes t.vm - alloc_before;
    pauses;
    pause_s;
  }

let run_seconds t seconds =
  let p = t.profile in
  let rate_bytes_per_s =
    float_of_int p.Profile.iteration_alloc_bytes /. p.Profile.iteration_cpu_s
  in
  let dt_us = 50_000.0 in
  let n = Array.length t.threads in
  let per_quantum_thread =
    rate_bytes_per_s *. (dt_us /. 1e6) /. float_of_int n
  in
  let slot_of = Hashtbl.create n in
  Array.iteri (fun i th -> Hashtbl.replace slot_of th.Vm.tid i) t.threads;
  let stop = Vm.now_s t.vm +. seconds in
  while Vm.now_s t.vm < stop do
    Vm.step t.vm ~dt_us (fun th ->
        match Hashtbl.find_opt slot_of th.Vm.tid with
        | Some slot -> thread_quantum t slot th per_quantum_thread
        | None -> ())
  done
