(** Mutator allocation profiles.

    A profile is everything the study needs to know about a benchmark's
    memory behaviour: how many threads it runs, how much it allocates per
    iteration at what compute intensity, how big its allocation clusters
    are, how long they live, how much long-lived data it keeps, and how
    noisy it is from iteration to iteration.  The DaCapo-like suite and
    the key-value server are both expressed in these terms. *)

type threading =
  | Single  (** one external mutator thread *)
  | Per_hw_thread  (** one client thread per hardware thread *)
  | Fixed of int

type size_class = {
  mean_bytes : int;  (** mean allocation-cluster size *)
  sigma : float;  (** log-normal shape; 0 = constant size *)
}

(** Object lifetimes, as a mixture.  Fractions must sum to at most 1;
    the remainder behaves like [short]. *)
type lifetime_mix = {
  short_frac : float;
  short_mean_bytes : float;
      (** die-young objects: root dropped after ~Exp(mean) further bytes
          are allocated VM-wide *)
  medium_frac : float;
  medium_mean_bytes : float;  (** survive into the next few collections *)
  iteration_frac : float;
      (** live until the end of the current iteration (or sub-phase) *)
  permanent_frac : float;  (** joins the long-lived live set *)
}

type t = {
  name : string;
  threading : threading;
  iteration_alloc_bytes : int;  (** total allocation per iteration *)
  iteration_cpu_s : float;  (** pure compute per iteration (parallel wall) *)
  size : size_class;
  lifetime : lifetime_mix;
  startup_live_bytes : int;  (** long-lived data built before iteration 1 *)
  ref_locality : float;
      (** probability that a new cluster is linked to a recent one *)
  update_store_prob : float;
      (** probability that an allocation also updates a long-lived object
          to point at the new one — the source of old-to-young references
          and hence card-table / remembered-set traffic *)
  phase_noise : float;
      (** log-normal sigma applied per iteration; drives the instability
          that excluded benchmarks from the paper's stable subset *)
  sawtooth : int;
      (** sub-phases per iteration whose working set is dropped at the
          sub-phase boundary (H2-like transaction batches); 0 = none *)
}

val threads_for : t -> hw_threads:int -> int

val validate : t -> (unit, string) result
(** Checks fraction sums and positivity; used by tests and constructors. *)
