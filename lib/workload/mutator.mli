(** Drives a profile against a VM, one iteration at a time.

    This is the DaCapo-shaped mutator: it spawns the profile's threads,
    builds the startup live set, and then runs iterations in which every
    thread allocates at the profile's rate while the virtual clock
    advances quantum by quantum.  Iteration durations therefore include
    allocation overhead, stop-the-world pauses and concurrent-GC mutator
    dilation — exactly the components the paper measures. *)

type t

type iteration_stats = {
  index : int;
  duration_s : float;  (** wall (virtual) time of the iteration *)
  allocated_bytes : int;
  pauses : int;  (** GC pauses that happened during this iteration *)
  pause_s : float;  (** total pause time within the iteration *)
}

val create : Gcperf_runtime.Vm.t -> Profile.t -> seed:int -> t
(** Spawns the mutator threads and allocates the startup live set
    (which may itself trigger collections). *)

val vm : t -> Gcperf_runtime.Vm.t

val profile : t -> Profile.t

val thread_count : t -> int

val live_set_size : t -> int

val run_iteration : t -> iteration_stats
(** Runs one full iteration and returns its timing. *)

val run_seconds : t -> float -> unit
(** Runs the mutator for the given amount of virtual seconds without
    iteration structure (used by open-ended server workloads). *)
