type threading = Single | Per_hw_thread | Fixed of int

type size_class = { mean_bytes : int; sigma : float }

type lifetime_mix = {
  short_frac : float;
  short_mean_bytes : float;
  medium_frac : float;
  medium_mean_bytes : float;
  iteration_frac : float;
  permanent_frac : float;
}

type t = {
  name : string;
  threading : threading;
  iteration_alloc_bytes : int;
  iteration_cpu_s : float;
  size : size_class;
  lifetime : lifetime_mix;
  startup_live_bytes : int;
  ref_locality : float;
  update_store_prob : float;
  phase_noise : float;
  sawtooth : int;
}

let threads_for t ~hw_threads =
  match t.threading with
  | Single -> 1
  | Per_hw_thread -> hw_threads
  | Fixed n -> max 1 n

let validate t =
  let l = t.lifetime in
  let total =
    l.short_frac +. l.medium_frac +. l.iteration_frac +. l.permanent_frac
  in
  if total > 1.0 +. 1e-9 then
    Error (Printf.sprintf "%s: lifetime fractions sum to %.3f > 1" t.name total)
  else if
    l.short_frac < 0.0 || l.medium_frac < 0.0 || l.iteration_frac < 0.0
    || l.permanent_frac < 0.0
  then Error (t.name ^ ": negative lifetime fraction")
  else if t.iteration_alloc_bytes <= 0 then
    Error (t.name ^ ": empty iteration allocation")
  else if t.iteration_cpu_s <= 0.0 then Error (t.name ^ ": zero cpu time")
  else if t.size.mean_bytes <= 0 then Error (t.name ^ ": empty size class")
  else if t.ref_locality < 0.0 || t.ref_locality > 1.0 then
    Error (t.name ^ ": ref_locality out of range")
  else if t.update_store_prob < 0.0 || t.update_store_prob > 1.0 then
    Error (t.name ^ ": update_store_prob out of range")
  else Ok ()
