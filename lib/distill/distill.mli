(** LBO cost distillation (Cai & Blackburn; DESIGN.md §18).

    Synthesises an ideal-GC baseline for a recorded run — zero
    collection cost, honest allocation tax retained — and reports the
    real collector's distilled cost [(t_real − t_ideal)/t_ideal]
    decomposed into stop-the-world, concurrent-steal and mutator-tax
    shares.  Pure: all inputs come from the telemetry registry the run
    recorded into; nothing here touches the simulation. *)

type components = {
  raw_us : float;  (** raw mutator timeline, collector costs struck out *)
  alloc_us : float;  (** allocation tax — kept in the ideal baseline *)
  stw_us : float;  (** total stop-the-world pause time *)
  steal_us : float;  (** core-stealing dilation by concurrent workers *)
  tax_us : float;  (** barrier/journal/backpressure mutator tax *)
  phases : (Gcperf_telemetry.Span.phase * float) list;
      (** per-phase breakdown of [stw_us], {!Gcperf_telemetry.Span.all_phases}
          order *)
}

type cost = {
  components : components;  (** after clamping (negatives/NaN → 0) *)
  t_ideal_us : float;  (** [raw_us + alloc_us] *)
  t_real_us : float;  (** [t_ideal_us + stw_us + steal_us + tax_us] *)
  stw_over : float;  (** [stw_us / t_ideal_us] *)
  steal_over : float;  (** [steal_us / t_ideal_us] *)
  tax_over : float;  (** [tax_us / t_ideal_us] *)
  distilled : float;
      (** [stw_over + steal_over + tax_over] — additive by construction;
          0 when [t_ideal_us = 0] (a run that never stepped). *)
}

val of_telemetry : Gcperf_telemetry.Telemetry.t -> components
(** Reads the Cost counters and pause spans of one run. *)

val distill : components -> cost
(** Total function: negative or NaN components are clamped to 0, so the
    distilled cost is always non-negative and exactly 0 for a zero-cost
    (ideal) collector. *)

val of_run : Gcperf_telemetry.Telemetry.t -> cost
(** [distill (of_telemetry t)]. *)
