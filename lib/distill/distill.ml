(* LBO cost distillation (DESIGN.md §18).

   Following Cai & Blackburn ("Distilling the Real Cost of Production
   Garbage Collectors"), the cost a collector imposes is measured
   against a lower-bound-overhead baseline: the same run with every
   collector cost struck out but the honest allocation tax retained.
   The runtime records exactly that decomposition while it executes
   (Cost counters + pause spans), so the ideal baseline is synthesised
   by replaying the accounted timeline:

     t_ideal = raw mutator time + allocation tax
     t_real  = t_ideal + stop-the-world + stolen cores + mutator tax

   and the distilled cost is (t_real − t_ideal) / t_ideal, reported as
   the sum of its three shares so the decomposition is additive by
   construction. *)

module Telemetry = Gcperf_telemetry.Telemetry
module Cost = Gcperf_telemetry.Cost
module Span = Gcperf_telemetry.Span

type components = {
  raw_us : float;
  alloc_us : float;
  stw_us : float;
  steal_us : float;
  tax_us : float;
  phases : (Span.phase * float) list;
}

type cost = {
  components : components;
  t_ideal_us : float;
  t_real_us : float;
  stw_over : float;
  steal_over : float;
  tax_over : float;
  distilled : float;
}

let of_telemetry t =
  let taxes = Cost.taxes t in
  {
    raw_us = taxes.Cost.raw_us;
    alloc_us = taxes.Cost.alloc_us;
    stw_us = Cost.stw_total_us t;
    steal_us = taxes.Cost.steal_us;
    tax_us = taxes.Cost.barrier_us;
    phases = Cost.stw_phase_us t;
  }

(* Components are non-negative by construction when they come from the
   runtime counters; clamping here makes [distill] total over arbitrary
   inputs (the qcheck property feeds it raw generated floats). *)
let pos x = if Float.is_nan x then 0.0 else Float.max 0.0 x

let distill c =
  let c =
    {
      c with
      raw_us = pos c.raw_us;
      alloc_us = pos c.alloc_us;
      stw_us = pos c.stw_us;
      steal_us = pos c.steal_us;
      tax_us = pos c.tax_us;
    }
  in
  let t_ideal_us = c.raw_us +. c.alloc_us in
  let t_real_us = t_ideal_us +. c.stw_us +. c.steal_us +. c.tax_us in
  if t_ideal_us <= 0.0 then
    {
      components = c;
      t_ideal_us;
      t_real_us;
      stw_over = 0.0;
      steal_over = 0.0;
      tax_over = 0.0;
      distilled = 0.0;
    }
  else
    let stw_over = c.stw_us /. t_ideal_us in
    let steal_over = c.steal_us /. t_ideal_us in
    let tax_over = c.tax_us /. t_ideal_us in
    {
      components = c;
      t_ideal_us;
      t_real_us;
      stw_over;
      steal_over;
      tax_over;
      distilled = stw_over +. steal_over +. tax_over;
    }

let of_run t = distill (of_telemetry t)
