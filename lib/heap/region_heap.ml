module Vec = Gcperf_util.Int_vec
module Bitset = Gcperf_util.Bitset

type region_kind = Free | Eden | Survivor | Old_region | Humongous

type region = {
  idx : int;
  mutable kind : region_kind;
  mutable used : int;
  objects : Vec.t;
  remset : (int, unit) Hashtbl.t;
  mutable live_bytes : int;
  mutable hum_len : int;
}

type t = {
  store : Obj_store.t;
  heap_bytes : int;
  region_size : int;
  regions : region array;
  mutable current_alloc : int;
  mutable free_count : int;
  free_bits : Bitset.t;
      (* membership mirror of [kind = Free]: the allocator's find-first
         is a word scan instead of a region-table walk *)
  mutable young_target_bytes : int;
  mutable allocated_bytes : int;
  mutable promoted_bytes : int;
}

(* [kind_eq] and the predicates below are pattern matches: [r.kind = k]
   on the variant would compile to a generic-compare C call inside loops
   that run once per region per allocation check. *)
let[@inline] kind_eq (a : region_kind) (b : region_kind) =
  match (a, b) with
  | Free, Free | Eden, Eden | Survivor, Survivor -> true
  | Old_region, Old_region | Humongous, Humongous -> true
  | _ -> false

let[@inline] is_free_kind = function
  | Free -> true
  | Eden | Survivor | Old_region | Humongous -> false

(* Every [kind] transition goes through here so [free_count] and the
   free bitset stay exact (an O(1) [free_regions] and an O(words)
   find-first — the allocation slow-path consults both on every request,
   so a fold over the region table is a per-alloc tax). *)
let[@inline] set_kind t r kind =
  (match (r.kind, kind) with
  | Free, Free -> ()
  | Free, _ ->
      t.free_count <- t.free_count - 1;
      Bitset.clear t.free_bits r.idx
  | _, Free ->
      t.free_count <- t.free_count + 1;
      Bitset.set t.free_bits r.idx
  | _, _ -> ());
  r.kind <- kind

let mb = 1024 * 1024

let create store ~heap_bytes ?(target_regions = 1024) () =
  if heap_bytes <= 0 then invalid_arg "Region_heap.create: empty heap";
  let size = heap_bytes / target_regions in
  let region_size = max mb (min (32 * mb) size) in
  let n = max 8 (heap_bytes / region_size) in
  let regions =
    Array.init n (fun idx ->
        {
          idx;
          kind = Free;
          used = 0;
          objects = Vec.create ();
          remset = Hashtbl.create 16;
          live_bytes = 0;
          hum_len = 0;
        })
  in
  let free_bits = Bitset.create ~capacity:n () in
  for i = 0 to n - 1 do
    Bitset.set free_bits i
  done;
  {
    store;
    heap_bytes;
    region_size;
    regions;
    current_alloc = -1;
    free_count = n;
    free_bits;
    young_target_bytes = region_size;
    allocated_bytes = 0;
    promoted_bytes = 0;
  }

(* The young target is the adaptive knob G1 exposes: how many bytes of
   eden accumulate before a young collection.  Clamped to [one region,
   heap minus a small reserve] so the collector always has evacuation
   headroom.  Returns the target actually in effect. *)
let set_young_target t ~bytes =
  let n = Array.length t.regions in
  let reserve = max 2 (n / 10) in
  let max_target = (n - reserve) * t.region_size in
  let clamped = max t.region_size (min bytes max_target) in
  t.young_target_bytes <- clamped;
  clamped

let young_target_regions t =
  (t.young_target_bytes + t.region_size - 1) / t.region_size

let region_of t id =
  let r = Obj_store.region_index t.store id in
  if r < 0 then invalid_arg "Region_heap.region_of: object not in a region"
  else t.regions.(r)

let count_kind t k =
  if is_free_kind k then t.free_count
  else
    Array.fold_left
      (fun acc r -> if kind_eq r.kind k then acc + 1 else acc)
      0 t.regions

let used_of_kind t k =
  Array.fold_left
    (fun acc r -> if kind_eq r.kind k then acc + r.used else acc)
    0 t.regions

(* The two occupancy sums the G1 collector reads around every pause —
   eden+survivor and old+humongous — each fold the region table once
   here instead of once per kind (integer sums, so the grouping is
   exact either way). *)
let used_young t =
  Array.fold_left
    (fun acc r ->
      match r.kind with
      | Eden | Survivor -> acc + r.used
      | Free | Old_region | Humongous -> acc)
    0 t.regions

let used_old_hum t =
  Array.fold_left
    (fun acc r ->
      match r.kind with
      | Old_region | Humongous -> acc + r.used
      | Free | Eden | Survivor -> acc)
    0 t.regions

let free_regions t = t.free_count

let heap_used t = Array.fold_left (fun acc r -> acc + r.used) 0 t.regions

let take_free_region t kind =
  if t.free_count = 0 then None
  else begin
    let i = Bitset.next_set t.free_bits 0 in
    if i < 0 then None
    else begin
      let r = t.regions.(i) in
      set_kind t r kind;
      r.used <- 0;
      r.live_bytes <- 0;
      Some r
    end
  end

let alloc_in_region t r ~size =
  if r.used + size > t.region_size then None
  else begin
    let id = Obj_store.alloc_region t.store ~size ~region:r.idx in
    r.used <- r.used + size;
    Vec.push r.objects id;
    t.allocated_bytes <- t.allocated_bytes + size;
    Some id
  end

let rec alloc_young t ~size =
  if size > t.region_size then
    invalid_arg "Region_heap.alloc_young: humongous object";
  if t.current_alloc >= 0 then begin
    let r = t.regions.(t.current_alloc) in
    match alloc_in_region t r ~size with
    | Some id -> Some id
    | None ->
        t.current_alloc <- -1;
        alloc_young t ~size
  end
  else begin
    match take_free_region t Eden with
    | None -> None
    | Some r ->
        t.current_alloc <- r.idx;
        alloc_young t ~size
  end

let is_humongous t ~size = size > t.region_size / 2

(* Humongous objects occupy a contiguous run of [ceil(size/region_size)]
   dedicated regions, as in G1.  The object id is recorded in the head
   region, which also remembers the group length; each region of the group
   carries its share of the bytes so per-region accounting stays exact. *)
let alloc_humongous t ~size =
  let needed = (size + t.region_size - 1) / t.region_size in
  let n = Array.length t.regions in
  (* First contiguous run of [needed] free regions. *)
  let rec find_run start =
    if start + needed > n then None
    else begin
      let rec check i =
        i >= needed || (is_free_kind t.regions.(start + i).kind && check (i + 1))
      in
      if check 0 then Some start else find_run (start + 1)
    end
  in
  match find_run 0 with
  | None -> None
  | Some start ->
      let head = t.regions.(start) in
      let id = Obj_store.alloc_region t.store ~size ~region:start in
      Vec.push head.objects id;
      head.hum_len <- needed;
      let remaining = ref size in
      for i = start to start + needed - 1 do
        let r = t.regions.(i) in
        set_kind t r Humongous;
        let chunk = min !remaining t.region_size in
        r.used <- chunk;
        r.live_bytes <- chunk;
        remaining := !remaining - chunk
      done;
      t.allocated_bytes <- t.allocated_bytes + size;
      Some id

let release_humongous t id =
  Obj_store.check_live t.store id;
  match Obj_store.region_index t.store id with
  | start when start >= 0 ->
      let head = t.regions.(start) in
      if head.hum_len <= 0 then
        invalid_arg "Region_heap.release_humongous: not a humongous head";
      for i = start to start + head.hum_len - 1 do
        let r = t.regions.(i) in
        Vec.clear r.objects;
        Hashtbl.reset r.remset;
        set_kind t r Free;
        r.used <- 0;
        r.live_bytes <- 0;
        r.hum_len <- 0
      done;
      Obj_store.free t.store id
  | _ -> invalid_arg "Region_heap.release_humongous: not region-allocated"

let record_store t ~parent ~child =
  Obj_store.add_ref t.store ~from:parent ~to_:child;
  let rp = Obj_store.region_index t.store parent
  and rc = Obj_store.region_index t.store child in
  if rp >= 0 && rc >= 0 && rp <> rc then
    Hashtbl.replace t.regions.(rc).remset parent ()

let remove_store t ~parent ~child =
  Obj_store.remove_ref t.store ~from:parent ~to_:child

let compact_region_objects t r =
  Vec.filter_in_place
    (fun id -> Obj_store.in_region t.store id r.idx)
    r.objects

let retire_region t r =
  Vec.clear r.objects;
  Hashtbl.reset r.remset;
  set_kind t r Free;
  r.used <- 0;
  r.live_bytes <- 0;
  r.hum_len <- 0;
  if t.current_alloc = r.idx then t.current_alloc <- -1

let release_region t r =
  Vec.iter
    (fun id ->
      if Obj_store.in_region t.store id r.idx then Obj_store.free t.store id)
    r.objects;
  retire_region t r

let eden_regions t =
  Array.to_list t.regions
  |> List.filter (fun r -> match r.kind with Eden -> true | _ -> false)

let young_regions t =
  Array.to_list t.regions
  |> List.filter (fun r ->
         match r.kind with Eden | Survivor -> true | _ -> false)

let check_invariants t =
  (* Recompute per-region occupancy from the store; humongous groups put
     their bytes in dedicated regions, handled via the head region. *)
  let actual = Array.make (Array.length t.regions) 0 in
  let err = ref None in
  Obj_store.iter_live t.store (fun id ->
      match Obj_store.loc t.store id with
      | Obj_store.Region r ->
          if t.regions.(r).kind = Humongous then begin
            (* Spread over the group exactly as the allocator did. *)
            let remaining = ref (Obj_store.size t.store id) and idx = ref r in
            while !remaining > 0 do
              if
                !idx >= Array.length t.regions
                || t.regions.(!idx).kind <> Humongous
              then begin
                err := Some "humongous group truncated";
                remaining := 0
              end
              else begin
                let chunk = min !remaining t.region_size in
                actual.(!idx) <- actual.(!idx) + chunk;
                remaining := !remaining - chunk;
                incr idx
              end
            done
          end
          else actual.(r) <- actual.(r) + Obj_store.size t.store id
      | Obj_store.Eden | Obj_store.Survivor | Obj_store.Old | Obj_store.Nowhere
        ->
          ());
  match !err with
  | Some e -> Error e
  | None ->
      let bad = ref None in
      let actual_free =
        Array.fold_left
          (fun acc r -> if is_free_kind r.kind then acc + 1 else acc)
          0 t.regions
      in
      if actual_free <> t.free_count then
        bad :=
          Some
            (Printf.sprintf "free_count drift: tracked %d actual %d"
               t.free_count actual_free);
      Array.iteri
        (fun i r ->
          if !bad = None then begin
            if r.kind = Free && r.used <> 0 then
              bad := Some (Printf.sprintf "free region %d not empty" i)
            else if r.used <> actual.(i) then
              bad :=
                Some
                  (Printf.sprintf "region %d accounting: tracked %d actual %d"
                     i r.used actual.(i))
            else if r.kind <> Humongous && r.used > t.region_size then
              bad := Some (Printf.sprintf "region %d over-full" i)
          end)
        t.regions;
      (match !bad with Some e -> Error e | None -> Ok ())
