module Vec = Gcperf_util.Vec
module Ivec = Gcperf_util.Int_vec

type location = Eden | Survivor | Old | Region of int | Nowhere

type obj = {
  id : int;
  mutable size : int;
  mutable loc : location;
  mutable age : int;
  mutable mark_epoch : int;
  mutable young_refs : int;
  mutable refs : Ivec.t;
}

(* The slot table is a bare [obj array] + count rather than an [obj
   Vec.t]: the element type being known at every access site lets the
   compiler drop the flat-float-array dispatch a polymorphic array read
   pays, and [slot]/[get] run on every traced edge. *)
type t = {
  mutable slots : obj array;
  mutable slot_count : int;
  free_slots : Ivec.t;
  mutable live : int;
  mutable epoch : int;
}

let create () =
  { slots = [||]; slot_count = 0; free_slots = Ivec.create ();
    live = 0; epoch = 0 }

(* Location predicates are pattern matches, never [loc = ...]: structural
   equality on a variant with a non-constant constructor compiles to a
   generic-compare C call, which these hot paths cannot afford. *)

let[@inline] is_young_loc = function
  | Eden | Survivor -> true
  | Old | Region _ | Nowhere -> false

let[@inline] is_old_loc = function
  | Old -> true
  | Eden | Survivor | Region _ | Nowhere -> false

let[@inline] is_nowhere_loc = function
  | Nowhere -> true
  | Eden | Survivor | Old | Region _ -> false

(* --- epoch-stamped marks --------------------------------------------- *)

(* A trace bumps the store's epoch and stamps reached objects with it;
   stamps from earlier traces are stale by construction, so there is no
   clearing pass.  Epoch 0 never marks (fresh and freed objects carry it). *)

let[@inline] begin_trace t = t.epoch <- t.epoch + 1

let[@inline] mark t o = o.mark_epoch <- t.epoch

let[@inline] is_marked t o = o.mark_epoch = t.epoch

let[@inline] unmark o = o.mark_epoch <- 0

let alloc t ~size ~loc =
  assert (size > 0);
  t.live <- t.live + 1;
  if Ivec.is_empty t.free_slots then begin
    let id = t.slot_count in
    let o =
      { id; size; loc; age = 0; mark_epoch = 0; young_refs = 0;
        refs = Ivec.create () }
    in
    if id = Array.length t.slots then begin
      let ns = Array.make (if id = 0 then 8 else id * 2) o in
      Array.blit t.slots 0 ns 0 id;
      t.slots <- ns
    end;
    t.slots.(id) <- o;
    t.slot_count <- id + 1;
    id
  end
  else begin
    let id = Ivec.pop t.free_slots in
    let o = t.slots.(id) in
    o.size <- size;
    o.loc <- loc;
    o.age <- 0;
    o.mark_epoch <- 0;
    o.young_refs <- 0;
    (* [refs] was cleared by [free]; slots only reach the free list that
       way, so there is nothing to clear here. *)
    id
  end

let[@inline] check t id =
  if id < 0 || id >= t.slot_count then
    invalid_arg "Obj_store: id out of bounds"

let[@inline] get t id =
  check t id;
  let o = t.slots.(id) in
  if is_nowhere_loc o.loc then invalid_arg "Obj_store.get: stale id";
  o

(* One fetch for trace loops that would otherwise pay [is_live] followed
   by [get] (two fetches, three checks) per visited edge.  Callers match
   on [loc]: [Nowhere] means the slot is free.  Every id stored in a root
   set, registry or ref vector was validated when it was recorded and the
   slot table never shrinks, so the [Vec.get] bounds check suffices. *)
let[@inline] slot t id =
  check t id;
  t.slots.(id)

let[@inline] is_live t id =
  id >= 0 && id < t.slot_count
  && not (is_nowhere_loc t.slots.(id).loc)

(* [free_obj] frees through an already-fetched slot — sweep loops hold
   the object in hand and need not pay a second table lookup. *)
let free_obj t o =
  if is_nowhere_loc o.loc then invalid_arg "Obj_store.free: double free";
  o.loc <- Nowhere;
  o.mark_epoch <- 0;
  o.young_refs <- 0;
  Ivec.clear o.refs;
  t.live <- t.live - 1;
  Ivec.push t.free_slots o.id

let free t id =
  check t id;
  free_obj t t.slots.(id)

(* --- references and the young-ref counter ----------------------------- *)

(* [young_refs] counts outgoing references whose target currently sits in
   a young space.  It is maintained exactly by the mutator-facing
   operations below; collectors re-derive it with {!recount_young_refs}
   for the objects whose children may have moved or died during a
   collection (targets never change space between collections, so the
   counter stays exact in steady state). *)

let add_ref t ~from ~to_ =
  let o = get t from in
  let c = get t to_ in
  if is_young_loc c.loc then o.young_refs <- o.young_refs + 1;
  Ivec.push o.refs to_

let remove_ref t ~from ~to_ =
  let o = get t from in
  let n = Ivec.length o.refs in
  let rec find i =
    if i >= n then -1 else if Ivec.get o.refs i = to_ then i else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    ignore (Ivec.swap_remove o.refs i);
    if
      to_ >= 0
      && to_ < t.slot_count
      && is_young_loc t.slots.(to_).loc
    then o.young_refs <- o.young_refs - 1
  end

let set_refs t id refs =
  let o = get t id in
  Ivec.clear o.refs;
  o.young_refs <- 0;
  List.iter
    (fun r ->
      let c = get t r in
      if is_young_loc c.loc then o.young_refs <- o.young_refs + 1;
      Ivec.push o.refs r)
    refs

let recount_young_refs t o =
  (* freed targets carry [Nowhere], which fails [is_young_loc]; a manual
     loop keeps this allocation-free (no closure over an accumulator) *)
  let refs = o.refs in
  let n = ref 0 in
  for i = 0 to Ivec.length refs - 1 do
    if is_young_loc t.slots.(Ivec.get refs i).loc then incr n
  done;
  o.young_refs <- !n

let[@inline] live_count t = t.live

let live_ids t =
  let acc = Ivec.create () in
  for i = 0 to t.slot_count - 1 do
    if not (is_nowhere_loc t.slots.(i).loc) then Ivec.push acc i
  done;
  acc

let iter_live t f =
  for i = 0 to t.slot_count - 1 do
    let o = t.slots.(i) in
    if not (is_nowhere_loc o.loc) then f o
  done

let[@inline] capacity t = t.slot_count
