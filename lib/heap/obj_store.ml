module Ivec = Gcperf_util.Int_vec
module Crew = Gcperf_exec.Crew

type location = Eden | Survivor | Old | Region of int | Nowhere

(* --- struct-of-arrays layout ------------------------------------------

   One unboxed int-array column per attribute instead of one boxed record
   per object: a mark loop touches size/location/mark words that sit
   densely in a handful of arrays rather than chasing a pointer per
   object into a scattered heap of records.  Locations are small int
   codes (constant-time compares; [Region r] packs the index into the
   code), and outgoing references live in one shared CSR edge arena —
   per-object offset/length/capacity columns into a single [edges] array
   — so a scan of an object's children is a linear slice walk. *)

let code_eden = 0
let code_survivor = 1
let code_old = 2
let code_nowhere = 3
let region_base = 4

let[@inline] code_of_loc = function
  | Eden -> code_eden
  | Survivor -> code_survivor
  | Old -> code_old
  | Nowhere -> code_nowhere
  | Region r -> region_base + r

let[@inline] loc_of_code c =
  if c = code_eden then Eden
  else if c = code_survivor then Survivor
  else if c = code_old then Old
  else if c = code_nowhere then Nowhere
  else Region (c - region_base)

(* Growable int buffer for the parallel-scan scratch; bare record rather
   than [Int_vec] so the kernel can index the backing array directly. *)
type buf = { mutable a : int array; mutable n : int }

let buf_create () = { a = [||]; n = 0 }

let[@inline] buf_push b x =
  if b.n = Array.length b.a then begin
    let nd = Array.make (if b.n = 0 then 256 else b.n * 2) 0 in
    Array.blit b.a 0 nd 0 b.n;
    b.a <- nd
  end;
  b.a.(b.n) <- x;
  b.n <- b.n + 1

type t = {
  mutable sizev : int array;
  mutable agev : int array;
  mutable locv : int array;
  mutable markv : int array;  (* epoch stamp; 0 = never marked *)
  mutable yrefv : int array;  (* outgoing refs targeting young objects *)
  mutable ref_off : int array;  (* CSR: slice start in [edges] *)
  mutable ref_len : int array;
  mutable ref_cap : int array;
  mutable live_pos : int array;  (* index in [live_list]; -1 when free *)
  mutable edges : int array;
  mutable edges_len : int;  (* bump cursor *)
  mutable edges_garbage : int;  (* entries abandoned by slice regrowth *)
  mutable slot_count : int;
  free_slots : Ivec.t;
  live_list : Ivec.t;  (* live ids, unordered (swap-remove) *)
  mutable epoch : int;
  (* Scratch for the speculative parallel scan (see [finish_trace]). *)
  mutable scan_stamp : int array;
  mutable scan_desc : int array;
  mutable scan_bufs : buf array;  (* per-worker child-list arenas *)
  mutable scan_outs : buf array;  (* per-worker next-frontier output *)
  frontier_a : buf;
  frontier_b : buf;
}

let create () =
  {
    sizev = [||];
    agev = [||];
    locv = [||];
    markv = [||];
    yrefv = [||];
    ref_off = [||];
    ref_len = [||];
    ref_cap = [||];
    live_pos = [||];
    edges = [||];
    edges_len = 0;
    edges_garbage = 0;
    slot_count = 0;
    free_slots = Ivec.create ();
    live_list = Ivec.create ();
    epoch = 0;
    scan_stamp = [||];
    scan_desc = [||];
    scan_bufs = [||];
    scan_outs = [||];
    frontier_a = buf_create ();
    frontier_b = buf_create ();
  }

let[@inline] is_young_loc = function
  | Eden | Survivor -> true
  | Old | Region _ | Nowhere -> false

let[@inline] is_old_loc = function
  | Old -> true
  | Eden | Survivor | Region _ | Nowhere -> false

let[@inline] is_nowhere_loc = function
  | Nowhere -> true
  | Eden | Survivor | Old | Region _ -> false

let[@inline] check t id =
  if id < 0 || id >= t.slot_count then
    invalid_arg "Obj_store: id out of bounds"

let[@inline] check_live t id =
  check t id;
  if t.locv.(id) = code_nowhere then invalid_arg "Obj_store.get: stale id"

let[@inline] is_live t id =
  id >= 0 && id < t.slot_count && t.locv.(id) <> code_nowhere

let[@inline] size t id = t.sizev.(id)
let[@inline] age t id = t.agev.(id)
let[@inline] set_age t id v = t.agev.(id) <- v
let[@inline] loc_code t id = t.locv.(id)
let[@inline] loc t id = loc_of_code t.locv.(id)
let[@inline] young_refs t id = t.yrefv.(id)

let[@inline] is_young t id = t.locv.(id) <= code_survivor
let[@inline] is_old t id = t.locv.(id) = code_old
let[@inline] is_nowhere t id = t.locv.(id) = code_nowhere

let[@inline] region_index t id =
  let c = t.locv.(id) in
  if c >= region_base then c - region_base else -1

let[@inline] in_region t id idx = t.locv.(id) = region_base + idx

let[@inline] set_loc t id l = t.locv.(id) <- code_of_loc l
let[@inline] set_loc_eden t id = t.locv.(id) <- code_eden
let[@inline] set_loc_survivor t id = t.locv.(id) <- code_survivor
let[@inline] set_loc_old t id = t.locv.(id) <- code_old
let[@inline] set_loc_region t id idx = t.locv.(id) <- region_base + idx

(* --- epoch-stamped marks --------------------------------------------- *)

(* A trace bumps the store's epoch and stamps reached objects with it;
   stamps from earlier traces are stale by construction, so there is no
   clearing pass.  Epoch 0 never marks (fresh and freed objects carry it). *)

let[@inline] begin_trace t = t.epoch <- t.epoch + 1

let[@inline] mark t id = t.markv.(id) <- t.epoch

let[@inline] is_marked t id = t.markv.(id) = t.epoch

let[@inline] unmark t id = t.markv.(id) <- 0

(* --- allocation ------------------------------------------------------- *)

let[@inline never] grow_columns t =
  let cap = Array.length t.sizev in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let extend col =
    let nd = Array.make ncap 0 in
    Array.blit col 0 nd 0 cap;
    nd
  in
  t.sizev <- extend t.sizev;
  t.agev <- extend t.agev;
  t.locv <- extend t.locv;
  t.markv <- extend t.markv;
  t.yrefv <- extend t.yrefv;
  t.ref_off <- extend t.ref_off;
  t.ref_len <- extend t.ref_len;
  t.ref_cap <- extend t.ref_cap;
  t.live_pos <- extend t.live_pos

let[@inline] alloc_code t ~size ~code =
  assert (size > 0);
  let id =
    if Ivec.is_empty t.free_slots then begin
      let id = t.slot_count in
      if id = Array.length t.sizev then grow_columns t;
      t.slot_count <- id + 1;
      id
      (* fresh columns are zero-filled: the ref slice starts empty *)
    end
    else Ivec.pop t.free_slots
    (* the recycled slot's ref slice was emptied by [free] and keeps its
       arena capacity, exactly as the per-object vectors used to *)
  in
  t.sizev.(id) <- size;
  t.locv.(id) <- code;
  t.agev.(id) <- 0;
  t.markv.(id) <- 0;
  t.yrefv.(id) <- 0;
  t.live_pos.(id) <- Ivec.length t.live_list;
  Ivec.push t.live_list id;
  id

let alloc t ~size ~loc = alloc_code t ~size ~code:(code_of_loc loc)

let alloc_region t ~size ~region =
  alloc_code t ~size ~code:(region_base + region)

let free t id =
  check t id;
  if t.locv.(id) = code_nowhere then invalid_arg "Obj_store.free: double free";
  t.locv.(id) <- code_nowhere;
  t.markv.(id) <- 0;
  t.yrefv.(id) <- 0;
  t.ref_len.(id) <- 0;
  let p = t.live_pos.(id) in
  ignore (Ivec.swap_remove t.live_list p);
  if p < Ivec.length t.live_list then t.live_pos.(Ivec.get t.live_list p) <- p;
  t.live_pos.(id) <- -1;
  Ivec.push t.free_slots id

(* --- CSR edge arena --------------------------------------------------- *)

(* Slices grow by relocating to the bump end of the arena; the abandoned
   block counts as garbage.  When the arena itself runs out, it is rebuilt
   tight (slices packed in id order, capacities collapsed to lengths) into
   a store at least twice the live size — one deterministic path covering
   both growth and compaction.  Rebuilds only happen from the mutator-
   facing ref operations, never mid-trace, so trace kernels can cache the
   [edges] array. *)

let[@inline never] rebuild_edges t need =
  let live = t.edges_len - t.edges_garbage in
  let target = live + need in
  let ncap = ref (max 64 (Array.length t.edges)) in
  while !ncap < target * 2 do
    ncap := !ncap * 2
  done;
  let nd = Array.make !ncap 0 in
  let pos = ref 0 in
  for id = 0 to t.slot_count - 1 do
    let len = t.ref_len.(id) in
    if len > 0 then Array.blit t.edges t.ref_off.(id) nd !pos len;
    t.ref_off.(id) <- !pos;
    t.ref_cap.(id) <- len;
    pos := !pos + len
  done;
  t.edges <- nd;
  t.edges_len <- !pos;
  t.edges_garbage <- 0

let[@inline] reserve_edges t need =
  if t.edges_len + need > Array.length t.edges then rebuild_edges t need

let[@inline never] grow_ref t id =
  let ncap =
    let c = t.ref_cap.(id) in
    if c = 0 then 4 else c * 2
  in
  reserve_edges t ncap;
  (* re-read after a possible rebuild *)
  let off = t.ref_off.(id)
  and len = t.ref_len.(id)
  and cap = t.ref_cap.(id) in
  let noff = t.edges_len in
  Array.blit t.edges off t.edges noff len;
  t.edges_len <- noff + ncap;
  t.ref_off.(id) <- noff;
  t.ref_cap.(id) <- ncap;
  t.edges_garbage <- t.edges_garbage + cap

let[@inline] push_ref t id x =
  if t.ref_len.(id) = t.ref_cap.(id) then grow_ref t id;
  let len = t.ref_len.(id) in
  t.edges.(t.ref_off.(id) + len) <- x;
  t.ref_len.(id) <- len + 1

let[@inline] ref_count t id = t.ref_len.(id)

let[@inline] ref_at t id i = t.edges.(t.ref_off.(id) + i)

let iter_refs t id f =
  let off = t.ref_off.(id) in
  let edges = t.edges in
  for i = off to off + t.ref_len.(id) - 1 do
    f edges.(i)
  done

let refs_array t id = Array.sub t.edges t.ref_off.(id) t.ref_len.(id)

let refs_list t id = Array.to_list (refs_array t id)

(* --- references and the young-ref counter ----------------------------- *)

(* [yrefv] counts outgoing references whose target currently sits in a
   young space.  It is maintained exactly by the mutator-facing
   operations below; collectors re-derive it with {!recount_young_refs}
   for the objects whose children may have moved or died during a
   collection (targets never change space between collections, so the
   counter stays exact in steady state). *)

let add_ref t ~from ~to_ =
  check_live t from;
  check_live t to_;
  if t.locv.(to_) <= code_survivor then t.yrefv.(from) <- t.yrefv.(from) + 1;
  push_ref t from to_

let remove_ref t ~from ~to_ =
  check_live t from;
  let off = t.ref_off.(from) and n = t.ref_len.(from) in
  let edges = t.edges in
  let rec find i =
    if i >= n then -1 else if edges.(off + i) = to_ then i else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    edges.(off + i) <- edges.(off + n - 1);
    t.ref_len.(from) <- n - 1;
    if to_ >= 0 && to_ < t.slot_count && t.locv.(to_) <= code_survivor then
      t.yrefv.(from) <- t.yrefv.(from) - 1
  end

let clear_refs t id =
  check_live t id;
  t.ref_len.(id) <- 0;
  t.yrefv.(id) <- 0

let set_refs t id refs =
  check_live t id;
  let n = Array.length refs in
  if n > t.ref_cap.(id) then begin
    reserve_edges t n;
    let abandoned = t.ref_cap.(id) in
    t.ref_off.(id) <- t.edges_len;
    t.ref_cap.(id) <- n;
    t.edges_len <- t.edges_len + n;
    t.edges_garbage <- t.edges_garbage + abandoned
  end;
  t.ref_len.(id) <- 0;
  t.yrefv.(id) <- 0;
  let off = t.ref_off.(id) in
  for i = 0 to n - 1 do
    let r = refs.(i) in
    check_live t r;
    t.edges.(off + i) <- r;
    t.ref_len.(id) <- i + 1;
    if t.locv.(r) <= code_survivor then t.yrefv.(id) <- t.yrefv.(id) + 1
  done

let recount_young_refs t id =
  let off = t.ref_off.(id) in
  let edges = t.edges and locv = t.locv in
  let n = ref 0 in
  for i = off to off + t.ref_len.(id) - 1 do
    if locv.(edges.(i)) <= code_survivor then incr n
  done;
  t.yrefv.(id) <- !n

(* --- live-id iteration ------------------------------------------------ *)

(* The live list makes these O(live), not O(capacity): a heap that has
   shrunk does not pay for its peak.  Iteration sorts a copy — ids
   ascending is the order the O(capacity) scan gave, and downstream
   consumers (G1's remembered-set rebuild) depend on it. *)

let[@inline] live_count t = Ivec.length t.live_list

let sorted_live t =
  let a = Ivec.to_array t.live_list in
  Array.sort (fun (x : int) y -> compare x y) a;
  a

let live_ids t =
  let a = sorted_live t in
  let acc = Ivec.create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (fun id -> Ivec.push acc id) a;
  acc

let iter_live t f = Array.iter f (sorted_live t)

let[@inline] capacity t = t.slot_count

(* --- trace kernel ------------------------------------------------------

   [finish_trace] runs a trace to closure from an already-seeded stack:
   pop a vertex, scan its references, and mark/push every unmarked child
   the predicate admits.  Every artifact in the goldens depends on the
   exact discovery order of this loop — survivor-budget overflow,
   evacuation bump-packing, free-slot recycling and remembered-set bucket
   orders all descend from it — so the parallel path must reproduce it
   bit for bit.

   Determinism contract: worker domains never mark.  They compute the
   *speculative closure* — a superset-free cache of each reachable
   vertex's predicate-filtered child list, claimed via a separate stamp
   column — and the marking automaton then replays sequentially over the
   cached lists in exactly the order the sequential loop would have used.
   Child lists preserve reference order; a vertex scanned twice (claim
   races are benign: both writers record the same list contents) gets
   whichever single-word descriptor lands last.  Marks, the marked
   vector, and everything downstream are byte-identical at any worker
   count, including zero. *)

type trace_pred = Trace_young | Trace_live | Trace_regions of bool array

(* Packed scan descriptor: arena offset | filtered-child count | owner. *)
let desc_owner_bits = 8
let desc_len_bits = 20
let desc_owner_mask = (1 lsl desc_owner_bits) - 1
let desc_len_mask = (1 lsl desc_len_bits) - 1
let desc_len_shift = desc_owner_bits
let desc_off_shift = desc_owner_bits + desc_len_bits

let default_domains = Atomic.make 1
let set_default_trace_domains n = Atomic.set default_domains (max 1 n)
let default_trace_domains () = Atomic.get default_domains

let par_threshold = Atomic.make 64
let set_par_trace_threshold n = Atomic.set par_threshold (max 0 n)
let par_trace_threshold () = Atomic.get par_threshold

let sequential_finish t ~pred ~marked ~stack =
  let edges = t.edges
  and ref_off = t.ref_off
  and ref_len = t.ref_len
  and markv = t.markv
  and locv = t.locv
  and ep = t.epoch in
  while not (Ivec.is_empty stack) do
    let v = Ivec.pop stack in
    let off = ref_off.(v) in
    for i = off to off + ref_len.(v) - 1 do
      let c = edges.(i) in
      let admit =
        match pred with
        | Trace_young -> locv.(c) <= code_survivor
        | Trace_live -> locv.(c) <> code_nowhere
        | Trace_regions rs ->
            let l = locv.(c) in
            l >= region_base && rs.(l - region_base)
      in
      if admit && markv.(c) <> ep then begin
        markv.(c) <- ep;
        Ivec.push marked c;
        Ivec.push stack c
      end
    done
  done

let ensure_scan t slots =
  if Array.length t.scan_stamp < Array.length t.sizev then begin
    (* Fresh zero arrays suffice: epoch stamps are monotonically above 0,
       and descriptors are garbage until stamped. *)
    t.scan_stamp <- Array.make (Array.length t.sizev) 0;
    t.scan_desc <- Array.make (Array.length t.sizev) 0
  end;
  if Array.length t.scan_bufs < slots then begin
    let extend old =
      Array.init slots (fun i ->
          if i < Array.length old then old.(i) else buf_create ())
    in
    t.scan_bufs <- extend t.scan_bufs;
    t.scan_outs <- extend t.scan_outs
  end

let scan_block = 64

(* Phase 1: compute the speculative closure in parallel.  Returns false
   when the crew is unavailable (another domain holds it) and the caller
   must fall back to the sequential loop. *)
let speculative_scan t ~pred ~stack ~domains =
  Crew.try_with ~domains (fun crew ->
      let slots = Crew.size crew in
      ensure_scan t slots;
      let ep = t.epoch in
      let stamp = t.scan_stamp
      and desc = t.scan_desc
      and bufs = t.scan_bufs
      and outs = t.scan_outs
      and edges = t.edges
      and ref_off = t.ref_off
      and ref_len = t.ref_len
      and locv = t.locv in
      for i = 0 to slots - 1 do
        bufs.(i).n <- 0
      done;
      let cur = ref t.frontier_a and nxt = ref t.frontier_b in
      (!cur).n <- 0;
      Ivec.iter
        (fun v ->
          stamp.(v) <- ep;
          buf_push !cur v)
        stack;
      let cursor = Atomic.make 0 in
      while (!cur).n > 0 do
        let fdata = (!cur).a and flen = (!cur).n in
        for i = 0 to slots - 1 do
          outs.(i).n <- 0
        done;
        Atomic.set cursor 0;
        Crew.run crew (fun slot ->
            if slot < slots then begin
              let arena = bufs.(slot) and out = outs.(slot) in
              let more = ref true in
              while !more do
                let b = Atomic.fetch_and_add cursor scan_block in
                if b >= flen then more := false
                else begin
                  let hi = min flen (b + scan_block) in
                  for fi = b to hi - 1 do
                    let v = fdata.(fi) in
                    let off = ref_off.(v) in
                    let off0 = arena.n in
                    for e = off to off + ref_len.(v) - 1 do
                      let c = edges.(e) in
                      let admit =
                        match pred with
                        | Trace_young -> locv.(c) <= code_survivor
                        | Trace_live -> locv.(c) <> code_nowhere
                        | Trace_regions rs ->
                            let l = locv.(c) in
                            l >= region_base && rs.(l - region_base)
                      in
                      if admit then begin
                        buf_push arena c;
                        if stamp.(c) <> ep then begin
                          stamp.(c) <- ep;
                          buf_push out c
                        end
                      end
                    done;
                    let run = arena.n - off0 in
                    assert (run <= desc_len_mask);
                    desc.(v) <-
                      (off0 lsl desc_off_shift)
                      lor (run lsl desc_len_shift)
                      lor slot
                  done
                end
              done
            end);
        (* Barrier passed: merge the per-worker discoveries into the next
           frontier.  Claim races mean a vertex can appear in two outputs
           and be re-scanned next round; both scans record identical
           child lists, so the descriptor race is benign. *)
        (!nxt).n <- 0;
        for i = 0 to slots - 1 do
          let o = outs.(i) in
          for j = 0 to o.n - 1 do
            buf_push !nxt o.a.(j)
          done
        done;
        let tmp = !cur in
        cur := !nxt;
        nxt := tmp
      done)

(* Phase 2: the sequential marking automaton, reading cached filtered
   child lists instead of the CSR slices.  Identical pop/scan/mark order
   to [sequential_finish] — the predicate was already applied per child
   during the scan and locations cannot change mid-trace. *)
let replay t ~marked ~stack =
  let desc = t.scan_desc
  and bufs = t.scan_bufs
  and markv = t.markv
  and ep = t.epoch in
  while not (Ivec.is_empty stack) do
    let v = Ivec.pop stack in
    let d = desc.(v) in
    let owner = d land desc_owner_mask in
    let len = (d lsr desc_len_shift) land desc_len_mask in
    let off = d lsr desc_off_shift in
    let a = bufs.(owner).a in
    for i = off to off + len - 1 do
      let c = a.(i) in
      if markv.(c) <> ep then begin
        markv.(c) <- ep;
        Ivec.push marked c;
        Ivec.push stack c
      end
    done
  done

let finish_trace t ~pred ~marked ~stack ~domains =
  if
    domains > 1
    && Ivec.length stack >= Atomic.get par_threshold
    && speculative_scan t ~pred ~stack ~domains
  then replay t ~marked ~stack
  else sequential_finish t ~pred ~marked ~stack

(* Debug/bench introspection. *)
let edges_capacity t = Array.length t.edges
let edges_garbage t = t.edges_garbage
