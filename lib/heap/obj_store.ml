module Ivec = Gcperf_util.Int_vec
module Crew = Gcperf_exec.Crew

type location = Eden | Survivor | Old | Region of int | Nowhere

(* --- struct-of-arrays layout ------------------------------------------

   One unboxed int-array column per attribute instead of one boxed record
   per object: a mark loop touches size/location/mark words that sit
   densely in a handful of arrays rather than chasing a pointer per
   object into a scattered heap of records.  Locations are small int
   codes (constant-time compares; [Region r] packs the index into the
   code), and outgoing references live in one shared CSR edge arena —
   per-object offset/length/capacity columns into a single [edges] array
   — so a scan of an object's children is a linear slice walk. *)

let code_eden = 0
let code_survivor = 1
let code_old = 2
let code_nowhere = 3
let region_base = 4

let[@inline] code_of_loc = function
  | Eden -> code_eden
  | Survivor -> code_survivor
  | Old -> code_old
  | Nowhere -> code_nowhere
  | Region r -> region_base + r

let[@inline] loc_of_code c =
  if c = code_eden then Eden
  else if c = code_survivor then Survivor
  else if c = code_old then Old
  else if c = code_nowhere then Nowhere
  else Region (c - region_base)

(* Growable int buffer for the parallel-scan scratch; bare record rather
   than [Int_vec] so the kernel can index the backing array directly. *)
type buf = { mutable a : int array; mutable n : int }

let buf_create () = { a = [||]; n = 0 }

let[@inline] buf_push b x =
  if b.n = Array.length b.a then begin
    let nd = Array.make (if b.n = 0 then 256 else b.n * 2) 0 in
    Array.blit b.a 0 nd 0 b.n;
    b.a <- nd
  end;
  b.a.(b.n) <- x;
  b.n <- b.n + 1

type t = {
  mutable sizev : int array;
  mutable agev : int array;
  mutable locv : int array;
  mutable markv : int array;  (* epoch stamp; 0 = never marked *)
  mutable yrefv : int array;  (* outgoing refs targeting young objects *)
  mutable ref_off : int array;  (* CSR: slice start in [edges] *)
  mutable ref_len : int array;
  mutable ref_cap : int array;
  mutable live_pos : int array;  (* index in [live_list]; -1 when free *)
  mutable edges : int array;
  mutable edges_len : int;  (* bump cursor *)
  mutable edges_garbage : int;  (* entries abandoned by slice regrowth *)
  mutable slot_count : int;
  free_slots : Ivec.t;
  live_list : Ivec.t;  (* live ids, unordered (swap-remove) *)
  mutable epoch : int;
  (* Scratch for the speculative parallel scan (see [finish_trace]). *)
  mutable scan_stamp : int array;
  mutable scan_desc : int array;
  mutable scan_bufs : buf array;  (* per-worker child-list arenas *)
  mutable scan_outs : buf array;  (* per-worker next-frontier output *)
  frontier_a : buf;
  frontier_b : buf;
  (* Relocation plan (see [finish_relocate]): parallel triples of object
     id, destination location code and destination age, filled in
     placement order by the collector's plan pass. *)
  mutable plan_ids : int array;
  mutable plan_code : int array;
  mutable plan_age : int array;
  mutable plan_n : int;
  (* Double-buffered destination arena for [rebuild_edges]: the retired
     source arena becomes the next rebuild's preallocated destination, so
     steady-state rebuilds allocate nothing in the host runtime. *)
  mutable edges_spare : int array;
  (* Per-worker slab cursors for the parallel edge rebuild (slab start
     offset into the destination arena, computed by the sequential
     prefix-sum over slab sizes). *)
  mutable slab_base : int array;
  (* Forwarding table for pauseless concurrent relocation: epoch-stamped
     per-slot entries, so opening a new relocation phase is O(1) and no
     clearing pass ever runs.  [fwd_stampv.(id) = fwd_epoch] means the
     object moved this phase; [fwd_healv.(id) = fwd_epoch] means some
     reader already remapped (healed) it. *)
  mutable fwd_stampv : int array;
  mutable fwd_healv : int array;
  fwd_ids : Ivec.t;  (* ids recorded this phase, record order *)
  mutable fwd_epoch : int;
  mutable fwd_pending : int;  (* recorded, not yet healed *)
  mutable fwd_hits : int;  (* load-barrier slow paths taken this phase *)
}

let create () =
  {
    sizev = [||];
    agev = [||];
    locv = [||];
    markv = [||];
    yrefv = [||];
    ref_off = [||];
    ref_len = [||];
    ref_cap = [||];
    live_pos = [||];
    edges = [||];
    edges_len = 0;
    edges_garbage = 0;
    slot_count = 0;
    free_slots = Ivec.create ();
    live_list = Ivec.create ();
    epoch = 0;
    scan_stamp = [||];
    scan_desc = [||];
    scan_bufs = [||];
    scan_outs = [||];
    frontier_a = buf_create ();
    frontier_b = buf_create ();
    plan_ids = [||];
    plan_code = [||];
    plan_age = [||];
    plan_n = 0;
    edges_spare = [||];
    slab_base = [||];
    fwd_stampv = [||];
    fwd_healv = [||];
    fwd_ids = Ivec.create ();
    fwd_epoch = 0;
    fwd_pending = 0;
    fwd_hits = 0;
  }

let[@inline] is_young_loc = function
  | Eden | Survivor -> true
  | Old | Region _ | Nowhere -> false

let[@inline] is_old_loc = function
  | Old -> true
  | Eden | Survivor | Region _ | Nowhere -> false

let[@inline] is_nowhere_loc = function
  | Nowhere -> true
  | Eden | Survivor | Old | Region _ -> false

let[@inline] check t id =
  if id < 0 || id >= t.slot_count then
    invalid_arg "Obj_store: id out of bounds"

let[@inline] check_live t id =
  check t id;
  if t.locv.(id) = code_nowhere then invalid_arg "Obj_store.get: stale id"

let[@inline] is_live t id =
  id >= 0 && id < t.slot_count && t.locv.(id) <> code_nowhere

(* Per-id accessors compile to single unchecked word moves: every id a
   caller can legitimately hold is below [slot_count] (ids are only
   minted by [alloc] and recycled through the free list), so the array
   bounds check would re-prove a structural invariant on the simulator's
   hottest loads.  [is_live]/[check_live] remain the checked entry
   points for untrusted ids. *)
let[@inline] size t id = Array.unsafe_get t.sizev id
let[@inline] age t id = Array.unsafe_get t.agev id
let[@inline] set_age t id v = Array.unsafe_set t.agev id v
let[@inline] loc_code t id = Array.unsafe_get t.locv id
let[@inline] loc t id = loc_of_code (Array.unsafe_get t.locv id)
let[@inline] young_refs t id = Array.unsafe_get t.yrefv id

let[@inline] is_young t id = Array.unsafe_get t.locv id <= code_survivor
let[@inline] is_old t id = Array.unsafe_get t.locv id = code_old
let[@inline] is_nowhere t id = Array.unsafe_get t.locv id = code_nowhere

let[@inline] region_index t id =
  let c = Array.unsafe_get t.locv id in
  if c >= region_base then c - region_base else -1

let[@inline] in_region t id idx =
  Array.unsafe_get t.locv id = region_base + idx

let[@inline] set_loc t id l = Array.unsafe_set t.locv id (code_of_loc l)
let[@inline] set_loc_eden t id = Array.unsafe_set t.locv id code_eden
let[@inline] set_loc_survivor t id = Array.unsafe_set t.locv id code_survivor
let[@inline] set_loc_old t id = Array.unsafe_set t.locv id code_old
let[@inline] set_loc_region t id idx =
  Array.unsafe_set t.locv id (region_base + idx)

(* --- epoch-stamped marks --------------------------------------------- *)

(* A trace bumps the store's epoch and stamps reached objects with it;
   stamps from earlier traces are stale by construction, so there is no
   clearing pass.  Epoch 0 never marks (fresh and freed objects carry it). *)

let[@inline] begin_trace t = t.epoch <- t.epoch + 1

let[@inline] mark t id = Array.unsafe_set t.markv id t.epoch

let[@inline] is_marked t id = Array.unsafe_get t.markv id = t.epoch

let[@inline] unmark t id = Array.unsafe_set t.markv id 0

(* --- allocation ------------------------------------------------------- *)

let[@inline never] grow_columns t =
  let cap = Array.length t.sizev in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let extend col =
    let nd = Array.make ncap 0 in
    Array.blit col 0 nd 0 cap;
    nd
  in
  t.sizev <- extend t.sizev;
  t.agev <- extend t.agev;
  t.locv <- extend t.locv;
  t.markv <- extend t.markv;
  t.yrefv <- extend t.yrefv;
  t.ref_off <- extend t.ref_off;
  t.ref_len <- extend t.ref_len;
  t.ref_cap <- extend t.ref_cap;
  t.live_pos <- extend t.live_pos

(* Sizes are positive by construction at every call site (allocation
   requests are validated at the VM boundary); no assert on this path. *)
let[@inline] alloc_code t ~size ~code =
  let id =
    if Ivec.is_empty t.free_slots then begin
      let id = t.slot_count in
      if id = Array.length t.sizev then grow_columns t;
      t.slot_count <- id + 1;
      id
      (* fresh columns are zero-filled: the ref slice starts empty *)
    end
    else Ivec.unsafe_pop t.free_slots
    (* the recycled slot's ref slice was emptied by [free] and keeps its
       arena capacity, exactly as the per-object vectors used to *)
  in
  (* [id < Array.length t.sizev] by construction (grow above, or a
     recycled slot), and every column shares that length: unchecked
     stores keep the per-allocation cost to the seven word writes. *)
  Array.unsafe_set t.sizev id size;
  Array.unsafe_set t.locv id code;
  Array.unsafe_set t.agev id 0;
  Array.unsafe_set t.markv id 0;
  Array.unsafe_set t.yrefv id 0;
  Array.unsafe_set t.live_pos id (Ivec.length t.live_list);
  Ivec.push t.live_list id;
  id

let alloc t ~size ~loc = alloc_code t ~size ~code:(code_of_loc loc)

let alloc_region t ~size ~region =
  alloc_code t ~size ~code:(region_base + region)

(* Core of [free] without the liveness checks, shared with the batch
   sweep kernels.  The [free_slots] push order decides future id
   recycling, which the goldens depend on — every caller must visit dead
   objects in the same order the checked per-object loop did. *)
let[@inline] free_unchecked t id =
  (* Only [locv] and [ref_len] need clearing.  [markv]/[yrefv] of a dead
     id are unreachable — every reader guards on location first
     ([code_nowhere] fails both the young and the not-nowhere tests) and
     [alloc_code] re-zeroes them on recycling — and [live_pos] is only
     read while live.  [ref_len] must drop to zero here: the recycled
     slot keeps its arena slice capacity but starts with no refs. *)
  Array.unsafe_set t.locv id code_nowhere;
  Array.unsafe_set t.ref_len id 0;
  (* Inlined swap-remove of the live-list slot: move the tail id into the
     vacated position and patch its back-pointer.  When [id] is itself
     the tail ([p = last]) the self-move is harmless and no patch is
     needed — identical to the checked original. *)
  let p = Array.unsafe_get t.live_pos id in
  let live = t.live_list in
  let moved = Ivec.unsafe_pop live in
  if p < Ivec.length live then begin
    Ivec.unsafe_set live p moved;
    Array.unsafe_set t.live_pos moved p
  end;
  Ivec.push t.free_slots id

let free t id =
  check t id;
  if t.locv.(id) = code_nowhere then invalid_arg "Obj_store.free: double free";
  free_unchecked t id

(* --- parallel-kernel knobs --------------------------------------------

   One process-global worker-domain count serves both intra-collection
   kernels (the mark/scan trace and the relocation move), seeded from the
   CLI [--gc-jobs] (née [--trace-jobs]) and snapshotted by contexts at
   creation.  The two engagement thresholds are separate: tracing
   amortises crew hand-off over a frontier expansion, moving over a flat
   slab copy, and tests lower each independently. *)

let default_domains = Atomic.make 1
let set_default_trace_domains n = Atomic.set default_domains (max 1 n)
let default_trace_domains () = Atomic.get default_domains
let set_default_gc_domains = set_default_trace_domains
let default_gc_domains = default_trace_domains

let par_threshold = Atomic.make 64
let set_par_trace_threshold n = Atomic.set par_threshold (max 0 n)
let par_trace_threshold () = Atomic.get par_threshold

let move_threshold = Atomic.make 256
let set_par_move_threshold n = Atomic.set move_threshold (max 0 n)
let par_move_threshold () = Atomic.get move_threshold

(* --- CSR edge arena --------------------------------------------------- *)

(* Slices grow by relocating to the bump end of the arena; the abandoned
   block counts as garbage.  When the arena itself runs out, it is rebuilt
   tight (slices packed in id order, capacities collapsed to lengths) into
   a store at least twice the live size — one deterministic path covering
   both growth and compaction.  Rebuilds only happen from the mutator-
   facing ref operations, never mid-trace, so trace kernels can cache the
   [edges] array.

   The destination arena is double-buffered: the retired source array is
   kept as [edges_spare] and becomes the next rebuild's preallocated
   destination when large enough, so steady-state rebuilds allocate
   nothing.  Above [move_threshold] slots the packing runs slab-parallel:
   slabs are contiguous id ranges, a sequential prefix-sum over per-slab
   slice totals assigns each slab its destination base, and workers then
   pack disjoint ranges — the layout is byte-identical to the sequential
   walk at any worker count. *)

let[@inline] pack_edges_range t ~src ~dst ~lo ~hi ~pos0 =
  let ref_off = t.ref_off and ref_len = t.ref_len and ref_cap = t.ref_cap in
  let pos = ref pos0 in
  for id = lo to hi - 1 do
    let len = ref_len.(id) in
    if len > 0 then Array.blit src ref_off.(id) dst !pos len;
    ref_off.(id) <- !pos;
    ref_cap.(id) <- len;
    pos := !pos + len
  done;
  !pos

let[@inline never] rebuild_edges t need =
  let live = t.edges_len - t.edges_garbage in
  let target = live + need in
  let ncap = ref (max 64 (Array.length t.edges)) in
  while !ncap < target * 2 do
    ncap := !ncap * 2
  done;
  let src = t.edges in
  let dst =
    if Array.length t.edges_spare >= !ncap then t.edges_spare
    else Array.make !ncap 0
  in
  let slot_n = t.slot_count in
  let domains = Atomic.get default_domains in
  let par =
    domains > 1
    && slot_n >= Atomic.get move_threshold
    && Crew.try_with ~domains (fun crew ->
           let slots = Crew.size crew in
           if Array.length t.slab_base < slots + 1 then
             t.slab_base <- Array.make (slots + 1) 0;
           let base = t.slab_base in
           let chunk = (slot_n + slots - 1) / slots in
           let ref_len = t.ref_len in
           (* Phase A (plan): per-slab slice totals, then the sequential
              prefix-sum assigning each slab its destination base. *)
           let pos = ref 0 in
           for s = 0 to slots - 1 do
             base.(s) <- !pos;
             let lo = s * chunk and hi = min slot_n ((s + 1) * chunk) in
             for id = lo to hi - 1 do
               pos := !pos + ref_len.(id)
             done
           done;
           base.(slots) <- !pos;
           (* Phase B (move): each worker packs its own slab. *)
           Crew.run crew (fun slot ->
               if slot < slots then begin
                 let lo = slot * chunk and hi = min slot_n ((slot + 1) * chunk) in
                 if lo < hi then
                   ignore (pack_edges_range t ~src ~dst ~lo ~hi ~pos0:base.(slot))
               end);
           t.edges_len <- base.(slots))
  in
  if not par then
    t.edges_len <- pack_edges_range t ~src ~dst ~lo:0 ~hi:slot_n ~pos0:0;
  t.edges <- dst;
  t.edges_spare <- (if src == dst then [||] else src);
  t.edges_garbage <- 0

let[@inline] reserve_edges t need =
  if t.edges_len + need > Array.length t.edges then rebuild_edges t need

let[@inline never] grow_ref t id =
  let ncap =
    let c = t.ref_cap.(id) in
    if c = 0 then 4 else c * 2
  in
  reserve_edges t ncap;
  (* re-read after a possible rebuild *)
  let off = t.ref_off.(id)
  and len = t.ref_len.(id)
  and cap = t.ref_cap.(id) in
  let noff = t.edges_len in
  Array.blit t.edges off t.edges noff len;
  t.edges_len <- noff + ncap;
  t.ref_off.(id) <- noff;
  t.ref_cap.(id) <- ncap;
  t.edges_garbage <- t.edges_garbage + cap

let[@inline] push_ref t id x =
  if t.ref_len.(id) = t.ref_cap.(id) then grow_ref t id;
  let len = t.ref_len.(id) in
  t.edges.(t.ref_off.(id) + len) <- x;
  t.ref_len.(id) <- len + 1

let[@inline] ref_count t id = t.ref_len.(id)

let[@inline] ref_at t id i = t.edges.(t.ref_off.(id) + i)

let iter_refs t id f =
  let off = t.ref_off.(id) in
  let edges = t.edges in
  for i = off to off + t.ref_len.(id) - 1 do
    f edges.(i)
  done

let refs_array t id = Array.sub t.edges t.ref_off.(id) t.ref_len.(id)

let refs_list t id = Array.to_list (refs_array t id)

(* --- references and the young-ref counter ----------------------------- *)

(* [yrefv] counts outgoing references whose target currently sits in a
   young space.  It is maintained exactly by the mutator-facing
   operations below; collectors re-derive it with {!recount_young_refs}
   for the objects whose children may have moved or died during a
   collection (targets never change space between collections, so the
   counter stays exact in steady state). *)

let add_ref t ~from ~to_ =
  check_live t from;
  check_live t to_;
  if t.locv.(to_) <= code_survivor then t.yrefv.(from) <- t.yrefv.(from) + 1;
  push_ref t from to_

let remove_ref t ~from ~to_ =
  check_live t from;
  let off = t.ref_off.(from) and n = t.ref_len.(from) in
  let edges = t.edges in
  let rec find i =
    if i >= n then -1 else if edges.(off + i) = to_ then i else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    edges.(off + i) <- edges.(off + n - 1);
    t.ref_len.(from) <- n - 1;
    if to_ >= 0 && to_ < t.slot_count && t.locv.(to_) <= code_survivor then
      t.yrefv.(from) <- t.yrefv.(from) - 1
  end

let clear_refs t id =
  check_live t id;
  t.ref_len.(id) <- 0;
  t.yrefv.(id) <- 0

let set_refs t id refs =
  check_live t id;
  let n = Array.length refs in
  if n > t.ref_cap.(id) then begin
    reserve_edges t n;
    let abandoned = t.ref_cap.(id) in
    t.ref_off.(id) <- t.edges_len;
    t.ref_cap.(id) <- n;
    t.edges_len <- t.edges_len + n;
    t.edges_garbage <- t.edges_garbage + abandoned
  end;
  t.ref_len.(id) <- 0;
  t.yrefv.(id) <- 0;
  let off = t.ref_off.(id) in
  for i = 0 to n - 1 do
    let r = refs.(i) in
    check_live t r;
    t.edges.(off + i) <- r;
    t.ref_len.(id) <- i + 1;
    if t.locv.(r) <= code_survivor then t.yrefv.(id) <- t.yrefv.(id) + 1
  done

let recount_young_refs t id =
  let off = t.ref_off.(id) in
  let edges = t.edges and locv = t.locv in
  let n = ref 0 in
  for i = off to off + t.ref_len.(id) - 1 do
    if locv.(edges.(i)) <= code_survivor then incr n
  done;
  t.yrefv.(id) <- !n

(* --- live-id iteration ------------------------------------------------ *)

(* The live list makes these O(live), not O(capacity): a heap that has
   shrunk does not pay for its peak.  Iteration sorts a copy — ids
   ascending is the order the O(capacity) scan gave, and downstream
   consumers (G1's remembered-set rebuild) depend on it. *)

let[@inline] live_count t = Ivec.length t.live_list

let sorted_live t =
  let a = Ivec.to_array t.live_list in
  Array.sort (fun (x : int) y -> compare x y) a;
  a

let live_ids t =
  let a = sorted_live t in
  let acc = Ivec.create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (fun id -> Ivec.push acc id) a;
  acc

let iter_live t f = Array.iter f (sorted_live t)

let[@inline] capacity t = t.slot_count

(* --- trace kernel ------------------------------------------------------

   [finish_trace] runs a trace to closure from an already-seeded stack:
   pop a vertex, scan its references, and mark/push every unmarked child
   the predicate admits.  Every artifact in the goldens depends on the
   exact discovery order of this loop — survivor-budget overflow,
   evacuation bump-packing, free-slot recycling and remembered-set bucket
   orders all descend from it — so the parallel path must reproduce it
   bit for bit.

   Determinism contract: worker domains never mark.  They compute the
   *speculative closure* — a superset-free cache of each reachable
   vertex's predicate-filtered child list, claimed via a separate stamp
   column — and the marking automaton then replays sequentially over the
   cached lists in exactly the order the sequential loop would have used.
   Child lists preserve reference order; a vertex scanned twice (claim
   races are benign: both writers record the same list contents) gets
   whichever single-word descriptor lands last.  Marks, the marked
   vector, and everything downstream are byte-identical at any worker
   count, including zero. *)

type trace_pred = Trace_young | Trace_live | Trace_regions of bool array

(* Packed scan descriptor: arena offset | filtered-child count | owner. *)
let desc_owner_bits = 8
let desc_len_bits = 20
let desc_owner_mask = (1 lsl desc_owner_bits) - 1
let desc_len_mask = (1 lsl desc_len_bits) - 1
let desc_len_shift = desc_owner_bits
let desc_off_shift = desc_owner_bits + desc_len_bits

let sequential_finish t ~pred ~marked ~stack =
  let edges = t.edges
  and ref_off = t.ref_off
  and ref_len = t.ref_len
  and markv = t.markv
  and locv = t.locv
  and ep = t.epoch in
  (* Unsafe accesses: [v] comes off the stack (a live id below every
     column's length) and [c] out of the edge arena, whose entries are
     ids the store itself wrote. *)
  while not (Ivec.is_empty stack) do
    let v = Ivec.unsafe_pop stack in
    let off = Array.unsafe_get ref_off v in
    for i = off to off + Array.unsafe_get ref_len v - 1 do
      let c = Array.unsafe_get edges i in
      let admit =
        match pred with
        | Trace_young -> Array.unsafe_get locv c <= code_survivor
        | Trace_live -> Array.unsafe_get locv c <> code_nowhere
        | Trace_regions rs ->
            let l = Array.unsafe_get locv c in
            l >= region_base && rs.(l - region_base)
      in
      if admit && Array.unsafe_get markv c <> ep then begin
        Array.unsafe_set markv c ep;
        Ivec.push marked c;
        Ivec.push stack c
      end
    done
  done

let ensure_scan t slots =
  if Array.length t.scan_stamp < Array.length t.sizev then begin
    (* Fresh zero arrays suffice: epoch stamps are monotonically above 0,
       and descriptors are garbage until stamped. *)
    t.scan_stamp <- Array.make (Array.length t.sizev) 0;
    t.scan_desc <- Array.make (Array.length t.sizev) 0
  end;
  if Array.length t.scan_bufs < slots then begin
    let extend old =
      Array.init slots (fun i ->
          if i < Array.length old then old.(i) else buf_create ())
    in
    t.scan_bufs <- extend t.scan_bufs;
    t.scan_outs <- extend t.scan_outs
  end

let scan_block = 64

(* Phase 1: compute the speculative closure in parallel.  Returns false
   when the crew is unavailable (another domain holds it) and the caller
   must fall back to the sequential loop. *)
let speculative_scan t ~pred ~stack ~domains =
  Crew.try_with ~domains (fun crew ->
      let slots = Crew.size crew in
      ensure_scan t slots;
      let ep = t.epoch in
      let stamp = t.scan_stamp
      and desc = t.scan_desc
      and bufs = t.scan_bufs
      and outs = t.scan_outs
      and edges = t.edges
      and ref_off = t.ref_off
      and ref_len = t.ref_len
      and locv = t.locv in
      for i = 0 to slots - 1 do
        bufs.(i).n <- 0
      done;
      let cur = ref t.frontier_a and nxt = ref t.frontier_b in
      (!cur).n <- 0;
      Ivec.iter
        (fun v ->
          stamp.(v) <- ep;
          buf_push !cur v)
        stack;
      let cursor = Atomic.make 0 in
      while (!cur).n > 0 do
        let fdata = (!cur).a and flen = (!cur).n in
        for i = 0 to slots - 1 do
          outs.(i).n <- 0
        done;
        Atomic.set cursor 0;
        Crew.run crew (fun slot ->
            if slot < slots then begin
              let arena = bufs.(slot) and out = outs.(slot) in
              let more = ref true in
              while !more do
                let b = Atomic.fetch_and_add cursor scan_block in
                if b >= flen then more := false
                else begin
                  let hi = min flen (b + scan_block) in
                  for fi = b to hi - 1 do
                    let v = fdata.(fi) in
                    let off = ref_off.(v) in
                    let off0 = arena.n in
                    for e = off to off + ref_len.(v) - 1 do
                      let c = edges.(e) in
                      let admit =
                        match pred with
                        | Trace_young -> locv.(c) <= code_survivor
                        | Trace_live -> locv.(c) <> code_nowhere
                        | Trace_regions rs ->
                            let l = locv.(c) in
                            l >= region_base && rs.(l - region_base)
                      in
                      if admit then begin
                        buf_push arena c;
                        if stamp.(c) <> ep then begin
                          stamp.(c) <- ep;
                          buf_push out c
                        end
                      end
                    done;
                    let run = arena.n - off0 in
                    assert (run <= desc_len_mask);
                    desc.(v) <-
                      (off0 lsl desc_off_shift)
                      lor (run lsl desc_len_shift)
                      lor slot
                  done
                end
              done
            end);
        (* Barrier passed: merge the per-worker discoveries into the next
           frontier.  Claim races mean a vertex can appear in two outputs
           and be re-scanned next round; both scans record identical
           child lists, so the descriptor race is benign. *)
        (!nxt).n <- 0;
        for i = 0 to slots - 1 do
          let o = outs.(i) in
          for j = 0 to o.n - 1 do
            buf_push !nxt o.a.(j)
          done
        done;
        let tmp = !cur in
        cur := !nxt;
        nxt := tmp
      done)

(* Phase 2: the sequential marking automaton, reading cached filtered
   child lists instead of the CSR slices.  Identical pop/scan/mark order
   to [sequential_finish] — the predicate was already applied per child
   during the scan and locations cannot change mid-trace. *)
let replay t ~marked ~stack =
  let desc = t.scan_desc
  and bufs = t.scan_bufs
  and markv = t.markv
  and ep = t.epoch in
  while not (Ivec.is_empty stack) do
    let v = Ivec.unsafe_pop stack in
    let d = Array.unsafe_get desc v in
    let owner = d land desc_owner_mask in
    let len = (d lsr desc_len_shift) land desc_len_mask in
    let off = d lsr desc_off_shift in
    let a = (Array.unsafe_get bufs owner).a in
    for i = off to off + len - 1 do
      let c = Array.unsafe_get a i in
      if Array.unsafe_get markv c <> ep then begin
        Array.unsafe_set markv c ep;
        Ivec.push marked c;
        Ivec.push stack c
      end
    done
  done

let finish_trace t ~pred ~marked ~stack ~domains =
  if
    domains > 1
    && Ivec.length stack >= Atomic.get par_threshold
    && speculative_scan t ~pred ~stack ~domains
  then replay t ~marked ~stack
  else sequential_finish t ~pred ~marked ~stack

(* --- relocation kernel -------------------------------------------------

   [finish_relocate] is the move half of a two-phase relocation,
   mirroring [finish_trace]'s split.  Phase A (plan) happens in the
   collector: walking survivors in deterministic trace order it decides
   destinations — bump-packing, budget checks, registry pushes and used
   accounting are inherently ordered and stay sequential — and records
   each object's target location code and age with {!plan_push}.  Phase B
   (move) is this kernel: the recorded writes are applied to the [locv]
   and [agev] columns, slab-parallel above [par_move_threshold] when the
   crew is free.  Slabs are contiguous plan ranges and each object id
   appears at most once in a plan, so workers write disjoint column cells
   and the heap state after the move is byte-identical to the sequential
   loop at any worker count. *)

let[@inline never] grow_plan t =
  let cap = Array.length t.plan_ids in
  let ncap = if cap = 0 then 256 else cap * 2 in
  let extend col =
    let nd = Array.make ncap 0 in
    Array.blit col 0 nd 0 t.plan_n;
    nd
  in
  t.plan_ids <- extend t.plan_ids;
  t.plan_code <- extend t.plan_code;
  t.plan_age <- extend t.plan_age

let[@inline] plan_clear t = t.plan_n <- 0
let[@inline] plan_length t = t.plan_n

let[@inline] plan_push_code t id code age =
  let n = t.plan_n in
  if n = Array.length t.plan_ids then grow_plan t;
  t.plan_ids.(n) <- id;
  t.plan_code.(n) <- code;
  t.plan_age.(n) <- age;
  t.plan_n <- n + 1

let[@inline] plan_push t id ~loc ~age = plan_push_code t id (code_of_loc loc) age
let[@inline] plan_push_old t id ~age = plan_push_code t id code_old age
let[@inline] plan_push_survivor t id ~age = plan_push_code t id code_survivor age
let[@inline] plan_push_eden t id ~age = plan_push_code t id code_eden age

let[@inline] plan_push_region t id ~region ~age =
  plan_push_code t id (region_base + region) age

let[@inline] apply_plan_range t lo hi =
  let ids = t.plan_ids and code = t.plan_code and age = t.plan_age in
  let locv = t.locv and agev = t.agev in
  for i = lo to hi - 1 do
    let id = Array.unsafe_get ids i in
    Array.unsafe_set locv id (Array.unsafe_get code i);
    Array.unsafe_set agev id (Array.unsafe_get age i)
  done

let finish_relocate t ~domains =
  let n = t.plan_n in
  let par =
    domains > 1
    && n >= Atomic.get move_threshold
    && Crew.try_with ~domains (fun crew ->
           let slots = Crew.size crew in
           let chunk = (n + slots - 1) / slots in
           Crew.run crew (fun slot ->
               let lo = slot * chunk in
               let hi = min n (lo + chunk) in
               if lo < hi then apply_plan_range t lo hi))
  in
  if not par then apply_plan_range t 0 n;
  t.plan_n <- 0;
  n

(* --- batch sweep kernels -----------------------------------------------

   Column-direct equivalents of the per-object free loops in the
   collectors.  Visit order, keep order and [free_slots] push order are
   exactly those of the closure-per-id originals; the win is skipping the
   per-id closure call and the re-checked column loads. *)

(* [filter_in_place] for a young registry: keep young+marked ids, free
   young+unmarked ids (accumulating their bytes), drop the rest (objects
   promoted out of the young spaces).  Returns the freed byte count. *)
let sweep_young_registry t v =
  let locv = t.locv and markv = t.markv and sizev = t.sizev in
  let ep = t.epoch in
  let freed = ref 0 in
  let j = ref 0 in
  let n = Ivec.length v in
  for i = 0 to n - 1 do
    let id = Ivec.unsafe_get v i in
    if Array.unsafe_get locv id <= code_survivor then
      if Array.unsafe_get markv id = ep then begin
        Ivec.unsafe_set v !j id;
        incr j
      end
      else begin
        freed := !freed + Array.unsafe_get sizev id;
        free_unchecked t id
      end
  done;
  Ivec.truncate v !j;
  !freed

(* Full-collection sweep over a registry: free every still-present
   unmarked id, leave the registry itself untouched (the caller compacts
   it afterwards).  Returns the freed byte count. *)
let sweep_dead t v =
  let locv = t.locv and markv = t.markv and sizev = t.sizev in
  let ep = t.epoch in
  let freed = ref 0 in
  let n = Ivec.length v in
  for i = 0 to n - 1 do
    let id = Ivec.unsafe_get v i in
    if
      Array.unsafe_get locv id <> code_nowhere
      && Array.unsafe_get markv id <> ep
    then begin
      freed := !freed + Array.unsafe_get sizev id;
      free_unchecked t id
    end
  done;
  !freed

(* --- forwarding table (pauseless concurrent relocation) ----------------

   The concurrent region collector moves objects while mutators run; a
   moved object gets a forwarding entry, and every mutator reference
   load runs a load barrier: forwarded and not yet healed means the
   reader takes the slow path once, remaps the referencing slot
   (self-healing) and never pays again for that object.  The remap flip
   heals whatever the mutators did not touch.  Entries are epoch stamps:
   [fwd_begin] invalidates the whole table in O(1). *)

let[@inline never] grow_fwd t =
  let cap = max 64 (Array.length t.sizev) in
  let ext col =
    let nd = Array.make cap 0 in
    Array.blit col 0 nd 0 (Array.length col);
    nd
  in
  t.fwd_stampv <- ext t.fwd_stampv;
  t.fwd_healv <- ext t.fwd_healv

let fwd_begin t =
  if Array.length t.fwd_stampv < t.slot_count then grow_fwd t;
  t.fwd_epoch <- t.fwd_epoch + 1;
  Ivec.clear t.fwd_ids;
  t.fwd_pending <- 0;
  t.fwd_hits <- 0

let fwd_record t id =
  check t id;
  if Array.length t.fwd_stampv <= id then grow_fwd t;
  if t.fwd_stampv.(id) <> t.fwd_epoch then begin
    t.fwd_stampv.(id) <- t.fwd_epoch;
    Ivec.push t.fwd_ids id;
    t.fwd_pending <- t.fwd_pending + 1
  end

let[@inline] fwd_is_forwarded t id =
  id >= 0
  && id < Array.length t.fwd_stampv
  && Array.unsafe_get t.fwd_stampv id = t.fwd_epoch
  && Array.unsafe_get t.fwd_healv id <> t.fwd_epoch

let fwd_read t id =
  if fwd_is_forwarded t id then begin
    t.fwd_healv.(id) <- t.fwd_epoch;
    t.fwd_pending <- t.fwd_pending - 1;
    t.fwd_hits <- t.fwd_hits + 1;
    true
  end
  else false

let fwd_pending t = t.fwd_pending
let fwd_hits t = t.fwd_hits
let fwd_count t = Ivec.length t.fwd_ids

let fwd_heal_all t =
  let healed = ref 0 in
  Ivec.iter
    (fun id ->
      if t.fwd_healv.(id) <> t.fwd_epoch then begin
        t.fwd_healv.(id) <- t.fwd_epoch;
        incr healed
      end)
    t.fwd_ids;
  t.fwd_pending <- 0;
  Ivec.clear t.fwd_ids;
  !healed

(* Debug/bench introspection. *)
let edges_capacity t = Array.length t.edges
let edges_garbage t = t.edges_garbage
