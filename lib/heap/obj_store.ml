module Vec = Gcperf_util.Vec

type location = Eden | Survivor | Old | Region of int | Nowhere

type obj = {
  id : int;
  mutable size : int;
  mutable loc : location;
  mutable age : int;
  mutable marked : bool;
  mutable refs : int Vec.t;
}

type t = {
  slots : obj Vec.t;
  free_slots : int Vec.t;
  mutable live : int;
}

let create () = { slots = Vec.create (); free_slots = Vec.create (); live = 0 }

let alloc t ~size ~loc =
  assert (size > 0);
  t.live <- t.live + 1;
  if Vec.is_empty t.free_slots then begin
    let id = Vec.length t.slots in
    let o = { id; size; loc; age = 0; marked = false; refs = Vec.create () } in
    Vec.push t.slots o;
    id
  end
  else begin
    let id = Vec.pop t.free_slots in
    let o = Vec.get t.slots id in
    o.size <- size;
    o.loc <- loc;
    o.age <- 0;
    o.marked <- false;
    Vec.clear o.refs;
    id
  end

let get t id =
  let o = Vec.get t.slots id in
  if o.loc = Nowhere then invalid_arg "Obj_store.get: stale id";
  o

let is_live t id =
  id >= 0 && id < Vec.length t.slots && (Vec.get t.slots id).loc <> Nowhere

let free t id =
  let o = Vec.get t.slots id in
  if o.loc = Nowhere then invalid_arg "Obj_store.free: double free";
  o.loc <- Nowhere;
  o.marked <- false;
  Vec.clear o.refs;
  t.live <- t.live - 1;
  Vec.push t.free_slots id

let add_ref t ~from ~to_ =
  let o = get t from in
  ignore (get t to_);
  Vec.push o.refs to_

let remove_ref t ~from ~to_ =
  let o = get t from in
  let removed = ref false in
  Vec.filter_in_place
    (fun r ->
      if (not !removed) && r = to_ then begin
        removed := true;
        false
      end
      else true)
    o.refs

let set_refs t id refs =
  let o = get t id in
  Vec.clear o.refs;
  List.iter
    (fun r ->
      ignore (get t r);
      Vec.push o.refs r)
    refs

let live_count t = t.live

let live_ids t =
  let acc = ref [] in
  for i = Vec.length t.slots - 1 downto 0 do
    if (Vec.get t.slots i).loc <> Nowhere then acc := i :: !acc
  done;
  !acc

let iter_live t f =
  Vec.iter (fun o -> if o.loc <> Nowhere then f o) t.slots

let capacity t = Vec.length t.slots
