(** Region-based heap layout (G1).

    The heap is divided into equally-sized regions; any region can play the
    role of eden, survivor, old or humongous space, as in Garbage-First.
    Each region keeps a remembered set over-approximating the set of
    objects outside the region that reference into it, which is what makes
    collecting an arbitrary subset of regions possible. *)

type region_kind = Free | Eden | Survivor | Old_region | Humongous

type region = {
  idx : int;
  mutable kind : region_kind;
  mutable used : int;
  objects : Gcperf_util.Int_vec.t;
      (** ids of objects in the region; may contain stale entries *)
  remset : (int, unit) Hashtbl.t;
      (** external object ids with references into this region *)
  mutable live_bytes : int;
      (** liveness estimate from the last concurrent marking *)
  mutable hum_len : int;
      (** for the head region of a humongous group: number of regions in
          the group (including the head); 0 otherwise *)
}

type t = {
  store : Obj_store.t;
  heap_bytes : int;
  region_size : int;
  regions : region array;
  mutable current_alloc : int;  (** region currently bump-allocated, or -1 *)
  mutable free_count : int;
      (** number of [Free] regions, maintained incrementally so
          {!free_regions} is O(1) on the allocation path *)
  free_bits : Gcperf_util.Bitset.t;
      (** membership mirror of the [Free] regions; the allocator's
          lowest-index find-first is a word scan, not a table walk *)
  mutable young_target_bytes : int;
      (** eden bytes that accumulate before a young collection — the knob
          the adaptive sizing policy turns; owned by the G1 collector *)
  mutable allocated_bytes : int;
  mutable promoted_bytes : int;
}

val create : Obj_store.t -> heap_bytes:int -> ?target_regions:int -> unit -> t
(** Region size is [heap_bytes / target_regions] (default 1024 regions),
    clamped to HotSpot's 1 MB - 32 MB range. *)

val region_of : t -> int -> region
(** The region holding the object with the given id.
    @raise Invalid_argument if the object is not region-allocated. *)

val count_kind : t -> region_kind -> int

val used_of_kind : t -> region_kind -> int

val used_young : t -> int
(** Eden plus survivor occupancy, in one pass over the region table. *)

val used_old_hum : t -> int
(** Old plus humongous occupancy, in one pass over the region table. *)

val free_regions : t -> int

val heap_used : t -> int

val set_young_target : t -> bytes:int -> int
(** Adjusts {!t.young_target_bytes}, clamped to [one region size, heap
    minus an evacuation reserve of max(2, regions/10) regions].  Returns
    the target actually in effect. *)

val young_target_regions : t -> int
(** The current young target expressed in regions (rounded up). *)

val take_free_region : t -> region_kind -> region option
(** Claims a free region for the given role. *)

val alloc_young : t -> size:int -> int option
(** Bump-allocates in the current eden region, claiming a new free region
    when the current one is full.  [None] when no free region is left
    ([size] must fit a single region; bigger objects are humongous). *)

val alloc_humongous : t -> size:int -> int option
(** Allocates a humongous object spanning [ceil(size/region_size)]
    dedicated {e contiguous} regions, as G1 requires.  [None] if no
    contiguous run of free regions is long enough. *)

val release_humongous : t -> int -> unit
(** [release_humongous t id] frees the humongous object [id] and returns
    every region of its group to the free pool. *)

val alloc_in_region : t -> region -> size:int -> int option
(** Bump allocation into a specific region (used for evacuation targets);
    [None] if it does not fit. *)

val is_humongous : t -> size:int -> bool
(** HotSpot rule: an object of more than half a region is humongous. *)

val record_store : t -> parent:int -> child:int -> unit
(** Write barrier: adds the reference and updates the target region's
    remembered set when the edge crosses regions. *)

val remove_store : t -> parent:int -> child:int -> unit

val release_region : t -> region -> unit
(** Frees every remaining object in the region and returns it to the free
    pool (the region's evacuation has completed). *)

val retire_region : t -> region -> unit
(** Returns the region to the free pool {e without} freeing its objects
    (used when a compaction has already moved them out). *)

val compact_region_objects : t -> region -> unit
(** Drops stale object ids from the region's registry. *)

val eden_regions : t -> region list

val young_regions : t -> region list
(** Eden plus survivor regions. *)

val check_invariants : t -> (unit, string) result
(** Region accounting matches object locations; regions' used bytes do not
    exceed the region size; free regions are empty. *)
