(** Generational heap layout (all collectors except G1).

    The heap is split into a young generation (an eden plus two survivor
    semi-spaces) and an old generation, exactly as in HotSpot.  This module
    owns the space accounting, the registries of young and old object ids,
    and the card table that tracks old objects possibly holding references
    into the young generation.

    The record type is exposed: the collector implementations in
    [gcperf.gc] are co-designed with this module and manipulate the
    accounting directly while collecting. *)

type t = {
  store : Obj_store.t;
  heap_bytes : int;  (** total committed heap *)
  young_bytes : int;  (** eden + both survivor spaces *)
  eden_cap : int;
  survivor_cap : int;  (** capacity of one survivor space *)
  old_cap : int;
  mutable eden_used : int;
  mutable survivor_used : int;  (** occupancy of the from-space *)
  mutable old_used : int;
  mutable tenuring_threshold : int;
      (** collections an object must survive before promotion *)
  young_ids : int Gcperf_util.Vec.t;
      (** ids of objects allocated young; may contain stale entries, which
          collectors filter while walking *)
  old_ids : int Gcperf_util.Vec.t;
  dirty_cards : (int, unit) Hashtbl.t;
      (** card table: old-generation objects that may reference young ones;
          a conservative over-approximation, cleared by each young scan *)
  mutable allocated_bytes : int;  (** cumulative bytes ever allocated *)
  mutable promoted_bytes : int;  (** cumulative bytes ever promoted *)
}

val create :
  Obj_store.t ->
  heap_bytes:int ->
  young_bytes:int ->
  ?survivor_ratio:int ->
  ?tenuring_threshold:int ->
  unit ->
  t
(** [survivor_ratio] is eden/survivor as in HotSpot's [-XX:SurvivorRatio]
    (default 8, i.e. eden = 8/10 of young, each survivor space 1/10).
    @raise Invalid_argument if [young_bytes > heap_bytes]. *)

val is_young : Obj_store.location -> bool

val young_used : t -> int

val heap_used : t -> int

val eden_free : t -> int

val old_free : t -> int

val alloc_eden : t -> size:int -> int option
(** Bump allocation in eden; [None] on allocation failure (eden full). *)

val alloc_old_direct : t -> size:int -> int option
(** Direct old-generation allocation, used for objects too large for the
    young generation; [None] if the old generation cannot fit it. *)

val record_store : t -> parent:int -> child:int -> unit
(** Write barrier: adds the reference [parent -> child] and dirties the
    parent's card when [parent] is old and [child] young. *)

val remove_store : t -> parent:int -> child:int -> unit
(** Removes one [parent -> child] reference (mutator overwrote a field). *)

val compact_registries : t -> unit
(** Drops stale ids from the young/old registries so their length again
    reflects the number of live objects. *)

val check_invariants : t -> (unit, string) result
(** Verifies space accounting against the object store: used bytes per
    space equal the sum of the sizes of the objects located there, and no
    object exceeds its space capacity.  Used by the test suite. *)
