(** Generational heap layout (all collectors except G1).

    The heap is split into a young generation (an eden plus two survivor
    semi-spaces) and an old generation, exactly as in HotSpot.  This module
    owns the space accounting, the registries of young and old object ids,
    and the remembered set tracking old objects that hold references into
    the young generation.

    The remembered set is maintained incrementally: the store counts young
    targets per object ({!Obj_store.young_refs}, updated by the write
    barrier), and membership is a compact id vector plus a bitset, with a
    hash-table mirror providing the iteration order (see {!iter_dirty}).
    Like a hardware card table, a card stays dirty until a collection
    cleans it; {!refresh_cards} restores exactness after every young
    collection from the counters, and {!rebuild_cards} re-derives the set
    after a full collection.

    The record type is exposed: the collector implementations in
    [gcperf.gc] are co-designed with this module and manipulate the
    accounting directly while collecting. *)

type t = {
  store : Obj_store.t;
  heap_bytes : int;  (** total committed heap *)
  mutable young_bytes : int;  (** eden + both survivor spaces *)
  mutable eden_cap : int;
  mutable survivor_cap : int;  (** capacity of one survivor space *)
  mutable old_cap : int;
  mutable survivor_ratio : int;  (** eden/survivor ratio of the current layout *)
  mutable eden_used : int;
  mutable survivor_used : int;  (** occupancy of the from-space *)
  mutable old_used : int;
  mutable tenuring_threshold : int;
      (** collections an object must survive before promotion *)
  young_ids : Gcperf_util.Int_vec.t;
      (** ids of objects allocated young; may contain stale entries, which
          collectors filter while walking *)
  old_ids : Gcperf_util.Int_vec.t;
  dirty_ids : Gcperf_util.Int_vec.t;
      (** remembered set: ids of old objects that may reference young ones,
          in first-dirtied order; dead or no-longer-old entries are
          filtered by {!iter_dirty}, entries without remaining young refs
          stay dirty until the next {!refresh_cards} (card-table
          semantics) *)
  dirty_bits : Gcperf_util.Bitset.t;
      (** membership bitset over [dirty_ids] (duplicate suppression) *)
  dirty_tbl : (int, unit) Hashtbl.t;
      (** mirror of the same membership; its bucket order is the
          remembered-set iteration order (kept so simulated results stay
          bit-for-bit with the original hash-table remembered set) *)
  mutable allocated_bytes : int;  (** cumulative bytes ever allocated *)
  mutable promoted_bytes : int;  (** cumulative bytes ever promoted *)
  mark_list : Gcperf_util.Int_vec.t;
      (** scratch: ids marked by the current trace *)
  trace_stack : Gcperf_util.Int_vec.t;  (** scratch: trace work list *)
  promote_scratch : Gcperf_util.Int_vec.t;
      (** scratch: ids picked for promotion *)
  keep_scratch : Gcperf_util.Int_vec.t;
      (** scratch: ids kept in the survivor space *)
  recheck_scratch : Gcperf_util.Int_vec.t;
      (** scratch: previous dirty entries during {!refresh_cards} *)
  mutable age_bytes : int array;
      (** scratch: surviving bytes per age, for adaptive tenuring *)
}
(** The scratch vectors let the collection algorithms run allocation-free
    in steady state; their contents are only meaningful while a collection
    is in progress. *)

val create :
  Obj_store.t ->
  heap_bytes:int ->
  young_bytes:int ->
  ?survivor_ratio:int ->
  ?tenuring_threshold:int ->
  unit ->
  t
(** [survivor_ratio] is eden/survivor as in HotSpot's [-XX:SurvivorRatio]
    (default 8, i.e. eden = 8/10 of young, each survivor space 1/10).
    @raise Invalid_argument if [young_bytes > heap_bytes]. *)

val is_young : Obj_store.location -> bool

val young_used : t -> int

val heap_used : t -> int

val eden_free : t -> int

val old_free : t -> int

val resize_young : t -> young_bytes:int -> survivor_ratio:int -> int * int
(** Moves the young/old boundary and survivor split without moving any
    object: the request is rounded up until the current eden, survivor and
    old occupancy all still fit their new capacities (and refused outright
    if no such layout exists, leaving the heap unchanged).  Returns the
    [(young_bytes, survivor_ratio)] actually in effect afterwards.  Only
    safe between collections — the adaptive sizing policy calls it at
    safepoints. *)

val alloc_eden : t -> size:int -> int option
(** Bump allocation in eden; [None] on allocation failure (eden full). *)

val alloc_eden_id : t -> size:int -> int
(** [alloc_eden] without the option: [-1] on allocation failure.  The
    per-allocation hot path uses this to avoid boxing an option per
    object. *)

val alloc_old_direct : t -> size:int -> int option
(** Direct old-generation allocation, used for objects too large for the
    young generation; [None] if the old generation cannot fit it. *)

val record_store : t -> parent:int -> child:int -> unit
(** Write barrier: adds the reference [parent -> child], bumps the
    parent's young-ref counter when [child] is young, and dirties the card
    of an old [parent] storing a young [child]. *)

val remove_store : t -> parent:int -> child:int -> unit
(** Removes one [parent -> child] reference (mutator overwrote a field);
    decrements the young-ref counter when [child] is young.  The card is
    NOT cleaned — as with a hardware card table, only collections clean
    cards ({!refresh_cards}). *)

val iter_dirty : t -> (int -> unit) -> unit
(** Iterates the remembered set's ids in hash-table bucket order, skipping dead
    and no-longer-old entries.  Entries whose young refs were since
    removed by the mutator are still visited (their scan finds nothing
    young), as with real card scanning. *)

val card_is_dirty : t -> int -> bool
(** Whether the id is a present, live, old remembered-set entry. *)

val dirty_count : t -> int
(** Number of entries {!card_is_dirty} accepts.  O(entries); test/debug
    use. *)

val dirty_live_bytes : t -> int
(** Total size of the live remembered-set entries, whatever space they now
    occupy (a dead entry's id can be recycled before the next refresh and
    is then scanned again) — the bytes a remark pause charges for card
    scanning. *)

val refresh_cards : t -> extra:Gcperf_util.Int_vec.t -> unit
(** Post-young-collection remembered-set maintenance: re-derives the
    young-ref counters of all current entries plus the [extra] candidates
    (freshly promoted objects), dropping entries without live young refs.
    Only these objects can have gained or lost young refs during a young
    collection, so this replaces any whole-heap rebuild. *)

val rebuild_cards : t -> unit
(** Post-full-collection remembered-set derivation: recomputes membership
    from the whole old registry (a full collection moves arbitrary objects
    into the old generation, so the incremental argument above does not
    apply). *)

val compact_registries : t -> unit
(** Drops stale ids from the young/old registries so their length again
    reflects the number of live objects. *)

val compact_old_ids : t -> unit
(** The old-registry half of {!compact_registries}, for collections that
    maintain the young registry themselves while sweeping. *)

val check_invariants : t -> (unit, string) result
(** Verifies space accounting against the object store: used bytes per
    space equal the sum of the sizes of the objects located there, and no
    object exceeds its space capacity.  Used by the test suite. *)
