(** Simulated object store.

    Every simulated heap object lives in this arena.  An object carries the
    attributes the collectors need — size in (simulated) bytes, age in
    survived collections, location, mark stamp and outgoing references — and
    is identified by a dense integer id so collectors can use flat arrays
    and vectors for work lists.

    An object here stands for a {e cluster} of real Java objects allocated
    together (see DESIGN.md §6, "scale factor"): sizes are real bytes, so a
    64 GB heap holds on the order of 10^5 clusters instead of 10^9 objects,
    while tracing, copying and promotion still operate on a genuine object
    graph. *)

type location =
  | Eden
  | Survivor
  | Old
  | Region of int  (** G1 region index *)
  | Nowhere  (** free slot *)

type obj = {
  id : int;
  mutable size : int;
  mutable loc : location;
  mutable age : int;
  mutable mark_epoch : int;
      (** epoch stamp; the object is marked iff this equals the store's
          current trace epoch (see {!begin_trace}) *)
  mutable young_refs : int;
      (** outgoing references currently targeting a young-space object;
          maintained by {!add_ref}/{!remove_ref}/{!set_refs} and re-derived
          by collectors via {!recount_young_refs} after objects move *)
  mutable refs : Gcperf_util.Int_vec.t;  (** outgoing references (object ids) *)
}

type t

val create : unit -> t

val is_young_loc : location -> bool
(** Whether the location is a young space (eden or survivor). *)

val is_old_loc : location -> bool
(** Whether the location is the contiguous old generation.  A pattern
    match, unlike [loc = Old] which would be a generic compare. *)

val is_nowhere_loc : location -> bool
(** Whether the location marks a freed slot. *)

val begin_trace : t -> unit
(** Starts a new trace epoch.  Marks from earlier traces become stale
    implicitly — there is no clearing pass. *)

val mark : t -> obj -> unit
(** Stamps the object with the current trace epoch. *)

val is_marked : t -> obj -> bool
(** Whether the object was marked during the current trace epoch. *)

val unmark : obj -> unit
(** Clears the object's stamp (rarely needed; collections normally rely on
    epoch staleness instead). *)

val alloc : t -> size:int -> loc:location -> int
(** Allocates a fresh object (recycling a free slot when possible) and
    returns its id.  The object starts with age 0, unmarked, no refs. *)

val get : t -> int -> obj
(** @raise Invalid_argument on a stale or out-of-range id. *)

val slot : t -> int -> obj
(** [slot t id] fetches the slot without a liveness check: the result may
    be a freed slot, signalled by [loc = Nowhere].  One fetch instead of
    the [is_live]-then-[get] pair — for trace loops.
    @raise Invalid_argument if [id] is outside the slot table. *)

val is_live : t -> int -> bool
(** Whether the id denotes a currently-allocated object. *)

val free : t -> int -> unit
(** Returns the object's slot to the free pool.  The id becomes stale.
    Raises [Invalid_argument] on an id that is already free. *)

val free_obj : t -> obj -> unit
(** {!free} through an already-fetched slot: sweep loops that hold the
    object skip the second table lookup. *)

val add_ref : t -> from:int -> to_:int -> unit

val remove_ref : t -> from:int -> to_:int -> unit
(** Removes one occurrence in O(found position) by swapping with the last
    entry; no-op if absent.  Reference order is not preserved. *)

val set_refs : t -> int -> int list -> unit

val recount_young_refs : t -> obj -> unit
(** Recomputes [young_refs] from the object's current references and their
    targets' current locations (dead targets count as not-young). *)

val live_count : t -> int

val live_ids : t -> Gcperf_util.Int_vec.t
(** Ids of all live objects, ascending, as a fresh vector.  O(capacity);
    test/debug use. *)

val iter_live : t -> (obj -> unit) -> unit

val capacity : t -> int
(** Total slots ever allocated (live + recyclable). *)
