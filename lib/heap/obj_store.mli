(** Simulated object store, struct-of-arrays layout.

    Every simulated heap object lives in this arena, identified by a
    dense integer id.  Attributes are parallel unboxed int-array columns
    (size, age, location code, mark epoch, young-ref count) and outgoing
    references are CSR slices — per-object offset/length into one shared
    edge arena — so the collectors' hot loops are linear walks over flat
    int arrays with no per-object boxing or pointer chasing.

    An object here stands for a {e cluster} of real Java objects
    allocated together (see DESIGN.md §6, "scale factor"): sizes are real
    bytes, so a 64 GB heap holds on the order of 10^5 clusters instead of
    10^9 objects, while tracing, copying and promotion still operate on a
    genuine object graph. *)

type location =
  | Eden
  | Survivor
  | Old
  | Region of int  (** G1 region index *)
  | Nowhere  (** free slot *)

type t

val create : unit -> t

val is_young_loc : location -> bool
(** Whether the location is a young space (eden or survivor). *)

val is_old_loc : location -> bool
(** Whether the location is the contiguous old generation. *)

val is_nowhere_loc : location -> bool
(** Whether the location marks a freed slot. *)

(** {1 Per-object attributes}

    Accessors index the columns directly: only the array bounds check
    runs, no liveness check.  Ids recorded in registries, root sets and
    reference slices were validated when recorded, and the slot table
    never shrinks.  A freed slot reads as [Nowhere]. *)

val size : t -> int -> int
val age : t -> int -> int
val set_age : t -> int -> int -> unit

val loc : t -> int -> location
(** Decoded location.  Allocates for [Region _]; hot paths should use the
    predicates or {!loc_code} instead. *)

val loc_code : t -> int -> int
(** Raw location code: [Eden] 0, [Survivor] 1, [Old] 2, [Nowhere] 3,
    [Region r] [4 + r]. *)

val young_refs : t -> int -> int
(** Outgoing references currently targeting a young-space object;
    maintained by {!add_ref}/{!remove_ref}/{!set_refs} and re-derived by
    collectors via {!recount_young_refs} after objects move. *)

val is_young : t -> int -> bool
val is_old : t -> int -> bool
val is_nowhere : t -> int -> bool

val region_index : t -> int -> int
(** The object's G1 region index, or [-1] when not region-allocated. *)

val in_region : t -> int -> int -> bool
(** [in_region t id idx] — whether the object sits in region [idx]. *)

val set_loc : t -> int -> location -> unit

val set_loc_eden : t -> int -> unit
val set_loc_survivor : t -> int -> unit
val set_loc_old : t -> int -> unit

val set_loc_region : t -> int -> int -> unit
(** Allocation-free variants of {!set_loc} for the move/promote loops. *)

(** {1 Epoch-stamped marks} *)

val begin_trace : t -> unit
(** Starts a new trace epoch.  Marks from earlier traces become stale
    implicitly — there is no clearing pass. *)

val mark : t -> int -> unit
(** Stamps the object with the current trace epoch. *)

val is_marked : t -> int -> bool
(** Whether the object was marked during the current trace epoch. *)

val unmark : t -> int -> unit
(** Clears the object's stamp (rarely needed; collections normally rely
    on epoch staleness instead). *)

(** {1 Allocation} *)

val alloc : t -> size:int -> loc:location -> int
(** Allocates a fresh object (recycling a free slot when possible) and
    returns its id.  The object starts with age 0, unmarked, no refs. *)

val alloc_region : t -> size:int -> region:int -> int
(** [alloc] into a G1 region without boxing a [Region] constructor. *)

val check_live : t -> int -> unit
(** @raise Invalid_argument on a stale or out-of-range id. *)

val is_live : t -> int -> bool
(** Whether the id denotes a currently-allocated object. *)

val free : t -> int -> unit
(** Returns the object's slot to the free pool.  The id becomes stale.
    Raises [Invalid_argument] on an id that is already free. *)

(** {1 References}

    Outgoing references are CSR slices in the shared edge arena.  A slice
    grows by relocating to the arena's bump end; when the arena fills it
    is rebuilt tight (compacting relocation garbage) at twice the live
    size.  Rebuilds happen only inside these mutator-facing operations,
    never during a trace. *)

val add_ref : t -> from:int -> to_:int -> unit

val remove_ref : t -> from:int -> to_:int -> unit
(** Removes one occurrence in O(found position) by swapping with the last
    entry; no-op if absent.  Reference order is not preserved. *)

val set_refs : t -> int -> int array -> unit
(** Replaces the object's references.  The array is copied; an
    allocation-free overwrite for callers that already hold an array. *)

val clear_refs : t -> int -> unit
(** Drops all outgoing references ([set_refs t id [||]] without the
    array). *)

val ref_count : t -> int -> int

val ref_at : t -> int -> int -> int
(** [ref_at t id i] — the [i]th outgoing reference.  Unchecked beyond the
    arena bounds; pair with {!ref_count}. *)

val iter_refs : t -> int -> (int -> unit) -> unit

val refs_array : t -> int -> int array
(** Fresh copy of the reference slice, in reference order. *)

val refs_list : t -> int -> int list

val recount_young_refs : t -> int -> unit
(** Recomputes the young-ref counter from the object's current references
    and their targets' current locations (dead targets count as
    not-young). *)

(** {1 Live-id iteration}

    Backed by a live-id list maintained on alloc/free — O(live), not
    O(capacity), so a heap that has shrunk does not pay for its peak. *)

val live_count : t -> int

val live_ids : t -> Gcperf_util.Int_vec.t
(** Ids of all live objects, ascending, as a fresh vector. *)

val iter_live : t -> (int -> unit) -> unit
(** Iterates live ids in ascending order (the order downstream
    remembered-set rebuilds depend on). *)

val capacity : t -> int
(** Total slots ever allocated (live + recyclable). *)

(** {1 Trace kernel}

    [finish_trace] runs a seeded trace to closure: pop a vertex, scan its
    references, mark/push unmarked children admitted by the predicate.
    With [domains > 1] and a stack at least {!par_trace_threshold} deep,
    a crew of worker domains first computes the speculative closure (a
    cache of each reachable vertex's predicate-filtered child list) and
    the marking automaton then replays sequentially over the cache.

    Determinism contract: workers never mark; the replay performs the
    exact pop/scan/mark sequence of the sequential loop, so the marked
    vector — and every artifact downstream of discovery order — is
    byte-identical at any domain count, parallel or not. *)

type trace_pred =
  | Trace_young  (** admit young objects (eden or survivor) *)
  | Trace_live  (** admit everything allocated *)
  | Trace_regions of bool array
      (** admit objects in the flagged G1 regions *)

val finish_trace :
  t ->
  pred:trace_pred ->
  marked:Gcperf_util.Int_vec.t ->
  stack:Gcperf_util.Int_vec.t ->
  domains:int ->
  unit
(** [stack] holds the seeds (already marked, already in [marked]); on
    return it is empty and [marked] holds the closure in discovery
    order. *)

val set_default_trace_domains : int -> unit
(** Process-global default for intra-collection GC parallelism (tracing
    and relocation), consumed by collectors at context creation (CLI
    [--gc-jobs], née [--trace-jobs]).  Clamped to at least 1
    (sequential). *)

val default_trace_domains : unit -> int

val set_default_gc_domains : int -> unit
(** Alias of {!set_default_trace_domains}: one worker-domain count drives
    both the trace and relocation kernels. *)

val default_gc_domains : unit -> int

val set_par_trace_threshold : int -> unit
(** Minimum seed-stack depth before [finish_trace] engages the crew;
    below it the sequential loop is always faster.  Tests lower it to
    exercise the parallel kernel on small graphs. *)

val par_trace_threshold : unit -> int

(** {1 Relocation kernel}

    [finish_relocate] is the move half of a two-phase relocation,
    mirroring [finish_trace]'s split.  Phase A (plan): the collector
    walks survivors in deterministic trace order and records each
    object's destination location and age with the [plan_push] family —
    placement decisions (bump-packing, budgets, registry pushes, used
    accounting) are inherently ordered and stay in the collector.
    Phase B (move): the kernel applies the recorded writes to the
    location and age columns, slab-parallel above {!par_move_threshold}
    when [domains > 1] and the crew is free, sequentially otherwise.

    Determinism contract: slabs are contiguous plan ranges and an object
    id appears at most once per plan, so workers write disjoint column
    cells — the heap state after the move is byte-identical at any
    domain count.  The same slab/prefix-sum scheme packs the CSR edge
    arena during rebuilds, into a preallocated double-buffered
    destination. *)

val plan_clear : t -> unit
(** Drops any pending plan entries (a plan survives only until the next
    {!finish_relocate}). *)

val plan_length : t -> int
(** Number of pending plan entries. *)

val plan_push : t -> int -> loc:location -> age:int -> unit
(** Records one relocation: on {!finish_relocate} the object's location
    becomes [loc] and its age [age]. *)

val plan_push_old : t -> int -> age:int -> unit

val plan_push_survivor : t -> int -> age:int -> unit

val plan_push_eden : t -> int -> age:int -> unit

val plan_push_region : t -> int -> region:int -> age:int -> unit
(** Allocation-free variants of {!plan_push} for the hot plan loops. *)

val finish_relocate : t -> domains:int -> int
(** Applies and clears the pending plan; returns the number of objects
    relocated. *)

val set_par_move_threshold : int -> unit
(** Minimum plan length (and minimum slot count for edge-arena rebuilds)
    before {!finish_relocate} engages the crew.  Tests lower it to
    exercise the parallel move on small plans. *)

val par_move_threshold : unit -> int

(** {1 Batch sweep kernels}

    Column-direct equivalents of the collectors' per-object free loops.
    Visit order and free order — hence the free-slot recycling order the
    goldens depend on — are exactly those of a closure-per-id loop over
    the same vector. *)

val sweep_young_registry : t -> Gcperf_util.Int_vec.t -> int
(** Young-collection sweep over a young registry: keeps young+marked ids
    (in place, order preserved), frees young+unmarked ids, drops ids no
    longer young (promoted).  Returns the freed byte count. *)

val sweep_dead : t -> Gcperf_util.Int_vec.t -> int
(** Full-collection sweep: frees every still-allocated unmarked id in the
    vector, leaving the vector itself untouched.  Returns the freed byte
    count. *)

(** {1 Forwarding table (pauseless concurrent relocation)}

    Per-object forwarding entries with self-healing load-barrier reads,
    for the concurrent region collector.  Entries are epoch stamps:
    {!fwd_begin} opens a relocation phase and invalidates the previous
    table in O(1); {!fwd_record} marks an object as moved this phase;
    {!fwd_read} is the mutator's load barrier — the {e first} read of a
    forwarded object takes the slow path, heals the entry and returns
    [true]; every later read of the same object returns [false]
    (remapped slots never hit the forwarding table twice).
    {!fwd_heal_all} is the remap flip: heals everything still pending. *)

val fwd_begin : t -> unit
val fwd_record : t -> int -> unit

val fwd_is_forwarded : t -> int -> bool
(** Forwarded this phase and not yet healed. *)

val fwd_read : t -> int -> bool
(** Load barrier: heals on first contact, [true] iff this read took the
    slow path. *)

val fwd_pending : t -> int
(** Entries recorded this phase and not yet healed. *)

val fwd_hits : t -> int
(** Load-barrier slow paths taken this phase. *)

val fwd_count : t -> int
(** Entries recorded this phase (healed or not). *)

val fwd_heal_all : t -> int
(** Heals every pending entry; returns how many were left for the flip
    (i.e. never touched by a mutator read). *)

(**/**)

val edges_capacity : t -> int
val edges_garbage : t -> int
