(** Simulated object store.

    Every simulated heap object lives in this arena.  An object carries the
    attributes the collectors need — size in (simulated) bytes, age in
    survived collections, location, mark bit and outgoing references — and
    is identified by a dense integer id so collectors can use flat arrays
    and vectors for work lists.

    An object here stands for a {e cluster} of real Java objects allocated
    together (see DESIGN.md §6, "scale factor"): sizes are real bytes, so a
    64 GB heap holds on the order of 10^5 clusters instead of 10^9 objects,
    while tracing, copying and promotion still operate on a genuine object
    graph. *)

type location =
  | Eden
  | Survivor
  | Old
  | Region of int  (** G1 region index *)
  | Nowhere  (** free slot *)

type obj = {
  id : int;
  mutable size : int;
  mutable loc : location;
  mutable age : int;
  mutable marked : bool;
  mutable refs : int Gcperf_util.Vec.t;  (** outgoing references (object ids) *)
}

type t

val create : unit -> t

val alloc : t -> size:int -> loc:location -> int
(** Allocates a fresh object (recycling a free slot when possible) and
    returns its id.  The object starts with age 0, unmarked, no refs. *)

val get : t -> int -> obj
(** @raise Invalid_argument on a stale or out-of-range id. *)

val is_live : t -> int -> bool
(** Whether the id denotes a currently-allocated object. *)

val free : t -> int -> unit
(** Returns the object's slot to the free pool.  The id becomes stale. *)

val add_ref : t -> from:int -> to_:int -> unit

val remove_ref : t -> from:int -> to_:int -> unit
(** Removes one occurrence; no-op if absent. *)

val set_refs : t -> int -> int list -> unit

val live_count : t -> int

val live_ids : t -> int list
(** Ids of all live objects, ascending.  O(capacity); test/debug use. *)

val iter_live : t -> (obj -> unit) -> unit

val capacity : t -> int
(** Total slots ever allocated (live + recyclable). *)
