module Vec = Gcperf_util.Vec

type t = {
  store : Obj_store.t;
  heap_bytes : int;
  young_bytes : int;
  eden_cap : int;
  survivor_cap : int;
  old_cap : int;
  mutable eden_used : int;
  mutable survivor_used : int;
  mutable old_used : int;
  mutable tenuring_threshold : int;
  young_ids : int Vec.t;
  old_ids : int Vec.t;
  dirty_cards : (int, unit) Hashtbl.t;
  mutable allocated_bytes : int;
  mutable promoted_bytes : int;
}

let create store ~heap_bytes ~young_bytes ?(survivor_ratio = 8)
    ?(tenuring_threshold = 6) () =
  if young_bytes > heap_bytes then
    invalid_arg "Gen_heap.create: young generation larger than heap";
  if young_bytes <= 0 then invalid_arg "Gen_heap.create: empty young gen";
  (* eden : survivor : survivor = ratio : 1 : 1 *)
  let survivor_cap = young_bytes / (survivor_ratio + 2) in
  let eden_cap = young_bytes - (2 * survivor_cap) in
  {
    store;
    heap_bytes;
    young_bytes;
    eden_cap;
    survivor_cap;
    old_cap = heap_bytes - young_bytes;
    eden_used = 0;
    survivor_used = 0;
    old_used = 0;
    tenuring_threshold;
    young_ids = Vec.create ();
    old_ids = Vec.create ();
    dirty_cards = Hashtbl.create 256;
    allocated_bytes = 0;
    promoted_bytes = 0;
  }

let is_young = function
  | Obj_store.Eden | Obj_store.Survivor -> true
  | Obj_store.Old | Obj_store.Region _ | Obj_store.Nowhere -> false

let young_used t = t.eden_used + t.survivor_used

let heap_used t = young_used t + t.old_used

let eden_free t = t.eden_cap - t.eden_used

let old_free t = t.old_cap - t.old_used

let alloc_eden t ~size =
  if size > eden_free t then None
  else begin
    let id = Obj_store.alloc t.store ~size ~loc:Obj_store.Eden in
    t.eden_used <- t.eden_used + size;
    t.allocated_bytes <- t.allocated_bytes + size;
    Vec.push t.young_ids id;
    Some id
  end

let alloc_old_direct t ~size =
  if size > old_free t then None
  else begin
    let id = Obj_store.alloc t.store ~size ~loc:Obj_store.Old in
    t.old_used <- t.old_used + size;
    t.allocated_bytes <- t.allocated_bytes + size;
    Vec.push t.old_ids id;
    Some id
  end

let record_store t ~parent ~child =
  Obj_store.add_ref t.store ~from:parent ~to_:child;
  let p = Obj_store.get t.store parent and c = Obj_store.get t.store child in
  if (not (is_young p.loc)) && is_young c.loc then
    Hashtbl.replace t.dirty_cards parent ()

let remove_store t ~parent ~child =
  Obj_store.remove_ref t.store ~from:parent ~to_:child

let compact_registries t =
  let store = t.store in
  Vec.filter_in_place
    (fun id -> Obj_store.is_live store id && is_young (Obj_store.get store id).loc)
    t.young_ids;
  Vec.filter_in_place
    (fun id ->
      Obj_store.is_live store id && (Obj_store.get store id).loc = Obj_store.Old)
    t.old_ids

let check_invariants t =
  let eden = ref 0 and survivor = ref 0 and old = ref 0 in
  Obj_store.iter_live t.store (fun o ->
      match o.loc with
      | Obj_store.Eden -> eden := !eden + o.size
      | Obj_store.Survivor -> survivor := !survivor + o.size
      | Obj_store.Old -> old := !old + o.size
      | Obj_store.Region _ | Obj_store.Nowhere -> ());
  let check name expected actual cap =
    if expected <> actual then
      Error
        (Printf.sprintf "%s accounting mismatch: tracked %d, actual %d" name
           actual expected)
    else if actual > cap then
      Error (Printf.sprintf "%s over capacity: %d > %d" name actual cap)
    else Ok ()
  in
  match check "eden" !eden t.eden_used t.eden_cap with
  | Error _ as e -> e
  | Ok () -> (
      match check "survivor" !survivor t.survivor_used t.survivor_cap with
      | Error _ as e -> e
      | Ok () -> check "old" !old t.old_used t.old_cap)
