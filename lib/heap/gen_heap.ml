module Vec = Gcperf_util.Int_vec
module Bitset = Gcperf_util.Bitset

type t = {
  store : Obj_store.t;
  heap_bytes : int;
  mutable young_bytes : int;
  mutable eden_cap : int;
  mutable survivor_cap : int;
  mutable old_cap : int;
  mutable survivor_ratio : int;
  mutable eden_used : int;
  mutable survivor_used : int;
  mutable old_used : int;
  mutable tenuring_threshold : int;
  young_ids : Vec.t;
  old_ids : Vec.t;
  dirty_ids : Vec.t;
  dirty_bits : Bitset.t;
  dirty_tbl : (int, unit) Hashtbl.t;
  mutable allocated_bytes : int;
  mutable promoted_bytes : int;
  (* Per-collection scratch, hoisted so steady-state collections allocate
     nothing in the host runtime.  Owned by the collection algorithms in
     gcperf.gc; contents are only valid within one collection. *)
  mark_list : Vec.t;
  trace_stack : Vec.t;
  promote_scratch : Vec.t;
  keep_scratch : Vec.t;
  recheck_scratch : Vec.t;
  mutable age_bytes : int array;
}

let create store ~heap_bytes ~young_bytes ?(survivor_ratio = 8)
    ?(tenuring_threshold = 6) () =
  if young_bytes > heap_bytes then
    invalid_arg "Gen_heap.create: young generation larger than heap";
  if young_bytes <= 0 then invalid_arg "Gen_heap.create: empty young gen";
  (* eden : survivor : survivor = ratio : 1 : 1 *)
  let survivor_cap = young_bytes / (survivor_ratio + 2) in
  let eden_cap = young_bytes - (2 * survivor_cap) in
  {
    store;
    heap_bytes;
    young_bytes;
    eden_cap;
    survivor_cap;
    old_cap = heap_bytes - young_bytes;
    survivor_ratio;
    eden_used = 0;
    survivor_used = 0;
    old_used = 0;
    tenuring_threshold;
    young_ids = Vec.create ();
    old_ids = Vec.create ();
    dirty_ids = Vec.create ();
    dirty_bits = Bitset.create ();
    dirty_tbl = Hashtbl.create 256;
    allocated_bytes = 0;
    promoted_bytes = 0;
    mark_list = Vec.create ();
    trace_stack = Vec.create ();
    promote_scratch = Vec.create ();
    keep_scratch = Vec.create ();
    recheck_scratch = Vec.create ();
    age_bytes = [||];
  }

let is_young = Obj_store.is_young_loc

let young_used t = t.eden_used + t.survivor_used

let heap_used t = young_used t + t.old_used

let eden_free t = t.eden_cap - t.eden_used

let old_free t = t.old_cap - t.old_used

(* Moving the young/old boundary never moves objects: the new layout must
   keep every currently occupied space within its (possibly smaller)
   capacity, or the request is rounded up/refused.  Callers (the adaptive
   sizing policy) only invoke this at safepoints, between collections. *)
let resize_young t ~young_bytes ~survivor_ratio =
  let ratio = max 1 survivor_ratio in
  (* Smallest young size whose survivor and eden halves still cover the
     current occupancy: survivor_cap = y/(ratio+2) >= survivor_used and
     eden_cap = y - 2*survivor_cap >= eden_used. *)
  let min_for_survivor = t.survivor_used * (ratio + 2) in
  let min_for_eden =
    (* eden_cap >= y * ratio/(ratio+2) - 2, so this bound is sufficient *)
    ((t.eden_used + 2) * (ratio + 2) / ratio) + 1
  in
  let y = max young_bytes (max min_for_survivor min_for_eden) in
  let y = min y (t.heap_bytes - t.old_used) in
  let survivor_cap = y / (ratio + 2) in
  let eden_cap = y - (2 * survivor_cap) in
  if
    y <= 0 || eden_cap < t.eden_used
    || survivor_cap < t.survivor_used
    || t.heap_bytes - y < t.old_used
  then (t.young_bytes, t.survivor_ratio)
  else begin
    t.young_bytes <- y;
    t.survivor_ratio <- ratio;
    t.eden_cap <- eden_cap;
    t.survivor_cap <- survivor_cap;
    t.old_cap <- t.heap_bytes - y;
    (y, ratio)
  end

(* Option-free variant for the per-allocation hot path: [-1] means eden
   cannot fit the object.  [alloc_eden] keeps the option interface for
   callers off the hot path. *)
let[@inline] alloc_eden_id t ~size =
  if size > eden_free t then -1
  else begin
    let id = Obj_store.alloc t.store ~size ~loc:Obj_store.Eden in
    t.eden_used <- t.eden_used + size;
    t.allocated_bytes <- t.allocated_bytes + size;
    Vec.push t.young_ids id;
    id
  end

let alloc_eden t ~size =
  let id = alloc_eden_id t ~size in
  if id < 0 then None else Some id

let alloc_old_direct t ~size =
  if size > old_free t then None
  else begin
    let id = Obj_store.alloc t.store ~size ~loc:Obj_store.Old in
    t.old_used <- t.old_used + size;
    t.allocated_bytes <- t.allocated_bytes + size;
    Vec.push t.old_ids id;
    Some id
  end

(* --- remembered set ---------------------------------------------------

   The dirty set tracks old objects that may hold references into the
   young generation.  Membership is a compact id vector plus a bitset
   (O(1) duplicate suppression on the write-barrier hot path), mirrored
   by a hash table whose only job is iteration order: the simulator's
   survivor-overflow decisions depend on the order card children enter a
   trace, and that order has always been the hash table's bucket order.
   Keeping the mirror reproduces historical results bit-for-bit; dropping
   it in favour of first-dirtied vector order moves a handful of
   tightly-sized configurations by a fraction of a percent.

   Like a hardware card table, a card stays dirty until a collection
   cleans it: a mutator that overwrites its last young reference does not
   clean the card, so iteration can visit old objects with no remaining
   young refs (the scan then finds nothing young — that wasted work is
   exactly what real card scanning pays).  {!refresh_cards} restores
   exactness after every young collection from the per-object
   [young_refs] counters; {!rebuild_cards} re-derives the set from the
   old registry after a full collection. *)

let[@inline] entry_present t id = Obj_store.is_old t.store id

let card_mark t id =
  if not (Bitset.mem t.dirty_bits id) then begin
    Bitset.set t.dirty_bits id;
    Vec.push t.dirty_ids id;
    Hashtbl.replace t.dirty_tbl id ()
  end

let iter_dirty t f =
  (* the emptiness guard skips a full walk of the table's buckets in the
     (common) collections with no dirty cards *)
  if Hashtbl.length t.dirty_tbl > 0 then
    Hashtbl.iter
      (fun id () -> if Obj_store.is_old t.store id then f id)
      t.dirty_tbl

let card_is_dirty t id = Bitset.mem t.dirty_bits id && entry_present t id

let dirty_count t =
  let n = ref 0 in
  iter_dirty t (fun _ -> incr n);
  !n

(* Dead entries linger until the next refresh, and their ids can be
   recycled meanwhile (the concurrent sweep frees old objects without
   touching cards); a recycled id is scanned again whatever space it now
   occupies.  Remark has always charged card bytes that way. *)
let dirty_live_bytes t =
  Vec.fold
    (fun acc id ->
      if Obj_store.is_nowhere t.store id then acc
      else acc + Obj_store.size t.store id)
    0 t.dirty_ids

let clear_cards t =
  (* Emptiness guards: all three structures are no-ops to clear when the
     set is empty, and entries only ever leave through this function, so
     an empty mirror table is always at its initial bucket count (the
     guarded [Hashtbl.reset] cannot be skipped in a state it would have
     changed). *)
  if Vec.length t.dirty_ids > 0 then begin
    Vec.iter (fun id -> Bitset.clear t.dirty_bits id) t.dirty_ids;
    Vec.clear t.dirty_ids
  end;
  if Hashtbl.length t.dirty_tbl > 0 then Hashtbl.reset t.dirty_tbl

let[@inline] consider_card t id =
  if Obj_store.is_old t.store id then begin
    Obj_store.recount_young_refs t.store id;
    if Obj_store.young_refs t.store id > 0 then card_mark t id
  end

let refresh_cards t ~extra =
  (* Recheck in table order — the order re-insertion has always used. *)
  Vec.clear t.recheck_scratch;
  if Hashtbl.length t.dirty_tbl > 0 then begin
    Hashtbl.iter (fun id () -> Vec.push t.recheck_scratch id) t.dirty_tbl;
    clear_cards t;
    Vec.iter (fun id -> consider_card t id) t.recheck_scratch
  end;
  Vec.iter (fun id -> consider_card t id) extra

let rebuild_cards t =
  clear_cards t;
  (* Object sizes are positive, so zero young bytes means no young
     objects: every recount would find 0 young refs and mark nothing.
     Consumers never read the counters without recounting first, so the
     stale [young_refs] values left behind are unobservable. *)
  if t.eden_used > 0 || t.survivor_used > 0 then
    Vec.iter (fun id -> consider_card t id) t.old_ids

let record_store t ~parent ~child =
  Obj_store.add_ref t.store ~from:parent ~to_:child;
  if Obj_store.is_old t.store parent && Obj_store.is_young t.store child then
    card_mark t parent

let remove_store t ~parent ~child =
  Obj_store.remove_ref t.store ~from:parent ~to_:child

let compact_old_ids t =
  let store = t.store in
  Vec.filter_in_place (fun id -> Obj_store.is_old store id) t.old_ids

let compact_registries t =
  let store = t.store in
  Vec.filter_in_place (fun id -> Obj_store.is_young store id) t.young_ids;
  compact_old_ids t

let check_invariants t =
  let eden = ref 0 and survivor = ref 0 and old = ref 0 in
  Obj_store.iter_live t.store (fun id ->
      let size = Obj_store.size t.store id in
      match Obj_store.loc t.store id with
      | Obj_store.Eden -> eden := !eden + size
      | Obj_store.Survivor -> survivor := !survivor + size
      | Obj_store.Old -> old := !old + size
      | Obj_store.Region _ | Obj_store.Nowhere -> ());
  let check name expected actual cap =
    if expected <> actual then
      Error
        (Printf.sprintf "%s accounting mismatch: tracked %d, actual %d" name
           actual expected)
    else if actual > cap then
      Error (Printf.sprintf "%s over capacity: %d > %d" name actual cap)
    else Ok ()
  in
  match check "eden" !eden t.eden_used t.eden_cap with
  | Error _ as e -> e
  | Ok () -> (
      match check "survivor" !survivor t.survivor_used t.survivor_cap with
      | Error _ as e -> e
      | Ok () -> check "old" !old t.old_used t.old_cap)
