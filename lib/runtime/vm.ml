module Vec = Gcperf_util.Vec
module Int_table = Gcperf_util.Int_table
module Prng = Gcperf_util.Prng
module Heapq = Gcperf_util.Heapq
module Machine = Gcperf_machine.Machine
module Clock = Gcperf_sim.Clock
module Gc_event = Gcperf_sim.Gc_event
module Gc_ctx = Gcperf_gc.Gc_ctx
module Gc_config = Gcperf_gc.Gc_config
module Collector = Gcperf_gc.Collector
module Registry = Gcperf_gc.Registry
module Telemetry = Gcperf_telemetry.Telemetry
module Metrics = Gcperf_telemetry.Metrics
module Cost = Gcperf_telemetry.Cost

(* Link-time registration of the concurrent collector family
   ([ConcurrentRegionsGC], [JournalRCGC]); without this,
   [Registry.create] has no builder for those kinds. *)
let () = Gcperf_gc_concurrent.Plug.install ()

type thread = {
  tid : int;
  roots : Int_table.t;
  prng : Prng.t;
  mutable live : bool;
  mutable quantum_allocs : int;
  mutable quantum_bytes : int;
}

type owner = Thread_root of int | Global_root

type t = {
  machine : Machine.t;
  config : Gc_config.t;
  clock : Clock.t;
  events : Gc_event.t;
  ctx : Gc_ctx.t;
  collector : Collector.t;
  (* [collector.alloc], hoisted: the allocation fast path loads one field
     instead of chasing through the collector record. *)
  alloc_fn : size:int -> int;
  threads : thread Vec.t;
  globals : Int_table.t;
  deaths : (owner * int) Heapq.t;  (* keyed by cumulative allocated bytes *)
  prng : Prng.t;
  mutable allocated : int;
}

type lifetime = [ `Bytes of int | `Permanent ]

let create ?telemetry machine config ~seed =
  let clock = Clock.create () in
  let events = Gc_event.create () in
  let ctx = Gc_ctx.create ?telemetry machine clock events in
  let collector = Registry.create ctx config in
  let t =
    {
      machine;
      config;
      clock;
      events;
      ctx;
      collector;
      alloc_fn = collector.Collector.alloc;
      threads = Vec.create ();
      globals = Int_table.create 64;
      deaths = Heapq.create ();
      prng = Prng.create seed;
      allocated = 0;
    }
  in
  ctx.Gc_ctx.mutator_threads <- 0;
  ctx.Gc_ctx.iter_roots <-
    (fun f ->
      Vec.iter
        (fun th -> if th.live then Int_table.iter f th.roots)
        t.threads;
      Int_table.iter f t.globals);
  t

let machine t = t.machine
let clock t = t.clock
let events t = t.events
let collector t = t.collector
let config t = t.config
let telemetry t = t.ctx.Gc_ctx.telemetry
let policy t = t.ctx.Gc_ctx.policy
let now_s t = Clock.now_s t.clock
let allocated_bytes t = t.allocated

let spawn_thread t =
  let th =
    {
      tid = Vec.length t.threads;
      roots = Int_table.create 64;
      prng = Prng.split t.prng;
      live = true;
      quantum_allocs = 0;
      quantum_bytes = 0;
    }
  in
  Vec.push t.threads th;
  t.ctx.Gc_ctx.mutator_threads <- t.ctx.Gc_ctx.mutator_threads + 1;
  th

let kill_thread t th =
  if th.live then begin
    th.live <- false;
    Int_table.reset th.roots;
    t.ctx.Gc_ctx.mutator_threads <- max 0 (t.ctx.Gc_ctx.mutator_threads - 1)
  end

let threads t =
  Vec.fold (fun acc th -> if th.live then th :: acc else acc) [] t.threads
  |> List.rev

(* The [owner] value is built inside the [`Bytes] arm: constructing a
   [Thread_root] block for a [`Permanent] allocation (the hot case)
   would cost a heap allocation that the match immediately discards. *)
let[@inline] register_thread_death t tid id lifetime =
  match lifetime with
  | `Permanent -> ()
  | `Bytes b ->
      Heapq.push t.deaths (t.allocated + max 1 b) (Thread_root tid, id)

let[@inline] register_global_death t id lifetime =
  match lifetime with
  | `Permanent -> ()
  | `Bytes b -> Heapq.push t.deaths (t.allocated + max 1 b) (Global_root, id)

let[@inline] alloc t th ~size ~lifetime =
  let id = t.alloc_fn ~size in
  t.allocated <- t.allocated + size;
  th.quantum_allocs <- th.quantum_allocs + 1;
  th.quantum_bytes <- th.quantum_bytes + size;
  (* [add], not [replace]: a freshly allocated id is never already rooted
     (rooted implies live, and live ids are not recycled), and insertion
     at the bucket head is where [replace] would have put a new key too,
     so the table's iteration order is unchanged. *)
  Int_table.add th.roots id;
  register_thread_death t th.tid id lifetime;
  id

let alloc_global t ~size ~lifetime =
  let id = t.collector.Collector.alloc ~size in
  t.allocated <- t.allocated + size;
  Int_table.add t.globals id;
  register_global_death t id lifetime;
  id

let alloc_old_global t ~size ~lifetime =
  let id = t.collector.Collector.alloc_old ~size in
  t.allocated <- t.allocated + size;
  Int_table.add t.globals id;
  register_global_death t id lifetime;
  id

let add_ref t ~parent ~child = t.collector.Collector.write_ref ~parent ~child

let remove_ref t ~parent ~child =
  t.collector.Collector.remove_ref ~parent ~child

let[@inline] drop_root _t th id = Int_table.remove th.roots id

let drop_global_root t id = Int_table.remove t.globals id

let global_root t id = Int_table.replace t.globals id

let rec process_deaths t =
  (* Drain due entries straight off the queue (same key order as the old
     pop_until, without materialising an intermediate list). *)
  match Heapq.min_key t.deaths with
  | Some key when key <= t.allocated ->
      (match Heapq.pop t.deaths with
      | Some (_key, (owner, id)) -> (
          match owner with
          | Global_root -> Int_table.remove t.globals id
          | Thread_root tid ->
              let th = Vec.get t.threads tid in
              if th.live then Int_table.remove th.roots id)
      | None -> ());
      process_deaths t
  | Some _ | None -> ()

let step t ~dt_us f =
  let n_live = ref 0 in
  Vec.iter
    (fun th ->
      if th.live then begin
        incr n_live;
        th.quantum_allocs <- 0;
        th.quantum_bytes <- 0;
        f th
      end)
    t.threads;
  (* Allocation overhead: TLAB refills happen in parallel (the quantum
     stretches by the average per-thread cost), but TLAB-less allocation
     serialises on the shared allocation pointer, so the whole quantum
     pays the sum. *)
  let overhead = ref 0.0 in
  Vec.iter
    (fun th ->
      if th.live && th.quantum_allocs > 0 then
        overhead :=
          !overhead
          +. Machine.alloc_overhead_us t.machine ~tlab:t.config.Gc_config.tlab
               ~threads:!n_live ~allocations:th.quantum_allocs
               ~bytes:th.quantum_bytes
               ~tlab_bytes:t.config.Gc_config.tlab_bytes)
    t.threads;
  let alloc_overhead =
    if !n_live = 0 then 0.0
    else if t.config.Gc_config.tlab then !overhead /. float_of_int !n_live
    else !overhead
  in
  let factor = t.collector.Collector.mutator_factor () in
  Clock.advance_us t.clock ((dt_us *. factor) +. alloc_overhead);
  process_deaths t;
  t.collector.Collector.tick ~dt_us;
  (* Safepoint: the quantum boundary is the only place ergonomics
     decisions are applied.  Collections inside the quantum may have left
     a pending decision; consuming it here (never mid-allocation) keeps
     runs deterministic and byte-identical across worker counts. *)
  t.collector.Collector.apply_policy ();
  (* Per-quantum gauges: pure observation after all state transitions of
     the quantum, so sampling cannot perturb the run. *)
  let tel = t.ctx.Gc_ctx.telemetry in
  if Telemetry.enabled tel then begin
    let t_us = Clock.now_us t.clock in
    let q_bytes =
      Vec.fold
        (fun acc th -> if th.live then acc + th.quantum_bytes else acc)
        0 t.threads
    in
    Telemetry.incr tel "vm.allocated_bytes" (float_of_int q_bytes);
    (* Distillation accounting (Cost, DESIGN.md §18): split the dilation
       the clock just charged — dt·(factor−1) — into the collector's own
       (barrier, steal) attribution.  Pure bookkeeping on the already-
       advanced clock: the [mutator_tax] hook is read-only and these
       counters never feed back into the simulation. *)
    let barrier_f, steal_f = t.collector.Collector.mutator_tax () in
    let tax_total_us = dt_us *. (factor -. 1.0) in
    let steal_us = Float.min tax_total_us (dt_us *. barrier_f *. (steal_f -. 1.0)) in
    let barrier_us = Float.max 0.0 (tax_total_us -. steal_us) in
    Telemetry.incr tel Cost.mutator_raw_us dt_us;
    Telemetry.incr tel Cost.alloc_tax_us alloc_overhead;
    Telemetry.incr tel Cost.barrier_tax_us barrier_us;
    Telemetry.incr tel Cost.steal_tax_us steal_us;
    Telemetry.sample tel "heap.used_bytes" ~t_us
      (float_of_int (t.collector.Collector.heap_used ()));
    Telemetry.sample tel "heap.young_bytes" ~t_us
      (float_of_int (t.collector.Collector.young_used ()));
    Telemetry.sample tel "heap.old_bytes" ~t_us
      (float_of_int (t.collector.Collector.old_used ()));
    if dt_us > 0.0 then
      Telemetry.sample tel "alloc.rate_bytes_per_s" ~t_us
        (float_of_int q_bytes /. (dt_us *. 1e-6));
    Telemetry.sample tel "gc.promoted_bytes" ~t_us
      (Metrics.counter (Telemetry.metrics tel) "gc.promoted_bytes_total")
  end

let system_gc t = t.collector.Collector.system_gc ()

let is_live t id =
  Gcperf_heap.Obj_store.is_live t.collector.Collector.store id

let check_invariants t = t.collector.Collector.check_invariants ()
