(** The simulated virtual machine.

    Wires the machine model, virtual clock, heap and collector together
    and exposes the mutator-facing API: spawn threads, allocate objects
    (with a lifetime after which the object's root is dropped), store
    references through the collector's write barrier, and advance virtual
    time in quanta.

    Mutator threads are logical: they all progress at the same rate, in
    parallel, one quantum at a time.  Stop-the-world pauses happen inside
    allocation calls (when the collector must collect) and advance the
    clock; concurrent collector phases progress at each quantum boundary
    and may dilate mutator time (stolen cores). *)

type t

type thread = {
  tid : int;
  roots : Gcperf_util.Int_table.t;  (** this thread's root set *)
  prng : Gcperf_util.Prng.t;
  mutable live : bool;
  mutable quantum_allocs : int;  (** allocations in the current quantum *)
  mutable quantum_bytes : int;
}

type lifetime =
  [ `Bytes of int
    (** the object's root is dropped after this many further bytes have
        been allocated VM-wide — the standard way to express lifetimes
        under the generational hypothesis *)
  | `Permanent  (** rooted until explicitly dropped *) ]

val create :
  ?telemetry:Gcperf_telemetry.Telemetry.t ->
  Gcperf_machine.Machine.t ->
  Gcperf_gc.Gc_config.t ->
  seed:int ->
  t
(** [telemetry] defaults to a fresh registry honouring
    {!Gcperf_telemetry.Telemetry.default_enabled}. *)

val machine : t -> Gcperf_machine.Machine.t
val clock : t -> Gcperf_sim.Clock.t
val events : t -> Gcperf_sim.Gc_event.t
val collector : t -> Gcperf_gc.Collector.t
val config : t -> Gcperf_gc.Gc_config.t

val telemetry : t -> Gcperf_telemetry.Telemetry.t
(** The registry pauses and per-quantum gauges are recorded into.  When
    enabled, every {!step} samples heap/young/old occupancy, the
    allocation rate and cumulative promoted bytes. *)

val policy : t -> Gcperf_policy.Policy.t option
(** The ergonomics policy attached by the collector registry when the
    configuration has [adaptive = true]; [None] on fixed-size runs.
    Exposes live stats and the convergence trajectory. *)

val now_s : t -> float
val allocated_bytes : t -> int

val spawn_thread : t -> thread
val kill_thread : t -> thread -> unit
(** Drops the thread's roots and removes it from safepoint accounting. *)

val threads : t -> thread list
(** Live threads. *)

val alloc : t -> thread -> size:int -> lifetime:lifetime -> int
(** Allocates an object rooted in the thread's root set.  May run any
    number of collections (advancing the clock) before returning.
    @raise Gcperf_gc.Gc_ctx.Out_of_memory if the heap cannot fit it. *)

val alloc_global : t -> size:int -> lifetime:lifetime -> int
(** Allocates an object rooted in the VM's global root set. *)

val alloc_old_global : t -> size:int -> lifetime:lifetime -> int
(** Like {!alloc_global} but installs the object directly in the old
    generation (bulk cache rebuild / slab allocation path). *)

val add_ref : t -> parent:int -> child:int -> unit
(** Reference store through the collector's write barrier. *)

val remove_ref : t -> parent:int -> child:int -> unit

val drop_root : t -> thread -> int -> unit
(** Removes the object from the thread's root set (no-op if absent). *)

val drop_global_root : t -> int -> unit

val global_root : t -> int -> unit
(** Re-roots an existing object globally (e.g. after its allocating
    thread dies). *)

val step : t -> dt_us:float -> (thread -> unit) -> unit
(** [step t ~dt_us f] runs one quantum: applies [f] to every live thread
    (allocations and reference mutations happen here), then advances the
    clock by [dt_us] dilated by the collector's current mutator factor
    plus the allocation overhead of the quantum (TLAB refills or contended
    shared allocations), retires objects whose lifetime expired, and lets
    the collector's concurrent phases progress. *)

val system_gc : t -> unit
(** DaCapo's forced full collection between iterations. *)

val is_live : t -> int -> bool
(** Whether the id currently denotes a live heap object.  Mutators use
    this to avoid storing references through stale ids (their target may
    have been collected after its root was dropped). *)

val check_invariants : t -> (unit, string) result
