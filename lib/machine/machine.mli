(** Hardware model.

    The study runs on a 48-core, 4-socket, 8-NUMA-node server with 64 GB of
    RAM.  We cannot use such a machine directly, so this module captures the
    two things the paper's results actually depend on:

    - the {e topology} (how many cores, how they are grouped into NUMA
      nodes, how much memory), and
    - a {e cost model}: how long the machine takes to copy, mark, sweep and
      compact bytes, how well those operations scale when parallelised
      across cores and across NUMA nodes, how long reaching a safepoint
      takes, and what allocation costs with and without TLABs.

    All durations produced here are in {e virtual microseconds}; the
    simulator charges them to a virtual clock, so results are deterministic
    and host-independent. *)

(** {1 Topology} *)

type topology = {
  sockets : int;
  numa_nodes_per_socket : int;
  cores_per_numa_node : int;
  l1_kb : int;  (** per-core L1, split I/D like the paper's machine *)
  l2_kb : int;  (** per-core L2 *)
  l3_mb_per_node : int;
  ram_bytes : int;
}

val total_cores : topology -> int
val numa_nodes : topology -> int

(** {1 Cost model}

    Rates are single-threaded and expressed in bytes per virtual
    microsecond (1 byte/us = 1 MB/s).  Parallel phases divide work by
    {!parallel_speedup}. *)

type cost_model = {
  copy_rate : float;  (** young-gen evacuation copy, bytes/us *)
  promote_rate : float;
      (** copy into the old generation (bump pointer); slower than survivor
          copy because of remote NUMA placement *)
  promote_freelist_rate : float;
      (** promotion into a free-list old gen (CMS): slower still *)
  mark_rate : float;  (** tracing live data, bytes/us *)
  sweep_rate : float;  (** sweeping dead space, bytes/us *)
  compact_rate : float;  (** sliding compaction, bytes/us *)
  card_scan_rate : float;  (** scanning dirty cards / remsets, bytes/us *)
  root_scan_us_per_thread : float;  (** stack scan cost per mutator thread *)
  gc_fixed_us : float;  (** constant per-pause overhead *)
  safepoint_base_us : float;
  safepoint_per_thread_us : float;
      (** time-to-safepoint grows with the number of mutator threads *)
  sync_sigma : float;
      (** synchronisation overhead coefficient in the speedup law *)
  numa_remote_factor : float;
      (** extra cost factor applied to cross-node GC work; this is the
          "remote scanning / remote copying" bottleneck of Gidra et al. *)
  tlab_refill_us : float;  (** shared-pointer bump + fence on TLAB refill *)
  shared_alloc_us : float;  (** CAS path cost for a TLAB-less allocation *)
  contention_us_per_thread : float;
      (** added CAS retry cost per concurrent allocating thread *)
  locality_bytes : float;
      (** working-set size beyond which per-byte GC work degrades: once a
          phase processes much more than this, caches/TLBs/local NUMA
          memory stop covering it and remote accesses dominate, so cost
          per byte grows linearly (the reason a 50 GB full collection
          takes minutes, not seconds) *)
  satb_barrier_factor : float;
      (** mutator slowdown while a concurrent mark with an SATB write
          barrier is active (pre-write logging); multiplies the
          core-stealing factor of the concurrent workers *)
  load_barrier_factor : float;
      (** mutator slowdown while concurrent relocation is in flight and
          every reference load runs a colored-pointer-style barrier test *)
  load_barrier_slow_us : float;
      (** one load-barrier slow path: forwarding-table lookup plus the
          self-healing store remapping the referencing slot *)
  flip_fixed_us : float;
      (** fixed cost of a pauseless collector's flip safepoint; sub-ms
          pause class by construction *)
}

(** {1 Machine} *)

type t = {
  topology : topology;
  cost : cost_model;
  gc_threads : int;  (** parallel GC worker count (JVM default: ~ cores) *)
  conc_gc_threads : int;  (** concurrent marking threads (CMS/G1) *)
  speedup_gc : float;
      (** {!parallel_speedup} at [gc_threads], cached at construction *)
  speedup_conc : float;
      (** {!parallel_speedup} at [conc_gc_threads], cached at
          construction *)
}

val create : ?gc_threads:int -> ?conc_gc_threads:int -> topology -> cost_model -> t

val cores : t -> int

(** {1 Derived quantities} *)

val parallel_speedup : t -> int -> float
(** [parallel_speedup m n] is the effective speedup of a GC phase run on
    [n] workers: [n / (1 + sigma*(n-1))], further discounted by
    {!cost_model.numa_remote_factor} once workers span NUMA nodes.  This
    reproduces the observation (Gidra et al., cited by the paper) that
    stop-the-world collectors stop scaling on multicores. *)

val time_to_safepoint : t -> mutator_threads:int -> float
(** Virtual us for all mutator threads to reach the safepoint. *)

val root_scan_us : t -> mutator_threads:int -> float

val phase_us :
  t -> rate:float -> workers:int -> bytes:int -> float
(** [phase_us m ~rate ~workers ~bytes] is the duration of a GC phase
    processing [bytes] at single-thread [rate] on [workers] workers,
    including the {!cost_model.locality_bytes} degradation for volumes
    that overwhelm the memory hierarchy. *)

val alloc_overhead_us :
  t -> tlab:bool -> threads:int -> allocations:int -> bytes:int ->
  tlab_bytes:int -> float
(** Mutator-side allocation overhead for a batch: with TLABs, one refill
    per [tlab_bytes] allocated; without, a contended shared allocation per
    object. *)

(** {1 Presets} *)

val paper_server : unit -> t
(** The study's server: 48 cores (4 sockets x 2 NUMA nodes x 6 cores),
    64 GB RAM, 1.5 MB L1 / 6 MB L2 per core, 12 MB L3 per node. *)

val paper_client : unit -> t
(** The YCSB client machine: 16 cores, 8 GB RAM. *)

val pp : Format.formatter -> t -> unit
