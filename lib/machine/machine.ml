type topology = {
  sockets : int;
  numa_nodes_per_socket : int;
  cores_per_numa_node : int;
  l1_kb : int;
  l2_kb : int;
  l3_mb_per_node : int;
  ram_bytes : int;
}

let total_cores t = t.sockets * t.numa_nodes_per_socket * t.cores_per_numa_node

let numa_nodes t = t.sockets * t.numa_nodes_per_socket

type cost_model = {
  copy_rate : float;
  promote_rate : float;
  promote_freelist_rate : float;
  mark_rate : float;
  sweep_rate : float;
  compact_rate : float;
  card_scan_rate : float;
  root_scan_us_per_thread : float;
  gc_fixed_us : float;
  safepoint_base_us : float;
  safepoint_per_thread_us : float;
  sync_sigma : float;
  numa_remote_factor : float;
  tlab_refill_us : float;
  shared_alloc_us : float;
  contention_us_per_thread : float;
  locality_bytes : float;
      (* working-set size beyond which per-byte GC work degrades: caches,
         TLBs and local NUMA memory stop covering the heap, and remote
         scanning/copying dominates (Gidra et al.) *)
  satb_barrier_factor : float;
      (* mutator slowdown while a concurrent mark with an SATB write
         barrier is active (pre-write logging + dirty-card traffic) *)
  load_barrier_factor : float;
      (* mutator slowdown while concurrent relocation is in flight and
         every reference load runs through a colored-pointer-style test *)
  load_barrier_slow_us : float;
      (* one load-barrier slow path: forwarding-table lookup plus the
         self-healing store that remaps the referencing slot *)
  flip_fixed_us : float;
      (* fixed cost of a pauseless collector's flip safepoint (phase
         change handshake), deliberately sub-ms class *)
}

type t = {
  topology : topology;
  cost : cost_model;
  gc_threads : int;
  conc_gc_threads : int;
  speedup_gc : float;
  speedup_conc : float;
}

(* The raw speedup law, shared by [create] (which caches the two worker
   counts every pause uses) and [parallel_speedup] (the general entry). *)
let speedup_raw topology (cost : cost_model) n =
  let n = max 1 n in
  let sigma = cost.sync_sigma in
  let base = float_of_int n /. (1.0 +. (sigma *. float_of_int (n - 1))) in
  let per_node = topology.cores_per_numa_node in
  if n <= per_node then base
  else begin
    (* Workers span NUMA nodes: remote scanning and copying eat into the
       speedup.  We keep the within-node speedup and discount the excess. *)
    let local = float_of_int per_node /. (1.0 +. (sigma *. float_of_int (per_node - 1))) in
    let excess = base -. local in
    local +. (excess /. cost.numa_remote_factor)
  end

let create ?gc_threads ?conc_gc_threads topology cost =
  let cores = total_cores topology in
  (* JVM defaults: ParallelGCThreads ~ 5/8 of cores on large machines,
     ConcGCThreads ~ a quarter of that. *)
  let gc_threads =
    match gc_threads with Some n -> n | None -> max 1 (cores * 5 / 8)
  in
  let conc_gc_threads =
    match conc_gc_threads with Some n -> n | None -> max 1 ((gc_threads + 3) / 4)
  in
  {
    topology;
    cost;
    gc_threads;
    conc_gc_threads;
    speedup_gc = speedup_raw topology cost gc_threads;
    speedup_conc = speedup_raw topology cost conc_gc_threads;
  }

let cores t = total_cores t.topology

(* The memo hits on every stop-the-world phase ([gc_threads]) and every
   concurrent slice ([conc_gc_threads]); other counts fall through to
   the same formula, so the cached and computed paths agree bit for
   bit. *)
let parallel_speedup t n =
  if n = t.gc_threads then t.speedup_gc
  else if n = t.conc_gc_threads then t.speedup_conc
  else speedup_raw t.topology t.cost n

let time_to_safepoint t ~mutator_threads =
  t.cost.safepoint_base_us
  +. (t.cost.safepoint_per_thread_us *. float_of_int mutator_threads)

let root_scan_us t ~mutator_threads =
  (* Stacks are scanned in parallel by the GC workers. *)
  let work = t.cost.root_scan_us_per_thread *. float_of_int mutator_threads in
  work /. t.speedup_gc

let phase_us t ~rate ~workers ~bytes =
  assert (rate > 0.0);
  (* Per-byte cost degrades once the processed volume dwarfs the caches
     and local NUMA memory: a 50 GB compaction runs far below the DRAM
     streaming rate that a 200 MB one enjoys. *)
  let penalty =
    Float.min 8.0 (1.0 +. (float_of_int bytes /. t.cost.locality_bytes))
  in
  float_of_int bytes /. rate /. parallel_speedup t workers *. penalty

let alloc_overhead_us t ~tlab ~threads ~allocations ~bytes ~tlab_bytes =
  if tlab then begin
    (* One refill (shared bump + fence) every [tlab_bytes] bytes. *)
    let refills = float_of_int bytes /. float_of_int (max 1 tlab_bytes) in
    refills *. t.cost.tlab_refill_us
  end
  else begin
    (* Every allocation takes the shared CAS path and pays contention
       proportional to the number of concurrently allocating threads. *)
    let per_alloc =
      t.cost.shared_alloc_us
      +. (t.cost.contention_us_per_thread *. float_of_int (max 0 (threads - 1)))
    in
    float_of_int allocations *. per_alloc
  end

let default_cost =
  {
    copy_rate = 700.0;
    promote_rate = 350.0;
    promote_freelist_rate = 160.0;
    mark_rate = 2000.0;
    sweep_rate = 25000.0;
    compact_rate = 400.0;
    card_scan_rate = 2500.0;
    root_scan_us_per_thread = 120.0;
    gc_fixed_us = 900.0;
    safepoint_base_us = 120.0;
    safepoint_per_thread_us = 14.0;
    sync_sigma = 0.06;
    numa_remote_factor = 3.2;
    tlab_refill_us = 0.35;
    (* Per *allocation cluster* (~500 real objects): the TLAB-less path
       takes a contended CAS per real object. *)
    shared_alloc_us = 1.6;
    contention_us_per_thread = 0.04;
    locality_bytes = 4.0e9;
    (* ZGC/Shenandoah report low-single-digit steady-state throughput
       tax for the write barrier and ~10% worst-case for load barriers
       during relocation; mo-gc's journal write sits in the config knob
       (journal_alloc_overhead), not here. *)
    satb_barrier_factor = 1.05;
    load_barrier_factor = 1.10;
    load_barrier_slow_us = 0.12;
    flip_fixed_us = 140.0;
  }

let paper_server () =
  let topology =
    {
      sockets = 4;
      numa_nodes_per_socket = 2;
      cores_per_numa_node = 6;
      l1_kb = 1536;
      l2_kb = 6144;
      l3_mb_per_node = 12;
      ram_bytes = 64 * 1024 * 1024 * 1024;
    }
  in
  create topology default_cost

let paper_client () =
  let topology =
    {
      sockets = 2;
      numa_nodes_per_socket = 1;
      cores_per_numa_node = 8;
      l1_kb = 64;
      l2_kb = 512;
      l3_mb_per_node = 16;
      ram_bytes = 8 * 1024 * 1024 * 1024;
    }
  in
  create topology default_cost

let pp ppf t =
  Format.fprintf ppf
    "machine: %d cores (%d sockets x %d NUMA x %d cores), %d MB RAM, %d GC \
     threads, %d concurrent GC threads"
    (cores t) t.topology.sockets t.topology.numa_nodes_per_socket
    t.topology.cores_per_numa_node
    (t.topology.ram_bytes / (1024 * 1024))
    t.gc_threads t.conc_gc_threads
