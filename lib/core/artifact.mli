(** Typed experiment artifacts.

    Every experiment produces one of these: an identified, parameterised
    set of structured rows plus the legacy plain-text renderer.  The
    three render targets share the same rows, so CSV and JSON exports
    can never drift from the pretty tables.  The historical
    [?quick -> string] entry points in {!Experiments} are thin wrappers
    over [to_text]. *)

type cell = Text of string | Int of int | Float of float | Bool of bool

type t = private {
  name : string;  (** experiment id, e.g. "table2" *)
  title : string;
  params : (string * string) list;
      (** run parameters (scope, collector, benchmark, ...) *)
  columns : string list;
  rows : cell list list;  (** each row has [List.length columns] cells *)
  render_text : unit -> string;  (** the legacy pretty renderer *)
}

val make :
  name:string ->
  title:string ->
  params:(string * string) list ->
  columns:string list ->
  rows:cell list list ->
  render_text:(unit -> string) ->
  t

val cell_to_string : cell -> string

val to_text : t -> string
(** The plain-text table/figure, exactly what the string API returns. *)

val to_csv : t -> string
(** Header + rows, RFC-4180 quoting. *)

val to_json : t -> string
(** One object: name, title, params, columns, rows. *)

type format = [ `Text | `Csv | `Json ]

val render : t -> format -> string
