(** Ergonomics experiment: fixed vs adaptive sizing on the heap sweep.

    Reruns the Figure 3 heap sweep (one benchmark, the study's
    heap/young grid, all six collectors) twice per point — once with the
    study's fixed sizes and once with the adaptive sizing policy
    attached ([-XX:+UseAdaptiveSizePolicy]) — and reports pause
    statistics side by side together with the policy's convergence
    trajectory (young-generation size and decayed average pause, one
    point per minor collection). *)

type run_stats = {
  minor_pauses : int;
  avg_minor_ms : float;
  p99_minor_ms : float;
  trailing_p99_ms : float;
      (** p99 over the second half of the minor pauses — what the run
          converged to, as opposed to what it went through *)
  max_pause_ms : float;
  total_s : float;
  oom : bool;
  final_young_bytes : int;
  final_survivor_ratio : int;
  final_tenuring : int;
  resizes : int;  (** young-generation grow + shrink decisions applied *)
  trajectory : Gcperf_policy.Policy.trajectory_point list;
}

val measure :
  Gcperf_machine.Machine.t ->
  Gcperf_dacapo.Suite.bench ->
  gc:Gcperf_gc.Gc_config.t ->
  iterations:int ->
  seed:int ->
  run_stats
(** One complete run driven through [Vm] + [Mutator] directly (rather
    than the DaCapo harness) so the attached policy's trajectory and
    final sizes can be read back.  Also used by {!Tune}. *)

type cell = {
  gc : string;
  heap_bytes : int;
  young_bytes : int;  (** configured (initial) young size *)
  adaptive : bool;
  stats : run_stats;
  within_goal : bool;  (** trailing p99 at or under the pause goal *)
}

type result = {
  bench : string;
  pause_goal_ms : float;
  iterations : int;
  cells : cell list;
}

val run_scope :
  scope:Scope.t -> ?jobs:int -> ?pause_goal_ms:float -> unit -> result
(** Grid and iteration counts follow [scope] exactly as Figure 3's
    sweep does; [jobs] fans the (sizes x collector x mode) cells out
    with the deterministic pool. *)

val run : ?quick:bool -> unit -> result

val render : result -> string
