(** Figure 3: GC ranking by number of experiments won.

    "An experiment is defined by a benchmark, a heap size and a Young
    Generation size.  For each experiment we consider the run with the
    shortest execution time as the best."  The figure reports, per
    collector, the percentage of experiments in which it produced the
    best run — with the system GC enabled (a) and disabled (b). *)

type ranking = (string * float) list
(** (collector, percent of experiments won), descending. *)

type result = {
  with_system_gc : ranking;
  without_system_gc : ranking;
  experiments : int;  (** experiments per mode *)
}

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run : ?quick:bool -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val render : result -> string
