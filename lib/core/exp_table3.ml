module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Gc_event = Gcperf_sim.Gc_event
module Table = Gcperf_report.Table
module Gc_config = Gcperf_gc.Gc_config

type row = {
  heap_bytes : int;
  young_bytes : int;
  pauses : int;
  full_pauses : int;
  avg_pause_s : float;
  total_pause_s : float;
  total_exec_s : float;
  oom : bool;
}

type result = { rows : row list; collector : string; bench : string }

let big_grid () =
  let gb = Exp_common.gb in
  [ (gb 64, gb 6); (gb 64, gb 12); (gb 64, gb 24); (gb 64, gb 48) ]

let ladder () = big_grid () @ Exp_common.small_size_grid ()

let run_scope ~scope ?(jobs = Exp_common.default_jobs ())
    ?(kind = Gc_config.Cms) ?(bench = "h2") () =
  let machine = Exp_common.machine () in
  let b =
    match Suite.find bench with
    | Some b -> b
    | None -> invalid_arg ("Exp_table3: unknown benchmark " ^ bench)
  in
  let iterations = Scope.scaled scope 10 in
  let grid = ladder () in
  (* Each grid point is an independent cell: own VM, own heap, shared
     read-only machine. *)
  let rows =
    Exp_common.Pool.map_list ~jobs
      (fun (heap, young) ->
        let gc = Exp_common.config kind ~heap ~young () in
        let r =
          Harness.run ~seed:Exp_common.seed ~iterations machine b ~gc
            ~system_gc:false ()
        in
        (* Count stop-the-world pauses, as a gc.log analysis would. *)
        let pauses = List.length r.Harness.events in
        let fulls =
          List.length
            (List.filter
               (fun e -> Gc_event.is_full e.Gc_event.kind)
               r.Harness.events)
        in
        let total_pause =
          List.fold_left
            (fun acc e -> acc +. (e.Gc_event.duration_us /. 1e6))
            0.0 r.Harness.events
        in
        {
          heap_bytes = heap;
          young_bytes = young;
          pauses;
          full_pauses = fulls;
          avg_pause_s =
            (if pauses = 0 then 0.0 else total_pause /. float_of_int pauses);
          total_pause_s = total_pause;
          total_exec_s = r.Harness.total_s;
          oom = r.Harness.oom;
        })
      grid
  in
  { rows; collector = Gc_config.kind_to_string kind; bench }

let run ?(quick = false) ?kind ?bench () =
  run_scope ~scope:(Scope.of_quick quick) ?kind ?bench ()

let size_label bytes =
  let mb = bytes / (1024 * 1024) in
  if mb >= 1024 && mb mod 1024 = 0 then Printf.sprintf "%dGB" (mb / 1024)
  else Printf.sprintf "%dMB" mb

let render result =
  let t =
    Table.create
      ~columns:
        [
          ("Heap-YoungGen size", Table.Left);
          ("#pauses (full)", Table.Right);
          ("AVG pause time(s)", Table.Right);
          ("Total pause time(s)", Table.Right);
          ("Total execution time(s)", Table.Right);
        ]
  in
  List.iteri
    (fun i r ->
      if i = 4 then Table.add_separator t;
      Table.add_row t
        [
          Printf.sprintf "%s-%s%s"
            (size_label r.heap_bytes)
            (size_label r.young_bytes)
            (if r.oom then " (OOM)" else "");
          Printf.sprintf "%d(%d)" r.pauses r.full_pauses;
          Table.cell_f r.avg_pause_s;
          Table.cell_f r.total_pause_s;
          Table.cell_f r.total_exec_s;
        ])
    result.rows;
  Printf.sprintf
    "Table 3: statistics for the %s benchmark with different heap and\n\
     Young Generation sizes (%s)\n\n%s"
    result.bench result.collector (Table.render t)
