(** Fault-injection campaign: resilience under faults (the [faults]
    artifact).

    A grid over collector x fault profile for the Cassandra/YCSB
    deployment.  Each cell replays the stress server under one
    collector, then drives the same client workload through every
    {!Gcperf_fault.Profile} twice: once with the pre-resilience stack
    (naive client, unbounded server queue) and once with the resilient
    stack (timeouts, bounded retries with jitter, hedged reads, retry
    budget; server-side load shedding and pause-time fast rejection).
    Reported per session: goodput, retry amplification and the
    p50/p99/p99.9 client latency — the "does resilience tame the
    GC-pause tail" question the paper's §4.2 data raises but cannot
    answer.

    Determinism: one pool cell per collector; the server run and all of
    its fault sessions execute inside the cell, so results are
    byte-identical for every [~jobs]. *)

type session = {
  gc : string;
  profile : string;
  resilient : bool;
  summary : Gcperf_ycsb.Resilient.summary;
}

type cell = {
  gc : string;
  server : Exp_server.server_run;
  sessions : session list;
}

type result = { scope : Scope.t; cells : cell list }

val collectors : Gcperf_gc.Gc_config.kind list
(** CMS, G1, ParallelOld — the client-server collectors of §4. *)

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run : ?quick:bool -> unit -> result

val sessions : result -> session list
(** Every session of every cell, in cell order. *)

val render : result -> string
