module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Table = Gcperf_report.Table
module P = Gcperf_workload.Profile

type influence = Helps | Hurts | Indifferent

let influence_to_string = function
  | Helps -> "+"
  | Hurts -> "-"
  | Indifferent -> "="

type cell = {
  bench : string;
  gc : string;
  with_tlab_s : float;
  without_tlab_s : float;
  influence : influence;
}

type result = { cells : cell list }

(* "We computed a 5% deviation from the average execution time.  If the
   difference between the total times with and without TLAB is included
   in [-deviation, deviation], enabling the TLAB brings neither
   improvement nor deterioration." *)
let classify ~deviation ~with_tlab ~without_tlab =
  let avg = (with_tlab +. without_tlab) /. 2.0 in
  let band = deviation *. avg in
  let diff = without_tlab -. with_tlab in
  if diff > band then Helps else if diff < -.band then Hurts else Indifferent

let kind_index kind =
  let rec find i = function
    | [] -> 0
    | k :: tl -> if k = kind then i else find (i + 1) tl
  in
  find 0 Exp_common.all_kinds

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  let machine = Exp_common.machine () in
  let iterations = Scope.scaled scope 10 in
  (* One cell per (benchmark, collector): the with/without-TLAB pair
     stays inside the cell because the classification couples the two
     runs. *)
  let cells =
    Exp_common.Pool.map_list ~jobs
      (fun (bench, kind) ->
            let base = Exp_common.baseline kind in
            let cell_seed = Exp_common.seed + (37 * kind_index kind) in
            (* As in the study, the two configurations are measured by two
               separate executions of a noisy benchmark — the 5% band
               exists precisely because run-to-run variation is real. *)
            let with_t =
              Harness.run ~seed:cell_seed ~iterations machine bench
                ~gc:{ base with Gcperf_gc.Gc_config.tlab = true }
                ~system_gc:true ()
            in
            let without_t =
              Harness.run ~seed:(cell_seed + 4241) ~iterations machine bench
                ~gc:{ base with Gcperf_gc.Gc_config.tlab = false }
                ~system_gc:true ()
            in
            {
              bench = bench.Suite.profile.P.name;
              gc = Exp_common.kind_name kind;
              with_tlab_s = with_t.Harness.total_s;
              without_tlab_s = without_t.Harness.total_s;
              influence =
                classify ~deviation:0.05 ~with_tlab:with_t.Harness.total_s
                  ~without_tlab:without_t.Harness.total_s;
            })
      (List.concat_map
         (fun bench ->
           List.map (fun kind -> (bench, kind)) Exp_common.all_kinds)
         Suite.stable_subset)
  in
  { cells }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let render result =
  let gcs = List.map Exp_common.kind_name Exp_common.all_kinds in
  let t =
    Table.create
      ~columns:
        (("Benchmark", Table.Left)
        :: List.map (fun g -> (g, Table.Right)) gcs)
  in
  let benches =
    List.sort_uniq compare (List.map (fun c -> c.bench) result.cells)
  in
  List.iter
    (fun bench ->
      let row =
        List.map
          (fun gc ->
            match
              List.find_opt
                (fun c -> c.bench = bench && c.gc = gc)
                result.cells
            with
            | Some c -> influence_to_string c.influence
            | None -> "?")
          gcs
      in
      Table.add_row t (bench :: row))
    benches;
  "Table 4: TLAB influence over all GCs and the selected subset of\n\
   benchmarks (+ improves, - degrades, = indifferent at a 5% band)\n\n"
  ^ Table.render t
