(** Cluster ring experiment: tail at scale.

    The paper's single-JVM tables stop where modern deployments start:
    a replicated kvstore ring where every client request fans out across
    many nodes, each running its own collector on its own schedule.
    Dean & Barroso's arithmetic then takes over — if one node is inside
    a stop-the-world pause a fraction [p] of the time, a request that
    must wait for [N] scattered sub-reads hits {e some} pause with
    probability [1 - (1-p)^N] — so a per-node duty cycle far below the
    99th percentile at fan-out 1 dominates p99 at fan-out 32, and the
    collector choice becomes a cluster-level decision.

    The grid is collector × ring size {4,16,64} × fan-out {1,8,32} ×
    hedging {off,on}.  Node GC timelines depend only on
    (collector, node id, scope), so they are generated once in a phase-0
    pool fan-out and shared read-only by every grid cell; each cell then
    runs one {!Gcperf_cluster.Coordinator} session as its own pool cell.
    Both phases are pure functions of fixed seeds: artifacts are
    byte-identical at any [--jobs]. *)

type cell = {
  gc : string;
  ring_size : int;
  fanout : int;
  hedged : bool;
  node_pause_pct : float;
      (** mean per-node stop-the-world duty cycle, percent *)
  summary : Gcperf_cluster.Coordinator.summary;
}

type result = {
  scope : Scope.t;
  replication : int;
  cells : cell list;
  node_ooms : int;  (** node generation runs that ended in OOM *)
}

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run_grid :
  scope:Scope.t ->
  ?jobs:int ->
  ring_sizes:int list ->
  fanouts:int list ->
  unit ->
  result
(** [run_scope] with an explicit grid — the determinism tests drive a
    reduced grid through the same two-phase pool fan-out. *)

val render : result -> string
