(** Figures 1 and 2: the Xalan pause-time and per-iteration study.

    One run of Xalan per collector, with and without the forced system GC
    between iterations, at the baseline configuration.  Figure 1 scatters
    every stop-the-world pause (x = time since start, y = pause length);
    Figure 2 plots the duration of iterations 4-10 ("the first 4 warm-up
    rounds are enough for the benchmark execution to stabilize"). *)

type gc_series = {
  gc : string;
  pause_points : (float * float) array;  (** (time_s, pause_s) *)
  iteration_durations : float array;  (** all iterations, seconds *)
  total_s : float;
}

type result = { with_system_gc : gc_series list; without_system_gc : gc_series list }

val run_scope : scope:Scope.t -> ?jobs:int -> ?bench:string -> unit -> result

val run : ?quick:bool -> ?bench:string -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val render_figure1 : result -> string

val render_figure2 : result -> string
