(** Umbrella: every table and figure of the study, by name.

    Each experiment produces a typed {!Artifact.t} — structured rows
    plus the pretty plain-text renderer — under a {!Scope.t} run budget.
    The historical string API ([table2 ?quick ()] and friends) remains
    as thin wrappers: [?quick:true] maps to {!Scope.ci} and returns
    [Artifact.to_text], byte-identical to what the old code produced. *)

val artifacts : (string * (scope:Scope.t -> ?jobs:int -> unit -> Artifact.t)) list
(** The registry: experiment id to artifact builder.  Figures 1/2 share
    one Xalan campaign and Figure 5 / Tables 5-7 one client campaign,
    memoised per scope (not per [jobs] — results are byte-identical for
    every worker count, see {!Gcperf_exec.Pool}). *)

val all_names : string list
(** Experiment ids accepted by {!artifact} and {!by_name}. *)

val artifact : scope:Scope.t -> ?jobs:int -> string -> Artifact.t option
(** Run one experiment and return its typed artifact.  [jobs] caps the
    worker-domain count used to fan the experiment's cells out (default
    {!Exp_common.default_jobs}); any value yields the same artifact. *)

(** {1 Legacy string API} *)

val table2 : ?quick:bool -> unit -> string
val table3 : ?quick:bool -> unit -> string
val table4 : ?quick:bool -> unit -> string
val figure1 : ?quick:bool -> unit -> string
val figure2 : ?quick:bool -> unit -> string
val figure3 : ?quick:bool -> unit -> string
val figure4 : ?quick:bool -> unit -> string
val figure5 : ?quick:bool -> unit -> string
val tables567 : ?quick:bool -> unit -> string
val table8 : ?quick:bool -> unit -> string
val server_parallel_old : ?quick:bool -> unit -> string
val ablation : ?quick:bool -> unit -> string

val by_name : string -> (quick:bool -> string) option
