(** Umbrella: every table and figure of the study, by name.

    Each runner executes its campaign and returns the rendered plain-text
    artifact.  [quick] scales iteration/run counts down (used by the test
    suite); the full configuration reproduces the paper's setup. *)

val table2 : ?quick:bool -> unit -> string
val table3 : ?quick:bool -> unit -> string
val table4 : ?quick:bool -> unit -> string
val figure1 : ?quick:bool -> unit -> string
val figure2 : ?quick:bool -> unit -> string
val figure3 : ?quick:bool -> unit -> string
val figure4 : ?quick:bool -> unit -> string
val figure5 : ?quick:bool -> unit -> string
val tables567 : ?quick:bool -> unit -> string
val table8 : ?quick:bool -> unit -> string
val server_parallel_old : ?quick:bool -> unit -> string
val ablation : ?quick:bool -> unit -> string

val all_names : string list
(** Experiment ids accepted by {!by_name}. *)

val by_name : string -> (quick:bool -> string) option
