(** Umbrella: every table and figure of the study, through the registry.

    This module does two jobs.  At load time it {e registers} all
    fifteen experiments with {!Experiment} — it is the only place an
    experiment id, title or artifact builder is written down.  To
    callers it is a thin facade over that registry, kept as the public
    entry point so that linking this module (which every consumer does)
    is what guarantees the registrations have run — OCaml links library
    modules lazily, so the registry must live behind a module callers
    actually reference.

    Adding experiment #16 is one [Experiment.register] call in the
    implementation; [gcperf list], [gcperf run], [gcperf all],
    did-you-mean and the test suite pick it up with no further wiring. *)

val all : unit -> Experiment.t list
(** Every registered experiment, in registration (= presentation)
    order. *)

val all_names : string list
(** Ids of {!all}: what {!artifact} accepts and [gcperf run] suggests
    from. *)

val artifact : scope:Scope.t -> ?jobs:int -> string -> Artifact.t option
(** Run one experiment and return its typed artifact.  Campaigns that
    feed several artifacts (Figures 1/2; Figure 5 / Tables 5-7) run
    once per scope and are shared through the registry memo.  [jobs]
    caps the worker-domain fan-out (default
    {!Exp_common.default_jobs}); any value yields the same artifact. *)

val run : Experiment.t -> scope:Scope.t -> ?jobs:int -> unit -> Artifact.t list
(** {!Experiment.run}, re-exported for callers iterating {!all}. *)
