module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Gc_config = Gcperf_gc.Gc_config
module Table = Gcperf_report.Table
module Chart = Gcperf_report.Chart
module Telemetry = Gcperf_telemetry.Telemetry
module Span = Gcperf_telemetry.Span
module Distill = Gcperf_distill.Distill

(* Distilled cost of every collector (LBO methodology, DESIGN.md §18).

   For each (heap, young) point of the Table 3 ladder, run h2 under all
   eight collectors with telemetry on, synthesise the ideal-GC baseline
   from the recorded mutator timeline (collector costs struck out,
   allocation tax retained) and report the distilled cost
   (t_real − t_ideal)/t_ideal split into stop-the-world, concurrent
   core-steal and mutator-tax shares.  Pause-time rankings hide the
   barrier/journal tax the pauseless family charges on every mutator
   quantum; this table prices it. *)

type cell = {
  gc : string;
  heap_bytes : int;
  young_bytes : int;
  oom : bool;
  cost : Distill.cost;
}

type result = { scope : Scope.t; bench : string; cells : cell list }

let bench_name = "h2"
let kinds () = Gc_config.extended_kinds

(* The Table 3 ladder with the small-memory block first: ci scope cuts
   the grid to its first point, and under ci's two iterations the 64 GB
   points never collect — leading with 1 GB-200 MB gives the ci golden
   nonzero STW/steal/tax shares for every collector. *)
let ladder () =
  let big, small =
    List.partition (fun (h, _) -> h > Exp_common.gb 1) (Exp_table3.ladder ())
  in
  small @ big

let one ~machine ~bench ~iterations ((heap, young), kind) =
  (* Per-cell registry: observation only, so enabling it cannot perturb
     the run (Telemetry's non-perturbation invariant) — the sweep stays
     byte-identical at any --jobs/--gc-jobs. *)
  let telemetry = Telemetry.create ~enabled:true () in
  let gc = Exp_common.config kind ~heap ~young () in
  let r =
    Harness.run ~telemetry ~seed:Exp_common.seed ~iterations machine bench ~gc
      ~system_gc:false ()
  in
  {
    gc = Gc_config.kind_to_string kind;
    heap_bytes = heap;
    young_bytes = young;
    oom = r.Harness.oom;
    cost = Distill.of_run telemetry;
  }

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  let machine = Exp_common.machine () in
  let bench =
    match Suite.find bench_name with
    | Some b -> b
    | None -> invalid_arg ("Exp_distill: unknown benchmark " ^ bench_name)
  in
  let iterations = Scope.scaled scope 10 in
  let grid = Scope.grid scope (ladder ()) in
  let cells =
    Exp_common.Pool.map_list ~jobs
      (fun c -> one ~machine ~bench ~iterations c)
      (List.concat_map
         (fun pt -> List.map (fun k -> (pt, k)) (kinds ()))
         grid)
  in
  { scope; bench = bench_name; cells }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let size_label bytes =
  let mb = bytes / (1024 * 1024) in
  if mb >= 1024 && mb mod 1024 = 0 then Printf.sprintf "%dGB" (mb / 1024)
  else Printf.sprintf "%dMB" mb

let point_label c =
  Printf.sprintf "%s-%s" (size_label c.heap_bytes) (size_label c.young_bytes)

(* Mean distilled cost per collector over the non-OOM cells, in
   first-seen (= extended_kinds) order. *)
let ranking cells =
  let order = ref [] in
  let sums = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if not (Hashtbl.mem sums c.gc) then begin
        order := c.gc :: !order;
        Hashtbl.add sums c.gc (0.0, 0)
      end;
      if not c.oom then begin
        let s, n = Hashtbl.find sums c.gc in
        Hashtbl.replace sums c.gc (s +. c.cost.Distill.distilled, n + 1)
      end)
    cells;
  List.rev !order
  |> List.map (fun gc ->
         let s, n = Hashtbl.find sums gc in
         (gc, if n = 0 then Float.infinity else s /. float_of_int n))
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)

let phase_total c p =
  match List.assoc_opt p c.cost.Distill.components.Distill.phases with
  | Some v -> v
  | None -> 0.0

let render r =
  let t =
    Table.create
      ~columns:
        [
          ("GC", Table.Left);
          ("Heap-YoungGen", Table.Left);
          ("t_ideal(s)", Table.Right);
          ("t_real(s)", Table.Right);
          ("distilled", Table.Right);
          ("stw", Table.Right);
          ("steal", Table.Right);
          ("mutator tax", Table.Right);
        ]
  in
  let last_point = ref "" in
  List.iter
    (fun c ->
      let pt = point_label c in
      if pt <> !last_point then begin
        last_point := pt;
        Table.add_separator t
      end;
      let k = c.cost in
      Table.add_row t
        [
          (c.gc ^ if c.oom then " [OOM]" else "");
          pt;
          Table.cell_f (k.Distill.t_ideal_us /. 1e6);
          Table.cell_f (k.Distill.t_real_us /. 1e6);
          Table.cell_f ~decimals:4 k.Distill.distilled;
          Table.cell_f ~decimals:4 k.Distill.stw_over;
          Table.cell_f ~decimals:4 k.Distill.steal_over;
          Table.cell_f ~decimals:4 k.Distill.tax_over;
        ])
    r.cells;
  (* Per-phase STW breakdown at the first ladder point (the paper's
     64 GB deployment size): where the stop-the-world share is spent. *)
  let first_pt =
    match r.cells with [] -> "" | c :: _ -> point_label c
  in
  let pt_table =
    let pt =
      Table.create
        ~columns:
          [
            ("GC", Table.Left);
            ("safepoint(s)", Table.Right);
            ("mark(s)", Table.Right);
            ("copy(s)", Table.Right);
            ("promote(s)", Table.Right);
            ("compact(s)", Table.Right);
            ("remap(s)", Table.Right);
            ("fold(s)", Table.Right);
            ("other(s)", Table.Right);
          ]
    in
    List.iter
      (fun c ->
        if point_label c = first_pt then begin
          let p ph = phase_total c ph /. 1e6 in
          let named =
            p Span.Safepoint +. p Span.Mark +. p Span.Copy +. p Span.Promote
            +. p Span.Compact +. p Span.Remap +. p Span.Fold
          in
          let total = c.cost.Distill.components.Distill.stw_us /. 1e6 in
          Table.add_row pt
            [
              c.gc;
              Table.cell_f ~decimals:3 (p Span.Safepoint);
              Table.cell_f ~decimals:3 (p Span.Mark);
              Table.cell_f ~decimals:3 (p Span.Copy);
              Table.cell_f ~decimals:3 (p Span.Promote);
              Table.cell_f ~decimals:3 (p Span.Compact);
              Table.cell_f ~decimals:3 (p Span.Remap);
              Table.cell_f ~decimals:3 (p Span.Fold);
              Table.cell_f ~decimals:3 (Float.max 0.0 (total -. named));
            ]
        end)
      r.cells;
    Table.render pt
  in
  let rank = ranking r.cells in
  let bars =
    Chart.bars ~title:"Mean distilled cost (lower is better)"
      (List.map
         (fun (gc, v) ->
           (gc, if Float.is_finite v then v else 0.0))
         rank)
  in
  (* Distilled-cost curve across the ladder: one series per collector,
     x = ladder point index. *)
  let points = ref [] in
  List.iter
    (fun c ->
      let pt = point_label c in
      if not (List.mem pt !points) then points := pt :: !points)
    r.cells;
  let points = List.rev !points in
  let glyph_of = function
    | "SerialGC" -> 'S'
    | "ParNewGC" -> 'N'
    | "ParallelGC" -> 'P'
    | "ParallelOldGC" -> 'O'
    | "ConcMarkSweepGC" -> 'C'
    | "G1GC" -> 'G'
    | "ConcurrentRegionsGC" -> 'R'
    | "JournalRCGC" -> 'J'
    | s -> if s = "" then '*' else s.[0]
  in
  let curve =
    if List.length points < 2 then ""
    else
      let index_of p =
        let rec go i = function
          | [] -> None
          | q :: _ when q = p -> Some i
          | _ :: tl -> go (i + 1) tl
        in
        go 0 points
      in
      let series =
        List.map
          (fun (gc, _) ->
            let pts =
              List.filter_map
                (fun c ->
                  if c.gc = gc && not c.oom then
                    match index_of (point_label c) with
                    | Some idx ->
                        Some (float_of_int idx, c.cost.Distill.distilled)
                    | None -> None
                  else None)
                r.cells
              |> Array.of_list
            in
            { Chart.label = gc; glyph = glyph_of gc; points = pts })
          rank
      in
      "\n\nDistilled cost across the ladder (x = ladder point index, in\n\
       table order):\n\n"
      ^ Chart.line ~x_label:"ladder point" ~y_label:"distilled" series
  in
  Printf.sprintf
    "Distilled collector cost (LBO): for each Table 3 heap point, the\n\
     ideal-GC baseline replays the recorded mutator timeline of the %s\n\
     benchmark with collector costs struck out (allocation tax kept);\n\
     distilled = (t_real - t_ideal)/t_ideal, split into stop-the-world,\n\
     concurrent core-steal and barrier/journal mutator-tax shares\n\
     (seed %d)\n\n\
     %s\n\
     Stop-the-world phase breakdown at %s:\n\n\
     %s\n\
     %s%s"
    r.bench Exp_common.seed (Table.render t) first_pt pt_table bars curve
