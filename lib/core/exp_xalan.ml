module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Gc_event = Gcperf_sim.Gc_event
module Chart = Gcperf_report.Chart
module Mutator = Gcperf_workload.Mutator

type gc_series = {
  gc : string;
  pause_points : (float * float) array;
  iteration_durations : float array;
  total_s : float;
}

type result = {
  with_system_gc : gc_series list;
  without_system_gc : gc_series list;
}

(* One glyph per collector, in Gc_config.all_kinds order:
   Serial, ParNew, Parallel, ParallelOld, CMS, G1. *)
let glyphs = [| 'S'; 'N'; 'L'; 'P'; 'C'; 'G' |]

let series_of_run (r : Harness.result) =
  {
    gc = r.Harness.gc_name;
    pause_points =
      Array.of_list
        (List.map
           (fun e ->
             (e.Gc_event.start_us /. 1e6, e.Gc_event.duration_us /. 1e6))
           r.Harness.events);
    iteration_durations =
      Array.map (fun s -> s.Mutator.duration_s) r.Harness.iterations;
    total_s = r.Harness.total_s;
  }

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) ?(bench = "xalan")
    () =
  let machine = Exp_common.machine () in
  let b =
    match Suite.find bench with
    | Some b -> b
    | None -> invalid_arg ("Exp_xalan: unknown benchmark " ^ bench)
  in
  let iterations = Scope.scaled scope 10 in
  (* Both system-GC modes and all six collectors fan out together: 12
     independent cells, results split back by mode in collector order. *)
  let kinds = Exp_common.all_kinds in
  let cells =
    Array.of_list
      (List.concat_map
         (fun system_gc -> List.map (fun kind -> (system_gc, kind)) kinds)
         [ true; false ])
  in
  let series =
    Exp_common.Pool.map_cells ~jobs
      (fun (system_gc, kind) ->
        let gc = Exp_common.baseline kind in
        series_of_run
          (Harness.run ~seed:Exp_common.seed ~iterations machine b ~gc
             ~system_gc ()))
      cells
  in
  let nkinds = List.length kinds in
  let slice off = Array.to_list (Array.sub series off nkinds) in
  { with_system_gc = slice 0; without_system_gc = slice nkinds }

let run ?(quick = false) ?bench () =
  run_scope ~scope:(Scope.of_quick quick) ?bench ()

let chart_series l =
  List.mapi
    (fun i s ->
      { Chart.label = s.gc; glyph = glyphs.(i mod Array.length glyphs);
        points = s.pause_points })
    l

let render_figure1 result =
  let part title l =
    Printf.sprintf "%s\n%s" title
      (Chart.scatter ~x_label:"Execution Time (s)"
         ~y_label:"GC Pause Duration (s)" (chart_series l))
  in
  "Figure 1: GC pause time for the Xalan benchmark with and without a\n\
   system GC between iterations\n\n"
  ^ part "(a) System GC" result.with_system_gc
  ^ "\n"
  ^ part "(b) No System GC" result.without_system_gc

let render_figure2 result =
  let last_iterations s =
    (* Iterations 4..N, as in the paper's charts. *)
    let pts =
      Array.mapi (fun i d -> (float_of_int (i + 1), d)) s.iteration_durations
    in
    Array.of_list (List.filteri (fun i _ -> i >= 3) (Array.to_list pts))
  in
  let series l =
    List.mapi
      (fun i s ->
        {
          Chart.label = s.gc;
          glyph = glyphs.(i mod Array.length glyphs);
          points = last_iterations s;
        })
      l
  in
  let part title l =
    Printf.sprintf "%s\n%s" title
      (Chart.line ~x_label:"Iteration" ~y_label:"Duration (s)" (series l))
  in
  let totals l =
    String.concat "\n"
      (List.map (fun s -> Printf.sprintf "    %-16s total %.2fs" s.gc s.total_s) l)
  in
  "Figure 2: execution time for the Xalan benchmark per iteration\n\n"
  ^ part "(a) System GC" result.with_system_gc
  ^ totals result.with_system_gc
  ^ "\n\n"
  ^ part "(b) No System GC" result.without_system_gc
  ^ totals result.without_system_gc
  ^ "\n"
