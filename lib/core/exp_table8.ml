module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Gc_event = Gcperf_sim.Gc_event
module Gc_config = Gcperf_gc.Gc_config
module Table = Gcperf_report.Table

type verdict = Good | Fairly_good | Bad

type pause_verdict = Short | Acceptable | Significant | Unacceptable

type entry = {
  gc : string;
  experiment : string;
  throughput : verdict;
  pause : pause_verdict;
  total_rel : float;
  max_pause_s : float;
}

type result = { entries : entry list }

let verdict_to_string = function
  | Good -> "good"
  | Fairly_good -> "fairly good"
  | Bad -> "bad"

let pause_verdict_to_string = function
  | Short -> "short"
  | Acceptable -> "acceptable"
  | Significant -> "significant"
  | Unacceptable -> "unacceptable"

let classify_throughput rel =
  if rel <= 1.05 then Good else if rel < 1.15 then Fairly_good else Bad

(* On the benchmarks, sub-second pauses are short, a few seconds of
   forced full collection is tolerable, and beyond that unacceptable
   (the paper judges G1's forced fulls unacceptable and CMS's
   acceptable); on an interactive server, seconds are "significant" and
   tens of seconds or more unacceptable. *)
let classify_pause ~max_pause_s ~server =
  if server then begin
    if max_pause_s < 1.0 then Acceptable
    else if max_pause_s < 10.0 then Significant
    else Unacceptable
  end
  else if max_pause_s < 0.75 then Short
  else if max_pause_s < 1.5 then Acceptable
  else Unacceptable

let main_kinds = [ Gc_config.ParallelOld; Gc_config.Cms; Gc_config.G1 ]

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  let machine = Exp_common.machine () in
  let iterations = Scope.scaled scope 10 in
  (* DaCapo side: stable subset, baseline configuration, system GC on (the
     paper's case (1), where the collectors differ the most).  One cell
     per (collector, benchmark); the per-collector totals fold over the
     results in cell order, so chunk [ki] holds collector [ki]'s runs in
     benchmark order exactly as the sequential nested map produced them. *)
  let benches = Suite.stable_subset in
  let nbenches = List.length benches in
  let dacapo_cells =
    Array.of_list
      (List.concat_map
         (fun kind -> List.map (fun bench -> (kind, bench)) benches)
         main_kinds)
  in
  let dacapo_runs =
    Exp_common.Pool.map_cells ~jobs
      (fun (kind, bench) ->
        let gc = Exp_common.baseline kind in
        Harness.run ~seed:Exp_common.seed ~iterations machine bench ~gc
          ~system_gc:true ())
      dacapo_cells
  in
  let dacapo =
    List.mapi
      (fun ki kind ->
        let runs =
          Array.to_list (Array.sub dacapo_runs (ki * nbenches) nbenches)
        in
        let total =
          List.fold_left (fun acc r -> acc +. r.Harness.total_s) 0.0 runs
        in
        let max_pause =
          List.fold_left
            (fun acc r ->
              List.fold_left
                (fun a e -> Float.max a (e.Gc_event.duration_us /. 1e6))
                acc r.Harness.events)
            0.0 runs
        in
        (Gc_config.kind_to_string kind, total, max_pause))
      main_kinds
  in
  let best_total =
    List.fold_left (fun acc (_, t, _) -> Float.min acc t) infinity dacapo
  in
  let dacapo_entries =
    List.map
      (fun (gc, total, max_pause) ->
        let rel = total /. best_total in
        {
          gc;
          experiment = "DaCapo";
          throughput = classify_throughput rel;
          pause = classify_pause ~max_pause_s:max_pause ~server:false;
          total_rel = rel;
          max_pause_s = max_pause;
        })
      dacapo
  in
  (* Server side: stressed key-value store, one cell per collector. *)
  let server_runs =
    Exp_common.Pool.map_list ~jobs
      (fun kind ->
        Exp_server.run_server_scope ~scope ~kind ~stress:true ~hours:2.0 ())
      main_kinds
  in
  let server_entries =
    List.map
      (fun (r : Exp_server.server_run) ->
        {
          gc = r.Exp_server.gc;
          experiment = "Cassandra";
          (* Relative throughput on the server is dominated by time lost
             to pauses. *)
          total_rel =
            (let paused =
               Array.fold_left (fun a (_, d) -> a +. d) 0.0 r.Exp_server.pauses
             in
             1.0 +. (paused /. Float.max 1.0 r.Exp_server.duration_s));
          throughput =
            (let paused =
               Array.fold_left (fun a (_, d) -> a +. d) 0.0 r.Exp_server.pauses
             in
             classify_throughput
               (1.0 +. (paused /. Float.max 1.0 r.Exp_server.duration_s)));
          pause =
            classify_pause ~max_pause_s:r.Exp_server.max_pause_s ~server:true;
          max_pause_s = r.Exp_server.max_pause_s;
        })
      server_runs
  in
  { entries = dacapo_entries @ server_entries }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let render result =
  let t =
    Table.create
      ~columns:
        [
          ("GC", Table.Left);
          ("Experiment", Table.Left);
          ("Throughput", Table.Left);
          ("Pause Time", Table.Left);
          ("(rel. total)", Table.Right);
          ("(max pause s)", Table.Right);
        ]
  in
  let order = [ "ParallelOldGC"; "ConcMarkSweepGC"; "G1GC" ] in
  List.iter
    (fun gc ->
      List.iter
        (fun exp_name ->
          match
            List.find_opt
              (fun e -> e.gc = gc && e.experiment = exp_name)
              result.entries
          with
          | None -> ()
          | Some e ->
              Table.add_row t
                [
                  e.gc;
                  e.experiment;
                  verdict_to_string e.throughput;
                  pause_verdict_to_string e.pause;
                  Table.cell_f e.total_rel;
                  Table.cell_f e.max_pause_s;
                ])
        [ "DaCapo"; "Cassandra" ];
      Table.add_separator t)
    order;
  "Table 8: advantages and disadvantages of the three main GCs,\n\
   derived from the measured campaigns\n\n"
  ^ Table.render t
