(** Table 2: benchmark stability.

    Each stable-subset benchmark is run 10 times (10 iterations each,
    baseline Java configuration, system GC between iterations) and the
    relative standard deviations of the final-iteration duration and of
    the total execution time are reported — the criteria the paper used
    to select its benchmark subset. *)

type row = {
  bench : string;
  final_rsd_pct : float;
  total_rsd_pct : float;
  runs : int;
}

type result = { rows : row list }

val run_scope :
  scope:Scope.t -> ?jobs:int -> ?all_benchmarks:bool -> unit -> result
(** [all_benchmarks] also measures the unstable benchmarks (the paper ran
    everything and then selected); default false = the Table 2 subset.
    [jobs] caps the worker-domain count for the cell fan-out (default
    {!Exp_common.default_jobs}); the result is identical for any value. *)

val run : ?quick:bool -> ?all_benchmarks:bool -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val render : result -> string
