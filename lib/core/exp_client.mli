(** Client-side experiments (§4.2): Figure 5 and Tables 5-7.

    The YCSB-like client runs its 50 % read / 50 % update transaction
    phase against the stressed server for each of the three main
    collectors.  Figure 5 plots the highest 10 000 latency points with
    the server's GC pauses overlaid; Tables 5-7 compute the full-point-set
    statistics (average, extremes, and the 0.5-1.5x / >2^n x bands with
    their GC correlation). *)

type gc_experiment = {
  gc : string;
  points : Gcperf_ycsb.Client.point array;
  server : Exp_server.server_run;
  read_report : Gcperf_stats.Stats.latency_report;
  update_report : Gcperf_stats.Stats.latency_report;
}

type result = {
  parallel_old : gc_experiment;
  cms : gc_experiment;
  g1 : gc_experiment;
}

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run : ?quick:bool -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val render_figure5 : result -> string

val render_table : gc_experiment -> string
(** One of Tables 5/6/7, depending on the experiment's collector. *)

val render_tables567 : result -> string
