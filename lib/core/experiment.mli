(** First-class experiment registry.

    Before this module, wiring an experiment into the repo meant a new
    [*_artifact] builder, a new entry in a hand-written assoc list, a
    hand-rolled memo ref if the experiment shared a campaign, and a new
    arm in every CLI consumer.  Now an experiment is a value: register
    it once and [gcperf list], [gcperf run], [gcperf all], did-you-mean
    suggestions and the test suite all enumerate the same table —
    adding experiment #16 is one {!register} call.

    A {e campaign} that yields several artifacts (the Xalan runs feed
    Figures 1 {e and} 2; the client runs feed Figure 5 and Tables 5-7)
    is registered once per artifact id with a shared [memo_key] and a
    runner returning every artifact of the campaign: the first id to
    run at a given scope fills the memo, its siblings read it.  Memos
    deliberately ignore [jobs] — the pool's determinism contract makes
    results byte-identical for every worker count — and live on the
    orchestrating domain only. *)

type runner = scope:Scope.t -> ?jobs:int -> unit -> Artifact.t list
(** Runs the experiment's campaign under a scope budget and returns its
    artifacts (singleton for most experiments).  [jobs] caps the worker
    fan-out; any value yields the same artifacts. *)

type t = private {
  id : string;  (** what [gcperf run] accepts, e.g. ["table2"] *)
  title : string;
  memo_key : string option;
      (** campaign key: entries sharing it share one memoised run *)
  runner : runner;
}

val register :
  id:string -> title:string -> ?memo_key:string -> runner -> unit
(** Add an experiment to the registry.  Order of registration is the
    order [all]/[ids] report — [gcperf all] runs in it.  Raises
    [Invalid_argument] on a duplicate id. *)

val all : unit -> t list

val ids : unit -> string list

val find : string -> t option

val run : t -> scope:Scope.t -> ?jobs:int -> unit -> Artifact.t list
(** The entry's artifacts, through the campaign memo. *)

val artifact : scope:Scope.t -> ?jobs:int -> string -> Artifact.t option
(** [find] + [run] + select the artifact whose name is the id: the one
    call almost every consumer wants.  [None] for unknown ids. *)
