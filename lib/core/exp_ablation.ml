module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Gc_event = Gcperf_sim.Gc_event
module Vm = Gcperf_runtime.Vm
module Server = Gcperf_kvstore.Server
module Table = Gcperf_report.Table

type g1_full_row = {
  mode : string;
  total_s : float;
  max_full_pause_s : float;
}

type numa_row = { numa_factor : float; full_pause_s : float }

type tenuring_row = {
  threshold : int;
  pauses : int;
  avg_pause_s : float;
  total_pause_s : float;
}

type result = {
  g1_full : g1_full_row list;
  numa : numa_row list;
  tenuring : tenuring_row list;
}

let max_full events =
  List.fold_left
    (fun acc e ->
      if Gc_event.is_full e.Gc_event.kind then
        Float.max acc (e.Gc_event.duration_us /. 1e6)
      else acc)
    0.0 events

(* Ablation 1: G1 with a parallel full collection, on the Figure 1/2
   campaign (xalan, forced system GC). *)
let ablate_g1_full ~scope ~jobs =
  let machine = Exp_common.machine () in
  let bench = Option.get (Suite.find "xalan") in
  let iterations = Scope.scaled scope 10 in
  let one (mode, g1_parallel_full) =
    let gc =
      { (Exp_common.baseline Gc_config.G1) with Gc_config.g1_parallel_full }
    in
    let r =
      Harness.run ~seed:Exp_common.seed ~iterations machine bench ~gc
        ~system_gc:true ()
    in
    {
      mode;
      total_s = r.Harness.total_s;
      max_full_pause_s = max_full r.Harness.events;
    }
  in
  Exp_common.Pool.map_list ~jobs one
    [
      ("serial full GC (JDK8)", false);
      ("parallel full GC (ablation)", true);
    ]

(* Ablation 2: the NUMA remote-access penalty, on the stressed server's
   ParallelOld full collection. *)
let ablate_numa ~scope ~jobs =
  (* Short campaign anyway; never below the 0.1 h the quick mode used. *)
  let hours = Float.max 0.1 (Scope.hours scope 0.6) in
  let one numa_factor =
    let base = Machine.paper_server () in
    let machine =
      {
        base with
        Machine.cost = { base.Machine.cost with Machine.numa_remote_factor = numa_factor };
      }
    in
    let gc =
      Gc_config.default Gc_config.ParallelOld ~heap_bytes:(Exp_common.gb 64)
        ~young_bytes:(Exp_common.gb 12)
    in
    let vm = Vm.create machine gc ~seed:Exp_common.seed in
    let server =
      Server.create vm
        (Server.stress_config ~heap_bytes:gc.Gc_config.heap_bytes)
        ~seed:(Exp_common.seed + 1)
    in
    (try
       (* Pre-load close to the old generation's capacity so the run
          triggers its full collection quickly. *)
       Server.replay_commitlog server ~target_bytes:(Exp_common.gb 46);
       Server.run server ~duration_s:(hours *. 3600.0) ~ops_per_s:1500.0
         ~read_frac:0.5 ~insert_frac:0.3
     with Gcperf_gc.Gc_ctx.Out_of_memory _ -> ());
    { numa_factor; full_pause_s = max_full (Gc_event.events (Vm.events vm)) }
  in
  Exp_common.Pool.map_list ~jobs one
    [ 3.2 (* the model's default *); 1.0 (* NUMA-oblivious ideal *) ]

(* Ablation 3: tenuring-threshold sweep on h2 with a small heap. *)
let ablate_tenuring ~scope ~jobs =
  let machine = Exp_common.machine () in
  let bench = Option.get (Suite.find "h2") in
  let iterations = Scope.scaled scope 10 in
  let thresholds = [ 1; 3; 6; 12 ] in
  Exp_common.Pool.map_list ~jobs
    (fun threshold ->
      let gc =
        (* A survivor space large enough (300 MB, adaptive target 150 MB,
           survivors ~120 MB) that the threshold — not overflow and not
           the adaptive clamp — decides promotion. *)
        {
          (Gc_config.default Gc_config.ParallelOld
             ~heap_bytes:(Exp_common.gb 4)
             ~young_bytes:(Exp_common.gb 3))
          with
          Gc_config.tenuring_threshold = threshold;
        }
      in
      let r =
        Harness.run ~seed:Exp_common.seed ~iterations machine bench ~gc
          ~system_gc:false ()
      in
      let pauses = List.length r.Harness.events in
      let total =
        List.fold_left
          (fun acc e -> acc +. (e.Gc_event.duration_us /. 1e6))
          0.0 r.Harness.events
      in
      {
        threshold;
        pauses;
        avg_pause_s =
          (if pauses = 0 then 0.0 else total /. float_of_int pauses);
        total_pause_s = total;
      })
    thresholds

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  {
    g1_full = ablate_g1_full ~scope ~jobs;
    numa = ablate_numa ~scope ~jobs;
    tenuring = ablate_tenuring ~scope ~jobs;
  }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation studies (design choices from DESIGN.md, removed one at a time)\n\n";
  let t1 =
    Table.create
      ~columns:
        [
          ("G1 full-GC mode", Table.Left);
          ("xalan total (s)", Table.Right);
          ("max full pause (s)", Table.Right);
        ]
  in
  List.iter
    (fun row ->
      Table.add_row t1
        [ row.mode; Table.cell_f row.total_s; Table.cell_f row.max_full_pause_s ])
    r.g1_full;
  Buffer.add_string buf "1. G1's single-threaded full collection (JDK8)\n";
  Buffer.add_string buf (Table.render t1);
  let t2 =
    Table.create
      ~columns:
        [
          ("NUMA remote factor", Table.Right);
          ("stressed-server max full pause (s)", Table.Right);
        ]
  in
  List.iter
    (fun row ->
      Table.add_row t2
        [ Table.cell_f ~decimals:1 row.numa_factor; Table.cell_f row.full_pause_s ])
    r.numa;
  Buffer.add_string buf "\n2. NUMA remote-access penalty\n";
  Buffer.add_string buf (Table.render t2);
  let t3 =
    Table.create
      ~columns:
        [
          ("tenuring threshold", Table.Right);
          ("#pauses", Table.Right);
          ("avg pause (s)", Table.Right);
          ("total pause (s)", Table.Right);
        ]
  in
  List.iter
    (fun row ->
      Table.add_row t3
        [
          string_of_int row.threshold;
          string_of_int row.pauses;
          Table.cell_f ~decimals:3 row.avg_pause_s;
          Table.cell_f ~decimals:3 row.total_pause_s;
        ])
    r.tenuring;
  Buffer.add_string buf "\n3. Tenuring threshold (h2, 4 GB heap, 3 GB young)\n";
  Buffer.add_string buf (Table.render t3);
  Buffer.contents buf
