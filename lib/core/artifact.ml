type cell = Text of string | Int of int | Float of float | Bool of bool

type t = {
  name : string;
  title : string;
  params : (string * string) list;
  columns : string list;
  rows : cell list list;
  render_text : unit -> string;
}

let make ~name ~title ~params ~columns ~rows ~render_text =
  { name; title; params; columns; rows; render_text }

let cell_to_string = function
  | Text s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let to_text t = t.render_text ()

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map csv_escape t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun c -> csv_escape (cell_to_string c)) row));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cell_to_json = function
  | Text s -> "\"" ^ json_escape s ^ "\""
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.6g" f
      else "\"" ^ Printf.sprintf "%h" f ^ "\""
  | Bool b -> string_of_bool b

let to_json t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"title\":\"%s\",\"params\":{"
       (json_escape t.name) (json_escape t.title));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    t.params;
  Buffer.add_string buf "},\"columns\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf ("\"" ^ json_escape c ^ "\""))
    t.columns;
  Buffer.add_string buf "],\"rows\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      List.iteri
        (fun j c ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (cell_to_json c))
        row;
      Buffer.add_char buf ']')
    t.rows;
  Buffer.add_string buf "]}";
  Buffer.contents buf

type format = [ `Text | `Csv | `Json ]

let render t = function
  | `Text -> to_text t
  | `Csv -> to_csv t
  | `Json -> to_json t
