(** Run budgets.

    One record answers every "how much work" question an experiment
    asks, replacing the [?quick:bool] flags that used to thread through
    the campaign code.  Three budgets exist:

    - {!ci}: the old [~quick:true] — replicated counts divided by 4,
      virtual-time budgets by 10, client rates by 4, grids cut to their
      first point.  What the test suite runs; byte-compatible with the
      historical quick mode.
    - {!bench}: an intermediate budget for the bechamel harness and
      local iteration — counts halved, grids cut to three points.
    - {!full}: the paper's configuration, untouched.

    Experiments take [scope:t] ([run_scope]); the [?quick] entry points
    remain as thin wrappers via {!of_quick}. *)

type t = private {
  label : string;
  run_divisor : int;  (** replicated runs / iterations are divided by this *)
  time_divisor : int;
      (** virtual-time budgets (server hours, preload bytes) *)
  rate_divisor : int;  (** client request rates *)
  grid_points : int option;  (** [None] = full grid; [Some n] = first n *)
}

val ci : t
val bench : t
val full : t

val all : t list
(** [ci; bench; full]. *)

val of_quick : bool -> t
(** [true] is {!ci}, [false] is {!full}. *)

val to_string : t -> string

val of_string : string -> t option
(** Accepts "ci", "bench", "full". *)

val scaled : t -> int -> int
(** [scaled t n = max 1 (n / t.run_divisor)] — same arithmetic the old
    [Exp_common.scaled ~quick] used, so ci runs reproduce quick runs
    exactly. *)

val grid : t -> 'a list -> 'a list
(** First [grid_points] elements (all of them under {!full}). *)

val hours : t -> float -> float
(** Scale a virtual-time budget. *)

val bytes : t -> int -> int
(** Scale a byte budget (integer division, as the quick paths did). *)

val rate : t -> float -> float
(** Scale a request rate. *)
