type runner = scope:Scope.t -> ?jobs:int -> unit -> Artifact.t list

type t = {
  id : string;
  title : string;
  memo_key : string option;
  runner : runner;
}

let registry : t list ref = ref []

let register ~id ~title ?memo_key runner =
  if List.exists (fun e -> e.id = id) !registry then
    invalid_arg (Printf.sprintf "Experiment.register: duplicate id %S" id);
  registry := !registry @ [ { id; title; memo_key; runner } ]

let all () = !registry

let ids () = List.map (fun e -> e.id) !registry

let find id = List.find_opt (fun e -> e.id = id) !registry

(* One cache slot per (campaign, scope).  Keyed on the memo key rather
   than the experiment id so that sibling entries of a campaign (fig1 &
   fig2, fig5 & tables 5-7) share the run.  [jobs] is deliberately not
   part of the key: pool cells are pure functions of their seeds, so any
   worker count produces the same artifacts. *)
let memo : (string * Scope.t, Artifact.t list) Hashtbl.t = Hashtbl.create 8

let run e ~scope ?jobs () =
  match e.memo_key with
  | None -> e.runner ~scope ?jobs ()
  | Some key -> (
      match Hashtbl.find_opt memo (key, scope) with
      | Some arts -> arts
      | None ->
          let arts = e.runner ~scope ?jobs () in
          Hashtbl.replace memo (key, scope) arts;
          arts)

let artifact ~scope ?jobs id =
  match find id with
  | None -> None
  | Some e ->
      List.find_opt (fun (a : Artifact.t) -> a.name = id) (run e ~scope ?jobs ())
