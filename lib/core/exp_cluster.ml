module Gc_config = Gcperf_gc.Gc_config
module Ring = Gcperf_cluster.Ring
module Node = Gcperf_cluster.Node
module Coordinator = Gcperf_cluster.Coordinator
module Client = Gcperf_ycsb.Client
module Resilient = Gcperf_ycsb.Resilient
module Session = Gcperf_ycsb.Session
module Gateway = Gcperf_kvstore.Gateway
module Profile = Gcperf_fault.Profile
module Table = Gcperf_report.Table

type cell = {
  gc : string;
  ring_size : int;
  fanout : int;
  hedged : bool;
  node_pause_pct : float;
  summary : Coordinator.summary;
}

type result = {
  scope : Scope.t;
  replication : int;
  cells : cell list;
  node_ooms : int;
}

(* The three collectors the paper's server chapters rank: the
   recommended concurrent pair plus the stop-the-world baseline whose
   full collections the fan-out amplifies hardest. *)
let collectors = [ Gc_config.Cms; Gc_config.G1; Gc_config.ParallelOld ]

let ring_sizes scope = Scope.grid scope [ 4; 16; 64 ]
let fanouts scope = Scope.grid scope [ 1; 8; 32 ]
let replication = 3

(* Ring nodes are small shards of the paper's 64 GB server — a 2 GB
   heap with the recommended quarter young, a fixed per-node slice of
   commit log (the dataset scales with the ring).  Tuned so every
   collector's stop-the-world duty cycle lands near 0.15 %: far below
   the 99th percentile at fan-out 1, but 1-(1-p)^32 ≈ 5 % — squarely
   above it — at fan-out 32.  ParallelOld's rare ~1 s full pauses
   against CMS/G1's tens-of-milliseconds ones is what the grid ranks. *)
let node_heap = Exp_common.gb 2
let node_young = Exp_common.mb 512
let node_preload = Exp_common.mb 768
let node_ops_per_s = 180.0
let node_read_frac = 0.9

let cluster_duration_hours = 0.5
let cluster_ops_per_s = 75.0
let keyspace = 4_000_000

(* Hedge a few multiples past the healthy p99 (~1.4 ms): late enough
   that only pause-blocked reads trigger it, early enough that the
   hedge delay itself stays well under the pause tail it rescues. *)
let hedge_ms = 5.0

let duration_s scope = Scope.hours scope cluster_duration_hours *. 3600.0

(* Hedged cells change exactly one knob: reads still unanswered after
   [hedge_ms] race the next replica.  No timeouts, no retries, no
   admission control — the recovery measured is hedging's alone. *)
let resilience_of ~hedged =
  if hedged then
    Session.Resilience.Custom
      ( { Resilient.none with Resilient.hedge_ms }, Gateway.unbounded )
  else Session.Resilience.Off

let kind_index kind =
  let rec find i = function
    | [] -> invalid_arg "Exp_cluster: unknown collector"
    | k :: _ when k = kind -> i
    | _ :: tl -> find (i + 1) tl
  in
  find 0 collectors

(* Node timelines depend only on (collector, node id, scope) — never on
   ring size, fan-out or hedging — so phase 0 generates each exactly
   once and every grid cell reads them. *)
let node_seed kind ~node_id = Exp_common.seed + 500 + (1009 * kind_index kind) + node_id

let generate_timeline ~scope kind ~node_id =
  let gc = Exp_common.config kind ~heap:node_heap ~young:node_young () in
  Node.generate (Exp_common.machine ()) ~gc
    ~duration_s:(duration_s scope)
    ~ops_per_s:(Scope.rate scope node_ops_per_s)
    ~read_frac:node_read_frac
    ~preload_bytes:(Scope.bytes scope node_preload)
    ~seed:(node_seed kind ~node_id)

type spec = {
  s_kind : Gc_config.kind;
  s_ring : int;
  s_fanout : int;
  s_hedged : bool;
}

let cell_seed { s_kind; s_ring; s_fanout; s_hedged } =
  Exp_common.seed + 90_000
  + (4096 * kind_index s_kind)
  + (32 * s_ring) + (2 * s_fanout)
  + if s_hedged then 1 else 0

let run_cell ~scope timelines spec =
  let resilience = resilience_of ~hedged:spec.s_hedged in
  let gateway = Session.Resilience.gateway resilience in
  let seed = cell_seed spec in
  let ring =
    Ring.create ~nodes:spec.s_ring ~replication ()
  in
  let tls : Node.timeline array = List.assoc spec.s_kind timelines in
  let nodes =
    Array.init spec.s_ring (fun id ->
        Node.create ~id tls.(id) ~profile:Profile.none ~gateway
          ~seed:(seed + 7 + id))
  in
  let workload =
    {
      Client.paper_workload with
      Client.read_frac = 0.95;
      ops_per_s = Scope.rate scope cluster_ops_per_s;
      duration_s = duration_s scope;
    }
  in
  let config =
    {
      Coordinator.default with
      Coordinator.workload;
      resilience;
      fanout = spec.s_fanout;
      keyspace = Scope.bytes scope keyspace;
      replication;
      hedge = spec.s_hedged;
    }
  in
  let summary = Coordinator.run config ~ring ~nodes ~seed in
  let pause_pct =
    Array.fold_left
      (fun a n -> a +. (Node.timeline n).Node.pause_fraction)
      0.0 nodes
    /. float_of_int spec.s_ring *. 100.0
  in
  {
    gc = Gc_config.kind_to_string spec.s_kind;
    ring_size = spec.s_ring;
    fanout = spec.s_fanout;
    hedged = spec.s_hedged;
    node_pause_pct = pause_pct;
    summary;
  }

let run_grid ~scope ?(jobs = Exp_common.default_jobs ()) ~ring_sizes ~fanouts
    () =
  let max_ring = List.fold_left max 1 ring_sizes in
  (* Phase 0: one pool cell per (collector, node id). *)
  let gen_specs =
    List.concat_map
      (fun kind -> List.init max_ring (fun node_id -> (kind, node_id)))
      collectors
  in
  let generated =
    Exp_common.Pool.map_list ~jobs
      (fun (kind, node_id) -> generate_timeline ~scope kind ~node_id)
      gen_specs
  in
  let timelines =
    List.mapi
      (fun i kind ->
        ( kind,
          Array.init max_ring (fun node_id ->
              List.nth generated ((i * max_ring) + node_id)) ))
      collectors
  in
  let node_ooms =
    List.fold_left
      (fun a (tl : Node.timeline) -> if tl.Node.oom then a + 1 else a)
      0 generated
  in
  (* Phase 1: one pool cell per grid point, timelines shared read-only. *)
  let specs =
    List.concat_map
      (fun s_kind ->
        List.concat_map
          (fun s_ring ->
            List.concat_map
              (fun s_fanout ->
                List.map
                  (fun s_hedged -> { s_kind; s_ring; s_fanout; s_hedged })
                  [ false; true ])
              fanouts)
          ring_sizes)
      collectors
  in
  let cells =
    Exp_common.Pool.map_list ~jobs (run_cell ~scope timelines) specs
  in
  { scope; replication; cells; node_ooms }

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  run_grid ~scope ~jobs ~ring_sizes:(ring_sizes scope)
    ~fanouts:(fanouts scope) ()

let render r =
  let t =
    Table.create
      ~columns:
        [
          ("GC", Table.Left);
          ("ring", Table.Right);
          ("fanout", Table.Right);
          ("hedge", Table.Left);
          ("duty%", Table.Right);
          ("hit%", Table.Right);
          ("goodput(op/s)", Table.Right);
          ("p50(ms)", Table.Right);
          ("p99(ms)", Table.Right);
          ("p99.9(ms)", Table.Right);
          ("hints", Table.Right);
          ("hedge-win", Table.Right);
        ]
  in
  let last = ref "" in
  List.iter
    (fun c ->
      if c.gc <> !last then begin
        if !last <> "" then Table.add_separator t;
        last := c.gc
      end;
      let m = c.summary in
      Table.add_row t
        [
          c.gc;
          string_of_int c.ring_size;
          string_of_int c.fanout;
          (if c.hedged then "on" else "off");
          Table.cell_f c.node_pause_pct;
          Table.cell_f m.Coordinator.pause_intersection_pct;
          Table.cell_f m.Coordinator.goodput_ops_s;
          Table.cell_f m.Coordinator.p50_ms;
          Table.cell_f m.Coordinator.p99_ms;
          Table.cell_f m.Coordinator.p999_ms;
          string_of_int m.Coordinator.hints;
          string_of_int m.Coordinator.hedge_wins;
        ])
    r.cells;
  let requests =
    match r.cells with [] -> 0 | c :: _ -> c.summary.Coordinator.requests
  in
  Printf.sprintf
    "Cluster ring: tail at scale.  Multi-get requests scatter across a\n\
     replicated ring (replication %d, read-one/write-two, hinted handoff);\n\
     hit%% is the share of requests whose critical path crossed some\n\
     replica's stop-the-world pause (%d requests per cell%s)\n\n\
     %s"
    r.replication requests
    (if r.node_ooms > 0 then Printf.sprintf ", %d node OOMs" r.node_ooms
     else "")
    (Table.render t)
