(** Table 3: H2 + ConcurrentMarkSweep pause statistics across heap and
    young-generation sizes.

    The upper block keeps the heap at 64 GB and varies the young
    generation from 6 GB to 48 GB; the lower block uses the paper's small
    heaps (1 GB, 500 MB, 250 MB crossed with 200/100 MB young).  Reported
    per configuration: number of pauses (full collections in parentheses),
    average and total pause time, and total execution time — the table in
    which the paper finds the "smaller young generation, longer average
    pause" anomaly for CMS. *)

type row = {
  heap_bytes : int;
  young_bytes : int;
  pauses : int;
  full_pauses : int;
  avg_pause_s : float;
  total_pause_s : float;
  total_exec_s : float;
  oom : bool;
}

type result = { rows : row list; collector : string; bench : string }

val ladder : unit -> (int * int) list
(** The table's (heap, young) grid: the 64 GB block (young 6–48 GB)
    followed by the small-memory block.  Shared with [Exp_distill] so
    the distilled-cost sweep covers exactly the same points. *)

val run_scope :
  scope:Scope.t ->
  ?jobs:int ->
  ?kind:Gcperf_gc.Gc_config.kind ->
  ?bench:string ->
  unit ->
  result
(** Defaults: CMS on h2 (the paper's table).  Other collectors/benchmarks
    are exposed because the paper cross-checks that ParallelOld "behaved
    as expected in both situations". *)

val run :
  ?quick:bool ->
  ?kind:Gcperf_gc.Gc_config.kind ->
  ?bench:string ->
  unit ->
  result
(** [run_scope] with {!Scope.of_quick}. *)

val render : result -> string
