(** Pauseless collector family on the stressed key-value server.

    Sweeps heap size × collector variant: a G1 baseline, the concurrent
    region collector ([ConcurrentRegionsGC]) and the journaled-RC
    collector ([JournalRCGC]) at journal-fold-jobs 1, 2 and 4.  Each
    cell runs the stress server, then replays the pause-spike client
    session with resilience off over the server's pause intervals — the
    configuration where stop-the-world pauses hurt the client tail the
    most.  The pauseless family keeps every pause sub-millisecond, so
    its p99.9 stays flat where G1's reflects its collections; the price
    is mutator throughput (barrier and journaling taxes), and at one
    fold worker the journal fold is the bottleneck that fold-jobs 4
    relieves. *)

type cell = {
  gc : string;  (** display label, e.g. "JournalRCGC/fj4" *)
  heap_gb : int;
  fold_jobs : int;  (** 0 for non-journal collectors *)
  server : Exp_server.server_run;
  summary : Gcperf_ycsb.Resilient.summary;
      (** pause-spike profile, resilience off *)
}

type result = { scope : Scope.t; cells : cell list }

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result
val run : ?quick:bool -> unit -> result
val render : result -> string
