module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Stats = Gcperf_stats.Stats
module Table = Gcperf_report.Table
module P = Gcperf_workload.Profile

type row = {
  bench : string;
  final_rsd_pct : float;
  total_rsd_pct : float;
  runs : int;
}

type result = { rows : row list }

let run_scope ~scope ?(jobs = Exp_common.default_jobs ())
    ?(all_benchmarks = false) () =
  let machine = Exp_common.machine () in
  let runs = Scope.scaled scope 10 in
  let iterations = Scope.scaled scope 10 in
  let benches =
    if all_benchmarks then
      List.filter (fun b -> not b.Suite.crashes) Suite.all
    else Suite.stable_subset
  in
  let gc = Exp_common.baseline Gcperf_gc.Gc_config.ParallelOld in
  (* One cell per replicated run; each builds its own VM from its own
     derived seed, so cells are pure and the pool may run them in any
     order.  Results come back in cell order: chunk [bi] holds bench
     [bi]'s replicates in replicate order, exactly as the sequential
     nested map produced them. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun bench -> List.init runs (fun i -> (bench, i)))
         benches)
  in
  let results =
    Exp_common.Pool.map_cells ~jobs
      (fun (bench, i) ->
        Harness.run ~seed:(Exp_common.seed + (1009 * i)) ~iterations machine
          bench ~gc ~system_gc:true ())
      cells
  in
  let rows =
    List.mapi
      (fun bi bench ->
        let chunk = Array.sub results (bi * runs) runs in
        let finals = Array.map (fun r -> r.Harness.final_s) chunk in
        let totals = Array.map (fun r -> r.Harness.total_s) chunk in
        {
          bench = bench.Suite.profile.P.name;
          final_rsd_pct = Stats.rsd finals;
          total_rsd_pct = Stats.rsd totals;
          runs;
        })
      benches
  in
  { rows }

let run ?(quick = false) ?all_benchmarks () =
  run_scope ~scope:(Scope.of_quick quick) ?all_benchmarks ()

let render result =
  let t =
    Table.create
      ~columns:
        [
          ("Benchmark", Table.Left);
          ("Final iteration (%)", Table.Right);
          ("Total execution time (%)", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.bench;
          Table.cell_f ~decimals:1 r.final_rsd_pct;
          Table.cell_f ~decimals:1 r.total_rsd_pct;
        ])
    result.rows;
  "Table 2: relative standard deviation of the total execution time and\n\
   final iteration (baseline configuration, system GC between iterations)\n\n"
  ^ Table.render t
