(** Table 8: qualitative summary — advantages and disadvantages of the
    three main collectors.

    Unlike the paper's hand-written table, this one is {e derived} from
    measurements: throughput verdicts come from total DaCapo execution
    times relative to the best collector, pause verdicts from the maximum
    stop-the-world pause observed, on both the benchmark campaign and the
    key-value-server campaign. *)

type verdict = Good | Fairly_good | Bad

type pause_verdict = Short | Acceptable | Significant | Unacceptable

type entry = {
  gc : string;
  experiment : string;  (** "DaCapo" or "Cassandra" *)
  throughput : verdict;
  pause : pause_verdict;
  total_rel : float;  (** total time relative to the best collector *)
  max_pause_s : float;
}

type result = { entries : entry list }

val verdict_to_string : verdict -> string
val pause_verdict_to_string : pause_verdict -> string

val classify_throughput : float -> verdict
(** From time relative to the best (1.0 = best). *)

val classify_pause : max_pause_s:float -> server:bool -> pause_verdict

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run : ?quick:bool -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val render : result -> string
