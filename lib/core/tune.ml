module Suite = Gcperf_dacapo.Suite
module Gc_config = Gcperf_gc.Gc_config

type candidate = {
  heap_bytes : int;
  young_bytes : int;
  stats : Exp_ergonomics.run_stats;
  meets_goal : bool;
}

type recommendation = {
  collector : Gc_config.kind;
  bench : string;
  pause_goal_ms : float;
  iterations : int;
  candidates : candidate list;
  best : candidate option;
  refined : Exp_ergonomics.run_stats option;
}

(* The search grid: heaps around the study's baseline, young generation
   as the fractions HotSpot ergonomics itself explores (1/4 .. 1/2 of
   the heap).  Scope cuts the grid the same way the experiments do. *)
let search_grid scope =
  let gb = Gc_config.gb in
  Scope.grid scope
    (List.concat_map
       (fun heap ->
         List.map
           (fun (num, den) -> (heap, heap / den * num))
           [ (1, 4); (3, 8); (1, 2) ])
       [ gb 8; gb 16; gb 32 ])

let pick_best candidates =
  let alive = List.filter (fun c -> not c.stats.Exp_ergonomics.oom) candidates in
  let meeting = List.filter (fun c -> c.meets_goal) alive in
  let by_throughput a b =
    match compare a.stats.Exp_ergonomics.total_s b.stats.Exp_ergonomics.total_s with
    | 0 -> compare a.heap_bytes b.heap_bytes
    | c -> c
  in
  let by_tail a b =
    compare a.stats.Exp_ergonomics.trailing_p99_ms
      b.stats.Exp_ergonomics.trailing_p99_ms
  in
  match meeting with
  | _ :: _ -> Some (List.hd (List.sort by_throughput meeting))
  | [] -> ( match List.sort by_tail alive with [] -> None | c :: _ -> Some c)

let run_scope ~scope ?(jobs = Exp_common.default_jobs ())
    ?(pause_goal_ms = 200.0) ~bench kind =
  let machine = Exp_common.machine () in
  let iterations = Scope.scaled scope 10 in
  let seed = Exp_common.seed in
  let grid = Array.of_list (search_grid scope) in
  let candidates =
    Exp_common.Pool.map_cells ~jobs
      (fun (heap, young) ->
        let gc = Exp_common.config kind ~heap ~young () in
        let stats =
          Exp_ergonomics.measure machine bench ~gc ~iterations ~seed
        in
        {
          heap_bytes = heap;
          young_bytes = young;
          stats;
          meets_goal =
            (not stats.Exp_ergonomics.oom)
            && stats.Exp_ergonomics.trailing_p99_ms <= pause_goal_ms;
        })
      grid
    |> Array.to_list
  in
  let best = pick_best candidates in
  let refined =
    Option.map
      (fun b ->
        let gc =
          {
            (Exp_common.config kind ~heap:b.heap_bytes ~young:b.young_bytes ())
            with
            Gc_config.adaptive = true;
            pause_goal_ms;
          }
        in
        Exp_ergonomics.measure machine bench ~gc ~iterations ~seed)
      best
  in
  {
    collector = kind;
    bench = bench.Suite.profile.Gcperf_workload.Profile.name;
    pause_goal_ms;
    iterations;
    candidates;
    best;
    refined;
  }

let collector_flag = function
  | Gc_config.Serial -> "-XX:+UseSerialGC"
  | Gc_config.ParNew -> "-XX:+UseParNewGC"
  | Gc_config.Parallel -> "-XX:+UseParallelGC"
  | Gc_config.ParallelOld -> "-XX:+UseParallelOldGC"
  | Gc_config.Cms -> "-XX:+UseConcMarkSweepGC"
  | Gc_config.G1 -> "-XX:+UseG1GC"
  (* No JDK8 flag exists for the pauseless family; emit the spelling our
     own CLI accepts so the line stays pasteable into gcperf. *)
  | Gc_config.Concurrent_regions -> "-XX:+UseConcurrentRegionsGC"
  | Gc_config.Journal_rc -> "-XX:+UseJournalRCGC"

let size_flag prefix bytes =
  let mb = Gc_config.mb 1 in
  if bytes mod Gc_config.gb 1 = 0 then
    Printf.sprintf "%s%dg" prefix (bytes / Gc_config.gb 1)
  else Printf.sprintf "%s%dm" prefix ((bytes + mb - 1) / mb)

let flags r =
  match r.best with
  | None -> []
  | Some b ->
      (* Prefer the sizes the adaptive re-run settled on: they already
         respect survivor occupancy and the pause goal at this point. *)
      let young, ratio, tenuring =
        match r.refined with
        | Some s when not s.Exp_ergonomics.oom ->
            ( s.Exp_ergonomics.final_young_bytes,
              s.Exp_ergonomics.final_survivor_ratio,
              s.Exp_ergonomics.final_tenuring )
        | _ ->
            let d =
              Gc_config.default r.collector ~heap_bytes:b.heap_bytes
                ~young_bytes:b.young_bytes
            in
            (b.young_bytes, d.Gc_config.survivor_ratio, d.Gc_config.tenuring_threshold)
      in
      [
        collector_flag r.collector;
        size_flag "-Xms" b.heap_bytes;
        size_flag "-Xmx" b.heap_bytes;
        size_flag "-Xmn" young;
        Printf.sprintf "-XX:SurvivorRatio=%d" ratio;
        Printf.sprintf "-XX:MaxTenuringThreshold=%d" tenuring;
        Printf.sprintf "-XX:MaxGCPauseMillis=%.0f" r.pause_goal_ms;
      ]

let mbs bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "gcperf tune: %s on %s, pause goal %.0f ms (%d iterations per \
        candidate)\n\n"
       (Gc_config.kind_to_string r.collector)
       r.bench r.pause_goal_ms r.iterations);
  Buffer.add_string buf
    (Printf.sprintf "%8s %8s %7s %8s %8s %9s %5s\n" "heap_MB" "young_MB"
       "minors" "avg_ms" "tail_p99" "total_s" "goal");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%8.0f %8.0f %7d %8.1f %8.1f %9.2f %5s\n"
           (mbs c.heap_bytes) (mbs c.young_bytes)
           c.stats.Exp_ergonomics.minor_pauses
           c.stats.Exp_ergonomics.avg_minor_ms
           c.stats.Exp_ergonomics.trailing_p99_ms
           c.stats.Exp_ergonomics.total_s
           (if c.stats.Exp_ergonomics.oom then "OOM"
            else if c.meets_goal then "yes"
            else "no")))
    r.candidates;
  (match r.best with
  | None ->
      Buffer.add_string buf
        "\nEvery candidate ran out of memory; raise the heap range.\n"
  | Some b ->
      Buffer.add_string buf
        (Printf.sprintf "\nRecommended: %.0f MB heap, %.0f MB young%s\n"
           (mbs b.heap_bytes) (mbs b.young_bytes)
           (if b.meets_goal then ""
            else
              " (no candidate met the pause goal; this one has the lowest \
               tail pause)"));
      (match r.refined with
      | Some s when not s.Exp_ergonomics.oom ->
          Buffer.add_string buf
            (Printf.sprintf
               "Adaptive refinement settled at %.0f MB young \
                (SurvivorRatio %d, tenuring %d) after %d resizes.\n"
               (mbs s.Exp_ergonomics.final_young_bytes)
               s.Exp_ergonomics.final_survivor_ratio
               s.Exp_ergonomics.final_tenuring s.Exp_ergonomics.resizes)
      | _ -> ());
      Buffer.add_string buf
        (Printf.sprintf "\nFlags:\n  %s\n" (String.concat " " (flags r))));
  Buffer.contents buf
