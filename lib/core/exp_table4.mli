(** Table 4: TLAB influence.

    For each collector and stable benchmark, the run is executed with and
    without thread-local allocation buffers at the baseline heap
    configuration.  Following the paper: if the no-TLAB total execution
    time exceeds the TLAB one by more than a 5 % deviation band the TLAB
    helped (+), if it is lower by more than the band the TLAB hurt (-),
    otherwise it made no difference (=). *)

type influence = Helps | Hurts | Indifferent

val influence_to_string : influence -> string
(** "+", "-" or "=". *)

type cell = {
  bench : string;
  gc : string;
  with_tlab_s : float;
  without_tlab_s : float;
  influence : influence;
}

type result = { cells : cell list }

val classify : deviation:float -> with_tlab:float -> without_tlab:float -> influence
(** The paper's 5 % rule, exposed for tests. *)

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run : ?quick:bool -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val render : result -> string
