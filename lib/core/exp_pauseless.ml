module Client = Gcperf_ycsb.Client
module Resilient = Gcperf_ycsb.Resilient
module Session = Gcperf_ycsb.Session
module Profile = Gcperf_fault.Profile
module Gc_config = Gcperf_gc.Gc_config
module Table = Gcperf_report.Table

(* Pauseless collector family on the stressed key-value server.

   The paper's recommended collectors (CMS, G1) still stop the world for
   whole collections; this experiment runs the concurrent region
   collector and the journaled-RC collector — whose only pauses are
   sub-millisecond flips — on the same stress workload, against a G1
   baseline, then replays the pause-spike client session (resilience
   off) over each server's pause intervals.  The headline: the pauseless
   family trades mutator throughput (barrier/journaling tax, fold
   backpressure) for a flat client tail, and the journal fold is a
   single-worker bottleneck that [--journal-fold-jobs] relieves. *)

type cell = {
  gc : string;  (** display label, e.g. "JournalRCGC/fj4" *)
  heap_gb : int;
  fold_jobs : int;  (** 0 for non-journal collectors *)
  server : Exp_server.server_run;
  summary : Resilient.summary;  (** pause-spike profile, resilience off *)
}

type result = { scope : Scope.t; cells : cell list }

let session_seed = Exp_common.seed + 173

(* 64 GB first so the ci scope's single grid point keeps the paper's
   deployment size. *)
let heap_grid_gb = [ 64; 48 ]

(* (kind, fold_jobs, label); fold_jobs only reaches the config for the
   journal collector.  G1 anchors the throughput/pause trade-off. *)
let variants =
  [
    (Gc_config.G1, 0, "G1");
    (Gc_config.Concurrent_regions, 0, "ConcurrentRegionsGC");
    (Gc_config.Journal_rc, 1, "JournalRCGC/fj1");
    (Gc_config.Journal_rc, 2, "JournalRCGC/fj2");
    (Gc_config.Journal_rc, 4, "JournalRCGC/fj4");
  ]

let one ~scope (heap_gb, (kind, fold_jobs, label)) =
  let base =
    Gc_config.default kind
      ~heap_bytes:(Exp_common.gb heap_gb)
      ~young_bytes:(Exp_common.gb 12)
  in
  let config =
    if fold_jobs > 0 then
      { base with Gc_config.journal_fold_jobs = fold_jobs }
    else base
  in
  let server =
    Exp_server.run_server_config ~scope ~label ~config ~stress:true ~hours:2.0
      ()
  in
  let workload =
    let w = Client.paper_workload in
    {
      w with
      Client.duration_s = server.Exp_server.duration_s;
      ops_per_s = Scope.rate scope w.Client.ops_per_s;
    }
  in
  let summary =
    Session.run ~resilience:Session.Resilience.Off ~profile:Profile.pause_spike
      ~collector:label workload
      {
        Session.pauses = server.Exp_server.intervals;
        db_timeline = server.Exp_server.db_timeline;
      }
      ~seed:session_seed
  in
  { gc = label; heap_gb; fold_jobs; server; summary }

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  (* One self-contained cell per (heap, variant) pair: each owns its VM,
     server and client session, so the fan-out is byte-identical at any
     worker count. *)
  let cells =
    Exp_common.Pool.map_list ~jobs
      (fun c -> one ~scope c)
      (List.concat_map
         (fun h -> List.map (fun v -> (h, v)) variants)
         (Scope.grid scope heap_grid_gb))
  in
  { scope; cells }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let render r =
  let t =
    Table.create
      ~columns:
        [
          ("GC", Table.Left);
          ("heap(GB)", Table.Right);
          ("duration(s)", Table.Right);
          ("#pauses", Table.Right);
          ("max pause(s)", Table.Right);
          ("full", Table.Right);
          ("goodput(op/s)", Table.Right);
          ("p50(ms)", Table.Right);
          ("p99(ms)", Table.Right);
          ("p99.9(ms)", Table.Right);
        ]
  in
  let last_heap = ref (-1) in
  List.iter
    (fun c ->
      if c.heap_gb <> !last_heap then begin
        last_heap := c.heap_gb;
        Table.add_separator t
      end;
      let s = c.server in
      let m = c.summary in
      Table.add_row t
        [
          c.gc ^ (if s.Exp_server.oom then " [OOM]" else "");
          string_of_int c.heap_gb;
          Table.cell_f ~decimals:0 s.Exp_server.duration_s;
          string_of_int (Array.length s.Exp_server.pauses);
          Table.cell_f s.Exp_server.max_pause_s;
          string_of_int s.Exp_server.full_count;
          Table.cell_f m.Resilient.goodput_ops_s;
          Table.cell_f m.Resilient.p50_ms;
          Table.cell_f m.Resilient.p99_ms;
          Table.cell_f m.Resilient.p999_ms;
        ])
    r.cells;
  Printf.sprintf
    "Pauseless collector family on the stressed key-value server:\n\
     concurrent region collector (load barriers, sub-ms flips) and\n\
     journaled-RC collector (fold jobs 1/2/4) against a G1 baseline;\n\
     client tail from the pause-spike session, resilience off\n\
     (duration is wall time for the same work: lower = more throughput;\n\
     seed %d)\n\n\
     %s"
    session_seed (Table.render t)
