(** Client-server experiments, server side (§4.1 and Figure 4).

    The server is the Cassandra-like store on the 48-core machine with a
    64 GB heap and a 12 GB young generation.  Two campaigns:

    - {b ParallelOld analysis}: the default configuration under a pure
      loading workload for one and two virtual hours, then the stress
      configuration (memtable and commit log sized to the heap,
      database pre-loaded, commit log replayed at startup) for two hours
      — reproducing the 17-25 s young pauses, the >100 s full collection
      that appears in the second hour, and the minutes-long full
      collection of the stress test;
    - {b Figure 4}: the same stress workload under CMS and G1, whose
      stop-the-world pauses stay in seconds. *)

type server_run = {
  gc : string;
  config_name : string;  (** "default" or "stress" *)
  duration_s : float;  (** total virtual time, including replay *)
  pauses : (float * float) array;  (** (start_s, duration_s) of every STW pause *)
  intervals : (float * float) array;  (** (start_s, end_s), for the client *)
  db_timeline : (float * int) array;
  young_max_s : float;
  full_max_s : float;
  full_count : int;
  max_pause_s : float;
  oom : bool;
}

val run_server_config :
  scope:Scope.t ->
  label:string ->
  config:Gcperf_gc.Gc_config.t ->
  stress:bool ->
  hours:float ->
  unit ->
  server_run
(** Like {!run_server_scope} but with an explicit GC configuration and
    display label — the pauseless experiment sweeps heap sizes and
    journal-fold-jobs variants of the same collector kind. *)

val run_server_scope :
  scope:Scope.t ->
  kind:Gcperf_gc.Gc_config.kind ->
  stress:bool ->
  hours:float ->
  unit ->
  server_run

val run_server :
  ?quick:bool ->
  kind:Gcperf_gc.Gc_config.kind ->
  stress:bool ->
  hours:float ->
  unit ->
  server_run
(** [run_server_scope] with {!Scope.of_quick}. *)

type figure4 = { cms : server_run; g1 : server_run }

val figure4_scope : scope:Scope.t -> ?jobs:int -> unit -> figure4

val figure4 : ?quick:bool -> unit -> figure4

val render_figure4 : figure4 -> string

type parallel_old_analysis = {
  one_hour : server_run;
  two_hours : server_run;
  stress : server_run;
}

val parallel_old_analysis_scope :
  scope:Scope.t -> ?jobs:int -> unit -> parallel_old_analysis

val parallel_old_analysis : ?quick:bool -> unit -> parallel_old_analysis

val render_parallel_old : parallel_old_analysis -> string
