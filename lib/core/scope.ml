type t = {
  label : string;
  run_divisor : int;
  time_divisor : int;
  rate_divisor : int;
  grid_points : int option;
}

let full =
  {
    label = "full";
    run_divisor = 1;
    time_divisor = 1;
    rate_divisor = 1;
    grid_points = None;
  }

let bench =
  {
    label = "bench";
    run_divisor = 2;
    time_divisor = 4;
    rate_divisor = 2;
    grid_points = Some 3;
  }

let ci =
  {
    label = "ci";
    run_divisor = 4;
    time_divisor = 10;
    rate_divisor = 4;
    grid_points = Some 1;
  }

let all = [ ci; bench; full ]

let of_quick quick = if quick then ci else full

let to_string t = t.label

let of_string = function
  | "ci" -> Some ci
  | "bench" -> Some bench
  | "full" -> Some full
  | _ -> None

let scaled t n = max 1 (n / t.run_divisor)

let grid t l =
  match t.grid_points with
  | None -> l
  | Some n -> List.filteri (fun i _ -> i < n) l

let hours t h = h /. float_of_int t.time_divisor

let bytes t n = n / t.time_divisor

let rate t r = r /. float_of_int t.rate_divisor
