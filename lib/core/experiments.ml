module A = Artifact

let scope_params scope = [ ("scope", Scope.to_string scope) ]

(* ------------------------------------------------------------------ *)
(* Artifact builders: one typed artifact per experiment id.  Campaign
   experiments (Xalan feeds Figures 1 and 2, the client runs feed
   Figure 5 and Tables 5-7) take the campaign result as an argument;
   their runners below compute it once and the registry memo shares
   the artifact list between the sibling ids. *)

let table2_artifact ~scope ?jobs () =
  let r = Exp_table2.run_scope ~scope ?jobs () in
  A.make ~name:"table2" ~title:"Table 2: benchmark stability"
    ~params:(scope_params scope)
    ~columns:[ "bench"; "final_rsd_pct"; "total_rsd_pct"; "runs" ]
    ~rows:
      (List.map
         (fun (row : Exp_table2.row) ->
           A.
             [
               Text row.Exp_table2.bench;
               Float row.final_rsd_pct;
               Float row.total_rsd_pct;
               Int row.runs;
             ])
         r.Exp_table2.rows)
    ~render_text:(fun () -> Exp_table2.render r)

let table3_artifact ~scope ?jobs () =
  let r = Exp_table3.run_scope ~scope ?jobs () in
  A.make ~name:"table3"
    ~title:"Table 3: pause statistics across heap/young sizes"
    ~params:
      (scope_params scope
      @ [
          ("collector", r.Exp_table3.collector); ("bench", r.Exp_table3.bench);
        ])
    ~columns:
      [
        "heap_bytes";
        "young_bytes";
        "pauses";
        "full_pauses";
        "avg_pause_s";
        "total_pause_s";
        "total_exec_s";
        "oom";
      ]
    ~rows:
      (List.map
         (fun (row : Exp_table3.row) ->
           A.
             [
               Int row.Exp_table3.heap_bytes;
               Int row.young_bytes;
               Int row.pauses;
               Int row.full_pauses;
               Float row.avg_pause_s;
               Float row.total_pause_s;
               Float row.total_exec_s;
               Bool row.oom;
             ])
         r.Exp_table3.rows)
    ~render_text:(fun () -> Exp_table3.render r)

let table4_artifact ~scope ?jobs () =
  let r = Exp_table4.run_scope ~scope ?jobs () in
  A.make ~name:"table4" ~title:"Table 4: TLAB influence"
    ~params:(scope_params scope)
    ~columns:[ "bench"; "gc"; "with_tlab_s"; "without_tlab_s"; "influence" ]
    ~rows:
      (List.map
         (fun (c : Exp_table4.cell) ->
           A.
             [
               Text c.Exp_table4.bench;
               Text c.gc;
               Float c.with_tlab_s;
               Float c.without_tlab_s;
               Text (Exp_table4.influence_to_string c.influence);
             ])
         r.Exp_table4.cells)
    ~render_text:(fun () -> Exp_table4.render r)

let series_rows (r : Exp_xalan.result) =
  List.concat_map
    (fun (mode, l) ->
      List.map
        (fun (s : Exp_xalan.gc_series) ->
          let max_pause =
            Array.fold_left
              (fun a (_, d) -> Float.max a d)
              0.0 s.Exp_xalan.pause_points
          in
          A.
            [
              Text mode;
              Text s.Exp_xalan.gc;
              Int (Array.length s.Exp_xalan.pause_points);
              Float max_pause;
              Float s.Exp_xalan.total_s;
            ])
        l)
    [
      ("system-gc", r.Exp_xalan.with_system_gc);
      ("no-system-gc", r.Exp_xalan.without_system_gc);
    ]

let fig1_artifact ~scope (r : Exp_xalan.result) =
  A.make ~name:"fig1" ~title:"Figure 1: Xalan GC pauses"
    ~params:(scope_params scope)
    ~columns:[ "mode"; "gc"; "pauses"; "max_pause_s"; "total_s" ]
    ~rows:(series_rows r)
    ~render_text:(fun () -> Exp_xalan.render_figure1 r)

let fig2_artifact ~scope (r : Exp_xalan.result) =
  A.make ~name:"fig2" ~title:"Figure 2: Xalan iteration durations"
    ~params:(scope_params scope)
    ~columns:[ "mode"; "gc"; "iteration"; "duration_s" ]
    ~rows:
      (List.concat_map
         (fun (mode, l) ->
           List.concat_map
             (fun (s : Exp_xalan.gc_series) ->
               List.mapi
                 (fun i d ->
                   A.[ Text mode; Text s.Exp_xalan.gc; Int (i + 1); Float d ])
                 (Array.to_list s.Exp_xalan.iteration_durations))
             l)
         [
           ("system-gc", r.Exp_xalan.with_system_gc);
           ("no-system-gc", r.Exp_xalan.without_system_gc);
         ])
    ~render_text:(fun () -> Exp_xalan.render_figure2 r)

let fig3_artifact ~scope ?jobs () =
  let r = Exp_fig3.run_scope ~scope ?jobs () in
  A.make ~name:"fig3" ~title:"Figure 3: GC ranking by experiments won"
    ~params:
      (scope_params scope
      @ [ ("experiments", string_of_int r.Exp_fig3.experiments) ])
    ~columns:[ "mode"; "collector"; "percent_won" ]
    ~rows:
      (List.concat_map
         (fun (mode, ranking) ->
           List.map
             (fun (gc, pct) -> A.[ Text mode; Text gc; Float pct ])
             ranking)
         [
           ("system-gc", r.Exp_fig3.with_system_gc);
           ("no-system-gc", r.Exp_fig3.without_system_gc);
         ])
    ~render_text:(fun () -> Exp_fig3.render r)

let server_run_row ~experiment (r : Exp_server.server_run) =
  A.
    [
      Text experiment;
      Text r.Exp_server.gc;
      Text r.config_name;
      Float r.duration_s;
      Int (Array.length r.pauses);
      Float r.max_pause_s;
      Int r.full_count;
      Float r.full_max_s;
      Float r.young_max_s;
      Bool r.oom;
    ]

let server_run_columns =
  [
    "experiment";
    "gc";
    "config";
    "duration_s";
    "pauses";
    "max_pause_s";
    "full_count";
    "full_max_s";
    "young_max_s";
    "oom";
  ]

let fig4_artifact ~scope ?jobs () =
  let r = Exp_server.figure4_scope ~scope ?jobs () in
  A.make ~name:"fig4" ~title:"Figure 4: CMS and G1 server pauses"
    ~params:(scope_params scope) ~columns:server_run_columns
    ~rows:
      [
        server_run_row ~experiment:"stress" r.Exp_server.cms;
        server_run_row ~experiment:"stress" r.Exp_server.g1;
      ]
    ~render_text:(fun () -> Exp_server.render_figure4 r)

let fig5_artifact ~scope (r : Exp_client.result) =
  let row (e : Exp_client.gc_experiment) =
    let pts = e.Exp_client.points in
    let correlated =
      Array.fold_left
        (fun a (p : Gcperf_ycsb.Client.point) ->
          if p.Gcperf_ycsb.Client.gc_correlated then a + 1 else a)
        0 pts
    in
    let max_ms =
      Array.fold_left
        (fun a (p : Gcperf_ycsb.Client.point) ->
          Float.max a p.Gcperf_ycsb.Client.latency_ms)
        0.0 pts
    in
    A.
      [
        Text e.Exp_client.gc;
        Int (Array.length pts);
        Float max_ms;
        Int correlated;
      ]
  in
  A.make ~name:"fig5" ~title:"Figure 5: client latencies under server GC"
    ~params:(scope_params scope)
    ~columns:[ "gc"; "points"; "max_latency_ms"; "gc_correlated_points" ]
    ~rows:
      [
        row r.Exp_client.parallel_old; row r.Exp_client.cms; row r.Exp_client.g1;
      ]
    ~render_text:(fun () -> Exp_client.render_figure5 r)

let table567_artifact ~scope (r : Exp_client.result) =
  let rows_of (e : Exp_client.gc_experiment) =
    List.concat_map
      (fun (op, (rep : Gcperf_stats.Stats.latency_report)) ->
        List.map
          (fun (b : Gcperf_stats.Stats.band) ->
            A.
              [
                Text e.Exp_client.gc;
                Text op;
                Float rep.Gcperf_stats.Stats.avg_ms;
                Float rep.min_ms;
                Float rep.max_ms;
                Text b.Gcperf_stats.Stats.label;
                Float b.pct_requests;
                Float b.pct_gc;
              ])
          (rep.Gcperf_stats.Stats.around_avg :: rep.above))
      [
        ("read", e.Exp_client.read_report);
        ("update", e.Exp_client.update_report);
      ]
  in
  A.make ~name:"table567" ~title:"Tables 5-7: client latency bands"
    ~params:(scope_params scope)
    ~columns:
      [
        "gc";
        "op";
        "avg_ms";
        "min_ms";
        "max_ms";
        "band";
        "pct_requests";
        "pct_gc";
      ]
    ~rows:
      (rows_of r.Exp_client.parallel_old
      @ rows_of r.Exp_client.cms @ rows_of r.Exp_client.g1)
    ~render_text:(fun () -> Exp_client.render_tables567 r)

let table8_artifact ~scope ?jobs () =
  let r = Exp_table8.run_scope ~scope ?jobs () in
  A.make ~name:"table8" ~title:"Table 8: collector summary"
    ~params:(scope_params scope)
    ~columns:
      [ "gc"; "experiment"; "throughput"; "pause"; "total_rel"; "max_pause_s" ]
    ~rows:
      (List.map
         (fun (e : Exp_table8.entry) ->
           A.
             [
               Text e.Exp_table8.gc;
               Text e.experiment;
               Text (Exp_table8.verdict_to_string e.throughput);
               Text (Exp_table8.pause_verdict_to_string e.pause);
               Float e.total_rel;
               Float e.max_pause_s;
             ])
         r.Exp_table8.entries)
    ~render_text:(fun () -> Exp_table8.render r)

let server_po_artifact ~scope ?jobs () =
  let r = Exp_server.parallel_old_analysis_scope ~scope ?jobs () in
  A.make ~name:"server-po" ~title:"ParallelOld server analysis"
    ~params:(scope_params scope) ~columns:server_run_columns
    ~rows:
      [
        server_run_row ~experiment:"1h-load" r.Exp_server.one_hour;
        server_run_row ~experiment:"2h-load" r.Exp_server.two_hours;
        server_run_row ~experiment:"stress" r.Exp_server.stress;
      ]
    ~render_text:(fun () -> Exp_server.render_parallel_old r)

let ablation_artifact ~scope ?jobs () =
  let r = Exp_ablation.run_scope ~scope ?jobs () in
  let rows =
    List.concat_map
      (fun (row : Exp_ablation.g1_full_row) ->
        [
          A.
            [
              Text "g1-full";
              Text row.Exp_ablation.mode;
              Text "total_s";
              Float row.total_s;
            ];
          A.
            [
              Text "g1-full";
              Text row.Exp_ablation.mode;
              Text "max_full_pause_s";
              Float row.max_full_pause_s;
            ];
        ])
      r.Exp_ablation.g1_full
    @ List.map
        (fun (row : Exp_ablation.numa_row) ->
          A.
            [
              Text "numa";
              Text (Printf.sprintf "%g" row.Exp_ablation.numa_factor);
              Text "full_pause_s";
              Float row.full_pause_s;
            ])
        r.Exp_ablation.numa
    @ List.concat_map
        (fun (row : Exp_ablation.tenuring_row) ->
          let cfg = string_of_int row.Exp_ablation.threshold in
          [
            A.
              [
                Text "tenuring";
                Text cfg;
                Text "pauses";
                Float (float_of_int row.pauses);
              ];
            A.[ Text "tenuring"; Text cfg; Text "avg_pause_s"; Float row.avg_pause_s ];
            A.
              [
                Text "tenuring";
                Text cfg;
                Text "total_pause_s";
                Float row.total_pause_s;
              ];
          ])
        r.Exp_ablation.tenuring
  in
  A.make ~name:"ablation" ~title:"Ablation studies"
    ~params:(scope_params scope)
    ~columns:[ "section"; "config"; "metric"; "value" ]
    ~rows
    ~render_text:(fun () -> Exp_ablation.render r)

let ergonomics_artifact ~scope ?jobs () =
  let r = Exp_ergonomics.run_scope ~scope ?jobs () in
  let summary_row (c : Exp_ergonomics.cell) =
    let s = c.Exp_ergonomics.stats in
    A.
      [
        Text "summary";
        Text c.Exp_ergonomics.gc;
        Int c.heap_bytes;
        Text (if c.adaptive then "adaptive" else "fixed");
        Int s.Exp_ergonomics.minor_pauses;
        Int s.Exp_ergonomics.final_young_bytes;
        Float s.Exp_ergonomics.max_pause_ms;
        Float s.Exp_ergonomics.avg_minor_ms;
        Float s.Exp_ergonomics.p99_minor_ms;
        Float s.Exp_ergonomics.trailing_p99_ms;
        Float s.Exp_ergonomics.total_s;
        Int s.Exp_ergonomics.resizes;
        Bool c.within_goal;
      ]
  in
  let trajectory_rows (c : Exp_ergonomics.cell) =
    List.map
      (fun (p : Gcperf_policy.Policy.trajectory_point) ->
        A.
          [
            Text "trajectory";
            Text c.Exp_ergonomics.gc;
            Int c.heap_bytes;
            Text "adaptive";
            Int p.Gcperf_policy.Policy.at_collection;
            Int p.young_bytes_now;
            Float p.observed_pause_ms;
            Float p.avg_pause_ms;
            Float 0.0;
            Float 0.0;
            Float 0.0;
            Int 0;
            Bool false;
          ])
      c.Exp_ergonomics.stats.Exp_ergonomics.trajectory
  in
  A.make ~name:"ergonomics"
    ~title:"Ergonomics: fixed vs adaptive sizing with convergence trajectory"
    ~params:
      (scope_params scope
      @ [
          ("bench", r.Exp_ergonomics.bench);
          ("pause_goal_ms", Printf.sprintf "%g" r.Exp_ergonomics.pause_goal_ms);
        ])
    ~columns:
      [
        "row_kind";
        "gc";
        "heap_bytes";
        "mode";
        "collection";
        "young_bytes";
        "pause_ms";
        "avg_pause_ms";
        "p99_ms";
        "tail_p99_ms";
        "total_s";
        "resizes";
        "within_goal";
      ]
    ~rows:
      (List.concat_map
         (fun c -> summary_row c :: trajectory_rows c)
         r.Exp_ergonomics.cells)
    ~render_text:(fun () -> Exp_ergonomics.render r)

let faults_artifact ~scope ?jobs () =
  let r = Exp_faults.run_scope ~scope ?jobs () in
  A.make ~name:"faults"
    ~title:"Fault injection: resilience under GC pauses and network faults"
    ~params:(scope_params scope)
    ~columns:
      [
        "gc";
        "profile";
        "resilience";
        "requests";
        "ok";
        "failed";
        "attempts";
        "retries";
        "retry_amplification";
        "goodput_ops_s";
        "p50_ms";
        "p99_ms";
        "p999_ms";
        "max_ms";
        "timeouts";
        "sheds";
        "fast_rejects";
        "drops";
        "errors";
        "hedge_wins";
      ]
    ~rows:
      (List.map
         (fun (s : Exp_faults.session) ->
           let m = s.Exp_faults.summary in
           let module R = Gcperf_ycsb.Resilient in
           A.
             [
               Text s.Exp_faults.gc;
               Text s.profile;
               Text (if s.resilient then "on" else "off");
               Int m.R.requests;
               Int m.R.ok;
               Int m.R.failed;
               Int m.R.attempts;
               Int m.R.retries;
               Float m.R.retry_amplification;
               Float m.R.goodput_ops_s;
               Float m.R.p50_ms;
               Float m.R.p99_ms;
               Float m.R.p999_ms;
               Float m.R.max_ms;
               Int m.R.timeouts;
               Int m.R.sheds;
               Int m.R.fast_rejects;
               Int m.R.drops;
               Int m.R.errors;
               Int m.R.hedge_wins;
             ])
         (Exp_faults.sessions r))
    ~render_text:(fun () -> Exp_faults.render r)

let cluster_artifact ~scope ?jobs () =
  let r = Exp_cluster.run_scope ~scope ?jobs () in
  let module C = Gcperf_cluster.Coordinator in
  A.make ~name:"cluster" ~title:"Cluster ring: tail at scale"
    ~params:
      (scope_params scope
      @ [ ("replication", string_of_int r.Exp_cluster.replication) ])
    ~columns:
      [
        "gc";
        "ring";
        "fanout";
        "hedge";
        "node_pause_pct";
        "requests";
        "ok";
        "failed";
        "sends";
        "hedges";
        "hedge_wins";
        "hints";
        "pause_intersection_pct";
        "max_inflight";
        "goodput_ops_s";
        "p50_ms";
        "p99_ms";
        "p999_ms";
        "max_ms";
      ]
    ~rows:
      (List.map
         (fun (c : Exp_cluster.cell) ->
           let m = c.Exp_cluster.summary in
           A.
             [
               Text c.Exp_cluster.gc;
               Int c.ring_size;
               Int c.fanout;
               Bool c.hedged;
               Float c.node_pause_pct;
               Int m.C.requests;
               Int m.C.ok;
               Int m.C.failed;
               Int m.C.sends;
               Int m.C.hedges;
               Int m.C.hedge_wins;
               Int m.C.hints;
               Float m.C.pause_intersection_pct;
               Int m.C.max_inflight;
               Float m.C.goodput_ops_s;
               Float m.C.p50_ms;
               Float m.C.p99_ms;
               Float m.C.p999_ms;
               Float m.C.max_ms;
             ])
         r.Exp_cluster.cells)
    ~render_text:(fun () -> Exp_cluster.render r)

let pauseless_artifact ~scope ?jobs () =
  let r = Exp_pauseless.run_scope ~scope ?jobs () in
  A.make ~name:"pauseless"
    ~title:"Pauseless family: concurrent regions and journaled RC"
    ~params:(scope_params scope)
    ~columns:
      [
        "gc";
        "heap_gb";
        "fold_jobs";
        "duration_s";
        "pauses";
        "max_pause_s";
        "full_count";
        "goodput_ops_s";
        "p50_ms";
        "p99_ms";
        "p999_ms";
        "oom";
      ]
    ~rows:
      (List.map
         (fun (c : Exp_pauseless.cell) ->
           let s = c.Exp_pauseless.server in
           let m = c.Exp_pauseless.summary in
           let module R = Gcperf_ycsb.Resilient in
           A.
             [
               Text c.Exp_pauseless.gc;
               Int c.heap_gb;
               Int c.fold_jobs;
               Float s.Exp_server.duration_s;
               Int (Array.length s.Exp_server.pauses);
               Float s.Exp_server.max_pause_s;
               Int s.Exp_server.full_count;
               Float m.R.goodput_ops_s;
               Float m.R.p50_ms;
               Float m.R.p99_ms;
               Float m.R.p999_ms;
               Bool s.Exp_server.oom;
             ])
         r.Exp_pauseless.cells)
    ~render_text:(fun () -> Exp_pauseless.render r)

let distill_artifact ~scope ?jobs () =
  let r = Exp_distill.run_scope ~scope ?jobs () in
  let module D = Gcperf_distill.Distill in
  A.make ~name:"distill"
    ~title:"Distilled collector cost (LBO): GC cost over an ideal-GC baseline"
    ~params:(scope_params scope)
    ~columns:
      [
        "gc";
        "heap_bytes";
        "young_bytes";
        "t_ideal_s";
        "t_real_s";
        "distilled";
        "stw_over";
        "steal_over";
        "tax_over";
        "stw_s";
        "steal_s";
        "tax_s";
        "alloc_s";
        "oom";
      ]
    ~rows:
      (List.map
         (fun (c : Exp_distill.cell) ->
           let k = c.Exp_distill.cost in
           let cm = k.D.components in
           A.
             [
               Text c.Exp_distill.gc;
               Int c.heap_bytes;
               Int c.young_bytes;
               Float (k.D.t_ideal_us /. 1e6);
               Float (k.D.t_real_us /. 1e6);
               Float k.D.distilled;
               Float k.D.stw_over;
               Float k.D.steal_over;
               Float k.D.tax_over;
               Float (cm.D.stw_us /. 1e6);
               Float (cm.D.steal_us /. 1e6);
               Float (cm.D.tax_us /. 1e6);
               Float (cm.D.alloc_us /. 1e6);
               Bool c.Exp_distill.oom;
             ])
         r.Exp_distill.cells)
    ~render_text:(fun () -> Exp_distill.render r)

(* ------------------------------------------------------------------ *)
(* Registration: the single place the experiment catalogue is written
   down.  Runs at module-load time; every public entry point below
   lives in this module precisely so that using the catalogue links
   it. *)

let single id title build =
  Experiment.register ~id ~title (fun ~scope ?jobs () ->
      [ build ~scope ?jobs () ])

let xalan_runner ~scope ?jobs () =
  let r = Exp_xalan.run_scope ~scope ?jobs () in
  [ fig1_artifact ~scope r; fig2_artifact ~scope r ]

let client_runner ~scope ?jobs () =
  let r = Exp_client.run_scope ~scope ?jobs () in
  [ fig5_artifact ~scope r; table567_artifact ~scope r ]

let () =
  single "table2" "Table 2: benchmark stability" table2_artifact;
  single "table3" "Table 3: pause statistics across heap/young sizes"
    table3_artifact;
  single "table4" "Table 4: TLAB influence" table4_artifact;
  Experiment.register ~id:"fig1" ~title:"Figure 1: Xalan GC pauses"
    ~memo_key:"xalan" xalan_runner;
  Experiment.register ~id:"fig2" ~title:"Figure 2: Xalan iteration durations"
    ~memo_key:"xalan" xalan_runner;
  single "fig3" "Figure 3: GC ranking by experiments won" fig3_artifact;
  single "fig4" "Figure 4: CMS and G1 server pauses" fig4_artifact;
  Experiment.register ~id:"fig5"
    ~title:"Figure 5: client latencies under server GC" ~memo_key:"client"
    client_runner;
  Experiment.register ~id:"table567" ~title:"Tables 5-7: client latency bands"
    ~memo_key:"client" client_runner;
  single "table8" "Table 8: collector summary" table8_artifact;
  single "server-po" "ParallelOld server analysis" server_po_artifact;
  single "ablation" "Ablation studies" ablation_artifact;
  single "ergonomics"
    "Ergonomics: fixed vs adaptive sizing with convergence trajectory"
    ergonomics_artifact;
  single "faults"
    "Fault injection: resilience under GC pauses and network faults"
    faults_artifact;
  single "cluster" "Cluster ring: tail at scale" cluster_artifact;
  single "pauseless" "Pauseless family: concurrent regions and journaled RC"
    pauseless_artifact;
  single "distill" "Distilled collector cost (LBO) over an ideal-GC baseline"
    distill_artifact

(* ------------------------------------------------------------------ *)
(* Facade over the registry.                                          *)

let all () = Experiment.all ()
let all_names = Experiment.ids ()
let artifact = Experiment.artifact
let run = Experiment.run
