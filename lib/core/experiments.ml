let table2 ?(quick = false) () = Exp_table2.render (Exp_table2.run ~quick ())

let table3 ?(quick = false) () = Exp_table3.render (Exp_table3.run ~quick ())

let table4 ?(quick = false) () = Exp_table4.render (Exp_table4.run ~quick ())

let xalan_memo : (bool * Exp_xalan.result) option ref = ref None

(* Figures 1 and 2 come from the same campaign; share the runs. *)
let xalan ~quick =
  match !xalan_memo with
  | Some (q, r) when q = quick -> r
  | _ ->
      let r = Exp_xalan.run ~quick () in
      xalan_memo := Some (quick, r);
      r

let figure1 ?(quick = false) () = Exp_xalan.render_figure1 (xalan ~quick)

let figure2 ?(quick = false) () = Exp_xalan.render_figure2 (xalan ~quick)

let figure3 ?(quick = false) () = Exp_fig3.render (Exp_fig3.run ~quick ())

let figure4 ?(quick = false) () =
  Exp_server.render_figure4 (Exp_server.figure4 ~quick ())

let client_memo : (bool * Exp_client.result) option ref = ref None

let client ~quick =
  match !client_memo with
  | Some (q, r) when q = quick -> r
  | _ ->
      let r = Exp_client.run ~quick () in
      client_memo := Some (quick, r);
      r

let figure5 ?(quick = false) () = Exp_client.render_figure5 (client ~quick)

let tables567 ?(quick = false) () = Exp_client.render_tables567 (client ~quick)

let table8 ?(quick = false) () = Exp_table8.render (Exp_table8.run ~quick ())

let server_parallel_old ?(quick = false) () =
  Exp_server.render_parallel_old (Exp_server.parallel_old_analysis ~quick ())

let ablation ?(quick = false) () = Exp_ablation.render (Exp_ablation.run ~quick ())

let runners =
  [
    ("table2", fun ~quick -> table2 ~quick ());
    ("table3", fun ~quick -> table3 ~quick ());
    ("table4", fun ~quick -> table4 ~quick ());
    ("fig1", fun ~quick -> figure1 ~quick ());
    ("fig2", fun ~quick -> figure2 ~quick ());
    ("fig3", fun ~quick -> figure3 ~quick ());
    ("fig4", fun ~quick -> figure4 ~quick ());
    ("fig5", fun ~quick -> figure5 ~quick ());
    ("table567", fun ~quick -> tables567 ~quick ());
    ("table8", fun ~quick -> table8 ~quick ());
    ("server-po", fun ~quick -> server_parallel_old ~quick ());
    ("ablation", fun ~quick -> ablation ~quick ());
  ]

let all_names = List.map fst runners

let by_name name = List.assoc_opt name runners
