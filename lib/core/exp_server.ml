module Vm = Gcperf_runtime.Vm
module Server = Gcperf_kvstore.Server
module Gc_event = Gcperf_sim.Gc_event
module Gc_config = Gcperf_gc.Gc_config
module Chart = Gcperf_report.Chart
module Table = Gcperf_report.Table

type server_run = {
  gc : string;
  config_name : string;
  duration_s : float;
  pauses : (float * float) array;
  intervals : (float * float) array;
  db_timeline : (float * int) array;
  young_max_s : float;
  full_max_s : float;
  full_count : int;
  max_pause_s : float;
  oom : bool;
}

(* The study's server deployment: 64 GB fixed heap, 12 GB young
   generation ("around one fourth of the total memory" per the JVM
   recommendation the authors follow). *)
let server_gc kind =
  Gc_config.default kind ~heap_bytes:(Exp_common.gb 64)
    ~young_bytes:(Exp_common.gb 12)

let load_ops_per_s = 420.0
let transaction_ops_per_s = 1500.0
let transaction_read_frac = 0.88
let transaction_insert_frac = 0.02
let preload_bytes = Exp_common.gb 22

let summarise vm ~gc ~config_name ~oom =
  let events = Vm.events vm in
  let all = Gc_event.events events in
  let pauses =
    Array.of_list
      (List.map
         (fun e ->
           (e.Gc_event.start_us /. 1e6, e.Gc_event.duration_us /. 1e6))
         all)
  in
  let max_of kinds =
    List.fold_left
      (fun acc e ->
        if List.mem e.Gc_event.kind kinds then
          Float.max acc (e.Gc_event.duration_us /. 1e6)
        else acc)
      0.0 all
  in
  {
    gc;
    config_name;
    duration_s = Vm.now_s vm;
    pauses;
    intervals = Gc_event.intervals events;
    db_timeline = [||];
    young_max_s = max_of [ Gc_event.Young; Gc_event.Mixed ];
    full_max_s = max_of [ Gc_event.Full ];
    full_count = Gc_event.count_full events;
    max_pause_s = Gc_event.max_pause_s events;
    oom;
  }

let run_server_config ~scope ~label ~config:gc ~stress ~hours () =
  let machine = Exp_common.machine () in
  let vm = Vm.create machine gc ~seed:Exp_common.seed in
  let config =
    if stress then Server.stress_config ~heap_bytes:gc.Gc_config.heap_bytes
    else Server.default_config
  in
  let server = Server.create vm config ~seed:(Exp_common.seed + 1) in
  let hours = Scope.hours scope hours in
  let oom = ref false in
  (try
     if stress then begin
       (* Pre-loaded database: the server replays its commit log before
          serving, exactly as the paper's stressed Cassandra must. *)
       Server.replay_commitlog server
         ~target_bytes:(Scope.bytes scope preload_bytes);
       Server.run server ~duration_s:(hours *. 3600.0)
         ~ops_per_s:transaction_ops_per_s ~read_frac:transaction_read_frac
         ~insert_frac:transaction_insert_frac
     end
     else
       (* Default configuration: the YCSB client is in its loading phase,
          continuously populating the database. *)
       Server.run server ~duration_s:(hours *. 3600.0)
         ~ops_per_s:load_ops_per_s ~read_frac:0.0 ~insert_frac:1.0
   with Gcperf_gc.Gc_ctx.Out_of_memory _ -> oom := true);
  let run =
    summarise vm ~gc:label
      ~config_name:(if stress then "stress" else "default")
      ~oom:!oom
  in
  { run with db_timeline = Server.db_size_timeline server }

let run_server_scope ~scope ~kind ~stress ~hours () =
  run_server_config ~scope
    ~label:(Gc_config.kind_to_string kind)
    ~config:(server_gc kind) ~stress ~hours ()

let run_server ?(quick = false) ~kind ~stress ~hours () =
  run_server_scope ~scope:(Scope.of_quick quick) ~kind ~stress ~hours ()

type figure4 = { cms : server_run; g1 : server_run }

let figure4_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  (* Two independent server runs (CMS, G1); each cell builds its own VM
     and server from fixed seeds. *)
  match
    Exp_common.Pool.map_list ~jobs
      (fun kind -> run_server_scope ~scope ~kind ~stress:true ~hours:2.0 ())
      [ Gc_config.Cms; Gc_config.G1 ]
  with
  | [ cms; g1 ] -> { cms; g1 }
  | _ -> assert false

let figure4 ?(quick = false) () = figure4_scope ~scope:(Scope.of_quick quick) ()

let render_figure4 f =
  let series =
    [
      { Chart.label = "CMS"; glyph = 'C'; points = f.cms.pauses };
      { Chart.label = "G1"; glyph = 'G'; points = f.g1.pauses };
    ]
  in
  Printf.sprintf
    "Figure 4: application pauses for ConcurrentMarkSweep (CMS) and G1\n\
     garbage collectors with the key-value store server (stress test)\n\n\
     %s\n\
     CMS: %d pauses, max %.2fs (full: %d, max %.2fs)%s\n\
     G1:  %d pauses, max %.2fs (full: %d, max %.2fs)%s\n"
    (Chart.scatter ~x_label:"Elapsed time (s)" ~y_label:"GC pause duration (s)"
       series)
    (Array.length f.cms.pauses)
    f.cms.max_pause_s f.cms.full_count f.cms.full_max_s
    (if f.cms.oom then " [OOM]" else "")
    (Array.length f.g1.pauses)
    f.g1.max_pause_s f.g1.full_count f.g1.full_max_s
    (if f.g1.oom then " [OOM]" else "")

type parallel_old_analysis = {
  one_hour : server_run;
  two_hours : server_run;
  stress : server_run;
}

let parallel_old_analysis_scope ~scope ?(jobs = Exp_common.default_jobs ())
    () =
  match
    Exp_common.Pool.map_list ~jobs
      (fun (stress, hours) ->
        run_server_scope ~scope ~kind:Gc_config.ParallelOld ~stress ~hours ())
      [ (false, 1.0); (false, 2.0); (true, 2.0) ]
  with
  | [ one_hour; two_hours; stress ] -> { one_hour; two_hours; stress }
  | _ -> assert false

let parallel_old_analysis ?(quick = false) () =
  parallel_old_analysis_scope ~scope:(Scope.of_quick quick) ()

let render_parallel_old a =
  let t =
    Table.create
      ~columns:
        [
          ("Experiment", Table.Left);
          ("Duration (s)", Table.Right);
          ("#pauses", Table.Right);
          ("Max young pause (s)", Table.Right);
          ("Full GCs", Table.Right);
          ("Max full pause (s)", Table.Right);
        ]
  in
  let row label r =
    Table.add_row t
      [
        label ^ (if r.oom then " [OOM]" else "");
        Table.cell_f ~decimals:0 r.duration_s;
        string_of_int (Array.length r.pauses);
        Table.cell_f r.young_max_s;
        string_of_int r.full_count;
        Table.cell_f r.full_max_s;
      ]
  in
  row "default, 1h load" a.one_hour;
  row "default, 2h load" a.two_hours;
  row "stress, 2h" a.stress;
  "ParallelOld on the key-value server (4.1): young pauses grow to tens\n\
   of seconds; the second hour triggers a full collection of minutes\n\n"
  ^ Table.render t
