(** Shared experiment scaffolding.

    Fixes the machine, seeds, heap/young size grids and naming so every
    experiment in the study draws from the same configuration space. *)

module Pool = Gcperf_exec.Pool
(** Re-exported so runners fan cells out without naming the library. *)

val machine : unit -> Gcperf_machine.Machine.t
(** The paper's 48-core server.  Memoised on the orchestrating domain:
    runners call this before fanning cells out over the
    {!Gcperf_exec.Pool} and share the immutable result read-only. *)

val default_jobs : unit -> int
(** {!Gcperf_exec.Pool.default_jobs}: the default for every runner's
    [?jobs] parameter. *)

val gb : int -> int
val mb : int -> int

val baseline : Gcperf_gc.Gc_config.kind -> Gcperf_gc.Gc_config.t
(** ~16 GB heap, ~5.6 GB young generation, TLAB on (the study's
    baseline, i.e. Java's defaults on the 64 GB machine). *)

val config :
  Gcperf_gc.Gc_config.kind ->
  heap:int ->
  young:int ->
  ?tlab:bool ->
  unit ->
  Gcperf_gc.Gc_config.t

val size_grid : unit -> (int * int) list
(** The (heap, young) combinations of §3.1: heap from the baseline up to
    the machine's 64 GB, young from the baseline up to the heap. *)

val small_size_grid : unit -> (int * int) list
(** The small-memory grid of §3.3: heaps of 1 GB/500 MB/250 MB crossed
    with young sizes of 200 MB/100 MB. *)

val all_kinds : Gcperf_gc.Gc_config.kind list

val kind_name : Gcperf_gc.Gc_config.kind -> string

val seed : int
(** Base seed; replicated runs derive their own deterministically. *)

val scaled : quick:bool -> int -> int
(** [scaled ~quick n] is [Scope.scaled (Scope.of_quick quick) n] — kept
    for callers still on the boolean API; new code should take a
    {!Scope.t} and use {!Scope.scaled} directly. *)
