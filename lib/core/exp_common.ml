module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Pool = Gcperf_exec.Pool

(* Built on the orchestrating domain, before any fan-out: every runner
   hoists [machine ()] out of its cell array, and [Machine.t] is a
   deeply immutable record, so sharing it read-only across worker
   domains is race-free. *)
let machine_memo = ref None

let machine () =
  match !machine_memo with
  | Some m -> m
  | None ->
      let m = Machine.paper_server () in
      machine_memo := Some m;
      m

let default_jobs () = Pool.default_jobs ()

let gb = Gc_config.gb
let mb = Gc_config.mb

let baseline kind = Gc_config.baseline kind

let config kind ~heap ~young ?(tlab = true) () =
  let c = Gc_config.default kind ~heap_bytes:heap ~young_bytes:young in
  { c with Gc_config.tlab }

(* §3.1: "We varied the maximum heap size from the baseline to the
   maximum amount of memory supported by the machine, i.e., 64GB.
   Separately, we varied the Young Generation size from the baseline to
   the heap size." *)
let size_grid () =
  [
    (gb 16, mb 5734);
    (gb 16, gb 8);
    (gb 16, gb 12);
    (gb 32, mb 5734);
    (gb 32, gb 12);
    (gb 32, gb 24);
    (gb 64, mb 5734);
    (gb 64, gb 12);
    (gb 64, gb 48);
  ]

let small_size_grid () =
  [
    (gb 1, mb 200);
    (gb 1, mb 100);
    (mb 500, mb 200);
    (mb 500, mb 100);
    (mb 250, mb 200);
    (mb 250, mb 100);
  ]

let all_kinds = Gc_config.all_kinds

let kind_name = Gc_config.kind_to_string

let seed = 42

let scaled ~quick n = Scope.scaled (Scope.of_quick quick) n
