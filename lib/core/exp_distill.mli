(** Distilled collector cost — the LBO methodology of Cai & Blackburn
    applied to the study's collectors.

    For every (heap, young) point of the Table 3 ladder, runs h2 under
    all eight collectors (six JDK8 + concurrent-regions + journal-rc)
    with telemetry on, synthesises an ideal-GC baseline from the
    recorded mutator timeline (collector costs struck out, honest
    allocation tax retained) and reports the distilled cost
    [(t_real − t_ideal)/t_ideal] decomposed into stop-the-world,
    concurrent core-steal and barrier/journal mutator-tax shares —
    a ranking by what a collector actually costs rather than how long
    it pauses.  See DESIGN.md §18. *)

type cell = {
  gc : string;
  heap_bytes : int;
  young_bytes : int;
  oom : bool;
  cost : Gcperf_distill.Distill.cost;
}

type result = { scope : Scope.t; bench : string; cells : cell list }

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run : ?quick:bool -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val ranking : cell list -> (string * float) list
(** Mean distilled cost per collector over the non-OOM cells, sorted
    ascending (best first); collectors with only OOM cells rank last
    with [infinity]. *)

val render : result -> string
