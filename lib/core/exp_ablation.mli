(** Ablation studies for the design choices DESIGN.md calls out.

    Three of the modelling decisions behind the reproduction are
    load-bearing; each ablation removes one and measures the consequence:

    - {b G1's serial full collection} (JDK8) is what makes G1 the worst
      collector under DaCapo's forced system GCs.  The ablation runs the
      same campaign with a parallel full collection (JDK10's change) and
      shows the penalty mostly disappears — i.e. the paper's headline
      benchmark finding is specific to the JDK8 implementation.
    - {b The NUMA remote-access penalty} is what keeps stop-the-world
      collections from scaling to 48 cores (Gidra et al.).  The ablation
      sets the penalty to 1 and shows multi-minute server full
      collections shrink dramatically.
    - {b Tenuring} spreads promotion over time.  The ablation sweeps the
      maximum tenuring threshold and shows both extremes hurt: threshold
      1 promotes everything (old fills, long pauses), very high
      thresholds re-copy survivors forever. *)

type g1_full_row = {
  mode : string;  (** "serial (JDK8)" or "parallel (ablation)" *)
  total_s : float;
  max_full_pause_s : float;
}

type numa_row = {
  numa_factor : float;
  full_pause_s : float;  (** stressed-server full collection *)
}

type tenuring_row = {
  threshold : int;
  pauses : int;
  avg_pause_s : float;
  total_pause_s : float;
}

type result = {
  g1_full : g1_full_row list;
  numa : numa_row list;
  tenuring : tenuring_row list;
}

val run_scope : scope:Scope.t -> ?jobs:int -> unit -> result

val run : ?quick:bool -> unit -> result
(** [run_scope] with {!Scope.of_quick}. *)

val render : result -> string
