module Suite = Gcperf_dacapo.Suite
module Mutator = Gcperf_workload.Mutator
module Vm = Gcperf_runtime.Vm
module Gc_event = Gcperf_sim.Gc_event
module Gc_config = Gcperf_gc.Gc_config
module Policy = Gcperf_policy.Policy

type run_stats = {
  minor_pauses : int;
  avg_minor_ms : float;
  p99_minor_ms : float;
  trailing_p99_ms : float;
  max_pause_ms : float;
  total_s : float;
  oom : bool;
  final_young_bytes : int;
  final_survivor_ratio : int;
  final_tenuring : int;
  resizes : int;
  trajectory : Policy.trajectory_point list;
}

let is_minor = function
  | Gc_event.Young | Gc_event.Mixed -> true
  | Gc_event.Full | Gc_event.Initial_mark | Gc_event.Remark
  | Gc_event.Cleanup ->
      false

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let measure machine bench ~gc ~iterations ~seed =
  let vm = Vm.create machine gc ~seed in
  let mut = Mutator.create vm bench.Suite.profile ~seed in
  let oom = ref false in
  (try
     for _ = 1 to iterations do
       ignore (Mutator.run_iteration mut)
     done
   with Gcperf_gc.Gc_ctx.Out_of_memory _ -> oom := true);
  let events = Gc_event.events (Vm.events vm) in
  let minors =
    List.filter_map
      (fun (e : Gc_event.event) ->
        if is_minor e.Gc_event.kind then Some (e.Gc_event.duration_us /. 1e3)
        else None)
      events
  in
  let minor_arr = Array.of_list minors in
  let n = Array.length minor_arr in
  let sorted = Array.copy minor_arr in
  Array.sort compare sorted;
  let trailing = Array.sub minor_arr (n / 2) (n - (n / 2)) in
  Array.sort compare trailing;
  let avg =
    if n = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 minor_arr /. float_of_int n
  in
  let final_young, final_ratio, final_tenuring, resizes, trajectory =
    match Vm.policy vm with
    | Some p ->
        let s = p.Policy.stats () in
        ( s.Policy.cur_young_bytes,
          s.Policy.cur_survivor_ratio,
          s.Policy.cur_tenuring_threshold,
          s.Policy.grows + s.Policy.shrinks,
          p.Policy.trajectory () )
    | None ->
        ( gc.Gc_config.young_bytes,
          gc.Gc_config.survivor_ratio,
          gc.Gc_config.tenuring_threshold,
          0,
          [] )
  in
  {
    minor_pauses = n;
    avg_minor_ms = avg;
    p99_minor_ms = percentile sorted 0.99;
    trailing_p99_ms = percentile trailing 0.99;
    max_pause_ms = 1e3 *. Gc_event.max_pause_s (Vm.events vm);
    total_s = Vm.now_s vm;
    oom = !oom;
    final_young_bytes = final_young;
    final_survivor_ratio = final_ratio;
    final_tenuring;
    resizes;
    trajectory;
  }

type cell = {
  gc : string;
  heap_bytes : int;
  young_bytes : int;
  adaptive : bool;
  stats : run_stats;
  within_goal : bool;
}

type result = {
  bench : string;
  pause_goal_ms : float;
  iterations : int;
  cells : cell list;
}

let kind_index kind =
  let rec find i = function
    | [] -> 0
    | k :: tl -> if k = kind then i else find (i + 1) tl
  in
  find 0 Exp_common.all_kinds

let bench_name = "xalan"

let run_scope ~scope ?(jobs = Exp_common.default_jobs ())
    ?(pause_goal_ms = 200.0) () =
  let machine = Exp_common.machine () in
  let iterations = Scope.scaled scope 10 in
  let grid = Scope.grid scope (Exp_common.size_grid ()) in
  let bench =
    match Suite.find bench_name with
    | Some b -> b
    | None -> invalid_arg "Exp_ergonomics: xalan missing from the suite"
  in
  let cells_in =
    List.concat_map
      (fun (heap, young) ->
        List.concat_map
          (fun kind -> [ (heap, young, kind, false); (heap, young, kind, true) ])
          Exp_common.all_kinds)
      grid
    |> Array.of_list
  in
  let runs =
    Exp_common.Pool.map_cells ~jobs
      (fun (heap, young, kind, adaptive) ->
        let gc =
          { (Exp_common.config kind ~heap ~young ()) with
            Gc_config.adaptive;
            pause_goal_ms;
          }
        in
        (* Same per-collector seed split as the Figure 3 sweep; fixed and
           adaptive share the seed so the policy is the only difference. *)
        let seed = Exp_common.seed + (37 * kind_index kind) in
        let stats = measure machine bench ~gc ~iterations ~seed in
        {
          gc = Exp_common.kind_name kind;
          heap_bytes = heap;
          young_bytes = young;
          adaptive;
          stats;
          within_goal = stats.trailing_p99_ms <= pause_goal_ms;
        })
      cells_in
  in
  { bench = bench_name; pause_goal_ms; iterations; cells = Array.to_list runs }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let mbs bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let render r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Ergonomics: fixed vs adaptive sizing (%s, pause goal %.0f ms, %d \
        iterations)\n\n"
       r.bench r.pause_goal_ms r.iterations);
  Buffer.add_string buf
    (Printf.sprintf "%-14s %8s %9s %6s %7s %8s %8s %8s %7s %5s\n" "collector"
       "heap" "mode" "minors" "avg_ms" "p99_ms" "tail_p99" "young_MB" "resize"
       "goal");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %6.0fGB %9s %6d %7.1f %8.1f %8.1f %8.0f %7d %5s\n"
           c.gc
           (mbs c.heap_bytes /. 1024.0)
           (if c.adaptive then "adaptive" else "fixed")
           c.stats.minor_pauses c.stats.avg_minor_ms c.stats.p99_minor_ms
           c.stats.trailing_p99_ms
           (mbs c.stats.final_young_bytes)
           c.stats.resizes
           (if c.stats.oom then "OOM"
            else if c.within_goal then "yes"
            else "no")))
    r.cells;
  let adaptives = List.filter (fun c -> c.adaptive) r.cells in
  let converged = List.filter (fun c -> c.within_goal) adaptives in
  Buffer.add_string buf
    (Printf.sprintf
       "\n%d/%d adaptive runs converged within the pause goal; trajectories \
        carry %d points total.\n"
       (List.length converged) (List.length adaptives)
       (List.fold_left
          (fun acc c -> acc + List.length c.stats.trajectory)
          0 adaptives));
  Buffer.contents buf
