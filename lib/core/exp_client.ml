module Client = Gcperf_ycsb.Client
module Session = Gcperf_ycsb.Session
module Stats = Gcperf_stats.Stats
module Gc_config = Gcperf_gc.Gc_config
module Chart = Gcperf_report.Chart
module Table = Gcperf_report.Table

type gc_experiment = {
  gc : string;
  points : Client.point array;
  server : Exp_server.server_run;
  read_report : Stats.latency_report;
  update_report : Stats.latency_report;
}

type result = {
  parallel_old : gc_experiment;
  cms : gc_experiment;
  g1 : gc_experiment;
}

let one ~scope kind =
  let server =
    Exp_server.run_server_scope ~scope ~kind ~stress:true ~hours:2.0 ()
  in
  let workload =
    let w = Client.paper_workload in
    {
      w with
      Client.duration_s = server.Exp_server.duration_s;
      ops_per_s = Scope.rate scope w.Client.ops_per_s;
    }
  in
  let points =
    Session.points workload
      {
        Session.pauses = server.Exp_server.intervals;
        db_timeline = server.Exp_server.db_timeline;
      }
      ~seed:(Exp_common.seed + 97)
  in
  {
    gc = server.Exp_server.gc;
    points;
    server;
    read_report = Client.report points ~kind:Client.Read;
    update_report = Client.report points ~kind:Client.Update;
  }

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  (* One cell per collector; the server run and its replayed YCSB client
     live entirely inside the cell. *)
  match
    Exp_common.Pool.map_list ~jobs
      (fun kind -> one ~scope kind)
      [ Gc_config.ParallelOld; Gc_config.Cms; Gc_config.G1 ]
  with
  | [ parallel_old; cms; g1 ] -> { parallel_old; cms; g1 }
  | _ -> assert false

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

(* The paper plots only the highest 10000 points of each chart. *)
let top_points e =
  let top =
    Stats.top_k_by
      (fun (p : Client.point) -> p.Client.latency_ms)
      10_000
      (Array.to_list e.points)
  in
  List.partition (fun p -> p.Client.kind = Client.Read) top

let render_one e =
  let reads, updates = top_points e in
  let pts l =
    Array.of_list
      (List.map (fun p -> (p.Client.time_s, p.Client.latency_ms)) l)
  in
  let gc_pts =
    Array.map
      (fun (t, d) -> (t, d *. 1e3))
      e.server.Exp_server.pauses
  in
  Chart.scatter ~x_label:"Time since beginning of experiment (s)"
    ~y_label:"Latency (ms)"
    [
      { Chart.label = "READ"; glyph = 'r'; points = pts reads };
      { Chart.label = "UPDATE"; glyph = 'u'; points = pts updates };
      { Chart.label = "GC (pause, ms)"; glyph = '*'; points = gc_pts };
    ]

let render_figure5 r =
  "Figure 5: application response time for three GC strategies\n\
   (highest 10000 points of each run)\n\n"
  ^ Printf.sprintf "(a) ParallelOld\n%s\n" (render_one r.parallel_old)
  ^ Printf.sprintf "(b) CMS\n%s\n" (render_one r.cms)
  ^ Printf.sprintf "(c) G1\n%s\n" (render_one r.g1)

let render_table e =
  let t =
    Table.create
      ~columns:
        [ ("", Table.Left); ("READ", Table.Right); ("UPDATE", Table.Right) ]
  in
  let row label f =
    Table.add_row t
      [ label; Table.cell_pct (f e.read_report); Table.cell_pct (f e.update_report) ]
  in
  row "AVG(ms)" (fun r -> r.Stats.avg_ms);
  row "MAX(ms)" (fun r -> r.Stats.max_ms);
  row "MIN(ms)" (fun r -> r.Stats.min_ms);
  Table.add_separator t;
  row "0.5x-1.5x AVG (%reqs)" (fun r -> r.Stats.around_avg.Stats.pct_requests);
  row "0.5x-1.5x AVG (%GCs)" (fun r -> r.Stats.around_avg.Stats.pct_gc);
  let bands =
    max
      (List.length e.read_report.Stats.above)
      (List.length e.update_report.Stats.above)
  in
  for i = 0 to bands - 1 do
    let label r =
      match List.nth_opt r.Stats.above i with
      | Some b -> b.Stats.label
      | None -> Printf.sprintf ">%dx AVG" (1 lsl (i + 1))
    in
    let value f r =
      match List.nth_opt r.Stats.above i with
      | Some b -> f b
      | None -> 0.0
    in
    Table.add_separator t;
    Table.add_row t
      [
        label e.read_report ^ " (%reqs)";
        Table.cell_pct (value (fun b -> b.Stats.pct_requests) e.read_report);
        Table.cell_pct (value (fun b -> b.Stats.pct_requests) e.update_report);
      ];
    Table.add_row t
      [
        label e.read_report ^ " (%GCs)";
        Table.cell_pct (value (fun b -> b.Stats.pct_gc) e.read_report);
        Table.cell_pct (value (fun b -> b.Stats.pct_gc) e.update_report);
      ]
  done;
  Printf.sprintf
    "Latency statistics for READ and UPDATE operations, %s (%d points)\n\n%s"
    e.gc (Array.length e.points) (Table.render t)

let render_tables567 r =
  "Table 5: " ^ render_table r.parallel_old ^ "\nTable 6: "
  ^ render_table r.g1 ^ "\nTable 7: " ^ render_table r.cms
