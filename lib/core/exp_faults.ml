module Client = Gcperf_ycsb.Client
module Resilient = Gcperf_ycsb.Resilient
module Session = Gcperf_ycsb.Session
module Profile = Gcperf_fault.Profile
module Gc_config = Gcperf_gc.Gc_config
module Table = Gcperf_report.Table

type session = {
  gc : string;
  profile : string;
  resilient : bool;
  summary : Resilient.summary;
}

type cell = {
  gc : string;
  server : Exp_server.server_run;
  sessions : session list;
}

type result = { scope : Scope.t; cells : cell list }

(* CMS and G1 are the collectors the paper recommends for the
   client-server deployment; ParallelOld is the baseline whose full
   collections make the fault layer's job hardest. *)
let collectors = [ Gc_config.Cms; Gc_config.G1; Gc_config.ParallelOld ]

let session_seed = Exp_common.seed + 131

let one ~scope kind =
  let server =
    Exp_server.run_server_scope ~scope ~kind ~stress:true ~hours:2.0 ()
  in
  let workload =
    let w = Client.paper_workload in
    {
      w with
      Client.duration_s = server.Exp_server.duration_s;
      ops_per_s = Scope.rate scope w.Client.ops_per_s;
    }
  in
  let sessions =
    List.concat_map
      (fun profile ->
        List.map
          (fun resilient ->
            (* The typed resilience level replaces the hand-paired
               (resilience record, gateway config) the old API needed. *)
            let resilience =
              if resilient then Session.Resilience.Paper_defaults
              else Session.Resilience.Off
            in
            let summary =
              Session.run ~resilience ~profile
                ~collector:server.Exp_server.gc workload
                {
                  Session.pauses = server.Exp_server.intervals;
                  db_timeline = server.Exp_server.db_timeline;
                }
                ~seed:session_seed
            in
            {
              gc = server.Exp_server.gc;
              profile = profile.Profile.name;
              resilient;
              summary;
            })
          [ false; true ])
      Profile.all
  in
  { gc = server.Exp_server.gc; server; sessions }

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  (* One cell per collector: the server run and every fault session it
     feeds live inside the cell, so the fan-out stays byte-identical
     for any worker count. *)
  let cells =
    Exp_common.Pool.map_list ~jobs (fun kind -> one ~scope kind) collectors
  in
  { scope; cells }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let sessions r = List.concat_map (fun c -> c.sessions) r.cells

let render r =
  let t =
    Table.create
      ~columns:
        [
          ("GC", Table.Left);
          ("profile", Table.Left);
          ("resilience", Table.Left);
          ("goodput(op/s)", Table.Right);
          ("amp", Table.Right);
          ("p50(ms)", Table.Right);
          ("p99(ms)", Table.Right);
          ("p99.9(ms)", Table.Right);
          ("timeout", Table.Right);
          ("shed", Table.Right);
          ("hedge-win", Table.Right);
        ]
  in
  List.iter
    (fun c ->
      Table.add_separator t;
      List.iter
        (fun s ->
          let m = s.summary in
          Table.add_row t
            [
              s.gc;
              s.profile;
              (if s.resilient then "on" else "off");
              Table.cell_f m.Resilient.goodput_ops_s;
              Table.cell_f m.Resilient.retry_amplification;
              Table.cell_f m.Resilient.p50_ms;
              Table.cell_f m.Resilient.p99_ms;
              Table.cell_f m.Resilient.p999_ms;
              string_of_int m.Resilient.timeouts;
              string_of_int (m.Resilient.sheds + m.Resilient.fast_rejects);
              string_of_int m.Resilient.hedge_wins;
            ])
        c.sessions)
    r.cells;
  let requests =
    match sessions r with [] -> 0 | s :: _ -> s.summary.Resilient.requests
  in
  Printf.sprintf
    "Fault injection: goodput, retry amplification and client tail latency\n\
     under injected faults, with graceful degradation + client resilience\n\
     off and on (%d requests per session, seed %d)\n\n\
     %s"
    requests session_seed (Table.render t)
