(** [gcperf tune]: sizing advisor.

    Searches a (heap, young) grid for one collector and benchmark,
    measuring each fixed-size candidate, and recommends the
    configuration that meets the pause goal with the best throughput
    (ties broken toward the smaller heap).  The winning point is then
    re-run with the adaptive policy attached; the sizes the policy
    converged to refine the recommended [-Xmn] / [-XX:SurvivorRatio] /
    [-XX:MaxTenuringThreshold] flags. *)

type candidate = {
  heap_bytes : int;
  young_bytes : int;
  stats : Exp_ergonomics.run_stats;
  meets_goal : bool;  (** trailing p99 minor pause at or under the goal *)
}

type recommendation = {
  collector : Gcperf_gc.Gc_config.kind;
  bench : string;
  pause_goal_ms : float;
  iterations : int;
  candidates : candidate list;
  best : candidate option;
      (** [None] only when every candidate ran out of memory *)
  refined : Exp_ergonomics.run_stats option;
      (** adaptive re-run at [best], when there is one *)
}

val run_scope :
  scope:Scope.t ->
  ?jobs:int ->
  ?pause_goal_ms:float ->
  bench:Gcperf_dacapo.Suite.bench ->
  Gcperf_gc.Gc_config.kind ->
  recommendation
(** Candidate measurements fan out on the deterministic pool; the
    adaptive refinement is a single sequential run. *)

val flags : recommendation -> string list
(** The JVM command-line flags the recommendation translates to
    (["-XX:+UseG1GC"; "-Xms8g"; ...]); empty when [best] is [None]. *)

val render : recommendation -> string
