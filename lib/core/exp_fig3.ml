module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Chart = Gcperf_report.Chart

type ranking = (string * float) list

type result = {
  with_system_gc : ranking;
  without_system_gc : ranking;
  experiments : int;
}

let kind_index kind =
  let rec find i = function
    | [] -> 0
    | k :: tl -> if k = kind then i else find (i + 1) tl
  in
  find 0 Exp_common.all_kinds

let run_scope ~scope ?(jobs = Exp_common.default_jobs ()) () =
  let machine = Exp_common.machine () in
  let iterations = Scope.scaled scope 10 in
  let grid = Scope.grid scope (Exp_common.size_grid ()) in
  let benches = Suite.stable_subset in
  let kinds = Exp_common.all_kinds in
  let nkinds = List.length kinds in
  let mode system_gc =
    (* Flatten benchmark x sizes x collector into one cell array; each
       cell is a single run.  The win tally below walks the results in
       cell order, consuming [nkinds] consecutive runs per experiment —
       the same grouping the sequential nested loops produced. *)
    let cells =
      Array.of_list
        (List.concat_map
           (fun bench ->
             List.concat_map
               (fun (heap, young) ->
                 List.map (fun kind -> (bench, heap, young, kind)) kinds)
               grid)
           benches)
    in
    let runs =
      Exp_common.Pool.map_cells ~jobs
        (fun (bench, heap, young, kind) ->
          let gc = Exp_common.config kind ~heap ~young () in
          (* Every (benchmark, sizes, collector) run is a separate
             noisy execution, as in the study: close races are
             decided by run-to-run variation, not by list order. *)
          Harness.run
            ~seed:(Exp_common.seed + (37 * kind_index kind))
            ~iterations machine bench ~gc ~system_gc ())
        cells
    in
    let wins = Hashtbl.create 8 in
    let experiments = ref 0 in
    let n_experiments = Array.length cells / nkinds in
    for e = 0 to n_experiments - 1 do
      incr experiments;
      let group =
        List.init nkinds (fun k -> runs.((e * nkinds) + k))
      in
      match Harness.best_of group with
      | None -> ()
      | Some best ->
          let k = best.Harness.gc_name in
          Hashtbl.replace wins k
            (1 + Option.value ~default:0 (Hashtbl.find_opt wins k))
    done;
    let total = float_of_int !experiments in
    let ranking =
      List.filter_map
        (fun kind ->
          let name = Exp_common.kind_name kind in
          match Hashtbl.find_opt wins name with
          | None -> Some (name, 0.0)
          | Some n -> Some (name, 100.0 *. float_of_int n /. total))
        Exp_common.all_kinds
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    (ranking, !experiments)
  in
  let with_sys, n = mode true in
  let without_sys, _ = mode false in
  { with_system_gc = with_sys; without_system_gc = without_sys; experiments = n }

let run ?(quick = false) () = run_scope ~scope:(Scope.of_quick quick) ()

let render result =
  let part title ranking =
    Chart.bars ~title (List.filter (fun (_, v) -> v >= 0.0) ranking)
  in
  Printf.sprintf
    "Figure 3: GC ranking according to the number of experiments in which\n\
     they performed the best (%d experiments per mode)\n\n%s\n%s"
    result.experiments
    (part "(a) System GC — percent of experiments won" result.with_system_gc)
    (part "(b) No System GC — percent of experiments won"
       result.without_system_gc)
