(** Resilient YCSB client: the fault-tolerant request loop.

    {!Client} replays the happy path — every request is answered, the
    only latency source is the server's pause schedule.  This module
    replays the same workload through the full failure model: a
    {!Gcperf_fault.Injector} decides which responses are delayed,
    dropped or errored (and when the wider client population mounts a
    load spike), a {!Gcperf_kvstore.Gateway} decides which requests the
    degraded server queues, sheds or fast-rejects, and the client reacts
    with per-request timeouts, bounded exponential backoff with jitter,
    a global retry budget and (for idempotent reads) hedged requests.

    The whole session is a discrete-event simulation on the simulated
    clock: attempts are processed in time order from one event heap, the
    session PRNG is consumed in that order, and every collaborator is
    seeded from the cell seed — so a session is byte-reproducible and
    independent of the worker count running it.

    Client-visible events are recorded as telemetry spans with causes
    ["timeout"], ["retry"], ["shed"], ["hedge-win"] (plus ["error"] and
    ["drop"] for injected faults). *)

type resilience = {
  timeout_ms : float;  (** per-attempt timeout; [infinity] disables *)
  max_attempts : int;  (** 1 = never retry *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  backoff_jitter : float;
      (** uniform extra fraction of the backoff, in [0, jitter] *)
  retry_budget_pct : float;
      (** global retry budget as a percentage of the request count: once
          spent, failures stop retrying — the valve against retry storms *)
  hedge_ms : float;
      (** hedge reads still unanswered after this long; [0] disables *)
}

val none : resilience
(** The pre-resilience client: wait forever, never retry, never hedge. *)

val paper_defaults : resilience
(** 250 ms timeout, 4 attempts, 50 ms..1 s backoff with 50 % jitter,
    20 % retry budget, 20 ms read hedging. *)

type summary = {
  profile : string;
  requests : int;
  ok : int;
  failed : int;
  attempts : int;
  retries : int;
  retry_amplification : float;  (** attempts per request *)
  goodput_ops_s : float;  (** successful requests per second *)
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;  (** over successful requests, arrival to response *)
  timeouts : int;
  sheds : int;
  fast_rejects : int;
  drops : int;
  errors : int;
  hedge_wins : int;
}

val run :
  Client.workload ->
  profile:Gcperf_fault.Profile.t ->
  resilience:resilience ->
  gateway:Gcperf_kvstore.Gateway.config ->
  ?telemetry:Gcperf_telemetry.Telemetry.t ->
  ?collector:string ->
  pauses:(float * float) array ->
  db_timeline:(float * int) array ->
  seed:int ->
  unit ->
  summary
(** Run one fault session.  [pauses] and [db_timeline] come from a
    server run ({!Gcperf_sim.Gc_event.intervals} /
    [Server.db_size_timeline]); [collector] labels telemetry spans. *)
