(** YCSB-like client.

    A workload generator in the spirit of the Yahoo! Cloud Serving
    Benchmark: a {e loading phase} that populates the database and a
    {e transactions phase} that executes a read/update mix, recording
    per-operation latency.

    The client runs on its own (16-core) machine, so its latency model is
    decoupled from the server VM: each operation's latency is its base
    service time (reads slow down in steps as the database grows; updates
    are constant-time log appends), plus the time spent waiting when the
    operation lands during — or right after — a server stop-the-world
    pause.  This coupling is what makes "almost every peak in the client
    response time correspond to a collection on the server" (§4.2). *)

type op_kind = Read | Update

type point = {
  time_s : float;  (** arrival time since the start of the experiment *)
  kind : op_kind;
  latency_ms : float;
  gc_correlated : bool;
      (** the operation overlapped a server GC pause (or its drain) *)
}

type workload = {
  read_frac : float;  (** 0.5 in the paper's custom workload *)
  ops_per_s : float;
  duration_s : float;
  read_base_ms : float;  (** read service time on an empty database *)
  read_step_ms : float;  (** added per {!read_step_bytes} of database *)
  read_step_bytes : int;
  update_base_ms : float;
  jitter_sigma : float;  (** log-normal service-time noise *)
  drain_factor : float;
      (** backlog drain: requests arriving within [drain_factor * pause]
          after a pause still queue behind it *)
}

val paper_workload : workload
(** 50 % read / 50 % update, two virtual hours, ~150 ops/s per the study's
    scale (>1 million points per collector). *)

val db_bytes_at : (float * int) array -> float -> int
(** Database size at a given time: the last timeline sample at or before
    it (0 before the first sample).  Shared with {!Resilient}, whose
    service-time model must match this client's. *)

val run :
  workload ->
  pauses:(float * float) array ->
  db_timeline:(float * int) array ->
  seed:int ->
  point array
(** [run w ~pauses ~db_timeline ~seed] generates the client-side latency
    points for an experiment whose server produced the given
    stop-the-world [pauses] (seconds, as from {!Gcperf_sim.Gc_event.intervals})
    and database-size timeline.  Arrivals are Poisson. *)

val latency_histogram :
  point array -> kind:op_kind -> Gcperf_telemetry.Histogram.t
(** Log-bucketed latency histogram (ms) for one operation type: the
    telemetry view of the Tables 5-7 data.  Histograms from separate
    client shards merge with {!Gcperf_telemetry.Histogram.merge_into}. *)

val latency_percentiles : point array -> kind:op_kind -> (float * float) list
(** [(p, latency_ms)] on the 50/90/99/99.9 grid, read from
    {!latency_histogram}. *)

val report : point array -> kind:op_kind -> Gcperf_stats.Stats.latency_report
(** The Tables 5-7 statistics for one operation type. *)
