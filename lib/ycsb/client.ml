module Prng = Gcperf_util.Prng
module Stats = Gcperf_stats.Stats
module Histogram = Gcperf_telemetry.Histogram

type op_kind = Read | Update

type point = {
  time_s : float;
  kind : op_kind;
  latency_ms : float;
  gc_correlated : bool;
}

type workload = {
  read_frac : float;
  ops_per_s : float;
  duration_s : float;
  read_base_ms : float;
  read_step_ms : float;
  read_step_bytes : int;
  update_base_ms : float;
  jitter_sigma : float;
  drain_factor : float;
}

let paper_workload =
  {
    read_frac = 0.5;
    ops_per_s = 150.0;
    duration_s = 7200.0;
    read_base_ms = 0.9;
    read_step_ms = 0.55;
    read_step_bytes = 8 * 1024 * 1024 * 1024;
    update_base_ms = 0.85;
    jitter_sigma = 0.18;
    drain_factor = 0.25;
  }

(* Database size at time [t]: the last sample at or before [t], found by
   binary search for the largest index whose timestamp is <= t. *)
let db_bytes_at timeline t =
  let n = Array.length timeline in
  if n = 0 || t < fst timeline.(0) then 0
  else begin
    let rec search lo hi =
      (* invariant: fst timeline.(lo) <= t < fst timeline.(hi+1) *)
      if lo >= hi then lo
      else begin
        let mid = (lo + hi + 1) / 2 in
        if fst timeline.(mid) <= t then search mid hi else search lo (mid - 1)
      end
    in
    snd timeline.(search 0 (n - 1))
  end

(* GC delay for an arrival at [t]: caught inside a pause, the request
   waits for the pause end; shortly after a pause, it queues behind the
   accumulated backlog that is still draining. *)
let gc_delay_s pauses ~drain_factor t =
  let n = Array.length pauses in
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let start_s, end_s = pauses.(mid) in
      let drain_end = end_s +. (drain_factor *. (end_s -. start_s)) in
      if t < start_s then search lo (mid - 1)
      else if t > drain_end then search (mid + 1) hi
      else Some (start_s, end_s, drain_end)
    end
  in
  match search 0 (n - 1) with
  | None -> None
  | Some (_start_s, end_s, drain_end) ->
      if t <= end_s then
        (* Stalled for the rest of the pause, plus its slice of the
           backlog drain. *)
        Some ((end_s -. t) +. (0.3 *. (drain_end -. end_s)))
      else
        (* The pause is over but the backlog is still draining: the
           residual delay decays linearly. *)
        Some
          ((drain_end -. t) /. Float.max 1e-9 (drain_end -. end_s)
          *. (drain_end -. end_s) *. 0.5)

let run w ~pauses ~db_timeline ~seed =
  let prng = Prng.create seed in
  let points = ref [] in
  let t = ref 0.0 in
  let jitter () =
    if w.jitter_sigma <= 0.0 then 1.0
    else
      Prng.lognormal prng
        ~mu:(-.(w.jitter_sigma *. w.jitter_sigma) /. 2.0)
        ~sigma:w.jitter_sigma
  in
  while !t < w.duration_s do
    t := !t +. Prng.exponential prng (1.0 /. w.ops_per_s);
    if !t < w.duration_s then begin
      let kind = if Prng.chance prng w.read_frac then Read else Update in
      let base_ms =
        match kind with
        | Read ->
            let db = db_bytes_at db_timeline !t in
            w.read_base_ms
            +. (w.read_step_ms *. float_of_int (db / w.read_step_bytes))
        | Update -> w.update_base_ms
      in
      let service_ms = base_ms *. jitter () in
      let delay_s = gc_delay_s pauses ~drain_factor:w.drain_factor !t in
      let latency_ms, gc_correlated =
        match delay_s with
        | None -> (service_ms, false)
        | Some d -> (service_ms +. (d *. 1e3), true)
      in
      points := { time_s = !t; kind; latency_ms; gc_correlated } :: !points
    end
  done;
  Array.of_list (List.rev !points)

let latency_histogram points ~kind =
  let h = Histogram.create () in
  Array.iter
    (fun p -> if p.kind = kind then Histogram.record h p.latency_ms)
    points;
  h

let latency_percentiles points ~kind =
  let h = latency_histogram points ~kind in
  List.map (fun p -> (p, Histogram.percentile h p)) [ 50.0; 90.0; 99.0; 99.9 ]

let report points ~kind =
  let selected =
    Array.of_list
      (List.filter_map
         (fun p ->
           if p.kind = kind then Some (p.latency_ms, p.gc_correlated) else None)
         (Array.to_list points))
  in
  Stats.latency_report selected
