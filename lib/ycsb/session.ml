module Gateway = Gcperf_kvstore.Gateway
module Profile = Gcperf_fault.Profile

module Resilience = struct
  type t =
    | Off
    | Paper_defaults
    | Custom of Resilient.resilience * Gateway.config

  let client = function
    | Off -> Resilient.none
    | Paper_defaults -> Resilient.paper_defaults
    | Custom (r, _) -> r

  let gateway = function
    | Off -> Gateway.unbounded
    | Paper_defaults -> Gateway.degraded
    | Custom (_, g) -> g

  let to_string = function
    | Off -> "off"
    | Paper_defaults -> "paper-defaults"
    | Custom _ -> "custom"
end

type source = {
  pauses : (float * float) array;
  db_timeline : (float * int) array;
}

let run ?(resilience = Resilience.Off) ?(profile = Profile.none) ?telemetry
    ?collector workload source ~seed =
  Resilient.run workload ~profile
    ~resilience:(Resilience.client resilience)
    ~gateway:(Resilience.gateway resilience)
    ?telemetry ?collector ~pauses:source.pauses
    ~db_timeline:source.db_timeline ~seed ()

let points workload source ~seed =
  Client.run workload ~pauses:source.pauses ~db_timeline:source.db_timeline
    ~seed
