(** The one YCSB client API.

    Historically the repo grew two parallel client entry points:
    {!Client.run} (the happy path — every request answered, latency =
    service + pause overlap) and {!Resilient.run} (the full failure
    model — injector, gateway, timeouts, retries, hedging).  Callers had
    to know which to import and how to pair a resilience record with the
    matching gateway config.  This module is the single front door both
    are reached through: one {!run} driven by a typed {!Resilience.t},
    and {!points} for the happy-path latency trace the Figure 5 / Tables
    5-7 campaigns plot.  The legacy entry points remain for
    compatibility but new code — including the cluster coordinator —
    goes through here. *)

module Resilience : sig
  type t =
    | Off
        (** the pre-resilience stack: naive client (wait forever, never
            retry, never hedge) against an unbounded server queue *)
    | Paper_defaults
        (** the PR 5 headline configuration: 250 ms timeout, 4 attempts,
            bounded backoff, 20 % retry budget, 20 ms read hedging,
            against the degraded (shedding) gateway *)
    | Custom of Resilient.resilience * Gcperf_kvstore.Gateway.config

  val client : t -> Resilient.resilience
  (** The client-side knobs this level resolves to. *)

  val gateway : t -> Gcperf_kvstore.Gateway.config
  (** The server-admission config this level pairs with. *)

  val to_string : t -> string
end

type source = {
  pauses : (float * float) array;
      (** the server's stop-the-world intervals, seconds *)
  db_timeline : (float * int) array;
}
(** What a client session replays: the observable behaviour of one
    server run ({!Gcperf_sim.Gc_event.intervals} +
    [Server.db_size_timeline]). *)

val run :
  ?resilience:Resilience.t ->
  ?profile:Gcperf_fault.Profile.t ->
  ?telemetry:Gcperf_telemetry.Telemetry.t ->
  ?collector:string ->
  Client.workload ->
  source ->
  seed:int ->
  Resilient.summary
(** One client session against one server: the unified entry point.
    [resilience] defaults to {!Resilience.Off}, [profile] to
    {!Gcperf_fault.Profile.none} — with both defaulted this is the
    happy path expressed in the failure model's vocabulary. *)

val points :
  Client.workload -> source -> seed:int -> Client.point array
(** The happy-path latency trace ({!Client.run}): per-operation points
    with GC-correlation flags, as Figure 5 scatters them.  No faults, no
    resilience — the paper's §4.2 client. *)
