module Prng = Gcperf_util.Prng
module Vec = Gcperf_util.Vec
module Heapq = Gcperf_util.Heapq
module Injector = Gcperf_fault.Injector
module Gateway = Gcperf_kvstore.Gateway
module Telemetry = Gcperf_telemetry.Telemetry
module Histogram = Gcperf_telemetry.Histogram
module Span = Gcperf_telemetry.Span

type resilience = {
  timeout_ms : float;
  max_attempts : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  backoff_jitter : float;
  retry_budget_pct : float;
  hedge_ms : float;
}

let none =
  {
    timeout_ms = infinity;
    max_attempts = 1;
    backoff_base_ms = 0.0;
    backoff_cap_ms = 0.0;
    backoff_jitter = 0.0;
    retry_budget_pct = 0.0;
    hedge_ms = 0.0;
  }

let paper_defaults =
  {
    timeout_ms = 250.0;
    max_attempts = 4;
    backoff_base_ms = 50.0;
    backoff_cap_ms = 1000.0;
    backoff_jitter = 0.5;
    retry_budget_pct = 20.0;
    hedge_ms = 20.0;
  }

type summary = {
  profile : string;
  requests : int;
  ok : int;
  failed : int;
  attempts : int;
  retries : int;
  retry_amplification : float;
  goodput_ops_s : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  timeouts : int;
  sheds : int;
  fast_rejects : int;
  drops : int;
  errors : int;
  hedge_wins : int;
}

(* Per-request state.  [primary] holds a hedged read's first-attempt
   result while the hedge is in flight. *)
type req = {
  arrival_s : float;
  kind : Client.op_kind;
  mutable attempts : int;
  mutable done_ : bool;
  mutable ok : bool;
  mutable primary : primary_result;
}

and primary_result =
  | No_primary
  | Primary_ok of float  (* response completion time, seconds *)
  | Primary_failed of float * string  (* detection time, cause *)

type ev = Attempt of req * int | Hedge of req

(* One attempt either completes at an absolute time or is detected as
   failed at an absolute time with a cause. *)
type attempt_result = Success of float | Failed of float * string

type session = {
  w : Client.workload;
  r : resilience;
  inj : Injector.t;
  gw : Gateway.t;
  prng : Prng.t;
  telemetry : Telemetry.t;
  collector : string;
  heap : ev Heapq.t;
  latencies : Histogram.t;  (* successful requests, ms *)
  mutable attempts : int;
  mutable retries : int;
  mutable retry_budget : int;
  mutable ok : int;
  mutable failed : int;
  mutable timeouts : int;
  mutable drops : int;
  mutable errors : int;
  mutable hedge_wins : int;
}

let us s = int_of_float (s *. 1e6)

let span sess ~at_s ~dur_ms ~kind ~cause =
  if Telemetry.enabled sess.telemetry then
    Telemetry.record_span sess.telemetry
      {
        Span.collector = sess.collector;
        kind;
        cause;
        start_us = at_s *. 1e6;
        duration_us = dur_ms *. 1e3;
        phases = [];
        sub = [];
        young_before = 0;
        young_after = 0;
        old_before = 0;
        old_after = 0;
        promoted = 0;
      }

let kind_name = function Client.Read -> "read" | Client.Update -> "update"

(* Base service time: the same model as Client.run — reads step up with
   the database size, updates are flat log appends — with the same
   log-normal jitter. *)
let service_ms sess ~db_timeline (req : req) at_s =
  let base =
    match req.kind with
    | Client.Read ->
        let db = Client.db_bytes_at db_timeline at_s in
        sess.w.Client.read_base_ms
        +. (sess.w.Client.read_step_ms
            *. float_of_int (db / sess.w.Client.read_step_bytes))
    | Client.Update -> sess.w.Client.update_base_ms
  in
  if sess.w.Client.jitter_sigma <= 0.0 then base
  else
    base
    *. Prng.lognormal sess.prng
         ~mu:(-.(sess.w.Client.jitter_sigma *. sess.w.Client.jitter_sigma)
             /. 2.0)
         ~sigma:sess.w.Client.jitter_sigma

(* Issue one attempt at [t]: consult the injector, then the gateway,
   then apply the client-side timeout.  Failure times are when the
   CLIENT learns of the failure (immediately for errors and rejections,
   at the timeout for lost or too-slow responses). *)
let attempt sess ~db_timeline (req : req) t =
  sess.attempts <- sess.attempts + 1;
  req.attempts <- req.attempts + 1;
  Injector.advance_to sess.inj t;
  let fault = Injector.outcome sess.inj in
  let reject_cost_ms = 0.2 in
  match fault with
  | Injector.Error ->
      sess.errors <- sess.errors + 1;
      span sess ~at_s:t ~dur_ms:reject_cost_ms ~kind:(kind_name req.kind)
        ~cause:"error";
      Failed (t +. (reject_cost_ms /. 1e3), "error")
  | Injector.Pass | Injector.Delay _ | Injector.Drop -> (
      let service = service_ms sess ~db_timeline req t in
      match Gateway.offer sess.gw ~now_s:t ~service_ms:service with
      | Gateway.Shed ->
          span sess ~at_s:t ~dur_ms:reject_cost_ms ~kind:(kind_name req.kind)
            ~cause:"shed";
          Failed (t +. (reject_cost_ms /. 1e3), "shed")
      | Gateway.Fast_rejected ->
          span sess ~at_s:t ~dur_ms:reject_cost_ms ~kind:(kind_name req.kind)
            ~cause:"shed";
          Failed (t +. (reject_cost_ms /. 1e3), "fast-reject")
      | Gateway.Served { wait_ms = _; finish_s } -> (
          let extra_ms =
            match fault with Injector.Delay d -> d | _ -> 0.0
          in
          let resp_s = finish_s +. (extra_ms /. 1e3) in
          match fault with
          | Injector.Drop ->
              (* The server did the work; the response never arrives.
                 With a timeout the client notices; without one the
                 request is simply lost. *)
              sess.drops <- sess.drops + 1;
              if Float.is_finite sess.r.timeout_ms then begin
                sess.timeouts <- sess.timeouts + 1;
                span sess ~at_s:t ~dur_ms:sess.r.timeout_ms
                  ~kind:(kind_name req.kind) ~cause:"timeout";
                Failed (t +. (sess.r.timeout_ms /. 1e3), "timeout")
              end
              else begin
                span sess ~at_s:t ~dur_ms:0.0 ~kind:(kind_name req.kind)
                  ~cause:"drop";
                Failed (t, "drop")
              end
          | _ ->
              let lat_ms = (resp_s -. t) *. 1e3 in
              if
                Float.is_finite sess.r.timeout_ms
                && lat_ms > sess.r.timeout_ms
              then begin
                sess.timeouts <- sess.timeouts + 1;
                span sess ~at_s:t ~dur_ms:sess.r.timeout_ms
                  ~kind:(kind_name req.kind) ~cause:"timeout";
                Failed (t +. (sess.r.timeout_ms /. 1e3), "timeout")
              end
              else Success resp_s))

let finalize_success sess (req : req) ~complete_s ~hedge_won =
  req.done_ <- true;
  req.ok <- true;
  sess.ok <- sess.ok + 1;
  let lat_ms = (complete_s -. req.arrival_s) *. 1e3 in
  Histogram.record sess.latencies lat_ms;
  if hedge_won then begin
    sess.hedge_wins <- sess.hedge_wins + 1;
    span sess ~at_s:req.arrival_s ~dur_ms:lat_ms ~kind:(kind_name req.kind)
      ~cause:"hedge-win"
  end

let finalize_failure sess (req : req) = begin
  req.done_ <- true;
  req.ok <- false;
  sess.failed <- sess.failed + 1
end

(* Failure detected at [fail_s] after [used] attempts: retry if the
   policy, the per-request attempt cap and the global budget all allow
   it.  A ["drop"] cause means the client never detected the failure
   (no timeout), so there is nothing to react to. *)
let maybe_retry sess (req : req) ~used ~fail_s ~cause =
  if
    cause <> "drop"
    && used < sess.r.max_attempts
    && sess.retries < sess.retry_budget
  then begin
    sess.retries <- sess.retries + 1;
    let backoff_ms =
      Float.min sess.r.backoff_cap_ms
        (sess.r.backoff_base_ms *. float_of_int (1 lsl (used - 1)))
    in
    let backoff_ms =
      backoff_ms
      *. (1.0 +. (sess.r.backoff_jitter *. Prng.float sess.prng 1.0))
    in
    span sess ~at_s:fail_s ~dur_ms:backoff_ms ~kind:(kind_name req.kind)
      ~cause:"retry";
    Heapq.push sess.heap
      (us (fail_s +. (backoff_ms /. 1e3)))
      (Attempt (req, used + 1))
  end
  else finalize_failure sess req

let hedge_applies sess req =
  sess.r.hedge_ms > 0.0 && req.kind = Client.Read

let process sess ~db_timeline ev t =
  match ev with
  | Attempt (req, n) ->
      if not req.done_ then begin
        match attempt sess ~db_timeline req t with
        | Success c ->
            if n = 1 && hedge_applies sess req && (c -. t) *. 1e3 > sess.r.hedge_ms
            then begin
              (* Response is on its way but slow: race a hedge. *)
              req.primary <- Primary_ok c;
              Heapq.push sess.heap
                (us (t +. (sess.r.hedge_ms /. 1e3)))
                (Hedge req)
            end
            else finalize_success sess req ~complete_s:c ~hedge_won:false
        | Failed (f, cause) ->
            if
              n = 1 && hedge_applies sess req
              && (f -. t) *. 1e3 > sess.r.hedge_ms
            then begin
              (* The failure will only be detected after the hedge
                 fires (a timeout): let the hedge race the detection. *)
              req.primary <- Primary_failed (f, cause);
              Heapq.push sess.heap
                (us (t +. (sess.r.hedge_ms /. 1e3)))
                (Hedge req)
            end
            else maybe_retry sess req ~used:n ~fail_s:f ~cause
      end
  | Hedge req ->
      if not req.done_ then begin
        let hres = attempt sess ~db_timeline req t in
        match (req.primary, hres) with
        | Primary_ok c_p, Success c_h ->
            if c_h < c_p then
              finalize_success sess req ~complete_s:c_h ~hedge_won:true
            else finalize_success sess req ~complete_s:c_p ~hedge_won:false
        | Primary_ok c_p, Failed _ ->
            finalize_success sess req ~complete_s:c_p ~hedge_won:false
        | Primary_failed _, Success c_h ->
            finalize_success sess req ~complete_s:c_h ~hedge_won:true
        | Primary_failed (f_p, cause_p), Failed (f_h, cause_h) ->
            let f, cause =
              if f_h > f_p then (f_h, cause_h) else (f_p, cause_p)
            in
            (* Both the primary and the hedge burned an attempt. *)
            maybe_retry sess req ~used:2 ~fail_s:f ~cause
        | No_primary, _ ->
            (* A hedge is only ever scheduled after its primary result
               was stored. *)
            assert false
      end

let run w ~profile ~resilience ~gateway ?telemetry ?(collector = "server")
    ~pauses ~db_timeline ~seed () =
  let telemetry =
    match telemetry with Some t -> t | None -> Telemetry.disabled ()
  in
  let sess =
    {
      w;
      r = resilience;
      inj = Injector.create ~profile ~seed:(seed + 1) ~pauses;
      gw = Gateway.create gateway ~pauses;
      prng = Prng.create seed;
      telemetry;
      collector;
      heap = Heapq.create ();
      latencies = Histogram.create ();
      attempts = 0;
      retries = 0;
      retry_budget = 0;
      ok = 0;
      failed = 0;
      timeouts = 0;
      drops = 0;
      errors = 0;
      hedge_wins = 0;
    }
  in
  (* Arrivals: a Poisson process whose rate follows the injector's load
     multiplier — the fault schedule warps the arrival stream itself
     (retry storms from the rest of the client population). *)
  let reqs = Vec.create () in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    let m = Injector.load_multiplier sess.inj !t in
    t := !t +. Prng.exponential sess.prng (1.0 /. (w.Client.ops_per_s *. m));
    if !t < w.Client.duration_s then
      Vec.push reqs
        {
          arrival_s = !t;
          kind =
            (if Prng.chance sess.prng w.Client.read_frac then Client.Read
             else Client.Update);
          attempts = 0;
          done_ = false;
          ok = false;
          primary = No_primary;
        }
    else continue := false
  done;
  let requests = Vec.length reqs in
  sess.retry_budget <-
    int_of_float
      (resilience.retry_budget_pct /. 100.0 *. float_of_int requests);
  Vec.iter
    (fun req -> Heapq.push sess.heap (us req.arrival_s) (Attempt (req, 1)))
    reqs;
  let rec drain () =
    match Heapq.pop sess.heap with
    | None -> ()
    | Some (t_us, ev) ->
        process sess ~db_timeline ev (float_of_int t_us /. 1e6);
        drain ()
  in
  drain ();
  let count name n = Telemetry.incr telemetry name (float_of_int n) in
  count "faults.requests" requests;
  count "faults.attempts" sess.attempts;
  count "faults.retries" sess.retries;
  count "faults.timeouts" sess.timeouts;
  count "faults.sheds" (Gateway.sheds sess.gw);
  count "faults.fast_rejects" (Gateway.fast_rejects sess.gw);
  count "faults.hedge_wins" sess.hedge_wins;
  {
    profile = profile.Gcperf_fault.Profile.name;
    requests;
    ok = sess.ok;
    failed = sess.failed;
    attempts = sess.attempts;
    retries = sess.retries;
    retry_amplification =
      (if requests = 0 then 0.0
       else float_of_int sess.attempts /. float_of_int requests);
    goodput_ops_s =
      (if w.Client.duration_s <= 0.0 then 0.0
       else float_of_int sess.ok /. w.Client.duration_s);
    p50_ms = Histogram.percentile sess.latencies 50.0;
    p99_ms = Histogram.percentile sess.latencies 99.0;
    p999_ms = Histogram.percentile sess.latencies 99.9;
    max_ms = Histogram.max sess.latencies;
    timeouts = sess.timeouts;
    sheds = Gateway.sheds sess.gw;
    fast_rejects = Gateway.fast_rejects sess.gw;
    drops = sess.drops;
    errors = sess.errors;
    hedge_wins = sess.hedge_wins;
  }
