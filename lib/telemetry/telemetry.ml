module Vec = Gcperf_util.Vec

type t = {
  enabled : bool;
  spans : Span.t Vec.t;
  by_kind : (string, Histogram.t) Hashtbl.t;
  mutable kind_order : string list;  (* reverse first-seen order *)
  safepoint : Histogram.t;
  metrics : Metrics.t;
}

(* The process-wide default is read from every domain that creates a VM
   (experiment cells run under Gcperf_exec.Pool), so it is an atomic; it
   is only ever written from the main domain before a campaign starts. *)
let default = Atomic.make false
let set_default_enabled b = Atomic.set default b
let default_enabled () = Atomic.get default

let create ?enabled () =
  let enabled =
    match enabled with Some b -> b | None -> Atomic.get default
  in
  {
    enabled;
    spans = Vec.create ();
    by_kind = Hashtbl.create 8;
    kind_order = [];
    safepoint = Histogram.create ();
    metrics = Metrics.create ();
  }

(* Eager, not lazy: a racy [Lazy.force] from two domains raises
   [CamlinternalLazy.Undefined], and the disabled registry is cheap. *)
let disabled_instance = create ~enabled:false ()
let disabled () = disabled_instance

let enabled t = t.enabled

let record_span t (span : Span.t) =
  if t.enabled then begin
    Vec.push t.spans span;
    let hist =
      match Hashtbl.find_opt t.by_kind span.Span.kind with
      | Some h -> h
      | None ->
          let h = Histogram.create () in
          Hashtbl.add t.by_kind span.Span.kind h;
          t.kind_order <- span.Span.kind :: t.kind_order;
          h
    in
    Histogram.record hist span.Span.duration_us;
    let ttsp = Span.phase_us span Span.Safepoint in
    if ttsp > 0.0 then Histogram.record t.safepoint ttsp
  end

let incr t name by = if t.enabled then Metrics.incr t.metrics name by

let sample t name ~t_us v =
  if t.enabled then Metrics.sample t.metrics name ~t_us v

let spans t = Vec.to_list t.spans
let span_count t = Vec.length t.spans
let kinds t = List.rev t.kind_order
let pause_histogram t kind = Hashtbl.find_opt t.by_kind kind
let safepoint_histogram t = t.safepoint
let metrics t = t.metrics

let merge_into ~into src =
  Vec.iter (fun span -> Vec.push into.spans span) src.spans;
  List.iter
    (fun kind ->
      match Hashtbl.find_opt src.by_kind kind with
      | None -> ()
      | Some h ->
          let dst =
            match Hashtbl.find_opt into.by_kind kind with
            | Some dst -> dst
            | None ->
                let dst = Histogram.create () in
                Hashtbl.add into.by_kind kind dst;
                into.kind_order <- kind :: into.kind_order;
                dst
          in
          Histogram.merge_into ~into:dst h)
    (List.rev src.kind_order);
  Histogram.merge_into ~into:into.safepoint src.safepoint;
  Metrics.merge_into ~into:into.metrics src.metrics

let clear t =
  Vec.clear t.spans;
  Hashtbl.reset t.by_kind;
  t.kind_order <- [];
  Histogram.clear t.safepoint;
  Metrics.clear t.metrics
