let percentile_points = [ 50.0; 90.0; 99.0; 99.9 ]

let percentile_fields h =
  String.concat ","
    (List.map
       (fun p ->
         let label =
           if Float.is_integer p then Printf.sprintf "p%.0f" p
           else Printf.sprintf "p%g" p
         in
         Printf.sprintf "\"%s\":%.3f" label (Histogram.percentile h p))
       percentile_points)

let histogram_json ~label h =
  Printf.sprintf
    "{\"kind\":\"%s\",\"count\":%d,\"mean_us\":%.3f,%s,\"max_us\":%.3f}" label
    (Histogram.count h) (Histogram.mean h) (percentile_fields h)
    (Histogram.max h)

let summary_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"pauses\":[";
  List.iteri
    (fun i kind ->
      match Telemetry.pause_histogram t kind with
      | None -> ()
      | Some h ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (histogram_json ~label:kind h))
    (Telemetry.kinds t);
  Buffer.add_string buf "],\"safepoint\":";
  Buffer.add_string buf
    (histogram_json ~label:"time-to-safepoint" (Telemetry.safepoint_histogram t));
  Buffer.add_char buf '}';
  Buffer.contents buf

let trace_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun span ->
      Buffer.add_string buf (Span.to_json span);
      Buffer.add_char buf '\n')
    (Telemetry.spans t);
  List.iter
    (fun kind ->
      match Telemetry.pause_histogram t kind with
      | None -> ()
      | Some h ->
          let j = histogram_json ~label:kind h in
          Buffer.add_string buf
            (Printf.sprintf "{\"type\":\"summary\",%s}\n"
               (String.sub j 1 (String.length j - 2))))
    (Telemetry.kinds t);
  let sp = Telemetry.safepoint_histogram t in
  if not (Histogram.is_empty sp) then
    Buffer.add_string buf
      (Printf.sprintf "{\"type\":\"safepoint-summary\",%s}\n"
         (let j = histogram_json ~label:"time-to-safepoint" sp in
          String.sub j 1 (String.length j - 2)));
  Buffer.contents buf

let spans_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf Span.csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun span ->
      Buffer.add_string buf (Span.to_csv_row span);
      Buffer.add_char buf '\n')
    (Telemetry.spans t);
  Buffer.contents buf

let metrics_csv t =
  let m = Telemetry.metrics t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "series,t_us,value\n";
  List.iter
    (fun name ->
      Array.iter
        (fun (t_us, v) ->
          Buffer.add_string buf (Printf.sprintf "%s,%.3f,%.6g\n" name t_us v))
        (Metrics.series m name))
    (Metrics.series_names m);
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "%s,,%.6g\n" name (Metrics.counter m name)))
    (Metrics.counter_names m);
  Buffer.contents buf
