(* Log-linear bucketing, HdrHistogram style.

   Samples are scaled to integer units (1000 units per 1.0 of input, so
   microsecond inputs resolve to nanoseconds).  A unit value [v] lands in

   - bucket [v] when [v < 2 * sub_count] (exact, width-1 buckets);
   - otherwise bucket [(shift + 1) * sub_count + (v >> shift) - sub_count]
     where [shift = msb v - sub_bits]: the top [sub_bits + 1] bits select
     a linear sub-bucket inside the value's power-of-two octave.

   The two regions are continuous (at [v = 2 * sub_count - 1] both
   formulas agree) and the relative bucket width above the linear region
   is [1 / sub_count]. *)

let sub_bits = 7
let sub_count = 1 lsl sub_bits (* 128 linear sub-buckets per octave *)
let units_per_one = 1000.0

type t = {
  mutable counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { counts = Array.make 256 0; count = 0; sum = 0.0; min_v = 0.0; max_v = 0.0 }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- 0.0;
  t.max_v <- 0.0

let count t = t.count
let is_empty t = t.count = 0
let min t = t.min_v
let max t = t.max_v
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let[@inline] msb v =
  (* Position of the highest set bit (floor log2; 0 for v <= 1), by
     binary chop: six compares instead of one shift per bit, and [record]
     calls this once per sample. *)
  let v = ref v and acc = ref 0 in
  if !v >= 1 lsl 32 then begin v := !v lsr 32; acc := !acc + 32 end;
  if !v >= 1 lsl 16 then begin v := !v lsr 16; acc := !acc + 16 end;
  if !v >= 1 lsl 8 then begin v := !v lsr 8; acc := !acc + 8 end;
  if !v >= 1 lsl 4 then begin v := !v lsr 4; acc := !acc + 4 end;
  if !v >= 1 lsl 2 then begin v := !v lsr 2; acc := !acc + 2 end;
  if !v >= 2 then !acc + 1 else !acc

let[@inline] index_of_units v =
  if v < 2 * sub_count then v
  else begin
    let shift = msb v - sub_bits in
    ((shift + 1) * sub_count) + (v lsr shift) - sub_count
  end

(* Inclusive-exclusive unit bounds of bucket [idx]. *)
let bounds_of_index idx =
  if idx < 2 * sub_count then (idx, idx + 1)
  else begin
    let octave = (idx / sub_count) - 1 in
    let rem = idx mod sub_count in
    let lo = (sub_count + rem) lsl octave in
    (lo, lo + (1 lsl octave))
  end

let ensure t idx =
  let n = Array.length t.counts in
  if idx >= n then begin
    let n' = Stdlib.max (idx + 1) (2 * n) in
    let counts = Array.make n' 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let record t v =
  let v = if v < 0.0 then 0.0 else v in
  let units = int_of_float ((v *. units_per_one) +. 0.5) in
  let idx = index_of_units units in
  ensure t idx;
  t.counts.(idx) <- t.counts.(idx) + 1;
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  if t.count = 0 then 0.0
  else if p >= 100.0 then t.max_v
  else begin
    let target =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      Stdlib.max 1 r
    in
    let n = Array.length t.counts in
    let rec find idx acc =
      if idx >= n then t.max_v
      else begin
        let acc = acc + t.counts.(idx) in
        if acc >= target then begin
          let lo, hi = bounds_of_index idx in
          let mid = float_of_int (lo + hi) /. 2.0 /. units_per_one in
          Float.min t.max_v (Float.max t.min_v mid)
        end
        else find (idx + 1) acc
      end
    in
    find 0 0
  end

let merge_into ~into src =
  if src.count > 0 then begin
    ensure into (Array.length src.counts - 1);
    Array.iteri
      (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
      src.counts;
    if into.count = 0 then begin
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum
  end

let iter_buckets t f =
  Array.iteri
    (fun idx c ->
      if c > 0 then begin
        let lo, hi = bounds_of_index idx in
        f
          ~lo:(float_of_int lo /. units_per_one)
          ~hi:(float_of_int hi /. units_per_one)
          ~count:c
      end)
    t.counts
