(** Counters and sampled gauges.

    A tiny metrics registry: monotonic float counters ([incr]) and gauge
    time series ([sample], one [(t_us, value)] point per observation —
    the runtime samples heap occupancy and allocation/promotion rates
    once per mutator quantum).  Names are registered on first use and
    iterated in registration order, so exports are deterministic. *)

type t

val create : unit -> t

val incr : t -> string -> float -> unit
(** Add to a counter (created at 0 on first use). *)

val counter : t -> string -> float
(** Current counter value; 0 for an unknown name. *)

val counter_names : t -> string list
(** In registration order. *)

val sample : t -> string -> t_us:float -> float -> unit
(** Append one point to a gauge series (created on first use). *)

val series : t -> string -> (float * float) array
(** All samples of a gauge, in recording order; [|]] for unknown names. *)

val series_names : t -> string list
(** In registration order. *)

val merge_into : into:t -> t -> unit
(** Adds [src]'s counters into [into] and appends its gauge series;
    names new to [into] keep [src]'s registration order. *)

val clear : t -> unit
