(** Export sinks for a telemetry registry.

    Three output shapes: a JSON Lines trace (one [pause] record per
    span, then one [summary] record per pause kind plus a
    time-to-safepoint summary — the [gcperf trace] format), flat CSV
    (spans or gauge series), and a single JSON percentile summary. *)

val percentile_points : float list
(** The summary grid: 50, 90, 99, 99.9. *)

val summary_json : Telemetry.t -> string
(** One JSON object: per-pause-kind count/mean/p50/p90/p99/p99.9/max
    (µs) and the same for time-to-safepoint. *)

val trace_jsonl : Telemetry.t -> string
(** JSON Lines: every span in order ([type=pause]), then one
    [type=summary] line per pause kind and a [type=safepoint-summary]
    line.  Ends with a newline when non-empty. *)

val spans_csv : Telemetry.t -> string
(** Header plus one row per span; phase columns in {!Span.csv_header}
    order. *)

val metrics_csv : Telemetry.t -> string
(** Long format: [series,t_us,value] for every gauge sample, then
    [counter,,value] rows for every counter. *)
