(** Structured pause spans — the JFR-style trace event model.

    A span is one stop-the-world pause (or concurrent-cycle pause) with
    its cost broken down into the phases the cost model charged:
    time-to-safepoint, root scanning, card/remembered-set scanning,
    marking, copying, promotion, sweeping, compaction.  Spans carry the
    same heap-delta payload as {!Gcperf_sim.Gc_event.event} and add the
    per-phase breakdown and a cause tag, so a trace can be analysed the
    way a JFR recording or a [-Xlog:gc*] log would be. *)

type phase =
  | Safepoint  (** bringing all mutator threads to the safepoint *)
  | Root_scan
  | Card_scan  (** card-table / remembered-set scanning *)
  | Mark
  | Copy  (** survivor copying *)
  | Promote
  | Sweep
  | Compact
  | Region_overhead  (** G1 per-region constant work *)
  | Fixed  (** fixed dispatch overhead of any collection *)
  | Plan  (** relocation planning (sub-phase; see {!t.sub}) *)
  | Move  (** relocation column/slice moving (sub-phase) *)
  | Remap  (** pauseless remap flip: healing leftover forwarded refs *)
  | Fold  (** journaled-RC flip: applying folded journal deltas *)

val phase_to_string : phase -> string

val all_phases : phase list
(** Every phase, in CSV column order ({!Plan}/{!Move} excluded: they are
    sub-phase attributions, not charged phases). *)

type t = {
  collector : string;
  kind : string;  (** pause kind, [Gc_event.pause_kind_to_string] form *)
  cause : string;  (** "allocation failure", "system.gc", ... *)
  start_us : float;
  duration_us : float;
  phases : (phase * float) list;  (** phase durations in µs, charge order *)
  sub : (phase * float) list;
      (** sub-phase attributions ({!Plan}/{!Move} splits of relocation
          phases).  Informational only: sub-costs re-slice time already
          charged to [phases], so they are {e not} part of the
          [duration_us] = sum-of-phases invariant. *)
  young_before : int;
  young_after : int;
  old_before : int;
  old_after : int;
  promoted : int;
}

val phase_us : t -> phase -> float
(** Duration charged to one phase; 0 when the span has no such phase. *)

val sub_us : t -> phase -> float
(** Duration attributed to one sub-phase; 0 when absent. *)

val to_json : t -> string
(** One-line JSON object (a JSON Lines record). *)

val csv_header : string

val to_csv_row : t -> string
