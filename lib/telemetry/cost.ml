(* Cost extraction for the LBO distillation methodology (DESIGN.md §18).

   The runtime accounts every microsecond the collector adds on top of
   the raw mutator timeline into four counters (registered here so the
   names cannot drift between the producer in Vm.step and the consumers
   in lib/distill):

     cost.mutator_raw_us   Σ dt over all quanta — the recorded mutator
                           timeline with every collector cost struck out
     cost.alloc_tax_us     allocation-path overhead (TLAB refills or the
                           serialised CAS bump) — charged to the ideal
                           baseline too: an ideal GC still has to hand
                           out memory
     cost.barrier_tax_us   mutator tax: barrier/journal/backpressure
                           dilation charged on quanta even when no GC
                           worker is running
     cost.steal_tax_us     core-stealing dilation from concurrent GC
                           workers

   Stop-the-world time is not re-counted here: record_pause already
   maintains gc.pause_us_total and the per-phase Span breakdowns; this
   module only reads them back out. *)

let mutator_raw_us = "cost.mutator_raw_us"
let alloc_tax_us = "cost.alloc_tax_us"
let barrier_tax_us = "cost.barrier_tax_us"
let steal_tax_us = "cost.steal_tax_us"

type taxes = {
  raw_us : float;
  alloc_us : float;
  barrier_us : float;
  steal_us : float;
}

let taxes t =
  let m = Telemetry.metrics t in
  {
    raw_us = Metrics.counter m mutator_raw_us;
    alloc_us = Metrics.counter m alloc_tax_us;
    barrier_us = Metrics.counter m barrier_tax_us;
    steal_us = Metrics.counter m steal_tax_us;
  }

let stw_total_us t = Metrics.counter (Telemetry.metrics t) "gc.pause_us_total"

let stw_phase_us t =
  let spans = Telemetry.spans t in
  List.filter_map
    (fun p ->
      let total =
        List.fold_left (fun acc s -> acc +. Span.phase_us s p) 0.0 spans
      in
      if total > 0.0 then Some (p, total) else None)
    Span.all_phases
