type phase =
  | Safepoint
  | Root_scan
  | Card_scan
  | Mark
  | Copy
  | Promote
  | Sweep
  | Compact
  | Region_overhead
  | Fixed
  | Plan
  | Move
  | Remap
  | Fold

let phase_to_string = function
  | Safepoint -> "safepoint"
  | Root_scan -> "root-scan"
  | Card_scan -> "card-scan"
  | Mark -> "mark"
  | Copy -> "copy"
  | Promote -> "promote"
  | Sweep -> "sweep"
  | Compact -> "compact"
  | Region_overhead -> "region-overhead"
  | Fixed -> "fixed"
  | Plan -> "plan"
  | Move -> "move"
  | Remap -> "remap"
  | Fold -> "fold"

(* Remap/Fold (pauseless flips) are appended after Fixed so the existing
   per-phase CSV columns keep their positions. *)
let all_phases =
  [
    Safepoint; Root_scan; Card_scan; Mark; Copy; Promote; Sweep; Compact;
    Region_overhead; Fixed; Remap; Fold;
  ]

type t = {
  collector : string;
  kind : string;
  cause : string;
  start_us : float;
  duration_us : float;
  phases : (phase * float) list;
  sub : (phase * float) list;
  young_before : int;
  young_after : int;
  old_before : int;
  old_after : int;
  promoted : int;
}

let phase_us t p =
  List.fold_left
    (fun acc (q, us) -> if q = p then acc +. us else acc)
    0.0 t.phases

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\":\"pause\",\"collector\":\"%s\",\"kind\":\"%s\",\"cause\":\"%s\",\"start_us\":%.3f,\"duration_us\":%.3f,\"phases\":{"
       (json_escape t.collector) (json_escape t.kind) (json_escape t.cause)
       t.start_us t.duration_us);
  List.iteri
    (fun i (p, us) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%.3f" (phase_to_string p) us))
    t.phases;
  Buffer.add_char buf '}';
  if t.sub <> [] then begin
    Buffer.add_string buf ",\"sub\":{";
    List.iteri
      (fun i (p, us) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":%.3f" (phase_to_string p) us))
      t.sub;
    Buffer.add_char buf '}'
  end;
  Buffer.add_string buf
    (Printf.sprintf
       ",\"young_before\":%d,\"young_after\":%d,\"old_before\":%d,\"old_after\":%d,\"promoted\":%d}"
       t.young_before t.young_after t.old_before t.old_after t.promoted);
  Buffer.contents buf

let sub_us t p =
  List.fold_left (fun acc (q, us) -> if q = p then acc +. us else acc) 0.0 t.sub

let csv_header =
  "collector,kind,cause,start_us,duration_us,"
  ^ String.concat ","
      (List.map (fun p -> phase_to_string p ^ "_us") all_phases)
  ^ ",plan_us,move_us,young_before,young_after,old_before,old_after,promoted"

let to_csv_row t =
  let cause =
    if String.contains t.cause ',' then "\"" ^ t.cause ^ "\"" else t.cause
  in
  Printf.sprintf "%s,%s,%s,%.3f,%.3f,%s,%.3f,%.3f,%d,%d,%d,%d,%d" t.collector
    t.kind cause t.start_us t.duration_us
    (String.concat ","
       (List.map (fun p -> Printf.sprintf "%.3f" (phase_us t p)) all_phases))
    (sub_us t Plan) (sub_us t Move) t.young_before t.young_after t.old_before
    t.old_after t.promoted
