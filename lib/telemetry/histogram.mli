(** HDR-style log-bucketed histogram.

    Records non-negative samples (conventionally durations in
    microseconds) into log-linear buckets: values are quantised to
    integer units (1/1000 of the input unit), bucketed exactly below
    [2 * sub_count] units and with [sub_count] linear sub-buckets per
    power of two above it, giving a relative quantisation error bounded
    by [1 / sub_count] (< 0.8%) over the whole range.

    [min], [max], [count] and [sum] (hence [mean]) are tracked exactly;
    percentiles are exact up to the bucket resolution.  Two histograms
    with the same bucket layout (there is only one layout) can be merged
    bucket-wise, so per-shard recordings aggregate without re-reading
    samples. *)

type t

val create : unit -> t

val record : t -> float -> unit
(** Record one sample.  Negative samples are clamped to 0. *)

val count : t -> int

val is_empty : t -> bool

val min : t -> float
(** Smallest recorded sample, exactly.  0 when empty. *)

val max : t -> float
(** Largest recorded sample, exactly.  0 when empty. *)

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in \[0, 100\]: the nearest-rank quantile,
    resolved to the midpoint of its bucket and clamped to
    [\[min t, max t\]] (so [percentile t 100. = max t] exactly).
    0 when empty.  @raise Invalid_argument if [p] is out of range. *)

val merge_into : into:t -> t -> unit
(** Add every bucket (and the exact count/sum/min/max) of the second
    histogram into [into].  The source is unchanged. *)

val iter_buckets : t -> (lo:float -> hi:float -> count:int -> unit) -> unit
(** Iterate the non-empty buckets in increasing value order.  [lo]
    (inclusive) and [hi] (exclusive) are the bucket bounds in the input
    unit. *)

val clear : t -> unit
