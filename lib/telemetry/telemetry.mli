(** The in-memory telemetry registry.

    One [Telemetry.t] rides along with each simulated VM: collectors
    record a {!Span.t} per pause (routed through
    [Gcperf_gc.Gc_ctx.record_pause]), the runtime samples gauges once
    per quantum, and consumers — experiments, the CLI [trace]
    subcommand, the kvstore/YCSB analysis — read spans, per-pause-kind
    duration histograms, the time-to-safepoint histogram and the metric
    series back out.

    {b Non-perturbation invariant}: telemetry only observes.  Recording
    never advances the virtual clock, draws from a PRNG or touches the
    heap model, so a run with telemetry enabled is byte-identical (in
    simulated time, GC events and artifacts) to the same run with it
    disabled.  A disabled registry turns every record into a cheap
    no-op, which is what keeps the young-GC hot path within the <5%
    overhead budget.

    [default_enabled] is the process-wide default used when a VM is
    created without an explicit registry — the CLI [trace] subcommand
    flips it on; experiments leave it off. *)

type t

val set_default_enabled : bool -> unit

val default_enabled : unit -> bool
(** Initially [false]. *)

val create : ?enabled:bool -> unit -> t
(** [enabled] defaults to {!default_enabled}. *)

val disabled : unit -> t
(** A registry that records nothing (shared constant). *)

val enabled : t -> bool

val record_span : t -> Span.t -> unit
(** Appends the span, folds its duration into the per-kind histogram and
    its safepoint phase into the TTSP histogram.  No-op when disabled. *)

val incr : t -> string -> float -> unit
(** Counter bump (no-op when disabled). *)

val sample : t -> string -> t_us:float -> float -> unit
(** Gauge sample (no-op when disabled). *)

val spans : t -> Span.t list
(** Chronological. *)

val span_count : t -> int

val kinds : t -> string list
(** Pause kinds seen so far, in first-seen order. *)

val pause_histogram : t -> string -> Histogram.t option
(** Duration histogram (µs) for one pause kind. *)

val safepoint_histogram : t -> Histogram.t
(** Time-to-safepoint across all pauses, µs. *)

val metrics : t -> Metrics.t

val merge_into : into:t -> t -> unit
(** Folds one registry into another: spans are appended in [src] order,
    per-kind and safepoint histograms are merged bucket-wise, counters
    are added and gauge series concatenated.  New pause kinds and metric
    names keep [src]'s first-seen order.  Merging happens regardless of
    either registry's [enabled] flag — it is an explicit operation used
    to combine the per-worker sinks of a parallel campaign in
    deterministic cell order (DESIGN.md §9). *)

val clear : t -> unit
