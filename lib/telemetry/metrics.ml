module Vec = Gcperf_util.Vec

type t = {
  counters : (string, float ref) Hashtbl.t;
  mutable counter_order : string list;  (* reverse registration order *)
  gauges : (string, (float * float) Vec.t) Hashtbl.t;
  mutable gauge_order : string list;
}

let create () =
  {
    counters = Hashtbl.create 16;
    counter_order = [];
    gauges = Hashtbl.create 16;
    gauge_order = [];
  }

let clear t =
  Hashtbl.reset t.counters;
  t.counter_order <- [];
  Hashtbl.reset t.gauges;
  t.gauge_order <- []

let incr t name by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r +. by
  | None ->
      Hashtbl.add t.counters name (ref by);
      t.counter_order <- name :: t.counter_order

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0.0

let counter_names t = List.rev t.counter_order

let sample t name ~t_us v =
  let series =
    match Hashtbl.find_opt t.gauges name with
    | Some s -> s
    | None ->
        let s = Vec.create () in
        Hashtbl.add t.gauges name s;
        t.gauge_order <- name :: t.gauge_order;
        s
  in
  Vec.push series (t_us, v)

let series t name =
  match Hashtbl.find_opt t.gauges name with
  | Some s -> Vec.to_array s
  | None -> [||]

let series_names t = List.rev t.gauge_order

let merge_into ~into src =
  List.iter
    (fun name -> incr into name (counter src name))
    (counter_names src);
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.gauges name with
      | None -> ()
      | Some s ->
          let dst =
            match Hashtbl.find_opt into.gauges name with
            | Some dst -> dst
            | None ->
                let dst = Vec.create () in
                Hashtbl.add into.gauges name dst;
                into.gauge_order <- name :: into.gauge_order;
                dst
          in
          Vec.iter (fun p -> Vec.push dst p) s)
    (series_names src)
