(** Cost extraction for the LBO distillation methodology.

    The runtime splits everything a collector adds on top of the raw
    mutator timeline into four counters; this module owns their names
    (producer: [Vm.step]; consumer: [lib/distill]) and reads them — plus
    the stop-the-world totals recorded by [Gc_ctx.record_pause] — back
    out of a telemetry registry.  See DESIGN.md §18. *)

val mutator_raw_us : string
(** Counter: Σ dt over all mutator quanta — the recorded mutator
    timeline with every collector cost struck out. *)

val alloc_tax_us : string
(** Counter: allocation-path overhead (TLAB refill / serialised bump).
    Retained in the ideal-GC baseline: an ideal collector still hands
    out memory. *)

val barrier_tax_us : string
(** Counter: mutator-tax dilation (read/SATB barriers, journal appends,
    backpressure) charged on quanta even when no GC worker runs. *)

val steal_tax_us : string
(** Counter: core-stealing dilation from concurrent GC workers. *)

type taxes = {
  raw_us : float;
  alloc_us : float;
  barrier_us : float;
  steal_us : float;
}

val taxes : Telemetry.t -> taxes
(** Current values of the four counters (0 where never incremented). *)

val stw_total_us : Telemetry.t -> float
(** Total stop-the-world pause time ([gc.pause_us_total]). *)

val stw_phase_us : Telemetry.t -> (Span.phase * float) list
(** Stop-the-world time per phase, summed over all recorded spans, in
    {!Span.all_phases} order; phases never charged are omitted. *)
