(** The DaCapo-2009-like benchmark suite.

    Fourteen synthetic mutators whose thread structure follows the
    paper's §2.1 description verbatim (which benchmarks are externally /
    internally multi-threaded) and whose allocation profiles are
    calibrated so the study's observations reproduce: the 2009-era
    memory footprints are small relative to a 16 GB server heap, three
    benchmarks crash, and the rest split into a stable subset (Table 2)
    and an unstable remainder. *)

type bench = {
  profile : Gcperf_workload.Profile.t;
  crashes : bool;
      (** eclipse, tradebeans and tradesoap crashed on every test in the
          paper; we preserve that behaviour *)
  description : string;
}

val all : bench list
(** All 14 benchmarks, alphabetical. *)

val find : string -> bench option

val names : string list

val stable_subset : bench list
(** The paper's Table 2 subset: h2, tomcat, xalan, jython, pmd, luindex,
    batik. *)

val stable_names : string list
