(** DaCapo-like execution harness.

    Runs a benchmark for a number of iterations against a given collector
    configuration.  As in DaCapo, all iterations but the last are warm-up
    rounds, the last is the measured run, and a [System.gc()] can be
    forced between iterations (the paper's test case (1)) or disabled
    (case (2)). *)

type result = {
  bench_name : string;
  gc_name : string;
  heap_bytes : int;
  young_bytes : int;
  tlab : bool;
  system_gc : bool;
  crashed : bool;  (** the benchmark is one of the three known crashers *)
  oom : bool;  (** the run died with an out-of-memory condition *)
  iterations : Gcperf_workload.Mutator.iteration_stats array;
  total_s : float;  (** sum of all iteration durations *)
  final_s : float;  (** duration of the measured (last) iteration *)
  events : Gcperf_sim.Gc_event.event list;  (** full GC log of the run *)
}

val run :
  ?telemetry:Gcperf_telemetry.Telemetry.t ->
  ?seed:int ->
  ?iterations:int ->
  Gcperf_machine.Machine.t ->
  Suite.bench ->
  gc:Gcperf_gc.Gc_config.t ->
  system_gc:bool ->
  unit ->
  result
(** Defaults: seed 42, 10 iterations (the study's configuration).
    [telemetry] is threaded to {!Gcperf_runtime.Vm.create}; observation
    only — passing a registry never changes the simulated run. *)

val best_of : result list -> result option
(** The run with the smallest total execution time, ignoring crashed and
    OOM runs (used by the paper's GC ranking). *)
