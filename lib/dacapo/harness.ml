module Vm = Gcperf_runtime.Vm
module Mutator = Gcperf_workload.Mutator
module Gc_config = Gcperf_gc.Gc_config
module Gc_event = Gcperf_sim.Gc_event

type result = {
  bench_name : string;
  gc_name : string;
  heap_bytes : int;
  young_bytes : int;
  tlab : bool;
  system_gc : bool;
  crashed : bool;
  oom : bool;
  iterations : Mutator.iteration_stats array;
  total_s : float;
  final_s : float;
  events : Gc_event.event list;
}

let base_result (bench : Suite.bench) (gc : Gc_config.t) ~system_gc =
  {
    bench_name = bench.Suite.profile.Gcperf_workload.Profile.name;
    gc_name = Gc_config.kind_to_string gc.Gc_config.kind;
    heap_bytes = gc.Gc_config.heap_bytes;
    young_bytes = gc.Gc_config.young_bytes;
    tlab = gc.Gc_config.tlab;
    system_gc;
    crashed = false;
    oom = false;
    iterations = [||];
    total_s = 0.0;
    final_s = 0.0;
    events = [];
  }

let run ?telemetry ?(seed = 42) ?(iterations = 10) machine
    (bench : Suite.bench) ~gc ~system_gc () =
  let base = base_result bench gc ~system_gc in
  if bench.Suite.crashes then { base with crashed = true }
  else begin
    let vm = Vm.create ?telemetry machine gc ~seed in
    match Mutator.create vm bench.Suite.profile ~seed:(seed * 7919 + 13) with
    | exception Gcperf_gc.Gc_ctx.Out_of_memory _ -> { base with oom = true }
    | mutator -> (
        let stats = ref [] in
        let start_s = Vm.now_s vm in
        match
          for i = 1 to iterations do
            let s = Mutator.run_iteration mutator in
            stats := s :: !stats;
            (* DaCapo forces a full collection between iterations. *)
            if system_gc && i < iterations then Vm.system_gc vm
          done
        with
        | exception Gcperf_gc.Gc_ctx.Out_of_memory _ ->
            let arr = Array.of_list (List.rev !stats) in
            { base with oom = true; iterations = arr }
        | () ->
            let arr = Array.of_list (List.rev !stats) in
            (* Total execution time spans the whole run, including the
               forced collections between iterations. *)
            let total = Vm.now_s vm -. start_s in
            let final =
              if Array.length arr = 0 then 0.0
              else arr.(Array.length arr - 1).Mutator.duration_s
            in
            {
              base with
              iterations = arr;
              total_s = total;
              final_s = final;
              events = Gc_event.events (Vm.events vm);
            })
  end

let best_of results =
  let usable = List.filter (fun r -> (not r.crashed) && not r.oom) results in
  match usable with
  | [] -> None
  | hd :: tl ->
      Some
        (List.fold_left
           (fun best r -> if r.total_s < best.total_s then r else best)
           hd tl)
