module P = Gcperf_workload.Profile

type bench = { profile : P.t; crashes : bool; description : string }

let mb n = n * 1024 * 1024
let mbf x = int_of_float (x *. 1024.0 *. 1024.0)
let kb n = n * 1024

let lifetime ~short ~short_mb ~medium ~medium_mb ~iter ~perm =
  {
    P.short_frac = short;
    short_mean_bytes = float_of_int (mbf short_mb);
    medium_frac = medium;
    medium_mean_bytes = float_of_int (mbf medium_mb);
    iteration_frac = iter;
    permanent_frac = perm;
  }

let make ~name ~threading ~alloc_mb ~cpu_s ~mean_kb ~life ~live_mb
    ?(locality = 0.3) ?(update = 0.015) ~noise ?(sawtooth = 0) ?(crashes = false)
    ~description () =
  let profile =
    {
      P.name;
      threading;
      iteration_alloc_bytes = mb alloc_mb;
      iteration_cpu_s = cpu_s;
      size = { P.mean_bytes = kb mean_kb; sigma = 0.6 };
      lifetime = life;
      startup_live_bytes = mb live_mb;
      ref_locality = locality;
      update_store_prob = update;
      phase_noise = noise;
      sawtooth;
    }
  in
  (match P.validate profile with
  | Ok () -> ()
  | Error e -> invalid_arg ("Suite.make: " ^ e));
  { profile; crashes; description }

(* Thread structure follows the paper's §2.1 description; allocation
   volumes and live sets reflect the 2009-era footprints that left a
   16 GB baseline heap mostly idle. *)
let all =
  [
    make ~name:"avrora" ~threading:(P.Fixed 6) ~alloc_mb:350 ~cpu_s:5.5
      ~mean_kb:64
      ~life:
        (lifetime ~short:0.85 ~short_mb:8.0 ~medium:0.08 ~medium_mb:150.0
           ~iter:0.05 ~perm:0.002)
      ~live_mb:60 ~noise:0.16
      ~description:
        "single external thread, internally multi-threaded; iteration \
         times vary too much for the stable subset"
      ();
    make ~name:"batik" ~threading:P.Single ~alloc_mb:250 ~cpu_s:1.6 ~mean_kb:96
      ~life:
        (lifetime ~short:0.80 ~short_mb:10.0 ~medium:0.10 ~medium_mb:120.0
           ~iter:0.08 ~perm:0.004)
      ~live_mb:90 ~noise:0.10
      ~description:
        "mostly single-threaded; small footprint (no collections at the \
         baseline heap without a system GC); noisy final iterations"
      ();
    make ~name:"eclipse" ~threading:(P.Fixed 4) ~alloc_mb:700 ~cpu_s:6.0
      ~mean_kb:128
      ~life:
        (lifetime ~short:0.75 ~short_mb:12.0 ~medium:0.12 ~medium_mb:250.0
           ~iter:0.08 ~perm:0.005)
      ~live_mb:160 ~noise:0.08 ~crashes:true
      ~description:"crashed on every test in the study" ();
    make ~name:"fop" ~threading:P.Single ~alloc_mb:120 ~cpu_s:0.7 ~mean_kb:64
      ~life:
        (lifetime ~short:0.82 ~short_mb:8.0 ~medium:0.08 ~medium_mb:80.0
           ~iter:0.06 ~perm:0.003)
      ~live_mb:40 ~noise:0.09
      ~description:"single-threaded; excluded from the stable subset" ();
    make ~name:"h2" ~threading:P.Per_hw_thread ~alloc_mb:1100 ~cpu_s:17.5
      ~mean_kb:128
      ~life:
        (lifetime ~short:0.55 ~short_mb:15.0 ~medium:0.08 ~medium_mb:450.0
           ~iter:0.06 ~perm:0.001)
      ~live_mb:45 ~locality:0.35 ~update:0.01 ~noise:0.014 ~sawtooth:4
      ~description:
        "in-memory database, one client thread per hardware thread; \
         transactional sawtooth working set (Table 3 subject)"
      ();
    make ~name:"jython" ~threading:P.Per_hw_thread ~alloc_mb:800 ~cpu_s:2.6
      ~mean_kb:96
      ~life:
        (lifetime ~short:0.82 ~short_mb:10.0 ~medium:0.08 ~medium_mb:200.0
           ~iter:0.06 ~perm:0.003)
      ~live_mb:70 ~noise:0.045
      ~description:"python interpreter, one internal thread per hw thread" ();
    make ~name:"luindex" ~threading:(P.Fixed 3) ~alloc_mb:300 ~cpu_s:1.9
      ~mean_kb:96
      ~life:
        (lifetime ~short:0.80 ~short_mb:10.0 ~medium:0.10 ~medium_mb:150.0
           ~iter:0.06 ~perm:0.005)
      ~live_mb:55 ~noise:0.035
      ~description:"indexer with a few helper threads of limited concurrency"
      ();
    make ~name:"lusearch" ~threading:P.Per_hw_thread ~alloc_mb:2200 ~cpu_s:1.6
      ~mean_kb:64
      ~life:
        (lifetime ~short:0.92 ~short_mb:6.0 ~medium:0.04 ~medium_mb:80.0
           ~iter:0.02 ~perm:0.001)
      ~live_mb:35 ~noise:0.11
      ~description:
        "search, one client thread per hardware thread; allocation-heavy \
         and too noisy for the stable subset"
      ();
    make ~name:"pmd" ~threading:P.Per_hw_thread ~alloc_mb:600 ~cpu_s:2.3
      ~mean_kb:96
      ~life:
        (lifetime ~short:0.78 ~short_mb:10.0 ~medium:0.12 ~medium_mb:180.0
           ~iter:0.07 ~perm:0.003)
      ~live_mb:85 ~noise:0.011
      ~description:"source analyser, one worker thread per hardware thread" ();
    make ~name:"sunflow" ~threading:P.Per_hw_thread ~alloc_mb:1600 ~cpu_s:2.4
      ~mean_kb:64
      ~life:
        (lifetime ~short:0.90 ~short_mb:8.0 ~medium:0.05 ~medium_mb:100.0
           ~iter:0.03 ~perm:0.001)
      ~live_mb:30 ~noise:0.09
      ~description:"raytracer, render thread per hardware thread; unstable" ();
    make ~name:"tomcat" ~threading:P.Per_hw_thread ~alloc_mb:900 ~cpu_s:2.9
      ~mean_kb:128
      ~life:
        (lifetime ~short:0.75 ~short_mb:12.0 ~medium:0.12 ~medium_mb:250.0
           ~iter:0.09 ~perm:0.004)
      ~live_mb:110 ~noise:0.017 ~sawtooth:2
      ~description:"web server, one client thread per hardware thread" ();
    make ~name:"tradebeans" ~threading:P.Per_hw_thread ~alloc_mb:1200
      ~cpu_s:5.0 ~mean_kb:128
      ~life:
        (lifetime ~short:0.70 ~short_mb:12.0 ~medium:0.15 ~medium_mb:400.0
           ~iter:0.10 ~perm:0.004)
      ~live_mb:200 ~noise:0.06 ~crashes:true
      ~description:"crashed on every test in the study" ();
    make ~name:"tradesoap" ~threading:P.Per_hw_thread ~alloc_mb:1400
      ~cpu_s:5.5 ~mean_kb:128
      ~life:
        (lifetime ~short:0.70 ~short_mb:12.0 ~medium:0.15 ~medium_mb:400.0
           ~iter:0.10 ~perm:0.004)
      ~live_mb:220 ~noise:0.06 ~crashes:true
      ~description:"crashed on every test in the study" ();
    make ~name:"xalan" ~threading:P.Per_hw_thread ~alloc_mb:3600 ~cpu_s:1.5
      ~mean_kb:128
      ~life:
        (lifetime ~short:0.85 ~short_mb:12.0 ~medium:0.07 ~medium_mb:300.0
           ~iter:0.05 ~perm:0.002)
      ~live_mb:65 ~update:0.02 ~noise:0.05
      ~description:
        "XSLT processor, one client thread per hardware thread; the \
         paper's pause-time example (Figures 1 and 2)"
      ();
  ]

let find name =
  List.find_opt (fun b -> b.profile.P.name = name) all

let names = List.map (fun b -> b.profile.P.name) all

let stable_names = [ "h2"; "tomcat"; "xalan"; "jython"; "pmd"; "luindex"; "batik" ]

let stable_subset =
  List.filter (fun b -> List.mem b.profile.P.name stable_names) all
