let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let rsd xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. m

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let sum = Array.fold_left ( +. ) 0.0

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

type histogram = {
  lo : float;
  width : float;
  counts : int array;
  total : int;
  overflow : int;
  underflow : int;
}

let histogram ?(buckets = 20) ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let width = (hi -. lo) /. float_of_int buckets in
  let counts = Array.make buckets 0 in
  let overflow = ref 0 and underflow = ref 0 in
  Array.iter
    (fun x ->
      if x < lo then incr underflow
      else if x >= hi then incr overflow
      else begin
        let b = int_of_float ((x -. lo) /. width) in
        let b = min b (buckets - 1) in
        counts.(b) <- counts.(b) + 1
      end)
    xs;
  {
    lo;
    width;
    counts;
    total = Array.length xs;
    overflow = !overflow;
    underflow = !underflow;
  }

type band = { label : string; pct_requests : float; pct_gc : float }

type latency_report = {
  avg_ms : float;
  max_ms : float;
  min_ms : float;
  around_avg : band;
  above : band list;
}

let band_of ~label points pred =
  let total = Array.length points in
  let in_band = ref 0 and gc = ref 0 in
  Array.iter
    (fun (lat, is_gc) ->
      if pred lat then begin
        incr in_band;
        if is_gc then incr gc
      end)
    points;
  let pct_requests =
    if total = 0 then 0.0 else 100.0 *. float_of_int !in_band /. float_of_int total
  in
  let pct_gc =
    if !in_band = 0 then 0.0 else 100.0 *. float_of_int !gc /. float_of_int !in_band
  in
  { label; pct_requests; pct_gc }

let latency_report points =
  if Array.length points = 0 then invalid_arg "Stats.latency_report: empty";
  let lats = Array.map fst points in
  let avg = mean lats in
  let lo, hi = min_max lats in
  let around_avg =
    band_of ~label:"0.5x-1.5x AVG" points (fun l ->
        l >= 0.5 *. avg && l <= 1.5 *. avg)
  in
  (* Generate >2^n x AVG bands until the request share vanishes, as the
     paper does ("until the percentage of points became too close to 0"). *)
  let rec bands n acc =
    let mult = Float.of_int (1 lsl n) in
    let b =
      band_of
        ~label:(Printf.sprintf ">%.0fx AVG" mult)
        points
        (fun l -> l > mult *. avg)
    in
    if b.pct_requests < 0.001 || n > 10 then List.rev acc
    else bands (n + 1) (b :: acc)
  in
  {
    avg_ms = avg;
    max_ms = hi;
    min_ms = lo;
    around_avg;
    above = bands 1 [];
  }

let top_k_by f k xs =
  if k <= 0 then []
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n <= k then xs
    else begin
      let keyed = Array.mapi (fun i x -> (f x, i, x)) arr in
      Array.sort
        (fun (a, i, _) (b, j, _) ->
          match compare b a with 0 -> compare i j | c -> c)
        keyed;
      let kept = Array.sub keyed 0 k in
      Array.sort (fun (_, i, _) (_, j, _) -> compare i j) kept;
      Array.to_list (Array.map (fun (_, _, x) -> x) kept)
    end
  end

let cumsum xs =
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc)
    xs

let describe xs =
  let n = Array.length xs in
  if n = 0 then "n=0"
  else begin
    let lo, hi = min_max xs in
    Printf.sprintf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" n
      (mean xs) (stddev xs) lo (median xs) hi
  end
