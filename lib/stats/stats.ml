let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let rsd xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. m

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let sum = Array.fold_left ( +. ) 0.0

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

type histogram = {
  lo : float;
  width : float;
  counts : int array;
  total : int;
  overflow : int;
  underflow : int;
}

let histogram ?(buckets = 20) ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let width = (hi -. lo) /. float_of_int buckets in
  let counts = Array.make buckets 0 in
  let overflow = ref 0 and underflow = ref 0 in
  Array.iter
    (fun x ->
      if x < lo then incr underflow
      else if x >= hi then incr overflow
      else begin
        let b = int_of_float ((x -. lo) /. width) in
        let b = min b (buckets - 1) in
        counts.(b) <- counts.(b) + 1
      end)
    xs;
  {
    lo;
    width;
    counts;
    total = Array.length xs;
    overflow = !overflow;
    underflow = !underflow;
  }

type band = { label : string; pct_requests : float; pct_gc : float }

type latency_report = {
  avg_ms : float;
  max_ms : float;
  min_ms : float;
  around_avg : band;
  above : band list;
}

(* One moments pass plus one band pass, instead of a fresh O(n) scan per
   band (the >2^n bands alone used to cost 4-6 scans of a 100k-point
   array).  Same floats as the scan-per-band version: the average keeps
   the left-to-right summation order, and each band's membership test is
   the identical comparison, just evaluated once per point against the
   largest multiplier it clears. *)
let max_above_bands = 11 (* bands n=1..10 can be emitted; n=11 never is *)

let latency_report points =
  if Array.length points = 0 then invalid_arg "Stats.latency_report: empty";
  let total = Array.length points in
  let sum = ref 0.0 in
  let lo = ref (fst points.(0)) and hi = ref (fst points.(0)) in
  Array.iter
    (fun (l, _) ->
      sum := !sum +. l;
      lo := Float.min !lo l;
      hi := Float.max !hi l)
    points;
  let avg = !sum /. float_of_int total in
  (* cnt.(m): points whose largest cleared band is [> 2^m x AVG] (m = 0
     when the point clears none).  Clearing is monotone in m because the
     thresholds [2^m *. avg] are non-decreasing, so a point is in band n
     iff its m is >= n, and suffix sums recover every band's count. *)
  let cnt = Array.make (max_above_bands + 2) 0 in
  let gcnt = Array.make (max_above_bands + 2) 0 in
  let around = ref 0 and around_gc = ref 0 in
  Array.iter
    (fun (l, is_gc) ->
      if l >= 0.5 *. avg && l <= 1.5 *. avg then begin
        Stdlib.incr around;
        if is_gc then Stdlib.incr around_gc
      end;
      let m = ref 0 in
      while
        !m < max_above_bands
        && l > Float.of_int (1 lsl (!m + 1)) *. avg
      do
        Stdlib.incr m
      done;
      cnt.(!m) <- cnt.(!m) + 1;
      if is_gc then gcnt.(!m) <- gcnt.(!m) + 1)
    points;
  for m = max_above_bands downto 1 do
    cnt.(m) <- cnt.(m) + cnt.(m + 1);
    gcnt.(m) <- gcnt.(m) + gcnt.(m + 1)
  done;
  let band ~label in_band gc =
    {
      label;
      pct_requests = 100.0 *. float_of_int in_band /. float_of_int total;
      pct_gc =
        (if in_band = 0 then 0.0
         else 100.0 *. float_of_int gc /. float_of_int in_band);
    }
  in
  let around_avg = band ~label:"0.5x-1.5x AVG" !around !around_gc in
  (* Generate >2^n x AVG bands until the request share vanishes, as the
     paper does ("until the percentage of points became too close to 0"). *)
  let rec bands n acc =
    let mult = Float.of_int (1 lsl n) in
    let b =
      band ~label:(Printf.sprintf ">%.0fx AVG" mult) cnt.(n) gcnt.(n)
    in
    if b.pct_requests < 0.001 || n > 10 then List.rev acc
    else bands (n + 1) (b :: acc)
  in
  {
    avg_ms = avg;
    max_ms = !hi;
    min_ms = !lo;
    around_avg;
    above = bands 1 [];
  }

let top_k_by f k xs =
  if k <= 0 then []
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n <= k then xs
    else begin
      let keyed = Array.mapi (fun i x -> (f x, i, x)) arr in
      Array.sort
        (fun (a, i, _) (b, j, _) ->
          match compare b a with 0 -> compare i j | c -> c)
        keyed;
      let kept = Array.sub keyed 0 k in
      Array.sort (fun (_, i, _) (_, j, _) -> compare i j) kept;
      Array.to_list (Array.map (fun (_, _, x) -> x) kept)
    end
  end

let cumsum xs =
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc)
    xs

let describe xs =
  let n = Array.length xs in
  if n = 0 then "n=0"
  else begin
    let lo, hi = min_max xs in
    Printf.sprintf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" n
      (mean xs) (stddev xs) lo (median xs) hi
  end
