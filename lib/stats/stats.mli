(** Descriptive statistics used by the study.

    The paper reports means, relative standard deviations (Table 2),
    pause-time aggregates (Table 3) and latency-bucket breakdowns
    (Tables 5-7); this module implements all of them over plain float
    arrays. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Population variance (the study compares runs of a fixed, known size). *)

val stddev : float array -> float

val rsd : float array -> float
(** Relative standard deviation in percent: [100 * stddev / mean].
    0 when the mean is 0. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on the empty array. *)

val sum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  @raise Invalid_argument on the empty array. *)

val median : float array -> float

(** {1 Histograms} *)

type histogram = {
  lo : float;  (** lower bound of the first bucket *)
  width : float;  (** bucket width *)
  counts : int array;
  total : int;
  overflow : int;  (** samples above the last bucket *)
  underflow : int;  (** samples below [lo] *)
}

val histogram : ?buckets:int -> lo:float -> hi:float -> float array -> histogram

(** {1 Latency buckets (Tables 5-7)}

    For each operation the client records its latency and whether it
    overlapped a server GC pause.  The paper then reports, for the band
    0.5x-1.5x of the average and for each band >2{^n}x of the average:
    the percentage of requests falling in the band ([%reqs]) and the
    percentage of those requests that are GC-correlated ([%GCs]). *)

type band = {
  label : string;
  pct_requests : float;  (** share of all requests in this band, percent *)
  pct_gc : float;  (** share of the band's requests that overlap a GC *)
}

type latency_report = {
  avg_ms : float;
  max_ms : float;
  min_ms : float;
  around_avg : band;  (** the 0.5x-1.5x AVG band *)
  above : band list;  (** >2x, >4x, >8x, ... until the band empties *)
}

val latency_report : (float * bool) array -> latency_report
(** [latency_report points] where each point is [(latency_ms,
    gc_correlated)].  Bands [>2{^n}x AVG] are generated for n = 1, 2, ...
    until the share of requests drops below 0.001 % (mirroring the paper's
    "we only increased n until the percentage of points became too close
    to 0").  @raise Invalid_argument on the empty array. *)

(** {1 Series helpers} *)

val top_k_by : ('a -> float) -> int -> 'a list -> 'a list
(** [top_k_by f k xs] keeps the [k] elements with the largest [f] value
    (the paper plots only the highest 10000 latency points), preserving
    the original relative order of the survivors. *)

val cumsum : float array -> float array

val describe : float array -> string
(** One-line summary (n/mean/sd/min/median/max) for logs and debugging. *)
