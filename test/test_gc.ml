(* Collector correctness tests.

   Each collector runs against small heaps with a driver built on the VM:
   rooted objects must survive any number of collections, garbage must be
   reclaimed, space accounting must stay exact, and each collector's
   specific machinery (CMS cycles and concurrent-mode failures, G1
   marking, mixed collections and humongous objects) must engage. *)

module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Gc_ctx = Gcperf_gc.Gc_ctx
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store

let mb = 1024 * 1024

let machine = Machine.paper_server ()

let small_config kind =
  Gc_config.default kind ~heap_bytes:(64 * mb) ~young_bytes:(16 * mb)

let all_kind_cases f =
  List.map
    (fun kind ->
      Alcotest.test_case (Gc_config.kind_to_string kind) `Quick (fun () ->
          f kind))
    Gc_config.all_kinds

(* Allocate [n] rooted objects of [size] bytes on one thread. *)
let alloc_rooted vm th n size =
  List.init n (fun _ -> Vm.alloc vm th ~size ~lifetime:`Permanent)

let check_invariants vm =
  match Vm.check_invariants vm with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invariant violation: " ^ e)

(* --- rooted objects survive collections ----------------------------- *)

let test_rooted_survive kind =
  let vm = Vm.create machine (small_config kind) ~seed:1 in
  let th = Vm.spawn_thread vm in
  let rooted = alloc_rooted vm th 20 (512 * 1024) in
  (* Push enough garbage through to force many collections. *)
  for _ = 1 to 400 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:(`Bytes (256 * 1024)));
    Vm.step vm ~dt_us:1000.0 (fun _ -> ())
  done;
  Alcotest.(check bool) "collections happened" true
    (Gc_event.count (Vm.events vm) > 0);
  List.iter
    (fun id ->
      Alcotest.(check bool) "rooted object alive" true (Vm.is_live vm id))
    rooted;
  check_invariants vm

(* --- reachability through references -------------------------------- *)

let test_reachable_via_ref_survives kind =
  let vm = Vm.create machine (small_config kind) ~seed:2 in
  let th = Vm.spawn_thread vm in
  let parent = Vm.alloc vm th ~size:(256 * 1024) ~lifetime:`Permanent in
  let child = Vm.alloc vm th ~size:(256 * 1024) ~lifetime:`Permanent in
  Vm.add_ref vm ~parent ~child;
  (* Drop the child's root: it stays reachable through the parent. *)
  Vm.drop_root vm th child;
  for _ = 1 to 300 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:(`Bytes (256 * 1024)));
    Vm.step vm ~dt_us:1000.0 (fun _ -> ())
  done;
  Alcotest.(check bool) "child kept by parent ref" true (Vm.is_live vm child);
  (* Sever the edge: the child must eventually be collected. *)
  Vm.remove_ref vm ~parent ~child;
  Vm.system_gc vm;
  Alcotest.(check bool) "child collected after severing" false
    (Vm.is_live vm child);
  Alcotest.(check bool) "parent still alive" true (Vm.is_live vm parent);
  check_invariants vm

(* --- garbage is reclaimed -------------------------------------------- *)

let test_garbage_reclaimed kind =
  let vm = Vm.create machine (small_config kind) ~seed:3 in
  let th = Vm.spawn_thread vm in
  (* 8x the heap in immediately dropped objects: only reclamation lets
     this terminate without OOM. *)
  for _ = 1 to 1024 do
    let id = Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent in
    Vm.drop_root vm th id;
    Vm.step vm ~dt_us:200.0 (fun _ -> ())
  done;
  let used = (Vm.collector vm).Gcperf_gc.Collector.heap_used () in
  Alcotest.(check bool) "heap not exhausted by garbage" true
    (used < 64 * mb);
  check_invariants vm

(* --- System.gc ------------------------------------------------------- *)

let test_system_gc kind =
  let vm = Vm.create machine (small_config kind) ~seed:4 in
  let th = Vm.spawn_thread vm in
  let keep = alloc_rooted vm th 4 (256 * 1024) in
  let junk = Vm.alloc vm th ~size:(4 * mb) ~lifetime:`Permanent in
  Vm.drop_root vm th junk;
  Vm.system_gc vm;
  let events = Gc_event.events (Vm.events vm) in
  Alcotest.(check bool) "a full pause was recorded" true
    (List.exists (fun e -> Gc_event.is_full e.Gc_event.kind) events);
  Alcotest.(check bool) "junk reclaimed" false (Vm.is_live vm junk);
  List.iter
    (fun id -> Alcotest.(check bool) "kept" true (Vm.is_live vm id))
    keep;
  check_invariants vm

(* --- pause log sanity ------------------------------------------------ *)

let test_pause_log_sane kind =
  let vm = Vm.create machine (small_config kind) ~seed:5 in
  let th = Vm.spawn_thread vm in
  for _ = 1 to 300 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:(`Bytes (128 * 1024)));
    Vm.step vm ~dt_us:500.0 (fun _ -> ())
  done;
  let events = Gc_event.events (Vm.events vm) in
  Alcotest.(check bool) "has events" true (events <> []);
  let rec check_sorted prev = function
    | [] -> ()
    | e :: tl ->
        Alcotest.(check bool) "positive duration" true
          (e.Gc_event.duration_us > 0.0);
        Alcotest.(check bool) "chronological" true
          (e.Gc_event.start_us >= prev -. 1e-9);
        check_sorted (e.Gc_event.start_us +. e.Gc_event.duration_us) tl
  in
  check_sorted 0.0 events

(* --- promotion ------------------------------------------------------- *)

let test_promotion kind =
  let vm = Vm.create machine (small_config kind) ~seed:6 in
  let th = Vm.spawn_thread vm in
  let pinned = Vm.alloc vm th ~size:(256 * 1024) ~lifetime:`Permanent in
  for _ = 1 to 600 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:(`Bytes (128 * 1024)));
    Vm.step vm ~dt_us:500.0 (fun _ -> ())
  done;
  let store = (Vm.collector vm).Gcperf_gc.Collector.store in
  let is_old =
    match Os.loc store pinned with
    | Os.Old -> true
    | Os.Region r -> (
        match (Vm.collector vm).Gcperf_gc.Collector.kind with
        | Gc_config.G1 -> r >= 0
        | _ -> false)
    | Os.Eden | Os.Survivor | Os.Nowhere -> false
  in
  Alcotest.(check bool) "long-lived object left eden" true
    (is_old || Os.age store pinned > 0)

(* --- out of memory --------------------------------------------------- *)

let test_oom kind =
  let vm = Vm.create machine (small_config kind) ~seed:7 in
  let th = Vm.spawn_thread vm in
  let blew_up = ref false in
  (try
     (* 80 MB of permanently rooted data cannot fit a 64 MB heap. *)
     for _ = 1 to 160 do
       ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent)
     done
   with Gc_ctx.Out_of_memory _ -> blew_up := true);
  Alcotest.(check bool) "raised Out_of_memory" true !blew_up

(* --- write barrier keeps young children of old parents --------------- *)

let test_write_barrier kind =
  let vm = Vm.create machine (small_config kind) ~seed:8 in
  let th = Vm.spawn_thread vm in
  (* Build an old parent: allocate it, then force collections so it gets
     promoted. *)
  let parent = Vm.alloc vm th ~size:(256 * 1024) ~lifetime:`Permanent in
  for _ = 1 to 300 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:500.0 (fun _ -> ())
  done;
  (* Fresh young child, kept alive only through the old parent. *)
  let child = Vm.alloc vm th ~size:(64 * 1024) ~lifetime:`Permanent in
  Vm.add_ref vm ~parent ~child;
  Vm.drop_root vm th child;
  for _ = 1 to 200 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:500.0 (fun _ -> ())
  done;
  Alcotest.(check bool) "child survived via card/remset" true
    (Vm.is_live vm child)

(* --- collector-specific machinery ------------------------------------ *)

let test_cms_cycle () =
  let vm = Vm.create machine (small_config Gc_config.Cms) ~seed:9 in
  let th = Vm.spawn_thread vm in
  (* Fill the old generation past the initiating occupancy with live
     data, then keep allocating so ticks happen. *)
  let hoard = ref [] in
  for _ = 1 to 100 do
    hoard := Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent :: !hoard
  done;
  for _ = 1 to 400 do
    ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:2000.0 (fun _ -> ())
  done;
  let d = Gcperf_gc.Gc_cms.debug_stats (Vm.collector vm) in
  Alcotest.(check bool) "a concurrent cycle started" true
    (d.Gcperf_gc.Gc_cms.cycles_started >= 1);
  let events = Gc_event.events (Vm.events vm) in
  Alcotest.(check bool) "initial-mark pause seen" true
    (List.exists (fun e -> e.Gc_event.kind = Gc_event.Initial_mark) events)

let test_cms_reclaims_concurrently () =
  let vm = Vm.create machine (small_config Gc_config.Cms) ~seed:10 in
  let th = Vm.spawn_thread vm in
  let hoard = ref [] in
  for _ = 1 to 100 do
    hoard := Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent :: !hoard
  done;
  (* Push the hoard into the old generation. *)
  for _ = 1 to 100 do
    ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:2000.0 (fun _ -> ())
  done;
  (* Make the hoard garbage, then let the concurrent cycle reclaim it. *)
  List.iter (fun id -> Vm.drop_root vm th id) !hoard;
  let before = (Vm.collector vm).Gcperf_gc.Collector.old_used () in
  for _ = 1 to 600 do
    ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:2000.0 (fun _ -> ())
  done;
  let after = (Vm.collector vm).Gcperf_gc.Collector.old_used () in
  Alcotest.(check bool) "old generation shrank" true (after < before)

let test_cms_concurrent_mode_failure () =
  let vm = Vm.create machine (small_config Gc_config.Cms) ~seed:11 in
  let th = Vm.spawn_thread vm in
  (* Saturate the old generation with live data, then promote hard: the
     cycle cannot keep up and CMS must fall back to a serial full GC. *)
  let n = 44 * mb / (512 * 1024) in
  for _ = 1 to n do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent)
  done;
  (try
     for _ = 1 to 600 do
       ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:(`Bytes (8 * mb)));
       Vm.step vm ~dt_us:200.0 (fun _ -> ())
     done
   with Gc_ctx.Out_of_memory _ -> ());
  let events = Gc_event.events (Vm.events vm) in
  Alcotest.(check bool) "fell back to a full collection" true
    (List.exists
       (fun e ->
         Gc_event.is_full e.Gc_event.kind
         && e.Gc_event.reason = "concurrent mode failure")
       events
    || Gcperf_gc.Gc_cms.(debug_stats (Vm.collector vm)).concurrent_mode_failures
       >= 1)

(* Failure accounting: with a tiny old generation every promotion burst
   hits [Gen_algo.Promotion_failure], and the fallback must be visible
   both in the collector's debug counters and in the emitted pause
   causes — this is what the paper's pause-cause tables key off. *)
let test_cms_failure_accounting () =
  let config =
    Gc_config.default Gc_config.Cms ~heap_bytes:(24 * mb)
      ~young_bytes:(16 * mb)
  in
  let vm = Vm.create machine config ~seed:21 in
  let th = Vm.spawn_thread vm in
  (* ~6 MB of the 8 MB old generation stays live forever. *)
  for _ = 1 to 12 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent)
  done;
  Vm.system_gc vm;
  (* Medium-lived clusters survive their first young collection and ask
     for promotion the old generation cannot grant. *)
  (try
     for _ = 1 to 400 do
       ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (6 * mb)));
       Vm.step vm ~dt_us:200.0 (fun _ -> ())
     done
   with Gc_ctx.Out_of_memory _ -> ());
  let stats = Gcperf_gc.Gc_cms.debug_stats (Vm.collector vm) in
  Alcotest.(check bool) "concurrent mode failures counted" true
    (stats.Gcperf_gc.Gc_cms.concurrent_mode_failures >= 1);
  Alcotest.(check bool) "pause cause emitted" true
    (List.exists
       (fun e ->
         Gc_event.is_full e.Gc_event.kind
         && e.Gc_event.reason = "concurrent mode failure")
       (Gc_event.events (Vm.events vm)))

let test_g1_evacuation_failure_accounting () =
  let config =
    Gc_config.default Gc_config.G1 ~heap_bytes:(32 * mb) ~young_bytes:(8 * mb)
  in
  let vm = Vm.create machine config ~seed:22 in
  let th = Vm.spawn_thread vm in
  (* Pin most regions with permanent data so surviving + promoted bytes
     of a young collection cannot find free regions to evacuate into. *)
  (try
     for _ = 1 to 96 do
       ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:`Permanent)
     done;
     for _ = 1 to 600 do
       ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (4 * mb)));
       Vm.step vm ~dt_us:200.0 (fun _ -> ())
     done
   with Gc_ctx.Out_of_memory _ -> ());
  let stats = Gcperf_gc.Gc_g1.debug_stats (Vm.collector vm) in
  Alcotest.(check bool) "evacuation failures counted" true
    (stats.Gcperf_gc.Gc_g1.evacuation_failures >= 1);
  Alcotest.(check bool) "pause cause emitted" true
    (List.exists
       (fun e ->
         Gc_event.is_full e.Gc_event.kind
         && e.Gc_event.reason = "evacuation failure")
       (Gc_event.events (Vm.events vm)))

let test_g1_humongous () =
  let vm = Vm.create machine (small_config Gc_config.G1) ~seed:12 in
  let th = Vm.spawn_thread vm in
  (* Region size for a 64 MB heap is 1 MB; > 512 KB is humongous. *)
  let h = Vm.alloc vm th ~size:(3 * mb) ~lifetime:`Permanent in
  Alcotest.(check bool) "humongous allocated" true (Vm.is_live vm h);
  for _ = 1 to 300 do
    ignore (Vm.alloc vm th ~size:(128 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:500.0 (fun _ -> ())
  done;
  Alcotest.(check bool) "humongous survives collections" true (Vm.is_live vm h);
  (* Dropped humongous objects are reclaimed (cleanup or full GC). *)
  Vm.drop_root vm th h;
  Vm.system_gc vm;
  Alcotest.(check bool) "humongous reclaimed" false (Vm.is_live vm h);
  check_invariants vm

let test_g1_marking_and_mixed () =
  let vm = Vm.create machine (small_config Gc_config.G1) ~seed:13 in
  let th = Vm.spawn_thread vm in
  (* Old data with garbage inside: build, drop half, keep allocating. *)
  let hoard = ref [] in
  for _ = 1 to 120 do
    hoard := Vm.alloc vm th ~size:(384 * 1024) ~lifetime:`Permanent :: !hoard
  done;
  (* Keep two thirds live (above the 45% IHOP) with garbage mixed in. *)
  List.iteri
    (fun i id -> if i mod 3 = 0 then Vm.drop_root vm th id)
    !hoard;
  for _ = 1 to 800 do
    ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:2000.0 (fun _ -> ())
  done;
  let d = Gcperf_gc.Gc_g1.debug_stats (Vm.collector vm) in
  Alcotest.(check bool) "marking cycles ran" true
    (d.Gcperf_gc.Gc_g1.marking_cycles >= 1);
  let events = Gc_event.events (Vm.events vm) in
  Alcotest.(check bool) "remark pauses recorded" true
    (List.exists (fun e -> e.Gc_event.kind = Gc_event.Remark) events);
  check_invariants vm

let test_g1_young_collections_bounded () =
  (* With a fixed young size, eden collections trigger at the target. *)
  let vm = Vm.create machine (small_config Gc_config.G1) ~seed:14 in
  let th = Vm.spawn_thread vm in
  for _ = 1 to 200 do
    ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:500.0 (fun _ -> ())
  done;
  let d = Gcperf_gc.Gc_g1.debug_stats (Vm.collector vm) in
  Alcotest.(check bool) "young collections happened" true
    (d.Gcperf_gc.Gc_g1.young_collections >= 2)

(* --- hot-path data structures (remembered set, epoch marks) ----------- *)

module Gh = Gcperf_heap.Gen_heap
module Gen_algo = Gcperf_gc.Gen_algo
module Vec = Gcperf_util.Int_vec

(* A bare generational heap driven directly through Gen_algo, with an
   explicit root table standing in for the runtime. *)
let make_bare_heap () =
  let clock = Gcperf_sim.Clock.create () in
  let events = Gc_event.create () in
  let ctx = Gc_ctx.create machine clock events in
  let store = Os.create () in
  let heap = Gh.create store ~heap_bytes:(32 * mb) ~young_bytes:(8 * mb) () in
  let roots : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  ctx.Gc_ctx.iter_roots <- (fun f -> Hashtbl.iter (fun id () -> f id) roots);
  ctx.Gc_ctx.mutator_threads <- 1;
  (ctx, store, heap, roots)

let bare_params heap =
  {
    Gen_algo.workers = 1;
    promote_rate = 1000.0;
    usable_old_free = (fun () -> Gh.old_free heap);
  }

let has_live_young_ref store id =
  let found = ref false in
  Os.iter_refs store id (fun r ->
      if Os.is_live store r && Os.is_young store r then found := true);
  !found

(* Soundness — must hold after EVERY mutation and collection: a live old
   object with a young target is card-marked (a missed card would let a
   young collection free reachable data). *)
let remset_sound store heap =
  let ok = ref true in
  Os.iter_live store (fun id ->
      if
        Os.is_old store id
        && has_live_young_ref store id
        && not (Gh.card_is_dirty heap id)
      then ok := false);
  !ok

(* Exactness — holds right after a collection's refresh: the tracked set
   is precisely {live old objects with >= 1 live young ref}.  Between
   collections entries may be sticky (card-table semantics), so only
   soundness is required there. *)
let remset_exact store heap =
  let ok = ref true in
  Os.iter_live store (fun id ->
      if
        Os.is_old store id
        && Gh.card_is_dirty heap id <> has_live_young_ref store id
      then ok := false);
  !ok && Gh.dirty_count heap <= Os.live_count store

let prop_remset_invariant =
  (* >= 1000 randomized alloc / write_ref / remove_ref / kill / collection
     steps per run.  The driver removes a victim's edges before unrooting
     it, so objects die reference-free and ids never dangle — making the
     shadow-free exactness check above well-defined. *)
  QCheck.Test.make ~name:"remembered set invariant under random traffic"
    ~count:3
    QCheck.(list_of_size (Gen.int_range 1000 1300) (int_range 0 1_000_000))
    (fun ops ->
      let ctx, store, heap, roots = make_bare_heap () in
      let params = bare_params heap in
      let rooted = Vec.create () in
      let edges = ref [] in
      let failures = ref [] in
      let require what cond = if not cond then failures := what :: !failures in
      let collect_young () =
        (try
           ignore
             (Gen_algo.collect_young ctx heap ~params ~collector:"prop"
                ~reason:"prop")
         with Gen_algo.Promotion_failure ->
           ignore
             (Gen_algo.collect_full ctx heap ~workers:1 ~collector:"prop"
                ~reason:"prop"));
        require "exact after young gc" (remset_exact store heap)
      in
      let collect_full () =
        ignore
          (Gen_algo.collect_full ctx heap ~workers:1 ~collector:"prop"
             ~reason:"prop");
        require "exact after full gc" (remset_exact store heap)
      in
      let root id =
        Hashtbl.replace roots id ();
        Vec.push rooted id
      in
      let step op =
        match op mod 8 with
        | 0 | 1 | 2 ->
            (* Rooted eden allocation; collect on failure. *)
            let size = 1024 * (1 + op mod 48) in
            (match Gh.alloc_eden heap ~size with
            | Some id -> root id
            | None -> (
                collect_young ();
                match Gh.alloc_eden heap ~size with
                | Some id -> root id
                | None -> ()))
        | 3 ->
            (* Rooted old allocation (e.g. a humongous cluster). *)
            let size = 1024 * (1 + op mod 64) in
            (match Gh.alloc_old_direct heap ~size with
            | Some id -> root id
            | None -> (
                collect_full ();
                match Gh.alloc_old_direct heap ~size with
                | Some id -> root id
                | None -> ()))
        | 4 ->
            (* Store a reference between two live rooted objects. *)
            let n = Vec.length rooted in
            if n >= 2 then begin
              let p = Vec.get rooted (op / 8 mod n)
              and c = Vec.get rooted (op / 64 mod n) in
              Gh.record_store heap ~parent:p ~child:c;
              edges := (p, c) :: !edges
            end
        | 5 ->
            (* Overwrite: remove one previously stored reference. *)
            let len = List.length !edges in
            if len > 0 then begin
              let idx = op / 8 mod len in
              let p, c = List.nth !edges idx in
              Gh.remove_store heap ~parent:p ~child:c;
              edges := List.filteri (fun i _ -> i <> idx) !edges
            end
        | 6 ->
            (* Kill a rooted object: sever its edges, then unroot it. *)
            let n = Vec.length rooted in
            if n > 4 then begin
              let idx = op / 8 mod n in
              let id = Vec.get rooted idx in
              List.iter
                (fun (p, c) ->
                  if p = id || c = id then Gh.remove_store heap ~parent:p ~child:c)
                !edges;
              edges := List.filter (fun (p, c) -> p <> id && c <> id) !edges;
              Hashtbl.remove roots id;
              ignore (Vec.swap_remove rooted idx)
            end
        | _ -> if op mod 40 = 7 then collect_full () else collect_young ()
      in
      List.iter
        (fun op ->
          step op;
          require "sound after step" (remset_sound store heap))
        ops;
      collect_full ();
      (match !failures with
      | [] -> ()
      | w :: _ -> QCheck.Test.fail_reportf "remset invariant broken: %s" w);
      true)

let naive_reachable ctx store =
  let visited = Hashtbl.create 64 in
  let rec go id =
    if Os.is_live store id && not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      Os.iter_refs store id go
    end
  in
  ctx.Gc_ctx.iter_roots go;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) visited [])

let test_epoch_marking_equivalence () =
  let ctx, store, heap, roots = make_bare_heap () in
  (* A little object graph spanning both generations, with shared
     structure, a cycle, and unreachable clutter. *)
  let young =
    Array.init 24 (fun _ -> Option.get (Gh.alloc_eden heap ~size:4096))
  in
  let old =
    Array.init 12 (fun _ -> Option.get (Gh.alloc_old_direct heap ~size:8192))
  in
  Array.iteri
    (fun i id ->
      if i mod 3 = 0 then Hashtbl.replace roots id ();
      Gh.record_store heap ~parent:id ~child:young.((i * 7 + 3) mod 24))
    young;
  Array.iteri
    (fun i id ->
      if i mod 4 = 0 then Hashtbl.replace roots id ();
      Gh.record_store heap ~parent:id ~child:young.((i * 5 + 1) mod 24);
      Gh.record_store heap ~parent:id ~child:old.((i + 1) mod 12))
    old;
  Gh.record_store heap ~parent:young.(3) ~child:young.(3) (* self cycle *);
  let trace_ids () =
    List.sort compare (Vec.to_list (Gen_algo.trace_all ctx heap))
  in
  let expected = naive_reachable ctx store in
  Alcotest.(check (list int)) "trace matches naive reachability" expected
    (trace_ids ());
  (* A second trace must not be polluted by the first one's marks: epoch
     staleness replaces the clearing pass. *)
  Alcotest.(check (list int)) "repeat trace identical" expected (trace_ids ());
  (* Mark stamps answer is_marked for exactly the traced set. *)
  ignore (trace_ids ());
  Os.iter_live store (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "is_marked agrees for %d" id)
        (List.mem id expected)
        (Os.is_marked store id));
  (* Fresh allocations are never marked, even on recycled slots. *)
  let fresh = Option.get (Gh.alloc_eden heap ~size:1024) in
  Alcotest.(check bool) "fresh object unmarked" false
    (Os.is_marked store fresh);
  (* After a collection reshuffles locations, equivalence still holds. *)
  ignore
    (Gen_algo.collect_young ctx heap ~params:(bare_params heap)
       ~collector:"epoch" ~reason:"test");
  Alcotest.(check (list int)) "trace after collection matches naive"
    (naive_reachable ctx store) (trace_ids ())

(* --- random programs preserve correctness (property) ----------------- *)

let prop_random_program kind =
  let name =
    Printf.sprintf "random program safe under %s" (Gc_config.kind_to_string kind)
  in
  QCheck.Test.make ~name ~count:15
    QCheck.(
      list_of_size (Gen.int_range 20 120)
        (triple (int_range 1 (mb / 2)) (int_range 0 3) bool))
    (fun program ->
      let vm = Vm.create machine (small_config kind) ~seed:99 in
      let th = Vm.spawn_thread vm in
      let rooted = ref [] in
      (try
         List.iter
           (fun (size, links, keep) ->
             let id =
               Vm.alloc vm th ~size
                 ~lifetime:(if keep then `Permanent else `Bytes (4 * size))
             in
             if keep then rooted := id :: !rooted;
             (* Link to previously rooted objects. *)
             let rec link n l =
               match (n, l) with
               | 0, _ | _, [] -> ()
               | n, p :: tl ->
                   if Vm.is_live vm p then Vm.add_ref vm ~parent:p ~child:id;
                   link (n - 1) tl
             in
             link links !rooted;
             Vm.step vm ~dt_us:300.0 (fun _ -> ());
             (* Cap live data so the program never legitimately OOMs. *)
             if List.length !rooted > 60 then begin
               match List.rev !rooted with
               | oldest :: _ ->
                   Vm.drop_root vm th oldest;
                   rooted := List.filter (fun x -> x <> oldest) !rooted
               | [] -> ()
             end)
           program
       with Gc_ctx.Out_of_memory _ -> ());
      List.for_all (fun id -> Vm.is_live vm id) !rooted
      && Result.is_ok (Vm.check_invariants vm))

let () =
  Alcotest.run "gc"
    [
      ("rooted objects survive", all_kind_cases test_rooted_survive);
      ("reachability via refs", all_kind_cases test_reachable_via_ref_survives);
      ("garbage reclaimed", all_kind_cases test_garbage_reclaimed);
      ("system gc", all_kind_cases test_system_gc);
      ("pause log", all_kind_cases test_pause_log_sane);
      ("promotion", all_kind_cases test_promotion);
      ("out of memory", all_kind_cases test_oom);
      ("write barrier", all_kind_cases test_write_barrier);
      ( "cms",
        [
          Alcotest.test_case "concurrent cycle" `Quick test_cms_cycle;
          Alcotest.test_case "concurrent reclamation" `Quick
            test_cms_reclaims_concurrently;
          Alcotest.test_case "concurrent mode failure" `Quick
            test_cms_concurrent_mode_failure;
          Alcotest.test_case "failure accounting" `Quick
            test_cms_failure_accounting;
        ] );
      ( "g1",
        [
          Alcotest.test_case "humongous objects" `Quick test_g1_humongous;
          Alcotest.test_case "marking and mixed" `Quick test_g1_marking_and_mixed;
          Alcotest.test_case "young collections" `Quick
            test_g1_young_collections_bounded;
          Alcotest.test_case "evacuation failure accounting" `Quick
            test_g1_evacuation_failure_accounting;
        ] );
      ( "hot-path structures",
        [
          Alcotest.test_case "epoch marking equivalence" `Quick
            test_epoch_marking_equivalence;
          QCheck_alcotest.to_alcotest prop_remset_invariant;
        ] );
      ( "random programs",
        List.map
          (fun kind -> QCheck_alcotest.to_alcotest (prop_random_program kind))
          Gc_config.all_kinds );
    ]
