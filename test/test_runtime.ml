(* Tests for the VM runtime: threads, roots, lifetimes, quantum stepping
   and mutator dilation. *)

module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config

let mb = 1024 * 1024
let machine = Machine.paper_server ()

let fresh ?(kind = Gc_config.ParallelOld) () =
  Vm.create machine
    (Gc_config.default kind ~heap_bytes:(64 * mb) ~young_bytes:(16 * mb))
    ~seed:5

let test_threads () =
  let vm = fresh () in
  Alcotest.(check int) "no threads" 0 (List.length (Vm.threads vm));
  let a = Vm.spawn_thread vm in
  let b = Vm.spawn_thread vm in
  Alcotest.(check int) "two threads" 2 (List.length (Vm.threads vm));
  Alcotest.(check bool) "distinct ids" true (a.Vm.tid <> b.Vm.tid);
  Vm.kill_thread vm a;
  Alcotest.(check int) "one left" 1 (List.length (Vm.threads vm))

let test_kill_thread_drops_roots () =
  let vm = fresh () in
  let th = Vm.spawn_thread vm in
  let id = Vm.alloc vm th ~size:mb ~lifetime:`Permanent in
  Vm.kill_thread vm th;
  Vm.system_gc vm;
  Alcotest.(check bool) "object collected with its thread" false
    (Vm.is_live vm id)

let test_lifetime_expiry () =
  let vm = fresh () in
  let th = Vm.spawn_thread vm in
  (* Dies after 1 MB of further allocation. *)
  let short = Vm.alloc vm th ~size:(64 * 1024) ~lifetime:(`Bytes mb) in
  Alcotest.(check bool) "initially live" true (Vm.is_live vm short);
  for _ = 1 to 40 do
    ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:100.0 (fun _ -> ())
  done;
  Vm.system_gc vm;
  Alcotest.(check bool) "expired and collected" false (Vm.is_live vm short)

let test_global_roots () =
  let vm = fresh () in
  let id = Vm.alloc_global vm ~size:mb ~lifetime:`Permanent in
  Vm.system_gc vm;
  Alcotest.(check bool) "global kept" true (Vm.is_live vm id);
  Vm.drop_global_root vm id;
  Vm.system_gc vm;
  Alcotest.(check bool) "dropped global collected" false (Vm.is_live vm id)

let test_reroot () =
  let vm = fresh () in
  let th = Vm.spawn_thread vm in
  let id = Vm.alloc vm th ~size:mb ~lifetime:`Permanent in
  Vm.global_root vm id;
  Vm.drop_root vm th id;
  Vm.system_gc vm;
  Alcotest.(check bool) "survives via global root" true (Vm.is_live vm id)

let test_alloc_old_global () =
  let vm = fresh () in
  let id = Vm.alloc_old_global vm ~size:mb ~lifetime:`Permanent in
  let store = (Vm.collector vm).Gcperf_gc.Collector.store in
  Alcotest.(check bool) "landed in the old generation" true
    (Gcperf_heap.Obj_store.is_old store id);
  Alcotest.(check bool) "old accounting" true
    ((Vm.collector vm).Gcperf_gc.Collector.old_used () >= mb)

let test_step_advances_clock () =
  let vm = fresh () in
  let _th = Vm.spawn_thread vm in
  let t0 = Vm.now_s vm in
  Vm.step vm ~dt_us:50_000.0 (fun _ -> ());
  Alcotest.(check bool) "advanced by >= dt" true
    (Vm.now_s vm -. t0 >= 0.05 -. 1e-9)

let test_step_visits_live_threads () =
  let vm = fresh () in
  let a = Vm.spawn_thread vm in
  let b = Vm.spawn_thread vm in
  Vm.kill_thread vm b;
  let visited = ref [] in
  Vm.step vm ~dt_us:100.0 (fun th -> visited := th.Vm.tid :: !visited);
  Alcotest.(check (list int)) "only live threads" [ a.Vm.tid ] !visited

let test_mutator_factor_sane () =
  let vm = fresh ~kind:Gc_config.Cms () in
  let th = Vm.spawn_thread vm in
  for _ = 1 to 100 do
    ignore (Vm.alloc vm th ~size:(512 * 1024) ~lifetime:`Permanent)
  done;
  for _ = 1 to 50 do
    ignore (Vm.alloc vm th ~size:(256 * 1024) ~lifetime:(`Bytes (64 * 1024)));
    Vm.step vm ~dt_us:100.0 (fun _ -> ())
  done;
  let factor = (Vm.collector vm).Gcperf_gc.Collector.mutator_factor () in
  Alcotest.(check bool) "factor >= 1" true (factor >= 1.0)

let test_tlab_config_changes_overhead () =
  (* The same program takes longer (virtual time) without TLABs when many
     threads allocate: the shared path is contended. *)
  let run tlab =
    let config =
      {
        (Gc_config.default Gc_config.ParallelOld ~heap_bytes:(512 * mb)
           ~young_bytes:(128 * mb))
        with
        Gc_config.tlab;
      }
    in
    let vm = Vm.create machine config ~seed:9 in
    for i = 1 to 16 do
      ignore i;
      ignore (Vm.spawn_thread vm)
    done;
    for _ = 1 to 50 do
      Vm.step vm ~dt_us:1000.0 (fun th ->
          for _ = 1 to 20 do
            ignore
              (Vm.alloc vm th ~size:(64 * 1024) ~lifetime:(`Bytes (64 * 1024)))
          done)
    done;
    Vm.now_s vm
  in
  Alcotest.(check bool) "no-TLAB run is slower" true (run false > run true)

let test_determinism () =
  let run () =
    let vm = fresh () in
    let th = Vm.spawn_thread vm in
    for _ = 1 to 200 do
      ignore (Vm.alloc vm th ~size:(300 * 1024) ~lifetime:(`Bytes (512 * 1024)));
      Vm.step vm ~dt_us:700.0 (fun _ -> ())
    done;
    (Vm.now_s vm, Gcperf_sim.Gc_event.count (Vm.events vm))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_allocated_bytes_counter () =
  let vm = fresh () in
  let th = Vm.spawn_thread vm in
  ignore (Vm.alloc vm th ~size:123 ~lifetime:`Permanent);
  ignore (Vm.alloc_global vm ~size:1000 ~lifetime:`Permanent);
  Alcotest.(check int) "cumulative" 1123 (Vm.allocated_bytes vm)

let () =
  Alcotest.run "runtime"
    [
      ( "vm",
        [
          Alcotest.test_case "thread lifecycle" `Quick test_threads;
          Alcotest.test_case "kill drops roots" `Quick test_kill_thread_drops_roots;
          Alcotest.test_case "lifetime expiry" `Quick test_lifetime_expiry;
          Alcotest.test_case "global roots" `Quick test_global_roots;
          Alcotest.test_case "re-rooting" `Quick test_reroot;
          Alcotest.test_case "direct old allocation" `Quick test_alloc_old_global;
          Alcotest.test_case "step advances clock" `Quick test_step_advances_clock;
          Alcotest.test_case "step visits live threads" `Quick
            test_step_visits_live_threads;
          Alcotest.test_case "mutator factor" `Quick test_mutator_factor_sane;
          Alcotest.test_case "tlab overhead" `Quick test_tlab_config_changes_overhead;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "allocation counter" `Quick test_allocated_bytes_counter;
        ] );
    ]
