(* Tests for the Cassandra-like key-value store. *)

module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Server = Gcperf_kvstore.Server

let mb = 1024 * 1024
let machine = Machine.paper_server ()

let fresh_vm ?(heap = 2048 * mb) () =
  Vm.create machine
    (Gc_config.default Gc_config.ParallelOld ~heap_bytes:heap
       ~young_bytes:(heap / 4))
    ~seed:31

let small_config =
  {
    Server.default_config with
    Server.memtable_flush_bytes = 64 * mb;
    service_threads = 4;
  }

let test_create () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  Alcotest.(check int) "empty memtable" 0 (Server.memtable_bytes s);
  Alcotest.(check int) "no ops yet" 0 (Server.operations s);
  Alcotest.(check int) "no flushes yet" 0 (Server.flushes s)

let test_insert_accounting () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  for _ = 1 to 100 do
    Server.perform s Server.Insert
  done;
  Alcotest.(check int) "memtable holds 100 records"
    (100 * small_config.Server.record_bytes)
    (Server.memtable_bytes s);
  Alcotest.(check bool) "commit log grew" true (Server.commitlog_bytes s > 0);
  Alcotest.(check int) "ops counted" 100 (Server.operations s)

let test_update_overwrites () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  Server.perform s Server.Insert;
  let before = Server.memtable_bytes s in
  (* Updating the only key replaces its record: memtable size stays. *)
  for _ = 1 to 50 do
    Server.perform s Server.Update
  done;
  Alcotest.(check int) "overwrites do not grow the memtable" before
    (Server.memtable_bytes s);
  (* ... but the commit log records every write. *)
  Alcotest.(check bool) "commit log keeps growing" true
    (Server.commitlog_bytes s > before)

let test_reads_allocate_transients () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  let before = Vm.allocated_bytes vm in
  for _ = 1 to 10 do
    Server.perform s Server.Read
  done;
  Alcotest.(check bool) "reads allocate" true (Vm.allocated_bytes vm > before);
  Alcotest.(check int) "reads do not touch the memtable" 0
    (Server.memtable_bytes s)

let test_flush () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  (* 64 MB threshold / (20 KB record + 20 KB log) ~ 1600 writes. *)
  for _ = 1 to 2000 do
    Server.perform s Server.Insert
  done;
  Alcotest.(check bool) "flushed at least once" true (Server.flushes s >= 1);
  Alcotest.(check bool) "memtable below threshold" true
    (Server.memtable_bytes s + Server.commitlog_bytes s
    < small_config.Server.memtable_flush_bytes);
  (* The flushed data must be collectable: a full GC leaves the heap
     mostly empty. *)
  Vm.system_gc vm;
  let used = (Vm.collector vm).Gcperf_gc.Collector.heap_used () in
  Alcotest.(check bool) "flushed records were reclaimed" true
    (used < 96 * mb)

let test_replay_fills_old_gen () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  Server.replay_commitlog s ~target_bytes:(32 * mb);
  Alcotest.(check bool) "memtable filled" true
    (Server.memtable_bytes s >= 32 * mb);
  Alcotest.(check bool) "data sits in the old generation" true
    ((Vm.collector vm).Gcperf_gc.Collector.old_used () >= 32 * mb);
  Alcotest.(check bool) "replay consumed virtual time" true (Vm.now_s vm > 0.0)

let test_run_timeline () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  Server.run s ~duration_s:5.0 ~ops_per_s:400.0 ~read_frac:0.5
    ~insert_frac:0.25;
  Alcotest.(check bool) "about 2000 ops" true
    (abs (Server.operations s - 2000) < 200);
  let tl = Server.db_size_timeline s in
  Alcotest.(check bool) "timeline sampled" true (Array.length tl > 10);
  let sorted = ref true in
  for i = 1 to Array.length tl - 1 do
    if fst tl.(i) < fst tl.(i - 1) then sorted := false
  done;
  Alcotest.(check bool) "timeline chronological" true !sorted

let test_stress_config () =
  let c = Server.stress_config ~heap_bytes:(64 * 1024 * mb) in
  Alcotest.(check int) "flush threshold = heap" (64 * 1024 * mb)
    c.Server.memtable_flush_bytes

let test_rooted_records_survive_gc () =
  let vm = fresh_vm () in
  let s = Server.create vm small_config ~seed:1 in
  for _ = 1 to 500 do
    Server.perform s Server.Insert
  done;
  let memtable_before = Server.memtable_bytes s in
  Vm.system_gc vm;
  (* The memtable is reachable from the index objects: a full collection
     must not lose it. *)
  let used = (Vm.collector vm).Gcperf_gc.Collector.heap_used () in
  Alcotest.(check bool) "memtable retained across full GC" true
    (used >= memtable_before)

let () =
  Alcotest.run "kvstore"
    [
      ( "server",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "insert accounting" `Quick test_insert_accounting;
          Alcotest.test_case "updates overwrite" `Quick test_update_overwrites;
          Alcotest.test_case "reads allocate" `Quick test_reads_allocate_transients;
          Alcotest.test_case "flush" `Quick test_flush;
          Alcotest.test_case "replay" `Quick test_replay_fills_old_gen;
          Alcotest.test_case "run + timeline" `Quick test_run_timeline;
          Alcotest.test_case "stress config" `Quick test_stress_config;
          Alcotest.test_case "records survive GC" `Quick
            test_rooted_records_survive_gc;
        ] );
    ]
