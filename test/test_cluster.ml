(* Tests for the cluster layer: consistent-hash placement properties,
   the fan-out coordinator's quorum/hedging/hinted-handoff semantics on
   synthetic node timelines, and the grid's worker-count independence. *)

module Ring = Gcperf_cluster.Ring
module Node = Gcperf_cluster.Node
module Coordinator = Gcperf_cluster.Coordinator
module Client = Gcperf_ycsb.Client
module Resilient = Gcperf_ycsb.Resilient
module Session = Gcperf_ycsb.Session
module Gateway = Gcperf_kvstore.Gateway
module Profile = Gcperf_fault.Profile

let int_array = Alcotest.(array int)

(* --- ring placement ------------------------------------------------- *)

let prop_replicas_distinct_and_stable =
  QCheck.Test.make ~name:"replica sets distinct and stable" ~count:200
    QCheck.(triple (int_range 1 40) (int_range 1 5) small_int)
    (fun (nodes, replication, key) ->
      let ring = Ring.create ~nodes ~replication () in
      let reps = Ring.replicas ring ~key in
      let again = Ring.replicas ring ~key in
      Array.length reps = min replication nodes
      && reps = again
      && reps.(0) = Ring.primary ring ~key
      && Array.for_all (fun n -> n >= 0 && n < nodes) reps
      && List.length (List.sort_uniq compare (Array.to_list reps))
         = Array.length reps)

(* Growing the ring from [n] to [n+1] nodes only splices the new node
   in: a key's new replica set is a subset of the old one plus the new
   node, and at most one old replica falls off the end. *)
let prop_grow_moves_little =
  QCheck.Test.make ~name:"grow splices only the new node" ~count:60
    QCheck.(pair (int_range 3 24) (int_range 1 3))
    (fun (nodes, replication) ->
      let old_ring = Ring.create ~nodes ~replication () in
      let new_ring = Ring.create ~nodes:(nodes + 1) ~replication () in
      List.for_all
        (fun key ->
          let olds = Array.to_list (Ring.replicas old_ring ~key) in
          let news = Array.to_list (Ring.replicas new_ring ~key) in
          List.for_all (fun n -> n = nodes || List.mem n olds) news
          && List.length (List.filter (fun n -> not (List.mem n news)) olds)
             <= 1)
        (List.init 200 (fun i -> (i * 7919) + 13)))

(* With 64 vnodes per node the new node takes close to its fair 1/(n+1)
   share of primaries — the whole point of virtual nodes. *)
let test_rebalance_fraction () =
  let nodes = 10 in
  let keys = 20_000 in
  let old_ring = Ring.create ~nodes ~replication:3 () in
  let new_ring = Ring.create ~nodes:(nodes + 1) ~replication:3 () in
  let moved = ref 0 in
  for key = 0 to keys - 1 do
    if Ring.primary new_ring ~key <> Ring.primary old_ring ~key then
      incr moved
  done;
  let fraction = float_of_int !moved /. float_of_int keys in
  let fair = 1.0 /. float_of_int (nodes + 1) in
  Alcotest.(check bool)
    (Printf.sprintf "moved %.3f, fair %.3f" fraction fair)
    true
    (fraction > 0.4 *. fair && fraction < 2.5 *. fair)

let test_successor_skips_avoided () =
  let ring = Ring.create ~nodes:6 ~replication:3 () in
  let key = 12345 in
  let reps = Array.to_list (Ring.replicas ring ~key) in
  (match Ring.successor ring ~key ~avoid:(fun _ -> false) with
  | Some h ->
      Alcotest.(check bool) "handoff target outside replica set" true
        (not (List.mem h reps))
  | None -> Alcotest.fail "successor exists when nothing is avoided");
  Alcotest.(check bool) "all avoided -> none" true
    (Ring.successor ring ~key ~avoid:(fun _ -> true) = None)

(* --- coordinator on synthetic timelines ----------------------------- *)

let timeline ?(intervals = [||]) ?(duration = 20.0) () =
  {
    Node.collector = "synthetic";
    node_seed = 0;
    duration_s = duration;
    intervals;
    db_timeline = [||];
    pause_fraction = 0.0;
    oom = false;
  }

(* [paused] maps node id to its pause intervals; everything else serves
   cleanly. *)
let make_nodes ~count ~paused ~seed =
  Array.init count (fun id ->
      Node.create ~id
        (timeline ~intervals:(paused id) ())
        ~profile:Profile.none ~gateway:Gateway.unbounded ~seed:(seed + id))

let workload ~read_frac ~ops =
  {
    Client.paper_workload with
    Client.read_frac;
    ops_per_s = ops;
    duration_s = 15.0;
  }

let config ~fanout ~read_frac =
  {
    Coordinator.default with
    Coordinator.workload = workload ~read_frac ~ops:80.0;
    fanout;
    keyspace = 10_000;
  }

let run_with ~config ~paused ~ring_size ~seed =
  let ring = Ring.create ~nodes:ring_size ~replication:3 () in
  let nodes = make_nodes ~count:ring_size ~paused ~seed in
  Coordinator.run config ~ring ~nodes ~seed

let no_pauses _ = [||]

let test_healthy_ring_all_ok () =
  let s =
    run_with
      ~config:(config ~fanout:4 ~read_frac:0.9)
      ~paused:no_pauses ~ring_size:8 ~seed:11
  in
  Alcotest.(check int) "nothing fails" 0 s.Coordinator.failed;
  Alcotest.(check int) "everything answers" s.Coordinator.requests
    s.Coordinator.ok;
  Alcotest.(check bool) "reads scatter" true
    (s.Coordinator.subops > s.Coordinator.requests);
  Alcotest.(check bool) "pause-free ring never intersects" true
    (s.Coordinator.pause_intersected = 0)

let test_deterministic () =
  let go () =
    run_with
      ~config:(config ~fanout:8 ~read_frac:0.9)
      ~paused:(fun id -> if id = 2 then [| (3.0, 4.0) |] else [||])
      ~ring_size:8 ~seed:42
  in
  Alcotest.(check bool) "same seed, same summary" true (go () = go ());
  let other =
    run_with
      ~config:(config ~fanout:8 ~read_frac:0.9)
      ~paused:(fun id -> if id = 2 then [| (3.0, 4.0) |] else [||])
      ~ring_size:8 ~seed:43
  in
  Alcotest.(check bool) "different seed differs" true (go () <> other)

(* A node paused for the whole session: hinted handoff redirects its
   writes to a healthy successor (storing hints) and the write quorum
   still completes every update. *)
let test_hinted_handoff_masks_paused_replica () =
  let paused id = if id = 0 then [| (0.0, 30.0) |] else [||] in
  let s =
    run_with
      ~config:(config ~fanout:1 ~read_frac:0.0)
      ~paused ~ring_size:6 ~seed:7
  in
  Alcotest.(check bool) "hints stored" true (s.Coordinator.hints > 0);
  Alcotest.(check int) "sloppy quorum completes all writes" 0
    s.Coordinator.failed;
  let off =
    run_with
      ~config:
        { (config ~fanout:1 ~read_frac:0.0) with Coordinator.hinted_handoff = false }
      ~paused ~ring_size:6 ~seed:7
  in
  Alcotest.(check int) "no handoff, no hints" 0 off.Coordinator.hints

(* Reads stuck behind a paused primary: a 20 ms hedge races the next
   replica and wins, pulling the tail back to service scale. *)
let test_hedging_rescues_paused_reads () =
  let paused id = if id = 0 then [| (2.0, 8.0) |] else [||] in
  let hedge_on =
    {
      (config ~fanout:4 ~read_frac:1.0) with
      Coordinator.resilience =
        Session.Resilience.Custom
          ({ Resilient.none with Resilient.hedge_ms = 20.0 }, Gateway.unbounded);
      hedge = true;
    }
  in
  let hedged = run_with ~config:hedge_on ~paused ~ring_size:6 ~seed:19 in
  let plain =
    run_with ~config:(config ~fanout:4 ~read_frac:1.0) ~paused ~ring_size:6
      ~seed:19
  in
  Alcotest.(check bool) "hedges fired" true (hedged.Coordinator.hedges > 0);
  Alcotest.(check bool) "hedges won" true (hedged.Coordinator.hedge_wins > 0);
  Alcotest.(check int) "plain never hedges" 0 plain.Coordinator.hedges;
  Alcotest.(check bool)
    (Printf.sprintf "hedging cuts the tail (%.1f vs %.1f ms)"
       hedged.Coordinator.p999_ms plain.Coordinator.p999_ms)
    true
    (hedged.Coordinator.p999_ms < plain.Coordinator.p999_ms)

(* --- grid determinism across worker counts --------------------------- *)

(* The experiment contract: the rendered artifact is a pure function of
   the seeds, whatever the pool fan-out.  A reduced grid keeps the three
   runs cheap. *)
let test_grid_jobs_identity () =
  let render jobs =
    Gcperf.Exp_cluster.render
      (Gcperf.Exp_cluster.run_grid ~scope:Gcperf.Scope.ci ~jobs
         ~ring_sizes:[ 4 ] ~fanouts:[ 2 ] ())
  in
  let j1 = render 1 in
  Alcotest.(check string) "jobs 2 matches jobs 1" j1 (render 2);
  Alcotest.(check string) "jobs 4 matches jobs 1" j1 (render 4)

let () =
  ignore int_array;
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest prop_replicas_distinct_and_stable;
          QCheck_alcotest.to_alcotest prop_grow_moves_little;
          Alcotest.test_case "rebalance fraction" `Quick
            test_rebalance_fraction;
          Alcotest.test_case "successor skips avoided" `Quick
            test_successor_skips_avoided;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "healthy ring all ok" `Quick
            test_healthy_ring_all_ok;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "hinted handoff" `Quick
            test_hinted_handoff_masks_paused_replica;
          Alcotest.test_case "hedged reads" `Quick
            test_hedging_rescues_paused_reads;
        ] );
      ( "grid",
        [
          Alcotest.test_case "jobs identity" `Slow test_grid_jobs_identity;
        ] );
    ]
