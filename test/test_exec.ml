(* The worker pool: ordering, edge cases, deterministic exception
   propagation, and the determinism contract end to end — parallel
   artifacts byte-identical to sequential ones. *)

module Pool = Gcperf_exec.Pool
module E = Gcperf.Experiments
module Telemetry = Gcperf_telemetry.Telemetry
module Sink = Gcperf_telemetry.Sink
module Span = Gcperf_telemetry.Span

(* --- map_cells semantics ------------------------------------------- *)

let test_ordering_qcheck =
  QCheck.Test.make ~count:200
    ~name:"map_cells = Array.map for every jobs count"
    QCheck.(pair (list small_int) (int_range 0 8))
    (fun (l, jobs) ->
      let cells = Array.of_list l in
      let f x = (2 * x) + 1 in
      Pool.map_cells ~jobs f cells = Array.map f cells)

let test_edge_cases () =
  Alcotest.(check (array int)) "empty input" [||]
    (Pool.map_cells ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "jobs > cells" [| 0; 2; 4 |]
    (Pool.map_cells ~jobs:64 (fun x -> 2 * x) [| 0; 1; 2 |]);
  Alcotest.(check (array int)) "jobs = 0 falls back to default" [| 1; 2 |]
    (Pool.map_cells ~jobs:0 (fun x -> x + 1) [| 0; 1 |]);
  Alcotest.(check (list int)) "map_list mirrors map_cells" [ 10; 20; 30 ]
    (Pool.map_list ~jobs:2 (fun x -> 10 * x) [ 1; 2; 3 ])

let test_default_jobs () =
  Alcotest.(check bool) "default jobs is positive" true
    (Pool.default_jobs () >= 1)

(* Whatever the schedule, the raised exception is the one the sequential
   run would raise: the lowest failing cell's. *)
let test_exception_lowest_index () =
  let f i = if i mod 5 = 2 then failwith (string_of_int i) else i in
  List.iter
    (fun jobs ->
      for _ = 1 to 20 do
        match Pool.map_cells ~jobs f (Array.init 24 (fun i -> i)) with
        | _ -> Alcotest.fail "expected an exception"
        | exception Failure msg ->
            Alcotest.(check string)
              (Printf.sprintf "lowest failing cell wins (jobs=%d)" jobs)
              "2" msg
      done)
    [ 1; 2; 4; 8 ]

(* --- parallel-vs-sequential artifact identity ---------------------- *)

let test_artifact_identity () =
  let scope = Gcperf.Scope.ci in
  let render name jobs =
    match E.artifact ~scope ~jobs name with
    | Some a -> Gcperf.Artifact.render a `Json
    | None -> Alcotest.fail ("unknown artifact " ^ name)
  in
  List.iter
    (fun name ->
      let sequential = render name 1 in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s byte-identical at jobs=%d" name jobs)
            sequential (render name jobs))
        [ 2; 4 ])
    [ "table2"; "table3"; "fig3" ]

(* Same contract one layer down: intra-collection parallel tracing
   (--trace-jobs) must leave every artifact byte-identical, with the
   threshold lowered so the speculative kernel actually engages on
   ci-scope heaps. *)
let test_artifact_identity_trace_jobs () =
  let module Store = Gcperf_heap.Obj_store in
  let scope = Gcperf.Scope.ci in
  let render name =
    match E.artifact ~scope ~jobs:1 name with
    | Some a -> Gcperf.Artifact.render a `Json
    | None -> Alcotest.fail ("unknown artifact " ^ name)
  in
  let saved_domains = Store.default_trace_domains () in
  let saved_threshold = Store.par_trace_threshold () in
  Fun.protect
    ~finally:(fun () ->
      Store.set_default_trace_domains saved_domains;
      Store.set_par_trace_threshold saved_threshold)
    (fun () ->
      List.iter
        (fun name ->
          Store.set_default_trace_domains 1;
          let sequential = render name in
          Store.set_par_trace_threshold 16;
          List.iter
            (fun domains ->
              Store.set_default_trace_domains domains;
              Alcotest.(check string)
                (Printf.sprintf "%s byte-identical at trace-jobs=%d" name
                   domains)
                sequential (render name))
            [ 2; 4 ])
        [ "table2"; "fig3" ])

(* The full determinism matrix: cell fan-out (--jobs) crossed with the
   intra-collection kernels (--gc-jobs, which parallelises both the
   trace and the plan/move relocation).  Both engagement thresholds are
   lowered so ci-scope heaps actually exercise the crews, and every
   ci-scope artifact must come back byte-identical to the sequential
   render at each of the nine combinations. *)
let test_artifact_identity_matrix () =
  let module Store = Gcperf_heap.Obj_store in
  let scope = Gcperf.Scope.ci in
  let render name jobs =
    match E.artifact ~scope ~jobs name with
    | Some a -> Gcperf.Artifact.render a `Json
    | None -> Alcotest.fail ("unknown artifact " ^ name)
  in
  let saved_domains = Store.default_gc_domains () in
  let saved_trace = Store.par_trace_threshold () in
  let saved_move = Store.par_move_threshold () in
  Fun.protect
    ~finally:(fun () ->
      Store.set_default_gc_domains saved_domains;
      Store.set_par_trace_threshold saved_trace;
      Store.set_par_move_threshold saved_move)
    (fun () ->
      List.iter
        (fun name ->
          Store.set_default_gc_domains 1;
          let sequential = render name 1 in
          Store.set_par_trace_threshold 16;
          Store.set_par_move_threshold 16;
          List.iter
            (fun (jobs, gc_jobs) ->
              Store.set_default_gc_domains gc_jobs;
              Alcotest.(check string)
                (Printf.sprintf "%s byte-identical at jobs=%d gc-jobs=%d"
                   name jobs gc_jobs)
                sequential (render name jobs))
            [ (1, 2); (1, 4); (2, 1); (2, 2); (2, 4); (4, 1); (4, 2); (4, 4) ])
        [ "table2"; "table3"; "fig3"; "faults"; "cluster" ])

(* --- crew ----------------------------------------------------------- *)

let test_crew_basics () =
  let module Crew = Gcperf_exec.Crew in
  Alcotest.(check bool) "domains=1 is refused" false
    (Crew.try_with ~domains:1 (fun _ -> Alcotest.fail "must not run"));
  let hits = Atomic.make 0 in
  let nested = ref None in
  let ok =
    Crew.try_with ~domains:3 (fun crew ->
        Alcotest.(check bool) "size covers the request" true
          (Crew.size crew >= 3);
        (* The crew is exclusive: a holder asking again must be refused
           (the kernel's cue to run its sequential path). *)
        nested := Some (Crew.try_with ~domains:2 (fun _ -> ()));
        Crew.run crew (fun _slot -> Atomic.incr hits);
        Crew.run crew (fun _slot -> Atomic.incr hits))
  in
  Alcotest.(check bool) "acquired" true ok;
  Alcotest.(check (option bool)) "reentry refused" (Some false) !nested;
  Alcotest.(check bool) "every slot ran, twice" true (Atomic.get hits >= 6)

(* --- deterministic telemetry merge --------------------------------- *)

let span ~kind ~duration_us =
  {
    Span.collector = "G1GC";
    kind;
    cause = "test";
    start_us = 0.0;
    duration_us;
    phases = [ (Span.Safepoint, 100.0); (Span.Copy, duration_us -. 100.0) ];
    sub = [];
    young_before = 64;
    young_after = 4;
    old_before = 16;
    old_after = 17;
    promoted = 1;
  }

let test_merge_matches_sequential () =
  let spans =
    [
      span ~kind:"young" ~duration_us:1000.0;
      span ~kind:"young" ~duration_us:2000.0;
      span ~kind:"full" ~duration_us:9000.0;
      span ~kind:"young" ~duration_us:3000.0;
    ]
  in
  (* Sequential reference: every span into one registry, in order. *)
  let whole = Telemetry.create ~enabled:true () in
  List.iter (Telemetry.record_span whole) spans;
  (* Two per-worker sinks, merged back in cell order. *)
  let w0 = Telemetry.create ~enabled:true () in
  let w1 = Telemetry.create ~enabled:true () in
  List.iteri
    (fun i s -> Telemetry.record_span (if i < 2 then w0 else w1) s)
    spans;
  let merged = Telemetry.create ~enabled:true () in
  Telemetry.merge_into ~into:merged w0;
  Telemetry.merge_into ~into:merged w1;
  Alcotest.(check string) "merged summary = sequential summary"
    (Sink.summary_json whole) (Sink.summary_json merged);
  Alcotest.(check string) "merged trace = sequential trace"
    (Sink.trace_jsonl whole) (Sink.trace_jsonl merged)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          QCheck_alcotest.to_alcotest test_ordering_qcheck;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_lowest_index;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "artifact identity jobs=1/2/4" `Slow
            test_artifact_identity;
          Alcotest.test_case "artifact identity trace-jobs=1/2/4" `Slow
            test_artifact_identity_trace_jobs;
          Alcotest.test_case "artifact identity jobs x gc-jobs matrix" `Slow
            test_artifact_identity_matrix;
          Alcotest.test_case "crew basics" `Quick test_crew_basics;
          Alcotest.test_case "telemetry merge" `Quick
            test_merge_matches_sequential;
        ] );
    ]
