(* Tests for the hardware model: topology, speedup law, safepoint and
   allocation costs. *)

module Machine = Gcperf_machine.Machine

let server = Machine.paper_server ()
let client = Machine.paper_client ()

let test_topology () =
  Alcotest.(check int) "48 cores" 48 (Machine.cores server);
  Alcotest.(check int) "8 NUMA nodes" 8 (Machine.numa_nodes server.Machine.topology);
  Alcotest.(check int) "16-core client" 16 (Machine.cores client)

let test_speedup_basics () =
  Alcotest.(check (float 1e-9)) "1 worker" 1.0 (Machine.parallel_speedup server 1);
  let s2 = Machine.parallel_speedup server 2 in
  Alcotest.(check bool) "2 workers sublinear" true (s2 > 1.0 && s2 < 2.0)

let test_speedup_monotone () =
  let prev = ref 0.0 in
  for n = 1 to 48 do
    let s = Machine.parallel_speedup server n in
    Alcotest.(check bool) "monotone nondecreasing" true (s >= !prev -. 1e-9);
    Alcotest.(check bool) "below linear" true (s <= float_of_int n +. 1e-9);
    prev := s
  done

let test_speedup_numa_penalty () =
  (* Crossing the 6-core NUMA node must cost: the marginal speedup of the
     7th worker is far below that of the 2nd. *)
  let d n = Machine.parallel_speedup server (n + 1) -. Machine.parallel_speedup server n in
  Alcotest.(check bool) "NUMA knee" true (d 6 < d 1 /. 2.0)

let test_safepoint_grows () =
  let t10 = Machine.time_to_safepoint server ~mutator_threads:10 in
  let t100 = Machine.time_to_safepoint server ~mutator_threads:100 in
  Alcotest.(check bool) "grows with threads" true (t100 > t10)

let test_phase_us () =
  let small = Machine.phase_us server ~rate:1000.0 ~workers:1 ~bytes:1_000_000 in
  Alcotest.(check bool) "positive" true (small > 0.0);
  let par = Machine.phase_us server ~rate:1000.0 ~workers:8 ~bytes:1_000_000 in
  Alcotest.(check bool) "parallel faster" true (par < small)

let test_phase_locality_penalty () =
  (* Per-byte cost grows once the volume dwarfs the caches. *)
  let per_byte bytes =
    Machine.phase_us server ~rate:1000.0 ~workers:1 ~bytes /. float_of_int bytes
  in
  Alcotest.(check bool) "big volumes degrade" true
    (per_byte 32_000_000_000 > 2.0 *. per_byte 1_000_000);
  (* ... but the penalty saturates. *)
  let p64 = per_byte 64_000_000_000 and p640 = per_byte 640_000_000_000 in
  Alcotest.(check bool) "penalty capped" true (p640 < p64 *. 1.5)

let test_alloc_overhead_tlab_vs_shared () =
  let tlab =
    Machine.alloc_overhead_us server ~tlab:true ~threads:48 ~allocations:1000
      ~bytes:100_000_000 ~tlab_bytes:(256 * 1024)
  in
  let shared =
    Machine.alloc_overhead_us server ~tlab:false ~threads:48 ~allocations:1000
      ~bytes:100_000_000 ~tlab_bytes:(256 * 1024)
  in
  Alcotest.(check bool) "both positive" true (tlab > 0.0 && shared > 0.0);
  Alcotest.(check bool) "contended shared path costs more" true (shared > tlab)

let test_alloc_contention_grows () =
  let at threads =
    Machine.alloc_overhead_us server ~tlab:false ~threads ~allocations:1000
      ~bytes:1_000_000 ~tlab_bytes:(256 * 1024)
  in
  Alcotest.(check bool) "more threads, more contention" true (at 48 > at 1)

let prop_phase_additive_bound =
  (* Splitting a phase in two cannot be slower than doing it at once
     (the penalty grows with volume). *)
  QCheck.Test.make ~name:"phase cost superadditive" ~count:100
    QCheck.(pair (int_range 1 1_000_000_000) (int_range 1 1_000_000_000))
    (fun (a, b) ->
      let f bytes = Machine.phase_us server ~rate:700.0 ~workers:4 ~bytes in
      f a +. f b <= f (a + b) +. 1e-6)

let () =
  Alcotest.run "machine"
    [
      ( "machine",
        [
          Alcotest.test_case "topology" `Quick test_topology;
          Alcotest.test_case "speedup basics" `Quick test_speedup_basics;
          Alcotest.test_case "speedup monotone" `Quick test_speedup_monotone;
          Alcotest.test_case "NUMA penalty" `Quick test_speedup_numa_penalty;
          Alcotest.test_case "safepoint grows" `Quick test_safepoint_grows;
          Alcotest.test_case "phase cost" `Quick test_phase_us;
          Alcotest.test_case "locality penalty" `Quick test_phase_locality_penalty;
          Alcotest.test_case "tlab vs shared alloc" `Quick test_alloc_overhead_tlab_vs_shared;
          Alcotest.test_case "contention grows" `Quick test_alloc_contention_grows;
          QCheck_alcotest.to_alcotest prop_phase_additive_bound;
        ] );
    ]
