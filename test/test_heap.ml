(* Tests for the heap substrate: object store, generational layout with
   card table, and the G1 region layout with remembered sets. *)

module Vec = Gcperf_util.Int_vec
module Os = Gcperf_heap.Obj_store
module Gh = Gcperf_heap.Gen_heap
module Rh = Gcperf_heap.Region_heap

let mb = 1024 * 1024

(* --- Obj_store ------------------------------------------------------ *)

let test_store_alloc_free () =
  let s = Os.create () in
  let a = Os.alloc s ~size:100 ~loc:Os.Eden in
  let b = Os.alloc s ~size:200 ~loc:Os.Old in
  Alcotest.(check int) "live" 2 (Os.live_count s);
  Alcotest.(check bool) "a live" true (Os.is_live s a);
  Os.free s a;
  Alcotest.(check bool) "a freed" false (Os.is_live s a);
  Alcotest.(check int) "live after free" 1 (Os.live_count s);
  Alcotest.(check bool) "b untouched" true (Os.is_live s b)

let test_store_recycles_slots () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.free s a;
  let b = Os.alloc s ~size:20 ~loc:Os.Eden in
  Alcotest.(check int) "slot reused" a b;
  Alcotest.(check int) "capacity stable" 1 (Os.capacity s);
  let o = Os.get s b in
  Alcotest.(check int) "fresh size" 20 o.Os.size;
  Alcotest.(check int) "fresh age" 0 o.Os.age;
  Alcotest.(check int) "no stale refs" 0 (Vec.length o.Os.refs)

let test_store_double_free () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.free s a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Obj_store.free: double free") (fun () -> Os.free s a)

let test_store_stale_get () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.free s a;
  Alcotest.check_raises "stale get"
    (Invalid_argument "Obj_store.get: stale id") (fun () ->
      ignore (Os.get s a))

let test_store_refs () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  let b = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.add_ref s ~from:a ~to_:b;
  Os.add_ref s ~from:a ~to_:b;
  Alcotest.(check int) "two refs" 2 (Vec.length (Os.get s a).Os.refs);
  Os.remove_ref s ~from:a ~to_:b;
  Alcotest.(check int) "one removed" 1 (Vec.length (Os.get s a).Os.refs);
  Os.set_refs s a [];
  Alcotest.(check int) "cleared" 0 (Vec.length (Os.get s a).Os.refs)

let test_store_live_ids () =
  let s = Os.create () in
  let a = Os.alloc s ~size:1 ~loc:Os.Eden in
  let b = Os.alloc s ~size:1 ~loc:Os.Eden in
  let c = Os.alloc s ~size:1 ~loc:Os.Eden in
  Os.free s b;
  Alcotest.(check (list int)) "live ids" [ a; c ] (Vec.to_list (Os.live_ids s))

(* --- Gen_heap ------------------------------------------------------- *)

let make_gen () =
  let s = Os.create () in
  (s, Gh.create s ~heap_bytes:(100 * mb) ~young_bytes:(20 * mb) ())

let test_gen_layout () =
  let _, h = make_gen () in
  (* SurvivorRatio 8: eden = 8/10 young, survivors = 1/10 each. *)
  Alcotest.(check int) "eden" (16 * mb) h.Gh.eden_cap;
  Alcotest.(check int) "survivor" (2 * mb) h.Gh.survivor_cap;
  Alcotest.(check int) "old" (80 * mb) h.Gh.old_cap

let test_gen_bad_config () =
  let s = Os.create () in
  Alcotest.check_raises "young > heap"
    (Invalid_argument "Gen_heap.create: young generation larger than heap")
    (fun () -> ignore (Gh.create s ~heap_bytes:10 ~young_bytes:20 ()))

let test_gen_alloc_eden () =
  let _, h = make_gen () in
  (match Gh.alloc_eden h ~size:mb with
  | Some _ -> ()
  | None -> Alcotest.fail "eden alloc failed");
  Alcotest.(check int) "eden used" mb h.Gh.eden_used;
  Alcotest.(check int) "allocated counter" mb h.Gh.allocated_bytes;
  (* Fill it up. *)
  (match Gh.alloc_eden h ~size:(15 * mb) with
  | Some _ -> ()
  | None -> Alcotest.fail "should fit");
  Alcotest.(check bool) "now full" true (Gh.alloc_eden h ~size:mb = None)

let test_gen_alloc_old_direct () =
  let _, h = make_gen () in
  (match Gh.alloc_old_direct h ~size:(50 * mb) with
  | Some _ -> ()
  | None -> Alcotest.fail "old alloc failed");
  Alcotest.(check int) "old used" (50 * mb) h.Gh.old_used;
  Alcotest.(check bool) "old overflow rejected" true
    (Gh.alloc_old_direct h ~size:(40 * mb) = None)

let test_gen_card_table () =
  let s, h = make_gen () in
  let young = Option.get (Gh.alloc_eden h ~size:mb) in
  let old = Option.get (Gh.alloc_old_direct h ~size:mb) in
  (* young -> old: no card. *)
  Gh.record_store h ~parent:young ~child:old;
  Alcotest.(check int) "no card for young->old" 0 (Gh.dirty_count h);
  (* old -> young: card. *)
  Gh.record_store h ~parent:old ~child:young;
  Alcotest.(check bool) "card for old->young" true (Gh.card_is_dirty h old);
  (* Removing the young ref does not clean the card (card-table
     semantics)... *)
  Gh.remove_store h ~parent:old ~child:young;
  Alcotest.(check bool) "card sticky until refresh" true
    (Gh.card_is_dirty h old);
  (* ...but the next collection's refresh retires it. *)
  Gh.refresh_cards h ~extra:(Vec.create ());
  Alcotest.(check bool) "card retired by refresh" false
    (Gh.card_is_dirty h old);
  Alcotest.(check int) "no entries after refresh" 0 (Gh.dirty_count h);
  ignore s

let test_gen_invariants () =
  let _, h = make_gen () in
  ignore (Gh.alloc_eden h ~size:mb);
  ignore (Gh.alloc_old_direct h ~size:(2 * mb));
  (match Gh.check_invariants h with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Corrupt the accounting on purpose: the check must catch it. *)
  h.Gh.old_used <- h.Gh.old_used + 1;
  Alcotest.(check bool) "corruption detected" true
    (Result.is_error (Gh.check_invariants h))

let test_gen_compact_registries () =
  let s, h = make_gen () in
  let a = Option.get (Gh.alloc_eden h ~size:mb) in
  let _b = Option.get (Gh.alloc_eden h ~size:mb) in
  Os.free s a;
  h.Gh.eden_used <- h.Gh.eden_used - mb;
  Alcotest.(check int) "registry has stale id" 2 (Vec.length h.Gh.young_ids);
  Gh.compact_registries h;
  Alcotest.(check int) "stale dropped" 1 (Vec.length h.Gh.young_ids)

let prop_gen_accounting =
  (* Random eden/old allocations and frees keep accounting exact. *)
  QCheck.Test.make ~name:"gen heap accounting stays exact" ~count:100
    QCheck.(list (pair bool (int_range 1 (2 * mb))))
    (fun ops ->
      let s = Os.create () in
      let h = Gh.create s ~heap_bytes:(64 * mb) ~young_bytes:(16 * mb) () in
      let live = ref [] in
      List.iter
        (fun (to_old, size) ->
          let res =
            if to_old then Gh.alloc_old_direct h ~size
            else Gh.alloc_eden h ~size
          in
          match res with
          | Some id -> live := (id, to_old, size) :: !live
          | None -> (
              (* Free something to make room, mimicking a collection. *)
              match !live with
              | (id, was_old, sz) :: rest ->
                  Os.free s id;
                  if was_old then h.Gh.old_used <- h.Gh.old_used - sz
                  else h.Gh.eden_used <- h.Gh.eden_used - sz;
                  live := rest
              | [] -> ()))
        ops;
      Result.is_ok (Gh.check_invariants h))

(* --- Region_heap ---------------------------------------------------- *)

let make_region () =
  let s = Os.create () in
  (* 64 MB heap in 1 MB regions. *)
  (s, Rh.create s ~heap_bytes:(64 * mb) ~target_regions:64 ())

let test_region_create () =
  let _, r = make_region () in
  Alcotest.(check int) "region size" mb r.Rh.region_size;
  Alcotest.(check int) "64 regions" 64 (Array.length r.Rh.regions);
  Alcotest.(check int) "all free" 64 (Rh.free_regions r)

let test_region_alloc_young () =
  let _, r = make_region () in
  (match Rh.alloc_young r ~size:(mb / 2) with
  | Some _ -> ()
  | None -> Alcotest.fail "young alloc failed");
  Alcotest.(check int) "one eden region" 1 (Rh.count_kind r Rh.Eden);
  (* Spills into a second region when the first fills. *)
  (match Rh.alloc_young r ~size:(3 * mb / 4) with
  | Some _ -> ()
  | None -> Alcotest.fail "spill failed");
  Alcotest.(check int) "two eden regions" 2 (Rh.count_kind r Rh.Eden);
  Alcotest.(check bool) "invariants" true (Result.is_ok (Rh.check_invariants r))

let test_region_humongous () =
  let _, r = make_region () in
  Alcotest.(check bool) "humongous rule" true (Rh.is_humongous r ~size:(mb / 2 + 1));
  Alcotest.(check bool) "small is not" false (Rh.is_humongous r ~size:(mb / 4));
  let id =
    match Rh.alloc_humongous r ~size:(3 * mb + 100) with
    | Some id -> id
    | None -> Alcotest.fail "humongous alloc failed"
  in
  Alcotest.(check int) "4 regions claimed" 4 (Rh.count_kind r Rh.Humongous);
  Alcotest.(check bool) "invariants with humongous" true
    (Result.is_ok (Rh.check_invariants r));
  Rh.release_humongous r id;
  Alcotest.(check int) "all free again" 64 (Rh.free_regions r);
  Alcotest.(check bool) "invariants after release" true
    (Result.is_ok (Rh.check_invariants r))

let test_region_humongous_contiguous () =
  let _, r = make_region () in
  (* Claim regions 0 and 2, leaving a 1-region hole at 1: a 2-region
     humongous group must skip the hole. *)
  r.Rh.regions.(0).Rh.kind <- Rh.Old_region;
  r.Rh.regions.(2).Rh.kind <- Rh.Old_region;
  let id = Option.get (Rh.alloc_humongous r ~size:(2 * mb)) in
  let o = Os.get r.Rh.store id in
  (match o.Os.loc with
  | Os.Region idx ->
      Alcotest.(check bool) "starts after the hole" true (idx >= 3)
  | _ -> Alcotest.fail "not region-allocated");
  r.Rh.regions.(0).Rh.kind <- Rh.Free;
  r.Rh.regions.(2).Rh.kind <- Rh.Free

let test_region_remset () =
  let s, r = make_region () in
  let a = Option.get (Rh.alloc_young r ~size:1000) in
  (* Force b into another region. *)
  let reg = Option.get (Rh.take_free_region r Rh.Old_region) in
  let b = Option.get (Rh.alloc_in_region r reg ~size:1000) in
  Rh.record_store r ~parent:a ~child:b;
  let rb = Rh.region_of r (Os.get s b) in
  Alcotest.(check bool) "cross-region remset entry" true
    (Hashtbl.mem rb.Rh.remset a);
  (* Same-region stores do not pollute the remset. *)
  let c = Option.get (Rh.alloc_in_region r reg ~size:1000) in
  Rh.record_store r ~parent:b ~child:c;
  Alcotest.(check bool) "no same-region entry" false
    (Hashtbl.mem rb.Rh.remset b)

let test_region_release () =
  let s, r = make_region () in
  let a = Option.get (Rh.alloc_young r ~size:1000) in
  let reg = Rh.region_of r (Os.get s a) in
  Rh.release_region r reg;
  Alcotest.(check bool) "object freed" false (Os.is_live s a);
  Alcotest.(check int) "region free" 64 (Rh.free_regions r);
  Alcotest.(check bool) "invariants" true (Result.is_ok (Rh.check_invariants r))

let prop_region_invariants =
  QCheck.Test.make ~name:"region heap invariants under random traffic"
    ~count:60
    QCheck.(list (int_range 1 (2 * mb)))
    (fun sizes ->
      let s = Os.create () in
      let r = Rh.create s ~heap_bytes:(32 * mb) ~target_regions:32 () in
      List.iter
        (fun size ->
          if Rh.is_humongous r ~size then begin
            match Rh.alloc_humongous r ~size with
            | Some id when size mod 3 = 0 -> Rh.release_humongous r id
            | Some _ | None -> ()
          end
          else begin
            match Rh.alloc_young r ~size with
            | Some _ -> ()
            | None ->
                (* Release every eden region, as a young collection with
                   no survivors would. *)
                List.iter (fun reg -> Rh.release_region r reg) (Rh.eden_regions r)
          end)
        sizes;
      Result.is_ok (Rh.check_invariants r))

let () =
  Alcotest.run "heap"
    [
      ( "obj_store",
        [
          Alcotest.test_case "alloc/free" `Quick test_store_alloc_free;
          Alcotest.test_case "slot recycling" `Quick test_store_recycles_slots;
          Alcotest.test_case "double free" `Quick test_store_double_free;
          Alcotest.test_case "stale get" `Quick test_store_stale_get;
          Alcotest.test_case "refs" `Quick test_store_refs;
          Alcotest.test_case "live ids" `Quick test_store_live_ids;
        ] );
      ( "gen_heap",
        [
          Alcotest.test_case "layout" `Quick test_gen_layout;
          Alcotest.test_case "bad config" `Quick test_gen_bad_config;
          Alcotest.test_case "eden alloc" `Quick test_gen_alloc_eden;
          Alcotest.test_case "old direct alloc" `Quick test_gen_alloc_old_direct;
          Alcotest.test_case "card table" `Quick test_gen_card_table;
          Alcotest.test_case "invariants" `Quick test_gen_invariants;
          Alcotest.test_case "registry compaction" `Quick test_gen_compact_registries;
          QCheck_alcotest.to_alcotest prop_gen_accounting;
        ] );
      ( "region_heap",
        [
          Alcotest.test_case "create" `Quick test_region_create;
          Alcotest.test_case "young alloc" `Quick test_region_alloc_young;
          Alcotest.test_case "humongous" `Quick test_region_humongous;
          Alcotest.test_case "humongous contiguity" `Quick test_region_humongous_contiguous;
          Alcotest.test_case "remset" `Quick test_region_remset;
          Alcotest.test_case "release" `Quick test_region_release;
          QCheck_alcotest.to_alcotest prop_region_invariants;
        ] );
    ]
