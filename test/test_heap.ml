(* Tests for the heap substrate: object store, generational layout with
   card table, and the G1 region layout with remembered sets. *)

module Vec = Gcperf_util.Int_vec
module Os = Gcperf_heap.Obj_store
module Gh = Gcperf_heap.Gen_heap
module Rh = Gcperf_heap.Region_heap

let mb = 1024 * 1024

(* --- Obj_store ------------------------------------------------------ *)

let test_store_alloc_free () =
  let s = Os.create () in
  let a = Os.alloc s ~size:100 ~loc:Os.Eden in
  let b = Os.alloc s ~size:200 ~loc:Os.Old in
  Alcotest.(check int) "live" 2 (Os.live_count s);
  Alcotest.(check bool) "a live" true (Os.is_live s a);
  Os.free s a;
  Alcotest.(check bool) "a freed" false (Os.is_live s a);
  Alcotest.(check int) "live after free" 1 (Os.live_count s);
  Alcotest.(check bool) "b untouched" true (Os.is_live s b)

let test_store_recycles_slots () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.free s a;
  let b = Os.alloc s ~size:20 ~loc:Os.Eden in
  Alcotest.(check int) "slot reused" a b;
  Alcotest.(check int) "capacity stable" 1 (Os.capacity s);
  Alcotest.(check int) "fresh size" 20 (Os.size s b);
  Alcotest.(check int) "fresh age" 0 (Os.age s b);
  Alcotest.(check int) "no stale refs" 0 (Os.ref_count s b)

let test_store_double_free () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.free s a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Obj_store.free: double free") (fun () -> Os.free s a)

let test_store_stale_get () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.free s a;
  Alcotest.check_raises "stale get"
    (Invalid_argument "Obj_store.get: stale id") (fun () ->
      Os.check_live s a)

let test_store_refs () =
  let s = Os.create () in
  let a = Os.alloc s ~size:10 ~loc:Os.Eden in
  let b = Os.alloc s ~size:10 ~loc:Os.Eden in
  Os.add_ref s ~from:a ~to_:b;
  Os.add_ref s ~from:a ~to_:b;
  Alcotest.(check int) "two refs" 2 (Os.ref_count s a);
  Os.remove_ref s ~from:a ~to_:b;
  Alcotest.(check int) "one removed" 1 (Os.ref_count s a);
  Os.set_refs s a [||];
  Alcotest.(check int) "cleared" 0 (Os.ref_count s a)

let test_store_live_ids () =
  let s = Os.create () in
  let a = Os.alloc s ~size:1 ~loc:Os.Eden in
  let b = Os.alloc s ~size:1 ~loc:Os.Eden in
  let c = Os.alloc s ~size:1 ~loc:Os.Eden in
  Os.free s b;
  Alcotest.(check (list int)) "live ids" [ a; c ] (Vec.to_list (Os.live_ids s))

(* --- SoA store vs reference model ----------------------------------- *)

(* The struct-of-arrays columns and the CSR edge arena (slice relocation,
   slot recycling, arena rebuild) must be observationally equivalent to
   the obvious record-per-object implementation under any interleaving of
   mutator operations.  The model mirrors [remove_ref]'s swap-with-last
   exactly: reference *order* is part of the contract, since trace
   discovery order (and every artifact downstream) depends on it. *)
type model_obj = {
  mutable m_size : int;
  mutable m_loc : Os.location;
  mutable m_refs : int array;
}

let prop_store_model =
  QCheck.Test.make ~name:"SoA store matches a record-based model" ~count:300
    QCheck.(list (triple (int_bound 5) (int_bound 999) (int_bound 999)))
    (fun ops ->
      let s = Os.create () in
      let model : (int, model_obj) Hashtbl.t = Hashtbl.create 64 in
      let live = ref [] in
      let pick n = List.nth !live (n mod List.length !live) in
      let model_young id =
        match Hashtbl.find_opt model id with
        | Some { m_loc = Os.Eden | Os.Survivor; _ } -> true
        | Some _ | None -> false
      in
      List.iter
        (fun (tag, a, b) ->
          match tag with
          | 0 ->
              let size = (a mod 1000) + 1 in
              let loc =
                match b mod 4 with
                | 0 -> Os.Eden
                | 1 -> Os.Survivor
                | 2 -> Os.Old
                | _ -> Os.Region (b mod 8)
              in
              let id = Os.alloc s ~size ~loc in
              Hashtbl.replace model id
                { m_size = size; m_loc = loc; m_refs = [||] };
              live := id :: !live
          | 1 when !live <> [] ->
              let id = pick a in
              Os.free s id;
              let m = Hashtbl.find model id in
              m.m_loc <- Os.Nowhere;
              m.m_refs <- [||];
              live := List.filter (fun x -> x <> id) !live
          | 2 when !live <> [] ->
              let from = pick a and to_ = pick b in
              Os.add_ref s ~from ~to_;
              let m = Hashtbl.find model from in
              m.m_refs <- Array.append m.m_refs [| to_ |]
          | 3 when !live <> [] ->
              let from = pick a and to_ = pick b in
              Os.remove_ref s ~from ~to_;
              let m = Hashtbl.find model from in
              let n = Array.length m.m_refs in
              let rec find i =
                if i >= n then -1
                else if m.m_refs.(i) = to_ then i
                else find (i + 1)
              in
              let i = find 0 in
              if i >= 0 then begin
                let refs = Array.sub m.m_refs 0 (n - 1) in
                if i < n - 1 then refs.(i) <- m.m_refs.(n - 1);
                m.m_refs <- refs
              end
          | 4 when !live <> [] ->
              let from = pick a in
              let refs = Array.init (b mod 5) (fun i -> pick (a + i)) in
              Os.set_refs s from refs;
              (Hashtbl.find model from).m_refs <- Array.copy refs
          | 5 when !live <> [] ->
              (* The incremental young-ref counter may drift when children
                 die; [recount_young_refs] resynchronises it, after which
                 it must equal the model's on-demand count. *)
              let id = pick a in
              Os.recount_young_refs s id;
              let m = Hashtbl.find model id in
              let expect =
                Array.fold_left
                  (fun acc r -> if model_young r then acc + 1 else acc)
                  0 m.m_refs
              in
              if Os.young_refs s id <> expect then
                QCheck.Test.fail_reportf "young_refs %d: store %d model %d" id
                  (Os.young_refs s id) expect
          | _ -> ())
        ops;
      let sorted_live = List.sort compare !live in
      if Os.live_count s <> List.length !live then
        QCheck.Test.fail_report "live_count mismatch";
      if Vec.to_list (Os.live_ids s) <> sorted_live then
        QCheck.Test.fail_report "live_ids mismatch";
      List.iter
        (fun id ->
          let m = Hashtbl.find model id in
          if Os.size s id <> m.m_size then
            QCheck.Test.fail_reportf "size mismatch for %d" id;
          if Os.loc s id <> m.m_loc then
            QCheck.Test.fail_reportf "loc mismatch for %d" id;
          if Os.refs_list s id <> Array.to_list m.m_refs then
            QCheck.Test.fail_reportf "refs mismatch for %d" id)
        sorted_live;
      true)

(* --- parallel trace determinism -------------------------------------- *)

(* The speculative-scan/replay kernel must reproduce the sequential DFS
   marked vector *exactly* — same ids, same discovery order — at any
   domain count.  Graphs come from a seeded LCG: cycles, duplicate edges,
   dangling references to freed objects, every location kind. *)
let build_trace_graph seed0 =
  let s = Os.create () in
  let state = ref (seed0 land 0x3FFFFFFF) in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n
  in
  let n = 200 + rand 200 in
  let ids =
    Array.init n (fun _ ->
        let loc =
          match rand 5 with
          | 0 -> Os.Eden
          | 1 -> Os.Survivor
          | 2 -> Os.Old
          | 3 -> Os.Region (rand 4)
          | _ -> Os.Region (4 + rand 4)
        in
        Os.alloc s ~size:(1 + rand 512) ~loc)
  in
  Array.iter
    (fun id ->
      for _ = 1 to rand 5 do
        Os.add_ref s ~from:id ~to_:ids.(rand n)
      done)
    ids;
  (* Free a slice so traces meet dangling references and recycled slots. *)
  Array.iter (fun id -> if rand 10 = 0 then Os.free s id) ids;
  let seeds =
    Array.to_list ids
    |> List.filter (fun id -> Os.is_live s id && rand 3 = 0)
  in
  (s, seeds)

let run_trace s ~pred ~domains seeds =
  let marked = Vec.create () and stack = Vec.create () in
  Os.begin_trace s;
  List.iter
    (fun id ->
      if not (Os.is_marked s id) then begin
        Os.mark s id;
        Vec.push marked id;
        Vec.push stack id
      end)
    seeds;
  Os.finish_trace s ~pred ~marked ~stack ~domains;
  Alcotest.(check int) "stack drained" 0 (Vec.length stack);
  Vec.to_list marked

let prop_parallel_trace =
  QCheck.Test.make ~count:60
    ~name:"parallel trace replays the sequential order exactly"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed0, domains) ->
      let flags = Array.init 8 (fun i -> i mod 2 = seed0 mod 2) in
      let preds =
        [ Os.Trace_young; Os.Trace_live; Os.Trace_regions flags ]
      in
      let saved = Os.par_trace_threshold () in
      Fun.protect
        ~finally:(fun () -> Os.set_par_trace_threshold saved)
        (fun () ->
          List.for_all
            (fun pred ->
              let s, seeds = build_trace_graph seed0 in
              Os.set_par_trace_threshold 1;
              let par = run_trace s ~pred ~domains seeds in
              Os.set_par_trace_threshold max_int;
              let seq = run_trace s ~pred ~domains:1 seeds in
              par = seq)
            preds))

(* --- parallel relocation determinism --------------------------------- *)

(* The plan/move relocation kernel must land every object at exactly the
   placement the sequential apply produces — the plan already fixed the
   destinations, so the crew only changes who writes the columns.  Two
   stores built from one seed are identical; plan the same seeded
   relocation on both and diff every live object's location and age. *)
let prop_parallel_relocate =
  QCheck.Test.make ~count:60
    ~name:"parallel relocation matches the sequential placement exactly"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed0, domains) ->
      let plan_moves s =
        let state = ref ((seed0 * 31) land 0x3FFFFFFF) in
        let rand n =
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state mod n
        in
        Os.plan_clear s;
        Os.iter_live s (fun id ->
            match rand 6 with
            | 0 -> Os.plan_push_old s id ~age:(Os.age s id)
            | 1 -> Os.plan_push_survivor s id ~age:(Os.age s id + 1)
            | 2 -> Os.plan_push_eden s id ~age:0
            | 3 -> Os.plan_push_region s id ~region:(rand 8) ~age:(rand 16)
            | _ -> ())
      in
      let snapshot s =
        let acc = ref [] in
        Os.iter_live s (fun id ->
            acc := (id, Os.loc_code s id, Os.region_index s id, Os.age s id)
                   :: !acc);
        !acc
      in
      let saved = Os.par_move_threshold () in
      Fun.protect
        ~finally:(fun () -> Os.set_par_move_threshold saved)
        (fun () ->
          let s_par, _ = build_trace_graph seed0 in
          let s_seq, _ = build_trace_graph seed0 in
          plan_moves s_par;
          plan_moves s_seq;
          let planned = Os.plan_length s_par in
          Os.set_par_move_threshold 1;
          let moved_par = Os.finish_relocate s_par ~domains in
          Os.set_par_move_threshold max_int;
          let moved_seq = Os.finish_relocate s_seq ~domains:1 in
          moved_par = planned && moved_seq = planned
          && snapshot s_par = snapshot s_seq))

(* --- Gen_heap ------------------------------------------------------- *)

let make_gen () =
  let s = Os.create () in
  (s, Gh.create s ~heap_bytes:(100 * mb) ~young_bytes:(20 * mb) ())

let test_gen_layout () =
  let _, h = make_gen () in
  (* SurvivorRatio 8: eden = 8/10 young, survivors = 1/10 each. *)
  Alcotest.(check int) "eden" (16 * mb) h.Gh.eden_cap;
  Alcotest.(check int) "survivor" (2 * mb) h.Gh.survivor_cap;
  Alcotest.(check int) "old" (80 * mb) h.Gh.old_cap

let test_gen_bad_config () =
  let s = Os.create () in
  Alcotest.check_raises "young > heap"
    (Invalid_argument "Gen_heap.create: young generation larger than heap")
    (fun () -> ignore (Gh.create s ~heap_bytes:10 ~young_bytes:20 ()))

let test_gen_alloc_eden () =
  let _, h = make_gen () in
  (match Gh.alloc_eden h ~size:mb with
  | Some _ -> ()
  | None -> Alcotest.fail "eden alloc failed");
  Alcotest.(check int) "eden used" mb h.Gh.eden_used;
  Alcotest.(check int) "allocated counter" mb h.Gh.allocated_bytes;
  (* Fill it up. *)
  (match Gh.alloc_eden h ~size:(15 * mb) with
  | Some _ -> ()
  | None -> Alcotest.fail "should fit");
  Alcotest.(check bool) "now full" true (Gh.alloc_eden h ~size:mb = None)

let test_gen_alloc_old_direct () =
  let _, h = make_gen () in
  (match Gh.alloc_old_direct h ~size:(50 * mb) with
  | Some _ -> ()
  | None -> Alcotest.fail "old alloc failed");
  Alcotest.(check int) "old used" (50 * mb) h.Gh.old_used;
  Alcotest.(check bool) "old overflow rejected" true
    (Gh.alloc_old_direct h ~size:(40 * mb) = None)

let test_gen_card_table () =
  let s, h = make_gen () in
  let young = Option.get (Gh.alloc_eden h ~size:mb) in
  let old = Option.get (Gh.alloc_old_direct h ~size:mb) in
  (* young -> old: no card. *)
  Gh.record_store h ~parent:young ~child:old;
  Alcotest.(check int) "no card for young->old" 0 (Gh.dirty_count h);
  (* old -> young: card. *)
  Gh.record_store h ~parent:old ~child:young;
  Alcotest.(check bool) "card for old->young" true (Gh.card_is_dirty h old);
  (* Removing the young ref does not clean the card (card-table
     semantics)... *)
  Gh.remove_store h ~parent:old ~child:young;
  Alcotest.(check bool) "card sticky until refresh" true
    (Gh.card_is_dirty h old);
  (* ...but the next collection's refresh retires it. *)
  Gh.refresh_cards h ~extra:(Vec.create ());
  Alcotest.(check bool) "card retired by refresh" false
    (Gh.card_is_dirty h old);
  Alcotest.(check int) "no entries after refresh" 0 (Gh.dirty_count h);
  ignore s

let test_gen_invariants () =
  let _, h = make_gen () in
  ignore (Gh.alloc_eden h ~size:mb);
  ignore (Gh.alloc_old_direct h ~size:(2 * mb));
  (match Gh.check_invariants h with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Corrupt the accounting on purpose: the check must catch it. *)
  h.Gh.old_used <- h.Gh.old_used + 1;
  Alcotest.(check bool) "corruption detected" true
    (Result.is_error (Gh.check_invariants h))

let test_gen_compact_registries () =
  let s, h = make_gen () in
  let a = Option.get (Gh.alloc_eden h ~size:mb) in
  let _b = Option.get (Gh.alloc_eden h ~size:mb) in
  Os.free s a;
  h.Gh.eden_used <- h.Gh.eden_used - mb;
  Alcotest.(check int) "registry has stale id" 2 (Vec.length h.Gh.young_ids);
  Gh.compact_registries h;
  Alcotest.(check int) "stale dropped" 1 (Vec.length h.Gh.young_ids)

let prop_gen_accounting =
  (* Random eden/old allocations and frees keep accounting exact. *)
  QCheck.Test.make ~name:"gen heap accounting stays exact" ~count:100
    QCheck.(list (pair bool (int_range 1 (2 * mb))))
    (fun ops ->
      let s = Os.create () in
      let h = Gh.create s ~heap_bytes:(64 * mb) ~young_bytes:(16 * mb) () in
      let live = ref [] in
      List.iter
        (fun (to_old, size) ->
          let res =
            if to_old then Gh.alloc_old_direct h ~size
            else Gh.alloc_eden h ~size
          in
          match res with
          | Some id -> live := (id, to_old, size) :: !live
          | None -> (
              (* Free something to make room, mimicking a collection. *)
              match !live with
              | (id, was_old, sz) :: rest ->
                  Os.free s id;
                  if was_old then h.Gh.old_used <- h.Gh.old_used - sz
                  else h.Gh.eden_used <- h.Gh.eden_used - sz;
                  live := rest
              | [] -> ()))
        ops;
      Result.is_ok (Gh.check_invariants h))

(* --- Region_heap ---------------------------------------------------- *)

let make_region () =
  let s = Os.create () in
  (* 64 MB heap in 1 MB regions. *)
  (s, Rh.create s ~heap_bytes:(64 * mb) ~target_regions:64 ())

let test_region_create () =
  let _, r = make_region () in
  Alcotest.(check int) "region size" mb r.Rh.region_size;
  Alcotest.(check int) "64 regions" 64 (Array.length r.Rh.regions);
  Alcotest.(check int) "all free" 64 (Rh.free_regions r)

let test_region_alloc_young () =
  let _, r = make_region () in
  (match Rh.alloc_young r ~size:(mb / 2) with
  | Some _ -> ()
  | None -> Alcotest.fail "young alloc failed");
  Alcotest.(check int) "one eden region" 1 (Rh.count_kind r Rh.Eden);
  (* Spills into a second region when the first fills. *)
  (match Rh.alloc_young r ~size:(3 * mb / 4) with
  | Some _ -> ()
  | None -> Alcotest.fail "spill failed");
  Alcotest.(check int) "two eden regions" 2 (Rh.count_kind r Rh.Eden);
  Alcotest.(check bool) "invariants" true (Result.is_ok (Rh.check_invariants r))

let test_region_humongous () =
  let _, r = make_region () in
  Alcotest.(check bool) "humongous rule" true (Rh.is_humongous r ~size:(mb / 2 + 1));
  Alcotest.(check bool) "small is not" false (Rh.is_humongous r ~size:(mb / 4));
  let id =
    match Rh.alloc_humongous r ~size:(3 * mb + 100) with
    | Some id -> id
    | None -> Alcotest.fail "humongous alloc failed"
  in
  Alcotest.(check int) "4 regions claimed" 4 (Rh.count_kind r Rh.Humongous);
  Alcotest.(check bool) "invariants with humongous" true
    (Result.is_ok (Rh.check_invariants r));
  Rh.release_humongous r id;
  Alcotest.(check int) "all free again" 64 (Rh.free_regions r);
  Alcotest.(check bool) "invariants after release" true
    (Result.is_ok (Rh.check_invariants r))

let test_region_humongous_contiguous () =
  let _, r = make_region () in
  (* Claim regions 0 and 2, leaving a 1-region hole at 1: a 2-region
     humongous group must skip the hole. *)
  r.Rh.regions.(0).Rh.kind <- Rh.Old_region;
  r.Rh.regions.(2).Rh.kind <- Rh.Old_region;
  let id = Option.get (Rh.alloc_humongous r ~size:(2 * mb)) in
  (match Os.loc r.Rh.store id with
  | Os.Region idx ->
      Alcotest.(check bool) "starts after the hole" true (idx >= 3)
  | _ -> Alcotest.fail "not region-allocated");
  r.Rh.regions.(0).Rh.kind <- Rh.Free;
  r.Rh.regions.(2).Rh.kind <- Rh.Free

let test_region_remset () =
  let s, r = make_region () in
  let a = Option.get (Rh.alloc_young r ~size:1000) in
  (* Force b into another region. *)
  let reg = Option.get (Rh.take_free_region r Rh.Old_region) in
  let b = Option.get (Rh.alloc_in_region r reg ~size:1000) in
  Rh.record_store r ~parent:a ~child:b;
  let rb = Rh.region_of r b in
  ignore s;
  Alcotest.(check bool) "cross-region remset entry" true
    (Hashtbl.mem rb.Rh.remset a);
  (* Same-region stores do not pollute the remset. *)
  let c = Option.get (Rh.alloc_in_region r reg ~size:1000) in
  Rh.record_store r ~parent:b ~child:c;
  Alcotest.(check bool) "no same-region entry" false
    (Hashtbl.mem rb.Rh.remset b)

let test_region_release () =
  let s, r = make_region () in
  let a = Option.get (Rh.alloc_young r ~size:1000) in
  let reg = Rh.region_of r a in
  Rh.release_region r reg;
  Alcotest.(check bool) "object freed" false (Os.is_live s a);
  Alcotest.(check int) "region free" 64 (Rh.free_regions r);
  Alcotest.(check bool) "invariants" true (Result.is_ok (Rh.check_invariants r))

let prop_region_invariants =
  QCheck.Test.make ~name:"region heap invariants under random traffic"
    ~count:60
    QCheck.(list (int_range 1 (2 * mb)))
    (fun sizes ->
      let s = Os.create () in
      let r = Rh.create s ~heap_bytes:(32 * mb) ~target_regions:32 () in
      List.iter
        (fun size ->
          if Rh.is_humongous r ~size then begin
            match Rh.alloc_humongous r ~size with
            | Some id when size mod 3 = 0 -> Rh.release_humongous r id
            | Some _ | None -> ()
          end
          else begin
            match Rh.alloc_young r ~size with
            | Some _ -> ()
            | None ->
                (* Release every eden region, as a young collection with
                   no survivors would. *)
                List.iter (fun reg -> Rh.release_region r reg) (Rh.eden_regions r)
          end)
        sizes;
      Result.is_ok (Rh.check_invariants r))

let () =
  Alcotest.run "heap"
    [
      ( "obj_store",
        [
          Alcotest.test_case "alloc/free" `Quick test_store_alloc_free;
          Alcotest.test_case "slot recycling" `Quick test_store_recycles_slots;
          Alcotest.test_case "double free" `Quick test_store_double_free;
          Alcotest.test_case "stale get" `Quick test_store_stale_get;
          Alcotest.test_case "refs" `Quick test_store_refs;
          Alcotest.test_case "live ids" `Quick test_store_live_ids;
          QCheck_alcotest.to_alcotest prop_store_model;
          QCheck_alcotest.to_alcotest prop_parallel_trace;
          QCheck_alcotest.to_alcotest prop_parallel_relocate;
        ] );
      ( "gen_heap",
        [
          Alcotest.test_case "layout" `Quick test_gen_layout;
          Alcotest.test_case "bad config" `Quick test_gen_bad_config;
          Alcotest.test_case "eden alloc" `Quick test_gen_alloc_eden;
          Alcotest.test_case "old direct alloc" `Quick test_gen_alloc_old_direct;
          Alcotest.test_case "card table" `Quick test_gen_card_table;
          Alcotest.test_case "invariants" `Quick test_gen_invariants;
          Alcotest.test_case "registry compaction" `Quick test_gen_compact_registries;
          QCheck_alcotest.to_alcotest prop_gen_accounting;
        ] );
      ( "region_heap",
        [
          Alcotest.test_case "create" `Quick test_region_create;
          Alcotest.test_case "young alloc" `Quick test_region_alloc_young;
          Alcotest.test_case "humongous" `Quick test_region_humongous;
          Alcotest.test_case "humongous contiguity" `Quick test_region_humongous_contiguous;
          Alcotest.test_case "remset" `Quick test_region_remset;
          Alcotest.test_case "release" `Quick test_region_release;
          QCheck_alcotest.to_alcotest prop_region_invariants;
        ] );
    ]
