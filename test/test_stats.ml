(* Tests for the statistics library, including the paper's latency-bucket
   analysis (Tables 5-7). *)

module Stats = Gcperf_stats.Stats

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "empty" 0.0 (Stats.mean [||]);
  Alcotest.check feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_variance_stddev () =
  Alcotest.check feq "constant" 0.0 (Stats.variance [| 4.0; 4.0 |]);
  Alcotest.check feq "var" 2.0 (Stats.variance [| 1.0; 3.0; 1.0; 3.0; 2.0; 2.0 |] *. 3.0)

let test_rsd () =
  Alcotest.check feq "zero mean" 0.0 (Stats.rsd [| 1.0; -1.0 |]);
  (* [2;4]: mean 3, stddev 1 -> 33.33% *)
  let r = Stats.rsd [| 2.0; 4.0 |] in
  Alcotest.(check bool) "33.3%" true (Float.abs (r -. 33.3333333) < 1e-4)

let test_rsd_scale_invariant () =
  let xs = [| 3.0; 5.0; 8.0; 13.0 |] in
  let scaled = Array.map (fun x -> x *. 17.0) xs in
  Alcotest.(check bool) "scale invariant" true
    (Float.abs (Stats.rsd xs -. Stats.rsd scaled) < 1e-9)

let test_min_max_sum () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  Alcotest.check feq "min" (-1.0) lo;
  Alcotest.check feq "max" 7.0 hi;
  Alcotest.check feq "sum" 9.0 (Stats.sum [| 3.0; -1.0; 7.0 |]);
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.min_max: empty") (fun () ->
      ignore (Stats.min_max [||]))

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  Alcotest.check feq "p0" 10.0 (Stats.percentile xs 0.0);
  Alcotest.check feq "p50" 30.0 (Stats.percentile xs 50.0);
  Alcotest.check feq "p100" 50.0 (Stats.percentile xs 100.0);
  Alcotest.check feq "p25 interpolates" 20.0 (Stats.percentile xs 25.0);
  Alcotest.check feq "median" 30.0 (Stats.median xs)

let test_histogram () =
  let h = Stats.histogram ~buckets:4 ~lo:0.0 ~hi:4.0 [| 0.5; 1.5; 1.6; 3.9; -1.0; 7.0 |] in
  Alcotest.(check (array int)) "counts" [| 1; 2; 0; 1 |] h.Stats.counts;
  Alcotest.(check int) "underflow" 1 h.Stats.underflow;
  Alcotest.(check int) "overflow" 1 h.Stats.overflow;
  Alcotest.(check int) "total" 6 h.Stats.total

let test_cumsum () =
  Alcotest.(check (array (Alcotest.float 1e-9)))
    "cumsum" [| 1.0; 3.0; 6.0 |]
    (Stats.cumsum [| 1.0; 2.0; 3.0 |])

let test_top_k_by () =
  let xs = [ 5; 1; 9; 3; 9; 2 ] in
  Alcotest.(check (list int)) "top 3, order kept" [ 5; 9; 9 ]
    (Stats.top_k_by float_of_int 3 xs);
  Alcotest.(check (list int)) "k >= n" xs (Stats.top_k_by float_of_int 10 xs);
  Alcotest.(check (list int)) "k = 0" [] (Stats.top_k_by float_of_int 0 xs)

let test_latency_report_basic () =
  (* 8 fast points at 1ms, 2 slow GC-correlated points at 10ms. *)
  let points =
    Array.append
      (Array.make 8 (1.0, false))
      (Array.make 2 (10.0, true))
  in
  let r = Stats.latency_report points in
  Alcotest.(check bool) "avg = 2.8" true (Float.abs (r.Stats.avg_ms -. 2.8) < 1e-9);
  Alcotest.check feq "max" 10.0 r.Stats.max_ms;
  Alcotest.check feq "min" 1.0 r.Stats.min_ms;
  (* 1ms is below 0.5x-1.5x of 2.8 (1.4..4.2): none in band. *)
  Alcotest.check feq "band empty" 0.0 r.Stats.around_avg.Stats.pct_requests;
  (* >2x avg = >5.6: exactly the 2 GC points. *)
  (match r.Stats.above with
  | b :: _ ->
      Alcotest.check feq ">2x pct" 20.0 b.Stats.pct_requests;
      Alcotest.check feq ">2x all GC" 100.0 b.Stats.pct_gc
  | [] -> Alcotest.fail "expected >2x band")

let test_latency_report_empty_raises () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.latency_report: empty") (fun () ->
      ignore (Stats.latency_report [||]))

let prop_bands_monotone =
  (* The >2^n bands are nested, so request percentages must decrease. *)
  QCheck.Test.make ~name:"latency bands shrink" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (pair pos_float bool))
    (fun pts ->
      QCheck.assume (pts <> []);
      let pts = List.map (fun (l, g) -> (Float.min l 1e6, g)) pts in
      let r = Stats.latency_report (Array.of_list pts) in
      let rec decreasing = function
        | a :: (b :: _ as tl) ->
            a.Stats.pct_requests >= b.Stats.pct_requests -. 1e-9
            && decreasing tl
        | _ -> true
      in
      decreasing r.Stats.above)

let prop_band_bounds =
  QCheck.Test.make ~name:"band percentages within [0,100]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (pair pos_float bool))
    (fun pts ->
      QCheck.assume (pts <> []);
      let pts = List.map (fun (l, g) -> (Float.min l 1e6, g)) pts in
      let r = Stats.latency_report (Array.of_list pts) in
      let ok b =
        b.Stats.pct_requests >= 0.0
        && b.Stats.pct_requests <= 100.0
        && b.Stats.pct_gc >= 0.0
        && b.Stats.pct_gc <= 100.0
      in
      ok r.Stats.around_avg && List.for_all ok r.Stats.above)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) float)
    (fun xs ->
      QCheck.assume (List.for_all Float.is_finite xs);
      let arr = Array.of_list xs in
      Stats.percentile arr 25.0 <= Stats.percentile arr 75.0 +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
          Alcotest.test_case "rsd" `Quick test_rsd;
          Alcotest.test_case "rsd scale-invariant" `Quick test_rsd_scale_invariant;
          Alcotest.test_case "min/max/sum" `Quick test_min_max_sum;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "cumsum" `Quick test_cumsum;
          Alcotest.test_case "top_k_by" `Quick test_top_k_by;
        ] );
      ( "latency buckets",
        [
          Alcotest.test_case "basic report" `Quick test_latency_report_basic;
          Alcotest.test_case "empty raises" `Quick test_latency_report_empty_raises;
          QCheck_alcotest.to_alcotest prop_bands_monotone;
          QCheck_alcotest.to_alcotest prop_band_bounds;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
        ] );
    ]
