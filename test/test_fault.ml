(* Tests for the fault-injection and resilience layer: the injector,
   the degraded gateway, the resilient client session and the
   [faults] experiment grid. *)

module Profile = Gcperf_fault.Profile
module Injector = Gcperf_fault.Injector
module Gateway = Gcperf_kvstore.Gateway
module Client = Gcperf_ycsb.Client
module Resilient = Gcperf_ycsb.Resilient
module Exp_faults = Gcperf.Exp_faults

(* --- profiles ------------------------------------------------------- *)

let test_profile_round_trip () =
  List.iter
    (fun p ->
      match Profile.of_string p.Profile.name with
      | Some q ->
          Alcotest.(check string) "round trip" p.Profile.name q.Profile.name
      | None -> Alcotest.failf "profile %s not found by name" p.Profile.name)
    Profile.all;
  Alcotest.(check bool) "unknown profile rejected" true
    (Profile.of_string "bogus" = None)

(* [of_string] mirrors [Gc_config.kind_of_string]: case-insensitive,
   blind to separators, and accepting the obvious shorthands. *)
let test_profile_spellings () =
  let resolves spelling expected =
    match Profile.of_string spelling with
    | Some p ->
        Alcotest.(check string)
          (spelling ^ " resolves")
          expected (Profile.to_string p)
    | None -> Alcotest.failf "spelling %s not accepted" spelling
  in
  resolves "Pause-Spike" "pause-spike";
  resolves "pause_spike" "pause-spike";
  resolves "pause spike" "pause-spike";
  resolves "spike" "pause-spike";
  resolves "FlakyNetwork" "flaky-network";
  resolves "flaky" "flaky-network";
  resolves "off" "none";
  resolves "STORM" "storm"

(* --- injector ------------------------------------------------------- *)

let drive inj times =
  List.map
    (fun t ->
      Injector.advance_to inj t;
      Injector.outcome inj)
    times

let test_injector_deterministic () =
  let times = List.init 500 (fun i -> float_of_int i *. 0.37) in
  let make () =
    Injector.create ~profile:Profile.storm ~seed:9 ~pauses:[| (5.0, 7.0) |]
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (drive (make ()) times = drive (make ()) times)

let test_injector_none_passes () =
  let inj = Injector.create ~profile:Profile.none ~seed:9 ~pauses:[||] in
  let times = List.init 200 (fun i -> float_of_int i) in
  Alcotest.(check bool) "no faults under the none profile" true
    (List.for_all (fun o -> o = Injector.Pass) (drive inj times))

let test_injector_flaky_faults () =
  let inj = Injector.create ~profile:Profile.flaky_network ~seed:9 ~pauses:[||] in
  let outcomes = drive inj (List.init 5_000 (fun i -> float_of_int i *. 0.1)) in
  let count p = List.length (List.filter p outcomes) in
  let delays = count (function Injector.Delay _ -> true | _ -> false) in
  let drops = count (fun o -> o = Injector.Drop) in
  (* 5% delay / 1% drop over 5000 draws. *)
  Alcotest.(check bool) "delays near 5%" true (delays > 150 && delays < 400);
  Alcotest.(check bool) "drops near 1%" true (drops > 20 && drops < 100);
  List.iter
    (function
      | Injector.Delay ms ->
          Alcotest.(check bool) "delay within profile bounds" true
            (ms >= 5.0 && ms <= 80.0)
      | _ -> ())
    outcomes

let test_load_multiplier_spikes () =
  let inj =
    Injector.create ~profile:Profile.storm ~seed:9 ~pauses:[| (300.0, 304.0) |]
  in
  (* Fixed spike at 120 s for 30 s, x3. *)
  Alcotest.(check (float 1e-9)) "before the spike" 1.0
    (Injector.load_multiplier inj 100.0);
  Alcotest.(check (float 1e-9)) "inside the fixed spike" 3.0
    (Injector.load_multiplier inj 125.0);
  Alcotest.(check (float 1e-9)) "after the spike" 1.0
    (Injector.load_multiplier inj 160.0);
  (* Pause window (x4) covers the pause plus a 2 s tail. *)
  Alcotest.(check (float 1e-9)) "during the pause" 4.0
    (Injector.load_multiplier inj 301.0);
  Alcotest.(check (float 1e-9)) "inside the tail" 4.0
    (Injector.load_multiplier inj 305.5);
  Alcotest.(check (float 1e-9)) "after the tail" 1.0
    (Injector.load_multiplier inj 310.0)

(* --- gateway -------------------------------------------------------- *)

let test_gateway_unbounded_never_rejects () =
  let gw = Gateway.create Gateway.unbounded ~pauses:[| (1.0, 3.0) |] in
  for i = 0 to 999 do
    match Gateway.offer gw ~now_s:(float_of_int i *. 0.001) ~service_ms:5.0 with
    | Gateway.Served _ -> ()
    | Gateway.Shed | Gateway.Fast_rejected ->
        Alcotest.fail "unbounded gateway rejected a request"
  done;
  Alcotest.(check int) "all served" 1000 (Gateway.served gw)

let test_gateway_pause_stretches_service () =
  let gw = Gateway.create Gateway.unbounded ~pauses:[| (1.0, 3.0) |] in
  (* Arrives mid-pause: cannot finish before the safepoint releases. *)
  match Gateway.offer gw ~now_s:1.5 ~service_ms:1.0 with
  | Gateway.Served { finish_s; _ } ->
      Alcotest.(check bool) "finishes after the pause end" true
        (finish_s >= 3.0)
  | _ -> Alcotest.fail "request rejected"

let test_gateway_sheds_over_capacity () =
  let gw = Gateway.create Gateway.degraded ~pauses:[||] in
  (* Long service + instantaneous arrivals: the queue must overflow. *)
  for i = 0 to 999 do
    ignore
      (Gateway.offer gw ~now_s:(float_of_int i *. 1e-6) ~service_ms:10_000.0)
  done;
  Alcotest.(check bool) "some requests shed" true (Gateway.sheds gw > 0);
  Alcotest.(check bool) "queue bounded by capacity" true
    (Gateway.queue_length gw ~now_s:0.001
    <= Gateway.degraded.Gateway.queue_capacity)

let test_gateway_fast_rejects_during_pause () =
  let gw = Gateway.create Gateway.degraded ~pauses:[| (1.0, 20.0) |] in
  (* Flood while the safepoint is held: once the queue passes the fill
     threshold, arrivals bounce on the fast path. *)
  for i = 0 to 499 do
    ignore
      (Gateway.offer gw
         ~now_s:(1.0 +. (float_of_int i *. 1e-4))
         ~service_ms:1.0)
  done;
  Alcotest.(check bool) "fast rejections during the pause" true
    (Gateway.fast_rejects gw > 0)

(* --- resilient session ---------------------------------------------- *)

let workload =
  {
    Client.paper_workload with
    Client.duration_s = 120.0;
    ops_per_s = 50.0;
  }

let session ?(profile = Profile.flaky_network) ?(resilient = true) ?(seed = 3)
    () =
  let resilience =
    if resilient then Resilient.paper_defaults else Resilient.none
  in
  let gateway = if resilient then Gateway.degraded else Gateway.unbounded in
  Resilient.run workload ~profile ~resilience ~gateway
    ~pauses:[| (30.0, 32.0); (70.0, 71.0) |]
    ~db_timeline:[||] ~seed ()

let test_session_deterministic () =
  Alcotest.(check bool) "same seed, same summary" true
    (session () = session ());
  Alcotest.(check bool) "different seed, different summary" true
    (session () <> session ~seed:4 ())

let test_session_accounting () =
  let s = session () in
  Alcotest.(check int) "every request resolves" s.Resilient.requests
    (s.Resilient.ok + s.Resilient.failed);
  Alcotest.(check bool) "attempts >= requests" true
    (s.Resilient.attempts >= s.Resilient.requests);
  Alcotest.(check (float 1e-9)) "amplification = attempts/requests"
    (float_of_int s.Resilient.attempts /. float_of_int s.Resilient.requests)
    s.Resilient.retry_amplification

let test_session_without_resilience_never_retries () =
  let s = session ~resilient:false () in
  Alcotest.(check int) "one attempt per request" s.Resilient.requests
    s.Resilient.attempts;
  Alcotest.(check int) "no retries" 0 s.Resilient.retries;
  Alcotest.(check int) "no timeouts without a timeout" 0 s.Resilient.timeouts;
  Alcotest.(check int) "no hedging" 0 s.Resilient.hedge_wins;
  (* Without a timeout or retry, every injected drop and error is a
     terminal failure. *)
  Alcotest.(check int) "failures = drops + errors" s.Resilient.failed
    (s.Resilient.drops + s.Resilient.errors)

let test_session_retries_recover_drops () =
  let s = session () in
  let naive = session ~resilient:false () in
  Alcotest.(check bool) "drops were retried into timeouts" true
    (s.Resilient.timeouts > 0);
  Alcotest.(check bool) "retries happened" true (s.Resilient.retries > 0);
  Alcotest.(check bool) "fewer failures than the naive client" true
    (s.Resilient.failed < naive.Resilient.failed);
  Alcotest.(check bool) "resilience recovers most requests" true
    (float_of_int s.Resilient.ok
    >= 0.98 *. float_of_int s.Resilient.requests)

(* --- the faults experiment ------------------------------------------ *)

let ci_grid = lazy (Exp_faults.run_scope ~scope:Gcperf.Scope.ci ~jobs:2 ())

let find r ~gc ~profile ~resilient =
  match
    List.find_opt
      (fun (s : Exp_faults.session) ->
        s.Exp_faults.gc = gc
        && s.Exp_faults.profile = profile
        && s.Exp_faults.resilient = resilient)
      (Exp_faults.sessions r)
  with
  | Some s -> s.Exp_faults.summary
  | None -> Alcotest.failf "session %s/%s missing" gc profile

let test_grid_shape () =
  let r = Lazy.force ci_grid in
  Alcotest.(check int) "one cell per collector"
    (List.length Exp_faults.collectors)
    (List.length r.Exp_faults.cells);
  Alcotest.(check int) "profiles x resilience sessions per cell"
    (2 * List.length Profile.all)
    (List.length (List.hd r.Exp_faults.cells).Exp_faults.sessions)

let test_grid_jobs_identical () =
  (* The determinism contract: the grid is byte-identical whether it
     runs sequentially or fanned out (CI re-checks jobs=4 via
     @check-identity). *)
  let r1 = Exp_faults.run_scope ~scope:Gcperf.Scope.ci ~jobs:1 () in
  let r2 = Lazy.force ci_grid in
  Alcotest.(check bool) "jobs=1 and jobs=2 agree" true
    (Exp_faults.sessions r1 = Exp_faults.sessions r2);
  Alcotest.(check bool) "rendering agrees" true
    (Exp_faults.render r1 = Exp_faults.render r2)

let test_resilience_tames_pause_spike_tail () =
  (* The acceptance bar: under the pause-spike profile, the resilient
     stack must cut the p99.9 client latency for CMS and G1. *)
  let r = Lazy.force ci_grid in
  List.iter
    (fun gc ->
      let off = find r ~gc ~profile:"pause-spike" ~resilient:false in
      let on = find r ~gc ~profile:"pause-spike" ~resilient:true in
      Alcotest.(check bool)
        (gc ^ ": resilience improves p99.9 under pause spikes")
        true
        (on.Resilient.p999_ms < off.Resilient.p999_ms);
      Alcotest.(check bool) (gc ^ ": amplification is reported") true
        (on.Resilient.retry_amplification >= 1.0))
    [ "ConcMarkSweepGC"; "G1GC" ]

let test_goodput_survives_faults () =
  let r = Lazy.force ci_grid in
  List.iter
    (fun (s : Exp_faults.session) ->
      let m = s.Exp_faults.summary in
      if s.Exp_faults.resilient then
        Alcotest.(check bool)
          (s.Exp_faults.gc ^ "/" ^ s.Exp_faults.profile
         ^ ": resilient goodput stays near offered load")
          true
          (float_of_int m.Resilient.ok
          >= 0.97 *. float_of_int m.Resilient.requests))
    (Exp_faults.sessions r)

let () =
  Alcotest.run "fault"
    [
      ( "profile",
        [
          Alcotest.test_case "round trip" `Quick test_profile_round_trip;
          Alcotest.test_case "spellings" `Quick test_profile_spellings;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "none passes" `Quick test_injector_none_passes;
          Alcotest.test_case "flaky faults" `Quick test_injector_flaky_faults;
          Alcotest.test_case "load spikes" `Quick test_load_multiplier_spikes;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "unbounded never rejects" `Quick
            test_gateway_unbounded_never_rejects;
          Alcotest.test_case "pause stretches service" `Quick
            test_gateway_pause_stretches_service;
          Alcotest.test_case "sheds over capacity" `Quick
            test_gateway_sheds_over_capacity;
          Alcotest.test_case "fast-rejects during pause" `Quick
            test_gateway_fast_rejects_during_pause;
        ] );
      ( "session",
        [
          Alcotest.test_case "deterministic" `Quick test_session_deterministic;
          Alcotest.test_case "accounting" `Quick test_session_accounting;
          Alcotest.test_case "no resilience, no retries" `Quick
            test_session_without_resilience_never_retries;
          Alcotest.test_case "retries recover drops" `Quick
            test_session_retries_recover_drops;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "grid shape" `Quick test_grid_shape;
          Alcotest.test_case "jobs identity" `Quick test_grid_jobs_identical;
          Alcotest.test_case "pause-spike tail tamed" `Quick
            test_resilience_tames_pause_spike_tail;
          Alcotest.test_case "goodput survives" `Quick
            test_goodput_survives_faults;
        ] );
    ]
