(* Tests for the YCSB-like client and its latency model. *)

module Client = Gcperf_ycsb.Client
module Stats = Gcperf_stats.Stats

let base_workload =
  {
    Client.paper_workload with
    Client.duration_s = 100.0;
    ops_per_s = 100.0;
    jitter_sigma = 0.0;
  }

let test_point_count () =
  let pts = Client.run base_workload ~pauses:[||] ~db_timeline:[||] ~seed:1 in
  (* Poisson arrivals: ~10000 expected. *)
  let n = Array.length pts in
  Alcotest.(check bool) "about rate*duration points" true
    (n > 9_000 && n < 11_000)

let test_mix () =
  let pts = Client.run base_workload ~pauses:[||] ~db_timeline:[||] ~seed:1 in
  let reads =
    Array.fold_left
      (fun a p -> if p.Client.kind = Client.Read then a + 1 else a)
      0 pts
  in
  let frac = float_of_int reads /. float_of_int (Array.length pts) in
  Alcotest.(check bool) "about 50% reads" true (frac > 0.45 && frac < 0.55)

let test_no_pauses_no_correlation () =
  let pts = Client.run base_workload ~pauses:[||] ~db_timeline:[||] ~seed:1 in
  Alcotest.(check bool) "no GC-correlated points" true
    (Array.for_all (fun p -> not p.Client.gc_correlated) pts)

let test_pause_inflates_latency () =
  (* One 2-second pause in the middle of the run. *)
  let pauses = [| (50.0, 52.0) |] in
  let pts = Client.run base_workload ~pauses ~db_timeline:[||] ~seed:1 in
  let caught =
    Array.to_list pts
    |> List.filter (fun p -> p.Client.time_s >= 50.0 && p.Client.time_s <= 52.0)
  in
  Alcotest.(check bool) "requests arrived during the pause" true
    (caught <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "flagged as GC-correlated" true
        p.Client.gc_correlated;
      (* A request caught at time t waits at least until the pause end. *)
      let min_wait_ms = (52.0 -. p.Client.time_s) *. 1e3 in
      Alcotest.(check bool) "waited for the pause end" true
        (p.Client.latency_ms >= min_wait_ms))
    caught;
  (* Points far from the pause stay fast. *)
  let far =
    Array.to_list pts
    |> List.filter (fun p -> p.Client.time_s < 40.0)
    |> List.map (fun p -> p.Client.latency_ms)
  in
  Alcotest.(check bool) "clean points stay near base latency" true
    (List.for_all (fun l -> l < 20.0) far)

let test_update_latency_flat_read_steps () =
  (* Database growing by 8 GB steps: reads slow down, updates do not. *)
  let gb = 1024 * 1024 * 1024 in
  let db_timeline = [| (0.0, 0); (50.0, 16 * gb) |] in
  let pts = Client.run base_workload ~pauses:[||] ~db_timeline ~seed:2 in
  let avg kind early =
    let sel =
      Array.to_list pts
      |> List.filter (fun p ->
             p.Client.kind = kind
             && if early then p.Client.time_s < 50.0 else p.Client.time_s >= 50.0)
      |> List.map (fun p -> p.Client.latency_ms)
    in
    Stats.mean (Array.of_list sel)
  in
  Alcotest.(check bool) "reads step up" true
    (avg Client.Read false > avg Client.Read true +. 0.5);
  Alcotest.(check bool) "updates stay flat" true
    (Float.abs (avg Client.Update false -. avg Client.Update true) < 0.1)

let test_report_selects_kind () =
  let pts = Client.run base_workload ~pauses:[||] ~db_timeline:[||] ~seed:3 in
  let r = Client.report pts ~kind:Client.Update in
  Alcotest.(check bool) "update avg near base" true
    (Float.abs (r.Stats.avg_ms -. base_workload.Client.update_base_ms) < 0.2)

let test_determinism () =
  let a = Client.run base_workload ~pauses:[||] ~db_timeline:[||] ~seed:4 in
  let b = Client.run base_workload ~pauses:[||] ~db_timeline:[||] ~seed:4 in
  Alcotest.(check int) "same count" (Array.length a) (Array.length b);
  Alcotest.(check bool) "same points" true (a = b)

let prop_latency_positive =
  QCheck.Test.make ~name:"latencies are positive" ~count:30
    QCheck.(pair small_int (list (pair (float_range 0.0 90.0) (float_range 0.0 3.0))))
    (fun (seed, raw) ->
      let pauses =
        raw
        |> List.map (fun (s, d) -> (s, s +. d))
        |> List.sort compare
        |> Array.of_list
      in
      let pts =
        Client.run
          { base_workload with Client.duration_s = 30.0 }
          ~pauses ~db_timeline:[||] ~seed
      in
      Array.for_all (fun p -> p.Client.latency_ms > 0.0) pts)

let () =
  Alcotest.run "ycsb"
    [
      ( "client",
        [
          Alcotest.test_case "point count" `Quick test_point_count;
          Alcotest.test_case "read/update mix" `Quick test_mix;
          Alcotest.test_case "no pauses, no correlation" `Quick
            test_no_pauses_no_correlation;
          Alcotest.test_case "pause inflates latency" `Quick
            test_pause_inflates_latency;
          Alcotest.test_case "read steps, updates flat" `Quick
            test_update_latency_flat_read_steps;
          Alcotest.test_case "report by kind" `Quick test_report_selects_kind;
          Alcotest.test_case "determinism" `Quick test_determinism;
          QCheck_alcotest.to_alcotest prop_latency_positive;
        ] );
    ]
