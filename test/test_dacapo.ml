(* Tests for the DaCapo-like suite and its harness. *)

module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Suite = Gcperf_dacapo.Suite
module Harness = Gcperf_dacapo.Harness
module P = Gcperf_workload.Profile
module Mutator = Gcperf_workload.Mutator

let machine = Machine.paper_server ()

let test_suite_size () =
  Alcotest.(check int) "14 benchmarks like DaCapo 2009" 14
    (List.length Suite.all)

let test_names_unique () =
  let names = Suite.names in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_profiles_valid () =
  List.iter
    (fun b ->
      match P.validate b.Suite.profile with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    Suite.all

let test_crashers () =
  (* "3 benchmarks crashed on every test: eclipse, tradebeans, tradesoap" *)
  let crashers =
    List.filter_map
      (fun b ->
        if b.Suite.crashes then Some b.Suite.profile.P.name else None)
      Suite.all
  in
  Alcotest.(check (list string)) "the paper's crashers"
    [ "eclipse"; "tradebeans"; "tradesoap" ]
    (List.sort compare crashers)

let test_stable_subset () =
  Alcotest.(check int) "7 stable benchmarks" 7 (List.length Suite.stable_subset);
  List.iter
    (fun b ->
      Alcotest.(check bool) "stable benchmarks do not crash" false
        b.Suite.crashes)
    Suite.stable_subset

let test_find () =
  Alcotest.(check bool) "finds xalan" true (Suite.find "xalan" <> None);
  Alcotest.(check bool) "rejects nonsense" true (Suite.find "nope" = None)

let run_small bench ~system_gc =
  let gc =
    Gc_config.default Gc_config.ParallelOld
      ~heap_bytes:(Gc_config.gb 2)
      ~young_bytes:(Gc_config.mb 512)
  in
  Harness.run ~iterations:3 machine bench ~gc ~system_gc ()

let test_harness_runs () =
  let bench = Option.get (Suite.find "pmd") in
  let r = run_small bench ~system_gc:false in
  Alcotest.(check int) "3 iterations" 3 (Array.length r.Harness.iterations);
  Alcotest.(check bool) "not crashed" false r.Harness.crashed;
  Alcotest.(check bool) "positive total" true (r.Harness.total_s > 0.0);
  Alcotest.(check (float 1e-9)) "final matches last iteration"
    r.Harness.iterations.(2).Mutator.duration_s r.Harness.final_s

let test_harness_crash () =
  let bench = Option.get (Suite.find "eclipse") in
  let r = run_small bench ~system_gc:false in
  Alcotest.(check bool) "reports crash" true r.Harness.crashed;
  Alcotest.(check int) "no iterations" 0 (Array.length r.Harness.iterations)

let test_system_gc_adds_fulls () =
  let bench = Option.get (Suite.find "pmd") in
  let fulls r =
    List.length
      (List.filter
         (fun e -> Gcperf_sim.Gc_event.is_full e.Gcperf_sim.Gc_event.kind)
         r.Harness.events)
  in
  let with_sys = run_small bench ~system_gc:true in
  let without = run_small bench ~system_gc:false in
  Alcotest.(check bool) "system GC forces full collections" true
    (fulls with_sys > fulls without);
  (* 3 iterations, a forced full between consecutive ones = at least 2. *)
  Alcotest.(check bool) "one per gap" true (fulls with_sys >= 2)

let test_harness_oom_flag () =
  (* h2 keeps ~120 MB live: a 64 MB heap must OOM, and be reported as
     such rather than crash the harness. *)
  let bench = Option.get (Suite.find "h2") in
  let gc =
    Gc_config.default Gc_config.ParallelOld
      ~heap_bytes:(Gc_config.mb 64)
      ~young_bytes:(Gc_config.mb 16)
  in
  let r = Harness.run ~iterations:2 machine bench ~gc ~system_gc:false () in
  Alcotest.(check bool) "oom reported" true r.Harness.oom

let test_best_of () =
  let bench = Option.get (Suite.find "pmd") in
  let a = run_small bench ~system_gc:false in
  let crash = run_small (Option.get (Suite.find "eclipse")) ~system_gc:false in
  (match Harness.best_of [ a; crash ] with
  | Some best ->
      Alcotest.(check string) "crashed runs excluded" a.Harness.gc_name
        best.Harness.gc_name
  | None -> Alcotest.fail "expected a best run");
  Alcotest.(check bool) "empty -> none" true (Harness.best_of [ crash ] = None)

let test_determinism () =
  let bench = Option.get (Suite.find "xalan") in
  let a = run_small bench ~system_gc:true in
  let b = run_small bench ~system_gc:true in
  Alcotest.(check (float 0.0)) "same total" a.Harness.total_s b.Harness.total_s

let () =
  Alcotest.run "dacapo"
    [
      ( "suite",
        [
          Alcotest.test_case "size" `Quick test_suite_size;
          Alcotest.test_case "unique names" `Quick test_names_unique;
          Alcotest.test_case "profiles valid" `Quick test_profiles_valid;
          Alcotest.test_case "crashers" `Quick test_crashers;
          Alcotest.test_case "stable subset" `Quick test_stable_subset;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "harness",
        [
          Alcotest.test_case "runs" `Quick test_harness_runs;
          Alcotest.test_case "crash flag" `Quick test_harness_crash;
          Alcotest.test_case "system gc fulls" `Quick test_system_gc_adds_fulls;
          Alcotest.test_case "oom flag" `Quick test_harness_oom_flag;
          Alcotest.test_case "best_of" `Quick test_best_of;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
