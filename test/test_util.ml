(* Unit and property tests for the util library: PRNG, vectors, heaps. *)

module Prng = Gcperf_util.Prng
module Vec = Gcperf_util.Vec
module Heapq = Gcperf_util.Heapq
module Bitset = Gcperf_util.Bitset

(* --- Prng ----------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let c = Prng.split a in
  Alcotest.(check bool) "split stream differs" true
    (Prng.bits64 a <> Prng.bits64 c)

let test_prng_copy () =
  let a = Prng.create 9 in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)

let test_int_range () =
  let p = Prng.create 3 in
  for _ = 1 to 10_000 do
    let x = Prng.int p 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_in_range () =
  let p = Prng.create 4 in
  for _ = 1 to 1000 do
    let x = Prng.int_in p (-5) 5 in
    Alcotest.(check bool) "in [lo,hi]" true (x >= -5 && x <= 5)
  done

let test_float_range () =
  let p = Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Prng.float p 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_chance_extremes () =
  let p = Prng.create 6 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance p 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.chance p 1.0)

let test_chance_rate () =
  let p = Prng.create 8 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Prng.chance p 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 100_000.0 in
  Alcotest.(check bool) "about 30%" true (rate > 0.28 && rate < 0.32)

let test_shuffle_permutation () =
  let p = Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_exponential_mean () =
  let p = Prng.create 12 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential p 10.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 10" true (mean > 9.5 && mean < 10.5)

let test_gaussian_moments () =
  let p = Prng.create 13 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian p ~mean:5.0 ~stddev:2.0 in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 5" true (Float.abs (mean -. 5.0) < 0.1);
  Alcotest.(check bool) "var ~ 4" true (Float.abs (var -. 4.0) < 0.3)

let test_zipf_bounds () =
  let p = Prng.create 14 in
  for _ = 1 to 10_000 do
    let x = Prng.zipf p ~n:100 ~theta:0.99 in
    Alcotest.(check bool) "in [0,100)" true (x >= 0 && x < 100)
  done

let test_zipf_skew () =
  let p = Prng.create 15 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let x = Prng.zipf p ~n:100 ~theta:0.99 in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(50));
  Alcotest.(check bool) "heavily skewed" true
    (float_of_int counts.(0) > 10.0 *. float_of_int (max 1 counts.(99)))

let test_zipf_single () =
  let p = Prng.create 16 in
  Alcotest.(check int) "n=1 -> 0" 0 (Prng.zipf p ~n:1 ~theta:0.99)

(* --- Vec ------------------------------------------------------------ *)

let test_vec_push_pop () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "top" 99 (Vec.top v);
  for i = 99 downto 0 do
    Alcotest.(check int) "pop order" i (Vec.pop v)
  done;
  Alcotest.(check bool) "empty again" true (Vec.is_empty v)

let test_vec_get_set () =
  let v = Vec.make 5 0 in
  Vec.set v 2 42;
  Alcotest.(check int) "set/get" 42 (Vec.get v 2);
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 5))

let test_vec_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  let removed = Vec.swap_remove v 1 in
  Alcotest.(check int) "removed" 2 removed;
  Alcotest.(check (list int)) "last moved in" [ 1; 4; 3 ] (Vec.to_list v)

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens, order kept" [ 2; 4; 6 ] (Vec.to_list v)

let test_vec_fold_iter () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "fold sum" 6 (Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int)))
    "iteri" [ (0, 1); (1, 2); (2, 3) ] (List.rev !acc)

let test_vec_clear_retains () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check int) "reusable" 9 (Vec.get v 0)

let prop_vec_model =
  (* A vector fed by pushes and pops behaves like a list used as a stack. *)
  QCheck.Test.make ~name:"vec models a stack" ~count:300
    QCheck.(list (option small_int))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Some x ->
              Vec.push v x;
              model := x :: !model
          | None -> (
              match !model with
              | [] -> ()
              | hd :: tl ->
                  model := tl;
                  assert (Vec.pop v = hd)))
        ops;
      List.rev !model = Vec.to_list v)

(* --- Int_vec -------------------------------------------------------- *)

module Ivec = Gcperf_util.Int_vec

let test_int_vec_basics () =
  let v = Ivec.create () in
  Alcotest.(check bool) "fresh empty" true (Ivec.is_empty v);
  for i = 0 to 99 do
    Ivec.push v i
  done;
  Alcotest.(check int) "length" 100 (Ivec.length v);
  Ivec.set v 2 42;
  Alcotest.(check int) "set/get" 42 (Ivec.get v 2);
  Alcotest.check_raises "oob get"
    (Invalid_argument "Int_vec: index out of bounds") (fun () ->
      ignore (Ivec.get v 100));
  for i = 99 downto 3 do
    Alcotest.(check int) "pop order" i (Ivec.pop v)
  done;
  Ivec.clear v;
  Alcotest.(check bool) "empty after clear" true (Ivec.is_empty v)

let test_int_vec_swap_remove () =
  let v = Ivec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "removed" 2 (Ivec.swap_remove v 1);
  Alcotest.(check (list int)) "last moved in" [ 1; 4; 3 ] (Ivec.to_list v)

let test_int_vec_filter_in_place () =
  let v = Ivec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  Ivec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens, order kept" [ 2; 4; 6 ] (Ivec.to_list v)

let prop_int_vec_matches_vec =
  (* The monomorphic twin must behave exactly like the generic [Vec] it
     replaces on hot paths. *)
  QCheck.Test.make ~name:"int_vec matches generic vec" ~count:300
    QCheck.(list (option small_int))
    (fun ops ->
      let iv = Ivec.create () and v = Vec.create () in
      List.iter
        (fun op ->
          match op with
          | Some x ->
              Ivec.push iv x;
              Vec.push v x
          | None ->
              if not (Vec.is_empty v) then assert (Ivec.pop iv = Vec.pop v))
        ops;
      Ivec.to_list iv = Vec.to_list v)

(* --- Int_table ------------------------------------------------------ *)

module Itbl = Gcperf_util.Int_table

let test_int_table_hash () =
  (* [hash_int] must agree with [Hashtbl.hash] bit-for-bit: the simulator
     relies on it to reproduce [Hashtbl]'s bucket assignment (and hence
     root-set iteration order).  Sweep representative and adversarial
     values, including the sign-handling edge cases. *)
  let check d =
    Alcotest.(check int)
      (Printf.sprintf "hash %d" d)
      (Hashtbl.hash d) (Itbl.hash_int d)
  in
  List.iter check
    [
      0; 1; -1; 2; 42; 1000; -1000; 123456789; -123456789; max_int; min_int;
      max_int - 1; min_int + 1; 0x3FFFFFFF; -0x40000000; 1 lsl 32;
      -(1 lsl 32); (1 lsl 62) - 1;
    ];
  let p = Prng.create 77 in
  for _ = 1 to 10_000 do
    check (Int64.to_int (Prng.bits64 p))
  done

let prop_int_table_order =
  (* Iteration-order fidelity against a real [(int, unit) Hashtbl.t]:
     identical operation sequences must leave identical iteration orders
     (which subsumes membership and size), across resizes and resets. *)
  QCheck.Test.make ~name:"int_table matches Hashtbl iteration order"
    ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 0 300)))
    (fun ops ->
      let t = Itbl.create 16 in
      let h : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
              Itbl.add t k;
              Hashtbl.add h k ()
          | 1 ->
              Itbl.replace t k;
              Hashtbl.replace h k ()
          | 2 ->
              Itbl.remove t k;
              Hashtbl.remove h k
          | _ ->
              if k < 15 then begin
                (* occasional reset exercises the initial-buckets path *)
                Itbl.reset t;
                Hashtbl.reset h
              end)
        ops;
      let order tbl_iter =
        let acc = ref [] in
        tbl_iter (fun k -> acc := k :: !acc);
        List.rev !acc
      in
      Itbl.length t = Hashtbl.length h
      && order (fun f -> Itbl.iter f t)
         = order (fun f -> Hashtbl.iter (fun k () -> f k) h))

(* --- Heapq ---------------------------------------------------------- *)

let test_heapq_ordering () =
  let q = Heapq.create () in
  List.iter (fun k -> Heapq.push q k k) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = ref [] in
  let rec drain () =
    match Heapq.pop q with
    | None -> ()
    | Some (k, _) ->
        out := k :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (List.rev !out)

let test_heapq_pop_until () =
  let q = Heapq.create () in
  List.iter (fun k -> Heapq.push q k (k * 10)) [ 3; 1; 7; 5 ];
  let popped = Heapq.pop_until q 5 in
  Alcotest.(check (list (pair int int)))
    "pops keys <= 5 in order"
    [ (1, 10); (3, 30); (5, 50) ]
    popped;
  Alcotest.(check int) "one left" 1 (Heapq.length q)

let test_heapq_min_key () =
  let q = Heapq.create () in
  Alcotest.(check (option int)) "empty" None (Heapq.min_key q);
  Heapq.push q 4 ();
  Heapq.push q 2 ();
  Alcotest.(check (option int)) "min" (Some 2) (Heapq.min_key q)

let prop_heapq_sorted =
  QCheck.Test.make ~name:"heapq drains sorted" ~count:300
    QCheck.(list small_int)
    (fun keys ->
      let q = Heapq.create () in
      List.iter (fun k -> Heapq.push q k ()) keys;
      let rec drain acc =
        match Heapq.pop q with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* --- Bitset --------------------------------------------------------- *)

let test_bitset_basic () =
  let b = Bitset.create () in
  Alcotest.(check bool) "initially absent" false (Bitset.mem b 3);
  Bitset.set b 3;
  Alcotest.(check bool) "present after set" true (Bitset.mem b 3);
  Alcotest.(check bool) "neighbours unaffected" false
    (Bitset.mem b 2 || Bitset.mem b 4);
  Bitset.clear b 3;
  Alcotest.(check bool) "absent after clear" false (Bitset.mem b 3);
  (* Clearing beyond capacity is a no-op, not an error. *)
  Bitset.clear b 1_000_000

let test_bitset_growth () =
  let b = Bitset.create ~capacity:8 () in
  Bitset.set b 7;
  Bitset.set b 4097;
  Alcotest.(check bool) "low bit kept across growth" true (Bitset.mem b 7);
  Alcotest.(check bool) "high bit present" true (Bitset.mem b 4097);
  Alcotest.(check bool) "beyond capacity is false" false (Bitset.mem b 100_000);
  Alcotest.(check bool) "capacity grew" true (Bitset.capacity b > 4097)

let test_bitset_reset () =
  let b = Bitset.create () in
  List.iter (Bitset.set b) [ 0; 31; 32; 63; 64; 1000 ];
  Bitset.reset b;
  Alcotest.(check bool) "all cleared" false
    (List.exists (Bitset.mem b) [ 0; 31; 32; 63; 64; 1000 ])

let test_bitset_negative () =
  let b = Bitset.create () in
  Alcotest.check_raises "negative mem"
    (Invalid_argument "Bitset: negative index") (fun () ->
      ignore (Bitset.mem b (-1)))

let prop_bitset_model =
  (* Against a Hashtbl model: same membership after arbitrary set/clear
     interleavings, including indices around word boundaries. *)
  QCheck.Test.make ~name:"bitset matches set model" ~count:300
    QCheck.(list (pair bool (int_range 0 200)))
    (fun ops ->
      let b = Bitset.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.set b i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.clear b i;
            Hashtbl.remove model i
          end)
        ops;
      List.for_all (fun i -> Bitset.mem b i = Hashtbl.mem model i)
        (List.init 201 Fun.id))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_prng_copy;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int_in range" `Quick test_int_in_range;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "chance rate" `Quick test_chance_rate;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf single" `Quick test_zipf_single;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "get/set" `Quick test_vec_get_set;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "filter_in_place" `Quick test_vec_filter_in_place;
          Alcotest.test_case "fold/iteri" `Quick test_vec_fold_iter;
          Alcotest.test_case "clear retains capacity" `Quick test_vec_clear_retains;
          QCheck_alcotest.to_alcotest prop_vec_model;
        ] );
      ( "int_vec",
        [
          Alcotest.test_case "basics" `Quick test_int_vec_basics;
          Alcotest.test_case "swap_remove" `Quick test_int_vec_swap_remove;
          Alcotest.test_case "filter_in_place" `Quick
            test_int_vec_filter_in_place;
          QCheck_alcotest.to_alcotest prop_int_vec_matches_vec;
        ] );
      ( "int_table",
        [
          Alcotest.test_case "hash_int = Hashtbl.hash" `Quick
            test_int_table_hash;
          QCheck_alcotest.to_alcotest prop_int_table_order;
        ] );
      ( "heapq",
        [
          Alcotest.test_case "ordering" `Quick test_heapq_ordering;
          Alcotest.test_case "pop_until" `Quick test_heapq_pop_until;
          Alcotest.test_case "min_key" `Quick test_heapq_min_key;
          QCheck_alcotest.to_alcotest prop_heapq_sorted;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "set/mem/clear" `Quick test_bitset_basic;
          Alcotest.test_case "growth" `Quick test_bitset_growth;
          Alcotest.test_case "reset" `Quick test_bitset_reset;
          Alcotest.test_case "negative index" `Quick test_bitset_negative;
          QCheck_alcotest.to_alcotest prop_bitset_model;
        ] );
    ]
