#!/usr/bin/env bash
# CLI failure paths: every unknown name must exit non-zero with an
# actionable message (and a did-you-mean suggestion when a close
# candidate exists) on stderr.  Run by the `runtest` alias; $1 is the
# gcperf binary.
set -u

gcperf="$1"
failures=0

# check NAME EXPECTED_EXIT STDERR_SUBSTRING... -- ARGS...
check() {
  local name="$1" expected="$2"
  shift 2
  local substrings=()
  while [ "$1" != "--" ]; do
    substrings+=("$1")
    shift
  done
  shift # drop --
  local stderr exit_code
  stderr=$("$gcperf" "$@" 2>&1 >/dev/null)
  exit_code=$?
  if [ "$exit_code" -ne "$expected" ]; then
    echo "FAIL $name: exit $exit_code, expected $expected" >&2
    failures=$((failures + 1))
    return
  fi
  for s in "${substrings[@]}"; do
    case "$stderr" in
      *"$s"*) ;;
      *)
        echo "FAIL $name: stderr missing '$s'" >&2
        echo "  stderr was: $stderr" >&2
        failures=$((failures + 1))
        return
        ;;
    esac
  done
  echo "ok $name"
}

# cmdliner rejects an unknown subcommand with its own exit code (124).
check unknown-subcommand 124 "unknown command" -- frobnicate

# Unknown names on our own resolution paths: exit 1 + did-you-mean.
check unknown-collector 1 "unknown collector" "did you mean" \
  -- bench xalan --gc parallelld -n 1
check unknown-experiment 1 "unknown experiment" "did you mean" \
  -- run fig33 --scope ci
check unknown-experiment-distil 1 "unknown experiment" "did you mean" "distill" \
  -- run distil --scope ci
check unknown-benchmark 1 "unknown benchmark" "did you mean" \
  -- bench xaln -n 1
check unknown-fault-profile 1 "unknown fault profile" "did you mean" \
  -- bench xalan -n 1 --faults strom
check unknown-scope 1 "unknown scope" -- run table2 --scope huge
check unknown-format 1 "unknown format" -- run table2 --scope ci --format yaml

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI failure-path check(s) failed" >&2
  exit 1
fi
echo "all CLI failure paths behave"
