(* Ergonomics policy tests.

   Unit level: the decaying average, decision clamping, and the adaptive
   size policy's reaction to synthetic observation streams.  Integration
   level: an adaptive VM run on a small heap must actually resize, stay
   deterministic, keep the collector invariants intact, converge its
   trailing pauses under the goal, and emit resize spans — while a
   fixed-size run attaches no policy at all. *)

module Policy = Gcperf_policy.Policy
module Asp = Gcperf_policy.Adaptive_size_policy
module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Telemetry = Gcperf_telemetry.Telemetry
module Span = Gcperf_telemetry.Span
module Suite = Gcperf_dacapo.Suite

let mb = 1024 * 1024

let machine = Machine.paper_server ()

(* --- decaying weighted average --------------------------------------- *)

let test_avg_warmup () =
  (* While warming up the average tracks the sample mean, not the zero
     initial value (HotSpot boosts the weight to 1/count). *)
  let a = Policy.Avg.create ~weight:25 in
  Policy.Avg.update a 100.0;
  Alcotest.(check (float 1e-9)) "first sample is the average" 100.0
    (Policy.Avg.value a);
  Policy.Avg.update a 50.0;
  Alcotest.(check (float 1e-9)) "second sample averages" 75.0
    (Policy.Avg.value a);
  Alcotest.(check int) "count" 2 (Policy.Avg.count a)

let test_avg_decay () =
  let a = Policy.Avg.create ~weight:25 in
  for _ = 1 to 50 do
    Policy.Avg.update a 10.0
  done;
  Policy.Avg.update a 110.0;
  (* One outlier moves a warmed-up average by exactly its weight. *)
  Alcotest.(check (float 1e-6)) "25% of the outlier" 35.0 (Policy.Avg.value a);
  for _ = 1 to 50 do
    Policy.Avg.update a 10.0
  done;
  Alcotest.(check bool) "decays back toward the stream" true
    (Policy.Avg.value a < 11.0)

(* --- decision clamping ----------------------------------------------- *)

let test_clamp_decision () =
  let limits = Policy.default_limits ~heap_bytes:(640 * mb) in
  let current = 100 * mb in
  let clamp d = Policy.clamp_decision limits ~current_young:current d in
  (* A jump far beyond the step bound is cut to one bounded step. *)
  let d =
    clamp { Policy.no_decision with Policy.young_bytes = Some (400 * mb) }
  in
  Alcotest.(check (option int)) "grow capped to max_step_frac"
    (Some (125 * mb)) d.Policy.young_bytes;
  let d = clamp { Policy.no_decision with Policy.young_bytes = Some 0 } in
  Alcotest.(check (option int)) "shrink capped to max_step_frac"
    (Some (75 * mb)) d.Policy.young_bytes;
  (* Range clamping: the floor is heap/64 (at least 1 MB). *)
  let near_floor =
    Policy.clamp_decision limits ~current_young:(11 * mb)
      { Policy.no_decision with Policy.young_bytes = Some (1 * mb) }
  in
  Alcotest.(check (option int)) "young floor" (Some (10 * mb))
    near_floor.Policy.young_bytes;
  let d =
    clamp
      {
        Policy.no_decision with
        Policy.survivor_ratio = Some 0;
        tenuring_threshold = Some 99;
      }
  in
  Alcotest.(check (option int)) "ratio floor" (Some 1) d.Policy.survivor_ratio;
  Alcotest.(check (option int)) "tenuring ceiling" (Some 15)
    d.Policy.tenuring_threshold;
  Alcotest.(check bool) "noop stays noop" true
    (Policy.is_noop (clamp Policy.no_decision))

(* --- adaptive size policy on synthetic streams ----------------------- *)

let obs ?(pause_class = Policy.Minor) ?(pause_ms = 10.0) ?(interval_ms = 1000.0)
    ?(survivor_overflow = false) ~young () =
  {
    Policy.pause_class;
    pause_ms;
    interval_ms;
    promoted_bytes = 0;
    survived_bytes = 0;
    survivor_overflow;
    young_capacity = young;
    heap_used = 0;
    heap_capacity = 640 * mb;
  }

let make_asp ?(pause_goal_ms = 50.0) ?(gc_time_ratio = 99) () =
  Asp.create
    (Asp.default_config ~heap_bytes:(640 * mb) ~young_bytes:(100 * mb)
       ~pause_goal_ms ~gc_time_ratio ())

let test_asp_pause_goal_shrinks () =
  let p = make_asp () in
  let young = ref (100 * mb) in
  let decisions = ref 0 in
  for _ = 1 to 10 do
    p.Policy.observe (obs ~pause_ms:200.0 ~young:!young ());
    match p.Policy.decide () with
    | Some d ->
        (match d.Policy.young_bytes with
        | Some y ->
            Alcotest.(check bool) "pause violation shrinks" true (y < !young);
            incr decisions;
            young := y
        | None -> ());
        p.Policy.applied
          { Policy.no_decision with Policy.young_bytes = Some !young }
    | None -> ()
  done;
  Alcotest.(check bool) "decisions were made" true (!decisions >= 3);
  let s = p.Policy.stats () in
  Alcotest.(check bool) "shrinks counted" true (s.Policy.shrinks >= 3);
  Alcotest.(check int) "no grows" 0 s.Policy.grows

let test_asp_throughput_goal_grows () =
  (* Pauses well under the goal but the mutator barely runs between
     them: GC cost over 1% must grow the young generation. *)
  let p = make_asp () in
  let young = ref (100 * mb) in
  let grew = ref false in
  for _ = 1 to 10 do
    p.Policy.observe (obs ~pause_ms:10.0 ~interval_ms:100.0 ~young:!young ());
    match p.Policy.decide () with
    | Some d ->
        (match d.Policy.young_bytes with
        | Some y ->
            if y > !young then grew := true;
            young := y
        | None -> ());
        p.Policy.applied
          { Policy.no_decision with Policy.young_bytes = Some !young }
    | None -> ()
  done;
  Alcotest.(check bool) "throughput violation grows" true !grew;
  let s = p.Policy.stats () in
  Alcotest.(check bool) "gc cost tracked" true (s.Policy.gc_cost > 0.01)

let test_asp_footprint_shrinks_when_idle () =
  (* Both goals satisfied: tiny pauses, long intervals.  The footprint
     goal gives memory back with the small decrement. *)
  let p = make_asp () in
  let young = ref (100 * mb) in
  let shrank = ref false in
  for _ = 1 to 10 do
    p.Policy.observe (obs ~pause_ms:1.0 ~interval_ms:10_000.0 ~young:!young ());
    match p.Policy.decide () with
    | Some d ->
        (match d.Policy.young_bytes with
        | Some y ->
            if y < !young then shrank := true;
            young := y
        | None -> ());
        p.Policy.applied
          { Policy.no_decision with Policy.young_bytes = Some !young }
    | None -> ()
  done;
  Alcotest.(check bool) "footprint shrink" true !shrank

let test_asp_survivor_overflow_lowers_tenuring () =
  let p = make_asp () in
  let tenuring = ref None in
  for _ = 1 to 8 do
    p.Policy.observe
      (obs ~survivor_overflow:true ~young:(100 * mb) ());
    match p.Policy.decide () with
    | Some d ->
        (match d.Policy.tenuring_threshold with
        | Some t -> tenuring := Some t
        | None -> ());
        p.Policy.applied d
    | None -> ()
  done;
  let default_threshold =
    (Gc_config.default Gc_config.Serial ~heap_bytes:mb ~young_bytes:mb)
      .Gc_config.tenuring_threshold
  in
  (match !tenuring with
  | Some t ->
      Alcotest.(check bool) "threshold lowered" true (t < default_threshold)
  | None -> Alcotest.fail "survivor overflow never lowered the threshold");
  let s = p.Policy.stats () in
  Alcotest.(check bool) "tenuring changes counted" true
    (s.Policy.tenuring_changes >= 1)

(* --- VM integration -------------------------------------------------- *)

let xalan () =
  match Suite.find "xalan" with
  | Some b -> b
  | None -> Alcotest.fail "xalan missing from the suite"

(* Xalan fits a 1 GB heap; Serial there pauses for ~270 ms on average at
   the configured 512 MB young generation, so a 60 ms goal forces the
   policy to shrink hard — and 60 ms is attainable (the pause floor at
   the minimum young size is ~46 ms). *)
let adaptive_config ~pause_goal_ms =
  {
    (Gc_config.default Gc_config.Serial ~heap_bytes:(1024 * mb)
       ~young_bytes:(512 * mb))
    with
    Gc_config.adaptive = true;
    pause_goal_ms;
  }

let test_fixed_run_has_no_policy () =
  let config =
    Gc_config.default Gc_config.Serial ~heap_bytes:(64 * mb)
      ~young_bytes:(16 * mb)
  in
  let vm = Vm.create machine config ~seed:3 in
  Alcotest.(check bool) "no policy attached" true (Vm.policy vm = None)

let test_adaptive_run_resizes_and_converges () =
  let goal = 60.0 in
  let r =
    Gcperf.Exp_ergonomics.measure machine (xalan ())
      ~gc:(adaptive_config ~pause_goal_ms:goal)
      ~iterations:10 ~seed:7
  in
  Alcotest.(check bool) "run survived" false r.Gcperf.Exp_ergonomics.oom;
  Alcotest.(check bool) "minor collections happened" true
    (r.Gcperf.Exp_ergonomics.minor_pauses >= 10);
  Alcotest.(check bool) "the policy resized the young generation" true
    (r.Gcperf.Exp_ergonomics.resizes >= 1);
  Alcotest.(check bool) "young shrank from its configured size" true
    (r.Gcperf.Exp_ergonomics.final_young_bytes < 512 * mb);
  Alcotest.(check bool)
    (Printf.sprintf "trailing p99 (%.1f ms) within the %.0f ms goal"
       r.Gcperf.Exp_ergonomics.trailing_p99_ms goal)
    true
    (r.Gcperf.Exp_ergonomics.trailing_p99_ms <= goal);
  Alcotest.(check bool) "trajectory has one point per minor" true
    (List.length r.Gcperf.Exp_ergonomics.trajectory
    = r.Gcperf.Exp_ergonomics.minor_pauses)

let test_adaptive_run_deterministic () =
  let run () =
    let r =
      Gcperf.Exp_ergonomics.measure machine (xalan ())
        ~gc:(adaptive_config ~pause_goal_ms:60.0)
        ~iterations:3 ~seed:7
    in
    ( r.Gcperf.Exp_ergonomics.minor_pauses,
      r.Gcperf.Exp_ergonomics.final_young_bytes,
      r.Gcperf.Exp_ergonomics.total_s,
      r.Gcperf.Exp_ergonomics.resizes )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical reruns" true (a = b)

let test_adaptive_invariants_all_collectors () =
  List.iter
    (fun kind ->
      let config =
        {
          (Gc_config.default kind ~heap_bytes:(128 * mb)
             ~young_bytes:(48 * mb))
          with
          Gc_config.adaptive = true;
          pause_goal_ms = 5.0;
        }
      in
      let vm = Vm.create machine config ~seed:17 in
      let th = Vm.spawn_thread vm in
      (try
         for _ = 1 to 600 do
           ignore
             (Vm.alloc vm th ~size:(128 * 1024) ~lifetime:(`Bytes (1 * mb)));
           Vm.step vm ~dt_us:500.0 (fun _ -> ())
         done
       with Gcperf_gc.Gc_ctx.Out_of_memory _ -> ());
      (match Vm.check_invariants vm with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s invariants under adaptive sizing: %s"
            (Gc_config.kind_to_string kind)
            e);
      match Vm.policy vm with
      | None -> Alcotest.fail "policy not attached"
      | Some p ->
          let s = p.Policy.stats () in
          Alcotest.(check bool)
            (Gc_config.kind_to_string kind ^ " observed pauses")
            true
            (s.Policy.observations >= 1))
    Gc_config.all_kinds

let test_resize_spans_emitted () =
  let telemetry = Telemetry.create ~enabled:true () in
  let config = adaptive_config ~pause_goal_ms:60.0 in
  let vm = Vm.create ~telemetry machine config ~seed:7 in
  let mut =
    Gcperf_workload.Mutator.create vm (xalan ()).Suite.profile ~seed:7
  in
  for _ = 1 to 3 do
    ignore (Gcperf_workload.Mutator.run_iteration mut)
  done;
  let resize_spans =
    List.filter (fun s -> s.Span.kind = "resize") (Telemetry.spans telemetry)
  in
  Alcotest.(check bool) "resize spans recorded" true
    (List.length resize_spans >= 1);
  List.iter
    (fun s ->
      Alcotest.(check (float 0.0)) "resizes take no virtual time" 0.0
        s.Span.duration_us;
      Alcotest.(check string) "cause" "adaptive sizing policy" s.Span.cause;
      Alcotest.(check bool) "young changed" true
        (s.Span.young_before <> s.Span.young_after))
    resize_spans

let () =
  Alcotest.run "policy"
    [
      ( "avg",
        [
          Alcotest.test_case "warmup tracks mean" `Quick test_avg_warmup;
          Alcotest.test_case "decay" `Quick test_avg_decay;
        ] );
      ( "limits",
        [ Alcotest.test_case "clamp_decision" `Quick test_clamp_decision ] );
      ( "adaptive policy",
        [
          Alcotest.test_case "pause goal shrinks" `Quick
            test_asp_pause_goal_shrinks;
          Alcotest.test_case "throughput goal grows" `Quick
            test_asp_throughput_goal_grows;
          Alcotest.test_case "footprint shrink" `Quick
            test_asp_footprint_shrinks_when_idle;
          Alcotest.test_case "survivor overflow" `Quick
            test_asp_survivor_overflow_lowers_tenuring;
        ] );
      ( "vm integration",
        [
          Alcotest.test_case "fixed run has no policy" `Quick
            test_fixed_run_has_no_policy;
          Alcotest.test_case "adaptive resizes and converges" `Quick
            test_adaptive_run_resizes_and_converges;
          Alcotest.test_case "deterministic" `Quick
            test_adaptive_run_deterministic;
          Alcotest.test_case "invariants on all collectors" `Quick
            test_adaptive_invariants_all_collectors;
          Alcotest.test_case "resize spans" `Quick test_resize_spans_emitted;
        ] );
    ]
