(* Tests for table and chart rendering. *)

module Table = Gcperf_report.Table
module Chart = Gcperf_report.Chart

let test_table_basic () =
  let t =
    Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* Right-aligned numbers line up on their last character. *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "enough lines" true (List.length lines >= 4)

let test_table_width_mismatch () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "row width checked"
    (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_csv () =
  let t =
    Table.create ~columns:[ ("name", Table.Left); ("note", Table.Left) ]
  in
  Table.add_row t [ "a,b"; "plain" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "quotes commas" "name,note\n\"a,b\",plain\n" csv

let test_table_separator_not_in_csv () =
  let t = Table.create ~columns:[ ("x", Table.Left) ] in
  Table.add_row t [ "1" ];
  Table.add_separator t;
  Table.add_row t [ "2" ];
  Alcotest.(check string) "separators skipped" "x\n1\n2\n" (Table.to_csv t)

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "decimals" "3.1" (Table.cell_f ~decimals:1 3.14159);
  Alcotest.(check string) "pct zero" "0.0" (Table.cell_pct 0.0);
  Alcotest.(check string) "pct small" "6.895" (Table.cell_pct 6.895);
  Alcotest.(check string) "pct large" "40.4" (Table.cell_pct 40.412)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_scatter () =
  let s =
    Chart.scatter ~x_label:"time" ~y_label:"pause"
      [
        { Chart.label = "G1"; glyph = 'G'; points = [| (0.0, 1.0); (5.0, 2.0) |] };
        { Chart.label = "CMS"; glyph = 'C'; points = [| (2.0, 0.5) |] };
      ]
  in
  Alcotest.(check bool) "plots G glyph" true (contains s "G");
  Alcotest.(check bool) "legend has both series" true
    (contains s "G = G1" && contains s "C = CMS");
  Alcotest.(check bool) "axis labels present" true
    (contains s "time" && contains s "pause")

let test_scatter_empty () =
  let s = Chart.scatter ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "renders without series" true (String.length s > 0)

let test_line_interpolates () =
  let s =
    Chart.line ~x_label:"iter" ~y_label:"s"
      [
        {
          Chart.label = "po";
          glyph = 'P';
          points = [| (0.0, 0.0); (10.0, 10.0) |];
        };
      ]
  in
  (* Interpolation fills many cells, far more than the two endpoints. *)
  let count =
    String.fold_left (fun a c -> if c = 'P' then a + 1 else a) 0 s
  in
  Alcotest.(check bool) "line drawn" true (count > 10)

let test_bars () =
  let s =
    Chart.bars ~title:"ranking" [ ("ParallelOld", 30.0); ("G1", 3.0) ]
  in
  Alcotest.(check bool) "title" true (contains s "ranking");
  Alcotest.(check bool) "labels" true
    (contains s "ParallelOld" && contains s "G1");
  (* The winner's bar is an order of magnitude longer. *)
  let bar_len line =
    String.fold_left (fun a c -> if c = '#' then a + 1 else a) 0 line
  in
  let lines = String.split_on_char '\n' s in
  let po = List.find (fun l -> contains l "ParallelOld") lines in
  let g1 = List.find (fun l -> contains l "G1") lines in
  Alcotest.(check bool) "proportional bars" true (bar_len po > 5 * bar_len g1)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "csv quoting" `Quick test_table_csv;
          Alcotest.test_case "csv separators" `Quick test_table_separator_not_in_csv;
          Alcotest.test_case "cell formatting" `Quick test_cells;
        ] );
      ( "chart",
        [
          Alcotest.test_case "scatter" `Quick test_scatter;
          Alcotest.test_case "scatter empty" `Quick test_scatter_empty;
          Alcotest.test_case "line interpolates" `Quick test_line_interpolates;
          Alcotest.test_case "bars" `Quick test_bars;
        ] );
    ]
