(* Telemetry subsystem tests.

   Three concerns: the log-bucketed histogram must agree with naive
   sort-based nearest-rank quantiles to within its bucket resolution
   (property-tested), the collectors must emit well-formed per-phase
   spans through the registry, and — the load-bearing invariant —
   enabling telemetry must not perturb the simulation: quick-mode
   artifacts are byte-identical with the registry on and off. *)

module Histogram = Gcperf_telemetry.Histogram
module Span = Gcperf_telemetry.Span
module Telemetry = Gcperf_telemetry.Telemetry
module Metrics = Gcperf_telemetry.Metrics
module Sink = Gcperf_telemetry.Sink
module Harness = Gcperf_dacapo.Harness
module Suite = Gcperf_dacapo.Suite
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config

let mb = 1024 * 1024

(* --- histogram vs naive quantiles ----------------------------------- *)

(* Nearest-rank quantile on the raw samples: rank ceil(p/100 * n),
   1-based, clamped to [1, n]. *)
let naive_percentile samples p =
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  let rank =
    Stdlib.max 1
      (Stdlib.min n (int_of_float (ceil (p /. 100.0 *. float_of_int n))))
  in
  List.nth sorted (rank - 1)

(* The histogram quantises to 1/1000 units and resolves a quantile to
   its bucket midpoint: relative error is bounded by the bucket width
   (1/128 above the linear region) plus the quantisation step. *)
let close_enough ~naive ~hist =
  Float.abs (hist -. naive) <= (0.015 *. Float.abs naive) +. 0.01

let pos_float_gen =
  (* Mix magnitudes: sub-linear-region values (< 0.256) up to 1e6, the
     realistic span of microsecond pause durations. *)
  QCheck.Gen.(
    oneof
      [
        float_bound_exclusive 0.3;
        float_bound_exclusive 100.0;
        float_bound_exclusive 1.0e6;
      ])

let samples_arb =
  QCheck.make
    ~print:QCheck.Print.(list float)
    QCheck.Gen.(list_size (int_range 5 300) pos_float_gen)

let prop_percentiles_match =
  QCheck.Test.make ~name:"histogram percentiles track naive quantiles"
    ~count:1000 samples_arb (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) samples;
      List.iter
        (fun p ->
          let naive = naive_percentile samples p in
          let hist = Histogram.percentile h p in
          if not (close_enough ~naive ~hist) then
            QCheck.Test.fail_reportf "p%.1f: naive %.6f vs histogram %.6f" p
              naive hist)
        [ 0.0; 50.0; 90.0; 99.0; 99.9 ];
      (* Exact tails and moments. *)
      let n = List.length samples in
      let mn = List.fold_left Float.min (List.hd samples) samples in
      let mx = List.fold_left Float.max (List.hd samples) samples in
      Histogram.count h = n
      && Histogram.percentile h 100.0 = mx
      && Histogram.min h = mn
      && Histogram.max h = mx)

let prop_merge =
  QCheck.Test.make ~name:"merged histograms equal one-shot recording"
    ~count:1000
    (QCheck.pair samples_arb samples_arb)
    (fun (xs, ys) ->
      let one = Histogram.create () in
      List.iter (Histogram.record one) (xs @ ys);
      let a = Histogram.create () and b = Histogram.create () in
      List.iter (Histogram.record a) xs;
      List.iter (Histogram.record b) ys;
      Histogram.merge_into ~into:a b;
      let same p =
        Float.abs (Histogram.percentile a p -. Histogram.percentile one p)
        <= 1e-9
      in
      Histogram.count a = Histogram.count one
      && Histogram.min a = Histogram.min one
      && Histogram.max a = Histogram.max one
      && Float.abs (Histogram.sum a -. Histogram.sum one)
         <= 1e-6 *. (1.0 +. Float.abs (Histogram.sum one))
      && List.for_all same [ 50.0; 90.0; 99.0; 99.9; 100.0 ])

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check bool) "empty" true (Histogram.is_empty h);
  Alcotest.(check (float 0.0)) "p99 of empty" 0.0 (Histogram.percentile h 99.0);
  Histogram.record h 42.0;
  Alcotest.(check (float 1e-9)) "single sample p50" 42.0
    (Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "single sample max" 42.0 (Histogram.max h);
  Histogram.clear h;
  Alcotest.(check bool) "cleared" true (Histogram.is_empty h)

(* --- spans from a real collector run -------------------------------- *)

let traced_run kind =
  let telemetry = Telemetry.create ~enabled:true () in
  let bench = Option.get (Suite.find "xalan") in
  let gc =
    Gc_config.default kind ~heap_bytes:(2048 * mb) ~young_bytes:(512 * mb)
  in
  let r =
    Harness.run ~telemetry ~iterations:3 (Machine.paper_server ()) bench ~gc
      ~system_gc:false ()
  in
  (telemetry, r)

let test_g1_spans () =
  let telemetry, r = traced_run Gc_config.G1 in
  let spans = Telemetry.spans telemetry in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  Alcotest.(check int) "one span per GC event"
    (List.length r.Harness.events)
    (List.length spans);
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check string) "collector tag" "G1GC" s.Span.collector;
      Alcotest.(check bool) "has phases" true (s.Span.phases <> []);
      (* The recorded duration is exactly the fold of its phases (the
         collectors compute it that way, in this order). *)
      let sum =
        List.fold_left (fun acc (_, us) -> acc +. us) 0.0 s.Span.phases
      in
      Alcotest.(check (float 1e-9)) "duration = sum of phases" sum
        s.Span.duration_us;
      Alcotest.(check bool) "leads with safepoint" true
        (match s.Span.phases with
        | (Span.Safepoint, _) :: _ -> true
        | _ -> false))
    spans;
  let young =
    List.filter (fun (s : Span.t) -> s.Span.kind = "young") spans
  in
  Alcotest.(check bool) "young pauses traced" true (List.length young > 0);
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check bool) "young span has a copy phase" true
        (List.mem_assoc Span.Copy s.Span.phases))
    young;
  (* Per-kind histograms and the TTSP histogram cover every span. *)
  let by_kind =
    List.fold_left
      (fun acc k ->
        match Telemetry.pause_histogram telemetry k with
        | None -> acc
        | Some h -> acc + Histogram.count h)
      0 (Telemetry.kinds telemetry)
  in
  Alcotest.(check int) "per-kind histograms cover all spans"
    (Telemetry.span_count telemetry)
    by_kind;
  Alcotest.(check int) "safepoint histogram covers all spans"
    (Telemetry.span_count telemetry)
    (Histogram.count (Telemetry.safepoint_histogram telemetry))

let test_metrics_sampled () =
  let telemetry, _ = traced_run Gc_config.ParallelOld in
  let m = Telemetry.metrics telemetry in
  Alcotest.(check bool) "pause counter" true
    (Metrics.counter m "gc.pauses" > 0.0);
  Alcotest.(check bool) "alloc counter" true
    (Metrics.counter m "vm.allocated_bytes" > 0.0);
  let series = Metrics.series m "heap.used_bytes" in
  Alcotest.(check bool) "heap gauge sampled" true (Array.length series > 0);
  Array.iter
    (fun (t_us, v) ->
      Alcotest.(check bool) "gauge sample sane" true (t_us >= 0.0 && v >= 0.0))
    series

let test_disabled_registry_records_nothing () =
  let telemetry = Telemetry.disabled () in
  let bench = Option.get (Suite.find "xalan") in
  let gc =
    Gc_config.default Gc_config.G1 ~heap_bytes:(2048 * mb)
      ~young_bytes:(512 * mb)
  in
  let r =
    Harness.run ~telemetry ~iterations:2 (Machine.paper_server ()) bench ~gc
      ~system_gc:false ()
  in
  Alcotest.(check bool) "the run itself collected" true
    (List.length r.Harness.events > 0);
  Alcotest.(check int) "no spans" 0 (Telemetry.span_count telemetry);
  Alcotest.(check (float 0.0)) "no counters" 0.0
    (Metrics.counter (Telemetry.metrics telemetry) "gc.pauses")

(* --- sinks ----------------------------------------------------------- *)

let test_sinks () =
  let telemetry, _ = traced_run Gc_config.Cms in
  let jsonl = Sink.trace_jsonl telemetry in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one line per span + summaries"
    (Telemetry.span_count telemetry
    + List.length (Telemetry.kinds telemetry)
    + 1)
    (List.length lines);
  let has sub s =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "pause lines" true
    (has "\"type\":\"pause\"" (List.hd lines));
  Alcotest.(check bool) "summary lines" true (has "\"type\":\"summary\"" jsonl);
  Alcotest.(check bool) "safepoint summary" true
    (has "\"type\":\"safepoint-summary\"" jsonl);
  Alcotest.(check bool) "phases present" true (has "\"phases\"" jsonl);
  let csv = Sink.spans_csv telemetry in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
      Alcotest.(check bool) "csv header" true (has "duration_us" header)
  | [] -> Alcotest.fail "empty spans csv");
  Alcotest.(check bool) "summary json parses percentiles" true
    (has "\"p99\"" (Sink.summary_json telemetry))

(* --- non-perturbation: byte-identical artifacts ---------------------- *)

let with_default_enabled value f =
  let saved = Telemetry.default_enabled () in
  Telemetry.set_default_enabled value;
  Fun.protect ~finally:(fun () -> Telemetry.set_default_enabled saved) f

let test_artifacts_deterministic () =
  List.iter
    (fun name ->
      let run () =
        match
          Gcperf.Experiments.artifact ~scope:Gcperf.Scope.ci name
        with
        | Some a -> Gcperf.Artifact.to_text a
        | None -> Alcotest.fail ("unknown experiment " ^ name)
      in
      let off = with_default_enabled false run in
      let on = with_default_enabled true run in
      Alcotest.(check string)
        (name ^ " byte-identical with telemetry on")
        off on)
    [ "table2"; "table3"; "fig3" ]

let test_traced_run_unperturbed () =
  let _, traced = traced_run Gc_config.G1 in
  let bench = Option.get (Suite.find "xalan") in
  let gc =
    Gc_config.default Gc_config.G1 ~heap_bytes:(2048 * mb)
      ~young_bytes:(512 * mb)
  in
  let plain =
    Harness.run ~iterations:3 (Machine.paper_server ()) bench ~gc
      ~system_gc:false ()
  in
  Alcotest.(check (float 0.0)) "identical virtual time"
    plain.Harness.total_s traced.Harness.total_s;
  Alcotest.(check int) "identical GC event count"
    (List.length plain.Harness.events)
    (List.length traced.Harness.events)

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_percentiles_match;
          QCheck_alcotest.to_alcotest prop_merge;
          Alcotest.test_case "empty / single / clear" `Quick
            test_histogram_empty;
        ] );
      ( "spans",
        [
          Alcotest.test_case "g1 per-phase spans" `Quick test_g1_spans;
          Alcotest.test_case "metrics sampled" `Quick test_metrics_sampled;
          Alcotest.test_case "disabled registry" `Quick
            test_disabled_registry_records_nothing;
        ] );
      ("sinks", [ Alcotest.test_case "jsonl / csv / summary" `Quick test_sinks ]);
      ( "non-perturbation",
        [
          Alcotest.test_case "quick artifacts byte-identical" `Slow
            test_artifacts_deterministic;
          Alcotest.test_case "traced run unperturbed" `Quick
            test_traced_run_unperturbed;
        ] );
    ]
