(* Pauseless collector family: concurrent region collector and the
   journaled-RC collector.

   Covers the config/registry round-trip (including the colloquial
   aliases), the forwarding-table/load-barrier invariants as a qcheck
   property, the journal fold determinism contract at several host
   worker counts, and collector correctness through the VM: rooted data
   survives, garbage is reclaimed, every pause is a flip-class pause,
   and the space accounting invariants hold. *)

module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module Gc_event = Gcperf_sim.Gc_event
module Os = Gcperf_heap.Obj_store
module Journal = Gcperf_gc_concurrent.Journal

let mb = 1024 * 1024
let machine = Machine.paper_server ()

let small_config kind =
  Gc_config.default kind ~heap_bytes:(64 * mb) ~young_bytes:(16 * mb)

let concurrent_kind_cases f =
  List.map
    (fun kind ->
      Alcotest.test_case (Gc_config.kind_to_string kind) `Quick (fun () ->
          f kind))
    Gc_config.concurrent_kinds

let check_invariants vm =
  match Vm.check_invariants vm with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invariant violation: " ^ e)

(* --- config round-trip and aliases ----------------------------------- *)

let test_round_trip () =
  List.iter
    (fun kind ->
      let s = Gc_config.kind_to_string kind in
      match Gc_config.kind_of_string s with
      | Some k ->
          Alcotest.(check string)
            (s ^ " round-trips") s (Gc_config.kind_to_string k)
      | None -> Alcotest.fail (s ^ " does not parse back"))
    Gc_config.extended_kinds

let test_aliases () =
  let expect alias kind =
    match Gc_config.kind_of_string alias with
    | Some k ->
        Alcotest.(check string)
          (alias ^ " resolves")
          (Gc_config.kind_to_string kind)
          (Gc_config.kind_to_string k)
    | None -> Alcotest.fail (alias ^ " not recognised")
  in
  expect "concurrent-regions" Gc_config.Concurrent_regions;
  expect "zgc" Gc_config.Concurrent_regions;
  expect "shenandoah" Gc_config.Concurrent_regions;
  expect "ConcurrentRegionsGC" Gc_config.Concurrent_regions;
  expect "journal-rc" Gc_config.Journal_rc;
  expect "mo-gc" Gc_config.Journal_rc;
  expect "rc" Gc_config.Journal_rc;
  expect "JournalRCGC" Gc_config.Journal_rc;
  (* The classic kinds list stays frozen (goldens depend on it); the
     extended list is classic + concurrent. *)
  Alcotest.(check int) "six classic kinds" 6 (List.length Gc_config.all_kinds);
  Alcotest.(check int)
    "extended = classic + 2"
    (List.length Gc_config.all_kinds + 2)
    (List.length Gc_config.extended_kinds)

let test_registry_round_trip () =
  (* Building a VM for each extended kind proves the registry has a
     builder (the concurrent family arrives via Plug.install, which
     linking Vm guarantees), and that the collector reports the kind it
     was asked for. *)
  List.iter
    (fun kind ->
      let vm = Vm.create machine (small_config kind) ~seed:11 in
      let c = Vm.collector vm in
      Alcotest.(check string)
        (Gc_config.kind_to_string kind ^ " built")
        (Gc_config.kind_to_string kind)
        (Gc_config.kind_to_string c.Gcperf_gc.Collector.kind))
    Gc_config.extended_kinds

let test_validate () =
  let base = small_config Gc_config.Journal_rc in
  (match Gc_config.validate base with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("default journal-rc config rejected: " ^ e));
  (match
     Gc_config.validate { base with Gc_config.journal_fold_jobs = 0 }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fold jobs 0 must be rejected");
  match
    Gc_config.validate { base with Gc_config.journal_alloc_overhead = 1.5 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "alloc overhead 1.5 must be rejected"

(* --- forwarding table / load barrier properties ----------------------- *)

(* Random interleavings of forwarding-table operations, checked against
   a model: after any sequence of record/read/heal-all, (a) a remapped
   slot is never forwarded again in the same epoch (the slow path runs
   exactly once per object), (b) pending counts exactly the recorded-
   but-unhealed ids, and (c) a new epoch instantly invalidates every
   entry without touching per-object state. *)
let forwarding_prop ops =
  let s = Os.create () in
  let n = 64 in
  let ids = Array.init n (fun _ -> Os.alloc s ~size:32 ~loc:Os.Old) in
  (* Model: an id is in at most one of [forwarded] (recorded, unhealed)
     or [healed] (remapped this epoch).  Re-recording a healed id is a
     no-op in the table — within one epoch an object relocates once, so
     its slot can never re-enter the table after it was remapped. *)
  let forwarded = Hashtbl.create 16 and healed = Hashtbl.create 16 in
  Os.fwd_begin s;
  let ok = ref true in
  let check b = if not b then ok := false in
  List.iter
    (fun op ->
      match op with
      | `Record i ->
          let id = ids.(i mod n) in
          Os.fwd_record s id;
          if not (Hashtbl.mem forwarded id || Hashtbl.mem healed id) then
            Hashtbl.replace forwarded id ()
      | `Read i ->
          let id = ids.(i mod n) in
          let expected = Hashtbl.mem forwarded id in
          check (Os.fwd_read s id = expected);
          (* Self-healing: the second read never takes the slow path. *)
          check (not (Os.fwd_read s id));
          if expected then begin
            Hashtbl.remove forwarded id;
            Hashtbl.replace healed id ()
          end
      | `Heal_all ->
          let count = Os.fwd_heal_all s in
          check (count = Hashtbl.length forwarded);
          Hashtbl.iter (fun id () -> Hashtbl.replace healed id ()) forwarded;
          Hashtbl.reset forwarded
      | `New_epoch ->
          Os.fwd_begin s;
          Hashtbl.reset forwarded;
          Hashtbl.reset healed)
    ops;
  check (Os.fwd_pending s = Hashtbl.length forwarded);
  !ok

let forwarding_qcheck =
  let op =
    QCheck.oneof
      [
        QCheck.map (fun i -> `Record i) QCheck.small_nat;
        QCheck.map (fun i -> `Read i) QCheck.small_nat;
        QCheck.always `Heal_all;
        QCheck.always `New_epoch;
      ]
  in
  QCheck.Test.make ~count:200 ~name:"forwarding/load-barrier invariants"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 120) op)
    forwarding_prop

(* --- journal fold determinism ----------------------------------------- *)

let test_fold_determinism () =
  let cells = 257 in
  let entries = 5_000 in
  let build () =
    let j = Journal.create () in
    let state = ref 42 in
    let rand m =
      state := ((!state * 48271) + 11) land 0x3FFFFFFF;
      !state mod m
    in
    for _ = 1 to entries do
      Journal.append j (rand cells)
        (match rand 3 with 0 -> 1 | 1 -> -1 | _ -> 0)
    done;
    j
  in
  (* Force the crew to engage even on this small journal. *)
  let saved = Journal.par_fold_threshold () in
  Journal.set_par_fold_threshold 1;
  Fun.protect
    ~finally:(fun () -> Journal.set_par_fold_threshold saved)
    (fun () ->
      let fold domains =
        let rc = Array.make cells 0 in
        let n = Journal.fold (build ()) ~rc ~domains in
        Alcotest.(check int) "all entries applied" entries n;
        rc
      in
      let seq = fold 1 in
      List.iter
        (fun domains ->
          Alcotest.(check (array int))
            (Printf.sprintf "fold at %d domains byte-identical" domains)
            seq (fold domains))
        [ 2; 4 ])

(* --- collector correctness through the VM ----------------------------- *)

let test_rooted_survive kind =
  let vm = Vm.create machine (small_config kind) ~seed:3 in
  let th = Vm.spawn_thread vm in
  let keep = List.init 64 (fun _ -> Vm.alloc vm th ~size:4096 ~lifetime:`Permanent) in
  (* Churn enough garbage to force many cycles/folds. *)
  for _ = 1 to 20_000 do
    let id = Vm.alloc vm th ~size:8192 ~lifetime:`Permanent in
    Vm.drop_root vm th id
  done;
  Vm.system_gc vm;
  List.iter
    (fun id ->
      Alcotest.(check bool) "rooted object survives" true (Vm.is_live vm id))
    keep;
  check_invariants vm

let test_garbage_reclaimed kind =
  let vm = Vm.create machine (small_config kind) ~seed:4 in
  let th = Vm.spawn_thread vm in
  (* 20k * 8 KB = 160 MB of garbage through a 64 MB heap: reclamation
     must happen or the allocations would OOM. *)
  let dead = ref [] in
  for i = 1 to 20_000 do
    let id = Vm.alloc vm th ~size:8192 ~lifetime:`Permanent in
    if i mod 100 = 0 then dead := id :: !dead;
    Vm.drop_root vm th id
  done;
  Vm.system_gc vm;
  List.iter
    (fun id ->
      Alcotest.(check bool) "garbage reclaimed" false (Vm.is_live vm id))
    !dead;
  let c = Vm.collector vm in
  Alcotest.(check bool)
    "heap not exhausted" true
    (c.Gcperf_gc.Collector.heap_used () < 64 * mb);
  check_invariants vm

let test_refs_keep_alive kind =
  let vm = Vm.create machine (small_config kind) ~seed:5 in
  let th = Vm.spawn_thread vm in
  let parent = Vm.alloc vm th ~size:4096 ~lifetime:`Permanent in
  let child = Vm.alloc vm th ~size:4096 ~lifetime:`Permanent in
  Vm.add_ref vm ~parent ~child;
  Vm.drop_root vm th child;
  for _ = 1 to 20_000 do
    let id = Vm.alloc vm th ~size:8192 ~lifetime:`Permanent in
    Vm.drop_root vm th id
  done;
  Vm.system_gc vm;
  Alcotest.(check bool) "referenced child survives" true (Vm.is_live vm child);
  Vm.remove_ref vm ~parent ~child;
  for _ = 1 to 20_000 do
    let id = Vm.alloc vm th ~size:8192 ~lifetime:`Permanent in
    Vm.drop_root vm th id
  done;
  Vm.system_gc vm;
  Alcotest.(check bool) "unreferenced child reclaimed" false
    (Vm.is_live vm child);
  check_invariants vm

(* Every pause the pauseless family takes outside degenerate allocation
   stalls is a flip: Initial_mark / Remark / Cleanup, never Young/Mixed,
   and Full only with a stall/system.gc reason. *)
let test_pause_classes kind =
  let vm = Vm.create machine (small_config kind) ~seed:6 in
  let th = Vm.spawn_thread vm in
  for _ = 1 to 30_000 do
    let id = Vm.alloc vm th ~size:8192 ~lifetime:`Permanent in
    Vm.drop_root vm th id;
    Vm.step vm ~dt_us:50.0 (fun _ -> ())
  done;
  let events = Gc_event.events (Vm.events vm) in
  Alcotest.(check bool) "collector paused at least once" true
    (List.length events > 0);
  List.iter
    (fun (e : Gc_event.event) ->
      match e.Gc_event.kind with
      | Gc_event.Initial_mark | Gc_event.Remark | Gc_event.Cleanup -> ()
      | Gc_event.Full ->
          Alcotest.(check bool)
            ("full pause has a degenerate reason: " ^ e.Gc_event.reason)
            true
            (List.mem e.Gc_event.reason
               [
                 "allocation stall";
                 "humongous allocation stall";
                 "allocation failure";
                 "system.gc";
               ])
      | Gc_event.Young | Gc_event.Mixed ->
          Alcotest.fail "pauseless collector took a generational pause")
    events

let () =
  Alcotest.run "gc_concurrent"
    [
      ( "config",
        [
          Alcotest.test_case "round-trip" `Quick test_round_trip;
          Alcotest.test_case "aliases" `Quick test_aliases;
          Alcotest.test_case "registry round-trip" `Quick
            test_registry_round_trip;
          Alcotest.test_case "validation" `Quick test_validate;
        ] );
      ("forwarding", [ QCheck_alcotest.to_alcotest forwarding_qcheck ]);
      ( "journal",
        [
          Alcotest.test_case "fold determinism at 1/2/4 domains" `Quick
            test_fold_determinism;
        ] );
      ("rooted-survive", concurrent_kind_cases test_rooted_survive);
      ("garbage-reclaimed", concurrent_kind_cases test_garbage_reclaimed);
      ("refs-keep-alive", concurrent_kind_cases test_refs_keep_alive);
      ("pause-classes", concurrent_kind_cases test_pause_classes);
    ]
