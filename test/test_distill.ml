(* Distillation (LBO) tests.

   Three concerns: the pure [Distill.distill] arithmetic must be total
   and well-behaved for arbitrary component values (property-tested:
   non-negative, additive decomposition, zero for a zero-cost
   collector), the experiment must attribute cost to the right
   component per collector family, and — the repo-wide contract — the
   distill artifact must be byte-identical across every --jobs and
   --gc-jobs combination. *)

module Distill = Gcperf_distill.Distill
module Telemetry = Gcperf_telemetry.Telemetry
module Store = Gcperf_heap.Obj_store
module E = Gcperf.Experiments

let components ?(raw = 0.0) ?(alloc = 0.0) ?(stw = 0.0) ?(steal = 0.0)
    ?(tax = 0.0) () =
  {
    Distill.raw_us = raw;
    alloc_us = alloc;
    stw_us = stw;
    steal_us = steal;
    tax_us = tax;
    phases = [];
  }

(* --- distill arithmetic (property) ---------------------------------- *)

(* Any float at all, including negatives, zeros and NaN: [distill] must
   clamp rather than propagate. *)
let component_gen =
  QCheck.Gen.(
    oneof
      [
        float_range (-1e9) 1e9;
        float_range 0.0 1e3;
        return 0.0;
        return Float.nan;
      ])

let components_arb =
  QCheck.make
    ~print:(fun (a, b, c, d, e) ->
      Printf.sprintf "raw=%g alloc=%g stw=%g steal=%g tax=%g" a b c d e)
    QCheck.Gen.(
      map
        (fun ((a, b), (c, d), e) -> (a, b, c, d, e))
        (triple
           (pair component_gen component_gen)
           (pair component_gen component_gen)
           component_gen))

let prop_total_and_additive =
  QCheck.Test.make ~name:"distilled cost is non-negative and additive"
    ~count:500 components_arb (fun (raw, alloc, stw, steal, tax) ->
      let cost =
        Distill.distill (components ~raw ~alloc ~stw ~steal ~tax ())
      in
      let finite x = not (Float.is_nan x) in
      if not (finite cost.Distill.distilled) then
        QCheck.Test.fail_report "distilled is NaN";
      if cost.Distill.distilled < 0.0 then
        QCheck.Test.fail_reportf "distilled %g < 0" cost.Distill.distilled;
      if
        cost.Distill.stw_over < 0.0
        || cost.Distill.steal_over < 0.0
        || cost.Distill.tax_over < 0.0
      then QCheck.Test.fail_report "negative component share";
      (* Additive by construction — exactly, not within epsilon. *)
      if
        cost.Distill.distilled
        <> cost.Distill.stw_over +. cost.Distill.steal_over
           +. cost.Distill.tax_over
      then QCheck.Test.fail_report "decomposition does not sum to total";
      if cost.Distill.t_real_us < cost.Distill.t_ideal_us then
        QCheck.Test.fail_report "t_real below t_ideal";
      true)

(* --- zero-cost (ideal) collector ------------------------------------ *)

let test_zero_cost_collector () =
  let cost = Distill.distill (components ~raw:1e6 ~alloc:2e5 ()) in
  Alcotest.(check (float 0.0)) "distilled is exactly 0" 0.0
    cost.Distill.distilled;
  Alcotest.(check (float 0.0)) "t_real = t_ideal" cost.Distill.t_ideal_us
    cost.Distill.t_real_us;
  Alcotest.(check (float 0.0)) "ideal keeps the allocation tax" 1.2e6
    cost.Distill.t_ideal_us

let test_empty_run () =
  (* A run that never stepped distils to zero, not NaN (0/0). *)
  let t = Telemetry.create ~enabled:true () in
  let cost = Distill.of_run t in
  Alcotest.(check (float 0.0)) "empty run: t_ideal 0" 0.0
    cost.Distill.t_ideal_us;
  Alcotest.(check (float 0.0)) "empty run: distilled 0" 0.0
    cost.Distill.distilled

let test_attribution () =
  let cost = Distill.distill (components ~raw:1e6 ~stw:5e5 ()) in
  Alcotest.(check (float 1e-9)) "stw share" 0.5 cost.Distill.stw_over;
  Alcotest.(check (float 0.0)) "no steal" 0.0 cost.Distill.steal_over;
  Alcotest.(check (float 0.0)) "no tax" 0.0 cost.Distill.tax_over;
  let cost = Distill.distill (components ~raw:1e6 ~steal:2e5 ~tax:3e5 ()) in
  Alcotest.(check (float 0.0)) "no stw" 0.0 cost.Distill.stw_over;
  Alcotest.(check (float 1e-9)) "steal share" 0.2 cost.Distill.steal_over;
  Alcotest.(check (float 1e-9)) "tax share" 0.3 cost.Distill.tax_over

(* --- experiment: cost lands on the right component ------------------ *)

let test_experiment_attribution () =
  let r = Gcperf.Exp_distill.run_scope ~scope:Gcperf.Scope.ci ~jobs:1 () in
  Alcotest.(check int) "eight collectors at one ci point" 8
    (List.length r.Gcperf.Exp_distill.cells);
  let find gc =
    List.find (fun c -> c.Gcperf.Exp_distill.gc = gc)
      r.Gcperf.Exp_distill.cells
  in
  let serial = find "SerialGC" in
  Alcotest.(check bool) "SerialGC pays in pauses" true
    (serial.Gcperf.Exp_distill.cost.Distill.stw_over > 0.0);
  Alcotest.(check (float 0.0)) "SerialGC steals no cores" 0.0
    serial.Gcperf.Exp_distill.cost.Distill.steal_over;
  let jrc = find "JournalRCGC" in
  Alcotest.(check bool) "JournalRCGC pays in mutator tax" true
    (jrc.Gcperf.Exp_distill.cost.Distill.tax_over
    > jrc.Gcperf.Exp_distill.cost.Distill.stw_over);
  let ranking = Gcperf.Exp_distill.ranking r.Gcperf.Exp_distill.cells in
  Alcotest.(check int) "ranking covers all collectors" 8
    (List.length ranking);
  let sorted =
    List.for_all2
      (fun (_, a) (_, b) -> a <= b)
      ranking
      (List.tl ranking @ [ ("", infinity) ])
  in
  Alcotest.(check bool) "ranking ascends" true sorted

(* --- byte-identity across the jobs × gc-jobs matrix ----------------- *)

let test_artifact_identity_matrix () =
  let scope = Gcperf.Scope.ci in
  let render jobs =
    match E.artifact ~scope ~jobs "distill" with
    | Some a -> Gcperf.Artifact.render a `Json
    | None -> Alcotest.fail "distill artifact missing"
  in
  let saved_domains = Store.default_gc_domains () in
  let saved_trace = Store.par_trace_threshold () in
  let saved_move = Store.par_move_threshold () in
  Fun.protect
    ~finally:(fun () ->
      Store.set_default_gc_domains saved_domains;
      Store.set_par_trace_threshold saved_trace;
      Store.set_par_move_threshold saved_move)
    (fun () ->
      Store.set_default_gc_domains 1;
      let sequential = render 1 in
      Store.set_par_trace_threshold 16;
      Store.set_par_move_threshold 16;
      List.iter
        (fun (jobs, gc_jobs) ->
          Store.set_default_gc_domains gc_jobs;
          Alcotest.(check string)
            (Printf.sprintf "distill byte-identical at jobs=%d gc-jobs=%d"
               jobs gc_jobs)
            sequential (render jobs))
        [ (1, 2); (1, 4); (2, 1); (2, 2); (2, 4); (4, 1); (4, 2); (4, 4) ])

let () =
  Alcotest.run "distill"
    [
      ( "arithmetic",
        [
          QCheck_alcotest.to_alcotest prop_total_and_additive;
          Alcotest.test_case "zero-cost collector" `Quick
            test_zero_cost_collector;
          Alcotest.test_case "empty run" `Quick test_empty_run;
          Alcotest.test_case "component attribution" `Quick test_attribution;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "per-family attribution" `Quick
            test_experiment_attribution;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs x gc-jobs identity matrix" `Slow
            test_artifact_identity_matrix;
        ] );
    ]
