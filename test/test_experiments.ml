(* End-to-end experiment tests: every runner executes in quick mode and
   produces a well-formed artifact, and the headline qualitative results
   of the paper hold on the measured data. *)

module E = Gcperf.Experiments

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_registry () =
  Alcotest.(check int) "17 experiments" 17 (List.length E.all_names);
  Alcotest.(check bool) "unknown rejected" true
    (E.artifact ~scope:Gcperf.Scope.ci "nope" = None)

(* The registry round-trip: every registered id runs at ci scope, names
   its artifact after itself and renders non-trivially.  This is the
   guarantee that lets the CLI drop per-experiment dispatch arms. *)
let test_registry_round_trip () =
  List.iter
    (fun (e : Gcperf.Experiment.t) ->
      let id = e.Gcperf.Experiment.id in
      match E.artifact ~scope:Gcperf.Scope.ci id with
      | None -> Alcotest.fail (id ^ " not resolvable")
      | Some a ->
          Alcotest.(check string)
            (id ^ " artifact named after id")
            id a.Gcperf.Artifact.name;
          Alcotest.(check bool) (id ^ " renders") true
            (String.length (Gcperf.Artifact.to_text a) > 40))
    (E.all ())

let test_table2 () =
  let r = Gcperf.Exp_table2.run ~quick:true () in
  Alcotest.(check int) "7 stable benchmarks" 7
    (List.length r.Gcperf.Exp_table2.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "rsd finite and non-negative" true
        (row.Gcperf.Exp_table2.final_rsd_pct >= 0.0
        && row.Gcperf.Exp_table2.total_rsd_pct >= 0.0
        && Float.is_finite row.Gcperf.Exp_table2.final_rsd_pct))
    r.Gcperf.Exp_table2.rows;
  let rendered = Gcperf.Exp_table2.render r in
  Alcotest.(check bool) "mentions benchmarks" true (contains rendered "xalan")

let test_table3 () =
  let r = Gcperf.Exp_table3.run ~quick:true () in
  Alcotest.(check int) "10 configurations" 10
    (List.length r.Gcperf.Exp_table3.rows);
  List.iter
    (fun row ->
      let open Gcperf.Exp_table3 in
      Alcotest.(check bool) "fulls <= pauses" true
        (row.full_pauses <= row.pauses);
      Alcotest.(check bool) "total >= avg" true
        (row.total_pause_s >= row.avg_pause_s -. 1e-9))
    r.Gcperf.Exp_table3.rows;
  (* Smaller heaps collect more: the 1 GB row must out-pause the 64 GB
     row (the 250 MB rows may even OOM in quick mode). *)
  let pauses_of i = (List.nth r.Gcperf.Exp_table3.rows i).Gcperf.Exp_table3.pauses in
  Alcotest.(check bool) "small heap pauses more" true
    (pauses_of 4 >= pauses_of 0)

let test_table4 () =
  let r = Gcperf.Exp_table4.run ~quick:true () in
  Alcotest.(check int) "7 benchmarks x 6 GCs" 42
    (List.length r.Gcperf.Exp_table4.cells);
  let rendered = Gcperf.Exp_table4.render r in
  Alcotest.(check bool) "symbols present" true (contains rendered "=")

let test_table4_classify () =
  let open Gcperf.Exp_table4 in
  Alcotest.(check string) "faster without = hurts" "-"
    (influence_to_string
       (classify ~deviation:0.05 ~with_tlab:110.0 ~without_tlab:100.0));
  Alcotest.(check string) "slower without = helps" "+"
    (influence_to_string
       (classify ~deviation:0.05 ~with_tlab:100.0 ~without_tlab:110.0));
  Alcotest.(check string) "within band = indifferent" "="
    (influence_to_string
       (classify ~deviation:0.05 ~with_tlab:100.0 ~without_tlab:102.0))

let test_figures_1_2 () =
  let r = Gcperf.Exp_xalan.run ~quick:true () in
  Alcotest.(check int) "6 collectors, sysgc on" 6
    (List.length r.Gcperf.Exp_xalan.with_system_gc);
  Alcotest.(check int) "6 collectors, sysgc off" 6
    (List.length r.Gcperf.Exp_xalan.without_system_gc);
  (* The paper's headline: with forced full GCs, G1 is the slowest and
     ParallelOld among the fastest. *)
  let total name l =
    (List.find (fun s -> s.Gcperf.Exp_xalan.gc = name) l)
      .Gcperf.Exp_xalan.total_s
  in
  let w = r.Gcperf.Exp_xalan.with_system_gc in
  Alcotest.(check bool) "G1 slowest with system GC" true
    (total "G1GC" w > total "ParallelOldGC" w);
  let f1 = Gcperf.Exp_xalan.render_figure1 r in
  let f2 = Gcperf.Exp_xalan.render_figure2 r in
  Alcotest.(check bool) "figure 1 renders" true (contains f1 "Figure 1");
  Alcotest.(check bool) "figure 2 renders" true (contains f2 "Figure 2")

let test_fig3 () =
  let r = Gcperf.Exp_fig3.run ~quick:true () in
  let pct l = List.fold_left (fun a (_, v) -> a +. v) 0.0 l in
  Alcotest.(check bool) "percentages sum to ~100 (sysgc)" true
    (Float.abs (pct r.Gcperf.Exp_fig3.with_system_gc -. 100.0) < 1.0);
  Alcotest.(check bool) "percentages sum to ~100 (no sysgc)" true
    (Float.abs (pct r.Gcperf.Exp_fig3.without_system_gc -. 100.0) < 1.0);
  (* G1 must not win with forced full collections (the paper's Figure 3a
     shows no bar for it at all). *)
  let g1 =
    List.assoc "G1GC" r.Gcperf.Exp_fig3.with_system_gc
  in
  Alcotest.(check bool) "G1 wins nothing with system GC" true (g1 <= 1.0)

let test_table8_classifiers () =
  let open Gcperf.Exp_table8 in
  Alcotest.(check string) "best is good" "good"
    (verdict_to_string (classify_throughput 1.0));
  Alcotest.(check string) "15%+ slower is bad" "bad"
    (verdict_to_string (classify_throughput 1.5));
  Alcotest.(check string) "seconds on a server are significant" "significant"
    (pause_verdict_to_string (classify_pause ~max_pause_s:3.0 ~server:true));
  Alcotest.(check string) "minutes are unacceptable" "unacceptable"
    (pause_verdict_to_string (classify_pause ~max_pause_s:200.0 ~server:true));
  Alcotest.(check string) "sub-second benchmark pauses are short" "short"
    (pause_verdict_to_string (classify_pause ~max_pause_s:0.3 ~server:false));
  Alcotest.(check string) "forced fulls near a second are tolerable"
    "acceptable"
    (pause_verdict_to_string (classify_pause ~max_pause_s:1.2 ~server:false));
  Alcotest.(check string) "longer forced fulls are not" "unacceptable"
    (pause_verdict_to_string (classify_pause ~max_pause_s:1.7 ~server:false))

let test_server_quick () =
  (* One scaled-down stressed server run per concurrent collector: pauses
     must stay bounded (no full GC) — the Figure 4 contrast. *)
  let cms =
    Gcperf.Exp_server.run_server ~quick:true ~kind:Gcperf_gc.Gc_config.Cms
      ~stress:true ~hours:1.0 ()
  in
  Alcotest.(check bool) "CMS run produced pauses" true
    (Array.length cms.Gcperf.Exp_server.pauses > 0);
  Alcotest.(check int) "CMS avoided full collections" 0
    cms.Gcperf.Exp_server.full_count;
  Alcotest.(check bool) "pause timeline chronological" true
    (let ok = ref true in
     Array.iteri
       (fun i (s, _) ->
         if i > 0 && s < fst cms.Gcperf.Exp_server.pauses.(i - 1) then
           ok := false)
       cms.Gcperf.Exp_server.pauses;
     !ok)

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "round-trip" `Slow test_registry_round_trip;
        ] );
      ( "benchmark campaigns",
        [
          Alcotest.test_case "table 2" `Slow test_table2;
          Alcotest.test_case "table 3" `Slow test_table3;
          Alcotest.test_case "table 4" `Slow test_table4;
          Alcotest.test_case "table 4 classifier" `Quick test_table4_classify;
          Alcotest.test_case "figures 1-2" `Slow test_figures_1_2;
          Alcotest.test_case "figure 3" `Slow test_fig3;
          Alcotest.test_case "table 8 classifiers" `Quick test_table8_classifiers;
        ] );
      ( "server campaigns",
        [ Alcotest.test_case "stressed server (quick)" `Slow test_server_quick ] );
    ]
