(* Smoke binary for `dune build @exec-smoke`: regenerate table2 at CI
   scope sequentially and through two worker domains, and fail loudly if
   the artifacts differ by a single byte. *)

let () =
  let scope = Gcperf.Scope.ci in
  let render jobs =
    match Gcperf.Experiments.artifact ~scope ~jobs "table2" with
    | Some a -> Gcperf.Artifact.render a `Json
    | None -> failwith "table2 artifact missing"
  in
  let sequential = render 1 in
  let parallel = render 2 in
  if String.equal sequential parallel then
    print_endline "exec-smoke: table2 byte-identical at jobs=1 and jobs=2"
  else begin
    prerr_endline "exec-smoke: parallel artifact diverged from sequential";
    exit 1
  end
