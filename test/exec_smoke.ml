(* Smoke binary for `dune build @exec-smoke`: regenerate table2 at CI
   scope sequentially and through worker domains, and fail loudly if
   the artifacts differ by a single byte.

   With no arguments it compares jobs=1 against jobs=2 (the historical
   contract exercised by the @exec-smoke alias).  CI's multicore-smoke
   job passes explicit counts — `exec_smoke.exe JOBS GC_JOBS` — so the
   same binary also proves the contract with the intra-collection crew
   engaged on runners that really have more than one core. *)

let () =
  let module Store = Gcperf_heap.Obj_store in
  let arg i default =
    if Array.length Sys.argv > i then
      match int_of_string_opt Sys.argv.(i) with
      | Some n when n >= 1 -> n
      | _ ->
          Printf.eprintf "exec-smoke: usage: %s [JOBS [GC_JOBS]]\n"
            Sys.argv.(0);
          exit 2
    else default
  in
  let jobs = arg 1 2 in
  let gc_jobs = arg 2 1 in
  let scope = Gcperf.Scope.ci in
  let render jobs =
    match Gcperf.Experiments.artifact ~scope ~jobs "table2" with
    | Some a -> Gcperf.Artifact.render a `Json
    | None -> failwith "table2 artifact missing"
  in
  let saved = Store.default_gc_domains () in
  Fun.protect
    ~finally:(fun () -> Store.set_default_gc_domains saved)
    (fun () ->
      Store.set_default_gc_domains 1;
      let sequential = render 1 in
      Store.set_default_gc_domains gc_jobs;
      let parallel = render jobs in
      if String.equal sequential parallel then
        Printf.printf
          "exec-smoke: table2 byte-identical at jobs=1/gc-jobs=1 and \
           jobs=%d/gc-jobs=%d\n"
          jobs gc_jobs
      else begin
        Printf.eprintf
          "exec-smoke: artifact at jobs=%d gc-jobs=%d diverged from \
           sequential\n"
          jobs gc_jobs;
        exit 1
      end)
