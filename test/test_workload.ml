(* Tests for profiles and the DaCapo-shaped mutator driver. *)

module Vm = Gcperf_runtime.Vm
module Machine = Gcperf_machine.Machine
module Gc_config = Gcperf_gc.Gc_config
module P = Gcperf_workload.Profile
module Mutator = Gcperf_workload.Mutator

let mb = 1024 * 1024
let machine = Machine.paper_server ()

let life =
  {
    P.short_frac = 0.8;
    short_mean_bytes = 4e6;
    medium_frac = 0.1;
    medium_mean_bytes = 40e6;
    iteration_frac = 0.05;
    permanent_frac = 0.01;
  }

let small_profile =
  {
    P.name = "unit-test";
    threading = P.Fixed 4;
    iteration_alloc_bytes = 64 * mb;
    iteration_cpu_s = 0.5;
    size = { P.mean_bytes = 128 * 1024; sigma = 0.5 };
    lifetime = life;
    startup_live_bytes = 8 * mb;
    ref_locality = 0.3;
    update_store_prob = 0.02;
    phase_noise = 0.0;
    sawtooth = 2;
  }

let fresh_vm () =
  Vm.create machine
    (Gc_config.default Gc_config.ParallelOld ~heap_bytes:(256 * mb)
       ~young_bytes:(64 * mb))
    ~seed:21

(* --- profile validation ---------------------------------------------- *)

let test_validate_ok () =
  Alcotest.(check bool) "valid" true (Result.is_ok (P.validate small_profile))

let test_validate_fractions () =
  let bad =
    { small_profile with P.lifetime = { life with P.short_frac = 0.99 } }
  in
  Alcotest.(check bool) "fractions > 1 rejected" true
    (Result.is_error (P.validate bad))

let test_validate_empty_alloc () =
  let bad = { small_profile with P.iteration_alloc_bytes = 0 } in
  Alcotest.(check bool) "empty alloc rejected" true
    (Result.is_error (P.validate bad))

let test_validate_bad_locality () =
  let bad = { small_profile with P.ref_locality = 1.5 } in
  Alcotest.(check bool) "locality out of range" true
    (Result.is_error (P.validate bad))

let test_threads_for () =
  Alcotest.(check int) "single" 1
    (P.threads_for { small_profile with P.threading = P.Single } ~hw_threads:48);
  Alcotest.(check int) "per-hw" 48
    (P.threads_for
       { small_profile with P.threading = P.Per_hw_thread }
       ~hw_threads:48);
  Alcotest.(check int) "fixed" 4 (P.threads_for small_profile ~hw_threads:48)

(* --- mutator --------------------------------------------------------- *)

let test_mutator_setup () =
  let vm = fresh_vm () in
  let m = Mutator.create vm small_profile ~seed:3 in
  Alcotest.(check int) "threads spawned" 4 (Mutator.thread_count m);
  Alcotest.(check bool) "live set built" true (Mutator.live_set_size m > 0);
  Alcotest.(check bool) "startup data allocated" true
    (Vm.allocated_bytes vm >= 8 * mb)

let test_iteration_stats () =
  let vm = fresh_vm () in
  let m = Mutator.create vm small_profile ~seed:3 in
  let s1 = Mutator.run_iteration m in
  let s2 = Mutator.run_iteration m in
  Alcotest.(check int) "indices" 1 s1.Mutator.index;
  Alcotest.(check int) "indices" 2 s2.Mutator.index;
  Alcotest.(check bool) "duration at least cpu time" true
    (s1.Mutator.duration_s >= 0.5 -. 1e-6);
  let tol = small_profile.P.iteration_alloc_bytes / 10 in
  Alcotest.(check bool) "allocates the configured volume" true
    (abs (s1.Mutator.allocated_bytes - small_profile.P.iteration_alloc_bytes)
    < tol)

let test_iteration_includes_pauses () =
  let vm = fresh_vm () in
  let m = Mutator.create vm small_profile ~seed:3 in
  (* 64 MB per iteration into a 51 MB eden: collections must happen and
     be attributed to iterations. *)
  let total_pauses = ref 0 in
  for _ = 1 to 3 do
    let s = Mutator.run_iteration m in
    total_pauses := !total_pauses + s.Mutator.pauses
  done;
  Alcotest.(check bool) "pauses attributed" true (!total_pauses > 0)

let test_mutator_determinism () =
  let run () =
    let vm = fresh_vm () in
    let m = Mutator.create vm small_profile ~seed:3 in
    let s = Mutator.run_iteration m in
    s.Mutator.duration_s
  in
  Alcotest.(check (float 0.0)) "deterministic" (run ()) (run ())

let test_phase_noise_varies_iterations () =
  let noisy = { small_profile with P.phase_noise = 0.2 } in
  let vm = fresh_vm () in
  let m = Mutator.create vm noisy ~seed:3 in
  let a = Mutator.run_iteration m in
  let b = Mutator.run_iteration m in
  Alcotest.(check bool) "iterations differ under noise" true
    (a.Mutator.allocated_bytes <> b.Mutator.allocated_bytes)

let test_run_seconds () =
  let vm = fresh_vm () in
  let m = Mutator.create vm small_profile ~seed:3 in
  let t0 = Vm.now_s vm in
  Mutator.run_seconds m 0.25;
  Alcotest.(check bool) "advanced about 0.25s" true (Vm.now_s vm -. t0 >= 0.25)

let prop_iteration_positive =
  QCheck.Test.make ~name:"iterations have positive duration" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let vm = fresh_vm () in
      let m = Mutator.create vm small_profile ~seed in
      let s = Mutator.run_iteration m in
      s.Mutator.duration_s > 0.0 && s.Mutator.allocated_bytes > 0)

let () =
  Alcotest.run "workload"
    [
      ( "profile",
        [
          Alcotest.test_case "valid profile" `Quick test_validate_ok;
          Alcotest.test_case "fraction check" `Quick test_validate_fractions;
          Alcotest.test_case "alloc check" `Quick test_validate_empty_alloc;
          Alcotest.test_case "locality check" `Quick test_validate_bad_locality;
          Alcotest.test_case "threads_for" `Quick test_threads_for;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "setup" `Quick test_mutator_setup;
          Alcotest.test_case "iteration stats" `Quick test_iteration_stats;
          Alcotest.test_case "pauses attributed" `Quick test_iteration_includes_pauses;
          Alcotest.test_case "determinism" `Quick test_mutator_determinism;
          Alcotest.test_case "phase noise" `Quick test_phase_noise_varies_iterations;
          Alcotest.test_case "run_seconds" `Quick test_run_seconds;
          QCheck_alcotest.to_alcotest prop_iteration_positive;
        ] );
    ]
